package main

import (
	"path/filepath"
	"strings"
	"testing"

	"camelot/internal/chaos"
)

// TestSweepTextReport runs a small bounded sweep end to end through
// the CLI plumbing and checks the human-readable report.
func TestSweepTextReport(t *testing.T) {
	out, failed, err := run(options{sites: 3, seed: 1, txns: 5, points: 4})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if failed {
		t.Fatalf("sweep reported failures:\n%s", out)
	}
	for _, want := range []string{"chaos sweep: two-phase", "enumerated", "zero invariant violations"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestSweepJSONDeterministic pins that two identical CLI invocations
// emit byte-identical JSON reports.
func TestSweepJSONDeterministic(t *testing.T) {
	opts := options{sites: 3, seed: 3, txns: 4, points: 2, jsonOut: true}
	a, _, err := run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same options, different -json bytes")
	}
	if _, err := chaos.DecodeReport([]byte(a)); err != nil {
		t.Errorf("-json output does not decode: %v", err)
	}
}

// TestNetemReplayByteIdentical replays the checked-in netem/v1
// schedule twice through the -netem path and pins that the JSON
// results are byte-identical — the replayability contract the real
// cluster driver leans on when a run needs a simulated post-mortem.
func TestNetemReplayByteIdentical(t *testing.T) {
	opts := options{
		netemFile: filepath.Join("testdata", "netem-lossy.json"),
		sites:     3, seed: 5, txns: 6, jsonOut: true,
	}
	a, failed, err := run(opts)
	if err != nil {
		t.Fatalf("netem replay: %v", err)
	}
	if failed {
		t.Fatalf("netem replay broke invariants:\n%s", a)
	}
	b, _, err := run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same netem schedule, different -json bytes")
	}
	out, _, err := run(options{netemFile: opts.netemFile, sites: 3, seed: 5, txns: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"netem replay", "emulator", "all invariants hold"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

// TestReplayCorpusFile replays one of the checked-in §7 repro files
// through the -repro path.
func TestReplayCorpusFile(t *testing.T) {
	repro := filepath.Join("..", "..", "internal", "chaos", "testdata", "orphaned-join.json")
	out, failed, err := run(options{repro: repro})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if failed {
		t.Fatalf("corpus replay failed:\n%s", out)
	}
	if !strings.Contains(out, "all invariants hold") {
		t.Errorf("replay output:\n%s", out)
	}
}
