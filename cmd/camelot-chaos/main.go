// Command camelot-chaos is the systematic fault-schedule explorer. A
// fault-free pilot run of a seeded workload enumerates every
// injection point — each stable-log block write, datagram send, and
// checkpoint truncation — and the sweep then replays the identical
// workload once per (point, mode) pair with exactly one fault
// injected there: a crash, a torn or bit-flipped log block, a dropped
// datagram, or a partition window. After each run the recovery oracle
// checks atomicity, the client's view, cross-site outcome agreement,
// durability (by bouncing every site), and liveness. Any failing
// schedule is shrunk to a minimal fault set and reported as
// replayable chaos/v1 JSON.
//
// Usage:
//
//	camelot-chaos [-sites N] [-protocol 2pc|nb|paxos] [-seed S]
//	              [-txns T] [-points MAX] [-json] [-v]
//	camelot-chaos -repro file.json
//	camelot-chaos -netem file.json [-sites N] [-seed S] [-txns T]
//
// With -repro, the named chaos/v1 schedule is replayed instead of
// sweeping — the way to re-run a failure the sweep (or the corpus in
// internal/chaos/testdata) reported. With -netem, the named netem/v1
// fault schedule (the real-cluster emulator format; see
// internal/netem) is replayed under the simulation against the
// workload the other flags describe — deterministically, so two
// replays of the same pair are byte-identical. The exit status is
// nonzero if any run broke an invariant.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"camelot/internal/chaos"
	"camelot/internal/netem"
)

type options struct {
	sites       int
	nonblocking bool
	protocol    string
	seed        int64
	txns        int
	shards      int
	points      int
	repro       string
	netemFile   string
	jsonOut     bool
	verbose     bool
}

func main() {
	var opts options
	flag.IntVar(&opts.sites, "sites", 3, "number of sites (coordinator is site 1)")
	flag.BoolVar(&opts.nonblocking, "nonblocking", false, "use the non-blocking commitment protocol")
	flag.StringVar(&opts.protocol, "protocol", "", "commit protocol: 2pc, nb, or paxos (overrides -nonblocking)")
	flag.Int64Var(&opts.seed, "seed", 1, "simulation seed")
	flag.IntVar(&opts.txns, "txns", 12, "workload transactions per run")
	flag.IntVar(&opts.shards, "shards", 0, "shard the keyspace into N shards and sweep the cross-shard workload (0: legacy replicated-key workload)")
	flag.IntVar(&opts.points, "points", 0, "max injection points to explore (0 = all)")
	flag.StringVar(&opts.repro, "repro", "", "replay a chaos/v1 schedule file instead of sweeping")
	flag.StringVar(&opts.netemFile, "netem", "", "replay a netem/v1 fault schedule under the simulation instead of sweeping")
	flag.BoolVar(&opts.jsonOut, "json", false, "emit the report as JSON")
	flag.BoolVar(&opts.verbose, "v", false, "narrate every run to stderr")
	flag.Parse()

	out, failed, err := run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "camelot-chaos:", err)
		os.Exit(2)
	}
	fmt.Print(out)
	if failed {
		os.Exit(1)
	}
}

// run executes the sweep or replay and returns the rendered report
// and whether any invariant broke. Split from main for testing.
func run(opts options) (out string, failed bool, err error) {
	if opts.repro != "" {
		return replay(opts)
	}
	if opts.netemFile != "" {
		return replayNetem(opts)
	}
	var progress func(string)
	if opts.verbose {
		progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	switch opts.protocol {
	case "", "2pc", "nb", "paxos":
	default:
		return "", false, fmt.Errorf("unknown -protocol %q (want 2pc, nb, or paxos)", opts.protocol)
	}
	rep, err := chaos.Sweep(chaos.Options{
		Sites:       opts.sites,
		NonBlocking: opts.nonblocking,
		Protocol:    opts.protocol,
		Seed:        opts.seed,
		Txns:        opts.txns,
		Shards:      opts.shards,
		MaxPoints:   opts.points,
	}, progress)
	if err != nil {
		return "", false, err
	}
	failed = len(rep.Failures) > 0
	if opts.jsonOut {
		b, err := chaos.EncodeReport(rep)
		if err != nil {
			return "", false, err
		}
		return string(b), failed, nil
	}
	return renderReport(rep), failed, nil
}

// replay re-runs one chaos/v1 schedule file.
func replay(opts options) (string, bool, error) {
	b, err := os.ReadFile(opts.repro)
	if err != nil {
		return "", false, err
	}
	s, err := chaos.DecodeSchedule(b)
	if err != nil {
		return "", false, err
	}
	r, err := chaos.Run(s)
	if err != nil {
		return "", false, err
	}
	out := fmt.Sprintf("replay %s: seed %d, %d sites, nonblocking=%v, %d fault(s)\n",
		opts.repro, s.Seed, s.Sites, s.NonBlocking, len(s.Faults))
	for _, f := range s.Faults {
		out += fmt.Sprintf("  fault  %s\n", f)
	}
	out += fmt.Sprintf("  outcomes %v\n", r.Outcomes)
	if !r.Failed() {
		out += "  OK: all invariants hold\n"
		return out, false, nil
	}
	for _, v := range r.Violations {
		out += fmt.Sprintf("  VIOLATION %s\n", v)
	}
	if r.Deadlock != "" {
		out += fmt.Sprintf("  DEADLOCK %s\n", r.Deadlock)
	}
	return out, true, nil
}

// replayNetem re-runs one netem/v1 fault schedule under the
// simulation, against the workload the flags describe.
func replayNetem(opts options) (string, bool, error) {
	b, err := os.ReadFile(opts.netemFile)
	if err != nil {
		return "", false, err
	}
	ns, err := netem.DecodeSchedule(b)
	if err != nil {
		return "", false, err
	}
	w := chaos.Schedule{
		Version:  chaos.Version,
		Seed:     opts.seed,
		Sites:    opts.sites,
		Protocol: opts.protocol,
		Txns:     opts.txns,
		Shards:   opts.shards,
	}
	r, err := chaos.RunNetem(ns, w)
	if err != nil {
		return "", false, err
	}
	if opts.jsonOut {
		jb, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return "", false, err
		}
		return string(jb) + "\n", r.Failed(), nil
	}
	out := fmt.Sprintf("netem replay %s: seed %d, %d sites, %d txns\n",
		opts.netemFile, w.Seed, w.Sites, w.Txns)
	out += fmt.Sprintf("  emulator  seen %d, dropped %d (cut %d), dupped %d, delayed %d\n",
		r.Counts.Seen, r.Counts.Dropped, r.Counts.Cut, r.Counts.Dupped, r.Counts.Delayed)
	out += fmt.Sprintf("  outcomes %v\n", r.Outcomes)
	if !r.Failed() {
		out += "  OK: all invariants hold\n"
		return out, false, nil
	}
	for _, v := range r.Violations {
		out += fmt.Sprintf("  VIOLATION %s\n", v)
	}
	if r.Deadlock != "" {
		out += fmt.Sprintf("  DEADLOCK %s\n", r.Deadlock)
	}
	return out, true, nil
}

// renderReport formats a sweep report for humans.
func renderReport(rep *chaos.Report) string {
	protocol := "two-phase"
	if rep.NonBlocking {
		protocol = "non-blocking"
	}
	switch rep.Protocol {
	case "2pc":
		protocol = "two-phase"
	case "nb":
		protocol = "non-blocking"
	case "paxos":
		protocol = "paxos F=1"
	}
	sharding := ""
	if rep.Shards > 0 {
		sharding = fmt.Sprintf(", %d shards", rep.Shards)
	}
	out := fmt.Sprintf("chaos sweep: %s, seed %d, %d sites%s, %d txns\n",
		protocol, rep.Seed, rep.Sites, sharding, rep.Txns)
	out += fmt.Sprintf("  points: %d enumerated, %d explored; %d runs\n",
		rep.PointsTotal, rep.PointsRun, rep.Runs)
	if len(rep.Failures) == 0 {
		out += "  OK: zero invariant violations\n"
		return out
	}
	out += fmt.Sprintf("  %d FAILING schedule(s):\n", len(rep.Failures))
	for _, f := range rep.Failures {
		for _, fault := range f.Schedule.Faults {
			out += fmt.Sprintf("    fault %s\n", fault)
		}
		for _, v := range f.Violations {
			out += fmt.Sprintf("      %s\n", v)
		}
		if f.Deadlock != "" {
			out += fmt.Sprintf("      deadlock: %s\n", f.Deadlock)
		}
		if b, err := f.Schedule.Encode(); err == nil {
			out += "    repro:\n"
			out += indent(string(b), "      ")
		}
	}
	return out
}

func indent(s, prefix string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += prefix + s[start:i+1]
			start = i + 1
		}
	}
	if start < len(s) {
		out += prefix + s[start:] + "\n"
	}
	return out
}
