package main

import (
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestClusterSmoke deploys a real 3-process cluster on loopback,
// pushes a seeded workload through it with a mid-run SIGKILL and
// restart of a subordinate plus a full durability bounce, and
// requires the recovery oracle to find nothing. This is the
// acceptance test for the whole real-network path: camelot-node's
// boot/recover sequence, the control plane, UDP transport between
// processes, on-disk WAL replay, and the oracle over control
// connections.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "camelot-node")
	build := exec.Command("go", "build", "-o", bin, "camelot/cmd/camelot-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building camelot-node: %v\n%s", err, out)
	}

	rep, err := runCluster(clusterConfig{
		Nodes:   3,
		Txns:    40,
		Seed:    1,
		NodeBin: bin,
		Bounce:  true,
		Kill:    true,
		Retry:   25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	if rep.Committed == 0 {
		t.Error("no transaction committed; the workload exercised nothing")
	}
	if rep.Sent == 0 || rep.Recv == 0 {
		t.Errorf("no real datagrams flowed (sent=%d recv=%d)", rep.Sent, rep.Recv)
	}
	if rep.Oversize != 0 {
		t.Errorf("oversize refusals = %d, want 0", rep.Oversize)
	}
	t.Logf("outcomes: %d committed, %d aborted, %d unknown, %d skipped; transport: %d sent, %d recv, %d dropped",
		rep.Committed, rep.Aborted, rep.Unknown, rep.Skipped, rep.Sent, rep.Recv, rep.Dropped)
}

// TestClusterShardedSmoke is the acceptance test for the sharded data
// tier on real processes: 4 shards over 3 sites, a keyspace-aware
// workload whose transactions straddle shards on distinct sites under
// all three commit protocols (the per-txn cycle), a mid-run SIGKILL
// and restart of one site, and the cross-shard atomicity oracle
// checked both live and after the full durability bounce.
func TestClusterShardedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "camelot-node")
	build := exec.Command("go", "build", "-o", bin, "camelot/cmd/camelot-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building camelot-node: %v\n%s", err, out)
	}

	rep, err := runCluster(clusterConfig{
		Nodes:   3,
		Txns:    40,
		Seed:    1,
		Shards:  4,
		NodeBin: bin,
		Bounce:  true,
		Kill:    true,
		Retry:   25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	if rep.Committed == 0 {
		t.Error("no transaction committed; the workload exercised nothing")
	}
	if rep.CrossShardCommitted == 0 {
		t.Error("no cross-shard transaction committed; the sharded workload exercised nothing")
	}
	if rep.Sent == 0 || rep.Recv == 0 {
		t.Errorf("no real datagrams flowed (sent=%d recv=%d)", rep.Sent, rep.Recv)
	}
	t.Logf("outcomes: %d committed (%d/%d cross-shard), %d aborted, %d unknown, %d skipped",
		rep.Committed, rep.CrossShardCommitted, rep.CrossShard, rep.Aborted, rep.Unknown, rep.Skipped)
}

// TestClusterShardedMidCommitKill aims the SIGKILL at the coordinator
// of a cross-shard transaction under the sharded tier: the survivors
// must resolve their shards (locks re-acquirable, pieces agreeing)
// while the coordinator is still down.
func TestClusterShardedMidCommitKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "camelot-node")
	build := exec.Command("go", "build", "-o", bin, "camelot/cmd/camelot-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building camelot-node: %v\n%s", err, out)
	}

	rep, err := runCluster(clusterConfig{
		Nodes:         3,
		Txns:          40,
		Seed:          3,
		Shards:        4,
		Protocol:      "paxos",
		NodeBin:       bin,
		Bounce:        true,
		Kill:          true,
		KillMidCommit: true,
		Retry:         25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	if rep.CrossShardCommitted == 0 {
		t.Error("no cross-shard transaction committed; the sharded workload exercised nothing")
	}
}

// TestClusterPaxosSmoke is the real-process acceptance test for Paxos
// Commit's headline property: every commit runs -protocol=paxos at
// F=1, and the fault schedule SIGKILLs the coordinator of an all-site
// transaction while its own commit is in flight. The surviving
// acceptor quorum must resolve the transaction — locks released,
// survivors agreeing — before the coordinator returns, and the oracle
// must find nothing after its WAL-replay restart and the full
// durability bounce.
func TestClusterPaxosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "camelot-node")
	build := exec.Command("go", "build", "-o", bin, "camelot/cmd/camelot-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building camelot-node: %v\n%s", err, out)
	}

	rep, err := runCluster(clusterConfig{
		Nodes:         3,
		Txns:          40,
		Seed:          2,
		Protocol:      "paxos",
		NodeBin:       bin,
		Bounce:        true,
		Kill:          true,
		KillMidCommit: true,
		Retry:         25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	if rep.Committed == 0 {
		t.Error("no transaction committed; the workload exercised nothing")
	}
	if rep.Sent == 0 || rep.Recv == 0 {
		t.Errorf("no real datagrams flowed (sent=%d recv=%d)", rep.Sent, rep.Recv)
	}
	t.Logf("outcomes: %d committed, %d aborted, %d unknown, %d skipped; transport: %d sent, %d recv, %d dropped",
		rep.Committed, rep.Aborted, rep.Unknown, rep.Skipped, rep.Sent, rep.Recv, rep.Dropped)
}
