package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"camelot/internal/ctl"
)

// TestClusterSmoke deploys a real 3-process cluster on loopback,
// pushes a seeded workload through it with a mid-run SIGKILL and
// restart of a subordinate plus a full durability bounce, and
// requires the recovery oracle to find nothing. This is the
// acceptance test for the whole real-network path: camelot-node's
// boot/recover sequence, the control plane, UDP transport between
// processes, on-disk WAL replay, and the oracle over control
// connections.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "camelot-node")
	build := exec.Command("go", "build", "-o", bin, "camelot/cmd/camelot-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building camelot-node: %v\n%s", err, out)
	}

	rep, err := runCluster(clusterConfig{
		Nodes:   3,
		Txns:    40,
		Seed:    1,
		NodeBin: bin,
		Bounce:  true,
		Kill:    true,
		Retry:   25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	if rep.Committed == 0 {
		t.Error("no transaction committed; the workload exercised nothing")
	}
	if rep.Sent == 0 || rep.Recv == 0 {
		t.Errorf("no real datagrams flowed (sent=%d recv=%d)", rep.Sent, rep.Recv)
	}
	if rep.Oversize != 0 {
		t.Errorf("oversize refusals = %d, want 0", rep.Oversize)
	}
	t.Logf("outcomes: %d committed, %d aborted, %d unknown, %d skipped; transport: %d sent, %d recv, %d dropped",
		rep.Committed, rep.Aborted, rep.Unknown, rep.Skipped, rep.Sent, rep.Recv, rep.Dropped)
}

// TestClusterShardedSmoke is the acceptance test for the sharded data
// tier on real processes: 4 shards over 3 sites, a keyspace-aware
// workload whose transactions straddle shards on distinct sites under
// all three commit protocols (the per-txn cycle), a mid-run SIGKILL
// and restart of one site, and the cross-shard atomicity oracle
// checked both live and after the full durability bounce.
func TestClusterShardedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "camelot-node")
	build := exec.Command("go", "build", "-o", bin, "camelot/cmd/camelot-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building camelot-node: %v\n%s", err, out)
	}

	rep, err := runCluster(clusterConfig{
		Nodes:   3,
		Txns:    40,
		Seed:    1,
		Shards:  4,
		NodeBin: bin,
		Bounce:  true,
		Kill:    true,
		Retry:   25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	if rep.Committed == 0 {
		t.Error("no transaction committed; the workload exercised nothing")
	}
	if rep.CrossShardCommitted == 0 {
		t.Error("no cross-shard transaction committed; the sharded workload exercised nothing")
	}
	if rep.Sent == 0 || rep.Recv == 0 {
		t.Errorf("no real datagrams flowed (sent=%d recv=%d)", rep.Sent, rep.Recv)
	}
	t.Logf("outcomes: %d committed (%d/%d cross-shard), %d aborted, %d unknown, %d skipped",
		rep.Committed, rep.CrossShardCommitted, rep.CrossShard, rep.Aborted, rep.Unknown, rep.Skipped)
}

// TestClusterShardedMidCommitKill aims the SIGKILL at the coordinator
// of a cross-shard transaction under the sharded tier: the survivors
// must resolve their shards (locks re-acquirable, pieces agreeing)
// while the coordinator is still down.
func TestClusterShardedMidCommitKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "camelot-node")
	build := exec.Command("go", "build", "-o", bin, "camelot/cmd/camelot-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building camelot-node: %v\n%s", err, out)
	}

	rep, err := runCluster(clusterConfig{
		Nodes:         3,
		Txns:          40,
		Seed:          3,
		Shards:        4,
		Protocol:      "paxos",
		NodeBin:       bin,
		Bounce:        true,
		Kill:          true,
		KillMidCommit: true,
		Retry:         25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	if rep.CrossShardCommitted == 0 {
		t.Error("no cross-shard transaction committed; the sharded workload exercised nothing")
	}
}

// TestClusterPaxosSmoke is the real-process acceptance test for Paxos
// Commit's headline property: every commit runs -protocol=paxos at
// F=1, and the fault schedule SIGKILLs the coordinator of an all-site
// transaction while its own commit is in flight. The surviving
// acceptor quorum must resolve the transaction — locks released,
// survivors agreeing — before the coordinator returns, and the oracle
// must find nothing after its WAL-replay restart and the full
// durability bounce.
func TestClusterPaxosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "camelot-node")
	build := exec.Command("go", "build", "-o", bin, "camelot/cmd/camelot-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building camelot-node: %v\n%s", err, out)
	}

	rep, err := runCluster(clusterConfig{
		Nodes:         3,
		Txns:          40,
		Seed:          2,
		Protocol:      "paxos",
		NodeBin:       bin,
		Bounce:        true,
		Kill:          true,
		KillMidCommit: true,
		Retry:         25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	if rep.Committed == 0 {
		t.Error("no transaction committed; the workload exercised nothing")
	}
	if rep.Sent == 0 || rep.Recv == 0 {
		t.Errorf("no real datagrams flowed (sent=%d recv=%d)", rep.Sent, rep.Recv)
	}
	t.Logf("outcomes: %d committed, %d aborted, %d unknown, %d skipped; transport: %d sent, %d recv, %d dropped",
		rep.Committed, rep.Aborted, rep.Unknown, rep.Skipped, rep.Sent, rep.Recv, rep.Dropped)
}

// TestClusterNetemSmoke replays the smoke netem/v1 schedule against a
// real 3-process cluster: lossy, duplicating, reordering, jittery
// links through the emulator proxies, a one-way partition window, and
// a SIGKILL/restart of site 3 mid-storm. After the heal the oracle
// must find nothing — including after the durability bounce — and the
// retransmit+inquiry total must stay under the pinned budget the
// exponential backoff exists to keep.
func TestClusterNetemSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "camelot-node")
	build := exec.Command("go", "build", "-o", bin, "camelot/cmd/camelot-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building camelot-node: %v\n%s", err, out)
	}

	rep, err := runNetem(netemConfig{
		ScheduleFile: filepath.Join("testdata", "netem-smoke.json"),
		Nodes:        3,
		Seed:         1,
		NodeBin:      bin,
		Retry:        25 * time.Millisecond,
		RetryCap:     400 * time.Millisecond,
		OpTimeout:    2 * time.Second,
		MaxRetry:     20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	if rep.Committed == 0 {
		t.Error("no transaction committed through the storm")
	}
	if rep.Emulator.Seen == 0 {
		t.Error("no datagram crossed the emulator; the proxies were not in the path")
	}
	if rep.Emulator.Dropped == 0 {
		t.Error("the lossy schedule dropped nothing; the emulator was inert")
	}
	t.Logf("outcomes: %d committed, %d aborted, %d unknown, %d skipped; %d unavailable calls",
		rep.Committed, rep.Aborted, rep.Unknown, rep.Skipped, rep.Unavailable)
	t.Logf("emulator: %d seen, %d dropped (%d cut), %d dupped, %d delayed; %d retransmits, %d inquiries",
		rep.Emulator.Seen, rep.Emulator.Dropped, rep.Emulator.Cut,
		rep.Emulator.Dupped, rep.Emulator.Delayed, rep.Retransmits, rep.Inquiries)
}

// TestClusterFrozenNodeDeadline is the real-process SIGSTOP
// regression: a control call against a frozen (not dead) camelot-node
// must come back as ctl.ErrUnavailable within the deadline rather
// than hang, and a Reconnect after SIGCONT must restore service.
func TestClusterFrozenNodeDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "camelot-node")
	build := exec.Command("go", "build", "-o", bin, "camelot/cmd/camelot-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building camelot-node: %v\n%s", err, out)
	}

	p, err := spawn(bin, 1, filepath.Join(t.TempDir(), "site1.wal"),
		"127.0.0.1:0", "127.0.0.1:0", 25*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer p.stop()
	p.client.SetTimeout(500 * time.Millisecond)

	if _, err := p.client.Ping(); err != nil {
		t.Fatalf("ping before freeze: %v", err)
	}
	if err := p.cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	// Signal only posts the stop; an already-running server thread can
	// serve one more round trip before the group stop lands. Wait for
	// the process to actually reach the stopped state.
	waitStopped(t, p.cmd.Process.Pid)
	start := time.Now()
	_, err = p.client.Ping()
	elapsed := time.Since(start)
	if !errors.Is(err, ctl.ErrUnavailable) {
		t.Fatalf("ping against frozen node = %v, want ErrUnavailable", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("deadline took %v; the freeze was not bounded", elapsed)
	}
	if !p.client.Broken() {
		t.Fatal("connection not poisoned after the deadline")
	}
	if err := p.cmd.Process.Signal(syscall.SIGCONT); err != nil {
		t.Fatal(err)
	}
	if err := p.client.Reconnect(); err != nil {
		t.Fatalf("reconnect after thaw: %v", err)
	}
	if id, err := p.client.Ping(); err != nil || id != 1 {
		t.Fatalf("ping after thaw = %v, %v; want site 1", id, err)
	}
}

// waitStopped polls /proc until pid's state is T (stopped) — the
// point after which the frozen node provably cannot answer.
func waitStopped(t *testing.T, pid int) {
	t.Helper()
	stat := fmt.Sprintf("/proc/%d/stat", pid)
	for i := 0; i < 200; i++ {
		b, err := os.ReadFile(stat)
		if err != nil {
			t.Fatalf("reading %s: %v", stat, err)
		}
		// State is the field after the parenthesized comm.
		if j := bytes.LastIndexByte(b, ')'); j >= 0 && j+2 < len(b) && b[j+2] == 'T' {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("process never reached the stopped state")
}
