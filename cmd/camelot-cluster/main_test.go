package main

import (
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestClusterSmoke deploys a real 3-process cluster on loopback,
// pushes a seeded workload through it with a mid-run SIGKILL and
// restart of a subordinate plus a full durability bounce, and
// requires the recovery oracle to find nothing. This is the
// acceptance test for the whole real-network path: camelot-node's
// boot/recover sequence, the control plane, UDP transport between
// processes, on-disk WAL replay, and the oracle over control
// connections.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "camelot-node")
	build := exec.Command("go", "build", "-o", bin, "camelot/cmd/camelot-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building camelot-node: %v\n%s", err, out)
	}

	rep, err := runCluster(clusterConfig{
		Nodes:   3,
		Txns:    40,
		Seed:    1,
		NodeBin: bin,
		Bounce:  true,
		Kill:    true,
		Retry:   25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	if rep.Committed == 0 {
		t.Error("no transaction committed; the workload exercised nothing")
	}
	if rep.Sent == 0 || rep.Recv == 0 {
		t.Errorf("no real datagrams flowed (sent=%d recv=%d)", rep.Sent, rep.Recv)
	}
	if rep.Oversize != 0 {
		t.Errorf("oversize refusals = %d, want 0", rep.Oversize)
	}
	t.Logf("outcomes: %d committed, %d aborted, %d unknown, %d skipped; transport: %d sent, %d recv, %d dropped",
		rep.Committed, rep.Aborted, rep.Unknown, rep.Skipped, rep.Sent, rep.Recv, rep.Dropped)
}

// TestClusterPaxosSmoke is the real-process acceptance test for Paxos
// Commit's headline property: every commit runs -protocol=paxos at
// F=1, and the fault schedule SIGKILLs the coordinator of an all-site
// transaction while its own commit is in flight. The surviving
// acceptor quorum must resolve the transaction — locks released,
// survivors agreeing — before the coordinator returns, and the oracle
// must find nothing after its WAL-replay restart and the full
// durability bounce.
func TestClusterPaxosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "camelot-node")
	build := exec.Command("go", "build", "-o", bin, "camelot/cmd/camelot-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building camelot-node: %v\n%s", err, out)
	}

	rep, err := runCluster(clusterConfig{
		Nodes:         3,
		Txns:          40,
		Seed:          2,
		Protocol:      "paxos",
		NodeBin:       bin,
		Bounce:        true,
		Kill:          true,
		KillMidCommit: true,
		Retry:         25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	if rep.Committed == 0 {
		t.Error("no transaction committed; the workload exercised nothing")
	}
	if rep.Sent == 0 || rep.Recv == 0 {
		t.Errorf("no real datagrams flowed (sent=%d recv=%d)", rep.Sent, rep.Recv)
	}
	t.Logf("outcomes: %d committed, %d aborted, %d unknown, %d skipped; transport: %d sent, %d recv, %d dropped",
		rep.Committed, rep.Aborted, rep.Unknown, rep.Skipped, rep.Sent, rep.Recv, rep.Dropped)
}
