package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"camelot/camelot"
	"camelot/internal/ctl"
	"camelot/internal/netem"
	"camelot/internal/oracle"
)

// NetemReportSchema identifies the netem-mode -json output format.
const NetemReportSchema = "camelot-cluster-netem/v1"

// defaultNetemDuration is the fault-phase length when the schedule
// does not set one.
const defaultNetemDuration = 5 * time.Second

// netemConfig drives one netem-schedule run against a real cluster.
type netemConfig struct {
	ScheduleFile string
	Nodes        int
	Seed         int64
	// Protocol pins every commit; empty rotates 2pc/nb/paxos per txn.
	Protocol  string
	NodeBin   string
	Retry     time.Duration
	RetryCap  time.Duration
	OpTimeout time.Duration
	// MaxRetry, when positive, is the pinned bound on the cluster's
	// total retransmits+inquiries for the schedule; exceeding it is
	// reported as a violation (the backoff budget check).
	MaxRetry int
	JSON     bool
}

// netemReport is the run's outcome summary: workload outcomes, the
// transport and retry ledgers, the emulator's decision tallies, and
// the oracle's verdict.
type netemReport struct {
	Schema      string         `json:"schema"`
	Nodes       int            `json:"nodes"`
	Seed        int64          `json:"seed"`
	Protocol    string         `json:"protocol,omitempty"`
	Schedule    netem.Schedule `json:"schedule"`
	Txns        int            `json:"txns"`
	Committed   int            `json:"committed"`
	Aborted     int            `json:"aborted"`
	Unknown     int            `json:"unknown"`
	Skipped     int            `json:"skipped"`
	Sent        int            `json:"datagrams_sent"`
	Recv        int            `json:"datagrams_received"`
	Dropped     int            `json:"datagrams_dropped"`
	Retransmits int            `json:"retransmits"`
	Inquiries   int            `json:"inquiries"`
	// Unavailable counts driver calls that hit their deadline — the
	// typed ErrUnavailable verdicts, each one a hang that didn't happen.
	Unavailable int          `json:"unavailable_calls"`
	Emulator    netem.Counts `json:"emulator"`
	Violations  []string     `json:"violations"`
}

func (r *netemReport) print(w *os.File) {
	fmt.Fprintf(w, "camelot-cluster netem: %d nodes, seed %d, %d txns driven\n", r.Nodes, r.Seed, r.Txns)
	fmt.Fprintf(w, "  outcomes: %d committed, %d aborted, %d unknown, %d skipped; %d calls returned unavailable\n",
		r.Committed, r.Aborted, r.Unknown, r.Skipped, r.Unavailable)
	fmt.Fprintf(w, "  emulator: %d seen, %d dropped (%d cut), %d dupped, %d delayed\n",
		r.Emulator.Seen, r.Emulator.Dropped, r.Emulator.Cut, r.Emulator.Dupped, r.Emulator.Delayed)
	fmt.Fprintf(w, "  transport: %d sent, %d received, %d dropped; %d retransmits, %d inquiries\n",
		r.Sent, r.Recv, r.Dropped, r.Retransmits, r.Inquiries)
	if len(r.Violations) == 0 {
		fmt.Fprintf(w, "  oracle: all invariants hold\n")
		return
	}
	fmt.Fprintf(w, "  oracle: %d violations\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(w, "    %s\n", v)
	}
}

// runClock is the run-relative wall clock the emulator and fault
// scheduler share; it reads zero until the workload starts.
type runClock struct {
	mu sync.Mutex
	t0 time.Time
}

func (c *runClock) Start() {
	c.mu.Lock()
	c.t0 = time.Now()
	c.mu.Unlock()
}

func (c *runClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.t0.IsZero() {
		return 0
	}
	return time.Since(c.t0)
}

// netemDriver is one run's state. Everything — workload, fault
// application, heal — runs on the driver goroutine; only the proxy's
// forwarding loops are concurrent, and they touch nothing here.
type netemDriver struct {
	cfg     netemConfig
	sched   netem.Schedule
	bin     string
	clock   *runClock
	proxy   *netem.Proxy
	sites   []camelot.SiteID
	procs   map[camelot.SiteID]*proc
	stopped map[camelot.SiteID]bool
	rep     *netemReport
}

// runNetem executes one netem/v1 schedule against a freshly spawned
// loopback cluster: UDP interposed through the emulator's proxies,
// process faults applied on the schedule's clock, then a heal and the
// full recovery-oracle check plus a durability bounce.
func runNetem(cfg netemConfig) (*netemReport, error) {
	if cfg.Nodes < 2 {
		return nil, errors.New("need at least 2 nodes")
	}
	b, err := os.ReadFile(cfg.ScheduleFile)
	if err != nil {
		return nil, err
	}
	sched, err := netem.DecodeSchedule(b)
	if err != nil {
		return nil, err
	}
	for _, f := range sched.Procs {
		if int(f.Site) > cfg.Nodes {
			return nil, fmt.Errorf("schedule proc fault site %d beyond %d nodes", f.Site, cfg.Nodes)
		}
	}
	for _, f := range sched.WAL {
		if int(f.Site) > cfg.Nodes {
			return nil, fmt.Errorf("schedule wal fault site %d beyond %d nodes", f.Site, cfg.Nodes)
		}
	}

	dir, err := os.MkdirTemp("", "camelot-netem-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	bin, err := nodeBinary(clusterConfig{NodeBin: cfg.NodeBin}, dir)
	if err != nil {
		return nil, err
	}

	d := &netemDriver{
		cfg:     cfg,
		sched:   sched,
		bin:     bin,
		clock:   &runClock{},
		procs:   make(map[camelot.SiteID]*proc),
		stopped: make(map[camelot.SiteID]bool),
		rep: &netemReport{Schema: NetemReportSchema, Nodes: cfg.Nodes, Seed: cfg.Seed,
			Protocol: cfg.Protocol, Schedule: sched, Violations: []string{}},
	}
	defer func() {
		for _, p := range d.procs {
			p.stop()
		}
		if d.proxy != nil {
			d.proxy.Close()
		}
	}()

	// Boot every node. Sites with a WAL fault get the failing store.
	walFail := make(map[camelot.SiteID]int)
	for _, f := range sched.WAL {
		walFail[camelot.SiteID(f.Site)] = f.FailAppend
	}
	for i := 1; i <= cfg.Nodes; i++ {
		id := camelot.SiteID(i)
		p, err := spawn(bin, id, filepath.Join(dir, fmt.Sprintf("site%d.wal", i)),
			"127.0.0.1:0", "127.0.0.1:0", cfg.Retry, d.nodeFlags(id, walFail)...)
		if err != nil {
			return nil, err
		}
		p.client.SetTimeout(cfg.OpTimeout)
		d.procs[id] = p
		d.sites = append(d.sites, id)
	}

	// Interpose the emulator: one proxy pipe per ordered site pair,
	// and each node's peer map points at its outbound pipes.
	d.proxy = netem.NewProxy(netem.NewEmulator(sched, d.clock.Elapsed))
	proxied := make(map[camelot.SiteID]map[camelot.SiteID]string, cfg.Nodes)
	for _, a := range d.sites {
		proxied[a] = make(map[camelot.SiteID]string, cfg.Nodes-1)
		for _, bb := range d.sites {
			if a == bb {
				continue
			}
			addr, err := d.proxy.Open(uint32(a), uint32(bb), d.procs[bb].udpAddr)
			if err != nil {
				return nil, err
			}
			proxied[a][bb] = addr
		}
	}
	for _, id := range d.sites {
		if err := d.procs[id].client.SetPeers(proxied[id]); err != nil {
			return nil, fmt.Errorf("site %d: peers: %w", id, err)
		}
	}

	// Fault phase: drive transactions while the schedule's clock runs,
	// applying each process fault as it comes due between operations.
	duration := time.Duration(sched.DurationMs) * time.Millisecond
	if duration <= 0 {
		duration = defaultNetemDuration
	}
	pending := append([]netem.ProcFault(nil), sched.Procs...)
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].AtMs < pending[j].AtMs })

	var txns []oracle.Txn
	protocols := []string{"2pc", "nb", "paxos"}
	d.clock.Start()
	for i := 0; d.clock.Elapsed() < duration; i++ {
		for len(pending) > 0 && time.Duration(pending[0].AtMs)*time.Millisecond <= d.clock.Elapsed() {
			d.applyProcFault(pending[0], proxied)
			pending = pending[1:]
		}
		protocol := cfg.Protocol
		if protocol == "" {
			protocol = protocols[i%len(protocols)]
		}
		txns = append(txns, d.runTxn(i, protocol))
		time.Sleep(20 * time.Millisecond)
	}
	// Faults the workload clock passed while a slow call was in
	// flight still apply before the heal (a kill at the very end of
	// the window must still have happened for the heal to undo it).
	for len(pending) > 0 && time.Duration(pending[0].AtMs)*time.Millisecond <= duration {
		d.applyProcFault(pending[0], proxied)
		pending = pending[1:]
	}
	d.rep.Txns = len(txns)

	// Heal: continue frozen processes, restart dead ones with intact
	// disks, and re-point every peer map at the real addresses — the
	// proxies (and whatever open-ended windows the schedule still has)
	// drop out of the path entirely.
	for _, id := range d.sites {
		if d.stopped[id] {
			d.procs[id].cmd.Process.Signal(syscall.SIGCONT) //nolint:errcheck // heal is best effort before verify
			delete(d.stopped, id)
		}
	}
	for _, id := range d.sites {
		p := d.procs[id]
		if !p.down && walFail[id] >= 0 && containsFlag(p.extra, "-wal-fail-append") {
			// A site whose "disk" died fail-stopped its log; give it a
			// healthy device for the heal by bouncing it without the
			// fault flag.
			p.kill()
		}
		if p.down {
			if err := d.respawn(p, d.nodeFlags(id, nil)); err != nil {
				return nil, fmt.Errorf("heal: restarting site %d: %w", id, err)
			}
		}
	}
	real := make(map[camelot.SiteID]string, len(d.sites))
	for id, p := range d.procs {
		real[id] = p.udpAddr
	}
	for _, id := range d.sites {
		c := d.client(id)
		if c == nil {
			return nil, fmt.Errorf("heal: site %d unreachable", id)
		}
		if err := c.SetPeers(real); err != nil {
			return nil, fmt.Errorf("heal: site %d: peers: %w", id, err)
		}
	}

	// Quiesce: backed-off retries and inquiries resolve everything
	// in-doubt now that datagrams flow clean.
	time.Sleep(40 * cfg.Retry)

	views := make(map[camelot.SiteID]oracle.SiteView, len(d.sites))
	for _, id := range d.sites {
		views[id] = &ctl.View{C: d.procs[id].client, Server: "store"}
	}
	for _, v := range oracle.CheckViews(d.sites, views, txns) {
		d.rep.Violations = append(d.rep.Violations, v.String())
	}

	// The ledgers, before the bounce resets per-process counters.
	for _, id := range d.sites {
		if st, err := d.procs[id].client.TransportStats(); err == nil {
			d.rep.Sent += st.Sent
			d.rep.Recv += st.Recv
			d.rep.Dropped += st.Dropped
			d.rep.Retransmits += st.Retransmits
			d.rep.Inquiries += st.Inquiries
		}
	}
	d.rep.Emulator = d.proxy.Counts()
	if cfg.MaxRetry > 0 && d.rep.Retransmits+d.rep.Inquiries > cfg.MaxRetry {
		d.rep.Violations = append(d.rep.Violations, fmt.Sprintf(
			"retry budget: %d retransmits + %d inquiries exceed the pinned bound %d",
			d.rep.Retransmits, d.rep.Inquiries, cfg.MaxRetry))
	}

	// Durability bounce: everything must survive a full-cluster crash.
	time.Sleep(250 * time.Millisecond)
	for _, id := range d.sites {
		d.procs[id].kill()
	}
	for _, id := range d.sites {
		if err := d.respawn(d.procs[id], d.nodeFlags(id, nil)); err != nil {
			return nil, fmt.Errorf("bounce: restarting site %d: %w", id, err)
		}
	}
	for _, id := range d.sites {
		if err := d.procs[id].client.SetPeers(real); err != nil {
			return nil, fmt.Errorf("bounce: site %d: peers: %w", id, err)
		}
	}
	time.Sleep(20 * cfg.Retry)
	for _, id := range d.sites {
		views[id] = &ctl.View{C: d.procs[id].client, Server: "store"}
	}
	for _, v := range oracle.CheckViews(d.sites, views, txns) {
		d.rep.Violations = append(d.rep.Violations, "durability: "+v.String())
	}

	for _, tx := range txns {
		switch tx.Outcome {
		case oracle.Committed:
			d.rep.Committed++
		case oracle.Aborted:
			d.rep.Aborted++
		case oracle.Skipped:
			d.rep.Skipped++
		default:
			d.rep.Unknown++
		}
	}
	return d.rep, nil
}

// nodeFlags assembles a site's extra daemon flags: the backoff cap,
// plus the failing WAL store when the schedule targets the site (nil
// walFail — a heal or bounce respawn — always gets a healthy disk).
func (d *netemDriver) nodeFlags(id camelot.SiteID, walFail map[camelot.SiteID]int) []string {
	var out []string
	if d.cfg.RetryCap > 0 {
		out = append(out, "-retry-cap", d.cfg.RetryCap.String())
	}
	if n, hit := walFail[id]; hit {
		out = append(out, "-wal-fail-append", fmt.Sprint(n))
	}
	return out
}

func containsFlag(flags []string, name string) bool {
	for _, f := range flags {
		if f == name {
			return true
		}
	}
	return false
}

// respawn restarts a dead node on its previous addresses with the
// given flags (unlike proc.restart, which replays the old ones).
func (d *netemDriver) respawn(p *proc, extra []string) error {
	np, err := spawn(d.bin, p.site, p.wal, p.udpAddr, p.ctlAddr, d.cfg.Retry, extra...)
	if err != nil {
		return err
	}
	np.client.SetTimeout(d.cfg.OpTimeout)
	*p = *np
	return nil
}

// applyProcFault applies one due process-level fault.
func (d *netemDriver) applyProcFault(f netem.ProcFault, proxied map[camelot.SiteID]map[camelot.SiteID]string) {
	id := camelot.SiteID(f.Site)
	p := d.procs[id]
	switch f.Op {
	case netem.OpKill:
		p.kill()
	case netem.OpStop:
		if !p.down {
			p.cmd.Process.Signal(syscall.SIGSTOP) //nolint:errcheck // the freeze is the experiment
			d.stopped[id] = true
		}
	case netem.OpCont:
		if !p.down && d.stopped[id] {
			p.cmd.Process.Signal(syscall.SIGCONT) //nolint:errcheck // symmetric with the stop
			delete(d.stopped, id)
		}
	case netem.OpRestart:
		if !p.down {
			return
		}
		if err := d.respawn(p, p.extra); err != nil {
			d.rep.Violations = append(d.rep.Violations, fmt.Sprintf("restart: site %d: %v", id, err))
			return
		}
		// Same addresses as before, so the proxies still point at it;
		// the fresh process just needs its outbound pipe map back.
		if err := p.client.SetPeers(proxied[id]); err != nil {
			d.rep.Violations = append(d.rep.Violations, fmt.Sprintf("restart: site %d: peers: %v", id, err))
		}
	}
}

// client returns a usable control client for the site: reconnecting a
// poisoned one, nil if the site is down, frozen, or unreachable.
func (d *netemDriver) client(id camelot.SiteID) *ctl.Client {
	p := d.procs[id]
	if p.down || d.stopped[id] {
		return nil
	}
	if p.client.Broken() {
		if err := p.client.Reconnect(); err != nil {
			return nil
		}
	}
	return p.client
}

// runTxn drives one storm-phase transaction: coordinator rotates over
// the reachable sites, the key is written at every reachable site,
// and the chosen protocol commits — all under the per-call deadline,
// so a frozen or dead node costs bounded time, never a hang.
func (d *netemDriver) runTxn(i int, protocol string) oracle.Txn {
	key := fmt.Sprintf("txn%04d", i)
	tx := oracle.Txn{Key: key, Outcome: oracle.Skipped}

	var avail []camelot.SiteID
	for _, id := range d.sites {
		if d.client(id) != nil {
			avail = append(avail, id)
		}
	}
	if len(avail) == 0 {
		return tx
	}
	coord := avail[i%len(avail)]
	cc := d.client(coord)
	if cc == nil {
		return tx
	}
	tx.Sites = avail

	t, err := cc.Begin()
	if err != nil {
		d.note(err)
		return tx
	}
	tx.Family = t.Family

	ok := true
	var remote []camelot.SiteID
	for _, id := range avail {
		c := d.client(id)
		if c == nil {
			ok = false
			break
		}
		if err := c.Write("store", t, key, []byte(fmt.Sprintf("v%d@%d", i, id))); err != nil {
			d.note(err)
			ok = false
			break
		}
		if id != coord {
			remote = append(remote, id)
		}
	}
	if ok && len(remote) > 0 {
		if err := cc.AddSites(t, remote); err != nil {
			d.note(err)
			ok = false
		}
	}
	if !ok {
		// The write set is incomplete; abort, best-effort. A deadline
		// on the abort itself leaves the outcome unknown.
		if cc := d.client(coord); cc != nil {
			if err := cc.Abort(t); err == nil {
				tx.Outcome = oracle.Aborted
				return tx
			}
			d.note(err)
		}
		tx.Outcome = oracle.Unknown
		return tx
	}
	_, err = cc.CommitWith(t, protocol)
	switch {
	case err == nil:
		tx.Outcome = oracle.Committed
	case errors.Is(err, ctl.ErrAborted):
		tx.Outcome = oracle.Aborted
	default:
		d.note(err)
		tx.Outcome = oracle.Unknown
	}
	return tx
}

// note tallies deadline verdicts for the report.
func (d *netemDriver) note(err error) {
	if errors.Is(err, ctl.ErrUnavailable) {
		d.rep.Unavailable++
	}
}
