package main

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"camelot/camelot"
	"camelot/internal/ctl"
	"camelot/internal/oracle"
	"camelot/internal/shardmap"
)

// shardProtocols is the deterministic per-transaction protocol cycle
// used when no -protocol is pinned: the sharded run exercises
// cross-shard commitment under all three protocols.
var shardProtocols = []string{"2pc", "nb", "paxos"}

// keyHomedAt finds a key under prefix whose shard homes at site, by
// deterministic candidate search — a pure function of (map, prefix,
// site), so the workload for a seed is identical on every run.
func keyHomedAt(m *shardmap.Map, prefix string, site camelot.SiteID) (string, error) {
	for c := 0; c < 4096; c++ {
		k := fmt.Sprintf("%s.%d", prefix, c)
		if m.SiteOf(k) == site {
			return k, nil
		}
	}
	return "", fmt.Errorf("no key under %q homes at site %d (map has no shard there?)", prefix, site)
}

// runShardTxn drives one keyspace-aware workload transaction: a key
// set drawn uniformly over the sites (deliberately straddling shards
// on distinct sites most of the time), sometimes one of eight shared
// hot keys (the skew), each write routed to its key's home site, the
// participant set derived from the shards touched, and the commit run
// by the per-transaction protocol cycle (or the pinned -protocol).
func runShardTxn(rng *rand.Rand, i int, sites []camelot.SiteID, procs map[camelot.SiteID]*proc,
	protocol string, m *shardmap.Map) oracle.Txn {

	// Draw the whole schedule before consulting liveness, so a seed
	// names one deterministic workload regardless of timing. Targets
	// come from the map's placed sites: a site hosting no shard can
	// never be written, only coordinate.
	placed := m.Sites()
	nTargets := 1
	if len(placed) > 1 && rng.Float64() < 0.75 {
		nTargets = 2 + rng.Intn(len(placed)-1) // cross-shard, usually
	}
	perm := rng.Perm(len(placed))
	withHot := rng.Float64() < 0.35
	hotPick := rng.Intn(8)
	if protocol == "" {
		protocol = shardProtocols[i%len(shardProtocols)]
	}

	writes := []oracle.Write{}
	for j := 0; j < nTargets; j++ {
		target := placed[perm[j]]
		key, err := keyHomedAt(m, fmt.Sprintf("t%04d.x%d", i, j), target)
		if err != nil {
			continue // a site with no shards simply drops out of the write set
		}
		writes = append(writes, oracle.Write{Key: key, Site: target})
	}
	if withHot {
		hot := fmt.Sprintf("hot%d", hotPick)
		if home := m.SiteOf(hot); home != 0 {
			dup := false
			for _, w := range writes {
				dup = dup || w.Key == hot
			}
			if !dup {
				writes = append(writes, oracle.Write{Key: hot, Site: home, Shared: true})
			}
		}
	}
	tx := oracle.Txn{Outcome: oracle.Skipped, Writes: writes}
	if len(writes) == 0 {
		return tx
	}
	tx.Key = writes[0].Key

	// The coordinator is the first key's home: always a participant,
	// so the commit instance never needs a site outside the write set.
	coord := writes[0].Site
	if procs[coord].down {
		return tx
	}
	t, err := procs[coord].client.Begin()
	if err != nil {
		return tx
	}
	tx.Family = t.Family

	ok := true
	participants := map[camelot.SiteID]bool{coord: true}
	for _, w := range writes {
		if procs[w.Site].down {
			ok = false
			break
		}
		if err := procs[w.Site].client.WriteKey(t, w.Key, []byte(fmt.Sprintf("v%d@%d", i, w.Site))); err != nil {
			ok = false
			break
		}
		participants[w.Site] = true
	}
	if !ok {
		procs[coord].client.Abort(t) //nolint:errcheck // recorded as aborted regardless
		tx.Outcome = oracle.Aborted
		return tx
	}
	var remote []camelot.SiteID
	for _, id := range sites {
		if participants[id] && id != coord {
			remote = append(remote, id)
		}
	}
	if len(remote) > 0 {
		if err := procs[coord].client.AddSites(t, remote); err != nil {
			procs[coord].client.Abort(t) //nolint:errcheck // recorded as aborted regardless
			tx.Outcome = oracle.Aborted
			return tx
		}
	}
	_, err = procs[coord].client.CommitWith(t, protocol)
	switch {
	case err == nil:
		tx.Outcome = oracle.Committed
	case errors.Is(err, ctl.ErrAborted):
		tx.Outcome = oracle.Aborted
	default:
		tx.Outcome = oracle.Unknown
	}
	return tx
}

// runShardTxnKillCoordinator is the sharded mid-commit kill: the
// victim coordinates a transaction whose write set straddles a shard
// on every site, its commit is issued on a separate goroutine, and
// the process is SIGKILLed a moment later. The survivors must resolve
// their shards of the transaction on their own.
func runShardTxnKillCoordinator(i int, procs map[camelot.SiteID]*proc,
	protocol string, coord camelot.SiteID, m *shardmap.Map) oracle.Txn {

	if protocol == "" {
		protocol = shardProtocols[i%len(shardProtocols)]
	}
	writes := []oracle.Write{}
	for j, id := range m.Sites() {
		key, err := keyHomedAt(m, fmt.Sprintf("t%04d.x%d", i, j), id)
		if err != nil {
			continue
		}
		writes = append(writes, oracle.Write{Key: key, Site: id})
	}
	tx := oracle.Txn{Outcome: oracle.Skipped, Writes: writes}
	if len(writes) == 0 {
		return tx
	}
	tx.Key = writes[0].Key

	t, err := procs[coord].client.Begin()
	if err != nil {
		return tx
	}
	tx.Family = t.Family
	var remote []camelot.SiteID
	for _, w := range writes {
		if err := procs[w.Site].client.WriteKey(t, w.Key, []byte(fmt.Sprintf("v%d@%d", i, w.Site))); err != nil {
			procs[coord].client.Abort(t) //nolint:errcheck // recorded as aborted regardless
			tx.Outcome = oracle.Aborted
			return tx
		}
		if w.Site != coord {
			remote = append(remote, w.Site)
		}
	}
	if err := procs[coord].client.AddSites(t, remote); err != nil {
		procs[coord].client.Abort(t) //nolint:errcheck // recorded as aborted regardless
		tx.Outcome = oracle.Aborted
		return tx
	}

	var witnesses []*proc
	for _, w := range writes {
		if w.Site != coord {
			witnesses = append(witnesses, procs[w.Site])
		}
	}
	before := settleRecv(witnesses, time.Second)
	done := make(chan error, 1)
	go func() {
		_, err := procs[coord].client.CommitWith(t, protocol)
		done <- err
	}()
	waitCommitUnderway(witnesses, before, time.Second)
	procs[coord].kill()
	switch err := <-done; {
	case err == nil:
		tx.Outcome = oracle.Committed
	case errors.Is(err, ctl.ErrAborted):
		tx.Outcome = oracle.Aborted
	default:
		tx.Outcome = oracle.Unknown
	}
	return tx
}

// shardSurvivorsResolved checks, while the killed coordinator is
// still down, that every surviving site resolved its shard of the
// transaction: the survivor's own key must be re-lockable (a blocked
// protocol would leak the lock) and the survivors' pieces of the
// write set must agree — all landed or none did.
func shardSurvivorsResolved(sites []camelot.SiteID, procs map[camelot.SiteID]*proc, tx oracle.Txn) []string {
	var out []string
	type piece struct {
		site    camelot.SiteID
		key     string
		present bool
	}
	var pieces []piece
	for _, w := range tx.Writes {
		p := procs[w.Site]
		if p.down {
			continue
		}
		if err := probeLockRetry(func() error {
			pt, err := p.client.Begin()
			if err != nil {
				return fmt.Errorf("begin: %w", err)
			}
			defer p.client.Abort(pt) //nolint:errcheck // probe cleanup
			if err := p.client.WriteKey(pt, w.Key, []byte("probe")); err != nil {
				return fmt.Errorf("%q still locked: %w", w.Key, err)
			}
			return nil
		}); err != nil {
			out = append(out, fmt.Sprintf("non-blocking: site %d: %v with coordinator down", w.Site, err))
		}
		_, ok, err := p.client.PeekKey(w.Key)
		if err != nil {
			out = append(out, fmt.Sprintf("non-blocking: site %d: peek %q: %v", w.Site, w.Key, err))
			continue
		}
		pieces = append(pieces, piece{site: w.Site, key: w.Key, present: ok})
	}
	if len(pieces) == 0 {
		return out
	}
	for _, p := range pieces[1:] {
		if p.present != pieces[0].present {
			out = append(out, fmt.Sprintf("non-blocking: survivors' shards disagree with coordinator down: site %d %q=%v, site %d %q=%v",
				pieces[0].site, pieces[0].key, pieces[0].present, p.site, p.key, p.present))
		}
	}
	return out
}
