// Command camelot-cluster deploys and torments a real multi-process
// Camelot cluster: it spawns one camelot-node per site on loopback,
// drives a seeded distributed-transaction workload through their
// control ports — two-phase, non-blocking, and Paxos commits,
// read-only participants, randomized write sets — SIGKILLs a
// subordinate mid-run (or, with -kill-mid-commit, a coordinator with
// its own commit in flight), restarts it against its surviving
// write-ahead log, and then checks the recovery oracle's invariants
// (atomicity, client view, outcome agreement, liveness) over the
// control plane. With -bounce it finally SIGKILLs and restarts every
// node and checks again: updates that survive that pass were
// genuinely on disk.
//
// This is the chaos explorer's discipline applied to real processes:
// same invariants, same oracle, but real UDP loss-and-reorder, real
// fsync, real SIGKILL.
//
//	camelot-cluster -nodes 3 -txns 200 -seed 1
//
// With -netem FILE the driver instead replays a netem/v1 schedule
// (internal/netem) against the cluster: every UDP link is interposed
// through an emulator proxy applying the schedule's drop, duplication,
// reordering, delay-jitter, and partition windows, while the schedule's
// process faults (kill, stop, cont, restart) and WAL disk faults land
// on the same clock. After the fault phase the driver heals the
// cluster — continues frozen processes, restarts dead ones, removes
// the proxies from the path — and checks the same oracle invariants,
// plus an optional pinned bound on total retransmits+inquiries
// (-max-retry), the budget the exponential backoff must keep.
//
//	camelot-cluster -nodes 3 -netem testdata/netem-smoke.json -max-retry 4000
//
// Exit status is nonzero if any invariant was violated.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"camelot/camelot"
	"camelot/internal/ctl"
	"camelot/internal/oracle"
	"camelot/internal/shardmap"
)

// ReportSchema identifies the -json output format.
const ReportSchema = "camelot-cluster/v1"

func main() {
	cfg := clusterConfig{}
	flag.IntVar(&cfg.Nodes, "nodes", 3, "number of sites")
	flag.IntVar(&cfg.Txns, "txns", 200, "workload transactions")
	flag.Int64Var(&cfg.Seed, "seed", 1, "workload seed")
	flag.StringVar(&cfg.NodeBin, "node", "", "camelot-node binary (built with 'go build' when empty)")
	flag.StringVar(&cfg.Protocol, "protocol", "", "commit protocol for every transaction: 2pc, nb, or paxos (empty: per-txn random mix)")
	flag.IntVar(&cfg.Shards, "shards", 0, "shard the keyspace into N shards round-robin over the sites and drive a keyspace-aware workload (0: legacy single-server workload)")
	flag.BoolVar(&cfg.JSON, "json", false, "emit a JSON report on stdout")
	flag.BoolVar(&cfg.Bounce, "bounce", true, "after the run, kill and restart every node and re-check durability")
	flag.BoolVar(&cfg.Kill, "kill", true, "SIGKILL a subordinate mid-run and restart it later")
	flag.BoolVar(&cfg.KillMidCommit, "kill-mid-commit", false, "make the killed site the coordinator and SIGKILL it during its own commit")
	flag.DurationVar(&cfg.Retry, "retry", 50*time.Millisecond, "node retry interval")
	netemFile := flag.String("netem", "", "netem/v1 schedule file: run the network-fault-emulation mode instead of the legacy kill/restart workload")
	retryCap := flag.Duration("retry-cap", 0, "netem mode: node retry-backoff cap (0: the node default)")
	opTimeout := flag.Duration("op-timeout", 3*time.Second, "netem mode: per-control-call deadline")
	maxRetry := flag.Int("max-retry", 0, "netem mode: pinned bound on total retransmits+inquiries; exceeding it is a violation (0: unbounded)")
	flag.Parse()

	if *netemFile != "" {
		nrep, err := runNetem(netemConfig{
			ScheduleFile: *netemFile,
			Nodes:        cfg.Nodes,
			Seed:         cfg.Seed,
			Protocol:     cfg.Protocol,
			NodeBin:      cfg.NodeBin,
			Retry:        cfg.Retry,
			RetryCap:     *retryCap,
			OpTimeout:    *opTimeout,
			MaxRetry:     *maxRetry,
			JSON:         cfg.JSON,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "camelot-cluster:", err)
			os.Exit(1)
		}
		if cfg.JSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			enc.Encode(nrep) //nolint:errcheck // stdout
		} else {
			nrep.print(os.Stderr)
		}
		if len(nrep.Violations) > 0 {
			os.Exit(1)
		}
		return
	}

	rep, err := runCluster(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "camelot-cluster:", err)
		os.Exit(1)
	}
	if cfg.JSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep) //nolint:errcheck // stdout
	} else {
		rep.print(os.Stderr)
	}
	if len(rep.Violations) > 0 {
		os.Exit(1)
	}
}

type clusterConfig struct {
	Nodes int
	Txns  int
	Seed  int64
	// Protocol pins every commit to one protocol ("2pc", "nb",
	// "paxos"); empty keeps the legacy per-transaction random mix.
	Protocol string
	NodeBin  string
	JSON     bool
	Bounce   bool
	Kill     bool
	// KillMidCommit aims the SIGKILL at a coordinator in flight: the
	// victim site coordinates an all-site transaction and dies a
	// moment after its commit call is issued. The survivors must then
	// resolve the transaction on their own — the non-blocking property
	// Paxos Commit exists for.
	KillMidCommit bool
	Retry         time.Duration
	// Shards, when positive, shards the keyspace: every node gets
	// -shards/-sites, the driver checks map agreement over ctl, and
	// the workload becomes keyspace-aware — writes routed to shard
	// home sites, participant sets derived from the shards touched,
	// uniform keys plus a hot-key skew, verified by the cross-shard
	// atomicity oracle.
	Shards int
}

// report is the run's outcome summary.
type report struct {
	Schema     string   `json:"schema"`
	Nodes      int      `json:"nodes"`
	Txns       int      `json:"txns"`
	Seed       int64    `json:"seed"`
	Protocol   string   `json:"protocol,omitempty"`
	Committed  int      `json:"committed"`
	Aborted    int      `json:"aborted"`
	Unknown    int      `json:"unknown"`
	Skipped    int      `json:"skipped"`
	Killed     int      `json:"killed_site"`
	Sent       int      `json:"datagrams_sent"`
	Recv       int      `json:"datagrams_received"`
	Dropped    int      `json:"datagrams_dropped"`
	Oversize   int      `json:"oversize_refusals"`
	Violations []string `json:"violations"`
	// Sharded-workload fields; omitted (legacy report unchanged) when
	// -shards is off.
	Shards              int `json:"shards,omitempty"`
	CrossShard          int `json:"cross_shard,omitempty"`
	CrossShardCommitted int `json:"cross_shard_committed,omitempty"`
}

func (r *report) print(w *os.File) {
	fmt.Fprintf(w, "camelot-cluster: %d nodes, %d txns, seed %d\n", r.Nodes, r.Txns, r.Seed)
	if r.Shards > 0 {
		fmt.Fprintf(w, "  sharding: %d shards; %d cross-shard txns, %d committed\n",
			r.Shards, r.CrossShard, r.CrossShardCommitted)
	}
	fmt.Fprintf(w, "  outcomes: %d committed, %d aborted, %d unknown, %d skipped\n",
		r.Committed, r.Aborted, r.Unknown, r.Skipped)
	fmt.Fprintf(w, "  transport: %d sent, %d received, %d dropped, %d oversize\n",
		r.Sent, r.Recv, r.Dropped, r.Oversize)
	if len(r.Violations) == 0 {
		fmt.Fprintf(w, "  oracle: all invariants hold\n")
		return
	}
	fmt.Fprintf(w, "  oracle: %d violations\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(w, "    %s\n", v)
	}
}

// proc is one spawned camelot-node.
type proc struct {
	site    camelot.SiteID
	wal     string
	udpAddr string
	ctlAddr string
	cmd     *exec.Cmd
	client  *ctl.Client
	down    bool
	extra   []string // extra daemon flags, reused across restarts
}

// spawn starts a camelot-node and parses its READY line. listen and
// control are "127.0.0.1:0" on first start and the node's previous
// concrete addresses on a restart, so the rest of the cluster's peer
// maps stay valid across the bounce. extra flags (the shard map's
// -shards/-sites) are replayed verbatim on every incarnation.
func spawn(bin string, site camelot.SiteID, wal, listen, control string, retry time.Duration, extra ...string) (*proc, error) {
	args := []string{
		"-site", fmt.Sprint(uint32(site)),
		"-wal", wal,
		"-listen", listen,
		"-control", control,
		"-retry", retry.String(),
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start site %d: %w", site, err)
	}

	type ready struct {
		udp, ctl string
		err      error
	}
	ch := make(chan ready, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "READY ") {
				continue
			}
			var gotSite int
			var r ready
			if _, err := fmt.Sscanf(line, "READY site=%d udp=%s ctl=%s", &gotSite, &r.udp, &r.ctl); err != nil {
				r.err = fmt.Errorf("site %d: bad READY line %q: %v", site, line, err)
			}
			ch <- r
			return
		}
		ch <- ready{err: fmt.Errorf("site %d exited before READY (recovery failure?)", site)}
	}()

	select {
	case r := <-ch:
		if r.err != nil {
			cmd.Process.Kill() //nolint:errcheck // already failing
			cmd.Wait()         //nolint:errcheck // reap
			return nil, r.err
		}
		client, err := ctl.Dial(r.ctl)
		if err != nil {
			cmd.Process.Kill() //nolint:errcheck // already failing
			cmd.Wait()         //nolint:errcheck // reap
			return nil, err
		}
		return &proc{site: site, wal: wal, udpAddr: r.udp, ctlAddr: r.ctl, cmd: cmd, client: client, extra: extra}, nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill() //nolint:errcheck // already failing
		cmd.Wait()         //nolint:errcheck // reap
		return nil, fmt.Errorf("site %d: no READY within 30s", site)
	}
}

// kill SIGKILLs the node — the crash recovery exists for. The WAL
// file and the addresses survive for the next incarnation.
func (p *proc) kill() {
	if p.down {
		return
	}
	p.client.Close()     //nolint:errcheck // process is going away
	p.cmd.Process.Kill() //nolint:errcheck // SIGKILL is the point
	p.cmd.Wait()         //nolint:errcheck // reap
	p.down = true
}

// restart brings a killed node back on its previous addresses; the
// daemon replays the WAL before printing READY.
func (p *proc) restart(bin string, retry time.Duration) error {
	np, err := spawn(bin, p.site, p.wal, p.udpAddr, p.ctlAddr, retry, p.extra...)
	if err != nil {
		return err
	}
	*p = *np
	return nil
}

// stop terminates the node gracefully at the end of the run.
func (p *proc) stop() {
	if p.down {
		return
	}
	p.client.Close()                   //nolint:errcheck // shutting down
	p.cmd.Process.Signal(os.Interrupt) //nolint:errcheck // best effort
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }() //nolint:errcheck // reap
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		p.cmd.Process.Kill() //nolint:errcheck // it had its chance
		<-done
	}
	p.down = true
}

// nodeBinary returns cfg.NodeBin, building the daemon into dir first
// when none was supplied.
func nodeBinary(cfg clusterConfig, dir string) (string, error) {
	if cfg.NodeBin != "" {
		return cfg.NodeBin, nil
	}
	bin := filepath.Join(dir, "camelot-node")
	build := exec.Command("go", "build", "-o", bin, "camelot/cmd/camelot-node")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return "", fmt.Errorf("building camelot-node: %w", err)
	}
	return bin, nil
}

func runCluster(cfg clusterConfig) (*report, error) {
	if cfg.Nodes < 2 {
		return nil, errors.New("need at least 2 nodes")
	}
	dir, err := os.MkdirTemp("", "camelot-cluster-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	bin, err := nodeBinary(cfg, dir)
	if err != nil {
		return nil, err
	}

	// The sharded deployment's map, built driver-side from the same
	// inputs the nodes get as flags; agreement is verified over ctl
	// after boot.
	var smap *shardmap.Map
	var extra []string
	if cfg.Shards > 0 {
		ids := make([]camelot.SiteID, cfg.Nodes)
		var idList []string
		for i := range ids {
			ids[i] = camelot.SiteID(i + 1)
			idList = append(idList, fmt.Sprint(i+1))
		}
		smap, err = shardmap.New(1, cfg.Shards, ids)
		if err != nil {
			return nil, err
		}
		extra = []string{"-shards", fmt.Sprint(cfg.Shards), "-sites", strings.Join(idList, ",")}
	}

	// Boot every site, collect addresses, then tell everyone about
	// everyone: nodes bind :0 before the full address map can exist,
	// which is exactly the startup race the transport's handler-less
	// backlog covers.
	var sites []camelot.SiteID
	procs := make(map[camelot.SiteID]*proc)
	defer func() {
		for _, p := range procs {
			p.stop()
		}
	}()
	for i := 1; i <= cfg.Nodes; i++ {
		id := camelot.SiteID(i)
		p, err := spawn(bin, id, filepath.Join(dir, fmt.Sprintf("site%d.wal", i)),
			"127.0.0.1:0", "127.0.0.1:0", cfg.Retry, extra...)
		if err != nil {
			return nil, err
		}
		procs[id] = p
		sites = append(sites, id)
	}
	if smap != nil {
		// Every member must route every key identically; a disagreement
		// here would corrupt data silently, so it is fatal before any
		// traffic flows.
		want, err := smap.Marshal()
		if err != nil {
			return nil, err
		}
		for _, id := range sites {
			got, err := procs[id].client.ShardMap()
			if err != nil {
				return nil, fmt.Errorf("site %d: shard map: %w", id, err)
			}
			if !bytes.Equal(got, want) {
				return nil, fmt.Errorf("site %d shard map disagrees:\n  node:   %s  driver: %s", id, got, want)
			}
		}
	}
	peers := make(map[camelot.SiteID]string, len(sites))
	for id, p := range procs {
		peers[id] = p.udpAddr
	}
	sendPeers := func() error {
		for _, id := range sites {
			if p := procs[id]; !p.down {
				if err := p.client.SetPeers(peers); err != nil {
					return fmt.Errorf("site %d: peers: %w", id, err)
				}
			}
		}
		return nil
	}
	if err := sendPeers(); err != nil {
		return nil, err
	}

	// The fault schedule: SIGKILL the highest site a third of the way
	// in, restart it at two thirds. Index-based, so a seed names one
	// deterministic schedule.
	victim := sites[len(sites)-1]
	killAt, restartAt := cfg.Txns/3, 2*cfg.Txns/3
	rep := &report{Schema: ReportSchema, Nodes: cfg.Nodes, Txns: cfg.Txns, Seed: cfg.Seed,
		Protocol: cfg.Protocol, Killed: int(victim), Violations: []string{},
		Shards: cfg.Shards}

	rng := rand.New(rand.NewSource(cfg.Seed))
	txns := make([]oracle.Txn, cfg.Txns)
	for i := 0; i < cfg.Txns; i++ {
		if cfg.Kill && i == killAt {
			if cfg.KillMidCommit {
				// The victim coordinates an all-site transaction and is
				// SIGKILLed with its commit in flight; the survivors
				// must resolve it — and release its locks — before the
				// coordinator ever comes back.
				if smap != nil {
					txns[i] = runShardTxnKillCoordinator(i, procs, cfg.Protocol, victim, smap)
					time.Sleep(20 * cfg.Retry)
					rep.Violations = append(rep.Violations,
						shardSurvivorsResolved(sites, procs, txns[i])...)
				} else {
					txns[i] = runTxnKillCoordinator(i, sites, procs, cfg.Protocol, victim)
					time.Sleep(20 * cfg.Retry)
					rep.Violations = append(rep.Violations,
						survivorsResolved(sites, procs, txns[i])...)
				}
				continue
			}
			procs[victim].kill()
		}
		if cfg.Kill && i == restartAt {
			if err := procs[victim].restart(bin, cfg.Retry); err != nil {
				return nil, fmt.Errorf("restarting site %d: %w", victim, err)
			}
			if err := sendPeers(); err != nil {
				return nil, err
			}
		}
		if smap != nil {
			txns[i] = runShardTxn(rng, i, sites, procs, cfg.Protocol, smap)
		} else {
			txns[i] = runTxn(rng, i, sites, procs, cfg.Protocol)
		}
	}

	// Quiesce: let outcome retries, presumed-abort inquiries, and ack
	// fan-ins finish against the healed cluster.
	time.Sleep(20 * cfg.Retry)

	// Sharded views route presence checks by key (empty server name);
	// legacy views address the single "store" server.
	oracleServer := "store"
	if smap != nil {
		oracleServer = ""
	}
	views := make(map[camelot.SiteID]oracle.SiteView, len(sites))
	for _, id := range sites {
		views[id] = &ctl.View{C: procs[id].client, Server: oracleServer}
	}
	for _, v := range oracle.CheckViews(sites, views, txns) {
		rep.Violations = append(rep.Violations, v.String())
	}

	// Transport counters, before any bounce resets the processes.
	for _, id := range sites {
		if st, err := procs[id].client.TransportStats(); err == nil {
			rep.Sent += st.Sent
			rep.Recv += st.Recv
			rep.Dropped += st.Dropped
			rep.Oversize += st.Oversize
		}
	}

	if cfg.Bounce {
		// Everything lazily buffered must be on disk before the axe:
		// the nodes' flush interval is well under this sleep.
		time.Sleep(250 * time.Millisecond)
		for _, id := range sites {
			procs[id].kill()
		}
		for _, id := range sites {
			if err := procs[id].restart(bin, cfg.Retry); err != nil {
				return nil, fmt.Errorf("bounce: restarting site %d: %w", id, err)
			}
		}
		if err := sendPeers(); err != nil {
			return nil, err
		}
		// In-doubt survivors resolve by inquiry once everyone is back.
		time.Sleep(20 * cfg.Retry)
		for _, id := range sites {
			views[id] = &ctl.View{C: procs[id].client, Server: oracleServer}
		}
		for _, v := range oracle.CheckViews(sites, views, txns) {
			rep.Violations = append(rep.Violations, "durability: "+v.String())
		}
	}

	for _, tx := range txns {
		switch tx.Outcome {
		case oracle.Committed:
			rep.Committed++
		case oracle.Aborted:
			rep.Aborted++
		case oracle.Skipped:
			rep.Skipped++
		default:
			rep.Unknown++
		}
		if crossShard(tx) {
			rep.CrossShard++
			if tx.Outcome == oracle.Committed {
				rep.CrossShardCommitted++
			}
		}
	}
	return rep, nil
}

// crossShard reports whether a sharded transaction's write set spans
// more than one home site.
func crossShard(tx oracle.Txn) bool {
	if len(tx.Writes) == 0 {
		return false
	}
	for _, w := range tx.Writes[1:] {
		if w.Site != tx.Writes[0].Site {
			return true
		}
	}
	return false
}

// runTxn drives one workload transaction: a random up coordinator, a
// random write set (the txn's key written at each member), sometimes
// a read-only participant (exercising the read-only vote), sometimes
// the non-blocking protocol. Returns the oracle's record of it.
func runTxn(rng *rand.Rand, i int, sites []camelot.SiteID, procs map[camelot.SiteID]*proc, protocol string) oracle.Txn {
	key := fmt.Sprintf("txn%04d", i)

	// Draw the schedule before consulting liveness, so the random
	// sequence for a seed does not depend on timing.
	coordPick := rng.Intn(len(sites))
	var writers []camelot.SiteID
	for _, id := range sites {
		if rng.Float64() < 0.7 {
			writers = append(writers, id)
		}
	}
	withReader := rng.Float64() < 0.3
	readerPick := rng.Intn(len(sites))
	nonBlocking := rng.Float64() < 0.3

	var up []camelot.SiteID
	for _, id := range sites {
		if !procs[id].down {
			up = append(up, id)
		}
	}
	coord := up[coordPick%len(up)]
	if len(writers) == 0 {
		writers = []camelot.SiteID{coord}
	}
	hasCoord := false
	for _, w := range writers {
		hasCoord = hasCoord || w == coord
	}
	if !hasCoord {
		writers = append(writers, coord)
	}

	tx := oracle.Txn{Key: key, Outcome: oracle.Skipped, Sites: writers}
	t, err := procs[coord].client.Begin()
	if err != nil {
		return tx
	}
	tx.Family = t.Family

	participants := map[camelot.SiteID]bool{}
	ok := true
	for _, w := range writers {
		if procs[w].down {
			ok = false
			break
		}
		if err := procs[w].client.Write("store", t, key, []byte(fmt.Sprintf("v%d@%d", i, w))); err != nil {
			ok = false
			break
		}
		participants[w] = true
	}
	// A read-only participant joins the family but holds no updates;
	// its prepare answers with the read-only vote and drops out of
	// phase two.
	if ok && withReader {
		reader := sites[readerPick%len(sites)]
		if !procs[reader].down && !participants[reader] {
			if _, err := procs[reader].client.Read("store", t, fmt.Sprintf("txn%04d", i/2)); err == nil {
				participants[reader] = true
			}
		}
	}

	var remote []camelot.SiteID
	for _, id := range sites {
		if participants[id] && id != coord {
			remote = append(remote, id)
		}
	}
	if !ok {
		procs[coord].client.Abort(t) //nolint:errcheck // recorded as aborted regardless
		tx.Outcome = oracle.Aborted
		return tx
	}
	if len(remote) > 0 {
		if err := procs[coord].client.AddSites(t, remote); err != nil {
			procs[coord].client.Abort(t) //nolint:errcheck // recorded as aborted regardless
			tx.Outcome = oracle.Aborted
			return tx
		}
	}
	if protocol != "" {
		_, err = procs[coord].client.CommitWith(t, protocol)
	} else {
		_, err = procs[coord].client.Commit(t, nonBlocking)
	}
	switch {
	case err == nil:
		tx.Outcome = oracle.Committed
	case errors.Is(err, ctl.ErrAborted):
		tx.Outcome = oracle.Aborted
	default:
		tx.Outcome = oracle.Unknown
	}
	return tx
}

// runTxnKillCoordinator drives the mid-commit coordinator kill: coord
// begins an all-site update transaction, its commit is issued on a
// separate goroutine, and the process is SIGKILLed a moment later —
// with the commit protocol somewhere between the first prepare and
// the last ack. The client's view is Unknown unless the commit call
// won the race.
func runTxnKillCoordinator(i int, sites []camelot.SiteID, procs map[camelot.SiteID]*proc,
	protocol string, coord camelot.SiteID) oracle.Txn {

	key := fmt.Sprintf("txn%04d", i)
	tx := oracle.Txn{Key: key, Outcome: oracle.Skipped, Sites: sites}
	t, err := procs[coord].client.Begin()
	if err != nil {
		return tx
	}
	tx.Family = t.Family
	var remote []camelot.SiteID
	for _, id := range sites {
		if err := procs[id].client.Write("store", t, key, []byte(fmt.Sprintf("v%d@%d", i, id))); err != nil {
			procs[coord].client.Abort(t) //nolint:errcheck // recorded as aborted regardless
			tx.Outcome = oracle.Aborted
			return tx
		}
		if id != coord {
			remote = append(remote, id)
		}
	}
	if err := procs[coord].client.AddSites(t, remote); err != nil {
		procs[coord].client.Abort(t) //nolint:errcheck // recorded as aborted regardless
		tx.Outcome = oracle.Aborted
		return tx
	}

	var witnesses []*proc
	for _, id := range sites {
		if id != coord {
			witnesses = append(witnesses, procs[id])
		}
	}
	before := settleRecv(witnesses, time.Second)
	done := make(chan error, 1)
	go func() {
		_, err := procs[coord].client.CommitWith(t, protocol)
		done <- err
	}()
	waitCommitUnderway(witnesses, before, time.Second)
	procs[coord].kill()
	switch err := <-done; {
	case err == nil:
		tx.Outcome = oracle.Committed
	case errors.Is(err, ctl.ErrAborted):
		tx.Outcome = oracle.Aborted
	default:
		tx.Outcome = oracle.Unknown
	}
	return tx
}

// recvCount reads a node's datagram-receive counter; errors read as
// zero, which only makes the callers wait out their caps.
func recvCount(p *proc) int {
	if s, err := p.client.TransportStats(); err == nil {
		return s.Recv
	}
	return 0
}

// settleRecv waits until every witness's datagram-receive counter
// stops moving (two consecutive reads a beat apart agree), then
// returns the settled counts. Gating the mid-commit kill on counter
// growth is only sound if stragglers from earlier transactions — lazy
// acks, retries — cannot supply the growth themselves.
func settleRecv(witnesses []*proc, cap time.Duration) []int {
	last := make([]int, len(witnesses))
	for i, w := range witnesses {
		last[i] = recvCount(w)
	}
	deadline := time.Now().Add(cap)
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		stable := true
		for i, w := range witnesses {
			if n := recvCount(w); n != last[i] {
				last[i] = n
				stable = false
			}
		}
		if stable {
			break
		}
	}
	return last
}

// waitCommitUnderway polls the surviving participants' datagram-
// receive counters until the victim's commit fan-out observably
// reached every one of them (or the cap expires). Killing the
// coordinator before the prepares escape would leave the survivors
// active orphans of a transaction nobody can resolve until the
// coordinator returns — legitimate commitment semantics, but the
// survivors-resolve check is only meaningful once commitment actually
// began everywhere.
func waitCommitUnderway(witnesses []*proc, before []int, cap time.Duration) {
	deadline := time.Now().Add(cap)
	for time.Now().Before(deadline) {
		grown := true
		for i, w := range witnesses {
			if recvCount(w) <= before[i] {
				grown = false
				break
			}
		}
		if grown {
			return
		}
	}
}

// probeLockRetry runs a lock-reacquisition probe, retrying briefly on
// failure: the survivors resolve the orphaned transaction on their
// own timers, and under CPU load (a parallel test suite, a busy CI
// host) resolution can land moments after the kill settles. The
// coordinator stays down for the whole window, so a success on any
// attempt still demonstrates non-blocking resolution.
func probeLockRetry(probe func() error) error {
	deadline := time.Now().Add(3 * time.Second)
	for {
		err := probe()
		if err == nil || time.Now().After(deadline) {
			return err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// survivorsResolved checks, while the killed coordinator is still
// down, that every surviving site has resolved its transaction: the
// key's locks must be re-acquirable (a blocked protocol would leak
// them) and the survivors must agree on whether the key is present.
// Violations are returned as strings for the report.
func survivorsResolved(sites []camelot.SiteID, procs map[camelot.SiteID]*proc, tx oracle.Txn) []string {
	var out []string
	present := make(map[camelot.SiteID]bool)
	var survivors []camelot.SiteID
	for _, id := range sites {
		p := procs[id]
		if p.down {
			continue
		}
		survivors = append(survivors, id)
		// Re-acquire the transaction's own lock under a throwaway
		// transaction: if the commit protocol is blocked on the dead
		// coordinator, this write blocks too.
		if err := probeLockRetry(func() error {
			pt, err := p.client.Begin()
			if err != nil {
				return fmt.Errorf("begin: %w", err)
			}
			defer p.client.Abort(pt) //nolint:errcheck // probe cleanup
			if err := p.client.Write("store", pt, tx.Key, []byte("probe")); err != nil {
				return fmt.Errorf("%q still locked: %w", tx.Key, err)
			}
			return nil
		}); err != nil {
			out = append(out, fmt.Sprintf("non-blocking: site %d: %v with coordinator down", id, err))
		}
		_, ok, err := p.client.Peek("store", tx.Key)
		if err != nil {
			out = append(out, fmt.Sprintf("non-blocking: site %d: peek: %v", id, err))
			continue
		}
		present[id] = ok
	}
	for _, id := range survivors[1:] {
		if present[id] != present[survivors[0]] {
			out = append(out, fmt.Sprintf("non-blocking: survivors disagree on %q with coordinator down: site %d=%v, site %d=%v",
				tx.Key, survivors[0], present[survivors[0]], id, present[id]))
		}
	}
	return out
}
