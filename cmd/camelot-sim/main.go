// Command camelot-sim runs a configurable failure scenario: N sites,
// a distributed update transaction, a protocol choice, and a crash or
// partition injected mid-commit. It prints the timeline and each
// site's final state — a scriptable version of the blocking
// experiments in §3.3/§4.3.
//
// Usage:
//
//	camelot-sim [-sites N] [-nonblocking] [-crash coordinator|sub|none]
//	            [-crash-after d] [-partition] [-recover-after d] [-seed n]
package main

import (
	"errors"
	"flag"
	"fmt"
	"time"

	"camelot/camelot"
	"camelot/internal/sim"
)

func main() {
	sites := flag.Int("sites", 3, "number of sites (coordinator + subordinates)")
	nonblocking := flag.Bool("nonblocking", false, "use the non-blocking commit protocol")
	crash := flag.String("crash", "coordinator", "what to crash mid-commit: coordinator, sub, none")
	crashAfter := flag.Duration("crash-after", 50*time.Millisecond, "crash delay after commit is issued")
	partition := flag.Bool("partition", false, "partition instead of crashing")
	recoverAfter := flag.Duration("recover-after", 0, "recover/heal after this delay (0 = never)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	k := sim.New(*seed)
	cluster := camelot.NewCluster(k, camelot.DefaultConfig())
	for id := camelot.SiteID(1); id <= camelot.SiteID(*sites); id++ {
		cluster.AddNode(id).AddServer(fmt.Sprintf("srv%d", id))
	}
	logf := func(format string, args ...any) {
		fmt.Printf("[%8.1f ms] %s\n", float64(k.Now())/float64(time.Millisecond),
			fmt.Sprintf(format, args...))
	}

	k.Go("scenario", func() {
		tx, err := cluster.Node(1).Begin()
		if err != nil {
			return
		}
		for id := camelot.SiteID(1); id <= camelot.SiteID(*sites); id++ {
			if err := tx.Write(fmt.Sprintf("srv%d", id), "k", []byte("v")); err != nil {
				logf("operation at site %d failed: %v", id, err)
				tx.Abort() //nolint:errcheck
				return
			}
		}
		logf("operations done at %d sites; committing (nonblocking=%v)", *sites, *nonblocking)
		k.Go("commit", func() {
			err := tx.CommitWith(camelot.Options{NonBlocking: *nonblocking})
			switch {
			case err == nil:
				logf("commit-transaction returned: COMMITTED")
			case errors.Is(err, camelot.ErrAborted):
				logf("commit-transaction returned: ABORTED")
			default:
				logf("commit-transaction returned: %v", err)
			}
		})

		victim := camelot.SiteID(0)
		switch *crash {
		case "coordinator":
			victim = 1
		case "sub":
			victim = 2
		}
		if victim != 0 {
			k.Sleep(*crashAfter)
			if *partition {
				for id := camelot.SiteID(1); id <= camelot.SiteID(*sites); id++ {
					if id != victim {
						cluster.Network().SetPartition(victim, id, true)
					}
				}
				logf("site %d PARTITIONED from the rest", victim)
			} else {
				cluster.Node(victim).Crash()
				logf("site %d CRASHED", victim)
			}
			if *recoverAfter > 0 {
				k.Sleep(*recoverAfter)
				if *partition {
					for id := camelot.SiteID(1); id <= camelot.SiteID(*sites); id++ {
						if id != victim {
							cluster.Network().SetPartition(victim, id, false)
						}
					}
					logf("partition HEALED")
				} else {
					cluster.Node(victim).Recover()
					logf("site %d RECOVERED", victim)
				}
			}
		}

		k.Sleep(30 * time.Second)
		for id := camelot.SiteID(1); id <= camelot.SiteID(*sites); id++ {
			n := cluster.Node(id)
			if n.Crashed() {
				logf("site %d: crashed", id)
				continue
			}
			v, ok := n.Server(fmt.Sprintf("srv%d", id)).Peek("k")
			st := n.TM().Stats()
			logf("site %d: committed-value-present=%v (%q) promotions=%d inquiries=%d",
				id, ok, v, st.Promotions, st.Inquiries)
		}
		k.Stop()
	})
	k.RunUntil(10 * time.Minute)
	if msg := k.Deadlocked(); msg != "" {
		fmt.Println(msg)
	}
}
