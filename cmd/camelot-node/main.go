// Command camelot-node runs one real Camelot site as a daemon: the
// transaction manager and a data server on the ordinary Go runtime,
// a write-ahead log on disk, transaction-protocol traffic over UDP,
// and a TCP control port through which a driver (cmd/camelot-cluster,
// or anything speaking internal/ctl's JSON-line protocol) operates
// the site.
//
// Startup always runs recovery against the WAL — a no-op on a fresh
// file, a full log replay after a crash — then prints one line:
//
//	READY site=N udp=HOST:PORT ctl=HOST:PORT
//
// to stdout, which the driver parses to learn the bound addresses.
// Peer addresses arrive over the control port (op "peers") once the
// driver has collected everyone's READY line. The process exits on
// SIGINT/SIGTERM; SIGKILL is the crash the WAL exists for.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"camelot/camelot"
	"camelot/internal/ctl"
	"camelot/internal/shardmap"
	"camelot/internal/wal"
)

// parseSites parses a comma-separated site-id list ("1,2,3").
func parseSites(s string) ([]camelot.SiteID, error) {
	var out []camelot.SiteID
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		id, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad site id %q: %w", f, err)
		}
		out = append(out, camelot.SiteID(id))
	}
	return out, nil
}

func main() {
	var (
		site     = flag.Uint("site", 0, "site id (nonzero, unique per deployment)")
		listen   = flag.String("listen", "127.0.0.1:0", "UDP listen address for transaction-protocol datagrams")
		control  = flag.String("control", "127.0.0.1:0", "TCP listen address for the control plane")
		walPath  = flag.String("wal", "", "write-ahead log file (required)")
		server   = flag.String("server", "store", "data server name")
		retry    = flag.Duration("retry", 50*time.Millisecond, "coordinator retry interval (masks datagram loss)")
		retryCap = flag.Duration("retry-cap", 0, "cap for the exponential retry backoff (0: 8x the retry interval)")
		walFail  = flag.Int("wal-fail-append", -1, "fail the Nth WAL block append and every write after it (fault injection; -1: never)")
		protocol = flag.String("protocol", "", "default commit protocol: 2pc, nb, or paxos (empty: per-request flags decide)")
		shards   = flag.Int("shards", 0, "shard count for the sharded data tier (0: legacy single -server)")
		sites    = flag.String("sites", "", "comma-separated site ids of the deployment, in placement order (required with -shards)")
	)
	flag.Parse()
	log.SetPrefix(fmt.Sprintf("camelot-node[site%d]: ", *site))
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	if *site == 0 || *walPath == "" {
		fmt.Fprintln(os.Stderr, "usage: camelot-node -site N -wal PATH [-listen ADDR] [-control ADDR] [-protocol 2pc|nb|paxos]")
		os.Exit(2)
	}
	switch *protocol {
	case "", "2pc", "nb", "paxos":
	default:
		fmt.Fprintf(os.Stderr, "camelot-node: unknown -protocol %q (want 2pc, nb, or paxos)\n", *protocol)
		os.Exit(2)
	}

	cfg := camelot.DefaultRealConfig(camelot.SiteID(*site))
	cfg.Listen = *listen
	cfg.WALPath = *walPath
	cfg.Servers = []string{*server}
	cfg.RetryInterval = *retry
	cfg.InquireInterval = *retry
	cfg.RetryBackoffCap = *retryCap
	cfg.Logf = log.Printf
	if *walFail >= 0 {
		// A netem-driven disk fault: the Nth block append fails and the
		// log fail-stops, turning this site into the crashed site the
		// others must resolve around.
		n := *walFail
		cfg.WrapStore = func(s wal.Store) wal.Store { return wal.NewFailStore(s, n) }
	}
	if *shards > 0 {
		// Every member builds the same map from the same flags
		// (shardmap.New is deterministic); the driver verifies
		// agreement over ctl before running traffic.
		ids, err := parseSites(*sites)
		if err != nil {
			log.Fatalf("-sites: %v", err)
		}
		m, err := shardmap.New(1, *shards, ids)
		if err != nil {
			log.Fatalf("shard map: %v", err)
		}
		cfg.ShardMap = m
	}

	node, err := camelot.StartRealNode(cfg)
	if err != nil {
		log.Fatalf("start: %v", err)
	}
	// Recovery before traffic: replay the on-disk log, reinstall
	// committed state, re-acquire in-doubt locks, resume unresolved
	// commitments. Refusing to run from an unreadable log is the
	// fail-stop behavior recovery relies on.
	if err := node.Recover(); err != nil {
		log.Fatalf("recovery failed, refusing to serve: %v", err)
	}

	srv, err := ctl.Serve(node, *control)
	if err != nil {
		log.Fatalf("control listen: %v", err)
	}
	// Set before the READY line publishes the address: no driver can
	// issue a commit until it has parsed that line.
	srv.SetDefaultProtocol(*protocol)

	// The driver parses this line; keep its shape stable.
	fmt.Printf("READY site=%d udp=%s ctl=%s\n", *site, node.Addr(), srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	log.Printf("caught %v, shutting down", s)
	srv.Close()  //nolint:errcheck // exiting anyway
	node.Close() //nolint:errcheck // exiting anyway
}
