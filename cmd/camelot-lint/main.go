// Command camelot-lint statically enforces the repository's
// determinism and protocol-invariant rules. It runs the
// internal/lint suite — maprange, walltime, rawgo, tracepair — over
// the module with each analyzer scoped to the packages its rule
// governs, prints findings as file:line:col: message [analyzer], and
// exits 1 if there are any.
//
// Usage:
//
//	camelot-lint [./... | ./pkg/dir ...]
//
// With no arguments (or "./...") the whole module is checked.
// Sites exempt from a rule carry a `//lint:<rule> <why>` directive;
// a directive without a justification is itself a finding.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"camelot/internal/lint"
)

const modPath = "camelot"

func main() {
	if len(os.Args) > 1 && (os.Args[1] == "-h" || os.Args[1] == "--help") {
		usage()
		return
	}
	modRoot, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	args := os.Args[1:]
	var diags []lint.Diagnostic
	if len(args) == 0 || (len(args) == 1 && args[0] == "./...") {
		diags, err = lint.RunModule(modRoot, modPath)
	} else {
		pkgs := make([]string, 0, len(args))
		for _, a := range args {
			pkgs = append(pkgs, importPath(a))
		}
		diags, err = lint.RunPackages(modRoot, modPath, pkgs)
	}
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func usage() {
	fmt.Println("camelot-lint [./... | ./pkg/dir ...]")
	fmt.Println()
	fmt.Println("analyzers:")
	for _, a := range lint.Analyzers {
		fmt.Printf("  %-10s %s\n", a.Name, a.Doc)
	}
}

// importPath maps a command-line argument (a ./-relative directory or
// an import path) onto a module import path.
func importPath(arg string) string {
	arg = strings.TrimSuffix(arg, "/...")
	arg = filepath.ToSlash(filepath.Clean(arg))
	arg = strings.TrimPrefix(arg, "./")
	if arg == "." || arg == "" {
		return modPath
	}
	if arg == modPath || strings.HasPrefix(arg, modPath+"/") {
		return arg
	}
	return modPath + "/" + arg
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod, returning a relative path when possible so findings print
// as repo-relative positions.
func findModuleRoot() (string, error) {
	dir := "."
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			return "", err
		}
		if abs == filepath.Dir(abs) {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = filepath.Join(dir, "..")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "camelot-lint:", err)
	os.Exit(2)
}
