// Command camelot-lint statically enforces the repository's
// determinism and protocol-invariant rules. It runs the internal/lint
// suite — the per-package analyzers (maprange, walltime, rawgo,
// tracepair, lockorder, enumswitch, tracebudget) plus the
// cross-package surface analyzers (kindsurface, recsurface) — over
// the module with each analyzer scoped to the packages its rule
// governs, prints findings as file:line:col: message [analyzer], and
// exits 1 if there are any.
//
// Usage:
//
//	camelot-lint [-json] [-time] [./... | ./pkg/dir ...]
//
// With no arguments (or "./...") the whole module is checked,
// including the cross-package surface analyzers; with explicit
// package arguments only the per-package analyzers run, because an
// absence check is meaningless over a partial view. -json emits the
// findings as a schema-versioned JSON object for CI tooling; -time
// reports how long the shared load/type-check and the analysis pass
// each took. Sites exempt from a rule carry a `//lint:<rule> <why>`
// directive; a directive without a justification is itself a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"camelot/internal/lint"
)

const modPath = "camelot"

// jsonVersion pins the -json schema. Bump it only with a deliberate
// format change; the golden test under testdata/ holds the contract.
const jsonVersion = "camelot-lint/v1"

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonReport struct {
	Version  string        `json:"version"`
	Findings []jsonFinding `json:"findings"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as schema-versioned JSON")
	timing := flag.Bool("time", false, "report load/type-check and analysis durations to stderr")
	flag.Usage = usage
	flag.Parse()

	modRoot, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	args := flag.Args()
	var diags []lint.Diagnostic
	if len(args) == 0 || (len(args) == 1 && args[0] == "./...") {
		// Whole-module run: load and type-check every library package
		// once, share the view across the per-package suite and the
		// cross-package surface analyzers.
		loadStart := time.Now()
		mod, lerr := lint.LoadModule(modRoot, modPath)
		if lerr != nil {
			fatal(lerr)
		}
		loadDone := time.Now()
		diags, err = mod.Run()
		if *timing {
			fmt.Fprintf(os.Stderr, "camelot-lint: load+typecheck %v, analyze %v (%d packages)\n",
				loadDone.Sub(loadStart).Round(time.Millisecond),
				time.Since(loadDone).Round(time.Millisecond), len(mod.Pkgs))
		}
	} else {
		pkgs := make([]string, 0, len(args))
		for _, a := range args {
			pkgs = append(pkgs, importPath(a))
		}
		diags, err = lint.RunPackages(modRoot, modPath, pkgs)
	}
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		emitJSON(diags)
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// emitJSON prints the findings as one schema-versioned object.
func emitJSON(diags []lint.Diagnostic) {
	out, err := jsonReportBytes(diags)
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
}

// jsonReportBytes renders the findings under the pinned schema.
// Findings is always an array, never null, so consumers can range
// over it without a presence check.
func jsonReportBytes(diags []lint.Diagnostic) ([]byte, error) {
	report := jsonReport{Version: jsonVersion, Findings: []jsonFinding{}}
	for _, d := range diags {
		report.Findings = append(report.Findings, jsonFinding{
			File:     filepath.ToSlash(d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return json.MarshalIndent(report, "", "  ")
}

func usage() {
	fmt.Println("camelot-lint [-json] [-time] [./... | ./pkg/dir ...]")
	fmt.Println()
	fmt.Println("per-package analyzers:")
	for _, a := range lint.Analyzers {
		fmt.Printf("  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("module analyzers (whole-module runs only):")
	for _, ma := range lint.ModuleAnalyzers {
		fmt.Printf("  %-12s %s\n", ma.Name, ma.Doc)
	}
}

// importPath maps a command-line argument (a ./-relative directory or
// an import path) onto a module import path.
func importPath(arg string) string {
	arg = strings.TrimSuffix(arg, "/...")
	arg = filepath.ToSlash(filepath.Clean(arg))
	arg = strings.TrimPrefix(arg, "./")
	if arg == "." || arg == "" {
		return modPath
	}
	if arg == modPath || strings.HasPrefix(arg, modPath+"/") {
		return arg
	}
	return modPath + "/" + arg
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod, returning a relative path when possible so findings print
// as repo-relative positions.
func findModuleRoot() (string, error) {
	dir := "."
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			return "", err
		}
		if abs == filepath.Dir(abs) {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = filepath.Join(dir, "..")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "camelot-lint:", err)
	os.Exit(2)
}
