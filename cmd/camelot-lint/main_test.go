package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"camelot/internal/lint"
)

// sampleDiags is a fixed finding set exercising every schema field
// with two findings from different analyzers.
func sampleDiags() []lint.Diagnostic {
	return []lint.Diagnostic{
		{
			Pos:      token.Position{Filename: "internal/core/twophase.go", Line: 41, Column: 2},
			Analyzer: "enumswitch",
			Message:  "switch over wire.Vote omits VoteReadOnly and has no default",
		},
		{
			Pos:      token.Position{Filename: "internal/wire/wire.go", Line: 120, Column: 1},
			Analyzer: "kindsurface",
			Message:  "wire.Kind KNew is missing from wire's kind registry (kindNames): the codec rejects it in both directions (or justify with //lint:kindsurface)",
		},
	}
}

// TestJSONGolden pins the -json schema byte-for-byte. The golden file
// is the contract with CI tooling: a diff here means the schema
// version must be bumped, not the golden silently regenerated.
func TestJSONGolden(t *testing.T) {
	got, err := jsonReportBytes(sampleDiags())
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	goldenPath := filepath.Join("testdata", "report.golden.json")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-json output diverges from %s\ngot:\n%s\nwant:\n%s", goldenPath, got, want)
	}
}

// TestJSONEmptyFindings pins the clean-tree shape: findings is an
// empty array, never null, and the version string is present.
func TestJSONEmptyFindings(t *testing.T) {
	got, err := jsonReportBytes(nil)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Version  string            `json:"version"`
		Findings []json.RawMessage `json:"findings"`
	}
	if err := json.Unmarshal(got, &report); err != nil {
		t.Fatal(err)
	}
	if report.Version != jsonVersion {
		t.Errorf("version = %q, want %q", report.Version, jsonVersion)
	}
	if report.Findings == nil {
		t.Error("findings marshalled as null; CI consumers require an array")
	}
	if !bytes.Contains(got, []byte(`"findings": []`)) {
		t.Errorf("empty report does not contain a literal empty array:\n%s", got)
	}
}
