// Command camelot-bench regenerates every table and figure of the
// paper's evaluation (§4) from the simulated substrate and prints
// them in the paper's row/series layout. See EXPERIMENTS.md for the
// side-by-side comparison with the published numbers.
//
// Usage:
//
//	camelot-bench [-quick] [-only <experiment>]
//
// Experiments: table1 table2 table3 figure1 figure2 figure3 figure4
// figure5 rpc multicast contention ablations
package main

import (
	"flag"
	"fmt"
	"os"

	"camelot/internal/exp"
	"camelot/internal/params"
)

func main() {
	quick := flag.Bool("quick", false, "fewer trials; finishes in seconds")
	only := flag.String("only", "", "run a single experiment by name")
	flag.Parse()

	trials := 25
	if *quick {
		trials = 8
	}
	paper := params.Paper()
	vax := params.VAX()
	w := os.Stdout

	if *only == "" {
		exp.RunAll(w, *quick)
		return
	}
	switch *only {
	case "table1":
		fmt.Fprintln(w, exp.Table1())
	case "table2":
		fmt.Fprintln(w, exp.Table2(paper))
	case "table3":
		b, t := exp.Table3(paper, trials)
		fmt.Fprintln(w, b)
		fmt.Fprintln(w, t)
	case "figure1":
		fmt.Fprintln(w, exp.Figure1(paper))
	case "figure2":
		fmt.Fprintln(w, exp.Figure2(paper, trials))
	case "figure3":
		fmt.Fprintln(w, exp.Figure3(paper, trials))
	case "figure4":
		fmt.Fprintln(w, exp.Figure4(vax))
	case "figure5":
		fmt.Fprintln(w, exp.Figure5(vax))
	case "rpc":
		fmt.Fprintln(w, exp.RPCBreakdown(paper, 10*trials))
	case "multicast":
		fmt.Fprintln(w, exp.MulticastVariance(paper, 4*trials))
	case "contention":
		fmt.Fprintln(w, exp.LockContention(paper, trials))
	case "ablations":
		fmt.Fprintln(w, exp.AblationGroupCommit(vax))
		fmt.Fprintln(w, exp.AblationReadOnly(paper, trials))
		fmt.Fprintln(w, exp.AblationCommitVariants(paper, trials))
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
}
