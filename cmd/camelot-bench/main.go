// Command camelot-bench regenerates every table and figure of the
// paper's evaluation (§4) from the simulated substrate and prints
// them in the paper's row/series layout. See EXPERIMENTS.md for the
// side-by-side comparison with the published numbers.
//
// Usage:
//
//	camelot-bench [-quick] [-json] [-realtime] [-realnet] [-only <experiment>]
//	camelot-bench -loadgen [-rates 200,500,1000] [-duration 2s]
//	              [-protocols 2pc,nb,paxos] [-sites 3] [-shards 0]
//	              [-sessions 64] [-dist poisson] [-seed 1] [-json]
//
// Experiments: table1 table2 table3 figure1 figure2 figure3 three-way
// figure4 figure5 rpc multicast contention ablations realtime realnet
//
// -json emits the camelot-bench/v1 machine-readable report instead of
// text, so successive commits can archive BENCH_*.json files and
// track a performance trajectory. -realtime appends the host-
// dependent multi-family scaling experiment (R1), which measures this
// machine rather than the simulated testbed; -realnet appends the
// real-network experiments (R2, R3, R4), which run the commitment
// protocols — including the sharded data tier's cross-shard commits —
// over actual loopback UDP sockets.
//
// -loadgen switches to the open-loop load generator (R5): a seeded
// arrival schedule at each target rate drives a freshly booted
// real cluster through the ctl control plane, and latency is measured
// from each operation's intended arrival time (see DESIGN.md §13).
// With -json it emits the camelot-load/v1 report instead of the text
// table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"camelot/internal/exp"
	"camelot/internal/load"
	"camelot/internal/params"
	"camelot/internal/stats"
)

func runLoadgen(jsonOut bool) {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	protocols := fs.String("protocols", "2pc,nb,paxos", "comma-separated commit protocols")
	rates := fs.String("rates", "200,500,1000", "comma-separated target rates, ops/second")
	duration := fs.Duration("duration", 2*time.Second, "scheduled arrival window per cell")
	sites := fs.Int("sites", 3, "cluster size")
	shards := fs.Int("shards", 0, "shard count (0 = unsharded store)")
	sessions := fs.Int("sessions", 64, "concurrent client sessions")
	dist := fs.String("dist", load.DistPoisson, "arrival distribution: poisson or uniform")
	seed := fs.Int64("seed", 1, "arrival-schedule seed")
	jsonFlag := fs.Bool("json", jsonOut, "emit the camelot-load/v1 JSON report")
	fs.Parse(loadgenArgs()) //nolint:errcheck // ExitOnError

	var rateList []float64
	for _, s := range strings.Split(*rates, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad rate %q: %v\n", s, err)
			os.Exit(2)
		}
		rateList = append(rateList, r)
	}
	dir, err := os.MkdirTemp("", "camelot-loadgen-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir) //nolint:errcheck // best-effort cleanup

	cfg := load.BenchConfig{
		Protocols: strings.Split(*protocols, ","),
		Rates:     rateList,
		Duration:  *duration,
		Sites:     *sites,
		Shards:    *shards,
		Sessions:  *sessions,
		Dist:      *dist,
		Seed:      *seed,
		Dir:       dir,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	rep, err := load.RunBench(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *jsonFlag {
		b, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(b))
		return
	}
	fmt.Println(rep.Table())
}

// loadgenArgs strips the -loadgen flag itself so the loadgen flag set
// parses the rest of the command line.
func loadgenArgs() []string {
	var out []string
	for _, a := range os.Args[1:] {
		if a == "-loadgen" || a == "--loadgen" {
			continue
		}
		out = append(out, a)
	}
	return out
}

func main() {
	for _, a := range os.Args[1:] {
		if a == "-loadgen" || a == "--loadgen" {
			runLoadgen(false)
			return
		}
	}
	quick := flag.Bool("quick", false, "fewer trials; finishes in seconds")
	jsonOut := flag.Bool("json", false, "emit the camelot-bench/v1 JSON report")
	realtime := flag.Bool("realtime", false, "include the real-runtime scaling experiment (host-dependent)")
	realnet := flag.Bool("realnet", false, "include the real-network UDP experiments (host-dependent)")
	only := flag.String("only", "", "run a single experiment by name")
	flag.Bool("loadgen", false, "run the open-loop load generator (see -loadgen -help)")
	flag.Parse()

	trials := 25
	if *quick {
		trials = 8
	}
	paper := params.Paper()
	vax := params.VAX()
	w := os.Stdout

	scaling := func() *stats.Table {
		return exp.RealtimeScaling([]int{1, 2, 4}, 8, 300*time.Millisecond)
	}
	realnetTxns := 200
	if *quick {
		realnetTxns = 40
	}
	realnetTables := func() []*stats.Table {
		lat, err := exp.RealNetLatency(3, realnetTxns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "realnet latency:", err)
			os.Exit(1)
		}
		tput, err := exp.RealNetThroughput(3, []int{1, 4, 8}, 300*time.Millisecond)
		if err != nil {
			fmt.Fprintln(os.Stderr, "realnet throughput:", err)
			os.Exit(1)
		}
		shard, err := exp.RealNetSharded(3, 4, realnetTxns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "realnet sharded:", err)
			os.Exit(1)
		}
		return []*stats.Table{lat, tput, shard}
	}

	if *jsonOut {
		rep := exp.RunAllJSON(*quick)
		if *realtime {
			rep.Tables = append(rep.Tables, exp.TableJSON("realtime", scaling()))
		}
		if *realnet {
			ts := realnetTables()
			rep.Tables = append(rep.Tables,
				exp.TableJSON("realnet-latency", ts[0]),
				exp.TableJSON("realnet-throughput", ts[1]),
				exp.TableJSON("realnet-sharded", ts[2]))
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *only == "" {
		exp.RunAll(w, *quick)
		if *realtime {
			fmt.Fprintln(w, "\n== R1: real-runtime family scaling (this host) ==")
			fmt.Fprintln(w)
			fmt.Fprintln(w, scaling())
		}
		if *realnet {
			fmt.Fprintln(w, "\n== R2/R3/R4: real-network commitment over loopback UDP (this host) ==")
			fmt.Fprintln(w)
			for _, t := range realnetTables() {
				fmt.Fprintln(w, t)
			}
		}
		return
	}
	switch *only {
	case "table1":
		fmt.Fprintln(w, exp.Table1())
	case "table2":
		fmt.Fprintln(w, exp.Table2(paper))
	case "table3":
		b, t := exp.Table3(paper, trials)
		fmt.Fprintln(w, b)
		fmt.Fprintln(w, t)
	case "figure1":
		fmt.Fprintln(w, exp.Figure1(paper))
	case "figure2":
		fmt.Fprintln(w, exp.Figure2(paper, trials))
	case "figure3":
		fmt.Fprintln(w, exp.Figure3(paper, trials))
	case "three-way":
		fmt.Fprintln(w, exp.ThreeWayCommit(paper, trials))
	case "figure4":
		fmt.Fprintln(w, exp.Figure4(vax))
	case "figure5":
		fmt.Fprintln(w, exp.Figure5(vax))
	case "rpc":
		fmt.Fprintln(w, exp.RPCBreakdown(paper, 10*trials))
	case "multicast":
		fmt.Fprintln(w, exp.MulticastVariance(paper, 4*trials))
	case "contention":
		fmt.Fprintln(w, exp.LockContention(paper, trials))
	case "ablations":
		fmt.Fprintln(w, exp.AblationGroupCommit(vax))
		fmt.Fprintln(w, exp.AblationReadOnly(paper, trials))
		fmt.Fprintln(w, exp.AblationCommitVariants(paper, trials))
	case "realtime":
		fmt.Fprintln(w, scaling())
	case "realnet":
		for _, t := range realnetTables() {
			fmt.Fprintln(w, t)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
}
