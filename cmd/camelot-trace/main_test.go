package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestJSONGolden pins the -json report byte-for-byte: the simulation
// is deterministic under a fixed seed, so any drift in the event
// timeline, the counters, or the report schema shows up as a golden
// diff. Regenerate deliberately with: go test ./cmd/camelot-trace -update
func TestJSONGolden(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts options
	}{
		{"trace-2pc.json", options{sites: 3, seed: 1, jsonOut: true}},
		{"trace-nb.json", options{sites: 3, nonblocking: true, seed: 1, jsonOut: true}},
		{"trace-paxos.json", options{sites: 3, protocol: "paxos", seed: 1, jsonOut: true}},
		{"trace-2pc-lossy.json", options{sites: 3, seed: 1, loss: 0.25, jsonOut: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := run(tc.opts)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			golden := filepath.Join("testdata", tc.name)
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("-json output differs from %s (%d vs %d bytes); rerun with -update if the change is intended",
					golden, len(got), len(want))
			}
		})
	}
}

// TestTextReport checks the human-readable mode end to end: Figure 1,
// the timeline, and both counter tables are present and the pinned
// two-phase budget numbers appear.
func TestTextReport(t *testing.T) {
	out, err := run(options{sites: 3, seed: 1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{
		"Figure 1: Execution of a Transaction",
		"Event timeline:",
		"LogForce",
		"Per-site counters:",
		"budget per site:",
		"Phase latencies (ms):",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q", want)
		}
	}
}

// TestRunRejectsBadSiteCount covers the flag validation path.
func TestRunRejectsBadSiteCount(t *testing.T) {
	if _, err := run(options{sites: 0, seed: 1}); err == nil {
		t.Error("run with -sites 0 succeeded, want error")
	}
}

// TestRunRejectsUnknownProtocol covers -protocol validation.
func TestRunRejectsUnknownProtocol(t *testing.T) {
	if _, err := run(options{sites: 3, seed: 1, protocol: "3pc"}); err == nil {
		t.Error("run with -protocol 3pc succeeded, want error")
	}
}

// TestPaxosReplayDeterministic pins replayability itself: two runs of
// the paxos trace under the same seed must agree byte for byte.
func TestPaxosReplayDeterministic(t *testing.T) {
	opts := options{sites: 3, protocol: "paxos", seed: 7, jsonOut: true}
	a, err := run(opts)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := run(opts)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a != b {
		t.Error("same seed produced different paxos traces")
	}
}

// TestLossyTraceShowsRecoveryMachinery checks the -loss mode actually
// exercises what a fault-free trace cannot: under seeded loss the
// report must carry retransmits (and the retry/backoff events that
// produced them), while the zero-loss goldens above stay byte-identical
// because the counters are omitempty and round 0 fires at exactly the
// base interval.
func TestLossyTraceShowsRecoveryMachinery(t *testing.T) {
	out, err := run(options{sites: 3, seed: 1, loss: 0.25, jsonOut: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{`"retransmits"`, `Retry`} {
		if !strings.Contains(out, want) {
			t.Errorf("lossy report missing %s", want)
		}
	}
	clean, err := run(options{sites: 3, seed: 1, jsonOut: true})
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	if strings.Contains(clean, `"retransmits"`) {
		t.Error("fault-free report contains retransmits; zero retries regressed")
	}
}

// TestRunRejectsBadLoss covers -loss validation.
func TestRunRejectsBadLoss(t *testing.T) {
	if _, err := run(options{sites: 3, seed: 1, loss: 1.5}); err == nil {
		t.Error("run with -loss 1.5 succeeded, want error")
	}
}
