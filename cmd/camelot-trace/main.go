// Command camelot-trace runs one distributed update transaction under
// the configured commit protocol and prints the full structured event
// timeline — log forces, device writes, datagrams, protocol phases,
// lock drops — together with the per-site and per-transaction counters
// the paper's budget analysis is built on. In the default text mode it
// first regenerates the paper's Figure 1 for context; with -json it
// emits a machine-readable report instead (stable across runs with the
// same seed, suitable for golden-file testing).
//
// Usage:
//
//	camelot-trace [-sites N] [-protocol 2pc|nb|paxos] [-seed S] [-loss P] [-json]
//
// With -loss P each datagram is dropped with probability P (seeded,
// deterministic): the timeline then shows EvRetry/EvBackoff events and
// the per-site retransmit and inquiry counters go nonzero — the
// recovery machinery a fault-free trace never exercises.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"camelot/camelot"
	"camelot/internal/exp"
	"camelot/internal/params"
	"camelot/internal/sim"
)

type options struct {
	sites       int
	nonblocking bool
	protocol    string
	seed        int64
	loss        float64
	jsonOut     bool
}

// commitOptions maps the selected protocol to per-commit options.
// Paxos runs at F=1 so the trace shows the replicated acceptor set.
func (o options) commitOptions() (camelot.Options, error) {
	switch o.protocol {
	case "paxos":
		return camelot.Options{Paxos: true, PaxosF: 1}, nil
	case "nb":
		return camelot.Options{NonBlocking: true}, nil
	case "2pc":
		return camelot.Options{}, nil
	case "":
		return camelot.Options{NonBlocking: o.nonblocking}, nil
	}
	return camelot.Options{}, fmt.Errorf("unknown -protocol %q (want 2pc, nb, or paxos)", o.protocol)
}

func main() {
	var opts options
	flag.IntVar(&opts.sites, "sites", 3, "number of sites (coordinator + sites-1 subordinates)")
	flag.BoolVar(&opts.nonblocking, "nonblocking", false, "use the non-blocking three-phase protocol")
	flag.StringVar(&opts.protocol, "protocol", "", "commit protocol: 2pc, nb, or paxos (overrides -nonblocking)")
	flag.Int64Var(&opts.seed, "seed", 1, "simulation seed (same seed, same timeline)")
	flag.Float64Var(&opts.loss, "loss", 0, "datagram loss probability: losses force retransmits and inquiries into the timeline and counters")
	flag.BoolVar(&opts.jsonOut, "json", false, "emit a machine-readable JSON report")
	flag.Parse()

	out, err := run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "camelot-trace:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

// run executes the traced transaction and renders the report; split
// from main so the golden-file test can call it directly.
func run(opts options) (string, error) {
	if opts.sites < 1 {
		return "", fmt.Errorf("-sites must be at least 1, got %d", opts.sites)
	}
	if opts.loss < 0 || opts.loss >= 1 {
		return "", fmt.Errorf("-loss must be in [0, 1), got %g", opts.loss)
	}
	copts, err := opts.commitOptions()
	if err != nil {
		return "", err
	}

	k := sim.New(opts.seed)
	cfg := camelot.DefaultConfig()
	cfg.Trace = true
	cfg.LossRate = opts.loss
	c := camelot.NewCluster(k, cfg)
	for id := camelot.SiteID(1); id <= camelot.SiteID(opts.sites); id++ {
		c.AddNode(id).AddServer(fmt.Sprintf("srv%d", id))
	}

	// One update at every site, committed from site 1 under the
	// selected protocol; then a drain long enough for the delayed
	// commit records and batched acks to flow, so the timeline is
	// complete rather than cut off at the client's return.
	var (
		txid   camelot.TID
		txErr  error
		commit time.Duration
	)
	k.Go("txn", func() {
		start := k.Now()
		tx, err := c.Node(1).Begin()
		if err != nil {
			txErr = err
			k.Stop()
			return
		}
		txid = tx.ID()
		for id := 1; id <= opts.sites; id++ {
			if err := tx.Write(fmt.Sprintf("srv%d", id), "k", []byte("v")); err != nil {
				txErr = err
				k.Stop()
				return
			}
		}
		if err := tx.CommitWith(copts); err != nil {
			txErr = err
			k.Stop()
			return
		}
		commit = k.Now() - start
		k.Sleep(2 * time.Second)
		k.Stop()
	})
	k.RunUntil(time.Minute)
	if msg := k.Deadlocked(); msg != "" {
		return "", fmt.Errorf("simulation deadlocked: %s", msg)
	}
	if txErr != nil {
		return "", fmt.Errorf("transaction failed: %w", txErr)
	}

	if opts.jsonOut {
		return renderJSON(opts, c, txid, commit)
	}
	return renderText(opts, c, txid, commit), nil
}

func protocolName(opts options) string {
	if opts.protocol == "paxos" {
		return "paxos"
	}
	if opts.protocol == "nb" || (opts.protocol == "" && opts.nonblocking) {
		return "non-blocking"
	}
	return "two-phase"
}

func renderText(opts options, c *camelot.Cluster, txid camelot.TID, commit time.Duration) string {
	var sb strings.Builder
	sb.WriteString(exp.Figure1(params.Paper()))
	tr := c.Trace()

	fmt.Fprintf(&sb, "\nTraced commit: %d site(s), %s protocol, seed %d\n",
		opts.sites, protocolName(opts), opts.seed)
	fmt.Fprintf(&sb, "  transaction %s committed in %.1f ms\n\n", txid, ms(commit))

	sb.WriteString("Event timeline:\n")
	for _, ev := range tr.Events() {
		fmt.Fprintf(&sb, "  %s\n", ev)
	}

	sb.WriteString("\nPer-site counters:\n")
	sb.WriteString("  site    appends forces devwr  bytes   sent   recv   drop   rpcs   ipcs\n")
	for _, s := range tr.Sites() {
		sc := tr.Site(s)
		fmt.Fprintf(&sb, "  %-7s %7d %6d %5d %6d %6d %6d %6d %6d %6d\n",
			s, sc.LogAppends, sc.LogForces, sc.DeviceWrites, sc.BytesWritten,
			sc.MsgsSent, sc.MsgsRecv, sc.MsgsDropped, sc.RPCs, sc.IPCs)
	}

	fmt.Fprintf(&sb, "\nTransaction %s budget per site:\n", txid)
	sb.WriteString("  site    appends forces   sent   recv\n")
	for _, s := range tr.Sites() {
		fc := tr.Family(txid, s)
		fmt.Fprintf(&sb, "  %-7s %7d %6d %6d %6d\n",
			s, fc.LogAppends, fc.LogForces, fc.MsgsSent, fc.MsgsRecv)
	}
	total := tr.FamilyTotal(txid)
	fmt.Fprintf(&sb, "  total   %7d %6d %6d %6d\n",
		total.LogAppends, total.LogForces, total.MsgsSent, total.MsgsRecv)

	if phases := tr.Phases(); len(phases) > 0 {
		sb.WriteString("\nPhase latencies (ms):\n")
		for _, p := range phases {
			s := tr.PhaseLatency(p)
			fmt.Fprintf(&sb, "  %-10s n=%-3d mean=%7.2f max=%7.2f\n", p, s.N(), s.Mean(), s.Max())
		}
	}
	return sb.String()
}

// renderJSON emits the machine-readable report; the schema lives in
// internal/trace (trace.Report) so other tools can decode it.
func renderJSON(opts options, c *camelot.Cluster, txid camelot.TID, commit time.Duration) (string, error) {
	rep := c.Trace().BuildReport(opts.sites, protocolName(opts), opts.seed, txid, commit)
	b, err := rep.EncodeJSON()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
