// Command camelot-trace regenerates the paper's Figure 1 — the
// annotated control flow of a transaction — with the primitive costs
// of the configured latency model, and runs the same minimal
// transaction in simulation to show the measured end-to-end time.
package main

import (
	"fmt"

	"camelot/internal/exp"
	"camelot/internal/params"
)

func main() {
	fmt.Println(exp.Figure1(params.Paper()))
}
