// Package server implements the Camelot data-server framework: a
// process that manages recoverable objects, serializes access with
// shared/exclusive locks, reports old/new object values to the log,
// and participates in commitment by joining transactions at its local
// transaction manager (Figure 1, steps 4–6 and 8–11 of the paper).
//
// Objects are byte-string values named by keys. Updates are applied
// in place under exclusive locks with the old value retained for
// undo, which together with the write-ahead update records gives the
// usual steal/no-force recovery discipline.
package server

import (
	"errors"
	"fmt"
	"time"

	"camelot/internal/lockmgr"
	"camelot/internal/params"
	"camelot/internal/rt"
	"camelot/internal/tid"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

// Operation errors.
var (
	// ErrLockTimeout reports a lock wait that exceeded the server's
	// timeout; the caller should abort the transaction.
	ErrLockTimeout = errors.New("server: lock wait timed out")
	// ErrNoSuchKey reports a read of a key that has no value.
	ErrNoSuchKey = errors.New("server: no such key")
)

// Joiner is the server's view of its local transaction manager: the
// "may I join?" call of Figure 1 step 4.
type Joiner interface {
	// Join registers p as a participant in t's family at this site.
	// parent is the zero TID for top-level transactions.
	Join(t, parent tid.TID, p Participant) error
}

// Participant is what the transaction manager asks of a joined
// server during commitment. It is implemented by *Server.
type Participant interface {
	// Name identifies the server in log records and traces.
	Name() string
	// Vote is the phase-one inquiry: VoteYes if the family updated
	// objects here, VoteReadOnly if not, VoteNo if the server cannot
	// commit.
	Vote(f tid.FamilyID) wire.Vote
	// CommitFamily makes the family's updates permanent and drops its
	// locks.
	CommitFamily(f tid.FamilyID)
	// AbortFamily undoes the family's updates and drops its locks.
	AbortFamily(f tid.FamilyID)
	// CommitChild merges a committed nested transaction into its
	// parent (locks and undo responsibility transfer).
	CommitChild(child, parent tid.TID)
	// AbortChild undoes a nested transaction and its descendants
	// without disturbing the rest of the family.
	AbortChild(child tid.TID)
}

// Config parameterizes a server.
type Config struct {
	// LockTimeout bounds lock waits; ErrLockTimeout after it.
	LockTimeout time.Duration
	// Params is the latency model; zero values charge nothing.
	Params params.Params
	// Kernel, if non-nil, is the site's serially shared kernel
	// processor through which IPC costs are charged.
	Kernel *rt.CPU
}

// Server is one data server.
type Server struct {
	name  string
	r     rt.Runtime
	tm    Joiner
	log   *wal.Log
	locks *lockmgr.Manager
	cfg   Config

	mu       rt.Mutex
	data     map[string][]byte
	undo     map[tid.FamilyID][]undoEntry
	joined   map[tid.FamilyID]map[tid.TID]bool
	parentOf map[tid.TID]tid.TID
	indoubt  map[tid.FamilyID]bool // recovered prepared families
	reads    int
	writes   int
}

type undoEntry struct {
	t   tid.TID
	key string
	old []byte
	had bool // whether the key existed before
}

// New creates a server. It becomes usable for operations immediately;
// it participates in commitment through the Participant methods the
// transaction manager invokes.
func New(r rt.Runtime, name string, tm Joiner, log *wal.Log, cfg Config) *Server {
	s := &Server{
		name:     name,
		r:        r,
		tm:       tm,
		log:      log,
		locks:    lockmgr.New(r),
		cfg:      cfg,
		data:     make(map[string][]byte),
		undo:     make(map[tid.FamilyID][]undoEntry),
		joined:   make(map[tid.FamilyID]map[tid.TID]bool),
		parentOf: make(map[tid.TID]tid.TID),
		indoubt:  make(map[tid.FamilyID]bool),
	}
	s.mu = r.NewMutex()
	return s
}

// Name returns the server's registered name.
func (s *Server) Name() string { return s.name }

// Read returns key's value as seen by t, under a shared lock. parent
// is t's parent for nested transactions (zero TID otherwise).
func (s *Server) Read(t, parent tid.TID, key string) ([]byte, error) {
	if err := s.join(t, parent); err != nil {
		return nil, err
	}
	if err := s.acquire(t, key, lockmgr.Shared); err != nil {
		return nil, err
	}
	s.chargeCPU()
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchKey, key)
	}
	s.reads++
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Write sets key to val on behalf of t under an exclusive lock,
// reporting the old and new value to the log (durable no later than
// the family's prepare or commit force).
func (s *Server) Write(t, parent tid.TID, key string, val []byte) error {
	if err := s.join(t, parent); err != nil {
		return err
	}
	if err := s.acquire(t, key, lockmgr.Exclusive); err != nil {
		return err
	}
	s.chargeCPU()
	s.mu.Lock()
	defer s.mu.Unlock()
	old, had := s.data[key]
	if _, err := s.log.Append(&wal.Record{
		Type:   wal.RecUpdate,
		TID:    t,
		Parent: s.parentOf[t],
		Server: s.name,
		Key:    key,
		Old:    old,
		New:    val,
	}); err != nil {
		return fmt.Errorf("server %s: log update: %w", s.name, err)
	}
	s.undo[t.Family] = append(s.undo[t.Family], undoEntry{t: t, key: key, old: old, had: had})
	cp := make([]byte, len(val))
	copy(cp, val)
	s.data[key] = cp
	s.writes++
	return nil
}

// Vote implements Participant.
func (s *Server) Vote(f tid.FamilyID) wire.Vote {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.undo[f]) == 0 && !s.indoubt[f] {
		return wire.VoteReadOnly
	}
	return wire.VoteYes
}

// CommitFamily implements Participant: updates are already in place,
// so committing clears undo state and drops every lock the family
// holds (Figure 1 step 11).
func (s *Server) CommitFamily(f tid.FamilyID) {
	s.mu.Lock()
	txns := s.familyTxnsLocked(f)
	delete(s.undo, f)
	delete(s.joined, f)
	delete(s.indoubt, f)
	s.mu.Unlock()
	s.dropLocks(txns)
}

// AbortFamily implements Participant: undo in reverse order, then
// drop locks.
func (s *Server) AbortFamily(f tid.FamilyID) {
	s.mu.Lock()
	entries := s.undo[f]
	for i := len(entries) - 1; i >= 0; i-- {
		s.applyUndoLocked(entries[i])
	}
	txns := s.familyTxnsLocked(f)
	delete(s.undo, f)
	delete(s.joined, f)
	delete(s.indoubt, f)
	s.mu.Unlock()
	s.dropLocks(txns)
}

// CommitChild implements Participant: the child's undo entries are
// re-tagged to the parent and its locks are inherited.
func (s *Server) CommitChild(child, parent tid.TID) {
	s.mu.Lock()
	entries := s.undo[child.Family]
	for i := range entries {
		if entries[i].t == child {
			entries[i].t = parent
		}
	}
	if j := s.joined[child.Family]; j != nil {
		delete(j, child)
		j[parent] = true
	}
	delete(s.parentOf, child)
	s.mu.Unlock()
	s.locks.OnChildCommit(child, parent)
}

// AbortChild implements Participant: undo the child's and its
// descendants' updates in reverse order and release their locks.
func (s *Server) AbortChild(child tid.TID) {
	s.mu.Lock()
	doomed := map[tid.TID]bool{child: true}
	// Descendants: any txn whose ancestry chain reaches child.
	for t := range s.parentOf {
		for cur := t; ; {
			p, ok := s.parentOf[cur]
			if !ok {
				break
			}
			if doomed[p] {
				doomed[t] = true
				break
			}
			cur = p
		}
	}
	f := child.Family
	var kept []undoEntry
	entries := s.undo[f]
	for i := len(entries) - 1; i >= 0; i-- {
		if doomed[entries[i].t] {
			s.applyUndoLocked(entries[i])
		}
	}
	for _, e := range entries {
		if !doomed[e.t] {
			kept = append(kept, e)
		}
	}
	s.undo[f] = kept
	var victims []tid.TID
	for t := range doomed {
		victims = append(victims, t)
		if j := s.joined[f]; j != nil {
			delete(j, t)
		}
		delete(s.parentOf, t)
	}
	s.mu.Unlock()
	s.dropLocks(victims)
}

// Install replaces the server's committed state; the recovery process
// calls it after replaying the log.
func (s *Server) Install(data map[string][]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string][]byte, len(data))
	for k, v := range data {
		cp := make([]byte, len(v))
		copy(cp, v)
		s.data[k] = cp
	}
}

// RecoveredUpdate is one in-doubt write reconstructed from the log.
type RecoveredUpdate struct {
	Key string
	Old []byte // nil means the key did not exist before
	New []byte
}

// Reacquire restores an in-doubt (prepared but unresolved)
// transaction after a crash: its updates are re-applied, its undo
// information reinstalled, and its write locks re-taken, so the
// eventual CommitFamily or AbortFamily behaves exactly as if the
// crash had not happened.
func (s *Server) Reacquire(t tid.TID, updates []RecoveredUpdate) {
	s.mu.Lock()
	s.indoubt[t.Family] = true
	if s.joined[t.Family] == nil {
		s.joined[t.Family] = make(map[tid.TID]bool)
	}
	s.joined[t.Family][t] = true
	for _, u := range updates {
		s.undo[t.Family] = append(s.undo[t.Family], undoEntry{
			t: t, key: u.Key, old: u.Old, had: u.Old != nil,
		})
		cp := make([]byte, len(u.New))
		copy(cp, u.New)
		s.data[u.Key] = cp
	}
	s.mu.Unlock()
	for _, u := range updates {
		// Freshly recovered lock table: acquisition cannot block.
		s.locks.Acquire(t, u.Key, lockmgr.Exclusive, 0) //nolint:errcheck
	}
}

// Peek returns the committed value of key without locking — for
// tests and examples inspecting state between transactions.
func (s *Server) Peek(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Snapshot returns a copy of all committed data.
func (s *Server) Snapshot() map[string][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]byte, len(s.data))
	for k, v := range s.data {
		cp := make([]byte, len(v))
		copy(cp, v)
		out[k] = cp
	}
	return out
}

// OpCounts reports reads and writes served.
func (s *Server) OpCounts() (reads, writes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads, s.writes
}

// Locks exposes the lock manager for contention statistics.
func (s *Server) Locks() *lockmgr.Manager { return s.locks }

// join registers t with the local transaction manager on its first
// operation at this server (Figure 1 step 4).
func (s *Server) join(t, parent tid.TID) error {
	s.mu.Lock()
	fam := s.joined[t.Family]
	already := fam != nil && fam[t]
	if !already {
		if fam == nil {
			fam = make(map[tid.TID]bool)
			s.joined[t.Family] = fam
		}
		fam[t] = true
		if !parent.IsZero() {
			s.parentOf[t] = parent
			s.locks.SetParent(t, parent)
		}
	}
	s.mu.Unlock()
	if already {
		return nil
	}
	// Joining is a synchronous IPC to the transaction manager.
	rt.Charge(s.r, s.cfg.Kernel, s.cfg.Params.LocalIPC+s.cfg.Params.KernelCPU)
	return s.tm.Join(t, parent, s)
}

func (s *Server) acquire(t tid.TID, key string, mode lockmgr.Mode) error {
	if s.cfg.Params.GetLock > 0 {
		s.r.Sleep(s.cfg.Params.GetLock)
	}
	timeout := s.cfg.LockTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	if err := s.locks.Acquire(t, key, mode, timeout); err != nil {
		return fmt.Errorf("%w: %s %s/%s", ErrLockTimeout, t, s.name, key)
	}
	return nil
}

func (s *Server) chargeCPU() {
	if s.cfg.Params.ServerCPU > 0 {
		s.r.Sleep(s.cfg.Params.ServerCPU)
	}
}

func (s *Server) applyUndoLocked(e undoEntry) {
	if e.had {
		s.data[e.key] = e.old
	} else {
		delete(s.data, e.key)
	}
}

func (s *Server) familyTxnsLocked(f tid.FamilyID) []tid.TID {
	var out []tid.TID
	for t := range s.joined[f] {
		out = append(out, t)
		delete(s.parentOf, t)
	}
	return out
}

func (s *Server) dropLocks(txns []tid.TID) {
	for _, t := range txns {
		if s.cfg.Params.DropLock > 0 {
			s.r.Sleep(s.cfg.Params.DropLock)
		}
		s.locks.Release(t)
	}
}
