package server

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"camelot/internal/sim"
	"camelot/internal/tid"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

// fakeJoiner records joins and always accepts.
type fakeJoiner struct {
	joins []tid.TID
	fail  bool
}

func (j *fakeJoiner) Join(t, parent tid.TID, p Participant) error {
	if j.fail {
		return errors.New("join refused")
	}
	j.joins = append(j.joins, t)
	return nil
}

type fixture struct {
	k   *sim.Kernel
	srv *Server
	log *wal.Log
	tm  *fakeJoiner
}

func newFixture() *fixture {
	k := sim.New(1)
	f := &fixture{k: k, tm: &fakeJoiner{}}
	f.log = wal.Open(k, wal.NewMemStore(), wal.Config{ForceLatency: time.Millisecond})
	f.srv = New(k, "srv", f.tm, f.log, Config{LockTimeout: 100 * time.Millisecond})
	return f
}

func (f *fixture) run(t *testing.T, fn func()) {
	t.Helper()
	f.k.Go("test", func() {
		fn()
		f.k.Stop()
	})
	f.k.RunUntil(time.Minute)
	if msg := f.k.Deadlocked(); msg != "" {
		t.Fatal(msg)
	}
}

func top(n uint32) tid.TID { return tid.Top(tid.MakeFamily(1, n)) }

func TestWriteThenReadSameTransaction(t *testing.T) {
	f := newFixture()
	f.run(t, func() {
		tx := top(1)
		if err := f.srv.Write(tx, tid.TID{}, "a", []byte("v")); err != nil {
			t.Fatalf("Write: %v", err)
		}
		got, err := f.srv.Read(tx, tid.TID{}, "a")
		if err != nil || !bytes.Equal(got, []byte("v")) {
			t.Fatalf("Read = %q, %v", got, err)
		}
	})
}

func TestReadMissingKey(t *testing.T) {
	f := newFixture()
	f.run(t, func() {
		_, err := f.srv.Read(top(1), tid.TID{}, "nope")
		if !errors.Is(err, ErrNoSuchKey) {
			t.Fatalf("Read(missing) = %v, want ErrNoSuchKey", err)
		}
	})
}

func TestFirstOperationJoinsExactlyOnce(t *testing.T) {
	f := newFixture()
	f.run(t, func() {
		tx := top(1)
		f.srv.Write(tx, tid.TID{}, "a", []byte("1")) //nolint:errcheck
		f.srv.Write(tx, tid.TID{}, "b", []byte("2")) //nolint:errcheck
		f.srv.Read(tx, tid.TID{}, "a")               //nolint:errcheck
		if len(f.tm.joins) != 1 {
			t.Fatalf("joined %d times, want 1", len(f.tm.joins))
		}
	})
}

func TestJoinRefusalFailsOperation(t *testing.T) {
	f := newFixture()
	f.tm.fail = true
	f.run(t, func() {
		if err := f.srv.Write(top(1), tid.TID{}, "a", []byte("1")); err == nil {
			t.Fatal("Write succeeded though join was refused")
		}
	})
}

func TestVoteReflectsUpdates(t *testing.T) {
	f := newFixture()
	f.run(t, func() {
		reader := top(1)
		writer := top(2)
		f.srv.Write(top(3), tid.TID{}, "a", []byte("seed")) //nolint:errcheck
		f.srv.CommitFamily(top(3).Family)
		f.srv.Read(reader, tid.TID{}, "a")              //nolint:errcheck
		f.srv.Write(writer, tid.TID{}, "b", []byte("")) //nolint:errcheck
		if v := f.srv.Vote(reader.Family); v != wire.VoteReadOnly {
			t.Errorf("reader vote = %v, want READ-ONLY", v)
		}
		if v := f.srv.Vote(writer.Family); v != wire.VoteYes {
			t.Errorf("writer vote = %v, want YES", v)
		}
	})
}

func TestUpdatesAreLoggedWithOldAndNewValues(t *testing.T) {
	f := newFixture()
	f.run(t, func() {
		tx := top(1)
		f.srv.Write(tx, tid.TID{}, "a", []byte("v1")) //nolint:errcheck
		f.srv.Write(tx, tid.TID{}, "a", []byte("v2")) //nolint:errcheck
		f.log.ForceAll()                              //nolint:errcheck
		recs, _ := f.log.Records()
		if len(recs) != 2 {
			t.Fatalf("%d update records, want 2", len(recs))
		}
		if recs[0].Old != nil || string(recs[0].New) != "v1" {
			t.Errorf("first update old/new = %q/%q", recs[0].Old, recs[0].New)
		}
		if string(recs[1].Old) != "v1" || string(recs[1].New) != "v2" {
			t.Errorf("second update old/new = %q/%q", recs[1].Old, recs[1].New)
		}
		if recs[0].Server != "srv" || recs[0].Key != "a" {
			t.Errorf("record names %q/%q", recs[0].Server, recs[0].Key)
		}
	})
}

func TestAbortRestoresPriorValues(t *testing.T) {
	f := newFixture()
	f.run(t, func() {
		setup := top(1)
		f.srv.Write(setup, tid.TID{}, "a", []byte("old")) //nolint:errcheck
		f.srv.CommitFamily(setup.Family)

		tx := top(2)
		f.srv.Write(tx, tid.TID{}, "a", []byte("new")) //nolint:errcheck
		f.srv.Write(tx, tid.TID{}, "b", []byte("ins")) //nolint:errcheck
		f.srv.AbortFamily(tx.Family)

		if v, _ := f.srv.Peek("a"); string(v) != "old" {
			t.Errorf("a = %q after abort, want \"old\"", v)
		}
		if _, ok := f.srv.Peek("b"); ok {
			t.Error("inserted key survived abort")
		}
	})
}

func TestAbortUndoesInReverseOrder(t *testing.T) {
	f := newFixture()
	f.run(t, func() {
		tx := top(1)
		// Three writes to the same key; undo must restore the
		// original absence.
		for _, v := range []string{"1", "2", "3"} {
			f.srv.Write(tx, tid.TID{}, "k", []byte(v)) //nolint:errcheck
		}
		f.srv.AbortFamily(tx.Family)
		if _, ok := f.srv.Peek("k"); ok {
			t.Error("key exists after aborting the transaction that created it")
		}
	})
}

func TestCommitReleasesLocks(t *testing.T) {
	f := newFixture()
	f.run(t, func() {
		tx := top(1)
		f.srv.Write(tx, tid.TID{}, "a", []byte("1")) //nolint:errcheck
		f.srv.CommitFamily(tx.Family)
		// Another family can now take the lock immediately.
		if err := f.srv.Write(top(2), tid.TID{}, "a", []byte("2")); err != nil {
			t.Fatalf("lock not released by commit: %v", err)
		}
		if f.srv.Locks().HoldsAny(tx) {
			t.Error("committed transaction still holds locks")
		}
	})
}

func TestLockTimeoutSurfacesAsError(t *testing.T) {
	f := newFixture()
	f.run(t, func() {
		f.srv.Write(top(1), tid.TID{}, "a", []byte("1")) //nolint:errcheck
		err := f.srv.Write(top(2), tid.TID{}, "a", []byte("2"))
		if !errors.Is(err, ErrLockTimeout) {
			t.Fatalf("conflicting write = %v, want ErrLockTimeout", err)
		}
	})
}

func TestChildCommitMergesUndoAndLocks(t *testing.T) {
	f := newFixture()
	f.run(t, func() {
		parent := top(1)
		child := tid.TID{Family: parent.Family, Seq: tid.MakeSeq(1, 1)}
		f.srv.Write(parent, tid.TID{}, "p", []byte("1")) //nolint:errcheck
		f.srv.Write(child, parent, "c", []byte("2"))     //nolint:errcheck
		f.srv.CommitChild(child, parent)
		// Aborting the parent must now undo the child's write too.
		f.srv.AbortFamily(parent.Family)
		if _, ok := f.srv.Peek("c"); ok {
			t.Error("child write survived parent abort after inheritance")
		}
	})
}

func TestChildAbortLeavesParentUpdates(t *testing.T) {
	f := newFixture()
	f.run(t, func() {
		parent := top(1)
		child := tid.TID{Family: parent.Family, Seq: tid.MakeSeq(1, 1)}
		f.srv.Write(parent, tid.TID{}, "p", []byte("1")) //nolint:errcheck
		f.srv.Write(child, parent, "c", []byte("2"))     //nolint:errcheck
		f.srv.AbortChild(child)
		if _, ok := f.srv.Peek("c"); ok {
			t.Error("child write visible after child abort")
		}
		f.srv.CommitFamily(parent.Family)
		if v, _ := f.srv.Peek("p"); string(v) != "1" {
			t.Errorf("parent write lost: p = %q", v)
		}
	})
}

func TestChildAbortCascadesToDescendants(t *testing.T) {
	f := newFixture()
	f.run(t, func() {
		parent := top(1)
		child := tid.TID{Family: parent.Family, Seq: tid.MakeSeq(1, 1)}
		grand := tid.TID{Family: parent.Family, Seq: tid.MakeSeq(1, 2)}
		f.srv.Write(parent, tid.TID{}, "p", []byte("1")) //nolint:errcheck
		f.srv.Write(child, parent, "c", []byte("2"))     //nolint:errcheck
		f.srv.Write(grand, child, "g", []byte("3"))      //nolint:errcheck
		f.srv.AbortChild(child)
		if _, ok := f.srv.Peek("c"); ok {
			t.Error("child write survived")
		}
		if _, ok := f.srv.Peek("g"); ok {
			t.Error("grandchild write survived child abort")
		}
	})
}

func TestInstallReplacesState(t *testing.T) {
	f := newFixture()
	f.run(t, func() {
		f.srv.Write(top(1), tid.TID{}, "junk", []byte("x")) //nolint:errcheck
		f.srv.Install(map[string][]byte{"a": []byte("1"), "b": []byte("2")})
		if _, ok := f.srv.Peek("junk"); ok {
			t.Error("pre-install state survived Install")
		}
		if v, _ := f.srv.Peek("a"); string(v) != "1" {
			t.Errorf("a = %q after Install", v)
		}
	})
}

func TestReacquireRestoresInDoubtState(t *testing.T) {
	f := newFixture()
	f.run(t, func() {
		tx := top(1)
		f.srv.Reacquire(tx, []RecoveredUpdate{
			{Key: "a", Old: []byte("old"), New: []byte("new")},
			{Key: "b", Old: nil, New: []byte("ins")},
		})
		// The in-doubt value is applied and locked.
		if v, _ := f.srv.Peek("a"); string(v) != "new" {
			t.Errorf("a = %q, want in-doubt \"new\"", v)
		}
		if err := f.srv.Write(top(2), tid.TID{}, "a", []byte("x")); !errors.Is(err, ErrLockTimeout) {
			t.Errorf("in-doubt key not locked: %v", err)
		}
		// The vote reflects the in-doubt updates.
		if v := f.srv.Vote(tx.Family); v != wire.VoteYes {
			t.Errorf("in-doubt vote = %v, want YES", v)
		}
		// Abort resolution restores the old values.
		f.srv.AbortFamily(tx.Family)
		if v, _ := f.srv.Peek("a"); string(v) != "old" {
			t.Errorf("a = %q after in-doubt abort, want \"old\"", v)
		}
		if _, ok := f.srv.Peek("b"); ok {
			t.Error("in-doubt insert survived abort")
		}
	})
}

func TestReacquireThenCommit(t *testing.T) {
	f := newFixture()
	f.run(t, func() {
		tx := top(1)
		f.srv.Reacquire(tx, []RecoveredUpdate{{Key: "a", New: []byte("v")}})
		f.srv.CommitFamily(tx.Family)
		if v, _ := f.srv.Peek("a"); string(v) != "v" {
			t.Errorf("a = %q after in-doubt commit, want \"v\"", v)
		}
		if err := f.srv.Write(top(2), tid.TID{}, "a", []byte("x")); err != nil {
			t.Errorf("lock not released after in-doubt commit: %v", err)
		}
	})
}

func TestSnapshotAndOpCounts(t *testing.T) {
	f := newFixture()
	f.run(t, func() {
		tx := top(1)
		f.srv.Write(tx, tid.TID{}, "a", []byte("1")) //nolint:errcheck
		f.srv.Read(tx, tid.TID{}, "a")               //nolint:errcheck
		f.srv.CommitFamily(tx.Family)
		snap := f.srv.Snapshot()
		if len(snap) != 1 || string(snap["a"]) != "1" {
			t.Errorf("Snapshot = %v", snap)
		}
		r, w := f.srv.OpCounts()
		if r != 1 || w != 1 {
			t.Errorf("OpCounts = %d reads, %d writes; want 1/1", r, w)
		}
	})
}

func TestReadCopiesDoNotAlias(t *testing.T) {
	f := newFixture()
	f.run(t, func() {
		tx := top(1)
		f.srv.Write(tx, tid.TID{}, "a", []byte("abc")) //nolint:errcheck
		got, _ := f.srv.Read(tx, tid.TID{}, "a")
		got[0] = 'X'
		again, _ := f.srv.Read(tx, tid.TID{}, "a")
		if string(again) != "abc" {
			t.Error("Read returned aliased storage")
		}
	})
}
