package server

import (
	"errors"
	"fmt"

	"camelot/internal/rt"
	"camelot/internal/shardmap"
	"camelot/internal/tid"
	"camelot/internal/wal"
)

// Keyspace-routing errors. Both are terminal for the operation, never
// retried: a key on an unplaced shard is covered by no site at all,
// and a key homed elsewhere must be routed there by the client — this
// site will never serve it.
var (
	// ErrNoShard reports an operation on a key whose shard has no home
	// site in the deployment's shard map.
	ErrNoShard = errors.New("server: key belongs to no placed shard")
	// ErrWrongSite reports an operation on a key whose home shard is
	// hosted at a different site.
	ErrWrongSite = errors.New("server: key's home shard is not hosted at this site")
)

// Set is one site's shard-scoped data tier: the shard servers the
// deployment's shard map assigns to this site. Each shard is an
// ordinary *Server — its own lock manager and object table — and all
// of a site's shards share the site's write-ahead log and transaction
// manager, so a multi-shard transaction at one site is still one
// participant in commitment.
type Set struct {
	site    tid.SiteID
	m       *shardmap.Map
	byShard map[shardmap.ShardID]*Server
	byName  map[string]*Server
	names   []string // sorted ascending by shard id
}

// NewSet builds the shard servers assigned to site by m. The servers
// exist immediately — recovery installs state into them by name, so
// they must be created before the site's log is replayed.
func NewSet(r rt.Runtime, site tid.SiteID, m *shardmap.Map, tm Joiner, log *wal.Log, cfg Config) *Set {
	ss := &Set{
		site:    site,
		m:       m,
		byShard: make(map[shardmap.ShardID]*Server),
		byName:  make(map[string]*Server),
	}
	for _, sh := range m.ShardsAt(site) {
		name := m.ServerOf(sh)
		srv := New(r, name, tm, log, cfg)
		ss.byShard[sh] = srv
		ss.byName[name] = srv
		ss.names = append(ss.names, name)
	}
	return ss
}

// Map returns the shard map the set routes by.
func (ss *Set) Map() *shardmap.Map { return ss.m }

// route finds the local shard server for key, or the typed routing
// error explaining why this site cannot serve it.
func (ss *Set) route(key string) (*Server, error) {
	sh := ss.m.ShardOf(key)
	home := ss.m.Home(sh)
	if home == 0 {
		return nil, fmt.Errorf("%w: key %q (shard %d of %d)", ErrNoShard, key, sh, ss.m.Shards)
	}
	if home != ss.site {
		return nil, fmt.Errorf("%w: key %q homes at %s (shard %d)", ErrWrongSite, key, home, sh)
	}
	return ss.byShard[sh], nil
}

// Write routes key to its local shard server and writes it under t.
func (ss *Set) Write(t, parent tid.TID, key string, val []byte) error {
	srv, err := ss.route(key)
	if err != nil {
		return err
	}
	return srv.Write(t, parent, key, val)
}

// Read routes key to its local shard server and reads it under t.
func (ss *Set) Read(t, parent tid.TID, key string) ([]byte, error) {
	srv, err := ss.route(key)
	if err != nil {
		return nil, err
	}
	return srv.Read(t, parent, key)
}

// Peek returns the committed value of key from its local shard
// server, without locking. The error is the routing verdict: a key
// this site does not cover is an error, not merely absent.
func (ss *Set) Peek(key string) ([]byte, bool, error) {
	srv, err := ss.route(key)
	if err != nil {
		return nil, false, err
	}
	v, ok := srv.Peek(key)
	return v, ok, nil
}

// Shard returns the server hosting shard sh here, or nil.
func (ss *Set) Shard(sh shardmap.ShardID) *Server { return ss.byShard[sh] }

// Servers returns the site's shard servers keyed by server name — the
// map the recovery process installs state into.
func (ss *Set) Servers() map[string]*Server {
	out := make(map[string]*Server, len(ss.byName))
	for _, name := range ss.names {
		out[name] = ss.byName[name]
	}
	return out
}

// Names lists the local shard server names in shard order.
func (ss *Set) Names() []string {
	return append([]string(nil), ss.names...)
}
