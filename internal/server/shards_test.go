package server

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"camelot/internal/shardmap"
	"camelot/internal/sim"
	"camelot/internal/tid"
	"camelot/internal/wal"
)

// shardFixture is a Set over a 4-shard, 2-site map; the fixture's set
// is site 1's half of the keyspace.
type shardFixture struct {
	k   *sim.Kernel
	set *Set
	m   *shardmap.Map
	tm  *fakeJoiner
}

func newShardFixture(t *testing.T) *shardFixture {
	t.Helper()
	m, err := shardmap.New(1, 4, []tid.SiteID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	k := sim.New(1)
	f := &shardFixture{k: k, m: m, tm: &fakeJoiner{}}
	log := wal.Open(k, wal.NewMemStore(), wal.Config{ForceLatency: time.Millisecond})
	f.set = NewSet(k, 1, m, f.tm, log, Config{LockTimeout: 100 * time.Millisecond})
	return f
}

func (f *shardFixture) run(t *testing.T, fn func()) {
	t.Helper()
	f.k.Go("test", func() {
		fn()
		f.k.Stop()
	})
	f.k.RunUntil(time.Minute)
	if msg := f.k.Deadlocked(); msg != "" {
		t.Fatal(msg)
	}
}

// localKey returns a key homed at site under f.m, searching a
// deterministic candidate sequence.
func localKey(t *testing.T, m *shardmap.Map, site tid.SiteID, tag string) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("%s.%d", tag, i)
		if m.SiteOf(k) == site {
			return k
		}
	}
	t.Fatalf("no key homed at site %d in 1000 candidates", site)
	return ""
}

func TestSetCreatesAssignedShards(t *testing.T) {
	f := newShardFixture(t)
	// 4 shards round-robin over sites {1,2}: shards 0,2 at site 1.
	names := f.set.Names()
	if len(names) != 2 || names[0] != "shard0" || names[1] != "shard2" {
		t.Fatalf("Names() = %v, want [shard0 shard2]", names)
	}
	if f.set.Shard(0) == nil || f.set.Shard(2) == nil {
		t.Fatal("assigned shards missing")
	}
	if f.set.Shard(1) != nil || f.set.Shard(3) != nil {
		t.Fatal("set hosts shards assigned elsewhere")
	}
	srvs := f.set.Servers()
	if len(srvs) != 2 || srvs["shard0"] != f.set.Shard(0) || srvs["shard2"] != f.set.Shard(2) {
		t.Fatalf("Servers() = %v", srvs)
	}
}

func TestSetRoutesByKey(t *testing.T) {
	f := newShardFixture(t)
	f.run(t, func() {
		key := localKey(t, f.m, 1, "w")
		tx := top(1)
		if err := f.set.Write(tx, tid.TID{}, key, []byte("v")); err != nil {
			t.Fatalf("Write(%q): %v", key, err)
		}
		got, err := f.set.Read(tx, tid.TID{}, key)
		if err != nil || !bytes.Equal(got, []byte("v")) {
			t.Fatalf("Read = %q, %v", got, err)
		}
		// The write landed on the key's own shard server, not a sibling.
		sh := f.m.ShardOf(key)
		if _, ok := f.set.Shard(sh).Peek(key); ok {
			t.Log("uncommitted value visible via Peek (in-place update); expected")
		}
		for _, other := range []shardmap.ShardID{0, 2} {
			if other == sh {
				continue
			}
			if _, ok := f.set.Shard(other).Peek(key); ok {
				t.Errorf("key %q leaked onto shard %d", key, other)
			}
		}
	})
}

func TestSetRejectsWrongSite(t *testing.T) {
	f := newShardFixture(t)
	f.run(t, func() {
		key := localKey(t, f.m, 2, "w") // homes at site 2; the set is site 1's
		err := f.set.Write(top(1), tid.TID{}, key, []byte("v"))
		if !errors.Is(err, ErrWrongSite) {
			t.Fatalf("Write(foreign key) = %v, want ErrWrongSite", err)
		}
		if _, err := f.set.Read(top(1), tid.TID{}, key); !errors.Is(err, ErrWrongSite) {
			t.Fatalf("Read(foreign key) = %v, want ErrWrongSite", err)
		}
		if _, _, err := f.set.Peek(key); !errors.Is(err, ErrWrongSite) {
			t.Fatalf("Peek(foreign key) = %v, want ErrWrongSite", err)
		}
	})
}

func TestSetRejectsUnplacedShard(t *testing.T) {
	// A hand-built map with two unplaced shards: keys hashing there are
	// covered by no site, and the set must say so with the typed error.
	m := &shardmap.Map{Version: 1, Shards: 4, Placement: []tid.SiteID{1, 0, 1, 0}}
	k := sim.New(1)
	log := wal.Open(k, wal.NewMemStore(), wal.Config{ForceLatency: time.Millisecond})
	set := NewSet(k, 1, m, &fakeJoiner{}, log, Config{LockTimeout: 100 * time.Millisecond})

	var uncovered string
	for i := 0; i < 1000 && uncovered == ""; i++ {
		cand := fmt.Sprintf("u.%d", i)
		if m.SiteOf(cand) == 0 {
			uncovered = cand
		}
	}
	if uncovered == "" {
		t.Fatal("no key hashed to an unplaced shard in 1000 candidates")
	}

	k.Go("test", func() {
		if err := set.Write(top(1), tid.TID{}, uncovered, []byte("v")); !errors.Is(err, ErrNoShard) {
			t.Errorf("Write(uncovered key) = %v, want ErrNoShard", err)
		}
		if _, _, err := set.Peek(uncovered); !errors.Is(err, ErrNoShard) {
			t.Errorf("Peek(uncovered key) = %v, want ErrNoShard", err)
		}
		k.Stop()
	})
	k.RunUntil(time.Minute)
	if msg := k.Deadlocked(); msg != "" {
		t.Fatal(msg)
	}
}

// TestSetShardsHaveIndependentLockManagers pins the point of
// shard-scoped servers: a transaction stuck behind a lock on one
// shard does not serialize against traffic on a sibling shard's lock
// manager.
func TestSetShardsHaveIndependentLockManagers(t *testing.T) {
	f := newShardFixture(t)
	f.run(t, func() {
		k0 := localKey(t, f.m, 1, "a")
		// Find a second local key on the other local shard.
		var k1 string
		for i := 0; i < 1000; i++ {
			cand := fmt.Sprintf("b.%d", i)
			if f.m.SiteOf(cand) == 1 && f.m.ShardOf(cand) != f.m.ShardOf(k0) {
				k1 = cand
				break
			}
		}
		if k1 == "" {
			t.Fatal("no key found on the sibling shard")
		}
		t1, t2 := top(1), top(2)
		if err := f.set.Write(t1, tid.TID{}, k0, []byte("v")); err != nil {
			t.Fatal(err)
		}
		// t2 writes the sibling shard while t1 still holds its lock.
		if err := f.set.Write(t2, tid.TID{}, k1, []byte("v")); err != nil {
			t.Fatalf("sibling-shard write blocked: %v", err)
		}
		if f.set.Shard(f.m.ShardOf(k0)).Locks() == f.set.Shard(f.m.ShardOf(k1)).Locks() {
			t.Fatal("shards share one lock manager")
		}
	})
}
