// Package recman implements the recovery process: after a failure it
// "reads the log and instructs servers how to undo or redo updates of
// interrupted transactions" (paper §2), and it rebuilds the
// transaction-manager state needed to finish in-doubt commitments —
// presumed-abort inquiry for two-phase commit, quorum resolution for
// the non-blocking protocol.
//
// Recovery is a single analysis pass over the durable log in LSN
// order:
//
//   - updates of committed families (excluding aborted nested
//     subtrees) are redone into the servers' recovered state;
//   - updates of aborted or never-resolved families are discarded —
//     presumed abort means no record implies abort;
//   - prepared or intent-replicated transactions without an outcome
//     are in doubt: their updates are re-applied under re-acquired
//     locks and handed to the transaction manager for resolution;
//   - a coordinator's COMMIT record without a matching END means
//     subordinates may still be waiting: the outcome must be
//     re-driven until every ack arrives.
package recman

import (
	"camelot/internal/tid"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

// InDoubt describes a prepared-but-unresolved transaction found in
// the log.
type InDoubt struct {
	TID          tid.TID
	Coordinator  tid.SiteID
	NonBlocking  bool
	Sites        []tid.SiteID
	CommitQuorum int
	AbortQuorum  int
	Replicated   bool // an NB commit-intent record was forced here
	AbortIntent  bool // an NB abort-intent record was forced here
	Votes        []wire.SiteVote
	// Paxos Commit state. Prepared reports a durable PAXOS-PREPARE
	// (the site's own Yes vote); a site with only acceptor records —
	// a read-only participant hosting an acceptor, or a pure
	// acceptor-role descriptor — is still in doubt, but recovery must
	// not claim a vote it never forced.
	Paxos     bool
	Prepared  bool
	Acceptors []tid.SiteID
	Promised  uint64 // max over promise records and accepted-record ballots
	Accepted  []wire.PaxosAccepted
	AccForced bool // a PAXOS-ACCEPT record is durable here
	// Updates are the in-doubt writes per server, to re-apply under
	// re-acquired locks.
	Updates map[string][]*wal.Record
}

// CoordResume describes a coordinator decision that may not have
// reached every subordinate.
type CoordResume struct {
	TID         tid.TID
	UpdateSubs  []tid.SiteID
	NonBlocking bool
}

// Analysis is the result of scanning one site's log.
type Analysis struct {
	// Data is the recovered committed state, per server per key.
	Data map[string]map[string][]byte
	// Deleted marks keys whose most recent committed update was a
	// deletion (New == nil), so a base image from an earlier
	// checkpoint can be corrected.
	Deleted map[string]map[string]bool
	// InDoubt lists transactions this site must resolve via protocol.
	InDoubt []InDoubt
	// Resume lists coordinator decisions to re-drive.
	Resume []CoordResume
	// Committed and Aborted are the top-level outcomes found.
	Committed map[tid.TID]bool
	Aborted   map[tid.TID]bool
	// MaxLocalFamily is the highest family counter this site ever
	// allocated, as witnessed by the log. The restarted transaction
	// manager must begin new families above it: reusing a family
	// identifier would let a new transaction's ABORT record
	// retroactively doom a previous incarnation's committed updates.
	MaxLocalFamily uint32
}

// Analyze scans records (in LSN order, as wal.Log.Records returns
// them) for the given site.
func Analyze(site tid.SiteID, records []*wal.Record) *Analysis {
	a := &Analysis{
		Data:      make(map[string]map[string][]byte),
		Deleted:   make(map[string]map[string]bool),
		Committed: make(map[tid.TID]bool),
		Aborted:   make(map[tid.TID]bool),
	}

	var updates []*wal.Record
	parentOf := make(map[tid.TID]tid.TID)
	prepared := make(map[tid.TID]*wal.Record)
	replicated := make(map[tid.TID]*wal.Record)
	abortIntent := make(map[tid.TID]bool)
	commitSites := make(map[tid.TID][]tid.SiteID)
	nbCommit := make(map[tid.TID]bool)
	ended := make(map[tid.TID]bool)
	paxPrepared := make(map[tid.TID]*wal.Record)
	paxAccepted := make(map[tid.TID]*wal.Record)
	paxPromise := make(map[tid.TID]*wal.Record)

	for _, r := range records {
		if r.TID.Family.Origin() == site && r.TID.Family.Counter() > a.MaxLocalFamily {
			a.MaxLocalFamily = r.TID.Family.Counter()
		}
		switch r.Type {
		case wal.RecUpdate:
			updates = append(updates, r)
			if !r.Parent.IsZero() {
				parentOf[r.TID] = r.Parent
			}
		case wal.RecPrepare:
			prepared[r.TID.TopLevel()] = r
		case wal.RecNBReplicate:
			replicated[r.TID.TopLevel()] = r
		case wal.RecNBAbortIntent:
			abortIntent[r.TID.TopLevel()] = true
		case wal.RecPaxosPrepare:
			paxPrepared[r.TID.TopLevel()] = r
		case wal.RecPaxosAccept:
			// Keep the freshest accepted state: highest ballot, later
			// LSN on ties (a re-forced batch supersedes its predecessor).
			top := r.TID.TopLevel()
			if cur := paxAccepted[top]; cur == nil || r.Ballot >= cur.Ballot {
				paxAccepted[top] = r
			}
		case wal.RecPaxosPromise:
			top := r.TID.TopLevel()
			if cur := paxPromise[top]; cur == nil || r.Ballot > cur.Ballot {
				paxPromise[top] = r
			}
		case wal.RecCommit:
			top := r.TID.TopLevel()
			a.Committed[top] = true
			commitSites[top] = r.Sites
			if _, wasNB := replicated[top]; wasNB {
				nbCommit[top] = true
			}
		case wal.RecAbort:
			if r.TID.IsTop() {
				a.Aborted[r.TID] = true
			} else {
				// A nested abort dooms that subtree only.
				a.Aborted[r.TID] = true
			}
		case wal.RecEnd:
			ended[r.TID.TopLevel()] = true
		case wal.RecCheckpoint:
			// A checkpoint is a scan starting marker, not
			// per-transaction state; nothing to classify. Named
			// explicitly so a future stateful checkpoint record cannot
			// be skipped silently.
		}
	}

	// Classify in-doubt transactions: prepared or intent-replicated,
	// no outcome. Everything else without a commit record is aborted
	// by presumption.
	indoubtSet := make(map[tid.TID]*InDoubt)
	consider := func(top tid.TID, rec *wal.Record, repl bool) {
		if a.Committed[top] || a.Aborted[top] {
			return
		}
		d := indoubtSet[top]
		if d == nil {
			d = &InDoubt{TID: top, Updates: make(map[string][]*wal.Record)}
			indoubtSet[top] = d
		}
		d.Coordinator = rec.Coordinator
		if len(rec.Sites) > 0 {
			d.Sites = rec.Sites
			d.NonBlocking = true
			d.CommitQuorum = int(rec.CommitQuorum)
			d.AbortQuorum = int(rec.AbortQuorum)
		}
		if repl {
			d.Replicated = true
			d.Votes = rec.Votes
		}
		d.AbortIntent = d.AbortIntent || abortIntent[top]
	}
	for top, rec := range prepared {
		consider(top, rec, false)
	}
	for top, rec := range replicated {
		consider(top, rec, true)
	}
	// Paxos records route through their own classifier: consider's
	// len(Sites)>0 ⇒ NonBlocking heuristic must never see them.
	considerPaxos := func(top tid.TID, rec *wal.Record, preparedHere bool) {
		if a.Committed[top] || a.Aborted[top] {
			return
		}
		d := indoubtSet[top]
		if d == nil {
			d = &InDoubt{TID: top, Updates: make(map[string][]*wal.Record)}
			indoubtSet[top] = d
		}
		d.Paxos = true
		if rec.Coordinator != 0 {
			d.Coordinator = rec.Coordinator
		}
		if len(rec.Sites) > 0 {
			d.Sites = rec.Sites
		}
		if len(rec.Acceptors) > 0 {
			d.Acceptors = rec.Acceptors
		}
		if preparedHere {
			d.Prepared = true
		}
		if p := paxPromise[top]; p != nil && p.Ballot > d.Promised {
			d.Promised = p.Ballot
		}
	}
	for top, rec := range paxPrepared {
		considerPaxos(top, rec, true)
	}
	// A promise with neither prepare nor accept still binds: the
	// restarted acceptor must keep refusing lower ballots, or a late
	// ballot-0 vote could contradict an abort decided on the strength
	// of this site's empty phase-1b answer.
	for top, rec := range paxPromise {
		considerPaxos(top, rec, false)
	}
	for top, rec := range paxAccepted {
		considerPaxos(top, rec, false)
		if d := indoubtSet[top]; d != nil {
			// The batch is only forced complete, and a higher-ballot 2a
			// always rewrites every instance, so one record's votes all
			// share its ballot.
			for _, v := range rec.Votes {
				d.Accepted = append(d.Accepted, wire.PaxosAccepted{
					Site: v.Site, Ballot: rec.Ballot, Vote: v.Vote,
				})
			}
			d.AccForced = true
			// Accepting at b implies promising b.
			if rec.Ballot > d.Promised {
				d.Promised = rec.Ballot
			}
		}
	}

	// Redo pass: apply winners in LSN order; collect in-doubt updates.
	for _, u := range updates {
		top := u.TID.TopLevel()
		if doomedByAncestry(u.TID, parentOf, a.Aborted) {
			continue
		}
		if a.Committed[top] {
			m := a.Data[u.Server]
			if m == nil {
				m = make(map[string][]byte)
				a.Data[u.Server] = m
			}
			if u.New == nil {
				delete(m, u.Key)
				if a.Deleted[u.Server] == nil {
					a.Deleted[u.Server] = make(map[string]bool)
				}
				a.Deleted[u.Server][u.Key] = true
			} else {
				m[u.Key] = u.New
				if d := a.Deleted[u.Server]; d != nil {
					delete(d, u.Key)
				}
			}
			continue
		}
		if d := indoubtSet[top]; d != nil {
			d.Updates[u.Server] = append(d.Updates[u.Server], u)
		}
		// Otherwise: loser by presumed abort; discard.
	}

	for _, d := range indoubtSet {
		a.InDoubt = append(a.InDoubt, *d)
	}

	// Coordinator decisions to re-drive: our own committed families
	// whose END never made it to the log.
	for top := range a.Committed {
		if top.Family.Origin() != site || ended[top] {
			continue
		}
		subs := commitSites[top]
		if len(subs) == 0 {
			continue // local-only: nothing to notify
		}
		a.Resume = append(a.Resume, CoordResume{
			TID:         top,
			UpdateSubs:  subs,
			NonBlocking: nbCommit[top],
		})
	}
	return a
}

// doomedByAncestry reports whether t or any ancestor was aborted.
func doomedByAncestry(t tid.TID, parentOf map[tid.TID]tid.TID, aborted map[tid.TID]bool) bool {
	for {
		if aborted[t] {
			return true
		}
		p, ok := parentOf[t]
		if !ok {
			return false
		}
		t = p
	}
}
