package recman

import (
	"testing"

	"camelot/internal/tid"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

func top(n uint32) tid.TID       { return tid.Top(tid.MakeFamily(1, n)) }
func remoteTop(n uint32) tid.TID { return tid.Top(tid.MakeFamily(9, n)) }
func upd(t tid.TID, key, old, new_ string) *wal.Record {
	r := &wal.Record{Type: wal.RecUpdate, TID: t, Server: "srv", Key: key, New: []byte(new_)}
	if old != "" {
		r.Old = []byte(old)
	}
	return r
}

func TestCommittedUpdatesAreRedone(t *testing.T) {
	recs := []*wal.Record{
		upd(top(1), "a", "", "1"),
		upd(top(1), "b", "", "2"),
		{Type: wal.RecCommit, TID: top(1)},
	}
	a := Analyze(1, recs)
	if string(a.Data["srv"]["a"]) != "1" || string(a.Data["srv"]["b"]) != "2" {
		t.Fatalf("Data = %v", a.Data)
	}
	if len(a.InDoubt) != 0 {
		t.Fatalf("InDoubt = %v, want none", a.InDoubt)
	}
}

func TestUncommittedUpdatesArePresumedAborted(t *testing.T) {
	recs := []*wal.Record{
		upd(top(1), "a", "", "1"), // no outcome record at all
	}
	a := Analyze(1, recs)
	if len(a.Data["srv"]) != 0 {
		t.Fatalf("loser's update redone: %v", a.Data)
	}
}

func TestExplicitAbortDiscardsUpdates(t *testing.T) {
	recs := []*wal.Record{
		upd(top(1), "a", "", "1"),
		{Type: wal.RecAbort, TID: top(1)},
	}
	a := Analyze(1, recs)
	if len(a.Data["srv"]) != 0 {
		t.Fatalf("aborted update redone: %v", a.Data)
	}
	if !a.Aborted[top(1)] {
		t.Error("abort not recorded")
	}
}

func TestLastWriterWinsInLSNOrder(t *testing.T) {
	recs := []*wal.Record{
		upd(top(1), "a", "", "1"),
		{Type: wal.RecCommit, TID: top(1)},
		upd(top(2), "a", "1", "2"),
		{Type: wal.RecCommit, TID: top(2)},
	}
	a := Analyze(1, recs)
	if string(a.Data["srv"]["a"]) != "2" {
		t.Fatalf("a = %q, want \"2\"", a.Data["srv"]["a"])
	}
}

func TestPreparedTransactionIsInDoubt(t *testing.T) {
	txn := remoteTop(1) // coordinated elsewhere
	recs := []*wal.Record{
		upd(txn, "a", "old", "new"),
		{Type: wal.RecPrepare, TID: txn, Coordinator: 9},
	}
	a := Analyze(1, recs)
	if len(a.InDoubt) != 1 {
		t.Fatalf("InDoubt = %v, want 1 entry", a.InDoubt)
	}
	d := a.InDoubt[0]
	if d.TID != txn || d.Coordinator != 9 || d.NonBlocking {
		t.Fatalf("InDoubt = %+v", d)
	}
	if len(d.Updates["srv"]) != 1 || d.Updates["srv"][0].Key != "a" {
		t.Fatalf("in-doubt updates = %v", d.Updates)
	}
	// In-doubt data must NOT be in the committed image.
	if len(a.Data["srv"]) != 0 {
		t.Fatalf("in-doubt update leaked into Data: %v", a.Data)
	}
}

func TestPreparedThenCommittedIsNotInDoubt(t *testing.T) {
	txn := remoteTop(1)
	recs := []*wal.Record{
		upd(txn, "a", "", "v"),
		{Type: wal.RecPrepare, TID: txn, Coordinator: 9},
		{Type: wal.RecCommit, TID: txn},
	}
	a := Analyze(1, recs)
	if len(a.InDoubt) != 0 {
		t.Fatalf("resolved transaction still in doubt: %v", a.InDoubt)
	}
	if string(a.Data["srv"]["a"]) != "v" {
		t.Fatalf("committed update not redone")
	}
}

func TestNonBlockingInDoubtCarriesQuorumState(t *testing.T) {
	txn := remoteTop(2)
	sites := []tid.SiteID{1, 2, 9}
	votes := []wire.SiteVote{{Site: 1, Vote: wire.VoteYes}, {Site: 2, Vote: wire.VoteYes}}
	recs := []*wal.Record{
		upd(txn, "a", "", "v"),
		{Type: wal.RecPrepare, TID: txn, Coordinator: 9, Sites: sites, CommitQuorum: 2, AbortQuorum: 2},
		{Type: wal.RecNBReplicate, TID: txn, Coordinator: 9, Sites: sites, CommitQuorum: 2, AbortQuorum: 2, Votes: votes},
	}
	a := Analyze(1, recs)
	if len(a.InDoubt) != 1 {
		t.Fatalf("InDoubt = %v", a.InDoubt)
	}
	d := a.InDoubt[0]
	if !d.NonBlocking || !d.Replicated {
		t.Fatalf("InDoubt flags = %+v", d)
	}
	if d.CommitQuorum != 2 || d.AbortQuorum != 2 || len(d.Sites) != 3 {
		t.Fatalf("quorum state = %+v", d)
	}
	if len(d.Votes) != 2 {
		t.Fatalf("votes = %v", d.Votes)
	}
}

func TestAbortIntentRecorded(t *testing.T) {
	txn := remoteTop(3)
	recs := []*wal.Record{
		{Type: wal.RecPrepare, TID: txn, Coordinator: 9, Sites: []tid.SiteID{1, 9}, CommitQuorum: 2, AbortQuorum: 1},
		{Type: wal.RecNBAbortIntent, TID: txn},
	}
	a := Analyze(1, recs)
	if len(a.InDoubt) != 1 || !a.InDoubt[0].AbortIntent {
		t.Fatalf("abort intent lost: %+v", a.InDoubt)
	}
}

func TestCoordinatorResumeWithoutEnd(t *testing.T) {
	txn := top(1) // our own family: we coordinated
	recs := []*wal.Record{
		upd(txn, "a", "", "v"),
		{Type: wal.RecCommit, TID: txn, Sites: []tid.SiteID{2, 3}},
	}
	a := Analyze(1, recs)
	if len(a.Resume) != 1 {
		t.Fatalf("Resume = %v, want 1", a.Resume)
	}
	r := a.Resume[0]
	if r.TID != txn || len(r.UpdateSubs) != 2 {
		t.Fatalf("Resume = %+v", r)
	}
}

func TestCoordinatorNoResumeAfterEnd(t *testing.T) {
	txn := top(1)
	recs := []*wal.Record{
		{Type: wal.RecCommit, TID: txn, Sites: []tid.SiteID{2}},
		{Type: wal.RecEnd, TID: txn},
	}
	a := Analyze(1, recs)
	if len(a.Resume) != 0 {
		t.Fatalf("Resume after END: %v", a.Resume)
	}
}

func TestLocalOnlyCommitNeedsNoResume(t *testing.T) {
	recs := []*wal.Record{
		upd(top(1), "a", "", "v"),
		{Type: wal.RecCommit, TID: top(1)}, // no subordinate sites
	}
	a := Analyze(1, recs)
	if len(a.Resume) != 0 {
		t.Fatalf("local-only commit scheduled a resume: %v", a.Resume)
	}
}

func TestAbortedChildSubtreeExcluded(t *testing.T) {
	parent := top(1)
	child := tid.TID{Family: parent.Family, Seq: tid.MakeSeq(1, 1)}
	grand := tid.TID{Family: parent.Family, Seq: tid.MakeSeq(1, 2)}
	recs := []*wal.Record{
		upd(parent, "p", "", "1"),
		{Type: wal.RecUpdate, TID: child, Parent: parent, Server: "srv", Key: "c", New: []byte("2")},
		{Type: wal.RecUpdate, TID: grand, Parent: child, Server: "srv", Key: "g", New: []byte("3")},
		{Type: wal.RecAbort, TID: child}, // nested abort
		{Type: wal.RecCommit, TID: parent},
	}
	a := Analyze(1, recs)
	data := a.Data["srv"]
	if string(data["p"]) != "1" {
		t.Errorf("parent update lost: %v", data)
	}
	if _, ok := data["c"]; ok {
		t.Error("aborted child's update redone")
	}
	if _, ok := data["g"]; ok {
		t.Error("aborted child's descendant update redone")
	}
}

func TestCommittedChildIncludedWithFamily(t *testing.T) {
	parent := top(1)
	child := tid.TID{Family: parent.Family, Seq: tid.MakeSeq(1, 1)}
	recs := []*wal.Record{
		{Type: wal.RecUpdate, TID: child, Parent: parent, Server: "srv", Key: "c", New: []byte("2")},
		{Type: wal.RecCommit, TID: parent},
	}
	a := Analyze(1, recs)
	if string(a.Data["srv"]["c"]) != "2" {
		t.Fatalf("committed child's update not redone: %v", a.Data)
	}
}

func TestDeleteRedo(t *testing.T) {
	recs := []*wal.Record{
		upd(top(1), "a", "", "v"),
		{Type: wal.RecCommit, TID: top(1)},
		// A nil New models deletion.
		{Type: wal.RecUpdate, TID: top(2), Server: "srv", Key: "a", Old: []byte("v")},
		{Type: wal.RecCommit, TID: top(2)},
	}
	a := Analyze(1, recs)
	if _, ok := a.Data["srv"]["a"]; ok {
		t.Fatalf("deleted key present: %v", a.Data)
	}
}

func TestEmptyLog(t *testing.T) {
	a := Analyze(1, nil)
	if len(a.Data) != 0 || len(a.InDoubt) != 0 || len(a.Resume) != 0 {
		t.Fatalf("non-empty analysis of empty log: %+v", a)
	}
	if a.MaxLocalFamily != 0 {
		t.Fatalf("MaxLocalFamily = %d on empty log", a.MaxLocalFamily)
	}
}

func TestCheckpointOnlyLog(t *testing.T) {
	// After a checkpoint truncates everything it absorbed, a crash can
	// leave the log holding nothing but the checkpoint marker. Restart
	// must come up clean: no redo, nothing in doubt, nothing to
	// re-drive — the page image carries the state.
	recs := []*wal.Record{{Type: wal.RecCheckpoint}}
	a := Analyze(1, recs)
	if len(a.Data) != 0 || len(a.InDoubt) != 0 || len(a.Resume) != 0 {
		t.Fatalf("checkpoint-only log produced work: %+v", a)
	}
	if len(a.Committed)+len(a.Aborted) != 0 {
		t.Fatalf("checkpoint-only log produced outcomes: %+v", a)
	}
}

func TestLogEndingMidFamilyActive(t *testing.T) {
	// The site died while a family was still active: updates logged,
	// no prepare, no outcome. Presumed abort discards the updates —
	// but the family counter must still advance past the dead family,
	// or its identifier could be reused.
	recs := []*wal.Record{
		upd(top(7), "a", "", "1"),
		upd(top(7), "b", "", "2"),
	}
	a := Analyze(1, recs)
	if len(a.Data) != 0 {
		t.Fatalf("presumed-aborted updates redone: %v", a.Data)
	}
	if len(a.InDoubt) != 0 {
		t.Fatalf("active (unprepared) family in doubt: %+v", a.InDoubt)
	}
	if a.MaxLocalFamily != 7 {
		t.Fatalf("MaxLocalFamily = %d, want 7", a.MaxLocalFamily)
	}
}

func TestLogEndingMidFamilyPrepared(t *testing.T) {
	// The site died between its prepare force and the outcome: the
	// log ends mid-protocol. The family is in doubt, its updates ride
	// along for re-application under re-acquired locks, and nothing is
	// redone into committed state.
	recs := []*wal.Record{
		upd(top(3), "a", "", "1"),
		{Type: wal.RecPrepare, TID: top(3), Coordinator: 9},
	}
	a := Analyze(1, recs)
	if len(a.Data) != 0 {
		t.Fatalf("in-doubt updates redone as committed: %v", a.Data)
	}
	if len(a.InDoubt) != 1 {
		t.Fatalf("InDoubt = %+v, want exactly the prepared family", a.InDoubt)
	}
	d := a.InDoubt[0]
	if d.TID != top(3) || d.Coordinator != 9 || d.NonBlocking {
		t.Fatalf("InDoubt = %+v", d)
	}
	if len(d.Updates["srv"]) != 1 || d.Updates["srv"][0].Key != "a" {
		t.Fatalf("in-doubt updates = %+v", d.Updates)
	}
}
