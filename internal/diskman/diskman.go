// Package diskman implements the disk manager's durable-image side:
// checkpointing and log truncation. Camelot's disk manager is "a
// virtual-memory buffer manager that protects the disk copy of
// servers' data segments ... to implement the write-ahead log
// protocol. Also, it is the only process that can write into the
// log" (paper §2). In this reproduction the write-ahead discipline
// and group commit live in internal/wal; this package adds the disk
// copy of the data segments: a checkpoint materializes every durably
// *resolved* transaction's effects into the page store, records the
// outcomes it absorbed, and truncates the log prefix those pages now
// cover. Recovery then starts from the page image instead of
// replaying history from the beginning of time.
//
// A checkpoint may only absorb resolved transactions: records of
// in-doubt transactions (prepared or intent-replicated, outcome
// unknown) and of coordinator decisions that still need re-driving
// pin the truncation point, exactly like an ARIES-style dirty/active
// transaction table.
package diskman

import (
	"fmt"
	"sync"

	"camelot/internal/recman"
	"camelot/internal/tid"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

// Snapshot is the durable disk image of one site: the committed data
// segments of its servers plus the protocol facts that truncated log
// records used to carry.
type Snapshot struct {
	// Data is the committed image, per server per key.
	Data map[string]map[string][]byte
	// Committed and Aborted are the resolved top-level outcomes the
	// image absorbed — still needed to answer presumed-abort
	// inquiries and non-blocking status requests for old
	// transactions.
	Committed []tid.TID
	Aborted   []tid.TID
	// MaxLocalFamily is the highest locally allocated family counter
	// witnessed up to the checkpoint.
	MaxLocalFamily uint32
	// Records is how many log records the image absorbs (the
	// truncation count, cumulative across checkpoints).
	Records int
}

func emptySnapshot() *Snapshot {
	return &Snapshot{Data: make(map[string]map[string][]byte)}
}

// clone deep-copies a snapshot.
func (s *Snapshot) clone() *Snapshot {
	out := &Snapshot{
		Committed:      append([]tid.TID(nil), s.Committed...),
		Aborted:        append([]tid.TID(nil), s.Aborted...),
		MaxLocalFamily: s.MaxLocalFamily,
		Records:        s.Records,
		Data:           make(map[string]map[string][]byte, len(s.Data)),
	}
	for srv, kv := range s.Data {
		m := make(map[string][]byte, len(kv))
		for k, v := range kv {
			cp := make([]byte, len(v))
			copy(cp, v)
			m[k] = cp
		}
		out.Data[srv] = m
	}
	return out
}

// PageStore is the stable home of a site's Snapshot. Like
// wal.MemStore it survives simulated crashes because the experiment
// keeps it while the site is rebuilt.
type PageStore struct {
	mu   sync.Mutex
	snap *Snapshot
}

// NewPageStore returns an empty store.
func NewPageStore() *PageStore { return &PageStore{snap: emptySnapshot()} }

// Read returns a copy of the current image.
func (ps *PageStore) Read() *Snapshot {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.snap.clone()
}

// write atomically replaces the image.
func (ps *PageStore) write(s *Snapshot) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.snap = s.clone()
}

// Outcome answers, from the durable image alone, how a family the
// checkpoint absorbed ended. It backs the transaction manager's
// resolved-outcome memory after TruncateResolved has dropped the
// family from RAM: presumed-abort inquiries and non-blocking status
// requests for arbitrarily old transactions still get the true
// answer. OutcomeUnknown means the image never absorbed the family.
// Safe to call concurrently from any thread.
func (ps *PageStore) Outcome(f tid.FamilyID) wire.Outcome {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, t := range ps.snap.Committed {
		if t.Family == f {
			return wire.OutcomeCommit
		}
	}
	for _, t := range ps.snap.Aborted {
		if t.Family == f {
			return wire.OutcomeAbort
		}
	}
	return wire.OutcomeUnknown
}

// AbsorbedFamilies lists every family whose outcome the image has
// absorbed; the transaction manager may truncate these from its
// in-memory resolved map, re-answering later inquiries through
// Outcome.
func (ps *PageStore) AbsorbedFamilies() []tid.FamilyID {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	seen := make(map[tid.FamilyID]bool)
	var out []tid.FamilyID
	for _, t := range ps.snap.Committed {
		if !seen[t.Family] {
			seen[t.Family] = true
			out = append(out, t.Family)
		}
	}
	for _, t := range ps.snap.Aborted {
		if !seen[t.Family] {
			seen[t.Family] = true
			out = append(out, t.Family)
		}
	}
	return out
}

// Checkpoint materializes the durable log into ps and truncates the
// absorbed prefix from log. It returns how many records were
// truncated. Records belonging to unresolved transactions — and
// everything after the first of them — are retained.
func Checkpoint(site tid.SiteID, log *wal.Log, ps *PageStore) (int, error) {
	recs, err := log.Records()
	if err != nil {
		return 0, fmt.Errorf("diskman: checkpoint read: %w", err)
	}
	base := ps.Read()
	a := recman.Analyze(site, recs)

	// The truncation point: the prefix before the first record of any
	// unresolved family. Unresolved means no durable outcome yet —
	// still active, prepared, or intent-replicated — or a committed
	// coordinator decision whose END has not been logged. Truncating
	// an active family's updates would lose them if its commit record
	// arrives later.
	resolved := func(f tid.FamilyID) bool {
		top := tid.Top(f)
		return a.Committed[top] || a.Aborted[top]
	}
	pinned := make(map[tid.FamilyID]bool)
	for _, r := range recs {
		if !resolved(r.TID.Family) {
			pinned[r.TID.Family] = true
		}
	}
	for _, r := range a.Resume {
		pinned[r.TID.Family] = true
	}
	cut := len(recs)
	for i, r := range recs {
		if pinned[r.TID.Family] {
			cut = i
			break
		}
	}

	// Fold the resolved prefix into the image. The prefix is strictly
	// older than everything retained, so later recovery replay of the
	// retained tail lands on top of it in the right order. Rather
	// than re-deriving which updates the prefix contains, fold the
	// full analysis image — records past the cut stay in the log and
	// will simply be re-applied idempotently at recovery.
	next := base.clone()
	for srv, dead := range a.Deleted {
		if m := next.Data[srv]; m != nil {
			for k := range dead {
				delete(m, k)
			}
		}
	}
	for srv, kv := range a.Data {
		m := next.Data[srv]
		if m == nil {
			m = make(map[string][]byte)
			next.Data[srv] = m
		}
		for k, v := range kv {
			cp := make([]byte, len(v))
			copy(cp, v)
			m[k] = cp
		}
	}
	for t := range a.Committed {
		next.Committed = append(next.Committed, t)
	}
	for t := range a.Aborted {
		if t.IsTop() {
			next.Aborted = append(next.Aborted, t)
		}
	}
	if a.MaxLocalFamily > next.MaxLocalFamily {
		next.MaxLocalFamily = a.MaxLocalFamily
	}
	next.Records += cut

	// Durability order: the image must be stable before the log
	// prefix disappears.
	ps.write(next)
	if err := log.Truncate(cut); err != nil {
		return 0, fmt.Errorf("diskman: truncate: %w", err)
	}
	return cut, nil
}

// Recover combines the page image with an analysis of the retained
// log tail: the returned analysis carries the tail's in-doubt and
// resume work, and the returned data is the image overlaid with the
// tail's committed effects.
func Recover(site tid.SiteID, log *wal.Log, ps *PageStore) (*recman.Analysis, map[string]map[string][]byte, *Snapshot, error) {
	recs, err := log.Records()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("diskman: recover read: %w", err)
	}
	base := ps.Read()
	a := recman.Analyze(site, recs)
	data := base.Data
	for srv, dead := range a.Deleted {
		if m := data[srv]; m != nil {
			for k := range dead {
				delete(m, k)
			}
		}
	}
	for srv, kv := range a.Data {
		m := data[srv]
		if m == nil {
			m = make(map[string][]byte)
			data[srv] = m
		}
		for k, v := range kv {
			m[k] = v
		}
	}
	if base.MaxLocalFamily > a.MaxLocalFamily {
		a.MaxLocalFamily = base.MaxLocalFamily
	}
	return a, data, base, nil
}
