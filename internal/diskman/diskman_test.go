package diskman

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"camelot/internal/recman"
	"camelot/internal/sim"
	"camelot/internal/tid"
	"camelot/internal/wal"
)

func top(n uint32) tid.TID { return tid.Top(tid.MakeFamily(1, n)) }

// buildLog writes records into a fresh log over a MemStore and forces
// them.
func buildLog(t *testing.T, recs []*wal.Record) *wal.Log {
	t.Helper()
	k := sim.New(1)
	store := wal.NewMemStore()
	var log *wal.Log
	k.Go("w", func() {
		log = wal.Open(k, store, wal.Config{})
		for _, r := range recs {
			if _, err := log.Append(r); err != nil {
				t.Errorf("append: %v", err)
			}
		}
		log.ForceAll() //nolint:errcheck
	})
	k.Run()
	return log
}

func upd(txn tid.TID, key, val string) *wal.Record {
	r := &wal.Record{Type: wal.RecUpdate, TID: txn, Server: "srv", Key: key}
	if val != "" {
		r.New = []byte(val)
	}
	return r
}

func TestCheckpointAbsorbsResolvedAndTruncates(t *testing.T) {
	log := buildLog(t, []*wal.Record{
		upd(top(1), "a", "1"),
		{Type: wal.RecCommit, TID: top(1)},
		upd(top(2), "b", "2"),
		{Type: wal.RecAbort, TID: top(2)},
	})
	ps := NewPageStore()
	cut, err := Checkpoint(1, log, ps)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 4 {
		t.Errorf("truncated %d records, want all 4", cut)
	}
	recs, _ := log.Records()
	if len(recs) != 0 {
		t.Errorf("%d records left after full checkpoint", len(recs))
	}
	snap := ps.Read()
	if string(snap.Data["srv"]["a"]) != "1" {
		t.Errorf("image a = %q", snap.Data["srv"]["a"])
	}
	if _, ok := snap.Data["srv"]["b"]; ok {
		t.Error("aborted update in image")
	}
	if len(snap.Committed) != 1 || len(snap.Aborted) != 1 {
		t.Errorf("outcomes: %d committed, %d aborted", len(snap.Committed), len(snap.Aborted))
	}
}

func TestInDoubtTransactionPinsTruncation(t *testing.T) {
	log := buildLog(t, []*wal.Record{
		upd(top(1), "a", "1"),
		{Type: wal.RecCommit, TID: top(1)},
		// In-doubt: prepared, never resolved. Coordinated remotely.
		{Type: wal.RecUpdate, TID: tid.Top(tid.MakeFamily(9, 5)), Server: "srv", Key: "x", New: []byte("v")},
		{Type: wal.RecPrepare, TID: tid.Top(tid.MakeFamily(9, 5)), Coordinator: 9},
		upd(top(2), "b", "2"),
		{Type: wal.RecCommit, TID: top(2)},
	})
	ps := NewPageStore()
	cut, err := Checkpoint(1, log, ps)
	if err != nil {
		t.Fatal(err)
	}
	// Only the prefix before the in-doubt transaction's first record
	// may go.
	if cut != 2 {
		t.Fatalf("truncated %d records, want 2 (pinned by in-doubt txn)", cut)
	}
	recs, _ := log.Records()
	if len(recs) != 4 {
		t.Fatalf("%d records retained, want 4", len(recs))
	}
	// Recovery must surface the in-doubt transaction and still see
	// both committed updates.
	a, data, _, err := Recover(1, log, ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.InDoubt) != 1 {
		t.Fatalf("InDoubt = %v", a.InDoubt)
	}
	if string(data["srv"]["a"]) != "1" || string(data["srv"]["b"]) != "2" {
		t.Fatalf("recovered data = %v", data["srv"])
	}
	if _, ok := data["srv"]["x"]; ok {
		t.Error("in-doubt update leaked into recovered image")
	}
}

func TestUnresolvedCoordinatorPinsTruncation(t *testing.T) {
	log := buildLog(t, []*wal.Record{
		upd(top(1), "a", "1"),
		{Type: wal.RecCommit, TID: top(1), Sites: []tid.SiteID{2}}, // no END yet
	})
	ps := NewPageStore()
	cut, err := Checkpoint(1, log, ps)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 0 {
		t.Fatalf("truncated %d records of an unresolved coordinator decision", cut)
	}
}

func TestDeleteAcrossCheckpoint(t *testing.T) {
	k := sim.New(2)
	ps := NewPageStore()
	var log *wal.Log
	k.Go("w", func() {
		log = wal.Open(k, wal.NewMemStore(), wal.Config{})
		log.Append(upd(top(1), "a", "1"))                         //nolint:errcheck
		log.Append(&wal.Record{Type: wal.RecCommit, TID: top(1)}) //nolint:errcheck
		log.ForceAll()                                            //nolint:errcheck
		if _, err := Checkpoint(1, log, ps); err != nil {
			t.Errorf("checkpoint: %v", err)
		}
		// Now a committed deletion in the tail.
		log.Append(upd(top(2), "a", ""))                          //nolint:errcheck // nil New = delete
		log.Append(&wal.Record{Type: wal.RecCommit, TID: top(2)}) //nolint:errcheck
		log.ForceAll()                                            //nolint:errcheck
	})
	k.Run()
	_, data, _, err := Recover(1, log, ps)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := data["srv"]["a"]; ok {
		t.Fatal("key deleted after checkpoint still present in recovered image")
	}
}

func TestSuccessiveCheckpointsAccumulate(t *testing.T) {
	k := sim.New(3)
	store := wal.NewMemStore()
	ps := NewPageStore()
	var log *wal.Log
	k.Go("w", func() {
		log = wal.Open(k, store, wal.Config{})
		for round := uint32(1); round <= 3; round++ {
			log.Append(upd(top(round), fmt.Sprintf("k%d", round), "v"))   //nolint:errcheck
			log.Append(&wal.Record{Type: wal.RecCommit, TID: top(round)}) //nolint:errcheck
			log.ForceAll()                                                //nolint:errcheck
			if _, err := Checkpoint(1, log, ps); err != nil {
				t.Errorf("checkpoint %d: %v", round, err)
			}
		}
	})
	k.Run()
	snap := ps.Read()
	if snap.Records != 6 {
		t.Errorf("cumulative Records = %d, want 6", snap.Records)
	}
	for round := 1; round <= 3; round++ {
		if _, ok := snap.Data["srv"][fmt.Sprintf("k%d", round)]; !ok {
			t.Errorf("k%d missing from image", round)
		}
	}
	if len(snap.Committed) != 3 {
		t.Errorf("absorbed outcomes = %d, want 3", len(snap.Committed))
	}
}

// TestCheckpointEquivalenceProperty: for random histories and random
// checkpoint placement, recovery through the page image must yield
// exactly the same data as a full-log replay.
func TestCheckpointEquivalenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var history []*wal.Record
		nTxn := 3 + rng.Intn(8)
		for i := 0; i < nTxn; i++ {
			txn := top(uint32(i + 1))
			for j := 0; j <= rng.Intn(3); j++ {
				key := fmt.Sprintf("k%d", rng.Intn(5))
				val := fmt.Sprintf("v%d.%d", i, j)
				if rng.Intn(6) == 0 {
					val = "" // delete
				}
				history = append(history, upd(txn, key, val))
			}
			if rng.Intn(4) == 0 {
				history = append(history, &wal.Record{Type: wal.RecAbort, TID: txn})
			} else {
				history = append(history, &wal.Record{Type: wal.RecCommit, TID: txn})
			}
		}

		// Reference: full replay.
		want := recman.Analyze(1, history).Data

		// Checkpointed path: split the history at random points, with
		// a checkpoint between segments.
		k := sim.New(seed)
		store := wal.NewMemStore()
		ps := NewPageStore()
		ok := true
		k.Go("w", func() {
			log := wal.Open(k, store, wal.Config{})
			i := 0
			for i < len(history) {
				n := 1 + rng.Intn(4)
				for j := 0; j < n && i < len(history); j++ {
					log.Append(history[i]) //nolint:errcheck
					i++
				}
				log.ForceAll() //nolint:errcheck
				if rng.Intn(2) == 0 {
					if _, err := Checkpoint(1, log, ps); err != nil {
						ok = false
						return
					}
				}
			}
			_, got, _, err := Recover(1, log, ps)
			if err != nil {
				ok = false
				return
			}
			// Normalize: empty maps vs missing maps.
			norm := func(m map[string]map[string][]byte) map[string]string {
				out := make(map[string]string)
				for srv, kv := range m {
					for key, v := range kv {
						out[srv+"/"+key] = string(v)
					}
				}
				return out
			}
			ok = reflect.DeepEqual(norm(want), norm(got))
		})
		k.RunUntil(time.Minute)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
