package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"camelot/internal/tid"
)

// Report is the machine-readable trace report: the schema behind
// `camelot-trace -json` and its golden files. Field order is fixed by
// the struct, so encoding a report built from the same seed is
// byte-identical across runs.
type Report struct {
	Config struct {
		Sites    int    `json:"sites"`
		Protocol string `json:"protocol"`
		Seed     int64  `json:"seed"`
	} `json:"config"`
	TID      string         `json:"tid"`
	CommitMs float64        `json:"commit_ms"`
	Events   []ReportEvent  `json:"events"`
	Sites    []ReportSite   `json:"site_counters"`
	Budget   []ReportBudget `json:"tx_budget"`
	Total    BudgetBody     `json:"tx_budget_total"`
}

// ReportEvent is one timeline event in report form.
type ReportEvent struct {
	Seq   uint64  `json:"seq"`
	AtMs  float64 `json:"at_ms"`
	Kind  string  `json:"kind"`
	Site  string  `json:"site,omitempty"`
	Peer  string  `json:"peer,omitempty"`
	TID   string  `json:"tid,omitempty"`
	Info  string  `json:"info,omitempty"`
	Bytes int     `json:"bytes,omitempty"`
}

// ReportSite pairs a site id with its counters.
type ReportSite struct {
	Site string `json:"site"`
	SiteCounters
}

// BudgetBody is one per-transaction budget row — the counters the
// paper's commit-protocol analysis budgets per commit.
type BudgetBody struct {
	LogAppends int `json:"log_appends"`
	LogForces  int `json:"log_forces"`
	MsgsSent   int `json:"msgs_sent"`
	MsgsRecv   int `json:"msgs_recv"`
}

// ReportBudget is one site's share of a transaction's budget.
type ReportBudget struct {
	Site string `json:"site"`
	BudgetBody
}

// BuildReport snapshots the collector into a Report for transaction t:
// the full event timeline, per-site counters, and the transaction's
// budget per site and in total. sites/protocol/seed describe the run's
// configuration; commit is the client-observed commit latency.
func (c *Collector) BuildReport(sites int, protocol string, seed int64, t tid.TID, commit time.Duration) *Report {
	rep := &Report{TID: t.String(), CommitMs: reportMs(commit)}
	rep.Config.Sites = sites
	rep.Config.Protocol = protocol
	rep.Config.Seed = seed

	for _, ev := range c.Events() {
		re := ReportEvent{Seq: ev.Seq, AtMs: reportMs(ev.At), Kind: ev.Kind.String(),
			Info: ev.Info, Bytes: ev.Bytes}
		if ev.Site != 0 {
			re.Site = ev.Site.String()
		}
		if ev.Peer != 0 {
			re.Peer = ev.Peer.String()
		}
		if !ev.TID.IsZero() {
			re.TID = ev.TID.String()
		}
		rep.Events = append(rep.Events, re)
	}
	for _, s := range c.Sites() {
		rep.Sites = append(rep.Sites, ReportSite{Site: s.String(), SiteCounters: c.Site(s)})
		rep.Budget = append(rep.Budget, ReportBudget{Site: s.String(),
			BudgetBody: reportBudget(c.Family(t, s))})
	}
	rep.Total = reportBudget(c.FamilyTotal(t))
	return rep
}

// EncodeJSON renders the report in the canonical golden-file form:
// two-space indentation and a trailing newline.
func (r *Report) EncodeJSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeReport parses a report produced by EncodeJSON. Unknown fields
// are rejected so golden files cannot silently drift from the schema.
func DecodeReport(data []byte) (*Report, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("trace: decoding report: %w", err)
	}
	return &r, nil
}

func reportBudget(fc FamilyCounters) BudgetBody {
	return BudgetBody{LogAppends: fc.LogAppends, LogForces: fc.LogForces,
		MsgsSent: fc.MsgsSent, MsgsRecv: fc.MsgsRecv}
}

func reportMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
