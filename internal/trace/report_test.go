package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenReports returns the camelot-trace golden files, the canonical
// corpus of real encoded reports.
func goldenReports(t testing.TB) [][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "cmd", "camelot-trace", "testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no golden report files found")
	}
	var out [][]byte
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

// TestReportGoldenRoundTrip pins that decoding a golden file and
// re-encoding it reproduces the input byte for byte: the schema in
// this package and the files on disk cannot drift apart.
func TestReportGoldenRoundTrip(t *testing.T) {
	for _, data := range goldenReports(t) {
		rep, err := DecodeReport(data)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := rep.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, data) {
			t.Errorf("golden file did not round-trip;\ngot:\n%s\nwant:\n%s", enc, data)
		}
	}
}

func TestDecodeReportRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeReport([]byte(`{"config":{},"bogus":1}`)); err == nil {
		t.Fatal("expected an error for an unknown field")
	}
}

// FuzzReportJSON checks encode/decode stability on arbitrary inputs:
// any bytes that decode at all must re-encode to a fixed point —
// decode(encode(decode(b))) == decode(b) and the two encodings are
// byte-identical.
func FuzzReportJSON(f *testing.F) {
	for _, data := range goldenReports(f) {
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"config":{"sites":1,"protocol":"two-phase","seed":1},"tid":"t","commit_ms":0.5,"events":null,"site_counters":null,"tx_budget":null,"tx_budget_total":{"log_appends":0,"log_forces":0,"msgs_sent":0,"msgs_recv":0}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeReport(data)
		if err != nil {
			return // not a report; nothing to check
		}
		enc1, err := rep.EncodeJSON()
		if err != nil {
			t.Fatalf("report decoded from %q failed to encode: %v", data, err)
		}
		rep2, err := DecodeReport(enc1)
		if err != nil {
			t.Fatalf("re-decoding our own encoding failed: %v\nencoding:\n%s", err, enc1)
		}
		enc2, err := rep2.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Errorf("encoding is not a fixed point;\nfirst:\n%s\nsecond:\n%s", enc1, enc2)
		}
	})
}
