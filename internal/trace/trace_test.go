package trace

import (
	"strings"
	"testing"
	"time"

	"camelot/internal/sim"
	"camelot/internal/tid"
)

// fakeTM is a TxPayload: a transaction-manager datagram that counts
// into both the site and family budgets.
type fakeTM struct{ t tid.TID }

func (p fakeTM) TraceKind() string { return "FAKE-TM" }
func (p fakeTM) TraceTID() tid.TID { return p.t }

// fakeRPC is a bare Payload: communication-manager traffic, counted
// per site only.
type fakeRPC struct{}

func (fakeRPC) TraceKind() string { return "FAKE-RPC" }

func testTID() tid.TID { return tid.Top(tid.MakeFamily(1, 1)) }

// TestNilCollectorIsSafe: every recording and reading method must be a
// no-op on a nil *Collector — that is the whole uninstrumented path.
func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	id := testTID()
	c.LogAppend(1, id, "UPDATE", 10)
	c.LogForce(1, id, "COMMIT")
	c.DeviceWrite(1, 2, 100)
	c.LogFlush(1)
	c.MsgSend(1, 2, fakeTM{id})
	c.MsgRecv(2, 1, fakeTM{id})
	c.MsgDrop(1, 2, fakeTM{id})
	c.PhaseBegin(1, id, "prepare")
	c.PhaseEnd(1, id, "prepare")
	c.LockDrop(1, id)
	c.IPC(1)
	c.Crash(1)
	c.Recover(1)
	c.ThreadSwitch("w")
	c.TimerFire("t")
	c.Reset()
	if ev := c.Events(); ev != nil {
		t.Errorf("nil collector has events: %v", ev)
	}
	if got := c.Site(1); got != (SiteCounters{}) {
		t.Errorf("nil collector site counters: %+v", got)
	}
	if got := c.Family(id, 1); got != (FamilyCounters{}) {
		t.Errorf("nil collector family counters: %+v", got)
	}
	if s := c.PhaseLatency("prepare"); s.N() != 0 {
		t.Errorf("nil collector phase sample n=%d", s.N())
	}
}

func TestCountersAndEvents(t *testing.T) {
	k := sim.New(1)
	c := New(k)
	id := testTID()

	c.LogAppend(1, id, "UPDATE", 10)
	c.LogForce(1, id, "COMMIT")
	c.DeviceWrite(1, 2, 100)
	c.MsgSend(1, 2, fakeTM{id})
	c.MsgRecv(2, 1, fakeTM{id})
	c.MsgDrop(1, 2, fakeTM{id})
	c.MsgSend(1, 2, fakeRPC{})
	c.IPC(1)

	s1 := c.Site(1)
	want1 := SiteCounters{LogAppends: 1, LogForces: 1, DeviceWrites: 1, BytesWritten: 100,
		MsgsSent: 1, MsgsDropped: 1, RPCs: 1, IPCs: 1}
	if s1 != want1 {
		t.Errorf("site1 counters = %+v, want %+v", s1, want1)
	}
	if s2 := c.Site(2); s2.MsgsRecv != 1 {
		t.Errorf("site2 recv = %d, want 1", s2.MsgsRecv)
	}

	// Family budget: the RPC send must NOT appear, the TM send must.
	f1 := c.Family(id, 1)
	wantF1 := FamilyCounters{LogAppends: 1, LogForces: 1, MsgsSent: 1}
	if f1 != wantF1 {
		t.Errorf("family counters at site1 = %+v, want %+v", f1, wantF1)
	}
	total := c.FamilyTotal(id)
	if total.MsgsSent != 1 || total.MsgsRecv != 1 || total.LogForces != 1 {
		t.Errorf("family total = %+v", total)
	}

	evs := c.Events()
	if len(evs) != 7 { // IPC records no timeline event
		t.Fatalf("got %d events, want 7", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}
	if line := evs[3].String(); !strings.Contains(line, "site1→site2") || !strings.Contains(line, "FAKE-TM") {
		t.Errorf("send event renders as %q", line)
	}
}

func TestPhaseLatency(t *testing.T) {
	k := sim.New(1)
	c := New(k)
	id := testTID()
	k.Go("test", func() {
		c.PhaseBegin(1, id, "prepare")
		k.Sleep(10 * time.Millisecond)
		c.PhaseEnd(1, id, "prepare")
		// An End with no Begin must be ignored, not panic or record.
		c.PhaseEnd(1, id, "notify")
		k.Stop()
	})
	k.RunUntil(time.Second)

	s := c.PhaseLatency("prepare")
	if s.N() != 1 || s.Mean() != 10 {
		t.Errorf("prepare latency n=%d mean=%v, want n=1 mean=10ms", s.N(), s.Mean())
	}
	if got := c.Phases(); len(got) != 1 || got[0] != "prepare" {
		t.Errorf("phases = %v, want [prepare]", got)
	}
	// The snapshot is a copy: mutating it must not affect the collector.
	s.Add(999)
	if c.PhaseLatency("prepare").N() != 1 {
		t.Error("PhaseLatency returned a live reference, not a snapshot")
	}
}

func TestReset(t *testing.T) {
	k := sim.New(1)
	c := New(k)
	id := testTID()
	c.LogForce(1, id, "COMMIT")
	c.PhaseBegin(1, id, "prepare")
	c.Reset()
	if len(c.Events()) != 0 || c.Site(1) != (SiteCounters{}) || c.Family(id, 1) != (FamilyCounters{}) {
		t.Error("Reset left state behind")
	}
	// The open phase must be gone too: this End should be a no-op.
	c.PhaseEnd(1, id, "prepare")
	if c.PhaseLatency("prepare").N() != 0 {
		t.Error("Reset did not clear open phases")
	}
	// Sequence numbers restart.
	c.LogFlush(1)
	if evs := c.Events(); len(evs) != 1 || evs[0].Seq != 1 {
		t.Errorf("after Reset, events = %v", evs)
	}
}
