// Package trace is the commit-protocol observability layer: a
// per-cluster Collector that records structured events (log forces,
// datagrams, protocol phases, lock drops, crashes) with virtual
// timestamps, plus cheap per-site and per-transaction counters.
//
// The paper argues that transaction-management performance is
// dominated by countable primitives — log forces, datagrams, IPCs per
// commit — and evaluates every protocol variant by exactly those
// budgets ("the optimization saves one log force per update
// subordinate"; "a read-only subordinate typically writes no log
// records and exchanges only one round of messages"). The Collector
// makes those budgets observable so conformance tests can pin them.
//
// Every instrumented component holds a *Collector that may be nil;
// all methods are nil-safe, so the uninstrumented path costs one
// pointer check. Within a simulation the Collector performs no
// runtime primitives except reading the clock, so enabling tracing
// never perturbs virtual time.
package trace

import (
	"fmt"
	"sync"
	"time"

	"camelot/internal/det"
	"camelot/internal/rt"
	"camelot/internal/stats"
	"camelot/internal/tid"
)

// Kind discriminates event types.
type Kind uint8

// Event kinds. EvLogForce is a protocol-issued synchronous force —
// the unit the paper's budgets count — while EvDeviceWrite is the
// physical log write that satisfies it; group commit makes the two
// diverge, which is the whole point of §3.5.
const (
	EvInvalid      Kind = iota
	EvLogAppend         // one record buffered into the site log
	EvLogForce          // a protocol-issued synchronous force (budget unit)
	EvDeviceWrite       // one physical log-device write (may cover many forces)
	EvLogFlush          // background flusher forcing the log tail
	EvMsgSend           // datagram queued at the sender
	EvMsgRecv           // datagram delivered at the receiver
	EvMsgDrop           // datagram lost (loss, crash, partition)
	EvPhaseBegin        // protocol phase entered at a site
	EvPhaseEnd          // protocol phase left at a site
	EvLockDrop          // site told its servers to drop a family's locks
	EvCrash             // site crashed
	EvRecover           // site recovered
	EvThreadSwitch      // simulation kernel resumed a thread
	EvTimerFire         // simulation kernel fired a timer
	EvFaultInject       // a network or storage fault was switched on
	EvFaultClear        // a previously injected fault was switched off
	EvCheckpoint        // disk manager materialized the log into the image
	EvRetry             // timer-driven retransmit or inquiry round
	EvBackoff           // retry timer re-armed with a backed-off delay
)

var kindNames = map[Kind]string{
	EvLogAppend: "LogAppend", EvLogForce: "LogForce",
	EvDeviceWrite: "DeviceWrite", EvLogFlush: "LogFlush",
	EvMsgSend: "MsgSend", EvMsgRecv: "MsgRecv", EvMsgDrop: "MsgDrop",
	EvPhaseBegin: "PhaseBegin", EvPhaseEnd: "PhaseEnd",
	EvLockDrop: "LockDrop", EvCrash: "Crash", EvRecover: "Recover",
	EvThreadSwitch: "ThreadSwitch", EvTimerFire: "TimerFire",
	EvFaultInject: "FaultInject", EvFaultClear: "FaultClear",
	EvCheckpoint: "Checkpoint",
	EvRetry:      "Retry", EvBackoff: "Backoff",
}

// String returns the event kind's name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "INVALID"
}

// Event is one timeline entry. Site is where it happened; Peer is the
// other endpoint for message events (the destination of a send, the
// source of a receive). TID is zero for events not attributable to a
// transaction. Info carries the message kind, record type, phase
// name, or thread name.
type Event struct {
	Seq   uint64
	At    time.Duration // virtual time
	Kind  Kind
	Site  tid.SiteID
	Peer  tid.SiteID
	TID   tid.TID
	Info  string
	Bytes int
}

// String renders the event as one timeline line.
func (e Event) String() string {
	s := fmt.Sprintf("%10.3fms #%-4d %-12s", float64(e.At)/float64(time.Millisecond), e.Seq, e.Kind)
	if e.Site != 0 {
		s += fmt.Sprintf(" %s", e.Site)
	}
	switch e.Kind {
	case EvMsgSend, EvMsgDrop:
		s += fmt.Sprintf("→%s", e.Peer)
	case EvMsgRecv:
		s += fmt.Sprintf("←%s", e.Peer)
	case EvFaultInject, EvFaultClear:
		if e.Peer != 0 {
			s += fmt.Sprintf("↔%s", e.Peer)
		}
	}
	if e.Info != "" {
		s += " " + e.Info
	}
	if !e.TID.IsZero() {
		s += " " + e.TID.String()
	}
	if e.Bytes > 0 {
		s += fmt.Sprintf(" (%dB)", e.Bytes)
	}
	return s
}

// Payload lets the transport describe a datagram payload without
// depending on the payload's package. wire.Msg implements it.
type Payload interface {
	TraceKind() string
}

// TxPayload additionally attributes the payload to a transaction.
// Only transaction-manager datagrams implement it; communication-
// manager RPC traffic is counted per site but not per family, so the
// per-family message counters measure exactly the commit protocol's
// datagram budget.
type TxPayload interface {
	Payload
	TraceTID() tid.TID
}

// SiteCounters aggregates one site's primitive activity.
type SiteCounters struct {
	LogAppends   int `json:"log_appends"`   // records buffered
	LogForces    int `json:"log_forces"`    // protocol-issued synchronous forces
	DeviceWrites int `json:"device_writes"` // physical log writes
	BytesWritten int `json:"bytes_written"` // bytes in physical log writes
	MsgsSent     int `json:"msgs_sent"`     // TM datagrams queued
	MsgsRecv     int `json:"msgs_recv"`     // TM datagrams delivered
	MsgsDropped  int `json:"msgs_dropped"`  // TM datagrams lost
	RPCs         int `json:"rpcs"`          // communication-manager datagrams queued
	IPCs         int `json:"ipcs"`          // local IPC round trips charged
	// Retransmits and Inquiries count the timer-driven recovery
	// traffic: datagrams re-sent because an answer never came, and
	// outcome inquiries from blocked subordinates. Fault-free runs
	// record zero of both, so they are omitted from reports (and the
	// pre-existing goldens) when empty.
	Retransmits int `json:"retransmits,omitempty"` // timer-driven datagram re-sends
	Inquiries   int `json:"inquiries,omitempty"`   // outcome inquiries sent
}

// FamilyCounters aggregates one transaction family's activity at one
// site — the per-transaction budget the conformance tests pin.
type FamilyCounters struct {
	LogAppends int
	LogForces  int
	MsgsSent   int
	MsgsRecv   int
}

type phaseKey struct {
	site  tid.SiteID
	fam   tid.FamilyID
	phase string
}

// Collector accumulates events and counters. Methods are safe for
// concurrent use and nil-safe: every instrumented call site does
// exactly one pointer check when tracing is disabled.
type Collector struct {
	r rt.Runtime

	mu       sync.Mutex
	seq      uint64
	events   []Event
	sites    map[tid.SiteID]*SiteCounters
	families map[tid.FamilyID]map[tid.SiteID]*FamilyCounters
	open     map[phaseKey]time.Duration
	phaseLat map[string]*stats.Sample
	// lockWaits counts contended lock acquisitions per site and lock
	// class. It is a pure counter — no timeline event — because lock
	// waits are a property of the host runtime, not of the simulated
	// protocol: in the cooperative simulation kernel no mutex is ever
	// held across a context switch, so these counters are provably
	// zero there, and a nonzero reading in simulation means the
	// determinism invariant was broken.
	lockWaits map[tid.SiteID]map[string]int
}

// New returns an empty collector reading timestamps from r.
func New(r rt.Runtime) *Collector {
	return &Collector{
		r:         r,
		sites:     make(map[tid.SiteID]*SiteCounters),
		families:  make(map[tid.FamilyID]map[tid.SiteID]*FamilyCounters),
		open:      make(map[phaseKey]time.Duration),
		phaseLat:  make(map[string]*stats.Sample),
		lockWaits: make(map[tid.SiteID]map[string]int),
	}
}

// record appends one event under the lock and returns it for counter
// updates. Callers hold c.mu.
func (c *Collector) recordLocked(ev Event) {
	c.seq++
	ev.Seq = c.seq
	ev.At = c.r.Now()
	c.events = append(c.events, ev)
}

func (c *Collector) siteLocked(s tid.SiteID) *SiteCounters {
	sc := c.sites[s]
	if sc == nil {
		sc = &SiteCounters{}
		c.sites[s] = sc
	}
	return sc
}

func (c *Collector) familyLocked(f tid.FamilyID, s tid.SiteID) *FamilyCounters {
	m := c.families[f]
	if m == nil {
		m = make(map[tid.SiteID]*FamilyCounters)
		c.families[f] = m
	}
	fc := m[s]
	if fc == nil {
		fc = &FamilyCounters{}
		m[s] = fc
	}
	return fc
}

// --- recording (all nil-safe) ---

// LogAppend records one record buffered into site's log.
func (c *Collector) LogAppend(site tid.SiteID, t tid.TID, recType string, bytes int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordLocked(Event{Kind: EvLogAppend, Site: site, TID: t, Info: recType, Bytes: bytes})
	c.siteLocked(site).LogAppends++
	if !t.IsZero() {
		c.familyLocked(t.Family, site).LogAppends++
	}
}

// LogForce records a protocol-issued synchronous force on behalf of
// t. This is the budget unit ("two-phase commitment requires one
// force per site"), independent of how group commit coalesces the
// underlying device writes.
func (c *Collector) LogForce(site tid.SiteID, t tid.TID, recType string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordLocked(Event{Kind: EvLogForce, Site: site, TID: t, Info: recType})
	c.siteLocked(site).LogForces++
	if !t.IsZero() {
		c.familyLocked(t.Family, site).LogForces++
	}
}

// DeviceWrite records one physical log write covering records
// totalling bytes.
func (c *Collector) DeviceWrite(site tid.SiteID, records, bytes int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordLocked(Event{Kind: EvDeviceWrite, Site: site,
		Info: fmt.Sprintf("%d rec", records), Bytes: bytes})
	sc := c.siteLocked(site)
	sc.DeviceWrites++
	sc.BytesWritten += bytes
}

// LogFlush records the background flusher forcing the log tail.
func (c *Collector) LogFlush(site tid.SiteID) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordLocked(Event{Kind: EvLogFlush, Site: site})
}

// MsgSend records a datagram queued at from. payload classification:
// TxPayload updates the family counters, bare Payload only the site's
// RPC counter.
func (c *Collector) MsgSend(from, to tid.SiteID, payload any) {
	c.msgEvent(EvMsgSend, from, to, payload)
}

// MsgRecv records a datagram delivered at to.
func (c *Collector) MsgRecv(to, from tid.SiteID, payload any) {
	c.msgEvent(EvMsgRecv, to, from, payload)
}

// MsgDrop records a datagram lost between from and to.
func (c *Collector) MsgDrop(from, to tid.SiteID, payload any) {
	c.msgEvent(EvMsgDrop, from, to, payload)
}

func (c *Collector) msgEvent(kind Kind, site, peer tid.SiteID, payload any) {
	if c == nil {
		return
	}
	var t tid.TID
	info := fmt.Sprintf("%T", payload)
	tm := false
	if p, ok := payload.(Payload); ok {
		info = p.TraceKind()
		if tp, ok := payload.(TxPayload); ok {
			t = tp.TraceTID()
			tm = true
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordLocked(Event{Kind: kind, Site: site, Peer: peer, TID: t, Info: info})
	sc := c.siteLocked(site)
	switch kind {
	case EvMsgSend:
		if tm {
			sc.MsgsSent++
		} else {
			sc.RPCs++
		}
	case EvMsgRecv:
		if tm {
			sc.MsgsRecv++
		}
	case EvMsgDrop:
		if tm {
			sc.MsgsDropped++
		}
	}
	if tm && !t.IsZero() {
		fc := c.familyLocked(t.Family, site)
		switch kind {
		case EvMsgSend:
			fc.MsgsSent++
		case EvMsgRecv:
			fc.MsgsRecv++
		}
	}
}

// PhaseBegin records that site entered the named protocol phase for
// t and opens a latency measurement.
func (c *Collector) PhaseBegin(site tid.SiteID, t tid.TID, phase string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordLocked(Event{Kind: EvPhaseBegin, Site: site, TID: t, Info: phase})
	c.open[phaseKey{site, t.Family, phase}] = c.r.Now()
}

// PhaseEnd closes the named phase, adding its duration to the phase's
// latency sample. A PhaseEnd with no matching open PhaseBegin is a
// no-op, so shared completion paths may call it unconditionally.
func (c *Collector) PhaseEnd(site tid.SiteID, t tid.TID, phase string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := phaseKey{site, t.Family, phase}
	begin, ok := c.open[key]
	if !ok {
		return
	}
	delete(c.open, key)
	c.recordLocked(Event{Kind: EvPhaseEnd, Site: site, TID: t, Info: phase})
	s := c.phaseLat[phase]
	if s == nil {
		s = &stats.Sample{}
		c.phaseLat[phase] = s
	}
	s.AddDuration(c.r.Now() - begin)
}

// LockDrop records that site told its servers to release t's locks.
func (c *Collector) LockDrop(site tid.SiteID, t tid.TID) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordLocked(Event{Kind: EvLockDrop, Site: site, TID: t})
}

// IPC counts one local IPC round trip at site (no timeline event:
// IPCs are budget counters, not timeline landmarks).
func (c *Collector) IPC(site tid.SiteID) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.siteLocked(site).IPCs++
}

// Retry records one timer-driven retransmit round at site: n datagrams
// of the named flavor re-sent because no answer arrived. It bumps the
// site's Retransmits counter by n; fault-free runs record none.
func (c *Collector) Retry(site tid.SiteID, t tid.TID, what string, n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.siteLocked(site).Retransmits += n
	c.recordLocked(Event{Kind: EvRetry, Site: site, TID: t, Info: what})
}

// Inquiry records one outcome inquiry sent from a blocked subordinate
// at site to the family's coordinator.
func (c *Collector) Inquiry(site tid.SiteID, t tid.TID) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.siteLocked(site).Inquiries++
	c.recordLocked(Event{Kind: EvRetry, Site: site, TID: t, Info: "inquire"})
}

// Backoff records a retry timer re-armed with a backed-off delay
// (strictly above the base interval). No counter: every backoff
// accompanies a Retry/Inquiry that is already counted.
func (c *Collector) Backoff(site tid.SiteID, t tid.TID, d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordLocked(Event{Kind: EvBackoff, Site: site, TID: t, Info: fmt.Sprintf("delay=%s", d)})
}

// LockWait counts one contended acquisition of a lock of the given
// class at site: the caller's TryLock failed and it fell back to a
// blocking Lock. No timeline event is recorded — in simulation the
// count must stay zero (the kernel is cooperative), and on the real
// runtime an event per wait would perturb the very contention being
// measured.
func (c *Collector) LockWait(site tid.SiteID, class string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.lockWaits[site]
	if m == nil {
		m = make(map[string]int)
		c.lockWaits[site] = m
	}
	m[class]++
}

// FaultInject records a fault being switched on: a datagram-loss rate,
// a site marked down, a cut link, or a chaos-schedule injection. Site
// and peer locate the fault (both zero for cluster-wide faults); desc
// names it ("loss=0.30", "cut", "drop wire.Msg"). Together with
// FaultClear this makes failing traces self-describing: the timeline
// itself records which faults were active when.
func (c *Collector) FaultInject(site, peer tid.SiteID, desc string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordLocked(Event{Kind: EvFaultInject, Site: site, Peer: peer, Info: desc})
}

// FaultClear records a previously injected fault being switched off.
func (c *Collector) FaultClear(site, peer tid.SiteID, desc string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordLocked(Event{Kind: EvFaultClear, Site: site, Peer: peer, Info: desc})
}

// Checkpoint records the disk manager materializing the durable log
// into the page image; records is how many log records the truncation
// dropped. Checkpoint boundaries matter to fault analysis — a crash
// just after one recovers from the image, a crash during one must
// tolerate the image/log overlap — so the timeline marks them.
func (c *Collector) Checkpoint(site tid.SiteID, records int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordLocked(Event{Kind: EvCheckpoint, Site: site, Info: fmt.Sprintf("cut=%d", records)})
}

// Crash records a site crash.
func (c *Collector) Crash(site tid.SiteID) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordLocked(Event{Kind: EvCrash, Site: site})
}

// Recover records a site recovery.
func (c *Collector) Recover(site tid.SiteID) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordLocked(Event{Kind: EvRecover, Site: site})
}

// ThreadSwitch records the simulation kernel resuming a thread. Wire
// it to sim.Hooks only when scheduling-level detail is wanted — the
// volume is high.
func (c *Collector) ThreadSwitch(name string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordLocked(Event{Kind: EvThreadSwitch, Info: name})
}

// TimerFire records the simulation kernel firing a timer.
func (c *Collector) TimerFire(name string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordLocked(Event{Kind: EvTimerFire, Info: name})
}

// --- reading ---

// Events returns a copy of the timeline in order.
func (c *Collector) Events() []Event {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Site returns site's counters (zero value if never seen).
func (c *Collector) Site(s tid.SiteID) SiteCounters {
	if c == nil {
		return SiteCounters{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sc := c.sites[s]; sc != nil {
		return *sc
	}
	return SiteCounters{}
}

// Sites returns the ids of all sites with recorded activity, sorted.
func (c *Collector) Sites() []tid.SiteID {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return det.SortedKeys(c.sites)
}

// Family returns t's family counters at site (zero value if never
// seen).
func (c *Collector) Family(t tid.TID, site tid.SiteID) FamilyCounters {
	if c == nil {
		return FamilyCounters{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if m := c.families[t.Family]; m != nil {
		if fc := m[site]; fc != nil {
			return *fc
		}
	}
	return FamilyCounters{}
}

// FamilyTotal sums t's family counters across every site.
func (c *Collector) FamilyTotal(t tid.TID) FamilyCounters {
	if c == nil {
		return FamilyCounters{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var total FamilyCounters
	//lint:ordered commutative sum; visit order cannot be observed
	for _, fc := range c.families[t.Family] {
		total.LogAppends += fc.LogAppends
		total.LogForces += fc.LogForces
		total.MsgsSent += fc.MsgsSent
		total.MsgsRecv += fc.MsgsRecv
	}
	return total
}

// LockWaits returns site's contended-acquisition counts by lock
// class, as a copy.
func (c *Collector) LockWaits(site tid.SiteID) map[string]int {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	src := c.lockWaits[site]
	if len(src) == 0 {
		return nil
	}
	out := make(map[string]int, len(src))
	//lint:ordered map copy; insertion order is unobservable
	for k, v := range src {
		out[k] = v
	}
	return out
}

// LockWaitTotal sums site's contended acquisitions across all lock
// classes.
func (c *Collector) LockWaitTotal(site tid.SiteID) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	//lint:ordered commutative sum; visit order cannot be observed
	for _, v := range c.lockWaits[site] {
		total += v
	}
	return total
}

// PhaseLatency returns the latency sample for the named phase, or an
// empty sample. The returned sample is a snapshot copy.
func (c *Collector) PhaseLatency(phase string) *stats.Sample {
	if c == nil {
		return &stats.Sample{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.phaseLat[phase]; s != nil {
		return s.Clone()
	}
	return &stats.Sample{}
}

// Phases returns the names of all phases with latency samples, sorted.
func (c *Collector) Phases() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return det.SortedKeys(c.phaseLat)
}

// Reset clears events and counters (phase samples included), so one
// collector can bracket successive experiments.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq = 0
	c.events = nil
	c.sites = make(map[tid.SiteID]*SiteCounters)
	c.families = make(map[tid.FamilyID]map[tid.SiteID]*FamilyCounters)
	c.open = make(map[phaseKey]time.Duration)
	c.phaseLat = make(map[string]*stats.Sample)
	c.lockWaits = make(map[tid.SiteID]map[string]int)
}
