package netem

import (
	"math/rand"
	"sync"
	"time"
)

// Decision is what the emulator rules for one datagram.
type Decision struct {
	// Drop destroys the datagram (lossy link or partition window).
	Drop bool
	// Dup is how many extra copies to deliver.
	Dup int
	// Delay defers delivery (fixed delay + jitter + reorder hold).
	Delay time.Duration
}

// Counts tallies emulator decisions for reports.
type Counts struct {
	Seen    int `json:"seen"`
	Dropped int `json:"dropped"`
	// Cut is the subset of Dropped due to partition windows.
	Cut     int `json:"cut"`
	Dupped  int `json:"dupped"`
	Delayed int `json:"delayed"`
}

// Emulator applies a netem/v1 schedule's link rules and partition
// windows to datagrams, one Decide call per send. All randomness
// comes from per-ordered-pair PRNGs seeded from (schedule seed, from,
// to), and the clock is injected, so the same schedule against the
// same per-link datagram sequence yields the same decisions — in the
// simulation that makes replay byte-identical, and on the real
// network it makes a schedule a named, re-runnable experiment.
type Emulator struct {
	sched Schedule
	// elapsed reports run-relative time; the caller chooses the clock
	// (kernel time under the simulation, wall time in the proxy).
	elapsed func() time.Duration

	mu     sync.Mutex
	rngs   map[[2]uint32]*rand.Rand
	counts Counts
}

// NewEmulator builds an emulator over the schedule with the given
// run-relative clock.
func NewEmulator(s Schedule, elapsed func() time.Duration) *Emulator {
	return &Emulator{sched: s, elapsed: elapsed, rngs: make(map[[2]uint32]*rand.Rand)}
}

// linkSeed mixes the schedule seed with the ordered pair so every
// link draws an independent, reproducible stream.
func linkSeed(seed int64, from, to uint32) int64 {
	x := uint64(seed) ^ uint64(from)*0x9e3779b97f4a7c15 ^ uint64(to)*0xc2b2ae3d27d4eb4f
	return int64(x)
}

func (e *Emulator) rng(from, to uint32) *rand.Rand {
	k := [2]uint32{from, to}
	r := e.rngs[k]
	if r == nil {
		r = rand.New(rand.NewSource(linkSeed(e.sched.Seed, from, to)))
		e.rngs[k] = r
	}
	return r
}

// cut reports whether the partition p severs the from→to direction.
func (p Partition) cut(from, to uint32) bool {
	if p.B == 0 { // isolate A from everyone
		return from == p.A || to == p.A
	}
	if from == p.A && to == p.B {
		return true
	}
	return !p.OneWay && from == p.B && to == p.A
}

// active reports whether a [StartMs, EndMs) window covers elapsed;
// EndMs 0 means the window never closes.
func active(startMs, endMs int, elapsed time.Duration) bool {
	if elapsed < time.Duration(startMs)*time.Millisecond {
		return false
	}
	return endMs == 0 || elapsed < time.Duration(endMs)*time.Millisecond
}

// Decide rules on one from→to datagram at the current elapsed time.
// Partition windows are checked first and consume no randomness, so
// their effect is independent of traffic volume; then every matching
// link rule is applied in schedule order, drawing from the pair's
// PRNG in a fixed per-rule order (drop, dup, jitter, reorder).
func (e *Emulator) Decide(from, to uint32) Decision {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.elapsed()
	e.counts.Seen++
	for _, p := range e.sched.Partitions {
		if active(p.StartMs, p.EndMs, now) && p.cut(from, to) {
			e.counts.Dropped++
			e.counts.Cut++
			return Decision{Drop: true}
		}
	}
	var d Decision
	r := e.rng(from, to)
	for _, ru := range e.sched.Links {
		if ru.From != 0 && ru.From != from {
			continue
		}
		if ru.To != 0 && ru.To != to {
			continue
		}
		if !active(ru.StartMs, ru.EndMs, now) {
			continue
		}
		if ru.Drop > 0 && r.Float64() < ru.Drop {
			e.counts.Dropped++
			return Decision{Drop: true}
		}
		if ru.Dup > 0 && r.Float64() < ru.Dup {
			d.Dup++
		}
		d.Delay += time.Duration(ru.DelayMs) * time.Millisecond
		if ru.JitterMs > 0 {
			d.Delay += time.Duration(r.Int63n(int64(ru.JitterMs))) * time.Millisecond
		}
		if ru.Reorder > 0 && r.Float64() < ru.Reorder {
			d.Delay += time.Duration(ru.ReorderMs) * time.Millisecond
		}
	}
	if d.Dup > 0 {
		e.counts.Dupped++
	}
	if d.Delay > 0 {
		e.counts.Delayed++
	}
	return d
}

// Counts returns a snapshot of the decision tallies.
func (e *Emulator) Counts() Counts {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.counts
}
