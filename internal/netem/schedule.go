// Package netem is the real runtime's network-fault emulator: the
// chaos explorer's missing half. Where internal/chaos enumerates
// faults inside the deterministic simulation, netem applies them to
// the actual UDP cluster — a loopback proxy interposed on every
// ordered site pair applies per-link schedules of drop, duplication,
// reordering, delay jitter, and one-way/two-way partition windows,
// while the cluster driver adds process-level faults (SIGKILL,
// SIGSTOP/SIGCONT, restarts) and WAL write failures on the same
// clock.
//
// Schedules are canonical netem/v1 JSON, replayable the way chaos/v1
// schedules replay: every randomized decision draws from a per-link
// PRNG seeded from (schedule seed, from, to), never from global
// process randomness, so a schedule names a reproducible experiment.
// Under the simulation (chaos.RunNetem) the replay is byte-identical;
// on the real network the draw sequence is identical per link and
// only wall-clock interleaving varies.
package netem

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Version is the schedule format identifier.
const Version = "netem/v1"

// Rule shapes traffic on matching ordered site pairs for a window of
// the run. Zero From/To are wildcards; zero EndMs means "until the
// run ends". Probabilities are in [0, 1).
type Rule struct {
	// From and To select the ordered pair (sender → receiver); 0
	// matches any site.
	From uint32 `json:"from,omitempty"`
	To   uint32 `json:"to,omitempty"`
	// StartMs and EndMs bound the active window, in run-relative
	// milliseconds. EndMs 0 keeps the rule active forever.
	StartMs int `json:"start_ms,omitempty"`
	EndMs   int `json:"end_ms,omitempty"`
	// Drop destroys datagrams with this probability.
	Drop float64 `json:"drop,omitempty"`
	// Dup delivers an extra copy with this probability.
	Dup float64 `json:"dup,omitempty"`
	// DelayMs adds a fixed one-way delay; JitterMs adds a further
	// uniform draw from [0, JitterMs).
	DelayMs  int `json:"delay_ms,omitempty"`
	JitterMs int `json:"jitter_ms,omitempty"`
	// Reorder holds this fraction of datagrams back an extra
	// ReorderMs, so they arrive behind traffic sent after them.
	Reorder   float64 `json:"reorder,omitempty"`
	ReorderMs int     `json:"reorder_ms,omitempty"`
}

// Partition cuts links for a window. B 0 isolates A from every other
// site. OneWay cuts only the A→B direction — the asymmetric failure
// (A's datagrams vanish, B's arrive) that fixed-interval retry loops
// handle worst.
type Partition struct {
	A       uint32 `json:"a"`
	B       uint32 `json:"b,omitempty"`
	StartMs int    `json:"start_ms,omitempty"`
	EndMs   int    `json:"end_ms,omitempty"`
	OneWay  bool   `json:"one_way,omitempty"`
}

// Proc fault operations.
const (
	// OpKill SIGKILLs the site's process (no cleanup, like a crash).
	OpKill = "kill"
	// OpStop SIGSTOPs the process: alive but frozen — the gray
	// failure a deadline, not a connection error, must detect.
	OpStop = "stop"
	// OpCont SIGCONTs a stopped process.
	OpCont = "cont"
	// OpRestart starts a previously killed site again (recovery).
	OpRestart = "restart"
)

// ProcFault is one timed process-level fault.
type ProcFault struct {
	Site uint32 `json:"site"`
	AtMs int    `json:"at_ms"`
	Op   string `json:"op"`
}

// WALFault makes one site's stable log fail-stop: its FailAppend-th
// block append (counted from process start, from zero) returns an
// error and every later append fails too — the disk died mid-run.
type WALFault struct {
	Site       uint32 `json:"site"`
	FailAppend int    `json:"fail_append"`
}

// Schedule is one replayable real-network fault experiment: link
// shaping rules, partition windows, process faults, and WAL faults,
// all on a run-relative millisecond clock.
type Schedule struct {
	// Version must be "netem/v1".
	Version string `json:"version"`
	// Seed seeds every per-link decision PRNG.
	Seed int64 `json:"seed"`
	// DurationMs is how long the driver keeps the workload running
	// (the fault phase); healing and verification happen after.
	DurationMs int         `json:"duration_ms,omitempty"`
	Links      []Rule      `json:"links,omitempty"`
	Partitions []Partition `json:"partitions,omitempty"`
	Procs      []ProcFault `json:"procs,omitempty"`
	WAL        []WALFault  `json:"wal,omitempty"`
	// Note is free-form provenance.
	Note string `json:"note,omitempty"`
}

// Encode serializes the schedule as indented netem/v1 JSON with a
// trailing newline. Field order is fixed by the struct, so equal
// schedules encode byte-identically.
func (s Schedule) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("netem: encode schedule: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeSchedule parses a netem/v1 schedule strictly: unknown fields
// and version mismatches are errors.
func DecodeSchedule(b []byte) (Schedule, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s Schedule
	if err := dec.Decode(&s); err != nil {
		return Schedule{}, fmt.Errorf("netem: decode schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// Validate checks the schedule's internal consistency.
func (s Schedule) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("netem: version %q, want %q", s.Version, Version)
	}
	if s.DurationMs < 0 {
		return fmt.Errorf("netem: negative duration")
	}
	for _, r := range s.Links {
		if !prob(r.Drop) || !prob(r.Dup) || !prob(r.Reorder) {
			return fmt.Errorf("netem: rule %+v: probabilities must be in [0, 1)", r)
		}
		if r.DelayMs < 0 || r.JitterMs < 0 || r.ReorderMs < 0 ||
			r.StartMs < 0 || r.EndMs < 0 {
			return fmt.Errorf("netem: rule %+v: negative duration", r)
		}
		if r.EndMs != 0 && r.EndMs <= r.StartMs {
			return fmt.Errorf("netem: rule %+v: empty window", r)
		}
		if r.Reorder > 0 && r.ReorderMs == 0 {
			return fmt.Errorf("netem: rule %+v: reorder needs reorder_ms", r)
		}
	}
	for _, p := range s.Partitions {
		if p.A == 0 {
			return fmt.Errorf("netem: partition %+v: A is required", p)
		}
		if p.A == p.B {
			return fmt.Errorf("netem: partition %+v: A and B must differ", p)
		}
		if p.StartMs < 0 || p.EndMs < 0 || (p.EndMs != 0 && p.EndMs <= p.StartMs) {
			return fmt.Errorf("netem: partition %+v: bad window", p)
		}
		if p.OneWay && p.B == 0 {
			return fmt.Errorf("netem: partition %+v: one-way needs a B site", p)
		}
	}
	for _, f := range s.Procs {
		switch f.Op {
		case OpKill, OpStop, OpCont, OpRestart:
		default:
			return fmt.Errorf("netem: proc fault %+v: unknown op %q", f, f.Op)
		}
		if f.Site == 0 || f.AtMs < 0 {
			return fmt.Errorf("netem: proc fault %+v: bad site or time", f)
		}
	}
	for _, f := range s.WAL {
		if f.Site == 0 || f.FailAppend < 0 {
			return fmt.Errorf("netem: wal fault %+v: bad site or index", f)
		}
	}
	return nil
}

func prob(p float64) bool { return p >= 0 && p < 1 }
