package netem

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// maxDatagram bounds proxied reads. It matches wire.MaxDatagram plus
// one byte of truncation slack, but the proxy deliberately does not
// import the wire package: it forwards opaque bytes, so a framing
// change can never desynchronize emulation from transport.
const maxDatagram = 64*1024 + 1

// Proxy interposes the emulator on a real loopback cluster. For each
// ordered site pair (from, to) it binds one UDP socket; the driver
// points node from's peer-map entry for to at that socket instead of
// at to directly, and the proxy forwards (or drops, duplicates,
// delays) toward to's real address per the emulator's decisions.
//
// Receivers learn the reply address from the message's From field and
// their own peer map — never from the datagram's source address — so
// the source-address rewrite the forwarding hop causes is invisible
// to the protocols.
type Proxy struct {
	em *Emulator

	mu     sync.Mutex
	links  map[[2]uint32]*pipe
	closed bool
}

// pipe is one ordered pair's interposition point.
type pipe struct {
	p        *Proxy
	from, to uint32
	conn     *net.UDPConn

	mu  sync.Mutex
	dst *net.UDPAddr
}

// NewProxy builds a proxy ruled by the emulator.
func NewProxy(em *Emulator) *Proxy {
	return &Proxy{em: em, links: make(map[[2]uint32]*pipe)}
}

// Open binds the interposition socket for the ordered pair from→to,
// forwarding toward dst (site to's real address), and returns the
// address node from should use as its peer entry for to.
func (p *Proxy) Open(from, to uint32, dst string) (string, error) {
	da, err := net.ResolveUDPAddr("udp", dst)
	if err != nil {
		return "", fmt.Errorf("netem: resolve %q: %w", dst, err)
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return "", fmt.Errorf("netem: bind %d->%d: %w", from, to, err)
	}
	pi := &pipe{p: p, from: from, to: to, conn: conn, dst: da}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return "", fmt.Errorf("netem: proxy closed")
	}
	p.links[[2]uint32{from, to}] = pi
	p.mu.Unlock()
	//lint:rawgo host-side UDP forwarding loop; the proxy never runs under the simulation kernel
	go pi.run()
	return conn.LocalAddr().String(), nil
}

// SetDst re-points an open pipe at a new destination address — a site
// that restarted rebinds on a fresh port, while its peers keep
// sending to the stable proxy address.
func (p *Proxy) SetDst(from, to uint32, dst string) error {
	da, err := net.ResolveUDPAddr("udp", dst)
	if err != nil {
		return fmt.Errorf("netem: resolve %q: %w", dst, err)
	}
	p.mu.Lock()
	pi := p.links[[2]uint32{from, to}]
	p.mu.Unlock()
	if pi == nil {
		return fmt.Errorf("netem: no pipe %d->%d", from, to)
	}
	pi.mu.Lock()
	pi.dst = da
	pi.mu.Unlock()
	return nil
}

// Counts reports the emulator's decision tallies.
func (p *Proxy) Counts() Counts { return p.em.Counts() }

// Close shuts every pipe down.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	links := p.links
	p.links = make(map[[2]uint32]*pipe)
	p.mu.Unlock()
	for _, pi := range links {
		pi.conn.Close()
	}
}

func (pi *pipe) run() {
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := pi.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		d := pi.p.em.Decide(pi.from, pi.to)
		if d.Drop {
			continue
		}
		// The read buffer is reused, so every scheduled forward needs
		// its own copy.
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		for i := 0; i <= d.Dup; i++ {
			if d.Delay <= 0 {
				pi.forward(pkt)
				continue
			}
			time.AfterFunc(d.Delay, func() { pi.forward(pkt) }) //lint:walltime emulated link delay is real elapsed time by design
		}
	}
}

func (pi *pipe) forward(pkt []byte) {
	pi.mu.Lock()
	dst := pi.dst
	pi.mu.Unlock()
	// Send errors are datagram loss; the protocols' retry machinery is
	// exactly the thing under test.
	pi.conn.WriteToUDP(pkt, dst)
}
