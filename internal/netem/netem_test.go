package netem

import (
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func lossy() Schedule {
	return Schedule{
		Version:    Version,
		Seed:       7,
		DurationMs: 10_000,
		Links: []Rule{{
			Drop: 0.2, Dup: 0.1, DelayMs: 1, JitterMs: 3,
			Reorder: 0.25, ReorderMs: 20,
		}},
		Partitions: []Partition{{A: 1, B: 2, StartMs: 2000, EndMs: 5000, OneWay: true}},
		Procs:      []ProcFault{{Site: 3, AtMs: 3000, Op: OpKill}},
		WAL:        []WALFault{{Site: 2, FailAppend: 40}},
		Note:       "test schedule",
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	s := lossy()
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSchedule(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("round trip not byte-identical:\n%s\nvs\n%s", b, b2)
	}
}

func TestDecodeRejectsBadSchedules(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Schedule)
		want string
	}{
		{"version", func(s *Schedule) { s.Version = "netem/v2" }, "version"},
		{"prob", func(s *Schedule) { s.Links[0].Drop = 1.5 }, "probabilities"},
		{"window", func(s *Schedule) { s.Links[0].StartMs, s.Links[0].EndMs = 50, 50 }, "window"},
		{"reorder", func(s *Schedule) { s.Links[0].ReorderMs = 0 }, "reorder"},
		{"partition-self", func(s *Schedule) { s.Partitions[0].B = 1 }, "differ"},
		{"oneway-wildcard", func(s *Schedule) { s.Partitions[0].B = 0 }, "one-way"},
		{"proc-op", func(s *Schedule) { s.Procs[0].Op = "pause" }, "unknown op"},
		{"wal-site", func(s *Schedule) { s.WAL[0].Site = 0 }, "bad site"},
	}
	for _, tc := range cases {
		s := lossy()
		tc.mut(&s)
		b, err := s.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeSchedule(b); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if _, err := DecodeSchedule([]byte(`{"version":"netem/v1","seed":1,"bogus":2}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

// Two emulators over the same schedule and the same per-link datagram
// sequence make identical decisions — the replayability contract.
func TestEmulatorDeterministic(t *testing.T) {
	s := lossy()
	s.Partitions = nil
	clock := func() time.Duration { return 0 }
	a := NewEmulator(s, clock)
	b := NewEmulator(s, clock)
	pairs := [][2]uint32{{1, 2}, {2, 1}, {1, 3}, {3, 1}, {2, 3}, {3, 2}}
	varied := false
	for i := 0; i < 400; i++ {
		pr := pairs[i%len(pairs)]
		da, db := a.Decide(pr[0], pr[1]), b.Decide(pr[0], pr[1])
		if da != db {
			t.Fatalf("decision %d on %v diverged: %+v vs %+v", i, pr, da, db)
		}
		if da.Drop || da.Dup > 0 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("schedule with 20%% drop produced no drops in 400 decisions")
	}
	if a.Counts() != b.Counts() {
		t.Fatalf("counts diverged: %+v vs %+v", a.Counts(), b.Counts())
	}
}

// Per-link streams are independent: interleaving traffic on other
// links does not change a link's decision sequence.
func TestEmulatorPerLinkStreamsIndependent(t *testing.T) {
	s := lossy()
	s.Partitions = nil
	clock := func() time.Duration { return 0 }
	solo := NewEmulator(s, clock)
	var want []Decision
	for i := 0; i < 100; i++ {
		want = append(want, solo.Decide(1, 2))
	}
	mixed := NewEmulator(s, clock)
	for i := 0; i < 100; i++ {
		mixed.Decide(2, 3) // interleaved noise on another link
		if got := mixed.Decide(1, 2); got != want[i] {
			t.Fatalf("decision %d changed under interleaving: %+v vs %+v", i, got, want[i])
		}
	}
}

func TestPartitionWindows(t *testing.T) {
	s := Schedule{Version: Version, Seed: 1, Partitions: []Partition{
		{A: 1, B: 2, StartMs: 1000, EndMs: 2000, OneWay: true},
		{A: 3, StartMs: 5000}, // isolate site 3 forever
	}}
	now := time.Duration(0)
	e := NewEmulator(s, func() time.Duration { return now })
	check := func(from, to uint32, wantDrop bool, why string) {
		t.Helper()
		if got := e.Decide(from, to).Drop; got != wantDrop {
			t.Errorf("%s: Decide(%d,%d).Drop = %v, want %v", why, from, to, got, wantDrop)
		}
	}
	check(1, 2, false, "before window")
	now = 1500 * time.Millisecond
	check(1, 2, true, "inside one-way window, cut direction")
	check(2, 1, false, "inside one-way window, reply direction")
	now = 2 * time.Second
	check(1, 2, false, "window closed at end_ms")
	now = 6 * time.Second
	check(3, 1, true, "isolated site sends")
	check(2, 3, true, "isolated site receives")
	check(1, 2, false, "bystander pair")
}

// The proxy forwards datagrams (with duplication) under a clean
// schedule and blackholes them under a partition, without parsing
// their bytes.
func TestProxyForwardAndCut(t *testing.T) {
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	s := Schedule{Version: Version, Seed: 1,
		Partitions: []Partition{{A: 1, B: 2, StartMs: 60_000}}}
	// The forwarding goroutine reads the clock concurrently with the
	// test advancing it.
	var now atomic.Int64
	p := NewProxy(NewEmulator(s, func() time.Duration { return time.Duration(now.Load()) }))
	defer p.Close()
	addr, err := p.Open(1, 2, recv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	send, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	if _, err := send.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	recv.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err := recv.ReadFromUDP(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("forward: got %q, %v", buf[:n], err)
	}

	// Enter the partition window: the same pipe now blackholes.
	now.Store(int64(61 * time.Second))
	if _, err := send.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	recv.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if n, _, err = recv.ReadFromUDP(buf); err == nil {
		t.Fatalf("partitioned datagram delivered: %q", buf[:n])
	}
	c := p.Counts()
	if c.Seen != 2 || c.Dropped != 1 || c.Cut != 1 {
		t.Fatalf("counts = %+v, want seen 2 dropped 1 cut 1", c)
	}
}

func TestProxyDupDeliversCopies(t *testing.T) {
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	// Dup probability just under 1 duplicates every datagram.
	s := Schedule{Version: Version, Seed: 1, Links: []Rule{{Dup: 0.999999}}}
	p := NewProxy(NewEmulator(s, func() time.Duration { return 0 }))
	defer p.Close()
	addr, err := p.Open(1, 2, recv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	send, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	if _, err := send.Write([]byte("twice")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for i := 0; i < 2; i++ {
		recv.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, _, err := recv.ReadFromUDP(buf)
		if err != nil || string(buf[:n]) != "twice" {
			t.Fatalf("copy %d: got %q, %v", i, buf[:n], err)
		}
	}
}

func TestProxySetDstRepoints(t *testing.T) {
	old, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	s := Schedule{Version: Version, Seed: 1}
	p := NewProxy(NewEmulator(s, func() time.Duration { return 0 }))
	defer p.Close()
	addr, err := p.Open(1, 2, old.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	old.Close() // the "restarted" site rebinds elsewhere
	fresh, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if err := p.SetDst(1, 2, fresh.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	send, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	if _, err := send.Write([]byte("moved")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	fresh.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err := fresh.ReadFromUDP(buf)
	if err != nil || string(buf[:n]) != "moved" {
		t.Fatalf("after SetDst: got %q, %v", buf[:n], err)
	}
}
