package transport

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"camelot/internal/tid"
	"camelot/internal/wire"
)

// newTestPeer binds a loopback peer and registers cleanup.
func newTestPeer(t *testing.T, id tid.SiteID) *UDPPeer {
	t.Helper()
	p, err := NewUDPPeer(id, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// connect registers both peers' addresses with each other.
func connect(t *testing.T, a, b *UDPPeer, aid, bid tid.SiteID) {
	t.Helper()
	if err := a.AddPeer(bid, b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(aid, a.Addr()); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond for up to five seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// collector is a concurrency-safe inbound handler.
type collector struct {
	mu   sync.Mutex
	msgs []*wire.Msg
}

func (c *collector) handle(d Datagram) {
	m, ok := d.Payload.(*wire.Msg)
	if !ok {
		return
	}
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func (c *collector) all() []*wire.Msg {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*wire.Msg(nil), c.msgs...)
}

// TestBacklogDeliversEarlyDatagrams is the regression test for the
// silent-loss bug where datagrams arriving before SetHandler were
// counted as received but delivered to no one. A real cluster races
// its peers' startups constantly; early arrivals must be parked and
// delivered once the handler exists.
func TestBacklogDeliversEarlyDatagrams(t *testing.T) {
	a, b := newTestPeer(t, 1), newTestPeer(t, 2)
	connect(t, a, b, 1, 2)

	const n = 10
	for i := 0; i < n; i++ {
		a.Send(1, 2, &wire.Msg{Kind: wire.KPrepare, TID: tid.Top(tid.MakeFamily(1, uint32(i+1)))})
	}
	// All n must arrive and be parked — not discarded — while no
	// handler is installed.
	waitFor(t, "backlog to fill", func() bool { _, r, _ := b.Stats(); return r == n })
	var got collector
	b.SetHandler(got.handle)
	waitFor(t, "backlog delivery", func() bool { return got.len() == n })

	if _, _, dropped := b.Stats(); dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	for i, m := range got.all() {
		if want := tid.Top(tid.MakeFamily(1, uint32(i+1))); m.TID != want {
			t.Fatalf("msg %d = %s, want %s (backlog must preserve arrival order)", i, m.TID, want)
		}
	}
}

// TestBacklogOverflowCountsDrops: handler-less arrivals beyond the
// backlog bound are loss and must be counted as such (the old code
// discarded them while counting them as received).
func TestBacklogOverflowCountsDrops(t *testing.T) {
	a, b := newTestPeer(t, 1), newTestPeer(t, 2)
	connect(t, a, b, 1, 2)

	const extra = 7
	for i := 0; i < backlogCap+extra; i++ {
		a.Send(1, 2, &wire.Msg{Kind: wire.KPrepare, TID: tid.Top(tid.MakeFamily(1, uint32(i+1)))})
	}
	waitFor(t, "overflow drops", func() bool {
		_, r, d := b.Stats()
		return r+d == backlogCap+extra
	})
	if _, r, d := b.Stats(); r != backlogCap || d != extra {
		t.Fatalf("received %d / dropped %d, want %d / %d", r, d, backlogCap, extra)
	}
}

// TestOversizeSendIsLoud: a message whose encoding exceeds
// wire.MaxDatagram must be refused at send time with a recorded
// error, not truncated in flight and lost as a mystery corrupt
// datagram the retry machinery can never mask.
func TestOversizeSendIsLoud(t *testing.T) {
	a, b := newTestPeer(t, 1), newTestPeer(t, 2)
	connect(t, a, b, 1, 2)
	var got collector
	b.SetHandler(got.handle)

	huge := &wire.Msg{Kind: wire.KCommitAck, TID: tid.Top(tid.MakeFamily(1, 1))}
	for i := 0; i < wire.MaxDatagram/16+1; i++ {
		huge.AckTIDs = append(huge.AckTIDs, tid.Top(tid.MakeFamily(2, uint32(i+1))))
	}
	var logged int
	a.SetLogf(func(string, ...any) { logged++ })
	a.Send(1, 2, huge)

	if sent, _, dropped := a.Stats(); sent != 0 || dropped != 1 {
		t.Fatalf("sent %d / dropped %d, want 0 / 1", sent, dropped)
	}
	if a.Oversize() != 1 {
		t.Fatalf("Oversize() = %d, want 1", a.Oversize())
	}
	if err := a.Err(); !errors.Is(err, wire.ErrOversize) {
		t.Fatalf("Err() = %v, want wire.ErrOversize", err)
	}
	if logged == 0 {
		t.Fatal("oversize refusal was not logged")
	}

	// A legal message still flows afterwards.
	a.Send(1, 2, &wire.Msg{Kind: wire.KPrepare, TID: tid.Top(tid.MakeFamily(1, 2))})
	waitFor(t, "legal message after refusal", func() bool { return got.len() == 1 })
}

// TestEveryKindRoundTripsOverUDP pushes one representative message of
// every wire kind through the full real-network path — marshal, UDP
// loopback, unmarshal, handler — and checks field-exact delivery.
func TestEveryKindRoundTripsOverUDP(t *testing.T) {
	a, b := newTestPeer(t, 1), newTestPeer(t, 2)
	connect(t, a, b, 1, 2)
	var got collector
	b.SetHandler(got.handle)

	var want []*wire.Msg
	for k := wire.KPrepare; k <= wire.KChildAbort; k++ {
		m := &wire.Msg{
			Kind:         k,
			TID:          tid.Top(tid.MakeFamily(1, uint32(k))),
			Parent:       tid.Top(tid.MakeFamily(1, 7)),
			Seq:          uint64(100 + k),
			Flags:        wire.FlagImmediateAck,
			Sites:        []tid.SiteID{1, 2, 3},
			CommitQuorum: 2,
			AbortQuorum:  2,
			Vote:         wire.VoteYes,
			Outcome:      wire.OutcomeCommit,
			State:        wire.NBReplicated,
			Votes:        []wire.SiteVote{{Site: 2, Vote: wire.VoteYes}},
			AckTIDs:      []tid.TID{tid.Top(tid.MakeFamily(2, uint32(k)))},
		}
		a.Send(1, 2, m)
		expect := *m
		expect.From, expect.To = 1, 2
		want = append(want, &expect)
	}
	waitFor(t, "all kinds to arrive", func() bool { return got.len() == len(want) })

	byKind := make(map[wire.Kind]*wire.Msg)
	for _, m := range got.all() {
		byKind[m.Kind] = m
	}
	for _, w := range want {
		g := byKind[w.Kind]
		if g == nil {
			t.Fatalf("kind %v never arrived", w.Kind)
		}
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("kind %v mismatch:\nsent %+v\n got %+v", w.Kind, w, g)
		}
	}
}

// TestFanoutReaddressesPerDestination: Multicast and SendAll marshal
// once and patch the destination per datagram; every receiver must
// still see its own site id in To.
func TestFanoutReaddressesPerDestination(t *testing.T) {
	coord := newTestPeer(t, 1)
	subs := make(map[tid.SiteID]*collector)
	var tos []tid.SiteID
	for id := tid.SiteID(2); id <= 4; id++ {
		p := newTestPeer(t, id)
		connect(t, coord, p, 1, id)
		c := &collector{}
		p.SetHandler(c.handle)
		subs[id] = c
		tos = append(tos, id)
	}

	msg := &wire.Msg{Kind: wire.KPrepare, TID: tid.Top(tid.MakeFamily(1, 1)), Sites: tos}
	coord.Multicast(1, tos, msg)
	coord.SendAll(1, tos, msg)

	for id, c := range subs {
		waitFor(t, fmt.Sprintf("site %d fan-out", id), func() bool { return c.len() == 2 })
		for _, m := range c.all() {
			if m.To != id || m.From != 1 {
				t.Fatalf("site %d got From=%v To=%v, want From=1 To=%d", id, m.From, m.To, id)
			}
		}
	}
	if sent, _, _ := coord.Stats(); sent != 2*len(tos) {
		t.Fatalf("sent = %d, want %d", sent, 2*len(tos))
	}
}

// BenchmarkFanout measures the coordinator's hottest send path: one
// prepare fanned out to three subordinates (marshal once + patch,
// versus the old marshal-per-destination).
func BenchmarkFanout(b *testing.B) {
	coord, err := NewUDPPeer(1, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer coord.Close()
	var tos []tid.SiteID
	for id := tid.SiteID(2); id <= 4; id++ {
		p, err := NewUDPPeer(id, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		p.SetHandler(func(Datagram) {})
		if err := coord.AddPeer(id, p.Addr()); err != nil {
			b.Fatal(err)
		}
		tos = append(tos, id)
	}
	msg := &wire.Msg{
		Kind: wire.KNBReplicate, TID: tid.Top(tid.MakeFamily(1, 1)),
		Sites: tos, CommitQuorum: 2, AbortQuorum: 2,
		Votes: []wire.SiteVote{{Site: 2, Vote: wire.VoteYes}, {Site: 3, Vote: wire.VoteYes}, {Site: 4, Vote: wire.VoteYes}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coord.Multicast(1, tos, msg)
	}
}
