// Package transport provides the inter-site datagram network.
//
// The paper's testbed was a 4 Mb/s IBM token ring without gateways;
// transaction managers exchange raw datagrams over it (10 ms each,
// Table 2) and the coordinator's serial send loop costs 1.7 ms per
// datagram — "the third prepare message is sent about 3.4 ms after
// the first" (§4.2). Multicast replaces that serial loop with a
// single send, which is exactly why it reduces the variance of
// distributed commit. This package models all of that: per-site send
// serialization, configurable latency and jitter, true multicast,
// message loss, site crashes, and network partitions.
package transport

import (
	"fmt"
	"time"

	"camelot/internal/rt"
	"camelot/internal/tid"
	"camelot/internal/trace"
)

// Datagram is one unreliable message. Payload is a protocol message
// (*wire.Msg for transaction-manager traffic, commman request/reply
// types for forwarded RPCs).
type Datagram struct {
	From    tid.SiteID
	To      tid.SiteID
	Payload any
}

// Handler receives inbound datagrams for one site. It runs on its own
// thread per delivery; implementations hand off to their own queues.
type Handler func(d Datagram)

// Sender is the datagram-transmission interface the transaction
// manager depends on: the simulated Network implements it, and so
// does the real UDPPeer, which is how the same protocol code runs on
// a physical network.
type Sender interface {
	// Send queues one unreliable datagram.
	Send(from, to tid.SiteID, payload any)
	// Multicast delivers one payload to every site in tos with a
	// single send.
	Multicast(from tid.SiteID, tos []tid.SiteID, payload any)
	// SendAll unicasts payload to each site in tos serially.
	SendAll(from tid.SiteID, tos []tid.SiteID, payload any)
}

// Config sets the network's timing and fault model.
type Config struct {
	// Latency is the one-way datagram time (paper: 10 ms).
	Latency time.Duration
	// SendCycle is the sender-side cost per datagram; consecutive
	// sends from one site are spaced by it (paper: 1.7 ms).
	SendCycle time.Duration
	// Jitter adds a uniform random [0, Jitter) scheduling delay per
	// send *at the sender*, and the delay pushes back the sender's
	// subsequent sends. A serial unicast fan-out therefore
	// accumulates one draw per datagram while a multicast pays a
	// single draw — which is why "much of the variance is created by
	// the coordinator's repeated sends" (§4.2) and multicast removes
	// it.
	Jitter time.Duration
	// LossRate drops datagrams with this probability (0 ≤ p < 1).
	LossRate float64
}

// Injector is an optional per-datagram fault hook, consulted at send
// time for every datagram (unreliable and reliable alike). Returning
// true drops the datagram. The injector runs with the network lock
// held: it must not call back into the Network or block — schedule
// side effects (crashes, partitions) through rt.Runtime.After instead.
// The chaos explorer uses this hook to count send points and to drop
// exactly the k-th datagram of a fault schedule.
type Injector func(from, to tid.SiteID, payload any) bool

// Shape is a Shaper's verdict for one unreliable datagram. Drop
// destroys it; Dup delivers that many extra copies; Delay adds to the
// one-way latency (of every copy). Reordering falls out of Delay: a
// delayed datagram arrives after datagrams sent later without delay.
type Shape struct {
	Drop  bool
	Dup   int
	Delay time.Duration
}

// Shaper is an optional per-datagram traffic-shaping hook — the
// Injector's many-valued generalization, carrying the netem/v1 link
// fault vocabulary (drop, duplicate, delay/reorder) so schedules
// written for the real network replay identically in the simulation.
// It is consulted at send time for every unreliable datagram, with
// the network lock held: it must not call back into the Network or
// block — schedule side effects through rt.Runtime.After instead.
// Reliable (RPC) traffic is not shaped; netem models datagram links.
type Shaper func(from, to tid.SiteID, payload any) Shape

// Network connects sites. It is safe for concurrent use from many
// runtime threads, and its fault switches (SetLossRate, SetDown,
// SetPartition, SetInjector) may be toggled at any moment mid-run:
// every datagram re-checks the current fault state at send and again
// at delivery time, and each toggle is recorded as a FaultInject or
// FaultClear trace event so a failing trace describes its own fault
// history.
type Network struct {
	r   rt.Runtime
	cfg Config
	tr  *trace.Collector

	mu        rt.Mutex
	handlers  map[tid.SiteID]Handler
	down      map[tid.SiteID]bool
	cut       map[[2]tid.SiteID]bool
	nextFree  map[tid.SiteID]rt.Time
	injector  Injector
	shaper    Shaper
	sent      int
	delivered int
	dropped   int
}

// NewNetwork returns an empty network with the given fault/timing
// model.
func NewNetwork(r rt.Runtime, cfg Config) *Network {
	n := &Network{
		r:        r,
		cfg:      cfg,
		handlers: make(map[tid.SiteID]Handler),
		down:     make(map[tid.SiteID]bool),
		cut:      make(map[[2]tid.SiteID]bool),
		nextFree: make(map[tid.SiteID]rt.Time),
	}
	n.mu = r.NewMutex()
	return n
}

// SetTrace installs the event collector (nil disables tracing). Call
// it before traffic flows.
func (n *Network) SetTrace(tr *trace.Collector) { n.tr = tr }

// Register installs the datagram handler for site, replacing any
// previous one (a recovered site re-registers). Registering clears the
// site's crashed state, with the matching FaultClear event if it was
// down.
func (n *Network) Register(site tid.SiteID, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[site] = h
	if n.down[site] {
		n.down[site] = false
		n.tr.FaultClear(site, 0, "down")
	}
}

// Send queues one datagram. Delivery is asynchronous and may never
// happen (loss, crash, partition) — exactly the guarantee the
// transaction managers' own timeout/retry machinery assumes.
func (n *Network) Send(from, to tid.SiteID, payload any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	leave := n.reserveSendLocked(from)
	n.deliverLocked(Datagram{From: from, To: to, Payload: payload}, leave)
}

// Multicast sends payload to every site in tos with a single send
// cycle and a single scheduling-delay draw.
func (n *Network) Multicast(from tid.SiteID, tos []tid.SiteID, payload any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	leave := n.reserveSendLocked(from)
	for _, to := range tos {
		n.deliverLocked(Datagram{From: from, To: to, Payload: payload}, leave)
	}
}

// SendAll unicasts payload to each site in tos, paying one send cycle
// and one scheduling-delay draw per datagram — the coordinator's
// serial send loop.
func (n *Network) SendAll(from tid.SiteID, tos []tid.SiteID, payload any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, to := range tos {
		leave := n.reserveSendLocked(from)
		n.deliverLocked(Datagram{From: from, To: to, Payload: payload}, leave)
	}
}

// SendReliable models connection-oriented traffic (the NetMsgServer
// RPC path): a caller-supplied one-way latency, no loss, no
// send-cycle serialization. Crashes and partitions still apply — a
// "reliable" connection to a dead site delivers nothing, which is
// what RPC timeouts detect.
func (n *Network) SendReliable(from, to tid.SiteID, payload any, latency time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sent++
	n.tr.MsgSend(from, to, payload)
	if n.injector != nil && n.injector(from, to, payload) {
		n.dropped++
		n.tr.FaultInject(from, to, "drop")
		n.tr.MsgDrop(from, to, payload)
		return
	}
	if n.down[from] {
		n.dropped++
		n.tr.MsgDrop(from, to, payload)
		return
	}
	d := Datagram{From: from, To: to, Payload: payload}
	n.r.After(latency, func() {
		n.mu.Lock()
		h := n.handlers[d.To]
		blocked := n.down[d.To] || n.down[d.From] || n.cut[linkKey(d.From, d.To)]
		if h == nil || blocked {
			n.dropped++
			n.tr.MsgDrop(d.From, d.To, d.Payload)
			n.mu.Unlock()
			return
		}
		n.delivered++
		n.tr.MsgRecv(d.To, d.From, d.Payload)
		n.mu.Unlock()
		h(d)
	})
}

// SetLossRate changes the datagram loss probability at runtime. The
// toggle is recorded as FaultInject (p > 0) or FaultClear (p == 0),
// but only when the rate actually changes, so redundant clears do not
// pollute the timeline.
func (n *Network) SetLossRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p == n.cfg.LossRate {
		return
	}
	n.cfg.LossRate = p
	if p > 0 {
		n.tr.FaultInject(0, 0, fmt.Sprintf("loss=%.2f", p))
	} else {
		n.tr.FaultClear(0, 0, "loss")
	}
}

// SetDown marks site crashed (true) or recovered (false). Datagrams
// to or from a crashed site vanish, including datagrams already in
// flight (delivery re-checks). Each effective toggle is recorded as a
// FaultInject/FaultClear event.
func (n *Network) SetDown(site tid.SiteID, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down[site] == down {
		return
	}
	n.down[site] = down
	if down {
		n.tr.FaultInject(site, 0, "down")
	} else {
		n.tr.FaultClear(site, 0, "down")
	}
}

// SetPartition cuts (true) or heals (false) the link between a and b,
// in both directions. Datagrams in flight across the link when it is
// cut are lost (delivery re-checks). Each effective toggle is recorded
// as a FaultInject/FaultClear event.
func (n *Network) SetPartition(a, b tid.SiteID, broken bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := linkKey(a, b)
	if n.cut[key] == broken {
		return
	}
	n.cut[key] = broken
	if broken {
		n.tr.FaultInject(a, b, "cut")
	} else {
		n.tr.FaultClear(a, b, "cut")
	}
}

// SetInjector installs (or, with nil, removes) the per-datagram fault
// hook. Safe to toggle mid-run.
func (n *Network) SetInjector(f Injector) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.injector = f
}

// SetShaper installs (or, with nil, removes) the per-datagram
// traffic-shaping hook. Safe to toggle mid-run.
func (n *Network) SetShaper(f Shaper) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.shaper = f
}

// Stats reports datagrams sent, delivered, and dropped.
func (n *Network) Stats() (sent, delivered, dropped int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.delivered, n.dropped
}

// reserveSendLocked serializes sends from one site: each costs a send
// cycle plus a random scheduling delay, and both push back the
// sender's next send. It returns the moment the datagram leaves.
func (n *Network) reserveSendLocked(from tid.SiteID) rt.Time {
	now := n.r.Now()
	at := n.nextFree[from]
	if at < now {
		at = now
	}
	leave := at + n.cfg.SendCycle + n.jitterLocked()
	n.nextFree[from] = leave
	return leave
}

func (n *Network) jitterLocked() time.Duration {
	if n.cfg.Jitter <= 0 {
		return 0
	}
	return time.Duration(n.r.Rand().Int63n(int64(n.cfg.Jitter)))
}

// deliverLocked schedules the datagram's arrival and drops it if the
// fault model says so. Drop decisions happen at send time; crash and
// partition state are re-checked at delivery time, so a datagram in
// flight when its destination dies is lost too.
func (n *Network) deliverLocked(d Datagram, leave rt.Time) {
	n.sent++
	n.tr.MsgSend(d.From, d.To, d.Payload)
	if n.injector != nil && n.injector(d.From, d.To, d.Payload) {
		n.dropped++
		n.tr.FaultInject(d.From, d.To, "drop")
		n.tr.MsgDrop(d.From, d.To, d.Payload)
		return
	}
	if n.down[d.From] {
		n.dropped++
		n.tr.MsgDrop(d.From, d.To, d.Payload)
		return
	}
	if n.cfg.LossRate > 0 && n.r.Rand().Float64() < n.cfg.LossRate {
		n.dropped++
		n.tr.MsgDrop(d.From, d.To, d.Payload)
		return
	}
	copies, extra := 1, time.Duration(0)
	if n.shaper != nil {
		sh := n.shaper(d.From, d.To, d.Payload)
		if sh.Drop {
			n.dropped++
			n.tr.FaultInject(d.From, d.To, "drop")
			n.tr.MsgDrop(d.From, d.To, d.Payload)
			return
		}
		if sh.Dup > 0 {
			copies += sh.Dup
			n.tr.FaultInject(d.From, d.To, fmt.Sprintf("dup=%d", sh.Dup))
		}
		if sh.Delay > 0 {
			extra = sh.Delay
			n.tr.FaultInject(d.From, d.To, fmt.Sprintf("delay=%s", sh.Delay))
		}
	}
	arriveIn := leave - n.r.Now() + n.cfg.Latency + extra
	for i := 0; i < copies; i++ {
		if i > 0 {
			// Network-made duplicate: counted as its own send so the
			// sent/delivered/dropped ledger still balances.
			n.sent++
			n.tr.MsgSend(d.From, d.To, d.Payload)
		}
		n.arriveLocked(d, arriveIn)
	}
}

// arriveLocked schedules one copy's arrival; crash and partition
// state are re-checked at delivery time.
func (n *Network) arriveLocked(d Datagram, arriveIn time.Duration) {
	n.r.After(arriveIn, func() {
		n.mu.Lock()
		h := n.handlers[d.To]
		blocked := n.down[d.To] || n.down[d.From] || n.cut[linkKey(d.From, d.To)]
		if h == nil || blocked {
			n.dropped++
			n.tr.MsgDrop(d.From, d.To, d.Payload)
			n.mu.Unlock()
			return
		}
		n.delivered++
		n.tr.MsgRecv(d.To, d.From, d.Payload)
		n.mu.Unlock()
		h(d)
	})
}

func linkKey(a, b tid.SiteID) [2]tid.SiteID {
	if a > b {
		a, b = b, a
	}
	return [2]tid.SiteID{a, b}
}
