//go:build linux && (amd64 || arm64)

package transport

import (
	"fmt"
	"testing"

	"camelot/internal/tid"
	"camelot/internal/wire"
)

// fanThree sends count fan-outs from a fresh coordinator to three
// fresh receivers and checks every receiver saw every message with
// its own site id patched into To. Shared by the batched-path and
// portable-fallback tests so both paths are held to the same
// contract.
func fanThree(t *testing.T, count int) {
	t.Helper()
	coord := newTestPeer(t, 1)
	subs := make(map[tid.SiteID]*collector)
	var tos []tid.SiteID
	for id := tid.SiteID(2); id <= 4; id++ {
		p := newTestPeer(t, id)
		connect(t, coord, p, 1, id)
		c := &collector{}
		p.SetHandler(c.handle)
		subs[id] = c
		tos = append(tos, id)
	}
	for i := 0; i < count; i++ {
		msg := &wire.Msg{Kind: wire.KNBReplicate, TID: tid.Top(tid.MakeFamily(1, uint32(i+1))),
			Sites: tos, CommitQuorum: 2, AbortQuorum: 2}
		coord.SendAll(1, tos, msg)
	}
	for id, c := range subs {
		waitFor(t, fmt.Sprintf("site %d batch fan-out", id), func() bool { return c.len() == count })
		for _, m := range c.all() {
			if m.To != id || m.From != 1 {
				t.Fatalf("site %d got From=%v To=%v, want From=1 To=%d", id, m.From, m.To, id)
			}
		}
	}
	if sent, _, dropped := coord.Stats(); sent != count*len(tos) || dropped != 0 {
		t.Fatalf("sent %d / dropped %d, want %d / 0", sent, dropped, count*len(tos))
	}
}

// TestBatchFanout exercises the sendmmsg fast path (and recvmmsg on
// the receiving sockets) with enough fan-outs to recycle the pooled
// scratch repeatedly.
func TestBatchFanout(t *testing.T) {
	if mmsgDisabled.Load() {
		t.Skip("kernel refused sendmmsg/recvmmsg")
	}
	fanThree(t, 50)
}

// TestPortableFallback forces the portable one-syscall-per-datagram
// paths (the non-linux build and exotic-kernel behavior) and holds
// them to the identical contract.
func TestPortableFallback(t *testing.T) {
	was := mmsgDisabled.Load()
	mmsgDisabled.Store(true)
	defer mmsgDisabled.Store(was)
	fanThree(t, 50)
}

// TestSendBatchDeclinesNonBatchable: a fan-out including a
// destination with no registered address must decline the batch path
// so the portable loop does its per-destination drop accounting.
func TestSendBatchDeclinesNonBatchable(t *testing.T) {
	a, b := newTestPeer(t, 1), newTestPeer(t, 2)
	connect(t, a, b, 1, 2)
	var got collector
	b.SetHandler(got.handle)

	// Site 9 was never registered: the batch path must refuse the
	// whole fan-out, the portable loop then sends to 2 and counts the
	// drop for 9.
	a.SendAll(1, []tid.SiteID{2, 9}, &wire.Msg{Kind: wire.KPrepare, TID: tid.Top(tid.MakeFamily(1, 1))})
	waitFor(t, "deliverable half of fan-out", func() bool { return got.len() == 1 })
	if sent, _, dropped := a.Stats(); sent != 1 || dropped != 1 {
		t.Fatalf("sent %d / dropped %d, want 1 / 1", sent, dropped)
	}
}
