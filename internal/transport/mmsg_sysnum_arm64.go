//go:build linux && arm64

package transport

// sysSENDMMSG is sendmmsg(2)'s syscall number on linux/arm64 (the
// generic 64-bit table). See mmsg_sysnum_amd64.go for why it is
// defined here rather than taken from the syscall package.
const sysSENDMMSG = 269
