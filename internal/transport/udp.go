package transport

import (
	"fmt"
	"net"
	"sync"

	"camelot/internal/tid"
	"camelot/internal/wire"
)

// UDPPeer is a real-network Sender: transaction-manager datagrams are
// marshaled with the wire codec and carried over UDP, with exactly
// the delivery guarantees the protocols were built for — none. The
// transaction managers' own timeout/retry and idempotent-answer
// machinery provides the reliability, just as it did over the
// paper's token ring.
//
// A UDPPeer carries only *wire.Msg payloads (the TranMan-to-TranMan
// traffic of §3.2/§3.3); the communication-manager RPC path is
// connection-oriented and would ride TCP in a full deployment.
type UDPPeer struct {
	self tid.SiteID
	conn *net.UDPConn

	mu      sync.Mutex
	peers   map[tid.SiteID]*net.UDPAddr
	handler Handler
	closed  bool
	sent    int
	recv    int
	dropped int
}

// NewUDPPeer binds a UDP socket for site self at listenAddr (for
// example "127.0.0.1:0") and starts its reader.
func NewUDPPeer(self tid.SiteID, listenAddr string) (*UDPPeer, error) {
	addr, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", listenAddr, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	p := &UDPPeer{
		self:  self,
		conn:  conn,
		peers: make(map[tid.SiteID]*net.UDPAddr),
	}
	//lint:rawgo host-side UDP read loop; this transport never runs under the simulation kernel
	go p.readLoop()
	return p, nil
}

// Addr returns the bound local address, for exchanging with peers.
func (p *UDPPeer) Addr() string { return p.conn.LocalAddr().String() }

// AddPeer registers the address of another site.
func (p *UDPPeer) AddPeer(id tid.SiteID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: resolve peer %q: %w", addr, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.peers[id] = ua
	return nil
}

// SetHandler installs the inbound datagram handler.
func (p *UDPPeer) SetHandler(h Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.handler = h
}

// Send implements Sender. Non-*wire.Msg payloads and unknown peers
// are dropped silently, matching datagram semantics.
func (p *UDPPeer) Send(from, to tid.SiteID, payload any) {
	msg, ok := payload.(*wire.Msg)
	if !ok {
		p.drop()
		return
	}
	// Fill in the addressing the simulated network carries out of
	// band; receivers rely on msg.From for replies.
	m := *msg
	m.From = from
	m.To = to
	buf := wire.Marshal(&m)

	p.mu.Lock()
	addr := p.peers[to]
	closed := p.closed
	p.mu.Unlock()
	if addr == nil || closed {
		p.drop()
		return
	}
	if _, err := p.conn.WriteToUDP(buf, addr); err != nil {
		p.drop()
		return
	}
	p.mu.Lock()
	p.sent++
	p.mu.Unlock()
}

// Multicast implements Sender. Loopback deployments have no real
// multicast group, so this is a fan-out of unicasts; the latency
// semantics that distinguish multicast in the simulator are a
// property of the medium, not of this API.
func (p *UDPPeer) Multicast(from tid.SiteID, tos []tid.SiteID, payload any) {
	for _, to := range tos {
		p.Send(from, to, payload)
	}
}

// SendAll implements Sender.
func (p *UDPPeer) SendAll(from tid.SiteID, tos []tid.SiteID, payload any) {
	for _, to := range tos {
		p.Send(from, to, payload)
	}
}

// Stats reports datagrams sent, received, and dropped at this peer.
func (p *UDPPeer) Stats() (sent, received, dropped int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent, p.recv, p.dropped
}

// Close shuts the socket down; the read loop exits.
func (p *UDPPeer) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	return p.conn.Close()
}

func (p *UDPPeer) drop() {
	p.mu.Lock()
	p.dropped++
	p.mu.Unlock()
}

func (p *UDPPeer) readLoop() {
	buf := make([]byte, 64*1024)
	for {
		n, _, err := p.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		msg, err := wire.Unmarshal(buf[:n])
		if err != nil {
			p.drop()
			continue // corrupt datagrams vanish, like any other loss
		}
		p.mu.Lock()
		h := p.handler
		p.recv++
		p.mu.Unlock()
		if h != nil {
			h(Datagram{From: msg.From, To: p.self, Payload: msg})
		}
	}
}

// UDPPeer must satisfy Sender.
var _ Sender = (*UDPPeer)(nil)
