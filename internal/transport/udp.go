package transport

import (
	"fmt"
	"net"
	"sync"
	"syscall"

	"camelot/internal/tid"
	"camelot/internal/trace"
	"camelot/internal/wire"
)

// backlogCap bounds the datagrams a UDPPeer parks while no handler is
// installed. Startup races between peers are the norm in a real
// cluster — the socket must bind (so the address can be exchanged)
// before the transaction manager that will consume its traffic
// exists — so early arrivals are buffered rather than discarded, and
// arrivals beyond the bound are counted as drops like any other loss.
const backlogCap = 128

// UDPPeer is a real-network Sender: transaction-manager datagrams are
// marshaled with the wire codec and carried over UDP, with exactly
// the delivery guarantees the protocols were built for — none. The
// transaction managers' own timeout/retry and idempotent-answer
// machinery provides the reliability, just as it did over the
// paper's token ring.
//
// A UDPPeer carries only *wire.Msg payloads (the TranMan-to-TranMan
// traffic of §3.2/§3.3); the communication-manager RPC path is
// connection-oriented and would ride TCP in a full deployment.
// bufPool recycles send-side datagram buffers. A buffer crosses into
// the kernel synchronously inside WriteToUDP/sendmmsg, so it can be
// recycled as soon as the send call returns; once the pool's buffers
// have grown to the traffic's working size, marshaling a datagram
// allocates nothing (wire.AppendDatagram into the recycled slice).
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { bufPool.Put(b) }

type UDPPeer struct {
	self tid.SiteID
	conn *net.UDPConn
	rc   syscall.RawConn

	mu       sync.Mutex
	peers    map[tid.SiteID]*net.UDPAddr
	handler  Handler
	backlog  []Datagram
	closed   bool
	sent     int
	recv     int
	dropped  int
	oversize int
	lastErr  error
	tr       *trace.Collector
	logf     func(format string, args ...any)
}

// NewUDPPeer binds a UDP socket for site self at listenAddr (for
// example "127.0.0.1:0") and starts its reader.
func NewUDPPeer(self tid.SiteID, listenAddr string) (*UDPPeer, error) {
	addr, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", listenAddr, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: raw conn: %w", err)
	}
	p := &UDPPeer{
		self:  self,
		conn:  conn,
		rc:    rc,
		peers: make(map[tid.SiteID]*net.UDPAddr),
	}
	//lint:rawgo host-side UDP read loop; this transport never runs under the simulation kernel
	go p.readLoop()
	return p, nil
}

// Addr returns the bound local address, for exchanging with peers.
func (p *UDPPeer) Addr() string { return p.conn.LocalAddr().String() }

// AddPeer registers the address of another site, replacing any
// previous one (a site that restarted on a new port re-announces).
func (p *UDPPeer) AddPeer(id tid.SiteID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: resolve peer %q: %w", addr, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.peers[id] = ua
	return nil
}

// SetTrace installs an optional event collector; sends, receives, and
// drops are recorded on its timeline. Call before traffic flows.
func (p *UDPPeer) SetTrace(tr *trace.Collector) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tr = tr
}

// SetLogf installs an optional diagnostic logger. Datagram loss is
// normal and stays quiet, but losses that retry can never mask —
// oversize messages, corrupt datagrams — are reported through it so a
// deployment does not fail silently.
func (p *UDPPeer) SetLogf(fn func(format string, args ...any)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.logf = fn
}

// SetHandler installs the inbound datagram handler and delivers any
// datagrams that arrived before it existed, in arrival order.
func (p *UDPPeer) SetHandler(h Handler) {
	p.mu.Lock()
	p.handler = h
	parked := p.backlog
	p.backlog = nil
	p.mu.Unlock()
	for _, d := range parked {
		h(d)
	}
}

// Send implements Sender. Non-*wire.Msg payloads and unknown peers
// are dropped (counted, and reported through the trace collector),
// matching datagram semantics; oversize messages additionally record
// an error retrievable via Err, because no retry can ever mask them.
func (p *UDPPeer) Send(from, to tid.SiteID, payload any) {
	msg, ok := payload.(*wire.Msg)
	if !ok {
		p.drop(from, to, payload, "non-wire payload")
		return
	}
	// Fill in the addressing the simulated network carries out of
	// band; receivers rely on msg.From for replies.
	m := *msg
	m.From = from
	m.To = to
	bp := getBuf()
	buf, err := wire.AppendDatagram((*bp)[:0], &m)
	if err != nil {
		putBuf(bp)
		p.oversizeDrop(from, to, &m, err)
		return
	}
	p.transmit(to, buf, &m)
	*bp = buf[:0]
	putBuf(bp)
}

// Multicast implements Sender. Loopback deployments have no real
// multicast group, so this is a fan-out of unicasts; the latency
// semantics that distinguish multicast in the simulator are a
// property of the medium, not of this API.
func (p *UDPPeer) Multicast(from tid.SiteID, tos []tid.SiteID, payload any) {
	p.fanout(from, tos, payload)
}

// SendAll implements Sender.
func (p *UDPPeer) SendAll(from tid.SiteID, tos []tid.SiteID, payload any) {
	p.fanout(from, tos, payload)
}

// fanout sends one payload to every destination, marshaling once and
// re-addressing the buffer per destination (wire.PatchTo) — these are
// the coordinator's hottest sends (§4.2), and re-encoding an
// identical message per subordinate was pure waste.
func (p *UDPPeer) fanout(from tid.SiteID, tos []tid.SiteID, payload any) {
	msg, ok := payload.(*wire.Msg)
	if !ok {
		for _, to := range tos {
			p.drop(from, to, payload, "non-wire payload")
		}
		return
	}
	m := *msg
	m.From = from
	m.To = 0
	bp := getBuf()
	buf, err := wire.AppendDatagram((*bp)[:0], &m)
	if err != nil {
		putBuf(bp)
		for _, to := range tos {
			p.oversizeDrop(from, to, &m, err)
		}
		return
	}
	// Batched fast path: one sendmmsg syscall for the whole fan-out
	// (linux; falls back if a peer is missing, non-IPv4, or the kernel
	// refuses the syscall).
	if len(tos) > 1 && p.sendBatch(tos, buf, &m) {
		*bp = buf[:0]
		putBuf(bp)
		return
	}
	for _, to := range tos {
		wire.PatchTo(buf, to)
		m.To = to
		p.transmit(to, buf, &m)
	}
	*bp = buf[:0]
	putBuf(bp)
}

// transmit puts one already marshaled datagram on the wire.
func (p *UDPPeer) transmit(to tid.SiteID, buf []byte, msg *wire.Msg) {
	p.mu.Lock()
	addr := p.peers[to]
	closed := p.closed
	p.mu.Unlock()
	if addr == nil || closed {
		p.drop(msg.From, to, msg, "no address for peer")
		return
	}
	if _, err := p.conn.WriteToUDP(buf, addr); err != nil {
		p.drop(msg.From, to, msg, err.Error())
		return
	}
	p.sendDone(to, msg)
}

// sendDone accounts one datagram successfully handed to the kernel,
// from either the portable write path or the batched syscall path.
func (p *UDPPeer) sendDone(to tid.SiteID, msg *wire.Msg) {
	p.mu.Lock()
	p.sent++
	tr := p.tr
	p.mu.Unlock()
	tr.MsgSend(msg.From, to, msg)
}

// Stats reports datagrams sent, received, and dropped at this peer.
func (p *UDPPeer) Stats() (sent, received, dropped int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent, p.recv, p.dropped
}

// Oversize reports how many sends were refused because the message
// exceeded wire.MaxDatagram. These are included in the drop count but
// deserve their own ledger: they are a protocol bug, not weather.
func (p *UDPPeer) Oversize() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.oversize
}

// Err returns the most recent send error that loss-masking cannot
// recover from (currently only wire.ErrOversize), or nil.
func (p *UDPPeer) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastErr
}

// Close shuts the socket down; the read loop exits.
func (p *UDPPeer) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	return p.conn.Close()
}

// drop counts one lost datagram and reports it to the trace timeline.
func (p *UDPPeer) drop(from, to tid.SiteID, payload any, why string) {
	p.mu.Lock()
	p.dropped++
	tr, logf := p.tr, p.logf
	p.mu.Unlock()
	tr.MsgDrop(from, to, payload)
	if logf != nil {
		logf("transport: site%d: dropped datagram to site%d: %s", p.self, to, why)
	}
}

// oversizeDrop is the loud path for a message that can never fit one
// datagram: counted separately, recorded as a sticky error, and
// always logged — a silent drop here would be unmaskable loss.
func (p *UDPPeer) oversizeDrop(from, to tid.SiteID, msg *wire.Msg, err error) {
	p.mu.Lock()
	p.dropped++
	p.oversize++
	p.lastErr = err
	tr, logf := p.tr, p.logf
	p.mu.Unlock()
	tr.MsgDrop(from, to, msg)
	if logf != nil {
		logf("transport: site%d: refused send to site%d: %v", p.self, to, err)
	}
}

func (p *UDPPeer) readLoop() {
	// The linux fast path drains the socket with recvmmsg — many
	// datagrams per syscall — and returns true when the socket closes.
	// It returns false only if the kernel refuses the syscall, in
	// which case the portable one-datagram-per-read loop takes over.
	if p.readBatch() {
		return
	}
	// One byte beyond the legal maximum so truncation is detectable:
	// a read that fills the whole buffer did not fit and cannot be a
	// legal message.
	buf := make([]byte, wire.MaxDatagram+1)
	for {
		n, _, err := p.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		p.deliver(buf[:n])
	}
}

// deliver decodes one received datagram and hands it to the handler
// (or the backlog). The Msg is freshly allocated per datagram on
// purpose: the handler chain (core.Manager.Deliver) parks the pointer
// on an asynchronous work queue, so recycling it here would be a
// use-after-recycle.
func (p *UDPPeer) deliver(data []byte) {
	if len(data) > wire.MaxDatagram {
		p.drop(0, p.self, nil, "datagram exceeds wire.MaxDatagram")
		return
	}
	msg, err := wire.Unmarshal(data)
	if err != nil {
		p.drop(0, p.self, nil, fmt.Sprintf("corrupt datagram: %v", err))
		return
	}
	d := Datagram{From: msg.From, To: p.self, Payload: msg}
	p.mu.Lock()
	h := p.handler
	if h == nil {
		// No handler yet: park the datagram until SetHandler. An
		// overflowing backlog is loss, and is counted as such —
		// the old behavior (count as received, deliver to no one)
		// was a silent-loss bug.
		if len(p.backlog) < backlogCap {
			p.backlog = append(p.backlog, d)
			p.recv++
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
		p.drop(msg.From, p.self, msg, "no handler and backlog full")
		return
	}
	p.recv++
	tr := p.tr
	p.mu.Unlock()
	tr.MsgRecv(p.self, msg.From, msg)
	h(d)
}

// UDPPeer must satisfy Sender.
var _ Sender = (*UDPPeer)(nil)
