//go:build !linux || !(amd64 || arm64)

package transport

import (
	"camelot/internal/tid"
	"camelot/internal/wire"
)

// sendBatch is the non-linux stub: no batched syscalls, the portable
// one-write-per-destination loop always runs.
func (p *UDPPeer) sendBatch(tos []tid.SiteID, buf []byte, m *wire.Msg) bool {
	return false
}

// readBatch is the non-linux stub: the portable read loop always runs.
func (p *UDPPeer) readBatch() bool { return false }
