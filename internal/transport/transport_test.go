package transport

import (
	"testing"
	"time"

	"camelot/internal/rt"
	"camelot/internal/sim"
	"camelot/internal/stats"
	"camelot/internal/tid"
)

func cfg() Config {
	return Config{Latency: 10 * time.Millisecond, SendCycle: 1700 * time.Microsecond}
}

func TestSendDeliversWithLatency(t *testing.T) {
	k := sim.New(1)
	n := NewNetwork(k, cfg())
	var at rt.Time
	var got Datagram
	n.Register(2, func(d Datagram) { at, got = k.Now(), d })
	k.Go("main", func() { n.Send(1, 2, "hello") })
	k.Run()
	// One send cycle + one-way latency.
	if want := 11700 * time.Microsecond; at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
	if got.From != 1 || got.To != 2 || got.Payload != "hello" {
		t.Errorf("datagram = %+v", got)
	}
}

func TestSerialSendsSpacedBySendCycle(t *testing.T) {
	k := sim.New(1)
	n := NewNetwork(k, cfg())
	var arrivals []rt.Time
	for s := tid.SiteID(2); s <= 4; s++ {
		n.Register(s, func(d Datagram) { arrivals = append(arrivals, k.Now()) })
	}
	k.Go("main", func() { n.SendAll(1, []tid.SiteID{2, 3, 4}, "prepare") })
	k.Run()
	if len(arrivals) != 3 {
		t.Fatalf("delivered %d datagrams, want 3", len(arrivals))
	}
	// "The third prepare message is sent about 3.4ms after the first."
	if gap := arrivals[2] - arrivals[0]; gap != 3400*time.Microsecond {
		t.Errorf("first-to-third gap = %v, want 3.4ms", gap)
	}
}

func TestMulticastSingleCycle(t *testing.T) {
	k := sim.New(1)
	n := NewNetwork(k, cfg())
	var arrivals []rt.Time
	for s := tid.SiteID(2); s <= 4; s++ {
		n.Register(s, func(d Datagram) { arrivals = append(arrivals, k.Now()) })
	}
	k.Go("main", func() { n.Multicast(1, []tid.SiteID{2, 3, 4}, "prepare") })
	k.Run()
	if len(arrivals) != 3 {
		t.Fatalf("delivered %d datagrams, want 3", len(arrivals))
	}
	for _, a := range arrivals {
		if a != arrivals[0] {
			t.Fatalf("multicast arrivals not simultaneous: %v", arrivals)
		}
	}
}

func TestMulticastReducesArrivalSpread(t *testing.T) {
	// With jitter enabled, unicast fan-out draws jitter per datagram
	// while multicast shares one draw, so the spread of last-arrival
	// times across trials must be smaller for multicast — the §4.2
	// variance observation.
	spread := func(multicast bool) float64 {
		last := &stats.Sample{}
		for trial := 0; trial < 200; trial++ {
			k := sim.New(int64(trial))
			c := cfg()
			c.Jitter = 8 * time.Millisecond
			n := NewNetwork(k, c)
			var latest rt.Time
			for s := tid.SiteID(2); s <= 4; s++ {
				n.Register(s, func(d Datagram) {
					if k.Now() > latest {
						latest = k.Now()
					}
				})
			}
			k.Go("main", func() {
				if multicast {
					n.Multicast(1, []tid.SiteID{2, 3, 4}, "p")
				} else {
					n.SendAll(1, []tid.SiteID{2, 3, 4}, "p")
				}
			})
			k.Run()
			last.AddDuration(time.Duration(latest))
		}
		return last.StdDev()
	}
	uni, multi := spread(false), spread(true)
	if multi >= uni {
		t.Errorf("multicast stddev %.2f not below unicast %.2f", multi, uni)
	}
}

func TestCrashedSiteReceivesNothing(t *testing.T) {
	k := sim.New(1)
	n := NewNetwork(k, cfg())
	got := 0
	n.Register(2, func(d Datagram) { got++ })
	k.Go("main", func() {
		n.SetDown(2, true)
		n.Send(1, 2, "x")
		k.Sleep(50 * time.Millisecond)
		n.SetDown(2, false)
		n.Send(1, 2, "y")
	})
	k.Run()
	if got != 1 {
		t.Errorf("delivered %d datagrams, want 1 (after recovery only)", got)
	}
}

func TestCrashedSenderSendsNothing(t *testing.T) {
	k := sim.New(1)
	n := NewNetwork(k, cfg())
	got := 0
	n.Register(2, func(d Datagram) { got++ })
	k.Go("main", func() {
		n.SetDown(1, true)
		n.Send(1, 2, "x")
	})
	k.Run()
	if got != 0 {
		t.Errorf("crashed sender delivered %d datagrams", got)
	}
}

func TestInFlightDatagramLostOnCrash(t *testing.T) {
	k := sim.New(1)
	n := NewNetwork(k, cfg())
	got := 0
	n.Register(2, func(d Datagram) { got++ })
	k.Go("main", func() {
		n.Send(1, 2, "x")
		k.Sleep(5 * time.Millisecond) // datagram is mid-flight
		n.SetDown(2, true)
	})
	k.Run()
	if got != 0 {
		t.Errorf("in-flight datagram survived destination crash")
	}
}

func TestPartitionCutsBothDirections(t *testing.T) {
	k := sim.New(1)
	n := NewNetwork(k, cfg())
	got := 0
	n.Register(1, func(d Datagram) { got++ })
	n.Register(2, func(d Datagram) { got++ })
	n.Register(3, func(d Datagram) { got++ })
	k.Go("main", func() {
		n.SetPartition(1, 2, true)
		n.Send(1, 2, "a")
		n.Send(2, 1, "b")
		n.Send(1, 3, "c") // unaffected link
		k.Sleep(50 * time.Millisecond)
		n.SetPartition(1, 2, false)
		n.Send(1, 2, "d")
	})
	k.Run()
	if got != 2 {
		t.Errorf("delivered %d datagrams, want 2 (cross-partition lost)", got)
	}
}

func TestLossRateDropsRoughlyThatFraction(t *testing.T) {
	k := sim.New(1)
	c := cfg()
	c.LossRate = 0.3
	n := NewNetwork(k, c)
	got := 0
	n.Register(2, func(d Datagram) { got++ })
	k.Go("main", func() {
		for i := 0; i < 1000; i++ {
			n.Send(1, 2, i)
		}
	})
	k.Run()
	if got < 600 || got > 800 {
		t.Errorf("delivered %d of 1000 at 30%% loss, want ≈700", got)
	}
	sent, delivered, dropped := n.Stats()
	if sent != 1000 || delivered != got || delivered+dropped != sent {
		t.Errorf("stats inconsistent: sent=%d delivered=%d dropped=%d", sent, delivered, dropped)
	}
}

func TestUnregisteredDestinationDrops(t *testing.T) {
	k := sim.New(1)
	n := NewNetwork(k, cfg())
	k.Go("main", func() { n.Send(1, 99, "void") })
	k.Run()
	_, delivered, dropped := n.Stats()
	if delivered != 0 || dropped != 1 {
		t.Errorf("delivered=%d dropped=%d, want 0/1", delivered, dropped)
	}
}

func TestHandlerReplacementOnRecovery(t *testing.T) {
	k := sim.New(1)
	n := NewNetwork(k, cfg())
	old, new_ := 0, 0
	n.Register(2, func(d Datagram) { old++ })
	k.Go("main", func() {
		n.Register(2, func(d Datagram) { new_++ })
		n.Send(1, 2, "x")
	})
	k.Run()
	if old != 0 || new_ != 1 {
		t.Errorf("old handler got %d, new got %d; want 0/1", old, new_)
	}
}

func TestShaperDupDeliversExtraCopies(t *testing.T) {
	k := sim.New(1)
	n := NewNetwork(k, cfg())
	var got []Datagram
	n.Register(2, func(d Datagram) { got = append(got, d) })
	n.SetShaper(func(from, to tid.SiteID, payload any) Shape {
		return Shape{Dup: 2}
	})
	k.Go("main", func() { n.Send(1, 2, "x") })
	k.Run()
	if len(got) != 3 {
		t.Fatalf("delivered %d copies, want 3 (original + 2 dups)", len(got))
	}
	sent, delivered, dropped := n.Stats()
	if sent != 3 || delivered != 3 || dropped != 0 {
		t.Errorf("stats = (%d,%d,%d), want (3,3,0)", sent, delivered, dropped)
	}
}

func TestShaperDelayReordersAgainstLaterSends(t *testing.T) {
	k := sim.New(1)
	n := NewNetwork(k, cfg())
	var order []string
	n.Register(2, func(d Datagram) { order = append(order, d.Payload.(string)) })
	n.SetShaper(func(from, to tid.SiteID, payload any) Shape {
		if payload == "first" {
			return Shape{Delay: 50 * time.Millisecond}
		}
		return Shape{}
	})
	k.Go("main", func() {
		n.Send(1, 2, "first")
		n.Send(1, 2, "second")
	})
	k.Run()
	if len(order) != 2 || order[0] != "second" || order[1] != "first" {
		t.Fatalf("arrival order = %v, want [second first]", order)
	}
}

func TestShaperDropCounts(t *testing.T) {
	k := sim.New(1)
	n := NewNetwork(k, cfg())
	delivered := 0
	n.Register(2, func(d Datagram) { delivered++ })
	n.SetShaper(func(from, to tid.SiteID, payload any) Shape {
		return Shape{Drop: true}
	})
	k.Go("main", func() { n.Send(1, 2, "x") })
	k.Run()
	if delivered != 0 {
		t.Fatalf("shaped-drop datagram was delivered")
	}
	if _, _, dropped := n.Stats(); dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
}
