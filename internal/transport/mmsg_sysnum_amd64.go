//go:build linux && amd64

package transport

// sysSENDMMSG is sendmmsg(2)'s syscall number on linux/amd64. The
// std syscall package's number table was frozen before sendmmsg was
// added to the kernel, so the constant lives here (SYS_RECVMMSG made
// the freeze and comes from the package).
const sysSENDMMSG = 307
