//go:build linux && (amd64 || arm64)

package transport

import (
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"

	"camelot/internal/tid"
	"camelot/internal/wire"
)

// Batched UDP syscalls: sendmmsg(2) puts a whole fan-out on the wire
// in one kernel crossing, recvmmsg(2) drains a burst of inbound
// datagrams in one. Per-datagram syscall overhead is the dominant
// transport cost once the codec stops allocating (ROADMAP item 3),
// and the commit protocols are all fan-out shaped: one prepare to N
// subordinates, one outcome to N, one 2a to 2F+1 acceptors.
//
// Everything here is reached through net.UDPConn's SyscallConn, so
// the runtime netpoller stays in charge of readiness: a Read/Write
// callback returning false on EAGAIN parks the goroutine exactly as
// a blocking conn.ReadFromUDP would.

// recvBatchSize is how many datagrams one recvmmsg call may drain.
// Each slot holds a full-size datagram buffer (wire.MaxDatagram+1 for
// truncation detection), so the per-peer cost is recvBatchSize×64 KiB.
const recvBatchSize = 8

// mmsgDisabled latches when the kernel refuses the batched syscalls
// (ENOSYS on exotic kernels/emulators); every peer then uses the
// portable loop for the rest of the process lifetime.
var mmsgDisabled atomic.Bool

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled
// datagram length. Go's struct padding matches the C layout on
// linux/amd64 and linux/arm64 (msghdr is 8-aligned, so the trailing
// uint32 pads the struct to the same 8-byte multiple as C).
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
}

// mmsgScratch is the per-call scratch for a batched send: headers,
// iovecs, raw sockaddrs, and per-destination patched buffers. Pooled
// so a steady-state fan-out allocates nothing.
type mmsgScratch struct {
	hdrs []mmsghdr
	iovs []syscall.Iovec
	sas  []syscall.RawSockaddrInet4
	bufs [][]byte
	tos  []tid.SiteID
}

var mmsgPool = sync.Pool{New: func() any { return &mmsgScratch{} }}

func getScratch(n int) *mmsgScratch {
	s := mmsgPool.Get().(*mmsgScratch)
	if cap(s.bufs) < n {
		s.hdrs = make([]mmsghdr, n)
		s.iovs = make([]syscall.Iovec, n)
		s.sas = make([]syscall.RawSockaddrInet4, n)
		grown := make([][]byte, n)
		copy(grown, s.bufs[:cap(s.bufs)]) // keep already-grown datagram buffers
		s.bufs = grown
		s.tos = make([]tid.SiteID, n)
	}
	s.hdrs, s.iovs, s.sas = s.hdrs[:n], s.iovs[:n], s.sas[:n]
	s.bufs, s.tos = s.bufs[:n], s.tos[:n]
	return s
}

func putScratch(s *mmsgScratch) { mmsgPool.Put(s) }

// fillSockaddr4 writes addr into sa in the kernel's expected layout.
// Only IPv4 destinations take the fast path; a loopback cluster and
// any -listen=127.0.0.1/10.x deployment is IPv4, and falling back for
// IPv6 keeps the unsafe surface minimal.
func fillSockaddr4(sa *syscall.RawSockaddrInet4, addr *net.UDPAddr) bool {
	ip4 := addr.IP.To4()
	if ip4 == nil {
		return false
	}
	sa.Family = syscall.AF_INET
	port := (*[2]byte)(unsafe.Pointer(&sa.Port))
	port[0] = byte(addr.Port >> 8)
	port[1] = byte(addr.Port)
	copy(sa.Addr[:], ip4)
	return true
}

// sendBatch transmits buf to every destination in tos with one
// sendmmsg call (each destination gets its own PatchTo-readdressed
// copy). Returns false — without having sent anything — when the fast
// path does not apply: mmsg disabled, the peer closed, a destination
// missing or non-IPv4. The caller then runs the portable loop, which
// owns all drop accounting for those cases.
func (p *UDPPeer) sendBatch(tos []tid.SiteID, buf []byte, m *wire.Msg) bool {
	if mmsgDisabled.Load() {
		return false
	}
	s := getScratch(len(tos))
	defer putScratch(s)

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	ok := true
	for i, to := range tos {
		addr := p.peers[to]
		if addr == nil || !fillSockaddr4(&s.sas[i], addr) {
			ok = false
			break
		}
	}
	p.mu.Unlock()
	if !ok {
		return false
	}

	for i, to := range tos {
		s.tos[i] = to
		s.bufs[i] = append(s.bufs[i][:0], buf...)
		wire.PatchTo(s.bufs[i], to)
		s.iovs[i].Base = &s.bufs[i][0]
		s.iovs[i].SetLen(len(s.bufs[i]))
		s.hdrs[i] = mmsghdr{}
		s.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&s.sas[i]))
		s.hdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet4
		s.hdrs[i].hdr.Iov = &s.iovs[i]
		s.hdrs[i].hdr.Iovlen = 1
	}

	sent := 0
	var sysErr syscall.Errno
	werr := p.rc.Write(func(fd uintptr) bool {
		for sent < len(s.hdrs) {
			n, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&s.hdrs[sent])), uintptr(len(s.hdrs)-sent), 0, 0, 0)
			switch errno {
			case 0:
				sent += int(n)
			case syscall.EAGAIN:
				return false // park on the netpoller until writable
			case syscall.EINTR:
				continue
			default:
				sysErr = errno
				return true
			}
		}
		return true
	})
	if sysErr == syscall.ENOSYS {
		mmsgDisabled.Store(true)
		return sent > 0 // nothing sent: portable loop can still run
	}
	for i := 0; i < sent; i++ {
		m.To = s.tos[i]
		p.sendDone(s.tos[i], m)
	}
	if werr != nil || sysErr != 0 {
		why := "sendmmsg failed"
		if werr != nil {
			why = werr.Error()
		} else if sysErr != 0 {
			why = sysErr.Error()
		}
		for i := sent; i < len(s.tos); i++ {
			m.To = s.tos[i]
			p.drop(m.From, s.tos[i], m, why)
		}
	}
	return true
}

// readBatch drains the socket with recvmmsg until it closes; it
// returns true in that case. A kernel that refuses the syscall makes
// it return false before any datagram is consumed, and the portable
// loop takes over.
func (p *UDPPeer) readBatch() bool {
	if mmsgDisabled.Load() {
		return false
	}
	bufs := make([][]byte, recvBatchSize)
	iovs := make([]syscall.Iovec, recvBatchSize)
	hdrs := make([]mmsghdr, recvBatchSize)
	for i := range bufs {
		// One byte beyond the legal maximum so truncation is
		// detectable, exactly as in the portable loop.
		bufs[i] = make([]byte, wire.MaxDatagram+1)
		iovs[i].Base = &bufs[i][0]
		iovs[i].SetLen(len(bufs[i]))
		hdrs[i].hdr.Iov = &iovs[i]
		hdrs[i].hdr.Iovlen = 1
	}
	probed := false
	for {
		got := 0
		var sysErr syscall.Errno
		rerr := p.rc.Read(func(fd uintptr) bool {
			for {
				n, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
					uintptr(unsafe.Pointer(&hdrs[0])), recvBatchSize, 0, 0, 0)
				switch errno {
				case 0:
					got = int(n)
					return true
				case syscall.EAGAIN:
					return false // park on the netpoller until readable
				case syscall.EINTR:
					continue
				default:
					sysErr = errno
					return true
				}
			}
		})
		if rerr != nil {
			return true // socket closed
		}
		if sysErr != 0 {
			if !probed && sysErr == syscall.ENOSYS {
				mmsgDisabled.Store(true)
				return false
			}
			return true
		}
		probed = true
		for i := 0; i < got; i++ {
			p.deliver(bufs[i][:hdrs[i].n])
		}
	}
}
