// Package oracle checks the recovery invariants of a Camelot cluster
// after a faulted run. The chaos explorer (internal/chaos) injects a
// fault schedule, heals the world, and then asks the oracle whether
// the cluster honored transactional semantics anyway:
//
//   - Atomicity: every transaction's updates are present at all of
//     the sites it wrote or at none of them.
//   - Client view: an outcome reported to the client (commit, abort)
//     agrees with what the sites hold; an unknown outcome — the
//     coordinator died with the call in flight — may have gone either
//     way, but never partially.
//   - Outcome agreement: no two transaction managers hold
//     contradictory resolved outcomes (one says commit, another says
//     abort) for the same transaction family.
//   - Liveness: every site can begin, write, and abort a fresh probe
//     transaction — no leaked locks, no wedged manager.
//
// The oracle must be invoked from a cluster thread (it runs probe
// transactions), after faults are healed and the protocol has been
// given time to quiesce. Durability is checked by the caller running
// Check, bouncing every site, and running Check again: updates that
// survive that second pass were genuinely on stable storage.
package oracle

import (
	"fmt"

	"camelot/camelot"
	"camelot/internal/tid"
	"camelot/internal/wire"
)

// Outcome is the client's view of one workload transaction.
type Outcome int

// Client-observed outcomes.
const (
	// Unknown means the commit call returned an undetermined error —
	// typically the coordinator crashed with the call in flight.
	Unknown Outcome = iota
	// Committed means Commit returned success.
	Committed
	// Aborted means the transaction ended in a clean abort.
	Aborted
	// Skipped means the workload never reached commit for this
	// transaction (e.g. Begin failed because the node was down); the
	// oracle only requires that its key is absent or the write ended
	// all-or-none.
	Skipped
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	case Skipped:
		return "skipped"
	default:
		return "unknown"
	}
}

// Txn describes one workload transaction for the oracle.
type Txn struct {
	// Key is the key the transaction wrote at every site.
	Key string
	// Family identifies the transaction; zero when the workload never
	// got far enough to have one (Skipped before Begin succeeded).
	Family tid.FamilyID
	// Outcome is what the client observed.
	Outcome Outcome
}

// Violation is one broken invariant.
type Violation struct {
	// Rule names the invariant: "atomicity", "client-view",
	// "agreement", or "liveness".
	Rule string
	// Txn is the workload index of the offending transaction, or -1
	// for cluster-wide violations.
	Txn int
	// Detail is a human-readable description.
	Detail string
}

// String formats the violation for reports.
func (v Violation) String() string {
	if v.Txn >= 0 {
		return fmt.Sprintf("%s: txn %d: %s", v.Rule, v.Txn, v.Detail)
	}
	return fmt.Sprintf("%s: %s", v.Rule, v.Detail)
}

// Config tells the oracle how the workload laid out the cluster.
type Config struct {
	// Sites lists every site id, in order.
	Sites []camelot.SiteID
	// ServerOf maps a site to the name of its data server.
	ServerOf func(camelot.SiteID) string
}

// Check runs every invariant against the quiesced cluster and returns
// the violations found (nil when the run was clean).
func Check(c *camelot.Cluster, cfg Config, txns []Txn) []Violation {
	var out []Violation
	out = append(out, checkPresence(c, cfg, txns)...)
	out = append(out, checkAgreement(c, cfg, txns)...)
	out = append(out, checkLiveness(c, cfg)...)
	return out
}

// checkPresence verifies atomicity and the client's view: each
// transaction's key is present everywhere or nowhere, and the count
// matches the outcome the client observed.
func checkPresence(c *camelot.Cluster, cfg Config, txns []Txn) []Violation {
	var out []Violation
	for i, tx := range txns {
		present := 0
		for _, id := range cfg.Sites {
			srv := c.Node(id).Server(cfg.ServerOf(id))
			if srv == nil {
				continue
			}
			if _, ok := srv.Peek(tx.Key); ok {
				present++
			}
		}
		all := len(cfg.Sites)
		if present != 0 && present != all {
			out = append(out, Violation{
				Rule: "atomicity", Txn: i,
				Detail: fmt.Sprintf("key %q present at %d/%d sites", tx.Key, present, all),
			})
			continue // the client-view check would only repeat the news
		}
		switch tx.Outcome {
		case Committed:
			if present != all {
				out = append(out, Violation{
					Rule: "client-view", Txn: i,
					Detail: fmt.Sprintf("client saw COMMIT but key %q is at %d/%d sites", tx.Key, present, all),
				})
			}
		case Aborted:
			if present != 0 {
				out = append(out, Violation{
					Rule: "client-view", Txn: i,
					Detail: fmt.Sprintf("client saw ABORT but key %q is at %d/%d sites", tx.Key, present, all),
				})
			}
		}
	}
	return out
}

// checkAgreement asks every site's transaction manager for its
// resolved outcome of each family. Unknown answers are fine (a
// subordinate may have forgotten an aborted family under presumed
// abort); a definite commit at one site against a definite abort at
// another is the split-brain the commitment protocols exist to
// prevent.
func checkAgreement(c *camelot.Cluster, cfg Config, txns []Txn) []Violation {
	var out []Violation
	for i, tx := range txns {
		if tx.Family == 0 {
			continue
		}
		commits, aborts := 0, 0
		var detail string
		for _, id := range cfg.Sites {
			switch c.Node(id).TM().OutcomeOf(tx.Family) {
			case wire.OutcomeCommit:
				commits++
				detail += fmt.Sprintf(" site%d=commit", id)
			case wire.OutcomeAbort:
				aborts++
				detail += fmt.Sprintf(" site%d=abort", id)
			}
		}
		if commits > 0 && aborts > 0 {
			out = append(out, Violation{
				Rule: "agreement", Txn: i,
				Detail: fmt.Sprintf("sites disagree on family %d:%s", tx.Family, detail),
			})
		}
	}
	return out
}

// checkLiveness probes each site with a fresh transaction: begin,
// write a probe key at the local server, abort. A leaked lock or a
// wedged manager turns the probe into an error.
func checkLiveness(c *camelot.Cluster, cfg Config) []Violation {
	var out []Violation
	for _, id := range cfg.Sites {
		tx, err := c.Node(id).Begin()
		if err != nil {
			out = append(out, Violation{
				Rule: "liveness", Txn: -1,
				Detail: fmt.Sprintf("site %d cannot begin after quiesce: %v", id, err),
			})
			continue
		}
		if err := tx.Write(cfg.ServerOf(id), "oracle-probe", []byte("x")); err != nil {
			out = append(out, Violation{
				Rule: "liveness", Txn: -1,
				Detail: fmt.Sprintf("site %d: probe write blocked (leaked lock?): %v", id, err),
			})
		}
		tx.Abort() //nolint:errcheck // probe cleanup; the write above is the check
	}
	return out
}
