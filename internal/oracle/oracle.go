// Package oracle checks the recovery invariants of a Camelot cluster
// after a faulted run. The chaos explorer (internal/chaos) injects a
// fault schedule, heals the world, and then asks the oracle whether
// the cluster honored transactional semantics anyway:
//
//   - Atomicity: every transaction's updates are present at all of
//     the sites it wrote or at none of them.
//   - Client view: an outcome reported to the client (commit, abort)
//     agrees with what the sites hold; an unknown outcome — the
//     coordinator died with the call in flight — may have gone either
//     way, but never partially.
//   - Outcome agreement: no two transaction managers hold
//     contradictory resolved outcomes (one says commit, another says
//     abort) for the same transaction family.
//   - Liveness: every site can begin, write, and abort a fresh probe
//     transaction — no leaked locks, no wedged manager.
//
// The invariants are phrased against SiteView, an interrogation
// interface a site can answer either in process (the simulated
// cluster) or over a control connection (a real camelot-node
// process); CheckViews is the engine and Check is the in-process
// adapter. The oracle must be invoked after faults are healed and the
// protocol has been given time to quiesce (and, for the in-process
// form, from a cluster thread: it runs probe transactions).
// Durability is checked by the caller running the oracle, bouncing
// every site, and running it again: updates that survive that second
// pass were genuinely on stable storage.
package oracle

import (
	"fmt"

	"camelot/camelot"
	"camelot/internal/shardmap"
	"camelot/internal/tid"
	"camelot/internal/wire"
)

// Outcome is the client's view of one workload transaction.
type Outcome int

// Client-observed outcomes.
const (
	// Unknown means the commit call returned an undetermined error —
	// typically the coordinator crashed with the call in flight.
	Unknown Outcome = iota
	// Committed means Commit returned success.
	Committed
	// Aborted means the transaction ended in a clean abort.
	Aborted
	// Skipped means the workload never reached commit for this
	// transaction (e.g. Begin failed because the node was down); the
	// oracle only requires that its key is absent or the write ended
	// all-or-none.
	Skipped
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	case Skipped:
		return "skipped"
	default:
		return "unknown"
	}
}

// Txn describes one workload transaction for the oracle.
type Txn struct {
	// Key is the key the transaction wrote at each of its write sites.
	Key string
	// Family identifies the transaction; zero when the workload never
	// got far enough to have one (Skipped before Begin succeeded).
	Family tid.FamilyID
	// Outcome is what the client observed.
	Outcome Outcome
	// Sites lists the sites the transaction wrote Key at. Nil means
	// every site in the cluster (the original all-sites workloads);
	// a workload with read-only participants narrows the atomicity
	// check to the actual write set.
	Sites []camelot.SiteID
	// Writes, when non-nil, is the keyspace write set of a sharded
	// workload: each key at its home site, checked by the cross-shard
	// atomicity rule instead of the Key/Sites replication rule. A
	// sharded transaction writes distinct keys on distinct shards, so
	// atomicity means the whole write set landed or none of it did.
	Writes []Write
}

// Write is one key a sharded transaction wrote, at the key's home
// site per the deployment's shard map.
type Write struct {
	// Key is the key written.
	Key string
	// Site is the key's home site — the one site whose shard server
	// holds it.
	Site camelot.SiteID
	// Shared marks a key other workload transactions also write (hot
	// keys under skew). Presence cannot attribute a shared key's value
	// to this transaction, so the oracle asserts only committed ⇒
	// present for it, not all-or-nothing.
	Shared bool
}

// Violation is one broken invariant.
type Violation struct {
	// Rule names the invariant: "atomicity", "client-view",
	// "agreement", "liveness", or "view" (a site could not be
	// interrogated at all).
	Rule string
	// Txn is the workload index of the offending transaction, or -1
	// for cluster-wide violations.
	Txn int
	// Detail is a human-readable description.
	Detail string
}

// String formats the violation for reports.
func (v Violation) String() string {
	if v.Txn >= 0 {
		return fmt.Sprintf("%s: txn %d: %s", v.Rule, v.Txn, v.Detail)
	}
	return fmt.Sprintf("%s: %s", v.Rule, v.Detail)
}

// SiteView is the oracle's window onto one site. The simulated
// cluster answers in process; a real deployment answers over the
// node's control connection. Errors mean the site could not be asked
// (a dead control connection, say) — distinct from a negative answer,
// and reported as "view" violations so a run cannot pass vacuously.
type SiteView interface {
	// HasKey reports whether the site's data server holds key.
	HasKey(key string) (bool, error)
	// OutcomeOf returns the site's resolved outcome for a family;
	// OutcomeUnknown when it holds none (normal under presumed abort).
	OutcomeOf(f tid.FamilyID) (wire.Outcome, error)
	// Probe runs a fresh begin/write/abort transaction through the
	// site and reports whether it wedged.
	Probe() error
}

// Config tells the oracle how the workload laid out the cluster.
type Config struct {
	// Sites lists every site id, in order.
	Sites []camelot.SiteID
	// ServerOf maps a site to the name of its data server. Ignored
	// when ShardMap is set.
	ServerOf func(camelot.SiteID) string
	// ShardMap, when non-nil, describes a sharded data tier: presence
	// questions route each key to its home shard's server on the asked
	// site, and a site hosting no shard is probed begin/abort only.
	ShardMap *shardmap.Map
}

// Check runs every invariant against the quiesced in-process cluster
// and returns the violations found (nil when the run was clean). It
// is CheckViews over clusterView adapters.
func Check(c *camelot.Cluster, cfg Config, txns []Txn) []Violation {
	views := make(map[camelot.SiteID]SiteView, len(cfg.Sites))
	for _, id := range cfg.Sites {
		if cfg.ShardMap != nil {
			server := ""
			if local := cfg.ShardMap.ShardsAt(id); len(local) > 0 {
				server = cfg.ShardMap.ServerOf(local[0])
			}
			views[id] = &shardedView{node: c.Node(id), m: cfg.ShardMap, server: server}
			continue
		}
		views[id] = &clusterView{node: c.Node(id), server: cfg.ServerOf(id)}
	}
	return CheckViews(cfg.Sites, views, txns)
}

// CheckViews runs every invariant against one SiteView per site and
// returns the violations found (nil when the run was clean).
func CheckViews(sites []camelot.SiteID, views map[camelot.SiteID]SiteView, txns []Txn) []Violation {
	var out []Violation
	out = append(out, checkPresence(sites, views, txns)...)
	out = append(out, checkAgreement(sites, views, txns)...)
	out = append(out, checkLiveness(sites, views)...)
	return out
}

// writeSites returns the sites whose data servers the transaction
// wrote: its declared write set, or every site when none was given.
func writeSites(sites []camelot.SiteID, tx Txn) []camelot.SiteID {
	if tx.Sites != nil {
		return tx.Sites
	}
	return sites
}

// checkPresence verifies atomicity and the client's view: each
// transaction's key is present at all of its write sites or at none,
// and the count matches the outcome the client observed.
func checkPresence(sites []camelot.SiteID, views map[camelot.SiteID]SiteView, txns []Txn) []Violation {
	var out []Violation
	for i, tx := range txns {
		if tx.Writes != nil {
			out = append(out, checkWriteSet(i, tx, views)...)
			continue
		}
		present := 0
		writers := writeSites(sites, tx)
		for _, id := range writers {
			v := views[id]
			if v == nil {
				continue
			}
			ok, err := v.HasKey(tx.Key)
			if err != nil {
				out = append(out, Violation{
					Rule: "view", Txn: i,
					Detail: fmt.Sprintf("site %d unreachable for key %q: %v", id, tx.Key, err),
				})
				continue
			}
			if ok {
				present++
			}
		}
		all := len(writers)
		if present != 0 && present != all {
			out = append(out, Violation{
				Rule: "atomicity", Txn: i,
				Detail: fmt.Sprintf("key %q present at %d/%d sites", tx.Key, present, all),
			})
			continue // the client-view check would only repeat the news
		}
		switch tx.Outcome {
		case Committed:
			if present != all {
				out = append(out, Violation{
					Rule: "client-view", Txn: i,
					Detail: fmt.Sprintf("client saw COMMIT but key %q is at %d/%d sites", tx.Key, present, all),
				})
			}
		case Aborted:
			if present != 0 {
				out = append(out, Violation{
					Rule: "client-view", Txn: i,
					Detail: fmt.Sprintf("client saw ABORT but key %q is at %d/%d sites", tx.Key, present, all),
				})
			}
		}
	}
	return out
}

// checkWriteSet verifies cross-shard atomicity for one sharded
// transaction: its exclusive writes — distinct keys on the shards it
// touched, each interrogated at its own home site — are present all
// together or not at all, and the tally matches the client's view.
// Shared (hot) keys are held only to committed ⇒ present, since
// another transaction's commit legitimately leaves them present after
// this one's abort.
func checkWriteSet(i int, tx Txn, views map[camelot.SiteID]SiteView) []Violation {
	var out []Violation
	exclPresent, exclTotal := 0, 0
	var missingShared []string
	for _, w := range tx.Writes {
		v := views[w.Site]
		if v == nil {
			continue
		}
		ok, err := v.HasKey(w.Key)
		if err != nil {
			out = append(out, Violation{
				Rule: "view", Txn: i,
				Detail: fmt.Sprintf("site %d unreachable for key %q: %v", w.Site, w.Key, err),
			})
			continue
		}
		if w.Shared {
			if !ok {
				missingShared = append(missingShared, w.Key)
			}
			continue
		}
		exclTotal++
		if ok {
			exclPresent++
		}
	}
	if exclPresent != 0 && exclPresent != exclTotal {
		out = append(out, Violation{
			Rule: "shard-atomicity", Txn: i,
			Detail: fmt.Sprintf("write set landed on %d/%d shards", exclPresent, exclTotal),
		})
		return out // the client-view check would only repeat the news
	}
	switch tx.Outcome {
	case Committed:
		if exclPresent != exclTotal {
			out = append(out, Violation{
				Rule: "client-view", Txn: i,
				Detail: fmt.Sprintf("client saw COMMIT but write set is on %d/%d shards", exclPresent, exclTotal),
			})
		}
		if len(missingShared) > 0 {
			out = append(out, Violation{
				Rule: "client-view", Txn: i,
				Detail: fmt.Sprintf("client saw COMMIT but shared keys %v are absent", missingShared),
			})
		}
	case Aborted:
		if exclPresent != 0 {
			out = append(out, Violation{
				Rule: "client-view", Txn: i,
				Detail: fmt.Sprintf("client saw ABORT but write set is on %d/%d shards", exclPresent, exclTotal),
			})
		}
	}
	return out
}

// checkAgreement asks every site's transaction manager for its
// resolved outcome of each family. Unknown answers are fine (a
// subordinate may have forgotten an aborted family under presumed
// abort); a definite commit at one site against a definite abort at
// another is the split-brain the commitment protocols exist to
// prevent.
func checkAgreement(sites []camelot.SiteID, views map[camelot.SiteID]SiteView, txns []Txn) []Violation {
	var out []Violation
	for i, tx := range txns {
		if tx.Family == 0 {
			continue
		}
		commits, aborts := 0, 0
		var detail string
		for _, id := range sites {
			v := views[id]
			if v == nil {
				continue
			}
			oc, err := v.OutcomeOf(tx.Family)
			if err != nil {
				out = append(out, Violation{
					Rule: "view", Txn: i,
					Detail: fmt.Sprintf("site %d unreachable for family %d: %v", id, tx.Family, err),
				})
				continue
			}
			switch oc {
			case wire.OutcomeCommit:
				commits++
				detail += fmt.Sprintf(" site%d=commit", id)
			case wire.OutcomeAbort:
				aborts++
				detail += fmt.Sprintf(" site%d=abort", id)
			}
		}
		if commits > 0 && aborts > 0 {
			out = append(out, Violation{
				Rule: "agreement", Txn: i,
				Detail: fmt.Sprintf("sites disagree on family %d:%s", tx.Family, detail),
			})
		}
	}
	return out
}

// checkLiveness probes each site with a fresh transaction: begin,
// write a probe key at the local server, abort. A leaked lock or a
// wedged manager turns the probe into an error.
func checkLiveness(sites []camelot.SiteID, views map[camelot.SiteID]SiteView) []Violation {
	var out []Violation
	for _, id := range sites {
		v := views[id]
		if v == nil {
			continue
		}
		if err := v.Probe(); err != nil {
			out = append(out, Violation{
				Rule: "liveness", Txn: -1,
				Detail: fmt.Sprintf("site %d %v", id, err),
			})
		}
	}
	return out
}

// clusterView answers the oracle's questions for one in-process node.
type clusterView struct {
	node   *camelot.Node
	server string
}

func (v *clusterView) HasKey(key string) (bool, error) {
	srv := v.node.Server(v.server)
	if srv == nil {
		return false, nil
	}
	_, ok := srv.Peek(key)
	return ok, nil
}

func (v *clusterView) OutcomeOf(f tid.FamilyID) (wire.Outcome, error) {
	return v.node.TM().OutcomeOf(f), nil
}

func (v *clusterView) Probe() error {
	tx, err := v.node.Begin()
	if err != nil {
		return fmt.Errorf("cannot begin after quiesce: %v", err)
	}
	if err := tx.Write(v.server, "oracle-probe", []byte("x")); err != nil {
		tx.Abort() //nolint:errcheck // probe cleanup; the write is the check
		return fmt.Errorf("probe write blocked (leaked lock?): %v", err)
	}
	tx.Abort() //nolint:errcheck // probe cleanup; the write above is the check
	return nil
}

// shardedView answers the oracle's questions for one in-process node
// of a sharded deployment: each key is looked up on its home shard's
// server, and the liveness probe writes through the site's first
// local shard (or degrades to begin/abort when the site hosts none).
type shardedView struct {
	node   *camelot.Node
	m      *shardmap.Map
	server string // first local shard's server; "" when the site hosts none
}

func (v *shardedView) HasKey(key string) (bool, error) {
	srv := v.node.Server(v.m.ServerFor(key))
	if srv == nil {
		return false, nil
	}
	_, ok := srv.Peek(key)
	return ok, nil
}

func (v *shardedView) OutcomeOf(f tid.FamilyID) (wire.Outcome, error) {
	return v.node.TM().OutcomeOf(f), nil
}

func (v *shardedView) Probe() error {
	tx, err := v.node.Begin()
	if err != nil {
		return fmt.Errorf("cannot begin after quiesce: %v", err)
	}
	if v.server != "" {
		if err := tx.Write(v.server, "oracle-probe", []byte("x")); err != nil {
			tx.Abort() //nolint:errcheck // probe cleanup; the write is the check
			return fmt.Errorf("probe write blocked (leaked lock?): %v", err)
		}
	}
	tx.Abort() //nolint:errcheck // probe cleanup; the write above is the check
	return nil
}
