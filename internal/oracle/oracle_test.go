package oracle

import (
	"errors"
	"testing"

	"camelot/camelot"
	"camelot/internal/tid"
	"camelot/internal/wire"
)

// fakeView answers presence from a fixed key set and stays silent on
// outcomes.
type fakeView struct {
	keys map[string]bool
}

func (v *fakeView) HasKey(key string) (bool, error)              { return v.keys[key], nil }
func (v *fakeView) OutcomeOf(tid.FamilyID) (wire.Outcome, error) { return wire.OutcomeUnknown, nil }
func (v *fakeView) Probe() error                                 { return nil }
func viewsOf(m map[camelot.SiteID][]string) map[camelot.SiteID]SiteView {
	out := make(map[camelot.SiteID]SiteView, len(m))
	for site, keys := range m { //lint:ordered test fixture construction; map order does not reach any output
		fv := &fakeView{keys: make(map[string]bool)}
		for _, k := range keys {
			fv.keys[k] = true
		}
		out[site] = fv
	}
	return out
}

func rules(vs []Violation) map[string]int {
	out := make(map[string]int)
	for _, v := range vs {
		out[v.Rule]++
	}
	return out
}

func TestWriteSetAtomicityViolation(t *testing.T) {
	// A committed cross-shard txn whose write landed at site 1 but not
	// site 2: shard-atomicity must fire (and swallow the redundant
	// client-view complaint).
	views := viewsOf(map[camelot.SiteID][]string{1: {"a"}, 2: {}, 3: {}})
	txns := []Txn{{
		Outcome: Committed,
		Writes:  []Write{{Key: "a", Site: 1}, {Key: "b", Site: 2}},
	}}
	got := rules(checkPresence([]camelot.SiteID{1, 2, 3}, views, txns))
	if got["shard-atomicity"] != 1 || got["client-view"] != 0 {
		t.Fatalf("violations = %v, want exactly one shard-atomicity", got)
	}
}

func TestWriteSetCleanOutcomes(t *testing.T) {
	views := viewsOf(map[camelot.SiteID][]string{1: {"a", "hot"}, 2: {"b"}})
	sites := []camelot.SiteID{1, 2}
	txns := []Txn{
		// Committed, fully landed, shared hot key present: clean.
		{Outcome: Committed, Writes: []Write{
			{Key: "a", Site: 1}, {Key: "b", Site: 2}, {Key: "hot", Site: 1, Shared: true}}},
		// Aborted, nothing landed, but the shared key is present from
		// the committed txn above: still clean — shared keys are not
		// held to all-or-nothing.
		{Outcome: Aborted, Writes: []Write{
			{Key: "x", Site: 1}, {Key: "hot", Site: 1, Shared: true}}},
		// Unknown outcome, nothing landed: clean (may have aborted).
		{Outcome: Unknown, Writes: []Write{{Key: "y", Site: 1}, {Key: "z", Site: 2}}},
	}
	if vs := checkPresence(sites, views, txns); len(vs) != 0 {
		t.Fatalf("clean write sets reported violations: %v", vs)
	}
}

func TestWriteSetClientViewViolations(t *testing.T) {
	views := viewsOf(map[camelot.SiteID][]string{1: {"a"}, 2: {"b"}})
	sites := []camelot.SiteID{1, 2}

	// Client saw ABORT but the whole write set is present.
	aborted := []Txn{{Outcome: Aborted, Writes: []Write{{Key: "a", Site: 1}, {Key: "b", Site: 2}}}}
	if got := rules(checkPresence(sites, views, aborted)); got["client-view"] != 1 {
		t.Fatalf("aborted-but-present: %v, want one client-view", got)
	}

	// Client saw COMMIT but nothing landed. exclusive 0/2 is
	// all-or-nothing-consistent, so only client-view fires.
	committed := []Txn{{Outcome: Committed, Writes: []Write{{Key: "x", Site: 1}, {Key: "y", Site: 2}}}}
	if got := rules(checkPresence(sites, views, committed)); got["client-view"] != 1 || got["shard-atomicity"] != 0 {
		t.Fatalf("committed-but-absent: %v, want one client-view", got)
	}

	// Client saw COMMIT and exclusives landed, but a shared key is
	// missing: committed ⇒ present applies to shared keys too.
	sharedGone := []Txn{{Outcome: Committed, Writes: []Write{
		{Key: "a", Site: 1}, {Key: "cold", Site: 2, Shared: true}}}}
	if got := rules(checkPresence(sites, views, sharedGone)); got["client-view"] != 1 {
		t.Fatalf("committed-but-shared-missing: %v, want one client-view", got)
	}
}

func TestWriteSetUnreachableSiteIsViewViolation(t *testing.T) {
	views := map[camelot.SiteID]SiteView{1: &errView{}}
	txns := []Txn{{Outcome: Committed, Writes: []Write{{Key: "a", Site: 1}}}}
	if got := rules(checkPresence([]camelot.SiteID{1}, views, txns)); got["view"] != 1 {
		t.Fatalf("unreachable site: %v, want one view violation", got)
	}
}

type errView struct{}

func (v *errView) HasKey(string) (bool, error) {
	return false, errors.New("connection refused")
}
func (v *errView) OutcomeOf(tid.FamilyID) (wire.Outcome, error) { return wire.OutcomeUnknown, nil }
func (v *errView) Probe() error                                 { return nil }
