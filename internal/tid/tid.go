// Package tid defines site and transaction identifiers.
//
// Camelot transactions are grouped into families (a top-level
// transaction and all of its nested descendants, per the Moss model).
// A family identifier is globally unique — it embeds the originating
// site — and individual transactions within the family carry a
// sequence number that is again site-qualified so nested transactions
// may be begun at any site without coordination.
package tid

import "fmt"

// SiteID names a Camelot site (one machine running the four Camelot
// processes). Zero is reserved for "no site".
type SiteID uint32

// String renders the site as the paper's diagrams do ("site3").
func (s SiteID) String() string { return fmt.Sprintf("site%d", uint32(s)) }

// FamilyID identifies a transaction family: the high 32 bits are the
// originating site, the low 32 a per-site counter.
type FamilyID uint64

// MakeFamily builds a FamilyID from its parts.
func MakeFamily(origin SiteID, counter uint32) FamilyID {
	return FamilyID(uint64(origin)<<32 | uint64(counter))
}

// Origin returns the site at which the family was begun — the
// coordinator for the family's distributed commitment.
func (f FamilyID) Origin() SiteID { return SiteID(f >> 32) }

// Counter returns the per-site sequence component.
func (f FamilyID) Counter() uint32 { return uint32(f) }

// String renders the family as "F<site>.<n>".
func (f FamilyID) String() string {
	return fmt.Sprintf("F%d.%d", uint32(f.Origin()), f.Counter())
}

// Seq identifies a transaction within its family. The top-level
// transaction is always TopSeq; nested transactions get a
// site-qualified sequence (site in the high 32 bits) so any site can
// begin one without consulting the family's origin.
type Seq uint64

// TopSeq is the sequence number of every family's top-level
// transaction.
const TopSeq Seq = 0

// MakeSeq builds a nested-transaction sequence number.
func MakeSeq(site SiteID, counter uint32) Seq {
	return Seq(uint64(site)<<32 | uint64(counter))
}

// TID identifies one transaction. TIDs are comparable and valid map
// keys. The zero TID is not a valid transaction.
type TID struct {
	Family FamilyID
	Seq    Seq
}

// Top returns the TID of the family's top-level transaction.
func Top(f FamilyID) TID { return TID{Family: f, Seq: TopSeq} }

// IsTop reports whether t names a top-level transaction.
func (t TID) IsTop() bool { return t.Seq == TopSeq }

// IsZero reports whether t is the zero (invalid) TID.
func (t TID) IsZero() bool { return t == TID{} }

// TopLevel returns the top-level TID of t's family.
func (t TID) TopLevel() TID { return Top(t.Family) }

// String renders the TID as "F<site>.<n>" for top-level transactions
// and "F<site>.<n>/<seq>" for nested ones.
func (t TID) String() string {
	if t.IsTop() {
		return t.Family.String()
	}
	return fmt.Sprintf("%s/%d.%d", t.Family, uint32(t.Seq>>32), uint32(t.Seq))
}
