package tid

import (
	"testing"
	"testing/quick"
)

func TestMakeFamilyRoundTrip(t *testing.T) {
	f := MakeFamily(7, 42)
	if f.Origin() != 7 {
		t.Errorf("Origin() = %v, want 7", f.Origin())
	}
	if f.Counter() != 42 {
		t.Errorf("Counter() = %d, want 42", f.Counter())
	}
}

func TestFamilyRoundTripProperty(t *testing.T) {
	prop := func(site uint32, counter uint32) bool {
		f := MakeFamily(SiteID(site), counter)
		return f.Origin() == SiteID(site) && f.Counter() == counter
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFamilyUniqueness(t *testing.T) {
	seen := map[FamilyID]bool{}
	for site := SiteID(1); site <= 10; site++ {
		for c := uint32(0); c < 100; c++ {
			f := MakeFamily(site, c)
			if seen[f] {
				t.Fatalf("duplicate family %v", f)
			}
			seen[f] = true
		}
	}
}

func TestTopLevel(t *testing.T) {
	f := MakeFamily(3, 9)
	top := Top(f)
	if !top.IsTop() {
		t.Error("Top() is not top-level")
	}
	nested := TID{Family: f, Seq: MakeSeq(4, 1)}
	if nested.IsTop() {
		t.Error("nested TID reported as top-level")
	}
	if nested.TopLevel() != top {
		t.Errorf("TopLevel() = %v, want %v", nested.TopLevel(), top)
	}
}

func TestIsZero(t *testing.T) {
	var zero TID
	if !zero.IsZero() {
		t.Error("zero TID not reported as zero")
	}
	if Top(MakeFamily(1, 0)).IsZero() {
		t.Error("valid TID reported as zero")
	}
}

func TestStrings(t *testing.T) {
	f := MakeFamily(2, 5)
	if got := f.String(); got != "F2.5" {
		t.Errorf("FamilyID.String() = %q, want \"F2.5\"", got)
	}
	if got := Top(f).String(); got != "F2.5" {
		t.Errorf("top TID String() = %q, want \"F2.5\"", got)
	}
	nested := TID{Family: f, Seq: MakeSeq(3, 1)}
	if got := nested.String(); got != "F2.5/3.1" {
		t.Errorf("nested TID String() = %q, want \"F2.5/3.1\"", got)
	}
	if got := SiteID(4).String(); got != "site4" {
		t.Errorf("SiteID.String() = %q, want \"site4\"", got)
	}
}

func TestMakeSeqUniqueAcrossSites(t *testing.T) {
	a := MakeSeq(1, 1)
	b := MakeSeq(2, 1)
	if a == b {
		t.Error("same counter on different sites collided")
	}
	if a == TopSeq || b == TopSeq {
		t.Error("nested seq collided with TopSeq")
	}
}
