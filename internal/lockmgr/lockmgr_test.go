package lockmgr

import (
	"fmt"
	"testing"
	"time"

	"camelot/internal/sim"
	"camelot/internal/tid"
)

func txn(n uint32) tid.TID { return tid.Top(tid.MakeFamily(1, n)) }

func child(parent tid.TID, n uint32) tid.TID {
	return tid.TID{Family: parent.Family, Seq: tid.MakeSeq(1, n)}
}

// withSim runs fn inside a fresh simulation and fails on deadlock.
func withSim(t *testing.T, fn func(k *sim.Kernel, m *Manager)) {
	t.Helper()
	k := sim.New(1)
	k.Go("main", func() { fn(k, New(k)) })
	k.Run()
	if msg := k.Deadlocked(); msg != "" {
		t.Fatal(msg)
	}
}

func TestSharedLocksAreCompatible(t *testing.T) {
	withSim(t, func(k *sim.Kernel, m *Manager) {
		if err := m.Acquire(txn(1), "a", Shared, 0); err != nil {
			t.Errorf("first shared: %v", err)
		}
		if err := m.Acquire(txn(2), "a", Shared, 0); err != nil {
			t.Errorf("second shared: %v", err)
		}
	})
}

func TestExclusiveConflictsWithShared(t *testing.T) {
	withSim(t, func(k *sim.Kernel, m *Manager) {
		m.Acquire(txn(1), "a", Shared, 0)
		if err := m.Acquire(txn(2), "a", Exclusive, 0); err != ErrTimeout {
			t.Errorf("X over S granted: %v", err)
		}
		m.Acquire(txn(3), "b", Exclusive, 0)
		if err := m.Acquire(txn(4), "b", Shared, 0); err != ErrTimeout {
			t.Errorf("S over X granted: %v", err)
		}
		if err := m.Acquire(txn(5), "b", Exclusive, 0); err != ErrTimeout {
			t.Errorf("X over X granted: %v", err)
		}
	})
}

func TestReleaseWakesWaiter(t *testing.T) {
	withSim(t, func(k *sim.Kernel, m *Manager) {
		m.Acquire(txn(1), "a", Exclusive, 0)
		var waitedUntil time.Duration
		k.Go("waiter", func() {
			if err := m.Acquire(txn(2), "a", Exclusive, time.Second); err != nil {
				t.Errorf("waiter: %v", err)
			}
			waitedUntil = time.Duration(k.Now())
		})
		k.Sleep(10 * time.Millisecond)
		m.Release(txn(1))
		k.Sleep(time.Millisecond)
		if waitedUntil != 10*time.Millisecond {
			t.Errorf("waiter granted at %v, want 10ms", waitedUntil)
		}
		if _, held := m.Holds(txn(1), "a"); held {
			t.Error("released holder still holds lock")
		}
		if mode, held := m.Holds(txn(2), "a"); !held || mode != Exclusive {
			t.Errorf("waiter holds (%v, %v), want (X, true)", mode, held)
		}
	})
}

func TestTimeoutBreaksDeadlock(t *testing.T) {
	withSim(t, func(k *sim.Kernel, m *Manager) {
		// Classic AB-BA deadlock; both must time out rather than hang.
		m.Acquire(txn(1), "a", Exclusive, 0)
		m.Acquire(txn(2), "b", Exclusive, 0)
		errs := make([]error, 2)
		k.Go("t1", func() { errs[0] = m.Acquire(txn(1), "b", Exclusive, 50*time.Millisecond) })
		k.Go("t2", func() { errs[1] = m.Acquire(txn(2), "a", Exclusive, 50*time.Millisecond) })
		k.Sleep(100 * time.Millisecond)
		if errs[0] != ErrTimeout || errs[1] != ErrTimeout {
			t.Errorf("deadlocked acquires returned %v, %v; want timeouts", errs[0], errs[1])
		}
	})
}

func TestUpgradeSharedToExclusive(t *testing.T) {
	withSim(t, func(k *sim.Kernel, m *Manager) {
		m.Acquire(txn(1), "a", Shared, 0)
		if err := m.Acquire(txn(1), "a", Exclusive, 0); err != nil {
			t.Errorf("upgrade with no other holder: %v", err)
		}
		if mode, _ := m.Holds(txn(1), "a"); mode != Exclusive {
			t.Errorf("mode after upgrade = %v, want X", mode)
		}
		// Upgrade must fail while another shared holder exists.
		m.Acquire(txn(2), "b", Shared, 0)
		m.Acquire(txn(3), "b", Shared, 0)
		if err := m.Acquire(txn(2), "b", Exclusive, 0); err != ErrTimeout {
			t.Errorf("upgrade over other shared holder: %v", err)
		}
	})
}

func TestChildMayAcquireAncestorsLock(t *testing.T) {
	withSim(t, func(k *sim.Kernel, m *Manager) {
		parent := txn(1)
		c := child(parent, 1)
		gc := child(parent, 2)
		m.SetParent(c, parent)
		m.SetParent(gc, c)
		m.Acquire(parent, "a", Exclusive, 0)
		if err := m.Acquire(c, "a", Exclusive, 0); err != nil {
			t.Errorf("child over parent's X lock: %v", err)
		}
		if err := m.Acquire(gc, "a", Exclusive, 0); err != nil {
			t.Errorf("grandchild over ancestors' X locks: %v", err)
		}
		// An unrelated transaction must still be blocked.
		if err := m.Acquire(txn(2), "a", Exclusive, 0); err != ErrTimeout {
			t.Errorf("unrelated txn over family's lock: %v", err)
		}
	})
}

func TestSiblingsConflict(t *testing.T) {
	withSim(t, func(k *sim.Kernel, m *Manager) {
		parent := txn(1)
		c1, c2 := child(parent, 1), child(parent, 2)
		m.SetParent(c1, parent)
		m.SetParent(c2, parent)
		m.Acquire(c1, "a", Exclusive, 0)
		if err := m.Acquire(c2, "a", Exclusive, 0); err != ErrTimeout {
			t.Errorf("sibling acquired sibling's X lock: %v", err)
		}
	})
}

func TestChildCommitInheritsLocks(t *testing.T) {
	withSim(t, func(k *sim.Kernel, m *Manager) {
		parent := txn(1)
		c1, c2 := child(parent, 1), child(parent, 2)
		m.SetParent(c1, parent)
		m.SetParent(c2, parent)
		m.Acquire(c1, "a", Exclusive, 0)
		m.OnChildCommit(c1, parent)
		if mode, held := m.Holds(parent, "a"); !held || mode != Exclusive {
			t.Errorf("parent holds (%v, %v) after child commit, want (X, true)", mode, held)
		}
		if m.HoldsAny(c1) {
			t.Error("committed child still holds locks")
		}
		// The sibling, as a child of the new holder, may now acquire.
		if err := m.Acquire(c2, "a", Exclusive, 0); err != nil {
			t.Errorf("sibling after inheritance: %v", err)
		}
	})
}

func TestChildAbortReleasesLocks(t *testing.T) {
	withSim(t, func(k *sim.Kernel, m *Manager) {
		parent := txn(1)
		c := child(parent, 1)
		m.SetParent(c, parent)
		m.Acquire(c, "a", Exclusive, 0)
		m.Release(c) // abort: anti-inheritance
		if err := m.Acquire(txn(2), "a", Exclusive, 0); err != nil {
			t.Errorf("lock not free after child abort: %v", err)
		}
	})
}

func TestInheritanceKeepsStrongerMode(t *testing.T) {
	withSim(t, func(k *sim.Kernel, m *Manager) {
		parent := txn(1)
		c := child(parent, 1)
		m.SetParent(c, parent)
		m.Acquire(parent, "a", Exclusive, 0)
		m.Acquire(c, "a", Shared, 0)
		m.OnChildCommit(c, parent)
		if mode, _ := m.Holds(parent, "a"); mode != Exclusive {
			t.Errorf("parent downgraded to %v by inheriting child's S lock", mode)
		}
	})
}

func TestFIFONoStarvationOfExclusiveWaiter(t *testing.T) {
	withSim(t, func(k *sim.Kernel, m *Manager) {
		m.Acquire(txn(1), "a", Shared, 0)
		var xGranted, sGranted time.Duration
		k.Go("x-waiter", func() {
			if err := m.Acquire(txn(2), "a", Exclusive, time.Second); err != nil {
				t.Errorf("x-waiter: %v", err)
			}
			xGranted = time.Duration(k.Now())
		})
		k.Sleep(time.Millisecond)
		k.Go("s-waiter", func() {
			// Arrived after the X waiter; granting it immediately
			// (shared-compatible with holder 1) would starve X.
			if err := m.Acquire(txn(3), "a", Shared, time.Second); err != nil {
				t.Errorf("s-waiter: %v", err)
			}
			sGranted = time.Duration(k.Now())
		})
		k.Sleep(10 * time.Millisecond)
		m.Release(txn(1))
		k.Sleep(time.Millisecond)
		if xGranted == 0 {
			t.Fatal("exclusive waiter never granted")
		}
		if sGranted != 0 {
			t.Fatal("later shared waiter jumped the exclusive waiter")
		}
		m.Release(txn(2))
		k.Sleep(time.Millisecond)
		if sGranted == 0 {
			t.Fatal("shared waiter never granted after X released")
		}
	})
}

func TestReleaseCleansUpState(t *testing.T) {
	withSim(t, func(k *sim.Kernel, m *Manager) {
		for i := uint32(1); i <= 50; i++ {
			m.Acquire(txn(i), fmt.Sprintf("k%d", i), Exclusive, 0)
		}
		for i := uint32(1); i <= 50; i++ {
			m.Release(txn(i))
		}
		if n := len(m.locks); n != 0 {
			t.Errorf("%d lock entries left after all releases", n)
		}
		if n := len(m.held); n != 0 {
			t.Errorf("%d held entries left after all releases", n)
		}
	})
}

func TestWaitsAccounting(t *testing.T) {
	withSim(t, func(k *sim.Kernel, m *Manager) {
		m.Acquire(txn(1), "a", Exclusive, 0)
		k.Go("w", func() { m.Acquire(txn(2), "a", Exclusive, time.Second) })
		k.Sleep(20 * time.Millisecond)
		m.Release(txn(1))
		k.Sleep(time.Millisecond)
		n, total := m.Waits()
		if n != 1 {
			t.Errorf("Waits n = %d, want 1", n)
		}
		if total != 20*time.Millisecond {
			t.Errorf("Waits total = %v, want 20ms", total)
		}
	})
}
