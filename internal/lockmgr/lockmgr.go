// Package lockmgr implements the shared/exclusive lock manager data
// servers use to serialize access to their objects, with the
// nested-transaction (Moss model) inheritance rules Camelot's
// transaction model requires: a transaction may acquire a lock whose
// conflicting holders are all its ancestors, and a committing child's
// locks are inherited by its parent ("anti-inheritance" releases them
// on abort).
//
// Deadlock between transactions is broken by timeout: a lock request
// that cannot be granted within its timeout fails, and the caller is
// expected to abort the requesting transaction (the paper's data
// servers rely on the runtime library's locking package the same
// way; the internal lock *hierarchy* it describes is about mutexes
// inside the transaction manager, which internal/core handles
// separately).
package lockmgr

import (
	"errors"
	"time"

	"camelot/internal/rt"
	"camelot/internal/tid"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes; Exclusive conflicts with everything, Shared only with
// Exclusive.
const (
	Shared Mode = iota + 1
	Exclusive
)

// String returns "S" or "X".
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// ErrTimeout is returned when a lock request waits past its timeout;
// the caller should abort the transaction.
var ErrTimeout = errors.New("lockmgr: lock wait timed out")

// Manager is one data server's lock table.
type Manager struct {
	r    rt.Runtime
	mu   rt.Mutex
	cond rt.Cond

	locks  map[string]*lock
	parent map[tid.TID]tid.TID // nested-transaction tree
	held   map[tid.TID]map[string]bool

	waits     int
	waitTotal time.Duration
}

type lock struct {
	holders map[tid.TID]Mode
	// waiters is FIFO; each entry is re-examined on every release or
	// inheritance event.
	waiters []*waiter
}

type waiter struct {
	t       tid.TID
	mode    Mode
	granted bool
	timeout bool
}

// New returns an empty lock manager.
func New(r rt.Runtime) *Manager {
	m := &Manager{
		r:      r,
		locks:  make(map[string]*lock),
		parent: make(map[tid.TID]tid.TID),
		held:   make(map[tid.TID]map[string]bool),
	}
	m.mu = r.NewMutex()
	m.cond = r.NewCond(m.mu)
	return m
}

// SetParent records that child is a nested transaction of parent, for
// ancestry checks and inheritance.
func (m *Manager) SetParent(child, parent tid.TID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.parent[child] = parent
}

// Acquire obtains key in mode for t, blocking up to timeout. Lock
// upgrades (S held, X requested) are granted in place when
// permissible. A zero timeout never blocks.
func (m *Manager) Acquire(t tid.TID, key string, mode Mode, timeout time.Duration) error {
	m.mu.Lock()
	defer m.mu.Unlock()

	l := m.locks[key]
	if l == nil {
		l = &lock{holders: make(map[tid.TID]Mode)}
		m.locks[key] = l
	}
	// A new request may be granted immediately only if nothing is
	// queued ahead of it, so a waiting exclusive request is not
	// starved by a stream of compatible shared requests. Requests
	// from a transaction that already holds the lock (re-entry or
	// upgrade) jump the queue, the standard escape from the
	// upgrade-behind-own-waiter deadlock.
	_, alreadyHolds := l.holders[t]
	if (len(l.waiters) == 0 || alreadyHolds) && m.grantableLocked(l, t, mode) {
		m.grantLocked(l, t, key, mode)
		return nil
	}
	if timeout <= 0 {
		return ErrTimeout
	}

	w := &waiter{t: t, mode: mode}
	l.waiters = append(l.waiters, w)
	start := m.r.Now()
	timer := m.r.After(timeout, func() {
		m.mu.Lock()
		w.timeout = true
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer timer.Stop()

	m.waits++
	for !w.granted && !w.timeout {
		m.cond.Wait()
	}
	m.waitTotal += m.r.Now() - start
	if !w.granted {
		m.removeWaiterLocked(l, w)
		return ErrTimeout
	}
	return nil
}

// Release drops every lock held by t and wakes eligible waiters.
// This is the "drop the locks held by the transaction" step of
// Figure 1 (step 11).
func (m *Manager) Release(t tid.TID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for key := range m.held[t] {
		if l := m.locks[key]; l != nil {
			delete(l.holders, t)
			m.promoteLocked(l, key)
			if len(l.holders) == 0 && len(l.waiters) == 0 {
				delete(m.locks, key)
			}
		}
	}
	delete(m.held, t)
	delete(m.parent, t)
}

// OnChildCommit transfers every lock held by child to parent, the
// Moss inheritance rule for a committing nested transaction.
func (m *Manager) OnChildCommit(child, parent tid.TID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for key := range m.held[child] {
		l := m.locks[key]
		if l == nil {
			continue
		}
		childMode := l.holders[child]
		delete(l.holders, child)
		if cur, ok := l.holders[parent]; !ok || childMode > cur {
			l.holders[parent] = childMode
		}
		if m.held[parent] == nil {
			m.held[parent] = make(map[string]bool)
		}
		m.held[parent][key] = true
		m.promoteLocked(l, key)
	}
	delete(m.held, child)
	delete(m.parent, child)
}

// HoldsAny reports whether t currently holds any lock.
func (m *Manager) HoldsAny(t tid.TID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held[t]) > 0
}

// Holds reports t's mode on key, if any.
func (m *Manager) Holds(t tid.TID, key string) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.locks[key]
	if l == nil {
		return 0, false
	}
	mode, ok := l.holders[t]
	return mode, ok
}

// Waits reports how many lock requests have blocked and their total
// wait time — the lock-contention measure of the paper's §4.2
// analysis.
func (m *Manager) Waits() (int, time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.waits, m.waitTotal
}

// grantableLocked reports whether t may take key in mode right now:
// every conflicting holder must be t itself (upgrade) or an ancestor
// of t.
func (m *Manager) grantableLocked(l *lock, t tid.TID, mode Mode) bool {
	for h, hm := range l.holders {
		if h == t {
			continue
		}
		if mode == Exclusive || hm == Exclusive {
			if !m.isAncestorLocked(h, t) {
				return false
			}
		}
	}
	return true
}

// isAncestorLocked reports whether a is a proper ancestor of t in the
// nested-transaction tree.
func (m *Manager) isAncestorLocked(a, t tid.TID) bool {
	for {
		p, ok := m.parent[t]
		if !ok {
			return false
		}
		if p == a {
			return true
		}
		t = p
	}
}

func (m *Manager) grantLocked(l *lock, t tid.TID, key string, mode Mode) {
	if cur, ok := l.holders[t]; !ok || mode > cur {
		l.holders[t] = mode
	}
	if m.held[t] == nil {
		m.held[t] = make(map[string]bool)
	}
	m.held[t][key] = true
}

// promoteLocked grants queued waiters that have become eligible,
// FIFO, stopping at the first waiter that still conflicts so an
// exclusive waiter is not starved by later shared requests.
func (m *Manager) promoteLocked(l *lock, key string) {
	progressed := false
	for len(l.waiters) > 0 {
		w := l.waiters[0]
		if w.timeout {
			l.waiters = l.waiters[1:]
			continue
		}
		if !m.grantableLocked(l, w.t, w.mode) {
			break
		}
		m.grantLocked(l, w.t, key, w.mode)
		w.granted = true
		l.waiters = l.waiters[1:]
		progressed = true
	}
	if progressed {
		m.cond.Broadcast()
	}
}

func (m *Manager) removeWaiterLocked(l *lock, w *waiter) {
	for i, x := range l.waiters {
		if x == w {
			l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
			return
		}
	}
}
