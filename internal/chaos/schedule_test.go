package chaos

import (
	"bytes"
	"strings"
	"testing"
)

func TestScheduleRoundTrip(t *testing.T) {
	s := Schedule{
		Version:     Version,
		Seed:        42,
		Sites:       3,
		NonBlocking: true,
		Txns:        12,
		Faults: []Fault{
			{Class: ClassForce, Site: 2, Index: 7, Mode: ModeTorn},
			{Class: ClassMsg, Index: 133, Mode: ModePartition, WindowMs: 250},
		},
		Note: "round trip",
	}
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSchedule(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Errorf("re-encode differs:\n%s\nvs\n%s", b, b2)
	}
}

func TestDecodeScheduleRejectsBadInput(t *testing.T) {
	cases := []struct{ name, in string }{
		{"wrong version", `{"version":"chaos/v2","seed":1,"sites":3,"txns":4,"faults":[]}`},
		{"unknown field", `{"version":"chaos/v1","seed":1,"sites":3,"txns":4,"faults":[],"extra":1}`},
		{"no sites", `{"version":"chaos/v1","seed":1,"sites":0,"txns":4,"faults":[]}`},
		{"bad class", `{"version":"chaos/v1","seed":1,"sites":3,"txns":4,
			"faults":[{"class":"disk","index":0,"mode":"crash"}]}`},
		{"bad mode", `{"version":"chaos/v1","seed":1,"sites":3,"txns":4,
			"faults":[{"class":"force","site":1,"index":0,"mode":"drop"}]}`},
		{"negative index", `{"version":"chaos/v1","seed":1,"sites":3,"txns":4,
			"faults":[{"class":"msg","index":-1,"mode":"drop"}]}`},
	}
	for _, c := range cases {
		if _, err := DecodeSchedule([]byte(c.in)); err == nil {
			t.Errorf("%s: decoded without error", c.name)
		}
	}
}

func TestFaultStrings(t *testing.T) {
	got := Fault{Class: ClassForce, Site: 2, Index: 7, Mode: ModeTorn}.String()
	if !strings.Contains(got, "site2") || !strings.Contains(got, "torn") {
		t.Errorf("Fault.String() = %q", got)
	}
	got = Fault{Class: ClassMsg, Index: 5, Mode: ModePartition, WindowMs: 100}.String()
	if !strings.Contains(got, "partition") || !strings.Contains(got, "100ms") {
		t.Errorf("Fault.String() = %q", got)
	}
}
