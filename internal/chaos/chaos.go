package chaos

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"camelot/camelot"
	"camelot/internal/oracle"
	"camelot/internal/params"
	"camelot/internal/shardmap"
	"camelot/internal/sim"
	"camelot/internal/tid"
	"camelot/internal/transport"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

// recoverDelay is how long a crashed site stays down before the
// engine restarts it — long enough for peers to notice (timeouts are
// 50–200 ms in the workload config), short enough that the workload
// keeps making progress.
const recoverDelay = 250 * time.Millisecond

// defaultPartitionWindow heals a ModePartition cut that did not
// specify WindowMs.
const defaultPartitionWindow = 300 * time.Millisecond

// reorderDelay is how far a ModeReorder fault pushes its datagram
// behind the sender's subsequent traffic — comfortably past several
// send cycles, well short of the retry timers, so the late copy races
// real protocol progress rather than just looking like a drop.
const reorderDelay = 30 * time.Millisecond

// Result is one run's verdict.
type Result struct {
	// Schedule echoes what was run.
	Schedule Schedule `json:"schedule"`
	// Outcomes is the client's view of each workload transaction.
	Outcomes []string `json:"outcomes"`
	// Violations lists every broken invariant; empty means the
	// cluster survived the schedule.
	Violations []string `json:"violations,omitempty"`
	// Deadlock is the kernel's deadlock report, if the run wedged.
	Deadlock string `json:"deadlock,omitempty"`
	// Points is the enumerated injection-point list; present only for
	// a fault-free pilot run.
	Points []Point `json:"points,omitempty"`
}

// Failed reports whether the run broke any invariant.
func (r *Result) Failed() bool {
	return len(r.Violations) > 0 || r.Deadlock != ""
}

// Run replays the schedule's seeded workload with its faults injected
// and checks the recovery oracle. The same schedule always produces
// the same Result.
func Run(s Schedule) (*Result, error) {
	if s.Version == "" {
		s.Version = Version
	}
	if s.Version != Version {
		return nil, fmt.Errorf("chaos: version %q, want %q", s.Version, Version)
	}
	if s.Sites < 1 || s.Txns < 1 {
		return nil, fmt.Errorf("chaos: schedule needs sites and txns")
	}
	if !validProtocol(s.Protocol) {
		return nil, fmt.Errorf("chaos: unknown protocol %q", s.Protocol)
	}
	for _, f := range s.Faults {
		if err := validFault(f); err != nil {
			return nil, err
		}
	}
	if s.Shards < 0 {
		return nil, fmt.Errorf("chaos: negative shard count %d", s.Shards)
	}
	e := &engine{sched: s, msgFaults: make(map[int]Fault)}
	return e.run()
}

// engine is the per-run state: the cluster under test, the armed
// fault hooks, and the injection-point counters.
type engine struct {
	sched Schedule

	k      *sim.Kernel
	c      *camelot.Cluster
	sites  []camelot.SiteID
	smap   *shardmap.Map // nil unless the schedule shards the keyspace
	stores []*FaultStore // parallel to sites

	mu        sync.Mutex
	msgCount  int
	curMsg    int      // index inject assigned to the datagram in flight
	msgLabels []string // pilot labels, one per counted datagram
	msgFaults map[int]Fault
	recovery  []string // recovery failures, reported as violations
}

func srvName(id camelot.SiteID) string { return fmt.Sprintf("srv%d", id) }

// commitOptions maps the schedule's protocol selection to per-commit
// options. Paxos runs at F=1, so the sweep's single-site crashes are
// exactly the faults it must mask.
func (s Schedule) commitOptions() camelot.Options {
	switch s.Protocol {
	case ProtocolPaxos:
		return camelot.Options{Paxos: true, PaxosF: 1}
	case ProtocolNB:
		return camelot.Options{NonBlocking: true}
	case Protocol2PC:
		return camelot.Options{}
	}
	return camelot.Options{NonBlocking: s.NonBlocking}
}

// workloadConfig mirrors the functional-test configuration: the fast
// cost model with short timeouts, so a sweep of hundreds of runs
// stays cheap while still exercising every timer path.
func workloadConfig() camelot.Config {
	cfg := camelot.DefaultConfig()
	cfg.Params = params.Fast()
	cfg.Threads = 5
	cfg.GroupCommit = true
	cfg.LogFlushInterval = 20 * time.Millisecond
	cfg.LockTimeout = 500 * time.Millisecond
	cfg.RetryInterval = 50 * time.Millisecond
	cfg.InquireInterval = 50 * time.Millisecond
	cfg.PromotionTimeout = 100 * time.Millisecond
	cfg.AckFlushInterval = 20 * time.Millisecond
	cfg.RPCTimeout = 200 * time.Millisecond
	cfg.Trace = true
	return cfg
}

// build boots the kernel and the cluster under test from the
// schedule's workload parameters — shared between the chaos fault
// runner and the netem schedule replay.
func (e *engine) build() error {
	s := e.sched
	e.k = sim.New(s.Seed)
	cfg := workloadConfig()
	cfg.WrapStore = func(site camelot.SiteID, inner wal.Store) wal.Store {
		fs := NewFaultStore(inner, func() { e.crashAndRecover(site) })
		e.stores = append(e.stores, fs)
		return fs
	}
	e.c = camelot.NewCluster(e.k, cfg)
	if s.Shards > 0 {
		for i := 1; i <= s.Sites; i++ {
			e.sites = append(e.sites, camelot.SiteID(i))
		}
		m, err := shardmap.New(1, s.Shards, e.sites)
		if err != nil {
			return fmt.Errorf("chaos: shard map: %w", err)
		}
		e.smap = m
		e.c.SetShardMap(m)
		for _, id := range e.sites {
			e.c.AddNode(id).AddShardServers()
		}
	} else {
		for i := 1; i <= s.Sites; i++ {
			id := camelot.SiteID(i)
			e.sites = append(e.sites, id)
			e.c.AddNode(id).AddServer(srvName(id))
		}
	}
	return nil
}

func (e *engine) run() (*Result, error) {
	s := e.sched
	if err := e.build(); err != nil {
		return nil, err
	}

	// Arm the stable-store faults.
	for _, f := range s.Faults {
		switch f.Class {
		case ClassForce, ClassCkpt:
			idx := int(f.Site) - 1
			if idx < 0 || idx >= len(e.stores) {
				return nil, fmt.Errorf("chaos: fault site %d out of range", f.Site)
			}
			ff := f
			e.stores[idx].Arm(&ff)
		case ClassMsg:
			e.msgFaults[f.Index] = f
		}
	}
	e.c.Network().SetInjector(e.inject)
	e.c.Network().SetShaper(e.shape)

	txns := make([]oracle.Txn, s.Txns)
	var violations []string
	e.k.Go("chaos-client", func() {
		if e.smap != nil {
			e.shardWorkload(txns)
		} else {
			e.workload(txns)
		}
		violations = e.verify(txns)
		e.k.Stop()
	})
	e.k.RunUntil(10 * time.Minute)

	res := &Result{Schedule: s, Deadlock: e.k.Deadlocked(), Violations: violations}
	for _, tx := range txns {
		res.Outcomes = append(res.Outcomes, tx.Outcome.String())
	}
	if len(s.Faults) == 0 {
		res.Points = e.points()
	}
	return res, nil
}

// inject is the transport hook: it counts every datagram send and
// fires any msg fault addressed to the current count. It runs with
// the network lock held, so side effects are scheduled via After.
func (e *engine) inject(from, to tid.SiteID, payload any) bool {
	e.mu.Lock()
	k := e.msgCount
	e.msgCount++
	e.curMsg = k
	if len(e.sched.Faults) == 0 {
		e.msgLabels = append(e.msgLabels, fmt.Sprintf("%s %d→%d", payloadLabel(payload), from, to))
	}
	f, hit := e.msgFaults[k]
	e.mu.Unlock()
	if !hit {
		return false
	}
	switch f.Mode {
	case ModeDrop:
		return true
	case ModeCrash:
		e.crashAndRecover(from)
		return true // the datagram dies with its sender
	case ModePartition:
		window := time.Duration(f.WindowMs) * time.Millisecond
		if window <= 0 {
			window = defaultPartitionWindow
		}
		a, b := from, to
		e.k.After(0, func() { e.c.Network().SetPartition(a, b, true) })
		e.k.After(window, func() { e.c.Network().SetPartition(a, b, false) })
		return false // the cut catches it at delivery time
	}
	return false
}

// shape is the transport's traffic-shaping hook, carrying the msg
// fault modes the boolean injector cannot express (duplication,
// reorder-by-delay). It keys off the index inject just assigned: the
// network consults injector then shaper for the same datagram under
// its lock, so curMsg always names the datagram being shaped.
func (e *engine) shape(from, to tid.SiteID, payload any) transport.Shape {
	e.mu.Lock()
	f, hit := e.msgFaults[e.curMsg]
	e.mu.Unlock()
	if !hit {
		return transport.Shape{}
	}
	switch f.Mode {
	case ModeDup:
		return transport.Shape{Dup: 1}
	case ModeReorder:
		return transport.Shape{Delay: reorderDelay}
	}
	return transport.Shape{}
}

func payloadLabel(p any) string {
	if m, ok := p.(*wire.Msg); ok {
		return m.Kind.String()
	}
	return fmt.Sprintf("%T", p)
}

// crashAndRecover schedules an immediate crash of site and its
// restart recoverDelay later. Safe to call from any hook: both the
// crash and the recovery run on their own kernel threads.
func (e *engine) crashAndRecover(site camelot.SiteID) {
	e.k.After(0, func() { e.c.Node(site).Crash() })
	e.k.After(recoverDelay, func() {
		if err := e.c.Node(site).Recover(); err != nil {
			e.mu.Lock()
			e.recovery = append(e.recovery, fmt.Sprintf("recovery: site %d: %v", site, err))
			e.mu.Unlock()
		}
	})
}

// workload pushes s.Txns distributed update transactions through site
// 1, each writing one key at every site, with a checkpoint at a
// rotating site every fourth transaction. Outcomes land in txns.
func (e *engine) workload(txns []oracle.Txn) {
	for i := range txns {
		key := fmt.Sprintf("k%d", i)
		txns[i] = oracle.Txn{Key: key, Outcome: oracle.Skipped}

		// The coordinator may be mid-restart; retry Begin through it.
		var tx *camelot.Tx
		for attempt := 0; attempt < 40; attempt++ {
			var err error
			if tx, err = e.c.Node(1).Begin(); err == nil {
				break
			}
			tx = nil
			e.k.Sleep(100 * time.Millisecond)
		}
		if tx == nil {
			continue
		}
		txns[i].Family = tx.ID().Family

		ok := true
		for _, id := range e.sites {
			if err := tx.Write(srvName(id), key, []byte("v")); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			tx.Abort() //nolint:errcheck // outcome recorded as aborted either way
			txns[i].Outcome = oracle.Aborted
		} else {
			err := tx.CommitWith(e.sched.commitOptions())
			switch {
			case err == nil:
				txns[i].Outcome = oracle.Committed
			case errors.Is(err, camelot.ErrAborted):
				txns[i].Outcome = oracle.Aborted
			default:
				txns[i].Outcome = oracle.Unknown
			}
		}

		if (i+1)%4 == 0 {
			ck := e.sites[(i/4)%len(e.sites)]
			if !e.c.Node(ck).Crashed() {
				e.c.Node(ck).Checkpoint() //nolint:errcheck // injected ckpt faults surface here
			}
		}
		e.k.Sleep(20 * time.Millisecond)
	}
}

// shardKeyAt finds a key under prefix whose shard homes at site, by
// deterministic candidate search — a pure function of (map, prefix,
// site), so the sharded workload for a seed is identical every run.
func shardKeyAt(m *shardmap.Map, prefix string, site camelot.SiteID) (string, bool) {
	for c := 0; c < 4096; c++ {
		k := fmt.Sprintf("%s.%d", prefix, c)
		if m.SiteOf(k) == site {
			return k, true
		}
	}
	return "", false
}

// shardWorkload is the keyspace-aware counterpart of workload: each
// transaction writes one key homed at every placed site — distinct
// keys on distinct shards, so commitment must be atomic across shards
// rather than replicas — and every third transaction also touches a
// rotating shared hot key (the skew). Writes route by key through the
// shard map; the schedule is a pure function of the txn index, so the
// fault-point enumeration stays deterministic.
func (e *engine) shardWorkload(txns []oracle.Txn) {
	placed := e.smap.Sites()
	for i := range txns {
		writes := []oracle.Write{}
		for j, id := range placed {
			key, ok := shardKeyAt(e.smap, fmt.Sprintf("k%d.x%d", i, j), id)
			if !ok {
				continue
			}
			writes = append(writes, oracle.Write{Key: key, Site: id})
		}
		if i%3 == 0 {
			hot := fmt.Sprintf("hot%d", i%5)
			if home := e.smap.SiteOf(hot); home != 0 {
				writes = append(writes, oracle.Write{Key: hot, Site: home, Shared: true})
			}
		}
		txns[i] = oracle.Txn{Outcome: oracle.Skipped, Writes: writes}
		if len(writes) == 0 {
			continue
		}
		txns[i].Key = writes[0].Key

		// The coordinator may be mid-restart; retry Begin through it.
		var tx *camelot.Tx
		for attempt := 0; attempt < 40; attempt++ {
			var err error
			if tx, err = e.c.Node(1).Begin(); err == nil {
				break
			}
			tx = nil
			e.k.Sleep(100 * time.Millisecond)
		}
		if tx == nil {
			continue
		}
		txns[i].Family = tx.ID().Family

		ok := true
		for _, w := range writes {
			if err := tx.WriteKey(w.Key, []byte("v")); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			tx.Abort() //nolint:errcheck // outcome recorded as aborted either way
			txns[i].Outcome = oracle.Aborted
		} else {
			err := tx.CommitWith(e.sched.commitOptions())
			switch {
			case err == nil:
				txns[i].Outcome = oracle.Committed
			case errors.Is(err, camelot.ErrAborted):
				txns[i].Outcome = oracle.Aborted
			default:
				txns[i].Outcome = oracle.Unknown
			}
		}

		if (i+1)%4 == 0 {
			ck := e.sites[(i/4)%len(e.sites)]
			if !e.c.Node(ck).Crashed() {
				e.c.Node(ck).Checkpoint() //nolint:errcheck // injected ckpt faults surface here
			}
		}
		e.k.Sleep(20 * time.Millisecond)
	}
}

// verify heals the world, lets the protocol quiesce, and runs the
// oracle twice: once on the settled cluster, and once more after
// bouncing every site — updates that survive the second pass were
// genuinely durable, not just cached in volatile state.
func (e *engine) verify(txns []oracle.Txn) []string {
	// Heal: no more injections, no loss, no cuts, everyone up.
	e.c.Network().SetInjector(nil)
	e.c.Network().SetShaper(nil)
	for _, fs := range e.stores {
		fs.Arm(nil)
	}
	e.c.Network().SetLossRate(0)
	for i, a := range e.sites {
		for _, b := range e.sites[i+1:] {
			e.c.Network().SetPartition(a, b, false)
		}
	}
	// Let pending crash/recover timers fire, then pick up stragglers.
	e.k.Sleep(2 * time.Second)
	for _, id := range e.sites {
		if e.c.Node(id).Crashed() {
			if err := e.c.Node(id).Recover(); err != nil {
				e.mu.Lock()
				e.recovery = append(e.recovery, fmt.Sprintf("recovery: site %d: %v", id, err))
				e.mu.Unlock()
			}
		}
	}
	// Quiesce: resolution timers are ≤ 200 ms, so ten seconds is an
	// eternity of retries.
	e.k.Sleep(10 * time.Second)

	ocfg := oracle.Config{Sites: e.sites, ServerOf: srvName, ShardMap: e.smap}
	var out []string
	e.mu.Lock()
	out = append(out, e.recovery...)
	e.mu.Unlock()
	for _, v := range oracle.Check(e.c, ocfg, txns) {
		out = append(out, v.String())
	}

	// Durability pass: bounce everything, then re-check.
	for _, id := range e.sites {
		e.c.Node(id).Crash()
	}
	for _, id := range e.sites {
		if err := e.c.Node(id).Recover(); err != nil {
			out = append(out, fmt.Sprintf("durability: recovery: site %d: %v", id, err))
		}
	}
	e.k.Sleep(5 * time.Second)
	for _, v := range oracle.Check(e.c, ocfg, txns) {
		out = append(out, "durability: "+v.String())
	}
	return out
}

// points assembles the pilot's enumerated injection points: every
// stable-log block write (labeled with its record type), every
// datagram send, every checkpoint truncation.
func (e *engine) points() []Point {
	var out []Point
	for i, fs := range e.stores {
		site := uint32(e.sites[i])
		for k, label := range fs.Labels() {
			out = append(out, Point{Class: ClassForce, Site: site, Index: k, Label: label})
		}
	}
	e.mu.Lock()
	labels := append([]string(nil), e.msgLabels...)
	e.mu.Unlock()
	for k, label := range labels {
		out = append(out, Point{Class: ClassMsg, Index: k, Label: label})
	}
	for i, fs := range e.stores {
		site := uint32(e.sites[i])
		_, truncs := fs.Counts()
		for k := 0; k < truncs; k++ {
			out = append(out, Point{Class: ClassCkpt, Site: site, Index: k, Label: "truncate"})
		}
	}
	return out
}
