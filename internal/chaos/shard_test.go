package chaos

import (
	"strings"
	"testing"
)

// shardPilot runs the fault-free sharded schedule once and
// sanity-checks it.
func shardPilot(t *testing.T, shards int) *Result {
	t.Helper()
	r, err := Run(Schedule{Version: Version, Seed: 1, Sites: 3, Txns: 6, Shards: shards})
	if err != nil {
		t.Fatalf("sharded pilot: %v", err)
	}
	if r.Failed() {
		t.Fatalf("fault-free sharded pilot failed: %v %v", r.Violations, r.Deadlock)
	}
	return r
}

func TestShardedPilotCommitsCrossShard(t *testing.T) {
	r := shardPilot(t, 4)
	for _, o := range r.Outcomes {
		if o != "committed" {
			t.Errorf("fault-free sharded outcome %q, want committed", o)
		}
	}
	// The sharded workload forces shard-scoped log records: shard
	// server names must show up in the enumerated force points.
	sawShard := false
	for _, p := range r.Points {
		if p.Class == ClassForce && strings.Contains(p.Label, "COMMIT") {
			sawShard = true
		}
	}
	if !sawShard {
		t.Error("no force point labeled COMMIT in the sharded pilot")
	}
}

// TestShardedPilotShardlessSite covers shards < sites: round-robin
// placement leaves site 3 with no shard, so the workload, the
// liveness probe, and the durability bounce must all tolerate a
// data-less participant.
func TestShardedPilotShardlessSite(t *testing.T) {
	shardPilot(t, 2)
}

func TestShardedSingleFaultRunsSurviveOracle(t *testing.T) {
	base := Schedule{Version: Version, Seed: 1, Sites: 3, Txns: 6, Shards: 4}
	faults := []Fault{
		{Class: ClassMsg, Index: 30, Mode: ModeDrop},
		{Class: ClassMsg, Index: 50, Mode: ModeCrash},
		{Class: ClassForce, Site: 2, Index: 2, Mode: ModeTorn},
		{Class: ClassCkpt, Site: 1, Index: 0, Mode: ModeCrash},
	}
	for _, f := range faults {
		s := base
		s.Faults = []Fault{f}
		r, err := Run(s)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if r.Failed() {
			t.Errorf("%s: violations %v deadlock %q", f, r.Violations, r.Deadlock)
		}
	}
}

// TestShardedScheduleRoundTrip pins the chaos/v1 encoding: a sharded
// schedule encodes its shard count, an unsharded one omits the field
// entirely, so the pre-sharding repro corpus is byte-untouched.
func TestShardedScheduleRoundTrip(t *testing.T) {
	s := Schedule{Version: Version, Seed: 9, Sites: 3, Txns: 4, Shards: 4, Faults: []Fault{}}
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSchedule(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != 4 {
		t.Errorf("decoded Shards = %d, want 4", got.Shards)
	}

	s.Shards = 0
	b, err = s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "shards") {
		t.Errorf("unsharded schedule encodes a shards field:\n%s", b)
	}
}
