package chaos

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// The regression corpus: each testdata/*.json schedule pins a fault
// pattern that once exposed a real protocol bug (DESIGN.md §7). The
// bugs are fixed, so every replay must now survive the oracle — a
// regression would turn one of these green files red with an exact,
// replayable repro attached.
func TestCorpusReplaysClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("corpus has %d schedules, want at least the three §7 repros", len(files))
	}
	sort.Strings(files)
	for _, path := range files {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			s, err := DecodeSchedule(b)
			if err != nil {
				t.Fatalf("corpus file does not decode: %v", err)
			}
			if len(s.Faults) == 0 || s.Note == "" {
				t.Fatal("corpus schedules must carry faults and a provenance note")
			}
			r, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if r.Failed() {
				t.Errorf("regression: violations %v deadlock %q", r.Violations, r.Deadlock)
			}
			// Golden replay: the same schedule must produce the same
			// result, byte for byte, or the repro files stop being
			// replayable evidence.
			again, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			ra, _ := json.Marshal(r)
			rb, _ := json.Marshal(again)
			if !bytes.Equal(ra, rb) {
				t.Errorf("replay nondeterministic:\n%s\nvs\n%s", ra, rb)
			}
		})
	}
}
