// Package chaos is the systematic fault-schedule explorer. Where the
// randomized torture test (camelot/torture_test.go) throws dice at
// the cluster, chaos enumerates: a fault-free pilot run of a seeded
// workload records every injection point — each stable-log write,
// each datagram send, each checkpoint truncation — and the explorer
// then replays the identical workload once per point, injecting
// exactly one fault there (a crash, a torn or bit-flipped log block,
// a dropped datagram, a partition window), and asks the recovery
// oracle (internal/oracle) whether transactional semantics survived.
//
// Determinism is the whole trick: the simulation kernel replays the
// same seed into the same event sequence, so "the k-th log write at
// site 2" names the same moment in every run, a failing schedule is
// replayable from a few integers, and a sweep report is byte-for-byte
// reproducible. Failing schedules are shrunk to minimal fault sets
// and serialized as chaos/v1 JSON repro files (see testdata/ for the
// regression corpus pinning the bugs of DESIGN.md §7).
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Version is the repro-file format identifier.
const Version = "chaos/v1"

// Protocol names for Schedule.Protocol.
const (
	Protocol2PC   = "2pc"
	ProtocolNB    = "nb"
	ProtocolPaxos = "paxos"
)

// validProtocol accepts the known protocol names and "" (legacy: the
// NonBlocking flag decides).
func validProtocol(p string) bool {
	switch p {
	case "", Protocol2PC, ProtocolNB, ProtocolPaxos:
		return true
	}
	return false
}

// Fault classes.
const (
	// ClassForce targets the Index-th stable-log block write at Site.
	ClassForce = "force"
	// ClassMsg targets the Index-th datagram send in the run (counted
	// globally across sites, unreliable and reliable alike).
	ClassMsg = "msg"
	// ClassCkpt targets the Index-th checkpoint log-truncation at Site.
	ClassCkpt = "ckpt"
)

// Fault modes.
const (
	// ModeCrash crashes the site at the point: for force, the block is
	// durable but the force never acknowledges; for msg, the sender
	// dies with the datagram; for ckpt, the truncation is refused and
	// the site dies (the checkpoint image is already durable —
	// recovery must tolerate the un-truncated log).
	ModeCrash = "crash"
	// ModeTorn writes only half the log block before the site dies —
	// the classic torn write, which recovery must truncate cleanly.
	ModeTorn = "torn"
	// ModeBitflip writes the full log block with one bit flipped (so
	// its CRC fails) before the site dies.
	ModeBitflip = "bitflip"
	// ModeDrop silently drops the datagram.
	ModeDrop = "drop"
	// ModePartition cuts the datagram's link for WindowMs
	// milliseconds, then heals it.
	ModePartition = "partition"
	// ModeDup delivers the datagram twice — the at-least-once hazard
	// every UDP protocol step must be idempotent against.
	ModeDup = "dup"
	// ModeReorder delays the datagram past the sender's subsequent
	// sends, so it arrives out of order (a stale prepare after its
	// retransmit, an outcome before the vote that caused it, ...).
	ModeReorder = "reorder"
)

// Fault is one injected fault, addressed by class-specific counters
// that the deterministic replay makes meaningful.
type Fault struct {
	// Class is ClassForce, ClassMsg, or ClassCkpt.
	Class string `json:"class"`
	// Site addresses force/ckpt faults (whose stable store); msg
	// faults derive their victim from the targeted datagram's sender.
	Site uint32 `json:"site,omitempty"`
	// Index counts from zero: per-site for force/ckpt, global for msg.
	Index int `json:"index"`
	// Mode is one of the Mode constants valid for the class.
	Mode string `json:"mode"`
	// WindowMs is the partition-heal delay for ModePartition.
	WindowMs int `json:"window_ms,omitempty"`
}

// String renders the fault compactly for reports.
func (f Fault) String() string {
	switch f.Class {
	case ClassMsg:
		if f.Mode == ModePartition {
			return fmt.Sprintf("msg[%d]:partition(%dms)", f.Index, f.WindowMs)
		}
		return fmt.Sprintf("msg[%d]:%s", f.Index, f.Mode)
	default:
		return fmt.Sprintf("%s[site%d,%d]:%s", f.Class, f.Site, f.Index, f.Mode)
	}
}

// Schedule is one replayable run: the seeded workload plus the faults
// to inject into it. It is the chaos/v1 repro-file payload.
type Schedule struct {
	// Version must be "chaos/v1".
	Version string `json:"version"`
	// Seed seeds the simulation kernel (and thereby everything).
	Seed int64 `json:"seed"`
	// Sites is the cluster size; the workload's coordinator is site 1.
	Sites int `json:"sites"`
	// NonBlocking selects the three-phase protocol.
	NonBlocking bool `json:"nonblocking"`
	// Protocol names the commit protocol explicitly: "2pc", "nb", or
	// "paxos"; empty falls back to the NonBlocking flag (the chaos/v1
	// encoding predates Paxos Commit, so the field is omitempty and
	// the existing repro corpus decodes unchanged).
	Protocol string `json:"protocol,omitempty"`
	// Txns is the number of workload transactions.
	Txns int `json:"txns"`
	// Shards, when positive, shards the keyspace into that many shards
	// round-robin over the sites and runs the keyspace-aware cross-shard
	// workload instead of the replicated-key one. Zero (the default,
	// omitted from the encoding so the existing corpus is untouched)
	// keeps the legacy single-server-per-site layout.
	Shards int `json:"shards,omitempty"`
	// Faults is the set to inject; empty means a fault-free pilot.
	Faults []Fault `json:"faults"`
	// Note is free-form provenance ("pins DESIGN §7 bug 1", ...).
	Note string `json:"note,omitempty"`
}

// Encode serializes the schedule as indented chaos/v1 JSON with a
// trailing newline. Field order is fixed by the struct, so equal
// schedules encode byte-identically.
func (s Schedule) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("chaos: encode schedule: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeSchedule parses a chaos/v1 repro file strictly: unknown
// fields and version mismatches are errors, so a stale corpus fails
// loudly instead of silently replaying the wrong thing.
func DecodeSchedule(b []byte) (Schedule, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s Schedule
	if err := dec.Decode(&s); err != nil {
		return Schedule{}, fmt.Errorf("chaos: decode schedule: %w", err)
	}
	if s.Version != Version {
		return Schedule{}, fmt.Errorf("chaos: version %q, want %q", s.Version, Version)
	}
	if s.Sites < 1 || s.Txns < 1 {
		return Schedule{}, fmt.Errorf("chaos: schedule needs sites and txns")
	}
	if s.Shards < 0 {
		return Schedule{}, fmt.Errorf("chaos: negative shard count %d", s.Shards)
	}
	if !validProtocol(s.Protocol) {
		return Schedule{}, fmt.Errorf("chaos: unknown protocol %q", s.Protocol)
	}
	for _, f := range s.Faults {
		if err := validFault(f); err != nil {
			return Schedule{}, err
		}
	}
	return s, nil
}

func validFault(f Fault) error {
	ok := false
	switch f.Class {
	case ClassForce:
		ok = f.Mode == ModeCrash || f.Mode == ModeTorn || f.Mode == ModeBitflip
	case ClassMsg:
		ok = f.Mode == ModeDrop || f.Mode == ModeCrash || f.Mode == ModePartition ||
			f.Mode == ModeDup || f.Mode == ModeReorder
	case ClassCkpt:
		ok = f.Mode == ModeCrash
	}
	if !ok || f.Index < 0 {
		return fmt.Errorf("chaos: invalid fault %+v", f)
	}
	return nil
}

// Point is one enumerated injection point from a pilot run.
type Point struct {
	// Class and Site/Index address the point exactly as a Fault does.
	Class string `json:"class"`
	Site  uint32 `json:"site,omitempty"`
	Index int    `json:"index"`
	// Label says what happens there ("COMMIT" for a commit-record log
	// write, "*wire.Msg 1→2" for a datagram, ...).
	Label string `json:"label"`
}

// Modes returns the fault modes the sweep tries at this point.
func (p Point) Modes() []string {
	switch p.Class {
	case ClassForce:
		return []string{ModeCrash, ModeTorn, ModeBitflip}
	case ClassMsg:
		return []string{ModeDrop, ModeCrash, ModePartition, ModeDup, ModeReorder}
	default:
		return []string{ModeCrash}
	}
}
