package chaos

import "camelot/internal/wire"

// KindCoverage declares how the systematic fault sweep reaches one
// wire.Kind. A kind either appears in a fault-free pilot's
// injection-point enumeration — meaning every sweep over that
// protocol can target its datagrams directly — or is reachable only
// once injected faults steer the protocol onto its recovery paths,
// in which case FaultOnly says why.
type KindCoverage struct {
	// Pilots lists the protocols (Protocol2PC, ProtocolNB,
	// ProtocolPaxos) whose fault-free pilot runs send the kind.
	Pilots []string
	// FaultOnly, for kinds with no pilot, explains what has to go
	// wrong before the kind appears on the wire.
	FaultOnly string
}

// kindCoverage is the injection-coverage table: one row per protocol
// kind, stating how chaos testing reaches it. The table is pinned
// from both sides — statically, the kindsurface analyzer fails the
// lint run if a wire.Kind constant has no row here (a kind the sweep
// cannot name is a kind whose faults are never explored); dynamically,
// TestPilotKindCoverage replays the canonical pilots and fails if the
// kinds they actually send drift from the Pilots column in either
// direction.
var kindCoverage = map[wire.Kind]KindCoverage{
	wire.KPrepare:   {Pilots: []string{Protocol2PC}},
	wire.KVote:      {Pilots: []string{Protocol2PC}},
	wire.KCommit:    {Pilots: []string{Protocol2PC, ProtocolPaxos}},
	wire.KCommitAck: {Pilots: []string{Protocol2PC}},
	wire.KAbort: {FaultOnly: "under presumed abort a notification is sent only " +
		"once a fault (lost vote, crashed subordinate) forces an abort decision"},
	wire.KInquire: {FaultOnly: "inquiries need a blocked or orphaned subordinate, " +
		"i.e. a coordinator that crashed or went silent mid-protocol"},

	wire.KNBPrepare:      {Pilots: []string{ProtocolNB}},
	wire.KNBVote:         {Pilots: []string{ProtocolNB}},
	wire.KNBReplicate:    {Pilots: []string{ProtocolNB}},
	wire.KNBReplicateAck: {Pilots: []string{ProtocolNB}},
	wire.KNBOutcome:      {Pilots: []string{ProtocolNB}},
	wire.KNBOutcomeAck:   {Pilots: []string{ProtocolNB}},
	wire.KNBStatusReq: {FaultOnly: "the promotion status exchange starts only when a " +
		"subordinate times out and promotes itself; a fault-free run never promotes"},
	wire.KNBStatusResp: {FaultOnly: "response half of the promotion status exchange; " +
		"see KNBStatusReq"},
	wire.KNBAbortIntent: {FaultOnly: "a promoted coordinator assembles an abort quorum " +
		"only after faults prevented the commit quorum from forming"},
	wire.KNBAbortIntentAck: {FaultOnly: "ack half of the abort-quorum round; " +
		"see KNBAbortIntent"},

	wire.KChildCommit: {FaultOnly: "nested-transaction traffic; the chaos workload is " +
		"flat top-level transactions — the nested paths are exercised by the core suite"},
	wire.KChildAbort: {FaultOnly: "nested-transaction traffic; see KChildCommit"},

	wire.KPaxosPrepare: {Pilots: []string{ProtocolPaxos}},
	wire.KPaxosVote: {FaultOnly: "an RM's explicit No vote short-circuits straight to " +
		"the leader; fault-free instances vote Yes through the 2a/2b path"},
	wire.KPaxos2a: {Pilots: []string{ProtocolPaxos}},
	wire.KPaxos2b: {Pilots: []string{ProtocolPaxos}},
	wire.KPaxos1a: {FaultOnly: "acceptor-takeover prepare; a ballot above zero is " +
		"started only when the leader crashed"},
	wire.KPaxos1b: {FaultOnly: "promise half of acceptor takeover; see KPaxos1a"},
}

// Coverage returns the injection-coverage row for k and whether the
// table has one.
func Coverage(k wire.Kind) (KindCoverage, bool) {
	c, ok := kindCoverage[k]
	return c, ok
}
