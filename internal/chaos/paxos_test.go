package chaos

import (
	"strings"
	"testing"
)

// paxosPilot runs the fault-free Paxos schedule once.
func paxosPilot(t *testing.T) *Result {
	t.Helper()
	r, err := Run(Schedule{Version: Version, Seed: 1, Sites: 3, Protocol: ProtocolPaxos, Txns: 8})
	if err != nil {
		t.Fatalf("pilot: %v", err)
	}
	if r.Failed() {
		t.Fatalf("fault-free paxos pilot failed: %v %v", r.Violations, r.Deadlock)
	}
	return r
}

// TestPaxosPilotEnumeratesAcceptorPoints: the injection-point
// enumeration must reach the Paxos-specific surfaces — the acceptors'
// batched accepted-record forces and the 2a/2b vote datagrams —
// because a sweep that never lands a fault on them proves nothing
// about the protocol.
func TestPaxosPilotEnumeratesAcceptorPoints(t *testing.T) {
	r := paxosPilot(t)
	sawForce := map[string]bool{}
	sawMsg := map[string]bool{}
	for _, p := range r.Points {
		switch p.Class {
		case ClassForce:
			sawForce[p.Label] = true
		case ClassMsg:
			sawMsg[strings.Fields(p.Label)[0]] = true
		}
	}
	for _, label := range []string{"PAXOS-PREPARE", "PAXOS-ACCEPT"} {
		if !sawForce[label] {
			t.Errorf("no force point labeled %s", label)
		}
	}
	for _, kind := range []string{"PAXOS-PREPARE", "PAXOS-2A", "PAXOS-2B"} {
		if !sawMsg[kind] {
			t.Errorf("no msg point carrying %s", kind)
		}
	}
	for _, o := range r.Outcomes {
		if o != "committed" {
			t.Errorf("fault-free outcome %q, want committed", o)
		}
	}
}

// TestPaxosSweepBoundedZeroViolations: the seeded single-fault sweep
// over the Paxos workload must come back clean, like the 2PC and NB
// sweeps of TestSweepBoundedZeroViolations.
func TestPaxosSweepBoundedZeroViolations(t *testing.T) {
	maxPoints := 12
	if testing.Short() {
		maxPoints = 4
	}
	rep, err := Sweep(Options{Sites: 3, Protocol: ProtocolPaxos, Seed: 1, Txns: 6, MaxPoints: maxPoints}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 0 {
		enc, _ := EncodeReport(rep)
		t.Errorf("%d failing schedule(s):\n%s", len(rep.Failures), enc)
	}
	if rep.PointsTotal == 0 || rep.PointsRun == 0 {
		t.Errorf("no points enumerated (%d) or run (%d)", rep.PointsTotal, rep.PointsRun)
	}
}

// TestPaxosNonBlockingUnderSingleSiteCrash pins the protocol's
// headline property at F=1: crashing any single site — the
// coordinator included, mid-commit — must leave every workload
// transaction resolvable. For each site the test picks that site's
// first Paxos protocol datagram from the pilot enumeration and
// crashes the sender there, then requires the oracle-checked run to
// finish without violations or deadlock.
func TestPaxosNonBlockingUnderSingleSiteCrash(t *testing.T) {
	pilotRun := paxosPilot(t)

	// First Paxos-datagram index per sending site.
	firstBySender := map[string]int{}
	for _, p := range pilotRun.Points {
		if p.Class != ClassMsg || !strings.HasPrefix(p.Label, "PAXOS-") {
			continue
		}
		fields := strings.Fields(p.Label) // "KIND from→to"
		sender := strings.Split(fields[1], "→")[0]
		if _, ok := firstBySender[sender]; !ok {
			firstBySender[sender] = p.Index
		}
	}
	for _, sender := range []string{"1", "2", "3"} {
		idx, ok := firstBySender[sender]
		if !ok {
			t.Fatalf("pilot enumerated no Paxos datagram sent by site %s", sender)
		}
		s := Schedule{
			Version: Version, Seed: 1, Sites: 3, Protocol: ProtocolPaxos, Txns: 6,
			Faults: []Fault{{Class: ClassMsg, Index: idx, Mode: ModeCrash}},
		}
		r, err := Run(s)
		if err != nil {
			t.Fatalf("site %s crash: %v", sender, err)
		}
		if r.Failed() {
			t.Errorf("site %s crash: violations %v deadlock %q", sender, r.Violations, r.Deadlock)
		}
	}
}
