package chaos

import (
	"sort"
	"strings"
	"testing"

	"camelot/internal/wire"
)

// pilotSeeds are the canonical fault-free pilots the coverage table's
// Pilots column is pinned against: four seeded workloads per
// protocol, enough that every phase of every protocol (including the
// delayed-ack flush) appears in at least one run. Deterministic
// replay makes the observed kind set a constant of the repository.
var pilotSeeds = []int64{1, 2, 3, 4}

// TestPilotKindCoverage is the dynamic counterpart of the kindsurface
// analyzer: where the analyzer proves every wire.Kind has a row in
// the coverage table, this test proves the Pilots column tells the
// truth. For each protocol it replays the canonical pilots and
// compares the kinds actually sent against the kinds the table claims
// that protocol's pilot sends — a mismatch in either direction fails
// (a missing claim means the sweep is blind to reachable traffic; a
// stale claim means the table promises coverage the pilot no longer
// delivers).
func TestPilotKindCoverage(t *testing.T) {
	for _, proto := range []string{Protocol2PC, ProtocolNB, ProtocolPaxos} {
		observed := make(map[wire.Kind]bool)
		for _, seed := range pilotSeeds {
			res, err := Run(Schedule{Seed: seed, Sites: 3, Txns: 8, Protocol: proto})
			if err != nil {
				t.Fatalf("%s seed %d: %v", proto, seed, err)
			}
			if res.Failed() {
				t.Fatalf("%s seed %d: fault-free pilot failed: %v", proto, seed, res.Violations)
			}
			for _, pt := range res.Points {
				if pt.Class != ClassMsg {
					continue
				}
				// ClassMsg labels are "KIND from→to"; non-wire payloads
				// (commman RPCs) are labeled by their Go type instead
				// and resolve to no kind.
				if k, ok := kindByName(strings.Fields(pt.Label)[0]); ok {
					observed[k] = true
				}
			}
		}

		declared := make(map[wire.Kind]bool)
		for k, c := range kindCoverage {
			for _, p := range c.Pilots {
				if p == proto {
					declared[k] = true
				}
			}
		}

		for _, k := range wire.Kinds() {
			switch {
			case observed[k] && !declared[k]:
				t.Errorf("%s pilot sends %s but the coverage table does not list it under Pilots", proto, k)
			case !observed[k] && declared[k]:
				t.Errorf("coverage table claims the %s pilot sends %s but it does not", proto, k)
			}
		}
	}
}

// TestCoverageTableShape pins the table's structural invariants:
// every registered kind has exactly one form of coverage — a pilot
// list or a fault-only justification, never both and never neither.
// (The kindsurface analyzer enforces presence statically too; this
// keeps `go test` and `make lint` agreeing without running the
// other.)
func TestCoverageTableShape(t *testing.T) {
	for _, k := range wire.Kinds() {
		c, ok := Coverage(k)
		if !ok {
			t.Errorf("wire.Kind %s has no injection-coverage row", k)
			continue
		}
		if len(c.Pilots) > 0 && c.FaultOnly != "" {
			t.Errorf("%s: both Pilots and FaultOnly set; FaultOnly is only for kinds no pilot sends", k)
		}
		if len(c.Pilots) == 0 && c.FaultOnly == "" {
			t.Errorf("%s: empty coverage row — list its pilots or justify why only faults reach it", k)
		}
		for _, p := range c.Pilots {
			if !validProtocol(p) {
				t.Errorf("%s: unknown protocol %q in Pilots", k, p)
			}
		}
		if !sort.StringsAreSorted(c.Pilots) {
			t.Errorf("%s: Pilots %v not sorted", k, c.Pilots)
		}
	}
	if len(kindCoverage) != len(wire.Kinds()) {
		t.Errorf("coverage table has %d rows for %d registered kinds", len(kindCoverage), len(wire.Kinds()))
	}
}

// kindByName reverses Kind.String() over the registered kinds.
func kindByName(name string) (wire.Kind, bool) {
	for _, k := range wire.Kinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}
