package chaos

import (
	"fmt"
	"time"

	"camelot/camelot"
	"camelot/internal/netem"
	"camelot/internal/oracle"
	"camelot/internal/tid"
	"camelot/internal/transport"
)

// NetemResult is one netem-schedule replay's verdict: the workload
// and fault schedule that ran, the client's view, the emulator's
// decision tallies, and any broken invariants.
type NetemResult struct {
	Workload Schedule       `json:"workload"`
	Netem    netem.Schedule `json:"netem"`
	Outcomes []string       `json:"outcomes"`
	// Counts tallies the emulator's drop/dup/delay decisions; under
	// the simulation they are part of the deterministic replay.
	Counts     netem.Counts `json:"counts"`
	Violations []string     `json:"violations,omitempty"`
	Deadlock   string       `json:"deadlock,omitempty"`
}

// Failed reports whether the replay broke any invariant.
func (r *NetemResult) Failed() bool {
	return len(r.Violations) > 0 || r.Deadlock != ""
}

// RunNetem replays a netem/v1 fault schedule against the chaos
// workload inside the simulation. The emulator's per-link PRNGs drive
// every drop/dup/delay decision and its clock is the kernel's virtual
// clock, so the replay is fully deterministic: the same (workload,
// netem) pair always yields a byte-identical NetemResult. This is the
// cheap, replayable twin of running the same schedule against the
// real cluster with camelot-cluster -netem.
//
// Simulation limits: OpStop/OpCont freeze a process, which the
// cooperative kernel cannot express, so they are ignored here (the
// real driver applies them with signals); a WAL fault is approximated
// as a crash at the targeted block append — the closest simulated
// analog of a dying disk.
func RunNetem(ns netem.Schedule, w Schedule) (*NetemResult, error) {
	if err := ns.Validate(); err != nil {
		return nil, err
	}
	if w.Version == "" {
		w.Version = Version
	}
	if w.Sites < 1 || w.Txns < 1 {
		return nil, fmt.Errorf("chaos: netem workload needs sites and txns")
	}
	if !validProtocol(w.Protocol) {
		return nil, fmt.Errorf("chaos: unknown protocol %q", w.Protocol)
	}
	if len(w.Faults) > 0 {
		return nil, fmt.Errorf("chaos: netem replay takes its faults from the netem schedule")
	}
	for _, f := range ns.Procs {
		if int(f.Site) > w.Sites {
			return nil, fmt.Errorf("chaos: proc fault site %d beyond %d sites", f.Site, w.Sites)
		}
	}
	e := &engine{sched: w, msgFaults: make(map[int]Fault)}
	return e.runNetem(ns)
}

func (e *engine) runNetem(ns netem.Schedule) (*NetemResult, error) {
	s := e.sched
	if err := e.build(); err != nil {
		return nil, err
	}

	// WAL faults: kill the site at its targeted block append.
	for _, f := range ns.WAL {
		idx := int(f.Site) - 1
		if idx < 0 || idx >= len(e.stores) {
			return nil, fmt.Errorf("chaos: wal fault site %d out of range", f.Site)
		}
		ff := Fault{Class: ClassForce, Site: f.Site, Index: f.FailAppend, Mode: ModeCrash}
		e.stores[idx].Arm(&ff)
	}

	// Link rules and partition windows ride the transport's shaper,
	// ruled by the emulator on the kernel's clock.
	em := netem.NewEmulator(ns, func() time.Duration { return time.Duration(e.k.Now()) })
	e.c.Network().SetShaper(func(from, to tid.SiteID, payload any) transport.Shape {
		d := em.Decide(uint32(from), uint32(to))
		return transport.Shape{Drop: d.Drop, Dup: d.Dup, Delay: d.Delay}
	})

	// Process faults become kernel-scheduled crash/recover events.
	for _, f := range ns.Procs {
		site := camelot.SiteID(f.Site)
		at := time.Duration(f.AtMs) * time.Millisecond
		switch f.Op {
		case netem.OpKill:
			e.k.After(at, func() {
				if !e.c.Node(site).Crashed() {
					e.c.Node(site).Crash()
				}
			})
		case netem.OpRestart:
			e.k.After(at, func() {
				if !e.c.Node(site).Crashed() {
					return
				}
				if err := e.c.Node(site).Recover(); err != nil {
					e.mu.Lock()
					e.recovery = append(e.recovery, fmt.Sprintf("recovery: site %d: %v", site, err))
					e.mu.Unlock()
				}
			})
		}
	}

	txns := make([]oracle.Txn, s.Txns)
	var violations []string
	e.k.Go("netem-client", func() {
		if e.smap != nil {
			e.shardWorkload(txns)
		} else {
			e.workload(txns)
		}
		violations = e.verify(txns)
		e.k.Stop()
	})
	e.k.RunUntil(10 * time.Minute)

	res := &NetemResult{
		Workload:   s,
		Netem:      ns,
		Counts:     em.Counts(),
		Deadlock:   e.k.Deadlocked(),
		Violations: violations,
	}
	for _, tx := range txns {
		res.Outcomes = append(res.Outcomes, tx.Outcome.String())
	}
	return res, nil
}
