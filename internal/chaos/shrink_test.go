package chaos

import "testing"

func sched(faults ...Fault) Schedule {
	return Schedule{Version: Version, Seed: 1, Sites: 3, Txns: 4, Faults: faults}
}

func TestShrinkDropsIrrelevantFaults(t *testing.T) {
	essential := Fault{Class: ClassForce, Site: 1, Index: 5, Mode: ModeCrash}
	noise := []Fault{
		{Class: ClassMsg, Index: 10, Mode: ModeDrop},
		{Class: ClassMsg, Index: 20, Mode: ModeDrop},
		{Class: ClassCkpt, Site: 2, Index: 0, Mode: ModeCrash},
	}
	s := sched(noise[0], essential, noise[1], noise[2])
	// The synthetic predicate: failing iff the essential fault is in.
	failing := func(c Schedule) bool {
		for _, f := range c.Faults {
			if f == essential {
				return true
			}
		}
		return false
	}
	min, runs := Shrink(s, failing)
	if len(min.Faults) != 1 || min.Faults[0] != essential {
		t.Fatalf("shrunk to %v, want just %v", min.Faults, essential)
	}
	if runs == 0 {
		t.Fatal("shrink reported zero predicate runs")
	}
}

func TestShrinkNeedsPair(t *testing.T) {
	a := Fault{Class: ClassMsg, Index: 3, Mode: ModeDrop}
	b := Fault{Class: ClassMsg, Index: 9, Mode: ModeDrop}
	noise := Fault{Class: ClassMsg, Index: 30, Mode: ModeDrop}
	failing := func(c Schedule) bool {
		hasA, hasB := false, false
		for _, f := range c.Faults {
			hasA = hasA || f == a
			hasB = hasB || f == b
		}
		return hasA && hasB
	}
	min, _ := Shrink(sched(noise, a, noise, b), failing)
	if len(min.Faults) != 2 {
		t.Fatalf("shrunk to %v, want the {a,b} pair", min.Faults)
	}
}

func TestShrinkKeepsFailingInvariant(t *testing.T) {
	// Whatever Shrink returns must itself satisfy the predicate.
	a := Fault{Class: ClassForce, Site: 2, Index: 1, Mode: ModeTorn}
	failing := func(c Schedule) bool { return len(c.Faults) >= 1 }
	min, _ := Shrink(sched(a, a, a), failing)
	if !failing(min) {
		t.Fatal("shrunk schedule no longer fails")
	}
	if len(min.Faults) != 1 {
		t.Fatalf("shrunk to %d faults, want 1", len(min.Faults))
	}
}
