package chaos

import (
	"encoding/json"
	"testing"

	"camelot/internal/netem"
)

func netemLossy() netem.Schedule {
	return netem.Schedule{
		Version: netem.Version,
		Seed:    11,
		Links: []netem.Rule{{
			Drop: 0.05, Dup: 0.05, DelayMs: 1, JitterMs: 4,
			Reorder: 0.1, ReorderMs: 25,
		}},
		Partitions: []netem.Partition{{A: 1, B: 2, StartMs: 400, EndMs: 900, OneWay: true}},
		Procs: []netem.ProcFault{
			{Site: 3, AtMs: 600, Op: netem.OpKill},
			{Site: 3, AtMs: 1100, Op: netem.OpRestart},
		},
	}
}

// A netem/v1 schedule replayed under the simulation is byte-for-byte
// deterministic: same (netem, workload) pair, same serialized result
// — outcomes, emulator decision counts, everything.
func TestNetemReplayByteIdentical(t *testing.T) {
	ns := netemLossy()
	w := Schedule{Version: Version, Seed: 5, Sites: 3, Txns: 8, Protocol: Protocol2PC}
	a, err := RunNetem(ns, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNetem(ns, w)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("replays differ:\n%s\nvs\n%s", ja, jb)
	}
	if a.Counts.Seen == 0 || a.Counts.Dropped == 0 {
		t.Fatalf("lossy schedule shaped nothing: %+v", a.Counts)
	}
	if a.Failed() {
		t.Fatalf("violations %v deadlock %q", a.Violations, a.Deadlock)
	}
}

// The full storm — loss, duplication, reorder, jitter, a one-way
// partition, and a mid-run kill+restart — must leave every protocol's
// invariants intact once the network heals.
func TestNetemStormSurvivesOracleAllProtocols(t *testing.T) {
	protos := []string{Protocol2PC, ProtocolNB, ProtocolPaxos}
	if testing.Short() {
		protos = protos[:1]
	}
	for _, proto := range protos {
		ns := netemLossy()
		w := Schedule{Version: Version, Seed: 9, Sites: 3, Txns: 8, Protocol: proto}
		r, err := RunNetem(ns, w)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if r.Failed() {
			t.Errorf("%s: violations %v deadlock %q", proto, r.Violations, r.Deadlock)
		}
	}
}

// A WAL fault (dying disk at a targeted append) maps to a crash at
// that block write; the cluster must recover and stay consistent.
func TestNetemWALFaultSurvives(t *testing.T) {
	ns := netem.Schedule{
		Version: netem.Version,
		Seed:    3,
		WAL:     []netem.WALFault{{Site: 2, FailAppend: 10}},
	}
	w := Schedule{Version: Version, Seed: 2, Sites: 3, Txns: 6}
	r, err := RunNetem(ns, w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed() {
		t.Fatalf("violations %v deadlock %q", r.Violations, r.Deadlock)
	}
}
