package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Options parameterizes a sweep.
type Options struct {
	// Sites is the cluster size (coordinator is site 1).
	Sites int
	// NonBlocking selects the three-phase protocol for the workload.
	NonBlocking bool
	// Protocol names the protocol explicitly ("2pc", "nb", "paxos");
	// empty defers to NonBlocking.
	Protocol string
	// Seed seeds the kernel; every run of the sweep reuses it.
	Seed int64
	// Txns is the workload length.
	Txns int
	// Shards, when positive, shards the keyspace and sweeps the
	// cross-shard workload (see Schedule.Shards).
	Shards int
	// MaxPoints caps how many enumerated injection points the sweep
	// explores (0 = all of them). Points are sampled evenly across
	// the enumeration, so a bounded sweep still covers the whole run.
	MaxPoints int
}

// Failure is one fault schedule that broke an invariant, shrunk to a
// minimal fault set.
type Failure struct {
	Schedule   Schedule `json:"schedule"`
	Violations []string `json:"violations,omitempty"`
	Deadlock   string   `json:"deadlock,omitempty"`
}

// Report is the sweep's full, deterministic account: same options →
// byte-identical EncodeReport output.
type Report struct {
	Version     string    `json:"version"`
	Seed        int64     `json:"seed"`
	Sites       int       `json:"sites"`
	NonBlocking bool      `json:"nonblocking"`
	Protocol    string    `json:"protocol,omitempty"`
	Txns        int       `json:"txns"`
	Shards      int       `json:"shards,omitempty"`
	PointsTotal int       `json:"points_total"`
	PointsRun   int       `json:"points_run"`
	Runs        int       `json:"runs"`
	Points      []Point   `json:"points,omitempty"`
	Failures    []Failure `json:"failures"`
}

// EncodeReport serializes the report as indented JSON with a trailing
// newline; struct-fixed field order keeps it byte-stable.
func EncodeReport(r *Report) ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("chaos: encode report: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeReport parses a sweep report strictly.
func DecodeReport(b []byte) (*Report, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("chaos: decode report: %w", err)
	}
	return &r, nil
}

// Sweep runs the fault-free pilot, enumerates its injection points,
// and replays the workload once per (point, mode) pair with that one
// fault injected. Every failure is shrunk and collected. progress, if
// non-nil, is called before each run with a human-readable line.
func Sweep(opts Options, progress func(string)) (*Report, error) {
	if opts.Sites < 1 {
		opts.Sites = 3
	}
	if opts.Txns < 1 {
		opts.Txns = 12
	}
	base := Schedule{
		Version:     Version,
		Seed:        opts.Seed,
		Sites:       opts.Sites,
		NonBlocking: opts.NonBlocking,
		Protocol:    opts.Protocol,
		Txns:        opts.Txns,
		Shards:      opts.Shards,
	}
	say := func(format string, args ...any) {
		if progress != nil {
			progress(fmt.Sprintf(format, args...))
		}
	}

	say("pilot: enumerating injection points (seed %d, %d sites, nonblocking=%v)",
		opts.Seed, opts.Sites, opts.NonBlocking)
	pilot, err := Run(base)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Version:     Version,
		Seed:        opts.Seed,
		Sites:       opts.Sites,
		NonBlocking: opts.NonBlocking,
		Protocol:    opts.Protocol,
		Txns:        opts.Txns,
		Shards:      opts.Shards,
		PointsTotal: len(pilot.Points),
		Failures:    []Failure{},
	}
	rep.Runs++
	if pilot.Failed() {
		// A failing pilot means the workload itself is broken; report
		// it as a failure of the empty schedule and stop.
		rep.Failures = append(rep.Failures, Failure{
			Schedule: base, Violations: pilot.Violations, Deadlock: pilot.Deadlock,
		})
		return rep, nil
	}

	points := samplePoints(pilot.Points, opts.MaxPoints)
	rep.PointsRun = len(points)
	rep.Points = points
	for i, p := range points {
		for _, mode := range p.Modes() {
			s := base
			s.Faults = []Fault{{Class: p.Class, Site: p.Site, Index: p.Index, Mode: mode}}
			say("point %d/%d: %s (%s)", i+1, len(points), s.Faults[0], p.Label)
			r, err := Run(s)
			if err != nil {
				return nil, err
			}
			rep.Runs++
			if !r.Failed() {
				continue
			}
			say("FAIL %s: %d violation(s) — shrinking", s.Faults[0], len(r.Violations))
			min, runs := Shrink(s, func(cand Schedule) bool {
				rr, err := Run(cand)
				return err == nil && rr.Failed()
			})
			rep.Runs += runs
			final, err := Run(min)
			if err != nil {
				return nil, err
			}
			rep.Runs++
			rep.Failures = append(rep.Failures, Failure{
				Schedule: min, Violations: final.Violations, Deadlock: final.Deadlock,
			})
		}
	}
	return rep, nil
}

// samplePoints picks at most max points, evenly spread across the
// enumeration (all of them when max ≤ 0 or nothing to drop).
func samplePoints(points []Point, max int) []Point {
	if max <= 0 || len(points) <= max {
		return points
	}
	out := make([]Point, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, points[i*len(points)/max])
	}
	return out
}
