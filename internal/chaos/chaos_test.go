package chaos

import (
	"bytes"
	"testing"
)

// pilot runs the fault-free schedule once and sanity-checks it.
func pilot(t *testing.T, nb bool) *Result {
	t.Helper()
	r, err := Run(Schedule{Version: Version, Seed: 1, Sites: 3, NonBlocking: nb, Txns: 8})
	if err != nil {
		t.Fatalf("pilot: %v", err)
	}
	if r.Failed() {
		t.Fatalf("fault-free pilot failed: %v %v", r.Violations, r.Deadlock)
	}
	return r
}

func TestPilotEnumeratesAllPointClasses(t *testing.T) {
	r := pilot(t, false)
	byClass := map[string]int{}
	for _, p := range r.Points {
		byClass[p.Class]++
	}
	for _, class := range []string{ClassForce, ClassMsg, ClassCkpt} {
		if byClass[class] == 0 {
			t.Errorf("pilot enumerated no %q points", class)
		}
	}
	// Every committed transaction forces a commit record somewhere; the
	// labels must say so.
	sawCommit := false
	for _, p := range r.Points {
		if p.Class == ClassForce && p.Label == "COMMIT" {
			sawCommit = true
			break
		}
	}
	if !sawCommit {
		t.Error("no force point labeled COMMIT")
	}
	for _, o := range r.Outcomes {
		if o != "committed" {
			t.Errorf("fault-free outcome %q, want committed", o)
		}
	}
}

func TestPilotDeterministic(t *testing.T) {
	a, b := pilot(t, false), pilot(t, false)
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestSingleFaultRunsSurviveOracle(t *testing.T) {
	// One representative fault of each class/mode family; the full
	// cross product is the sweep's job (make chaos).
	base := Schedule{Version: Version, Seed: 1, Sites: 3, Txns: 8}
	faults := []Fault{
		{Class: ClassMsg, Index: 40, Mode: ModeDrop},
		{Class: ClassMsg, Index: 60, Mode: ModeCrash},
		{Class: ClassMsg, Index: 25, Mode: ModePartition, WindowMs: 200},
		{Class: ClassForce, Site: 1, Index: 3, Mode: ModeCrash},
		{Class: ClassForce, Site: 2, Index: 2, Mode: ModeTorn},
		{Class: ClassForce, Site: 3, Index: 2, Mode: ModeBitflip},
		{Class: ClassCkpt, Site: 1, Index: 0, Mode: ModeCrash},
	}
	for _, f := range faults {
		s := base
		s.Faults = []Fault{f}
		r, err := Run(s)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if r.Failed() {
			t.Errorf("%s: violations %v deadlock %q", f, r.Violations, r.Deadlock)
		}
	}
}

func TestSweepBoundedZeroViolations(t *testing.T) {
	maxPoints := 12
	if testing.Short() {
		maxPoints = 4
	}
	for _, nb := range []bool{false, true} {
		rep, err := Sweep(Options{Sites: 3, NonBlocking: nb, Seed: 1, Txns: 6, MaxPoints: maxPoints}, nil)
		if err != nil {
			t.Fatalf("nonblocking=%v: %v", nb, err)
		}
		if len(rep.Failures) != 0 {
			enc, _ := EncodeReport(rep)
			t.Errorf("nonblocking=%v: %d failing schedule(s):\n%s", nb, len(rep.Failures), enc)
		}
		if rep.PointsTotal == 0 || rep.PointsRun == 0 {
			t.Errorf("nonblocking=%v: no points enumerated (%d) or run (%d)",
				nb, rep.PointsTotal, rep.PointsRun)
		}
	}
}

func TestSweepReportByteIdentical(t *testing.T) {
	opts := Options{Sites: 3, Seed: 7, Txns: 5, MaxPoints: 3}
	a, err := Sweep(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := EncodeReport(a)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := EncodeReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Error("same options, different report bytes — sweep is nondeterministic")
	}
}
