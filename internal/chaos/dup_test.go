package chaos

import (
	"testing"
)

// Duplicate delivery and reordering at representative protocol
// datagrams must be harmless under every protocol: each step is
// either idempotent or guarded by phase/ballot state. The indexes
// span the workload — early (prepare traffic), middle (votes and
// outcomes), late (acks and inquiries) — and the full cross product
// over every send point is the sweep's job (make chaos).
func TestDupAndReorderSurviveOracleAllProtocols(t *testing.T) {
	indexes := []int{5, 25, 40, 60, 80}
	if testing.Short() {
		indexes = []int{25, 60}
	}
	for _, proto := range []string{Protocol2PC, ProtocolNB, ProtocolPaxos} {
		for _, mode := range []string{ModeDup, ModeReorder} {
			for _, idx := range indexes {
				s := Schedule{Version: Version, Seed: 1, Sites: 3, Txns: 8,
					Protocol: proto,
					Faults:   []Fault{{Class: ClassMsg, Index: idx, Mode: mode}}}
				r, err := Run(s)
				if err != nil {
					t.Fatalf("%s msg[%d]:%s: %v", proto, idx, mode, err)
				}
				if r.Failed() {
					t.Errorf("%s msg[%d]:%s: violations %v deadlock %q",
						proto, idx, mode, r.Violations, r.Deadlock)
				}
			}
		}
	}
}

// A duplicated datagram replayed from a chaos/v1 schedule is still
// deterministic: two runs of the same dup schedule produce identical
// outcome lists.
func TestDupScheduleDeterministic(t *testing.T) {
	s := Schedule{Version: Version, Seed: 3, Sites: 3, Txns: 6,
		Faults: []Fault{{Class: ClassMsg, Index: 30, Mode: ModeDup}}}
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Outcomes) != len(b.Outcomes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(a.Outcomes), len(b.Outcomes))
	}
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			t.Fatalf("outcome %d differs: %s vs %s", i, a.Outcomes[i], b.Outcomes[i])
		}
	}
}
