package chaos

// Shrink reduces a failing schedule to a minimal one: it greedily
// tries removing each fault and keeps any removal under which the
// schedule still fails, repeating until no single removal preserves
// the failure (a 1-minimal fault set, in delta-debugging terms).
// failing must be deterministic — with a seeded simulation it is.
// Shrink returns the minimal schedule and how many failing-calls it
// spent.
func Shrink(s Schedule, failing func(Schedule) bool) (Schedule, int) {
	runs := 0
	for {
		shrunk := false
		for i := 0; i < len(s.Faults); i++ {
			cand := s
			cand.Faults = append(append([]Fault{}, s.Faults[:i]...), s.Faults[i+1:]...)
			runs++
			if failing(cand) {
				s = cand
				shrunk = true
				break
			}
		}
		if !shrunk {
			return s, runs
		}
	}
}
