package chaos

import (
	"errors"
	"sync"

	"camelot/internal/wal"
)

// ErrInjected is returned by a faulted store operation; the log
// treats it like any device failure (the force never acknowledges and
// the log fail-stops), which is exactly the guarantee a real crash
// provides.
var ErrInjected = errors.New("chaos: injected fault")

// storeFault addresses one operation of a FaultStore by index.
type storeFault struct {
	index int
	mode  string
}

// FaultStore wraps one site's wal.Store, counting operations so a
// Fault's Index addresses "the k-th block write at this site", and
// injecting the fault there. Every injected append fault leaves the
// damage at the *tail* of the store and returns ErrInjected, so the
// force is never acknowledged — the damaged block was, by
// construction, never promised durable.
type FaultStore struct {
	inner wal.Store
	trip  func() // fires (once) when a fault injects; schedules the crash

	mu        sync.Mutex
	appends   int
	truncates int
	labels    []string // record type of each appended block, for pilot points
	onAppend  *storeFault
	onTrunc   *storeFault
	tripped   bool
}

// NewFaultStore wraps inner; trip is called exactly once, at the
// moment a fault injects. It runs on the thread that performed the
// store operation — implementations must only schedule work (e.g.
// rt.Runtime.After), not call back into the site synchronously.
func NewFaultStore(inner wal.Store, trip func()) *FaultStore {
	return &FaultStore{inner: inner, trip: trip}
}

// Arm installs the fault to inject. Pass nil to disarm.
func (s *FaultStore) Arm(f *Fault) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onAppend, s.onTrunc = nil, nil
	if f == nil {
		return
	}
	sf := &storeFault{index: f.Index, mode: f.Mode}
	if f.Class == ClassCkpt {
		s.onTrunc = sf
	} else {
		s.onAppend = sf
	}
}

// Counts reports how many appends and truncates the store has seen.
func (s *FaultStore) Counts() (appends, truncates int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appends, s.truncates
}

// Labels returns the record type of every appended block, in order —
// the pilot's force-point labels.
func (s *FaultStore) Labels() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.labels...)
}

// Append counts the write and either passes it through or injects the
// armed fault: ModeCrash appends the full block, ModeTorn only its
// first half, ModeBitflip the full block with one bit flipped — and
// all three return ErrInjected so the write is never acknowledged.
func (s *FaultStore) Append(block []byte) error {
	s.mu.Lock()
	k := s.appends
	s.appends++
	s.labels = append(s.labels, wal.BlockType(block))
	f := s.onAppend
	fire := f != nil && k == f.index && !s.tripped
	if fire {
		s.tripped = true
	}
	s.mu.Unlock()

	if !fire {
		return s.inner.Append(block)
	}
	switch f.mode {
	case ModeTorn:
		s.inner.Append(block[:len(block)/2]) //nolint:errcheck // damage is the point
	case ModeBitflip:
		bad := append([]byte(nil), block...)
		bad[len(bad)/2] ^= 0x01
		s.inner.Append(bad) //nolint:errcheck // damage is the point
	default: // ModeCrash: the block is durable, the ack is not
		s.inner.Append(block) //nolint:errcheck // ack withheld regardless
	}
	s.trip()
	return ErrInjected
}

// Truncate counts the call and either passes it through or refuses it
// and trips: the checkpoint image is already durable when the
// truncation is asked for, so a crash here leaves image and log
// overlapping — recovery must be idempotent about the overlap.
func (s *FaultStore) Truncate(n int) error {
	s.mu.Lock()
	k := s.truncates
	s.truncates++
	f := s.onTrunc
	fire := f != nil && k == f.index && !s.tripped
	if fire {
		s.tripped = true
	}
	s.mu.Unlock()

	if !fire {
		return s.inner.Truncate(n)
	}
	s.trip()
	return ErrInjected
}

// Blocks delegates to the wrapped store.
func (s *FaultStore) Blocks() ([][]byte, error) { return s.inner.Blocks() }

// DropTail delegates to the wrapped store (recovery's torn-tail
// repair must really repair).
func (s *FaultStore) DropTail(n int) error { return s.inner.DropTail(n) }
