// Package params holds the latency model of the simulated substrate:
// the cost of every Camelot/Mach primitive, defaulting to the values
// the paper measured on Mach 2.0 / IBM RT PC 125 (Tables 1 and 2).
//
// Every simulated component charges virtual time through these
// numbers, and the static-analysis package builds its critical-path
// formulas from the same numbers — so, exactly as in the paper, the
// "formula stated in terms of primitive costs can be used to predict
// latency in case either the cost of the primitives or the protocol's
// use of them should change."
package params

import "time"

// Params is the primitive cost model.
type Params struct {
	// LocalIPC is an inline message round trip between local
	// processes (application ↔ TranMan): 1.5 ms.
	LocalIPC time.Duration
	// LocalIPCServer is an inline IPC round trip to a data server
	// (operation call or vote round): 3 ms.
	LocalIPCServer time.Duration
	// LocalOneWay is a one-way inline message (drop-locks call): 1 ms.
	LocalOneWay time.Duration
	// OutOfLineIPC is a local IPC carrying out-of-line data: 5.5 ms.
	OutOfLineIPC time.Duration
	// RemoteRPC is a cross-site operation call through the
	// communication manager path: 29 ms in total; see the RPC
	// components below for its decomposition.
	RemoteRPC time.Duration
	// LogForce is one log device write: 15 ms.
	LogForce time.Duration
	// Datagram is a one-way inter-TranMan datagram: 10 ms.
	Datagram time.Duration
	// SendCycle is the sender-side cost of each datagram send: 1.7 ms.
	SendCycle time.Duration
	// GetLock / DropLock are lock-manager operations: 0.5 ms each.
	GetLock  time.Duration
	DropLock time.Duration

	// RPC path decomposition (§4.1): RemoteRPC ≈ NetMsgRPC +
	// 2×CommManIPC + 2×CommManCPU + data access.
	NetMsgRPC  time.Duration // 19.1 ms NetMsgServer-to-NetMsgServer round trip
	CommManIPC time.Duration // 1.5 ms CommMan ↔ NetMsgServer IPC per site
	CommManCPU time.Duration // 3.2 ms CommMan processing per call per site

	// CPU charges not in the paper's primitive table but visible in
	// its measurements (static analysis underestimates because "minor
	// costs such as CPU time spent within processes are ignored").
	TMCPU     time.Duration // TranMan processing per input
	ServerCPU time.Duration // data server processing per operation

	// Jitter is the per-send OS scheduling variance at a sender
	// (drives the multicast-variance experiment).
	Jitter time.Duration

	// KernelCPU is extra kernel processing per IPC, charged on the
	// site's serially shared kernel processor (rt.CPU). It is what
	// makes message-intensive workloads operating-system-bound, as
	// §4.4 and §4.5 observe.
	KernelCPU time.Duration
}

// Paper returns the cost model of the paper's testbed.
func Paper() Params {
	return Params{
		LocalIPC:       1500 * time.Microsecond,
		LocalIPCServer: 3 * time.Millisecond,
		LocalOneWay:    1 * time.Millisecond,
		OutOfLineIPC:   5500 * time.Microsecond,
		RemoteRPC:      29 * time.Millisecond,
		LogForce:       15 * time.Millisecond,
		Datagram:       10 * time.Millisecond,
		SendCycle:      1700 * time.Microsecond,
		GetLock:        500 * time.Microsecond,
		DropLock:       500 * time.Microsecond,
		NetMsgRPC:      19100 * time.Microsecond,
		CommManIPC:     1500 * time.Microsecond,
		CommManCPU:     3200 * time.Microsecond,
		TMCPU:          1 * time.Millisecond,
		ServerCPU:      500 * time.Microsecond,
		Jitter:         0,
	}
}

// VAX returns the cost model used for the throughput study of §4.4,
// which ran on a 4-way VAX multiprocessor with 1-MIP model 8200 CPUs
// — roughly half the speed of the RT PC — whose Mach had a single
// run queue on one master processor. The absolute values are
// calibrated to land the update/read throughput curves (Figures 4
// and 5) in the paper's ranges; the shape of the curves comes from
// the structure (thread pool, serial kernel, log device), not from
// the constants.
func VAX() Params {
	p := Paper()
	p.TMCPU = 12 * time.Millisecond
	p.ServerCPU = 2 * time.Millisecond
	p.KernelCPU = 4 * time.Millisecond
	p.LogForce = 100 * time.Millisecond
	return p
}

// Fast returns a near-zero cost model for functional tests that care
// about protocol outcomes rather than timing.
func Fast() Params {
	p := Params{
		LogForce:  time.Millisecond,
		Datagram:  time.Millisecond,
		SendCycle: 10 * time.Microsecond,
	}
	return p
}
