package core

import (
	"camelot/internal/tid"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

// This file implements change 2 of §3.3: a non-blocking subordinate
// that times out waiting for the commit/abort notice becomes a
// coordinator. It gathers every site's protocol state; any site
// already committed or aborted settles the outcome; a commit quorum
// of replicated intent records settles commit; otherwise it solicits
// abort-intent records until an abort quorum forms. A site that has
// written a replicated commit intent never joins the abort quorum
// (change 4), so the intersecting quorums exclude split decisions
// even with several simultaneous coordinators.

// promote turns this stalled subordinate into a coordinator. Called
// with f's lock held.
func (m *Manager) promote(f *family) {
	if !f.promoted {
		f.promoted = true
		m.bumpStats(func(s *Stats) { s.Promotions++ })
		f.statusResp = map[tid.SiteID]wire.NBState{m.cfg.Site: f.nbState}
		f.abortIntents = make(map[tid.SiteID]bool)
		if f.nbState == wire.NBAbortIntent {
			f.abortIntents[m.cfg.Site] = true
		}
	}
	m.promotionSweep(f)
}

// promotionSweep (re)broadcasts the status inquiry and re-arms the
// retry timer (f's lock held).
func (m *Manager) promotionSweep(f *family) {
	if f.ph == phCommitted || f.ph == phAborted {
		// Outcome already driven; keep pushing it to laggards.
		if len(f.acksPending) > 0 {
			m.retryFanout(f, sortedSites(f.acksPending), m.outcomeMsg(f), "outcome")
			m.reschedule(f, m.cfg.RetryInterval)
		}
		return
	}
	var others []tid.SiteID
	for _, s := range f.nbSites {
		if s != m.cfg.Site {
			others = append(others, s)
		}
	}
	m.retryFanout(f, others, &wire.Msg{Kind: wire.KNBStatusReq, TID: tid.Top(f.id)}, "status")
	m.reschedule(f, m.cfg.RetryInterval)
}

// onNBStatusReq reports this site's position in the protocol to a
// promoted coordinator. Any site may be asked, including the
// original coordinator.
func (m *Manager) onNBStatusReq(msg *wire.Msg) {
	resp := &wire.Msg{Kind: wire.KNBStatusResp, TID: msg.TID}
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		// Forgotten families still have a remembered outcome; only a
		// transaction this site truly never resolved is UNKNOWN.
		switch m.resolvedOutcome(msg.TID.Family) {
		case wire.OutcomeCommit:
			resp.State = wire.NBCommitted
		case wire.OutcomeAbort:
			resp.State = wire.NBAborted
		default:
			resp.State = wire.NBUnknown
		}
		m.send(msg.From, resp)
		return
	}
	defer m.unlockFamily(f)
	switch f.ph {
	case phCommitted:
		resp.State = wire.NBCommitted
	case phAborted:
		resp.State = wire.NBAborted
	default:
		resp.State = f.nbState
		if resp.State == wire.NBUnknown && f.prepared {
			resp.State = wire.NBPrepared
		}
	}
	resp.Votes = f.nbVotes
	resp.Sites = f.nbSites
	m.send(msg.From, resp)
}

// onNBStatusResp collects states at a promoted coordinator and
// re-evaluates the decision rules.
func (m *Manager) onNBStatusResp(msg *wire.Msg) {
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		return
	}
	defer m.unlockFamily(f)
	if !f.promoted || f.ph == phCommitted || f.ph == phAborted {
		return
	}
	f.statusResp[msg.From] = msg.State
	if len(f.nbVotes) == 0 && len(msg.Votes) > 0 {
		f.nbVotes = msg.Votes
	}
	if len(f.nbSites) == 0 && len(msg.Sites) > 0 {
		f.nbSites = msg.Sites
	}
	if msg.State == wire.NBAbortIntent {
		f.abortIntents[msg.From] = true
	}
	m.evaluatePromotion(f)
}

// evaluatePromotion applies the quorum-consensus decision rules (f's
// lock held).
func (m *Manager) evaluatePromotion(f *family) {
	replicated, anyCommitted, anyAborted := 0, false, false
	//lint:ordered commutative aggregation; counts and flags only
	for _, st := range f.statusResp {
		switch st {
		case wire.NBCommitted:
			anyCommitted = true
		case wire.NBAborted:
			anyAborted = true
		case wire.NBReplicated:
			replicated++
		case wire.NBPrepared, wire.NBAbortIntent:
			// A merely-prepared site adds no quorum weight, and abort
			// intents were already tallied into f.abortIntents when the
			// status response arrived.
		}
	}
	switch {
	case anyCommitted:
		m.driveOutcome(f, wire.OutcomeCommit)
	case anyAborted:
		m.driveOutcome(f, wire.OutcomeAbort)
	case replicated >= f.commitQuorum:
		// The commit intent is replicated widely enough to exclude
		// abort: the decision is commit.
		m.driveOutcome(f, wire.OutcomeCommit)
	case len(f.abortIntents) >= f.abortQuorum:
		m.driveOutcome(f, wire.OutcomeAbort)
	default:
		m.solicitAbortIntents(f)
	}
}

// solicitAbortIntents tries to assemble an abort quorum from sites
// that have not written a commit intent. With two or more failures no
// quorum may form and every surviving site stays blocked — "it is
// impossible to do better." Called and returns with f's lock held
// (the lock is released around the local force).
func (m *Manager) solicitAbortIntents(f *family) {
	// Write our own abort-intent record first (once).
	if f.nbState == wire.NBPrepared && !f.abortIntents[m.cfg.Site] {
		rec := &wal.Record{Type: wal.RecNBAbortIntent, TID: tid.Top(f.id), Sites: f.nbSites}
		m.unlockFamily(f)
		lsn, err := m.log.Append(rec)
		if err == nil {
			err = m.log.Force(lsn)
			m.tr.LogForce(m.cfg.Site, rec.TID, rec.Type.String())
		}
		if !m.relockFamily(f) {
			return
		}
		if err == nil {
			f.nbState = wire.NBAbortIntent
			f.abortIntents[m.cfg.Site] = true
			f.statusResp[m.cfg.Site] = wire.NBAbortIntent
		}
		if len(f.abortIntents) >= f.abortQuorum {
			m.driveOutcome(f, wire.OutcomeAbort)
			return
		}
	}
	var targets []tid.SiteID
	for _, s := range f.nbSites {
		if s == m.cfg.Site || f.abortIntents[s] {
			continue
		}
		switch f.statusResp[s] {
		case wire.NBReplicated, wire.NBCommitted, wire.NBAborted:
			// May not or need not join the abort quorum.
		case wire.NBPrepared, wire.NBAbortIntent:
			// A prepared site can still pledge abort; a site whose
			// intent we hold was skipped above, so an NBAbortIntent
			// status here just means the pledge round is re-asked.
			targets = append(targets, s)
		default:
			// No status response from the site yet (NBUnknown).
			targets = append(targets, s)
		}
	}
	m.fanout(targets, &wire.Msg{Kind: wire.KNBAbortIntent, TID: tid.Top(f.id)}, f.opts.Multicast)
}

// onNBAbortIntent asks this site to pledge abort. Refused if we hold
// a replicated commit intent (change 4).
func (m *Manager) onNBAbortIntent(msg *wire.Msg) {
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		// A forgotten-but-resolved transaction must answer from its
		// remembered outcome: a committed site may never pledge abort
		// (change 4), and an aborted one can just re-acknowledge.
		switch m.resolvedOutcome(msg.TID.Family) {
		case wire.OutcomeCommit:
			m.send(msg.From, &wire.Msg{Kind: wire.KNBStatusResp, TID: msg.TID,
				State: wire.NBCommitted})
			return
		case wire.OutcomeAbort:
			m.send(msg.From, &wire.Msg{Kind: wire.KNBAbortIntentAck, TID: msg.TID})
			return
		}
		// Truly unknown: we hold no commit intent, so pledging abort
		// is safe (and consistent with presumed abort).
		var created bool
		f, created = m.lockOrCreateFamily(msg.TID.Family)
		if created {
			f.opts.NonBlocking = true
		}
	}
	switch {
	case f.ph == phAborted || f.nbState == wire.NBAbortIntent:
		m.send(msg.From, &wire.Msg{Kind: wire.KNBAbortIntentAck, TID: msg.TID})
		m.unlockFamily(f)
		return
	case f.nbState == wire.NBReplicated || f.ph == phCommitted || f.ph == phReplicated:
		// Already in (or past) the commit quorum: refuse by reporting
		// state instead of acknowledging.
		m.send(msg.From, &wire.Msg{Kind: wire.KNBStatusResp, TID: msg.TID,
			State: wire.NBReplicated, Votes: f.nbVotes, Sites: f.nbSites})
		m.unlockFamily(f)
		return
	}
	rec := &wal.Record{Type: wal.RecNBAbortIntent, TID: msg.TID, Sites: f.nbSites}
	m.unlockFamily(f)
	lsn, err := m.log.Append(rec)
	if err == nil {
		err = m.log.Force(lsn)
		m.tr.LogForce(m.cfg.Site, rec.TID, rec.Type.String())
	}
	live := m.relockFamily(f)
	defer m.unlockFamily(f)
	if !live || err != nil {
		return
	}
	f.nbState = wire.NBAbortIntent
	m.send(msg.From, &wire.Msg{Kind: wire.KNBAbortIntentAck, TID: msg.TID})
}

// onNBAbortIntentAck counts pledges at the soliciting coordinator.
func (m *Manager) onNBAbortIntentAck(msg *wire.Msg) {
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		return
	}
	defer m.unlockFamily(f)
	if !f.promoted || f.ph == phCommitted || f.ph == phAborted {
		return
	}
	f.abortIntents[msg.From] = true
	f.statusResp[msg.From] = wire.NBAbortIntent
	if len(f.abortIntents) >= f.abortQuorum {
		m.driveOutcome(f, wire.OutcomeAbort)
	}
}

// driveOutcome finishes the transaction as (possibly one of several)
// coordinator: apply locally, notify every other site, and keep
// retrying until all acknowledge (f's lock held).
func (m *Manager) driveOutcome(f *family, outcome wire.Outcome) {
	commit := outcome == wire.OutcomeCommit
	if commit {
		f.ph = phCommitted
		m.bumpStats(func(s *Stats) { s.Committed++ })
	} else {
		f.ph = phAborted
		m.bumpStats(func(s *Stats) { s.Aborted++ })
	}
	recType := wal.RecCommit
	if !commit {
		recType = wal.RecAbort
	}
	m.log.Append(&wal.Record{Type: recType, TID: tid.Top(f.id)}) //nolint:errcheck // decision is quorum-durable
	if f.result != nil {
		if commit {
			f.result.Set(wire.OutcomeCommit)
		} else {
			f.result.Set(wire.OutcomeAbort)
		}
	}
	m.releaseLocal(f, commit)
	f.acksPending = make(map[tid.SiteID]bool)
	for _, s := range f.nbSites {
		if s != m.cfg.Site {
			f.acksPending[s] = true
		}
	}
	m.fanout(sortedSites(f.acksPending), m.outcomeMsg(f), f.opts.Multicast)
	if len(f.acksPending) == 0 {
		m.end(f)
		return
	}
	m.schedule(f, m.cfg.RetryInterval)
}
