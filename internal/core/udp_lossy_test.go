package core_test

import (
	"sync"
	"testing"
	"time"

	"camelot/internal/core"
	"camelot/internal/rt"
	"camelot/internal/tid"
	"camelot/internal/transport"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

// lossyPeer wraps a real UDPPeer and deterministically swallows every
// third datagram before it reaches the socket — real loss on a real
// network path, not the simulator's modeled loss. The transaction
// managers must not notice: their RetryInterval machinery exists
// precisely to mask this.
type lossyPeer struct {
	inner *transport.UDPPeer

	mu      sync.Mutex
	count   int
	dropped int
}

func (l *lossyPeer) lose() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.count++
	if l.count%3 == 0 {
		l.dropped++
		return true
	}
	return false
}

func (l *lossyPeer) drops() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

func (l *lossyPeer) Send(from, to tid.SiteID, payload any) {
	if l.lose() {
		return
	}
	l.inner.Send(from, to, payload)
}

func (l *lossyPeer) Multicast(from tid.SiteID, tos []tid.SiteID, payload any) {
	for _, to := range tos {
		l.Send(from, to, payload)
	}
}

func (l *lossyPeer) SendAll(from tid.SiteID, tos []tid.SiteID, payload any) {
	for _, to := range tos {
		l.Send(from, to, payload)
	}
}

var _ transport.Sender = (*lossyPeer)(nil)

// TestCommitOverLossyUDPMaskedByRetry runs full two-phase commits
// between two real-runtime transaction managers over loopback UDP
// with every third datagram destroyed, and requires every commit to
// succeed anyway: proof that the retry/inquiry machinery masks real
// datagram loss end to end, not just the simulator's model of it.
func TestCommitOverLossyUDPMaskedByRetry(t *testing.T) {
	r := rt.Real()

	peer1, err := transport.NewUDPPeer(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer peer1.Close()
	peer2, err := transport.NewUDPPeer(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer peer2.Close()
	if err := peer1.AddPeer(2, peer2.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := peer2.AddPeer(1, peer1.Addr()); err != nil {
		t.Fatal(err)
	}
	lossy1 := &lossyPeer{inner: peer1}
	lossy2 := &lossyPeer{inner: peer2}

	mkSite := func(id tid.SiteID, peer *transport.UDPPeer, out transport.Sender) *core.Manager {
		log := wal.Open(r, wal.NewMemStore(), wal.Config{
			GroupCommit: true, FlushInterval: 2 * time.Millisecond,
		})
		m := core.New(r, core.Config{
			Site:             id,
			Threads:          4,
			RetryInterval:    25 * time.Millisecond,
			InquireInterval:  25 * time.Millisecond,
			PromotionTimeout: 50 * time.Millisecond,
			AckFlushInterval: 10 * time.Millisecond,
		}, log, out)
		peer.SetHandler(func(d transport.Datagram) {
			if msg, ok := d.Payload.(*wire.Msg); ok {
				m.Deliver(msg)
			}
		})
		return m
	}
	m1 := mkSite(1, peer1, lossy1)
	defer m1.Close()
	m2 := mkSite(2, peer2, lossy2)
	defer m2.Close()

	part1 := &atomicPart{name: "part", vote: wire.VoteYes}
	part2 := &atomicPart{name: "part", vote: wire.VoteYes}

	const txns = 10
	for i := 0; i < txns; i++ {
		txn, err := m1.Begin()
		if err != nil {
			t.Fatalf("txn %d: Begin: %v", i, err)
		}
		if err := m1.Join(txn, tid.TID{}, part1); err != nil {
			t.Fatalf("txn %d: join 1: %v", i, err)
		}
		if err := m2.Join(txn, tid.TID{}, part2); err != nil {
			t.Fatalf("txn %d: join 2: %v", i, err)
		}
		m1.AddSites(txn, []tid.SiteID{2})
		out, err := m1.Commit(txn, core.Options{})
		if err != nil || out != wire.OutcomeCommit {
			t.Fatalf("txn %d: commit over lossy UDP = %v, %v", i, out, err)
		}
	}

	// The loss wrapper must actually have bitten for the test to mean
	// anything: ~1/3 of all protocol datagrams died in flight.
	if lossy1.drops()+lossy2.drops() == 0 {
		t.Fatal("loss wrapper dropped nothing; test exercised no loss")
	}

	// Every subordinate commit eventually applies despite the losses.
	deadline := time.Now().Add(10 * time.Second)
	for part2.commits.Load() != txns && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := part2.commits.Load(); got != txns {
		t.Fatalf("subordinate applied %d/%d commits", got, txns)
	}
}
