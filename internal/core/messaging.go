package core

import (
	"time"

	"camelot/internal/det"
	"camelot/internal/tid"
	"camelot/internal/wire"
)

// send transmits one datagram, attaching any delayed commit-acks
// destined for the same site (the piggybacking half of the
// delayed-commit optimization). Sequence stamping and the ack batch
// live under the ack component lock; callers may hold a family lock
// (family → component is the sanctioned order) but no caller may
// take a family lock while ackMu is held.
func (m *Manager) send(to tid.SiteID, msg *wire.Msg) {
	msg.From = m.cfg.Site
	msg.To = to
	var piggybacked int
	m.lockAttributed(m.ackMu, lockClassAcks)
	m.seq++
	msg.Seq = m.seq
	if acks := m.pendingAcks[to]; len(acks) > 0 && msg.Kind != wire.KCommitAck {
		msg.AckTIDs = acks
		delete(m.pendingAcks, to)
		piggybacked = len(acks)
	}
	m.ackMu.Unlock()
	if piggybacked > 0 {
		m.bumpStats(func(s *Stats) { s.AcksPiggybacked += piggybacked })
	}
	m.net.Send(m.cfg.Site, to, msg)
}

// fanout sends msg to every site in tos — as one multicast or as the
// serial unicast loop whose per-send jitter the multicast experiment
// measures.
func (m *Manager) fanout(tos []tid.SiteID, msg *wire.Msg, multicast bool) {
	if len(tos) == 0 {
		return
	}
	msg.From = m.cfg.Site
	m.lockAttributed(m.ackMu, lockClassAcks)
	m.seq++
	msg.Seq = m.seq
	m.ackMu.Unlock()
	if multicast {
		m.net.Multicast(m.cfg.Site, tos, msg)
		return
	}
	m.net.SendAll(m.cfg.Site, tos, msg)
}

// queueAck schedules a delayed commit-ack to coordinator: it rides
// the next datagram to that site or the next ack flush, whichever
// comes first.
func (m *Manager) queueAck(coordinator tid.SiteID, t tid.TID) {
	m.lockAttributed(m.ackMu, lockClassAcks)
	m.pendingAcks[coordinator] = append(m.pendingAcks[coordinator], t)
	m.ackMu.Unlock()
}

// ackFlusher periodically sends delayed acks that found nothing to
// piggyback on, as one batched KCommitAck per destination.
func (m *Manager) ackFlusher() {
	for {
		m.r.Sleep(m.cfg.AckFlushInterval)
		if m.isClosed() {
			return
		}
		// Drain and stamp under the ack lock; transmit after releasing
		// it so the network layer is never entered with a component
		// lock held.
		var batch []*wire.Msg
		standalone := 0
		m.lockAttributed(m.ackMu, lockClassAcks)
		for _, site := range det.SortedKeys(m.pendingAcks) {
			acks := m.pendingAcks[site]
			delete(m.pendingAcks, site)
			standalone += len(acks)
			msg := &wire.Msg{Kind: wire.KCommitAck, From: m.cfg.Site, To: site, AckTIDs: acks}
			m.seq++
			msg.Seq = m.seq
			batch = append(batch, msg)
		}
		m.ackMu.Unlock()
		if standalone > 0 {
			m.bumpStats(func(s *Stats) { s.AcksStandalone += standalone })
		}
		for _, msg := range batch {
			m.net.Send(m.cfg.Site, msg.To, msg)
		}
	}
}

// schedule (re)arms the family's single protocol timer; when it
// fires, tick re-examines the family's phase and retries whatever is
// outstanding — retransmits, inquiries, or non-blocking promotion.
// The caller holds f's lock.
func (m *Manager) schedule(f *family, d time.Duration) {
	if f.timer != nil {
		f.timer.Stop()
	}
	id := f.id
	f.timer = m.r.After(d, func() {
		m.queue.Put(func() { m.tick(id) })
	})
}

// retryFanout re-sends msg to tos as one timer-driven retransmit
// round, counting the datagrams in Stats.Retransmits and the trace
// (f's lock held). Fault-free runs never reach it: every answer
// arrives before the timer fires.
func (m *Manager) retryFanout(f *family, tos []tid.SiteID, msg *wire.Msg, what string) {
	if len(tos) == 0 {
		return
	}
	m.bumpStats(func(s *Stats) { s.Retransmits += len(tos) })
	m.tr.Retry(m.cfg.Site, tid.Top(f.id), what, len(tos))
	m.fanout(tos, msg, f.opts.Multicast)
}

// inquire sends one outcome inquiry for f to the family's origin site
// (f's lock held).
func (m *Manager) inquire(f *family) {
	m.bumpStats(func(s *Stats) { s.Inquiries++ })
	m.tr.Inquiry(m.cfg.Site, tid.Top(f.id))
	m.send(f.id.Origin(), &wire.Msg{Kind: wire.KInquire, TID: tid.Top(f.id)})
}

// tick is the timer-driven retry/timeout path.
func (m *Manager) tick(id tid.FamilyID) {
	f := m.lockFamily(id)
	if f == nil {
		return
	}
	defer m.unlockFamily(f)
	if m.isClosed() {
		return
	}
	switch {
	case f.opts.Paxos:
		// Paxos families never reach the 2PC/NB cases below — in
		// particular a prepared Paxos subordinate must run acceptor
		// takeover, not send 2PC inquiries.
		m.paxosTick(f)
	case f.promoted:
		// Promoted coordinator: drive the recovery protocol again.
		m.promotionSweep(f)
	case f.coord && f.ph == phPreparing:
		// Re-send prepares to sites that have not voted. A site that
		// never answers is presumed failed; abort is still safe
		// because no commit point exists yet.
		f.attempts++
		if f.attempts > m.cfg.VoteRetries {
			if f.opts.NonBlocking {
				m.nbDecideAbort(f)
			} else {
				m.abortFamily(f)
			}
			return
		}
		var missing []tid.SiteID
		for _, s := range sortedSites(f.remoteSites) {
			if _, ok := f.votes[s]; !ok {
				missing = append(missing, s)
			}
		}
		m.retryFanout(f, missing, m.prepareMsg(f), "prepare")
		m.reschedule(f, m.cfg.RetryInterval)
	case f.coord && f.ph == phReplicating:
		// Past the replication phase's start a unilateral abort is no
		// longer safe — a commit quorum may already exist. If the
		// targets stop answering, fall back to the promotion
		// machinery, which decides by quorum.
		f.attempts++
		if f.attempts > m.cfg.VoteRetries {
			m.promote(f)
			return
		}
		var missing []tid.SiteID
		for _, s := range sortedSites(f.replTargets) {
			if !f.replAcks[s] {
				missing = append(missing, s)
			}
		}
		m.retryFanout(f, missing, m.replicateMsg(f), "replicate")
		m.reschedule(f, m.cfg.RetryInterval)
	case (f.ph == phCommitted || f.ph == phAborted) && len(f.acksPending) > 0:
		// Re-send the outcome to sites that have not acknowledged.
		m.retryFanout(f, sortedSites(f.acksPending), m.outcomeMsg(f), "outcome")
		m.reschedule(f, m.cfg.RetryInterval)
	case f.ph == phPrepared && !f.opts.NonBlocking && !f.coord:
		// Blocked two-phase subordinate: ask the coordinator.
		m.inquire(f)
		m.reschedule(f, m.cfg.InquireInterval)
	case f.ph == phActive && !f.coord:
		// Orphan check: a remote family still active here long after
		// joining. If the coordinator is alive and still running the
		// transaction it ignores the inquiry; if it aborted or never
		// heard of us, presumed abort answers and releases our locks
		// and updates.
		m.inquire(f)
		m.reschedule(f, 4*m.cfg.InquireInterval)
	case (f.ph == phPrepared || f.ph == phReplicated) && f.opts.NonBlocking && !f.coord:
		// Non-blocking subordinate stalled: become a coordinator
		// (§3.3 change 2).
		m.promote(f)
	}
}

// prepareMsg builds the phase-one message for f (f's lock held).
func (m *Manager) prepareMsg(f *family) *wire.Msg {
	msg := &wire.Msg{TID: tid.Top(f.id), Flags: f.flags()}
	if f.opts.Paxos {
		msg.Kind = wire.KPaxosPrepare
		msg.Sites = f.nbSites
		msg.Acceptors = f.paxAcceptors
	} else if f.opts.NonBlocking {
		msg.Kind = wire.KNBPrepare
		msg.Sites = f.nbSites
		msg.CommitQuorum = uint16(f.commitQuorum)
		msg.AbortQuorum = uint16(f.abortQuorum)
	} else {
		msg.Kind = wire.KPrepare
	}
	return msg
}

// replicateMsg builds the replication-phase message (f's lock held).
func (m *Manager) replicateMsg(f *family) *wire.Msg {
	return &wire.Msg{
		Kind:         wire.KNBReplicate,
		TID:          tid.Top(f.id),
		Sites:        f.nbSites,
		CommitQuorum: uint16(f.commitQuorum),
		AbortQuorum:  uint16(f.abortQuorum),
		Votes:        f.nbVotes,
		Flags:        f.flags(),
	}
}

// outcomeMsg builds the outcome notification for f's decision (f's
// lock held).
func (m *Manager) outcomeMsg(f *family) *wire.Msg {
	msg := &wire.Msg{TID: tid.Top(f.id), Flags: f.flags()}
	if f.opts.NonBlocking {
		msg.Kind = wire.KNBOutcome
		if f.ph == phCommitted {
			msg.Outcome = wire.OutcomeCommit
		} else {
			msg.Outcome = wire.OutcomeAbort
		}
	} else if f.ph == phCommitted {
		msg.Kind = wire.KCommit
	} else {
		msg.Kind = wire.KAbort
	}
	return msg
}

func (f *family) flags() uint8 {
	var fl uint8
	if f.opts.ForceSubCommit {
		fl |= wire.FlagForceSubCommit
	}
	if f.opts.ImmediateAck {
		fl |= wire.FlagImmediateAck
	}
	if f.opts.DisableReadOnlyOpt {
		fl |= wire.FlagNoReadOnlyOpt
	}
	return fl
}

// handle dispatches one inbound datagram on a pool thread.
func (m *Manager) handle(msg *wire.Msg) {
	if m.isClosed() {
		return
	}
	// Piggybacked commit-acks ride on any message (§3.2).
	for _, t := range msg.AckTIDs {
		m.onCommitAck(msg.From, t)
	}

	switch msg.Kind {
	case wire.KPrepare:
		m.onPrepare(msg)
	case wire.KVote:
		m.onVote(msg)
	case wire.KCommit, wire.KAbort:
		m.onOutcome2PC(msg)
	case wire.KCommitAck:
		// Pure ack batch: AckTIDs already processed; a bare TID in
		// the header is also an ack.
		if !msg.TID.IsZero() {
			m.onCommitAck(msg.From, msg.TID)
		}
	case wire.KInquire:
		m.onInquire(msg)
	case wire.KNBPrepare:
		m.onNBPrepare(msg)
	case wire.KNBVote:
		m.onNBVote(msg)
	case wire.KNBReplicate:
		m.onNBReplicate(msg)
	case wire.KNBReplicateAck:
		m.onNBReplicateAck(msg)
	case wire.KNBOutcome:
		m.onNBOutcome(msg)
	case wire.KNBOutcomeAck:
		m.onNBOutcomeAck(msg)
	case wire.KNBStatusReq:
		m.onNBStatusReq(msg)
	case wire.KNBStatusResp:
		m.onNBStatusResp(msg)
	case wire.KNBAbortIntent:
		m.onNBAbortIntent(msg)
	case wire.KNBAbortIntentAck:
		m.onNBAbortIntentAck(msg)
	case wire.KChildCommit:
		m.onChildCommit(msg)
	case wire.KChildAbort:
		m.onChildAbort(msg)
	case wire.KPaxosPrepare:
		m.onPaxosPrepare(msg)
	case wire.KPaxosVote:
		m.onPaxosVote(msg)
	case wire.KPaxos2a:
		m.onPaxos2a(msg)
	case wire.KPaxos2b:
		m.onPaxos2b(msg)
	case wire.KPaxos1a:
		m.onPaxos1a(msg)
	case wire.KPaxos1b:
		m.onPaxos1b(msg)
	}
}
