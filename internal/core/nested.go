package core

import (
	"fmt"

	"camelot/internal/det"
	"camelot/internal/rt"
	"camelot/internal/tid"
	"camelot/internal/wire"
)

// newResultFuture builds a future on the manager's runtime.
func newResultFuture[T any](m *Manager) *rt.Future[T] { return rt.NewFuture[T](m.r) }

// Nested transactions (Moss model). Committing a child merges its
// locks, updates, and site set into the parent at every site the
// child touched; aborting a child undoes its subtree everywhere
// without disturbing the rest of the family. Only a top-level commit
// runs a distributed commitment protocol — child resolution messages
// are one-way notifications, retried implicitly by the fact that an
// unresolved child simply keeps its locks (a lost CHILD-COMMIT makes
// the parent wait, never misbehave).

// commitChild merges a committed nested transaction into its parent.
func (m *Manager) commitChild(child tid.TID) (wire.Outcome, error) {
	type result struct {
		err   error
		sites []tid.SiteID
		par   tid.TID
	}
	done := newResultFuture[result](m)
	m.queue.Put(func() {
		f := m.lockFamily(child.Family)
		if f == nil {
			done.Set(result{err: fmt.Errorf("%w: %s", ErrUnknownTransaction, child)})
			return
		}
		tx := f.txns[child]
		if tx == nil || tx.aborted {
			m.unlockFamily(f)
			done.Set(result{err: fmt.Errorf("%w: %s", ErrUnknownTransaction, child)})
			return
		}
		parent := tx.parent
		ptx := f.txns[parent]
		if ptx != nil {
			//lint:ordered set union; insertion order is unobservable
			for s := range tx.sites {
				ptx.sites[s] = true
			}
		}
		// Sorted so the notification fan-out below is replay-stable.
		sites := det.SortedKeys(tx.sites)
		delete(f.txns, child)
		parts := m.participants(f)
		// Notify remote sites the child touched.
		for _, s := range sites {
			m.send(s, &wire.Msg{Kind: wire.KChildCommit, TID: child, Parent: parent})
		}
		m.unlockFamily(f)
		for _, p := range parts {
			p.CommitChild(child, parent)
		}
		done.Set(result{par: parent, sites: sites})
	})
	res, ok := done.WaitTimeout(m.cfg.RetryInterval * 600)
	if !ok {
		return wire.OutcomeUnknown, ErrClosed
	}
	if res.err != nil {
		return wire.OutcomeAbort, res.err
	}
	return wire.OutcomeCommit, nil
}

// abortChild undoes a nested transaction and its descendants at every
// site it touched.
func (m *Manager) abortChild(child tid.TID) error {
	done := newResultFuture[error](m)
	m.queue.Put(func() {
		f := m.lockFamily(child.Family)
		if f == nil {
			done.Set(fmt.Errorf("%w: %s", ErrUnknownTransaction, child))
			return
		}
		tx := f.txns[child]
		if tx == nil {
			m.unlockFamily(f)
			done.Set(fmt.Errorf("%w: %s", ErrUnknownTransaction, child))
			return
		}
		tx.aborted = true
		// Collect the sites of the whole doomed subtree known here.
		sites := make(map[tid.SiteID]bool)
		doomed := m.subtree(f, child)
		for _, d := range doomed {
			//lint:ordered set union; insertion order is unobservable
			for s := range d.sites {
				sites[s] = true
			}
			delete(f.txns, d.id)
		}
		parts := m.participants(f)
		for _, s := range det.SortedKeys(sites) {
			m.send(s, &wire.Msg{Kind: wire.KChildAbort, TID: child})
		}
		m.unlockFamily(f)
		for _, p := range parts {
			p.AbortChild(child)
		}
		done.Set(nil)
	})
	err, ok := done.WaitTimeout(m.cfg.RetryInterval * 600)
	if !ok {
		return ErrClosed
	}
	return err
}

// subtree returns child and every descendant tracked at this site,
// child first (f's lock held).
func (m *Manager) subtree(f *family, child tid.TID) []*txn {
	var out []*txn
	if tx := f.txns[child]; tx != nil {
		out = append(out, tx)
	}
	changed := true
	in := map[tid.TID]bool{child: true}
	for changed {
		changed = false
		//lint:ordered fixed-point set computation; callers treat the subtree as a set
		for id, tx := range f.txns {
			if !in[id] && in[tx.parent] {
				in[id] = true
				out = append(out, tx)
				changed = true
			}
		}
	}
	return out
}

// onChildCommit applies a remote child's merge at this site.
func (m *Manager) onChildCommit(msg *wire.Msg) {
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		return
	}
	if tx := f.txns[msg.TID]; tx != nil {
		if ptx := f.txns[msg.Parent]; ptx == nil {
			f.txns[msg.Parent] = &txn{id: msg.Parent, sites: tx.sites}
		} else {
			//lint:ordered set union; insertion order is unobservable
			for s := range tx.sites {
				ptx.sites[s] = true
			}
		}
		delete(f.txns, msg.TID)
	}
	parts := m.participants(f)
	m.unlockFamily(f)
	for _, p := range parts {
		p.CommitChild(msg.TID, msg.Parent)
	}
}

// onChildAbort undoes a remote child's subtree at this site.
func (m *Manager) onChildAbort(msg *wire.Msg) {
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		return
	}
	for _, d := range m.subtree(f, msg.TID) {
		delete(f.txns, d.id)
	}
	parts := m.participants(f)
	m.unlockFamily(f)
	for _, p := range parts {
		p.AbortChild(msg.TID)
	}
}
