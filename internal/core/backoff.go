package core

// Capped exponential backoff for the timer-driven retry paths. The
// fixed-interval retransmit loop the real runtime shipped with storms
// under a partition: every prepared subordinate inquires, every
// coordinator re-fans out, all on the same period, forever. Backoff
// bounds that traffic — round n waits up to min(base<<n, cap) — and
// seeded per-family jitter de-synchronizes sites that woke together
// when the partition heals.
//
// Two properties matter for determinism:
//
//   - Round 0 waits exactly the base interval, so a run in which no
//     retry timer ever fires (every fault-free simulation golden) is
//     byte-identical to the fixed-interval implementation.
//   - Jitter is drawn from a per-family PRNG seeded from (site,
//     family id), never from the runtime's shared Rand: consuming the
//     kernel stream would perturb unrelated simulated choices, and
//     wall-clock seeding would break replay (camelot-lint walltime).

import (
	"math/rand"
	"time"

	"camelot/internal/tid"
)

// reschedule re-arms f's protocol timer for a retry round: round n of
// the current phase waits backoff(base, cap, n) rather than base. The
// caller holds f's lock. Initial arms use schedule directly, so the
// first wait of any phase is always exactly base.
func (m *Manager) reschedule(f *family, base time.Duration) {
	n := f.backoffN
	f.backoffN++
	d := backoff(base, m.cfg.RetryBackoffCap, n, f.jitter(m))
	if d > base {
		m.tr.Backoff(m.cfg.Site, tid.Top(f.id), d)
	}
	m.schedule(f, d)
}

// jitter returns the family's seeded jitter source, created on first
// use. The seed mixes the executing site into the family id so two
// sites retrying the same family never share a delay sequence.
func (f *family) jitter(m *Manager) *rand.Rand {
	if f.boRng == nil {
		seed := int64(uint64(f.id) ^ uint64(m.cfg.Site)<<17)
		f.boRng = rand.New(rand.NewSource(seed))
	}
	return f.boRng
}

// backoff returns the wait before retry round n at the given base:
// round 0 waits base exactly; round n>0 waits a uniform draw from
// [base, min(base<<n, limit)]. A limit at or below base disables
// growth, so intervals that already exceed the cap (the 4× orphan
// check under default 2PC timers) keep their fixed period.
func backoff(base, limit time.Duration, n int, rng *rand.Rand) time.Duration {
	if n <= 0 || limit <= base {
		return base
	}
	if n > 16 {
		n = 16 // base<<16 saturates any sane cap without overflowing
	}
	hi := base << uint(n)
	if hi <= 0 || hi > limit {
		hi = limit
	}
	if hi <= base {
		return base
	}
	return base + time.Duration(rng.Int63n(int64(hi-base)+1))
}
