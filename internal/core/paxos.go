package core

// Paxos Commit (Gray & Lamport, "Consensus on Transaction Commit"):
// one Paxos consensus instance per participant vote, all instances
// sharing one acceptor set of 2F+1 sites drawn from the participants
// themselves. The fault-free path uses the ballot-0 optimization —
// each RM is the sole proposer at ballot 0 for its own instance, so
// it casts its vote straight to the acceptors as a phase 2a message,
// skipping phase 1 entirely. One acceptor is co-located with the
// coordinator, whose 2b "message" is a local merge; and an acceptor
// batches every instance of the transaction into a single accepted
// record, so the whole vote set costs it one log force and one 2b
// datagram. At F=0 the sole acceptor is the coordinator itself and
// the message and force budgets degenerate to exactly two-phase
// commit's delayed-commit budget.
//
// Takeover replaces 2PC's blocking inquiry: any prepared participant
// that stops hearing progress promotes itself to leader, runs phase 1
// against the acceptors at a ballot above everything it has seen, and
// decides from the quorum's accepted state — Aborted for instances no
// acceptor has a value for. The decision is therefore reachable
// whenever any acceptor quorum is alive, regardless of which single
// site (including the coordinator) has crashed.

import (
	"sort"

	"camelot/internal/det"
	"camelot/internal/tid"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

// paxosBallot packs a takeover ballot: round in the high half, the
// proposing site in the low half, so distinct sites never collide and
// higher rounds always dominate. Ballot 0 is reserved for the RMs'
// own fault-free votes.
func paxosBallot(round uint32, site tid.SiteID) uint64 {
	return uint64(round)<<32 | uint64(uint32(site))
}

func paxosBallotRound(b uint64) uint32 { return uint32(b >> 32) }

// paxosQuorum is the acceptor majority.
func (m *Manager) paxosQuorum(f *family) int { return len(f.paxAcceptors)/2 + 1 }

func (f *family) paxosIsAcceptor(s tid.SiteID) bool {
	for _, a := range f.paxAcceptors {
		if a == s {
			return true
		}
	}
	return false
}

// ensurePaxos marks f as a Paxos family and allocates its acceptor
// maps (f's lock held).
func (m *Manager) ensurePaxos(f *family) {
	f.opts.Paxos = true
	if f.paxAcc == nil {
		f.paxAcc = make(map[tid.SiteID]wire.PaxosAccepted)
	}
	if f.pax2b == nil {
		f.pax2b = make(map[tid.SiteID]bool)
	}
}

// paxosLeaderSite maps a ballot to the site acting as leader for it:
// ballot 0 belongs to the original coordinator, any other ballot to
// the site packed into its low half.
func (m *Manager) paxosLeaderSite(ballot uint64, f *family) tid.SiteID {
	if ballot == 0 {
		return f.id.Origin()
	}
	return tid.SiteID(uint32(ballot))
}

// paxosAcceptorSet picks the transaction's acceptors: the coordinator
// first (co-location makes its own vote's 2a and the acceptor's 2b
// local calls), then the lowest-numbered other participants until
// 2F+1 — capped at the participant count, since Camelot hosts
// acceptors only on sites already in the transaction.
func paxosAcceptorSet(coord tid.SiteID, sites []tid.SiteID, fF int) []tid.SiteID {
	want := 2*fF + 1
	if want > len(sites) {
		want = len(sites)
	}
	out := make([]tid.SiteID, 0, want)
	out = append(out, coord)
	for _, s := range sites {
		if len(out) == want {
			break
		}
		if s != coord {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// paxosBeginCommit starts the commit protocol at the coordinator
// (f's lock held; localVote is Yes or ReadOnly and there is at least
// one remote site).
func (m *Manager) paxosBeginCommit(f *family) {
	sites := append([]tid.SiteID{m.cfg.Site}, sortedSites(f.remoteSites)...)
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	f.nbSites = sites
	f.paxAcceptors = paxosAcceptorSet(m.cfg.Site, sites, f.opts.PaxosF)
	m.ensurePaxos(f)
	f.votes[m.cfg.Site] = f.localVote

	if len(f.paxAcceptors) > 1 && f.localVote == wire.VoteYes {
		// Durable own vote before it can be accepted elsewhere. At F=0
		// the only acceptor is this site, whose batched accepted record
		// subsumes the vote — eliding the separate force here is what
		// makes the F=0 budget equal two-phase commit's.
		rec := &wal.Record{
			Type: wal.RecPaxosPrepare, TID: tid.Top(f.id),
			Coordinator: m.cfg.Site, Sites: f.nbSites, Acceptors: f.paxAcceptors,
		}
		m.unlockFamily(f)
		lsn, err := m.log.Append(rec)
		if err == nil {
			err = m.log.Force(lsn)
			m.tr.LogForce(m.cfg.Site, rec.TID, rec.Type.String())
		}
		if !m.relockFamily(f) {
			return
		}
		if err != nil {
			// Fail-stopped log; the vote may or may not be durable, so
			// leave the outcome undetermined (see commitLocal).
			return
		}
		if f.ph != phActive {
			return
		}
	}

	f.ph = phPreparing
	m.tr.PhaseBegin(m.cfg.Site, tid.Top(f.id), "prepare")
	m.fanout(sortedSites(f.remoteSites), m.prepareMsg(f), f.opts.Multicast)
	if !m.paxosCastVote(f, f.localVote) {
		return
	}
	m.schedule(f, m.cfg.RetryInterval)
}

// paxosCastVote sends this RM's ballot-0 vote to every acceptor — the
// co-located one by a direct call, the rest as 2a datagrams. The 2a
// carries the site and acceptor lists so an acceptor that has never
// heard of the transaction is still self-sufficient. Returns false if
// the family died during a local acceptor force (lock then released
// by the caller's own path).
func (m *Manager) paxosCastVote(f *family, vote wire.Vote) bool {
	var remotes []tid.SiteID
	for _, a := range f.paxAcceptors {
		if a != m.cfg.Site {
			remotes = append(remotes, a)
		}
	}
	if len(remotes) > 0 {
		m.fanout(remotes, &wire.Msg{
			Kind: wire.KPaxos2a, TID: tid.Top(f.id),
			Votes:     []wire.SiteVote{{Site: m.cfg.Site, Vote: vote}},
			Sites:     f.nbSites,
			Acceptors: f.paxAcceptors,
		}, f.opts.Multicast)
	}
	if f.paxosIsAcceptor(m.cfg.Site) {
		return m.paxosAccept(f, 0, []wire.SiteVote{{Site: m.cfg.Site, Vote: vote}})
	}
	return true
}

// paxosAccept runs the acceptor's phase 2b logic for a batch of
// instance values at one ballot (f's lock held; may release it for
// the accepted-record force). Returns false if the family died during
// the force.
func (m *Manager) paxosAccept(f *family, ballot uint64, votes []wire.SiteVote) bool {
	m.ensurePaxos(f)
	if ballot < f.paxPromised {
		return true
	}
	for _, sv := range votes {
		cur, ok := f.paxAcc[sv.Site]
		if ok && (ballot < cur.Ballot || (ballot == cur.Ballot && cur.Vote == sv.Vote)) {
			continue
		}
		f.paxAcc[sv.Site] = wire.PaxosAccepted{Site: sv.Site, Ballot: ballot, Vote: sv.Vote}
		f.paxGen++
		f.paxAccForced = false
	}
	return m.paxosAcceptorFlush(f)
}

// paxosAcceptorFlush forces the batched accepted record once values
// for every instance are in hand, then sends the batched 2b to the
// leader. The force batching — one record covering all participants'
// votes — is what holds the acceptor to one log force per
// transaction. Called and returns with f's lock held (released around
// the force); returns false if the family died meanwhile.
func (m *Manager) paxosAcceptorFlush(f *family) bool {
	if !f.paxosIsAcceptor(m.cfg.Site) || len(f.nbSites) == 0 {
		return true
	}
	for _, s := range f.nbSites {
		if _, ok := f.paxAcc[s]; !ok {
			return true // batch incomplete; wait for the rest
		}
	}
	if !f.paxAccForced {
		gen := f.paxGen
		var ballot uint64
		votes := make([]wire.SiteVote, 0, len(f.nbSites))
		allRO := true
		for _, s := range f.nbSites {
			a := f.paxAcc[s]
			if a.Ballot > ballot {
				ballot = a.Ballot
			}
			if a.Vote != wire.VoteReadOnly {
				allRO = false
			}
			votes = append(votes, wire.SiteVote{Site: a.Site, Vote: a.Vote})
		}
		if !allRO {
			rec := &wal.Record{
				Type: wal.RecPaxosAccept, TID: tid.Top(f.id), Ballot: ballot,
				Sites: f.nbSites, Acceptors: f.paxAcceptors, Votes: votes,
			}
			m.unlockFamily(f)
			lsn, err := m.log.Append(rec)
			if err == nil {
				err = m.log.Force(lsn)
				m.tr.LogForce(m.cfg.Site, rec.TID, rec.Type.String())
			}
			if !m.relockFamily(f) {
				return false
			}
			if err != nil {
				// Fail-stopped log: never report a non-durable acceptance.
				return true
			}
			if f.paxGen != gen {
				// Another worker mutated the batch while the lock was
				// free; the record just forced is stale.
				return m.paxosAcceptorFlush(f)
			}
		}
		// An all-read-only batch skips the force: ReadOnly votes carry
		// no redo obligation, so the read-only optimization's
		// zero-log-write property survives the acceptor role.
		f.paxAccForced = true
	}
	m.paxosSend2b(f)
	return true
}

// paxosSend2b sends this acceptor's batched 2b to the current
// leader (f's lock held).
func (m *Manager) paxosSend2b(f *family) {
	var ballot uint64
	votes := make([]wire.SiteVote, 0, len(f.nbSites))
	for _, s := range f.nbSites {
		a := f.paxAcc[s]
		if a.Ballot > ballot {
			ballot = a.Ballot
		}
		votes = append(votes, wire.SiteVote{Site: a.Site, Vote: a.Vote})
	}
	leader := m.paxosLeaderSite(ballot, f)
	if leader == m.cfg.Site {
		// Co-located acceptor: the 2b is a local merge, not a datagram.
		m.paxosMerge2b(f, m.cfg.Site, ballot, votes)
		return
	}
	m.send(leader, &wire.Msg{
		Kind: wire.KPaxos2b, TID: tid.Top(f.id), Ballot: ballot, Votes: votes,
	})
}

// paxosMerge2b folds one acceptor's 2b into the leader's tally (f's
// lock held). Empty votes with a higher ballot are a NACK.
func (m *Manager) paxosMerge2b(f *family, from tid.SiteID, ballot uint64, votes []wire.SiteVote) {
	if !f.coord && !f.promoted {
		return
	}
	var want uint64
	if f.promoted {
		if f.paxStage != 2 {
			if ballot > f.paxNack {
				f.paxNack = ballot
			}
			return
		}
		want = f.paxBallot
	}
	if ballot > want {
		// Outbid: a higher-ballot leader is running takeover.
		if ballot > f.paxNack {
			f.paxNack = ballot
		}
		return
	}
	if ballot < want || len(votes) == 0 {
		return
	}
	if !f.promoted && f.ph != phPreparing {
		return
	}
	for _, sv := range votes {
		f.votes[sv.Site] = sv.Vote
	}
	f.pax2b[from] = true
	m.paxosCheckDecide(f)
}

// paxosCheckDecide decides once an acceptor quorum has confirmed the
// full vote batch (f's lock held).
func (m *Manager) paxosCheckDecide(f *family) {
	if !(f.promoted && f.paxStage == 2) && !(f.coord && !f.promoted && f.ph == phPreparing) {
		return
	}
	if len(f.pax2b) < m.paxosQuorum(f) {
		return
	}
	commit := true
	for _, s := range f.nbSites {
		if v := f.votes[s]; v != wire.VoteYes && v != wire.VoteReadOnly {
			commit = false
			break
		}
	}
	m.paxosDecide(f, commit, 0)
}

// paxosDecide finishes the transaction at the leader. The commit
// point is the acceptor quorum itself — recovery re-derives it from
// the acceptors — so the leader's own commit record is written
// lazily, like a 2PC subordinate's under delayed commit. The outcome
// phase then reuses the 2PC machinery verbatim: KCommit/KAbort
// notifications, delayed subordinate commit records, batched acks.
// Called with f's lock held; exclude (if nonzero) already knows the
// abort outcome.
func (m *Manager) paxosDecide(f *family, commit bool, exclude tid.SiteID) {
	m.tr.PhaseEnd(m.cfg.Site, tid.Top(f.id), "prepare")
	f.paxStage = 0
	if !commit {
		f.ph = phAborted
		m.bumpStats(func(s *Stats) { s.Aborted++ })
		m.log.Append(&wal.Record{Type: wal.RecAbort, TID: tid.Top(f.id)}) //nolint:errcheck // lazy under presumed abort
		if f.result != nil {
			f.result.Set(wire.OutcomeAbort)
		}
		var notify []tid.SiteID
		for _, s := range f.nbSites {
			if s != m.cfg.Site && s != exclude {
				notify = append(notify, s)
			}
		}
		m.fanout(notify, m.outcomeMsg(f), f.opts.Multicast)
		m.releaseLocal(f, false)
		m.forget(f)
		return
	}

	//lint:ordered set construction; insertion order is unobservable
	for s, v := range f.votes {
		if s != m.cfg.Site && v == wire.VoteYes {
			f.updateSubs[s] = true
		}
	}
	// Read-only acceptor hosts stayed alive for their acceptor role;
	// tell them the outcome fire-and-forget so they can forget too.
	var roAcceptors []tid.SiteID
	for _, a := range f.paxAcceptors {
		if a != m.cfg.Site && f.votes[a] == wire.VoteReadOnly {
			roAcceptors = append(roAcceptors, a)
		}
	}
	if len(f.updateSubs) == 0 && f.votes[m.cfg.Site] == wire.VoteReadOnly && !f.opts.DisableReadOnlyOpt {
		// Completely read-only: no commit record, no END, no acks.
		f.ph = phCommitted
		m.bumpStats(func(s *Stats) { s.Committed++ })
		if f.result != nil {
			f.result.Set(wire.OutcomeCommit)
		}
		m.fanout(roAcceptors, m.outcomeMsg(f), f.opts.Multicast)
		m.releaseLocal(f, true)
		m.forget(f)
		return
	}
	f.ph = phCommitted
	m.bumpStats(func(s *Stats) { s.Committed++ })
	m.log.Append(&wal.Record{ //nolint:errcheck // lazy: the quorum is the commit point
		Type: wal.RecCommit, TID: tid.Top(f.id), Sites: sortedSites(f.updateSubs),
	})
	if f.result != nil {
		f.result.Set(wire.OutcomeCommit)
	}
	//lint:ordered set copy; insertion order is unobservable
	for s := range f.updateSubs {
		f.acksPending[s] = true
	}
	if len(f.acksPending) > 0 {
		m.tr.PhaseBegin(m.cfg.Site, tid.Top(f.id), "notify")
	}
	m.fanout(sortedSites(f.updateSubs), m.outcomeMsg(f), f.opts.Multicast)
	m.fanout(roAcceptors, m.outcomeMsg(f), f.opts.Multicast)
	m.releaseLocal(f, true)
	if len(f.acksPending) == 0 {
		m.end(f)
		return
	}
	m.schedule(f, m.cfg.RetryInterval)
}

// onPaxosVote handles an RM's direct No vote at the leader. A No
// never reaches the acceptors — the RM is the sole ballot-0 proposer
// for its instance, so skipping them cannot contradict a chosen
// value; a takeover leader that finds the instance empty chooses
// Aborted, agreeing with us.
func (m *Manager) onPaxosVote(msg *wire.Msg) {
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		return
	}
	defer m.unlockFamily(f)
	if !f.coord || !f.opts.Paxos || f.ph != phPreparing {
		return
	}
	if msg.Vote != wire.VoteNo {
		return
	}
	f.votes[msg.From] = wire.VoteNo
	m.paxosDecide(f, false, msg.From)
}

// onPaxosPrepare handles the leader's vote request at an RM.
func (m *Manager) onPaxosPrepare(msg *wire.Msg) {
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		// No record of joining: we crashed and lost volatile updates.
		// Voting No direct to the leader is the only safe answer.
		m.send(msg.From, &wire.Msg{Kind: wire.KPaxosVote, TID: msg.TID, Vote: wire.VoteNo})
		return
	}
	if f.ph == phPrepared {
		// Duplicate request (our 2a batch was lost somewhere): re-cast.
		m.paxosCastVote(f, f.localVote)
		m.unlockFamily(f)
		return
	}
	if f.ph != phActive {
		m.unlockFamily(f)
		return
	}
	if f.paxAcceptorOnly {
		// The descriptor exists only because an acceptor message
		// created it; the RM state is gone. Answer No but keep serving
		// the acceptor role — do not abort the family.
		m.send(msg.From, &wire.Msg{Kind: wire.KPaxosVote, TID: msg.TID, Vote: wire.VoteNo})
		m.unlockFamily(f)
		return
	}
	opts := optionsFromFlags(msg.Flags)
	opts.Paxos = true
	f.opts = opts
	f.nbSites = msg.Sites
	f.paxAcceptors = msg.Acceptors
	m.ensurePaxos(f)
	parts := m.participants(f)
	m.unlockFamily(f)

	vote := m.voteRound(parts, opts)
	switch vote {
	case wire.VoteNo:
		m.relockFamily(f) // stale descriptors still answer (as in onPrepare)
		m.send(msg.From, &wire.Msg{Kind: wire.KPaxosVote, TID: msg.TID, Vote: wire.VoteNo})
		m.localAbort(f)
		m.unlockFamily(f)
	case wire.VoteReadOnly:
		// The read-only vote travels through the acceptors like any
		// other: sent only to the leader it could be lost with the
		// leader and a takeover would choose Aborted for this instance
		// — contradicting a commit the leader may already have
		// announced.
		if !m.relockFamily(f) {
			m.unlockFamily(f)
			return
		}
		f.localVote = wire.VoteReadOnly
		if f.paxosIsAcceptor(m.cfg.Site) {
			// Stay alive for the acceptor role; prepared=false marks
			// that the outcome only tells us to forget.
			f.ph = phPrepared
			f.prepared = false
			if !m.paxosCastVote(f, wire.VoteReadOnly) {
				m.unlockFamily(f)
				return
			}
			m.releaseLocal(f, true)
			m.schedule(f, m.cfg.InquireInterval)
			m.unlockFamily(f)
			return
		}
		f.ph = phCommitted
		m.paxosCastVote(f, wire.VoteReadOnly)
		m.releaseLocal(f, true)
		m.forget(f)
		m.unlockFamily(f)
	case wire.VoteYes:
		// Force the prepared record, then cast Yes to the acceptors.
		rec := &wal.Record{
			Type: wal.RecPaxosPrepare, TID: msg.TID,
			Coordinator: msg.From, Sites: msg.Sites, Acceptors: msg.Acceptors,
		}
		lsn, err := m.log.Append(rec)
		if err == nil {
			err = m.log.Force(lsn)
			m.tr.LogForce(m.cfg.Site, rec.TID, rec.Type.String())
		}
		if !m.relockFamily(f) {
			m.unlockFamily(f)
			return
		}
		if err != nil {
			m.send(msg.From, &wire.Msg{Kind: wire.KPaxosVote, TID: msg.TID, Vote: wire.VoteNo})
			m.localAbort(f)
			m.unlockFamily(f)
			return
		}
		f.ph = phPrepared
		f.prepared = true
		f.localVote = wire.VoteYes
		m.tr.PhaseBegin(m.cfg.Site, msg.TID, "prepared")
		if !m.paxosCastVote(f, wire.VoteYes) {
			m.unlockFamily(f)
			return
		}
		m.schedule(f, m.cfg.InquireInterval)
		m.unlockFamily(f)
	}
}

// onPaxos2a handles a proposer's phase 2a at an acceptor: a ballot-0
// RM vote, or a takeover leader's chosen batch.
func (m *Manager) onPaxos2a(msg *wire.Msg) {
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		// Already resolved and forgotten: answer from the resolved
		// memory so a lagging leader can finish.
		if m.resolvedOutcome(msg.TID.Family) == wire.OutcomeCommit {
			m.send(msg.From, &wire.Msg{Kind: wire.KCommit, TID: msg.TID})
			return
		}
		// Unknown transaction: the acceptor role must outlive volatile
		// RM state, so create a descriptor for it. Any promise or
		// acceptance it makes is forced and restored after a crash.
		var created bool
		f, created = m.lockOrCreateFamily(msg.TID.Family)
		if created {
			f.paxAcceptorOnly = true
		}
	}
	defer m.unlockFamily(f)
	if f.ph == phCommitted || f.ph == phAborted {
		return
	}
	m.ensurePaxos(f)
	if len(f.nbSites) == 0 {
		f.nbSites = msg.Sites
	}
	if len(f.paxAcceptors) == 0 {
		f.paxAcceptors = msg.Acceptors
	}
	if !f.paxosIsAcceptor(m.cfg.Site) {
		return
	}
	if msg.Ballot < f.paxPromised {
		if msg.Ballot > 0 {
			// NACK the outbid takeover leader (ballot-0 RMs retry on
			// their own timer and need no nack).
			m.send(msg.From, &wire.Msg{
				Kind: wire.KPaxos2b, TID: msg.TID, Ballot: f.paxPromised,
			})
		}
		return
	}
	if msg.Ballot > f.paxPromised {
		// Accepting at b implies promising b; recovery restores the
		// promise as the max over promise records and accepted ballots,
		// so no separate promise force is needed here.
		f.paxPromised = msg.Ballot
	}
	m.paxosAccept(f, msg.Ballot, msg.Votes)
}

// onPaxos2b handles an acceptor's batched 2b (or nack) at the leader.
func (m *Manager) onPaxos2b(msg *wire.Msg) {
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		return
	}
	defer m.unlockFamily(f)
	if !f.opts.Paxos {
		return
	}
	m.paxosMerge2b(f, msg.From, msg.Ballot, msg.Votes)
}

// --- takeover (a prepared participant drives the decision) ---

// paxosPromote starts (or restarts, at a higher ballot) takeover at
// this site (f's lock held; may release it for the promise force).
func (m *Manager) paxosPromote(f *family) {
	if !f.promoted {
		f.promoted = true
		m.bumpStats(func(s *Stats) { s.Promotions++ })
	}
	round := f.paxRound + 1
	if r := paxosBallotRound(f.paxNack) + 1; r > round {
		round = r
	}
	if r := paxosBallotRound(f.paxPromised) + 1; r > round {
		round = r
	}
	f.paxRound = round
	f.paxBallot = paxosBallot(round, m.cfg.Site)
	f.paxStage = 1
	f.pax1b = make(map[tid.SiteID][]wire.PaxosAccepted)
	f.pax2b = make(map[tid.SiteID]bool)
	f.attempts, f.backoffN = 0, 0
	if f.paxosIsAcceptor(m.cfg.Site) {
		if !m.paxosPromiseLocal(f) {
			return
		}
	}
	var remotes []tid.SiteID
	for _, a := range f.paxAcceptors {
		if a != m.cfg.Site {
			remotes = append(remotes, a)
		}
	}
	m.fanout(remotes, &wire.Msg{
		Kind: wire.KPaxos1a, TID: tid.Top(f.id), Ballot: f.paxBallot,
		Sites: f.nbSites, Acceptors: f.paxAcceptors,
	}, f.opts.Multicast)
	m.schedule(f, m.cfg.RetryInterval)
	m.paxosCheck1bQuorum(f)
}

// paxosPromiseLocal records the co-located acceptor's promise for our
// own takeover ballot and files its 1b (f's lock held; released
// around the force). Returns false if the family died meanwhile.
func (m *Manager) paxosPromiseLocal(f *family) bool {
	b := f.paxBallot
	if b <= f.paxPromised {
		return true
	}
	f.paxPromised = b
	if !m.paxosForcePromise(f, b) {
		return false
	}
	if f.paxStage == 1 && f.paxBallot == b {
		var acc []wire.PaxosAccepted
		for _, s := range det.SortedKeys(f.paxAcc) {
			acc = append(acc, f.paxAcc[s])
		}
		f.pax1b[m.cfg.Site] = acc
	}
	return true
}

// paxosForcePromise durably records a ballot promise (f's lock held;
// released around the force). Returns false if the family died or the
// log failed — in either case the caller must not act on the promise.
func (m *Manager) paxosForcePromise(f *family, b uint64) bool {
	rec := &wal.Record{
		Type: wal.RecPaxosPromise, TID: tid.Top(f.id), Ballot: b,
		Sites: f.nbSites, Acceptors: f.paxAcceptors,
	}
	m.unlockFamily(f)
	lsn, err := m.log.Append(rec)
	if err == nil {
		err = m.log.Force(lsn)
		m.tr.LogForce(m.cfg.Site, rec.TID, rec.Type.String())
	}
	if !m.relockFamily(f) {
		return false
	}
	return err == nil
}

// onPaxos1a handles a takeover leader's phase 1a at an acceptor.
func (m *Manager) onPaxos1a(msg *wire.Msg) {
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		if m.resolvedOutcome(msg.TID.Family) == wire.OutcomeCommit {
			m.send(msg.From, &wire.Msg{Kind: wire.KCommit, TID: msg.TID})
		} else {
			m.send(msg.From, &wire.Msg{Kind: wire.KAbort, TID: msg.TID})
		}
		return
	}
	defer m.unlockFamily(f)
	if f.ph == phCommitted || f.ph == phAborted {
		return
	}
	m.ensurePaxos(f)
	if len(f.nbSites) == 0 {
		f.nbSites = msg.Sites
	}
	if len(f.paxAcceptors) == 0 {
		f.paxAcceptors = msg.Acceptors
	}
	if !f.paxosIsAcceptor(m.cfg.Site) {
		return
	}
	if msg.Ballot < f.paxPromised {
		m.send(msg.From, &wire.Msg{Kind: wire.KPaxos1b, TID: msg.TID, Ballot: f.paxPromised})
		return
	}
	if msg.Ballot > f.paxPromised {
		// The promise must be durable before the 1b leaves: an empty 1b
		// commits this acceptor to never accepting a lower ballot, and
		// the leader may decide Aborted on the strength of it. Losing
		// the promise in a crash could let a late ballot-0 Yes slip in
		// afterwards, contradicting that decision.
		f.paxPromised = msg.Ballot
		if !m.paxosForcePromise(f, msg.Ballot) {
			return
		}
		if f.ph == phCommitted || f.ph == phAborted {
			return
		}
	}
	var acc []wire.PaxosAccepted
	for _, s := range det.SortedKeys(f.paxAcc) {
		acc = append(acc, f.paxAcc[s])
	}
	m.send(msg.From, &wire.Msg{
		Kind: wire.KPaxos1b, TID: msg.TID, Ballot: msg.Ballot, Accepted: acc,
	})
}

// onPaxos1b handles an acceptor's promise (or nack) at a takeover
// leader.
func (m *Manager) onPaxos1b(msg *wire.Msg) {
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		return
	}
	defer m.unlockFamily(f)
	if !f.promoted || f.paxStage != 1 {
		return
	}
	if msg.Ballot != f.paxBallot {
		if msg.Ballot > f.paxNack {
			f.paxNack = msg.Ballot
		}
		return
	}
	f.pax1b[msg.From] = msg.Accepted
	m.paxosCheck1bQuorum(f)
}

// paxosCheck1bQuorum moves takeover to phase 2 once a promise quorum
// is in: for each instance choose the highest-ballot accepted value,
// or Aborted where the quorum saw none — the free choice Paxos
// grants, and the safe one for an RM that may never have voted (f's
// lock held; may release it for the local accept force).
func (m *Manager) paxosCheck1bQuorum(f *family) {
	if f.paxStage != 1 || len(f.pax1b) < m.paxosQuorum(f) {
		return
	}
	chosen := make([]wire.SiteVote, 0, len(f.nbSites))
	for _, s := range f.nbSites {
		v := wire.VoteNo
		var best uint64
		for _, from := range det.SortedKeys(f.pax1b) {
			for _, a := range f.pax1b[from] {
				if a.Site == s && (a.Ballot > best || (a.Ballot == best && v == wire.VoteNo)) {
					// Equal-ballot entries carry identical values — one
					// proposer per ballot — so any of them will do.
					best = a.Ballot
					v = a.Vote
				}
			}
		}
		chosen = append(chosen, wire.SiteVote{Site: s, Vote: v})
		f.votes[s] = v
	}
	f.paxStage = 2
	f.pax2b = make(map[tid.SiteID]bool)
	f.attempts, f.backoffN = 0, 0
	if f.paxosIsAcceptor(m.cfg.Site) {
		if !m.paxosAccept(f, f.paxBallot, chosen) {
			return
		}
		if f.paxStage != 2 {
			// The local accept completed the quorum and decided.
			return
		}
	}
	var remotes []tid.SiteID
	for _, a := range f.paxAcceptors {
		if a != m.cfg.Site {
			remotes = append(remotes, a)
		}
	}
	m.fanout(remotes, &wire.Msg{
		Kind: wire.KPaxos2a, TID: tid.Top(f.id), Ballot: f.paxBallot,
		Votes: chosen, Sites: f.nbSites, Acceptors: f.paxAcceptors,
	}, f.opts.Multicast)
	m.schedule(f, m.cfg.RetryInterval)
	m.paxosCheckDecide(f)
}

// paxosTick is the retry/timeout path for Paxos families (f's lock
// held).
func (m *Manager) paxosTick(f *family) {
	switch {
	case f.promoted:
		f.attempts++
		if f.paxNack > f.paxBallot {
			// Outbid: retry at a round above the rival's.
			m.paxosPromote(f)
			return
		}
		switch f.paxStage {
		case 1:
			var missing []tid.SiteID
			for _, a := range f.paxAcceptors {
				if a != m.cfg.Site {
					if _, ok := f.pax1b[a]; !ok {
						missing = append(missing, a)
					}
				}
			}
			m.retryFanout(f, missing, &wire.Msg{
				Kind: wire.KPaxos1a, TID: tid.Top(f.id), Ballot: f.paxBallot,
				Sites: f.nbSites, Acceptors: f.paxAcceptors,
			}, "paxos1a")
			m.reschedule(f, m.cfg.RetryInterval)
		case 2:
			chosen := make([]wire.SiteVote, 0, len(f.nbSites))
			for _, s := range f.nbSites {
				chosen = append(chosen, wire.SiteVote{Site: s, Vote: f.votes[s]})
			}
			var missing []tid.SiteID
			for _, a := range f.paxAcceptors {
				if a != m.cfg.Site && !f.pax2b[a] {
					missing = append(missing, a)
				}
			}
			m.retryFanout(f, missing, &wire.Msg{
				Kind: wire.KPaxos2a, TID: tid.Top(f.id), Ballot: f.paxBallot,
				Votes: chosen, Sites: f.nbSites, Acceptors: f.paxAcceptors,
			}, "paxos2a")
			m.reschedule(f, m.cfg.RetryInterval)
		default:
			if (f.ph == phCommitted || f.ph == phAborted) && len(f.acksPending) > 0 {
				m.retryFanout(f, sortedSites(f.acksPending), m.outcomeMsg(f), "outcome")
				m.reschedule(f, m.cfg.RetryInterval)
			}
		}
	case f.coord && f.ph == phPreparing:
		f.attempts++
		if f.attempts > m.cfg.VoteRetries {
			// Unlike 2PC the coordinator cannot unilaterally abort here:
			// a full acceptor quorum may already hold every Yes vote, in
			// which case the commit is chosen. Drive the abort through
			// Paxos takeover instead, where unseen instances become
			// Aborted by the quorum's testimony.
			m.paxosPromote(f)
			return
		}
		var missingRMs []tid.SiteID
		for _, s := range f.nbSites {
			if s == m.cfg.Site {
				continue
			}
			if _, ok := f.votes[s]; !ok {
				missingRMs = append(missingRMs, s)
			}
		}
		m.retryFanout(f, missingRMs, m.prepareMsg(f), "prepare")
		var missingAcc []tid.SiteID
		for _, a := range f.paxAcceptors {
			if a != m.cfg.Site && !f.pax2b[a] {
				missingAcc = append(missingAcc, a)
			}
		}
		if len(missingAcc) > 0 {
			m.retryFanout(f, missingAcc, &wire.Msg{
				Kind: wire.KPaxos2a, TID: tid.Top(f.id),
				Votes:     []wire.SiteVote{{Site: m.cfg.Site, Vote: f.localVote}},
				Sites:     f.nbSites,
				Acceptors: f.paxAcceptors,
			}, "paxos2a")
		}
		m.reschedule(f, m.cfg.RetryInterval)
	case (f.ph == phCommitted || f.ph == phAborted) && len(f.acksPending) > 0:
		m.retryFanout(f, sortedSites(f.acksPending), m.outcomeMsg(f), "outcome")
		m.reschedule(f, m.cfg.RetryInterval)
	case f.ph == phPrepared && !f.coord:
		// Prepared participant hearing nothing: re-cast the vote twice
		// (covers lost 2a/2b datagrams), then take over.
		f.attempts++
		if f.attempts <= 2 {
			m.bumpStats(func(s *Stats) { s.Retransmits++ })
			m.tr.Retry(m.cfg.Site, tid.Top(f.id), "recast", 1)
			if !m.paxosCastVote(f, f.localVote) {
				return
			}
			m.reschedule(f, m.cfg.InquireInterval)
			return
		}
		m.paxosPromote(f)
	case f.ph == phActive && !f.coord:
		// Orphan or acceptor-only descriptor: ask the origin; resolved
		// memory answers for finished transactions and presumed abort
		// covers never-decided ones.
		m.inquire(f)
		m.reschedule(f, 4*m.cfg.InquireInterval)
	}
}
