package core

import (
	"fmt"

	"camelot/internal/det"
	"camelot/internal/rt"
	"camelot/internal/server"
	"camelot/internal/tid"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

// Commit runs commit-transaction (Figure 1 step 7). For a top-level
// transaction it executes the distributed protocol selected by opts
// and returns the outcome; for a nested transaction it merges the
// child into its parent. It returns ErrAborted when the decision is
// abort.
func (m *Manager) Commit(t tid.TID, opts Options) (wire.Outcome, error) {
	m.chargeClientIPC()
	if !t.IsTop() {
		return m.commitChild(t)
	}
	fut := rt.NewFuture[wire.Outcome](m.r)
	m.queue.Put(func() { m.commitTop(t, opts, fut) })
	out, ok := fut.WaitTimeout(m.cfg.RetryInterval * 600)
	if !ok {
		return wire.OutcomeUnknown, ErrClosed
	}
	switch out {
	case wire.OutcomeCommit:
		return out, nil
	case wire.OutcomeAbort:
		return out, fmt.Errorf("%w: %s", ErrAborted, t)
	default:
		// The manager crashed mid-protocol; the decision may land
		// either way once the survivors (or recovery) finish it.
		return out, fmt.Errorf("%w: outcome of %s undetermined", ErrClosed, t)
	}
}

// Abort runs abort-transaction. For top-level transactions this is
// the abort protocol, which "can operate with incomplete knowledge
// about which sites are involved": known remote sites are notified,
// and any site missed will learn the outcome by presumed-abort
// inquiry.
func (m *Manager) Abort(t tid.TID) error {
	m.chargeClientIPC()
	if !t.IsTop() {
		return m.abortChild(t)
	}
	fut := rt.NewFuture[wire.Outcome](m.r)
	m.queue.Put(func() {
		f := m.lockFamily(t.Family)
		if f == nil {
			fut.Set(wire.OutcomeAbort)
			return
		}
		defer m.unlockFamily(f)
		if f.ph != phActive {
			fut.Set(wire.OutcomeAbort)
			return
		}
		m.abortFamily(f)
		fut.Set(wire.OutcomeAbort)
	})
	if _, ok := fut.WaitTimeout(m.cfg.RetryInterval * 600); !ok {
		return ErrClosed
	}
	return nil
}

// commitTop is the coordinator's commit-transaction entry, running on
// a pool thread.
func (m *Manager) commitTop(t tid.TID, opts Options, fut *rt.Future[wire.Outcome]) {
	f := m.lockFamily(t.Family)
	if f == nil || !f.coord || f.ph != phActive || m.isClosed() {
		if f != nil {
			m.unlockFamily(f)
		}
		fut.Set(wire.OutcomeAbort)
		return
	}
	f.opts = opts
	f.result = fut
	parts := m.participants(f)
	m.unlockFamily(f)

	// Phase one, local half: ask each local server whether it is
	// willing to commit (Figure 1 step 8).
	local := m.voteRound(parts, opts)

	live := m.relockFamily(f)
	defer m.unlockFamily(f)
	if !live || f.ph != phActive {
		return // aborted concurrently
	}
	f.localVote = local
	if local == wire.VoteNo {
		m.abortFamily(f)
		return
	}

	if len(f.remoteSites) == 0 {
		m.commitLocal(f)
		return
	}
	if opts.Paxos {
		m.paxosBeginCommit(f)
		return
	}
	if opts.NonBlocking {
		m.nbBeginCommit(f)
		return
	}

	// Distributed two-phase commit, phase one.
	f.ph = phPreparing
	f.votes[m.cfg.Site] = local
	m.tr.PhaseBegin(m.cfg.Site, tid.Top(f.id), "prepare")
	m.fanout(sortedSites(f.remoteSites), m.prepareMsg(f), opts.Multicast)
	m.schedule(f, m.cfg.RetryInterval)
}

// commitLocal finishes a transaction with no remote participants: the
// best (and typical) case needs only one log write (Figure 1 step 9).
// Called and returns with f's lock held; the lock is released around
// the force.
func (m *Manager) commitLocal(f *family) {
	if f.localVote == wire.VoteReadOnly && !f.opts.DisableReadOnlyOpt {
		// Read-only: no log writes at all.
		f.ph = phCommitted
		m.bumpStats(func(s *Stats) { s.Committed++ })
		f.result.Set(wire.OutcomeCommit)
		m.releaseLocal(f, true)
		m.forget(f)
		return
	}
	rec := &wal.Record{Type: wal.RecCommit, TID: tid.Top(f.id)}
	m.unlockFamily(f)
	lsn, err := m.log.Append(rec)
	if err == nil {
		err = m.log.Force(lsn)
		m.tr.LogForce(m.cfg.Site, rec.TID, rec.Type.String())
	}
	if !m.relockFamily(f) {
		return
	}
	if err != nil {
		// The force failed, which means the log has fail-stopped and
		// this site is going down. The commit record may already be
		// durable — the write happens before the acknowledgement — so
		// presuming abort here would lie to a client about a
		// transaction recovery will replay as committed. Leave the
		// family unresolved: Close reports it undetermined and
		// recovery finishes the decision.
		return
	}
	f.ph = phCommitted
	m.bumpStats(func(s *Stats) { s.Committed++ })
	f.result.Set(wire.OutcomeCommit)
	m.releaseLocal(f, true)
	m.forget(f)
}

// onVote handles a subordinate's phase-one vote at the coordinator.
func (m *Manager) onVote(msg *wire.Msg) {
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		return
	}
	defer m.unlockFamily(f)
	if !f.coord || f.ph != phPreparing || f.opts.NonBlocking {
		return
	}
	f.votes[msg.From] = msg.Vote
	if msg.Vote == wire.VoteNo {
		m.abortFamily(f)
		return
	}
	//lint:ordered pure membership test; no effect depends on visit order
	for s := range f.remoteSites {
		if _, ok := f.votes[s]; !ok {
			return // still waiting
		}
	}
	m.decideCommit2PC(f)
}

// decideCommit2PC runs once every site has voted yes or read-only:
// force the commit record (the commit point), answer the application,
// then notify update subordinates. Read-only sites are "omitted from
// the second phase". Called and returns with f's lock held.
func (m *Manager) decideCommit2PC(f *family) {
	m.tr.PhaseEnd(m.cfg.Site, tid.Top(f.id), "prepare")
	//lint:ordered set construction; insertion order is unobservable
	for s, v := range f.votes {
		if s != m.cfg.Site && v == wire.VoteYes {
			f.updateSubs[s] = true
		}
	}
	if len(f.updateSubs) == 0 && f.localVote == wire.VoteReadOnly && !f.opts.DisableReadOnlyOpt {
		// Completely read-only distributed transaction: "the same
		// critical path performance as in two-phase commitment" with
		// no second phase and no log writes.
		f.ph = phCommitted
		m.bumpStats(func(s *Stats) { s.Committed++ })
		f.result.Set(wire.OutcomeCommit)
		m.releaseLocal(f, true)
		m.forget(f)
		return
	}

	rec := &wal.Record{Type: wal.RecCommit, TID: tid.Top(f.id), Sites: sortedSites(f.updateSubs)}
	m.unlockFamily(f)
	lsn, err := m.log.Append(rec)
	if err == nil {
		err = m.log.Force(lsn)
		m.tr.LogForce(m.cfg.Site, rec.TID, rec.Type.String())
	}
	if !m.relockFamily(f) {
		return
	}
	if err != nil {
		// Fail-stopped log, site going down. The commit record may
		// already be durable, so the outcome is genuinely undetermined
		// — do not presume abort (see commitLocal).
		return
	}
	f.ph = phCommitted
	m.bumpStats(func(s *Stats) { s.Committed++ })
	//lint:ordered set copy; insertion order is unobservable
	for s := range f.updateSubs {
		f.acksPending[s] = true
	}
	if len(f.acksPending) > 0 {
		m.tr.PhaseBegin(m.cfg.Site, tid.Top(f.id), "notify")
	}
	m.fanout(sortedSites(f.updateSubs), m.outcomeMsg(f), f.opts.Multicast)
	f.result.Set(wire.OutcomeCommit)
	m.releaseLocal(f, true)
	if len(f.acksPending) == 0 {
		m.end(f)
		return
	}
	m.schedule(f, m.cfg.RetryInterval)
}

// onCommitAck handles one commit acknowledgement (standalone or
// piggybacked). When the last subordinate's commit record is known
// stable the coordinator writes an END record and may forget the
// transaction.
func (m *Manager) onCommitAck(from tid.SiteID, t tid.TID) {
	f := m.lockFamily(t.Family)
	if f == nil {
		return
	}
	defer m.unlockFamily(f)
	if !f.coord || f.ph != phCommitted {
		return
	}
	delete(f.acksPending, from)
	if len(f.acksPending) == 0 {
		m.end(f)
	}
}

// end writes the END record and forgets the family (f's lock held).
func (m *Manager) end(f *family) {
	m.tr.PhaseEnd(m.cfg.Site, tid.Top(f.id), "notify")
	m.log.Append(&wal.Record{Type: wal.RecEnd, TID: tid.Top(f.id)}) //nolint:errcheck // lazy; loss is harmless
	m.forget(f)
}

// abortFamily is the coordinator-side abort path (client abort, local
// or remote No vote, protocol failure). Under presumed abort nothing
// is forced and no acks are awaited. Called with f's lock held.
func (m *Manager) abortFamily(f *family) {
	f.ph = phAborted
	m.bumpStats(func(s *Stats) { s.Aborted++ })
	m.tr.PhaseEnd(m.cfg.Site, tid.Top(f.id), "prepare")
	m.log.Append(&wal.Record{Type: wal.RecAbort, TID: tid.Top(f.id)}) //nolint:errcheck // lazy under presumed abort
	if f.result != nil {
		f.result.Set(wire.OutcomeAbort)
	}
	var notify []tid.SiteID
	for _, s := range det.SortedKeys(f.remoteSites) {
		if f.votes[s] != wire.VoteNo && f.votes[s] != wire.VoteReadOnly {
			notify = append(notify, s)
		}
	}
	m.fanout(notify, &wire.Msg{Kind: wire.KAbort, TID: tid.Top(f.id)}, f.opts.Multicast)
	m.releaseLocal(f, false)
	m.forget(f)
}

// onInquire answers a blocked subordinate's outcome inquiry. A
// transaction the coordinator has no record of was aborted — that is
// the presumed-abort rule.
func (m *Manager) onInquire(msg *wire.Msg) {
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		// Consult the resolved-outcome memory first; an unknown
		// transaction was aborted — the presumed-abort rule.
		if m.resolvedOutcome(msg.TID.Family) == wire.OutcomeCommit {
			m.send(msg.From, &wire.Msg{Kind: wire.KCommit, TID: msg.TID})
		} else {
			m.send(msg.From, &wire.Msg{Kind: wire.KAbort, TID: msg.TID})
		}
		return
	}
	defer m.unlockFamily(f)
	switch f.ph {
	case phAborted:
		m.send(msg.From, &wire.Msg{Kind: wire.KAbort, TID: msg.TID})
	case phCommitted:
		m.send(msg.From, m.outcomeMsg(f))
	default:
		// Still deciding; the subordinate will ask again.
	}
}

// --- subordinate side ---

// onPrepare handles phase one at a subordinate.
func (m *Manager) onPrepare(msg *wire.Msg) {
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		// No record of the transaction: perhaps we crashed since
		// joining, losing volatile updates. Voting No is the only
		// safe answer.
		m.send(msg.From, &wire.Msg{Kind: wire.KVote, TID: msg.TID, Vote: wire.VoteNo})
		return
	}
	if f.ph == phPrepared {
		// Duplicate prepare (our vote was lost): answer again.
		m.send(msg.From, &wire.Msg{Kind: wire.KVote, TID: msg.TID, Vote: wire.VoteYes})
		m.unlockFamily(f)
		return
	}
	if f.ph != phActive {
		m.unlockFamily(f)
		return
	}
	f.opts = optionsFromFlags(msg.Flags)
	parts := m.participants(f)
	m.unlockFamily(f)

	vote := m.voteRound(parts, f.opts)
	switch vote {
	case wire.VoteNo:
		m.relockFamily(f) // stale descriptors still answer (as before the refactor)
		m.send(msg.From, &wire.Msg{Kind: wire.KVote, TID: msg.TID, Vote: wire.VoteNo})
		m.localAbort(f)
		m.unlockFamily(f)
	case wire.VoteReadOnly:
		// Read-only optimization: vote, release, forget; we take no
		// part in phase two and write no log records.
		m.relockFamily(f)
		m.send(msg.From, &wire.Msg{Kind: wire.KVote, TID: msg.TID, Vote: wire.VoteReadOnly})
		f.ph = phCommitted
		m.releaseLocal(f, true)
		m.forget(f)
		m.unlockFamily(f)
	case wire.VoteYes:
		// Force the prepare record, then vote yes.
		rec := &wal.Record{
			Type:        wal.RecPrepare,
			TID:         msg.TID,
			Coordinator: msg.From,
		}
		lsn, err := m.log.Append(rec)
		if err == nil {
			err = m.log.Force(lsn)
			m.tr.LogForce(m.cfg.Site, rec.TID, rec.Type.String())
		}
		if !m.relockFamily(f) {
			m.unlockFamily(f)
			return
		}
		if err != nil {
			m.send(msg.From, &wire.Msg{Kind: wire.KVote, TID: msg.TID, Vote: wire.VoteNo})
			m.localAbort(f)
			m.unlockFamily(f)
			return
		}
		f.ph = phPrepared
		f.prepared = true
		m.tr.PhaseBegin(m.cfg.Site, msg.TID, "prepared")
		m.send(msg.From, &wire.Msg{Kind: wire.KVote, TID: msg.TID, Vote: wire.VoteYes})
		m.schedule(f, m.cfg.InquireInterval)
		m.unlockFamily(f)
	}
}

// onOutcome2PC handles COMMIT or ABORT at a subordinate.
func (m *Manager) onOutcome2PC(msg *wire.Msg) {
	commit := msg.Kind == wire.KCommit
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		// Already resolved and forgotten; the coordinator's COMMIT
		// was a retry, so its ack was lost: acknowledge again.
		if commit {
			m.queueAck(msg.From, msg.TID)
		}
		return
	}
	if f.coord && !f.opts.Paxos {
		m.unlockFamily(f)
		return
	}
	if f.opts.Paxos && !f.prepared && !f.coord && f.localVote == wire.VoteReadOnly {
		// Read-only acceptor-hosting Paxos site: the acceptor role kept
		// the family alive after its ReadOnly vote (locks already
		// released at vote time), so the outcome only tells it to
		// forget. No record, no ack — the read-only optimization's
		// zero-log-write property holds. The vote check matters: a
		// still-active subordinate that never voted holds provisional
		// updates and must fall through to the abort path below to
		// undo them.
		if commit {
			f.ph = phCommitted
		} else {
			f.ph = phAborted
		}
		m.forget(f)
		m.unlockFamily(f)
		return
	}
	if !commit {
		m.localAbort(f)
		m.unlockFamily(f)
		return
	}
	opts := optionsFromFlags(msg.Flags)
	f.opts = opts
	coordinator := msg.From
	parts := m.participants(f)

	if !opts.ForceSubCommit {
		// Delayed-commit optimization: "the subordinate drops its
		// locks before writing a commit record." The ack waits until
		// the lazily written record is stable, because the
		// coordinator must not forget first.
		f.ph = phCommitted
		m.tr.PhaseEnd(m.cfg.Site, msg.TID, "prepared")
		if f.result != nil {
			// A Paxos coordinator adopting a takeover leader's decision
			// still owes its client the outcome.
			f.result.Set(wire.OutcomeCommit)
		}
		m.unlockFamily(f)
		m.applyLocal(parts, f.id, true)
		lsn, err := m.log.Append(&wal.Record{Type: wal.RecCommit, TID: msg.TID})
		if m.relockFamily(f) {
			m.forget(f)
		}
		m.unlockFamily(f)
		if err != nil {
			return
		}
		m.r.Go("commit-ack-wait", func() {
			if m.log.WaitDurable(lsn) != nil {
				return
			}
			if m.isClosed() {
				return
			}
			if opts.ImmediateAck {
				m.send(coordinator, &wire.Msg{Kind: wire.KCommitAck, TID: msg.TID})
			} else {
				m.queueAck(coordinator, msg.TID)
			}
		})
		return
	}

	// Unoptimized (and semi-optimized) path: force the commit record,
	// and only then drop locks and acknowledge.
	f.ph = phCommitted
	m.tr.PhaseEnd(m.cfg.Site, msg.TID, "prepared")
	if f.result != nil {
		f.result.Set(wire.OutcomeCommit)
	}
	m.unlockFamily(f)
	lsn, err := m.log.Append(&wal.Record{Type: wal.RecCommit, TID: msg.TID})
	if err == nil {
		err = m.log.Force(lsn)
		m.tr.LogForce(m.cfg.Site, msg.TID, wal.RecCommit.String())
	}
	m.applyLocal(parts, f.id, true)
	live := m.relockFamily(f)
	defer m.unlockFamily(f)
	if err == nil {
		if opts.ImmediateAck {
			m.send(coordinator, &wire.Msg{Kind: wire.KCommitAck, TID: msg.TID})
		} else {
			m.queueAck(coordinator, msg.TID)
		}
	}
	if live {
		m.forget(f)
	}
}

// localAbort aborts the family at this subordinate site (f's lock
// held).
func (m *Manager) localAbort(f *family) {
	f.ph = phAborted
	m.bumpStats(func(s *Stats) { s.Aborted++ })
	if f.result != nil {
		f.result.Set(wire.OutcomeAbort)
	}
	m.tr.PhaseEnd(m.cfg.Site, tid.Top(f.id), "prepared")
	m.log.Append(&wal.Record{Type: wal.RecAbort, TID: tid.Top(f.id)}) //nolint:errcheck // lazy under presumed abort
	m.releaseLocal(f, false)
	m.forget(f)
}

// --- shared helpers ---

// voteRound performs the local half of phase one: one IPC round to
// the joined servers, combining their votes.
func (m *Manager) voteRound(parts []server.Participant, opts Options) wire.Vote {
	if len(parts) == 0 {
		if opts.DisableReadOnlyOpt {
			return wire.VoteYes
		}
		return wire.VoteReadOnly
	}
	// Identical parallel operations are assumed to proceed in
	// parallel (§4.2): one IPC round covers all local servers.
	m.tr.IPC(m.cfg.Site)
	rt.Charge(m.r, m.cfg.Kernel, m.cfg.Params.LocalIPCServer+m.cfg.Params.KernelCPU)
	combined := wire.VoteReadOnly
	for _, p := range parts {
		switch p.Vote(0) { // family filled in by wrapper below
		case wire.VoteNo:
			return wire.VoteNo
		case wire.VoteYes:
			combined = wire.VoteYes
		case wire.VoteReadOnly:
			// Leaves combined unchanged: read-only participants never
			// strengthen the site's vote.
		}
	}
	if combined == wire.VoteReadOnly && opts.DisableReadOnlyOpt {
		return wire.VoteYes
	}
	return combined
}

// participants snapshots the family's joined servers as closures
// bound to the family id, so vote rounds and releases can run without
// holding the family lock.
func (m *Manager) participants(f *family) []server.Participant {
	out := make([]server.Participant, 0, len(f.participants))
	for _, name := range det.SortedKeys(f.participants) {
		out = append(out, boundParticipant{p: f.participants[name], f: f.id})
	}
	return out
}

// boundParticipant pins a participant to one family so callers do not
// thread the family id everywhere.
type boundParticipant struct {
	p server.Participant
	f tid.FamilyID
}

func (b boundParticipant) Name() string                { return b.p.Name() }
func (b boundParticipant) Vote(tid.FamilyID) wire.Vote { return b.p.Vote(b.f) }
func (b boundParticipant) CommitFamily(tid.FamilyID)   { b.p.CommitFamily(b.f) }
func (b boundParticipant) AbortFamily(tid.FamilyID)    { b.p.AbortFamily(b.f) }
func (b boundParticipant) CommitChild(c, p tid.TID)    { b.p.CommitChild(c, p) }
func (b boundParticipant) AbortChild(c tid.TID)        { b.p.AbortChild(c) }

// releaseLocal tells local servers to apply or undo and drop locks
// (Figure 1 step 11). The call is one-way — it is not on the
// completion path — so it runs on a fresh thread. f's lock is held.
func (m *Manager) releaseLocal(f *family, commit bool) {
	parts := m.participants(f)
	if len(parts) == 0 {
		return
	}
	m.tr.LockDrop(m.cfg.Site, tid.Top(f.id))
	oneWay := m.cfg.Params.LocalOneWay + m.cfg.Params.KernelCPU
	m.r.Go("drop-locks", func() {
		rt.Charge(m.r, m.cfg.Kernel, oneWay)
		m.applyLocal(parts, f.id, commit)
	})
}

// applyLocal synchronously applies the outcome at the local servers.
func (m *Manager) applyLocal(parts []server.Participant, f tid.FamilyID, commit bool) {
	for _, p := range parts {
		if commit {
			p.CommitFamily(f)
		} else {
			p.AbortFamily(f)
		}
	}
}

func optionsFromFlags(fl uint8) Options {
	return Options{
		ForceSubCommit:     fl&wire.FlagForceSubCommit != 0,
		ImmediateAck:       fl&wire.FlagImmediateAck != 0,
		DisableReadOnlyOpt: fl&wire.FlagNoReadOnlyOpt != 0,
	}
}

func sortedSites(set map[tid.SiteID]bool) []tid.SiteID {
	return det.SortedKeys(set)
}
