// Package core implements the Camelot transaction manager (TranMan)
// — the paper's subject. It is "essentially a protocol processor":
// applications obtain transaction identifiers from it, data servers
// join transactions through it, and commit/abort calls invoke one of
// its distributed protocols:
//
//   - presumed-abort two-phase commit with Duchamp's delayed-commit
//     optimization (§3.2), plus the semi-optimized and unoptimized
//     variants the paper measures against each other (§4.2);
//   - the non-blocking three-phase protocol with a replication phase
//     (§3.3), including subordinate-to-coordinator promotion on
//     timeout and tolerance of multiple simultaneous coordinators;
//   - the read-only optimization for both;
//   - the abort protocol, presumed-abort inquiries, and nested
//     transaction (Moss model) begin/commit/abort with distributed
//     child resolution.
//
// The manager is multithreaded exactly as §3.4 prescribes: a fixed
// pool of threads waits on a single input queue ("have every thread
// wait for any type of input, process the input, and resume
// waiting"); no thread is tied to a transaction; synchronous log
// forces hold the thread that issued them, which is why throughput
// with one thread collapses unless the log batches (Figures 4, 5).
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"camelot/internal/det"
	"camelot/internal/params"
	"camelot/internal/rt"
	"camelot/internal/server"
	"camelot/internal/tid"
	"camelot/internal/trace"
	"camelot/internal/transport"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

// Client-visible errors.
var (
	// ErrAborted reports that commit-transaction ended in abort.
	ErrAborted = errors.New("core: transaction aborted")
	// ErrClosed reports a call into a crashed or shut-down manager.
	ErrClosed = errors.New("core: transaction manager closed")
	// ErrUnknownTransaction reports an operation on a transaction the
	// manager has no record of.
	ErrUnknownTransaction = errors.New("core: unknown transaction")
)

// Options selects the commitment protocol for one transaction, the
// experimental knobs of §4.2.
type Options struct {
	// NonBlocking selects the three-phase non-blocking protocol of
	// §3.3 instead of two-phase commit. ("The type of commitment
	// protocol to execute is specified as an argument to the
	// commit-transaction call.")
	NonBlocking bool
	// ForceSubCommit makes subordinates force their commit records.
	// False is the delayed-commit optimization: the subordinate drops
	// its locks before (lazily) writing the commit record.
	ForceSubCommit bool
	// ImmediateAck makes subordinates send the commit-ack as its own
	// datagram as soon as their commit record is stable. False delays
	// the ack for piggybacking/batching.
	ImmediateAck bool
	// Multicast sends each coordinator fan-out (prepare, replicate,
	// outcome) as one multicast rather than serial unicasts.
	Multicast bool
	// DisableReadOnlyOpt forces read-only sites through the full
	// update path, for the ablation experiment.
	DisableReadOnlyOpt bool
	// Paxos selects Paxos Commit (Gray & Lamport, "Consensus on
	// Transaction Commit"): one Paxos consensus instance per
	// participant vote, decided by an acceptor set shared across all
	// instances of the transaction. The fault-free path uses the
	// ballot-0 optimization — each participant sends its vote straight
	// to the acceptors — and one acceptor is co-located with the
	// coordinator so its phase-2b piggybacks as a local call. At
	// PaxosF = 0 the protocol degenerates to exactly two-phase
	// commit's delayed-commit budget.
	Paxos bool
	// PaxosF is the number of acceptor failures Paxos Commit
	// tolerates; the acceptor set has min(2F+1, participants)
	// members.
	PaxosF int
}

// Config parameterizes a Manager.
type Config struct {
	// Site is this manager's site identifier; it must be unique in
	// the network and nonzero.
	Site tid.SiteID
	// Threads is the pool size (the paper studies 1, 5, 20).
	Threads int
	// Params is the latency model.
	Params params.Params
	// Kernel, if non-nil, is the site's serially shared kernel
	// processor through which IPC costs are charged.
	Kernel *rt.CPU
	// RetryInterval is the coordinator's datagram retransmit period.
	RetryInterval time.Duration
	// InquireInterval is how long a prepared 2PC subordinate waits
	// for the outcome before (repeatedly) inquiring at the
	// coordinator.
	InquireInterval time.Duration
	// PromotionTimeout is how long a non-blocking subordinate waits
	// for protocol progress before promoting itself to coordinator.
	PromotionTimeout time.Duration
	// AckFlushInterval bounds how long delayed commit-acks wait for a
	// datagram to piggyback on before being sent in a batch of their
	// own.
	AckFlushInterval time.Duration
	// VoteRetries bounds how many times a coordinator re-solicits
	// missing phase-one votes before deciding abort (a subordinate
	// that never answers is presumed failed, and abort is always safe
	// before the commit point).
	VoteRetries int
	// RetryBackoffCap bounds the exponential backoff applied to
	// timer-driven retransmits and inquiries: retry round n waits a
	// jittered interval in [base, min(base<<n, RetryBackoffCap)],
	// where base is the timer's ordinary period (RetryInterval or
	// InquireInterval). The first round always waits exactly base, so
	// fault-free runs are unaffected. Zero means 8×RetryInterval.
	RetryBackoffCap time.Duration
	// Trace, if non-nil, receives protocol events (forces, phases,
	// lock drops) and per-transaction counters.
	Trace *trace.Collector
}

func (c *Config) fillDefaults() {
	if c.Threads <= 0 {
		c.Threads = 5
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 500 * time.Millisecond
	}
	if c.InquireInterval <= 0 {
		c.InquireInterval = time.Second
	}
	if c.PromotionTimeout <= 0 {
		c.PromotionTimeout = time.Second
	}
	if c.AckFlushInterval <= 0 {
		c.AckFlushInterval = 200 * time.Millisecond
	}
	if c.VoteRetries <= 0 {
		c.VoteRetries = 20
	}
	if c.RetryBackoffCap <= 0 {
		c.RetryBackoffCap = 8 * c.RetryInterval
	}
}

// Stats counts protocol activity.
type Stats struct {
	Begun      int
	Committed  int
	Aborted    int
	Promotions int // non-blocking subordinate → coordinator
	Inquiries  int
	// Retransmits counts datagrams re-sent by timer-driven retry
	// rounds — the traffic backoff exists to bound. Zero in any run
	// where every answer arrives before its timer fires.
	Retransmits     int
	AcksPiggybacked int
	AcksStandalone  int
	// ResolvedRetained is the number of finished families whose
	// outcome is still held in memory to answer status inquiries. It
	// grows until checkpoint truncation (TruncateResolved) folds
	// resolved outcomes into the checkpoint image — the bound on what
	// was previously an unbounded map.
	ResolvedRetained int
}

// Manager is one site's transaction manager.
//
// Concurrency follows §3.4's two-level structure (see locks.go and
// DESIGN.md §3.4): the family table is sharded with short-held shard
// locks, each family descriptor carries its own mutex serializing all
// protocol work on that family, and the manager-wide leftovers live
// behind small component locks. There is no manager-wide mutex, so
// distinct families commit in parallel on the real runtime.
type Manager struct {
	r   rt.Runtime
	cfg Config
	log *wal.Log
	net transport.Sender
	tr  *trace.Collector

	queue *rt.Queue[func()]

	// fams is the level-one table of family descriptors.
	fams *familyTable

	// idMu guards the identifier counters.
	idMu       rt.Mutex
	nextFamily uint32
	nextChild  uint32

	// ackMu guards the delayed-ack batches and the datagram sequence
	// counter (every outbound send stamps one).
	ackMu       rt.Mutex
	pendingAcks map[tid.SiteID][]tid.TID
	seq         uint64

	// resMu guards the resolved-outcome memory: the outcome of every
	// finished family. It is what lets this site answer a promoted
	// coordinator's status inquiry (or an abort-intent solicitation)
	// correctly for a transaction it has already forgotten — without
	// it, survivors of a coordinator crash could assemble an abort
	// quorum for a transaction that committed everywhere. Recovery
	// repopulates it from the log; checkpointing truncates it
	// (TruncateResolved) once the checkpoint image absorbs the
	// outcome, with resolvedBackstop answering for truncated families
	// from that image.
	resMu            rt.Mutex
	resolved         map[tid.FamilyID]wire.Outcome
	resolvedBackstop func(tid.FamilyID) wire.Outcome

	// lifeMu guards the shutdown flag.
	lifeMu rt.Mutex
	closed bool

	// stMu guards the protocol counters.
	stMu  rt.Mutex
	stats Stats
}

// phase is a family's position in its commitment protocol at this
// site.
type phase uint8

const (
	phActive      phase = iota // operations running
	phPreparing                // coordinator: waiting for votes
	phReplicating              // NB coordinator: waiting for replicate acks
	phPrepared                 // subordinate: prepared, awaiting outcome
	phReplicated               // NB subordinate: commit intent forced
	phCommitted
	phAborted
)

// family is the per-family descriptor: "the principal data structure
// is a hash table of family descriptors, each with an attached hash
// table of transaction descriptors" (§3.4). Its mutex is the second
// locking level: all protocol work on the family runs under it, and
// it is released around log forces and vote rounds exactly as the
// old global lock was (relockFamily re-checks liveness afterwards).
type family struct {
	mu rt.Mutex
	// gone marks a forgotten descriptor. Set under mu by forget; a
	// thread that re-acquires mu must re-check it before acting. The
	// table entry is unlinked by unlockFamily after mu is released.
	gone bool

	id    tid.FamilyID
	opts  Options
	ph    phase
	coord bool // this site began the family

	participants map[string]server.Participant
	txns         map[tid.TID]*txn

	// Coordinator state.
	remoteSites map[tid.SiteID]bool
	votes       map[tid.SiteID]wire.Vote
	updateSubs  map[tid.SiteID]bool
	acksPending map[tid.SiteID]bool
	result      *rt.Future[wire.Outcome]
	localVote   wire.Vote

	// Non-blocking state (both roles).
	nbSites      []tid.SiteID
	commitQuorum int
	abortQuorum  int
	nbVotes      []wire.SiteVote
	replAcks     map[tid.SiteID]bool // coordinator: who has forced intent
	replTargets  map[tid.SiteID]bool

	// Subordinate state.
	prepared bool
	outcome  wire.Outcome
	timer    rt.Timer
	nbState  wire.NBState
	attempts int // retry count in the current waiting phase
	// backoffN counts timer-driven retry rounds for backoff purposes;
	// reset with attempts when a phase makes real progress. boRng is
	// the per-family jitter source (see backoff.go), nil until the
	// first backed-off round.
	backoffN int
	boRng    *rand.Rand

	// Promotion (a subordinate acting as coordinator, §3.3 change 2).
	promoted     bool
	statusResp   map[tid.SiteID]wire.NBState
	abortIntents map[tid.SiteID]bool

	// Paxos Commit state (paxos.go). The acceptor role lives inside
	// the family descriptor — every acceptor is also a participant —
	// so it shares the family lock with the RM and leader roles.
	paxAcceptors []tid.SiteID                        // the transaction's shared acceptor set
	paxPromised  uint64                              // acceptor: highest promised ballot
	paxAcc       map[tid.SiteID]wire.PaxosAccepted   // acceptor: per-instance accepted state
	paxAccForced bool                                // acceptor: accepted record durable
	pax2b        map[tid.SiteID]bool                 // leader: acceptors confirmed this round
	pax1b        map[tid.SiteID][]wire.PaxosAccepted // takeover leader: phase-1b replies
	paxBallot    uint64                              // takeover leader: ballot being driven
	paxNack      uint64                              // highest rival ballot seen in a nack
	paxRound     uint32                              // takeover ballot round counter
	paxStage     uint8                               // takeover: 0 idle, 1 awaiting 1b, 2 awaiting 2b
	// paxAcceptorOnly marks a family descriptor created by an acceptor
	// message (2a/1a) rather than by Join: the site serves its acceptor
	// role but its volatile RM state is gone, so it must answer No to a
	// late vote request (an empty participant list would otherwise read
	// as a ReadOnly vote and commit without this site's lost updates).
	paxAcceptorOnly bool
	// paxGen counts mutations of paxAcc. The acceptor flush snapshots
	// it before releasing the family lock for the log force; if it
	// changed while the lock was free, the forced record is stale and
	// the flush re-runs instead of marking paxAccForced.
	paxGen uint64
}

// txn is one transaction within a family.
type txn struct {
	id      tid.TID
	parent  tid.TID
	sites   map[tid.SiteID]bool // remote sites this transaction touched
	aborted bool
}

// New starts a transaction manager. The caller (the site assembly)
// routes inbound *wire.Msg datagrams to Deliver.
func New(r rt.Runtime, cfg Config, log *wal.Log, net transport.Sender) *Manager {
	cfg.fillDefaults()
	m := &Manager{
		r:           r,
		cfg:         cfg,
		log:         log,
		net:         net,
		tr:          cfg.Trace,
		fams:        newFamilyTable(r),
		pendingAcks: make(map[tid.SiteID][]tid.TID),
		resolved:    make(map[tid.FamilyID]wire.Outcome),
	}
	m.idMu = r.NewMutex()
	m.ackMu = r.NewMutex()
	m.resMu = r.NewMutex()
	m.lifeMu = r.NewMutex()
	m.stMu = r.NewMutex()
	m.queue = rt.NewQueue[func()](r)
	for i := 0; i < cfg.Threads; i++ {
		m.r.Go(fmt.Sprintf("tranman%d-worker%d", cfg.Site, i), m.worker)
	}
	m.r.Go(fmt.Sprintf("tranman%d-ackflush", cfg.Site), m.ackFlusher)
	return m
}

// Deliver hands an inbound datagram to the thread pool.
func (m *Manager) Deliver(msg *wire.Msg) {
	m.queue.Put(func() { m.handle(msg) })
}

// Site returns this manager's site id.
func (m *Manager) Site() tid.SiteID { return m.cfg.Site }

// SetFamilyFloor raises the family counter so newly begun
// transactions never reuse a previous incarnation's identifiers. The
// recovery process calls it with the highest counter found in the
// log (plus a safety margin covering transactions that never logged).
func (m *Manager) SetFamilyFloor(counter uint32) {
	m.lockAttributed(m.idMu, lockClassIDs)
	defer m.idMu.Unlock()
	if counter > m.nextFamily {
		m.nextFamily = counter
	}
}

// Stats returns a snapshot of protocol counters.
func (m *Manager) Stats() Stats {
	m.lockAttributed(m.stMu, lockClassStats)
	s := m.stats
	m.stMu.Unlock()
	m.lockAttributed(m.resMu, lockClassResolved)
	s.ResolvedRetained = len(m.resolved)
	m.resMu.Unlock()
	return s
}

// QueueDepth reports requests waiting for a pool thread.
func (m *Manager) QueueDepth() int { return m.queue.Len() }

// OutcomeOf reports this site's durable knowledge of family f's fate:
// the resolved-outcome memory, falling back to the checkpoint-image
// backstop for families truncated from RAM. OutcomeUnknown means the
// site never resolved the family — under presumed abort that reads as
// abort, and it is never contradictory evidence. The chaos oracle uses
// this to assert that no two sites ever hold definite, opposite
// outcomes for the same family.
func (m *Manager) OutcomeOf(f tid.FamilyID) wire.Outcome {
	return m.resolvedOutcome(f)
}

// Close shuts the manager down as a crash would: pending work is
// abandoned and callers get ErrClosed/aborted outcomes where a thread
// is still around to deliver them.
func (m *Manager) Close() {
	m.lockAttributed(m.lifeMu, lockClassLife)
	if m.closed {
		m.lifeMu.Unlock()
		return
	}
	m.closed = true
	m.lifeMu.Unlock()
	// Sorted so the order futures wake their waiters is replay-stable.
	all := m.fams.snapshot()
	for _, id := range det.SortedKeys(all) {
		f := all[id]
		m.lockAttributed(f.mu, lockClassFamily)
		if !f.gone {
			if f.result != nil {
				// The crash leaves the outcome undetermined: a promoted
				// subordinate may yet commit this transaction. Reporting
				// abort here would be a lie the client could act on.
				f.result.Set(wire.OutcomeUnknown)
			}
			if f.timer != nil {
				f.timer.Stop()
			}
		}
		m.unlockFamily(f)
	}
	m.queue.Close()
}

// worker is one pool thread: wait for any input, process it, resume
// waiting (§3.4).
func (m *Manager) worker() {
	for {
		fn, ok := m.queue.Get()
		if !ok {
			return
		}
		m.chargeCPU()
		fn()
	}
}

func (m *Manager) chargeCPU() {
	if m.cfg.Params.TMCPU > 0 {
		m.r.Sleep(m.cfg.Params.TMCPU)
	}
}

func (m *Manager) chargeClientIPC() {
	m.tr.IPC(m.cfg.Site)
	rt.Charge(m.r, m.cfg.Kernel, m.cfg.Params.LocalIPC+m.cfg.Params.KernelCPU)
}

// --- client interface ---

// Begin allocates a new top-level transaction (Figure 1 step 2).
func (m *Manager) Begin() (tid.TID, error) {
	m.chargeClientIPC()
	fut := rt.NewFuture[tid.TID](m.r)
	m.queue.Put(func() {
		m.lockAttributed(m.idMu, lockClassIDs)
		m.nextFamily++
		f := tid.MakeFamily(m.cfg.Site, m.nextFamily)
		m.idMu.Unlock()
		t := tid.Top(f)
		fam, _ := m.lockOrCreateFamily(f) // id is fresh: always created
		fam.coord = true
		fam.txns[t] = &txn{id: t, sites: make(map[tid.SiteID]bool)}
		m.bumpStats(func(s *Stats) { s.Begun++ })
		m.unlockFamily(fam)
		fut.Set(t)
	})
	t, ok := fut.WaitTimeout(time.Minute)
	if !ok {
		return tid.TID{}, ErrClosed
	}
	return t, nil
}

// BeginChild allocates a nested transaction under parent at this
// site. Any site a family reaches may begin children.
func (m *Manager) BeginChild(parent tid.TID) (tid.TID, error) {
	m.chargeClientIPC()
	fut := rt.NewFuture[tid.TID](m.r)
	m.queue.Put(func() {
		fam := m.lockFamily(parent.Family)
		if fam == nil {
			fut.Set(tid.TID{})
			return
		}
		defer m.unlockFamily(fam)
		if fam.txns[parent] == nil {
			fut.Set(tid.TID{})
			return
		}
		m.lockAttributed(m.idMu, lockClassIDs)
		m.nextChild++
		seq := tid.MakeSeq(m.cfg.Site, m.nextChild)
		m.idMu.Unlock()
		t := tid.TID{Family: parent.Family, Seq: seq}
		fam.txns[t] = &txn{id: t, parent: parent, sites: make(map[tid.SiteID]bool)}
		fut.Set(t)
	})
	t, ok := fut.WaitTimeout(time.Minute)
	if !ok || t.IsZero() {
		if !ok {
			return tid.TID{}, ErrClosed
		}
		return tid.TID{}, fmt.Errorf("%w: parent %s", ErrUnknownTransaction, parent)
	}
	return t, nil
}

// Join registers p as a participant in t's family at this site
// (Figure 1 step 4). Data servers call it on the first operation a
// transaction performs there; at subordinate sites it also creates
// the family descriptor that the commit protocols will find.
func (m *Manager) Join(t, parent tid.TID, p server.Participant) error {
	fut := rt.NewFuture[error](m.r)
	m.queue.Put(func() {
		if m.isClosed() {
			fut.Set(ErrClosed)
			return
		}
		fam, _ := m.lockOrCreateFamily(t.Family)
		defer m.unlockFamily(fam)
		switch fam.ph {
		case phActive:
		default:
			fut.Set(fmt.Errorf("core: join after commitment began for %s", t))
			return
		}
		if fam.txns[t] == nil {
			fam.txns[t] = &txn{id: t, parent: parent, sites: make(map[tid.SiteID]bool)}
		}
		fam.participants[p.Name()] = p
		// A remote family that joins here might be orphaned: if the
		// operation's response is lost, the coordinator never learns
		// this site participates and its abort protocol will miss us.
		// The orphan timer inquires periodically; presumed abort
		// resolves a transaction the coordinator has forgotten.
		if t.Family.Origin() != m.cfg.Site && fam.timer == nil {
			m.schedule(fam, 4*m.cfg.InquireInterval)
		}
		fut.Set(nil)
	})
	err, ok := fut.WaitTimeout(time.Minute)
	if !ok {
		return ErrClosed
	}
	return err
}

// AddSites records that t spread to the given remote sites — the
// information the communication manager gleans by spying on
// response messages (§3.1).
func (m *Manager) AddSites(t tid.TID, sites []tid.SiteID) {
	fam := m.lockFamily(t.Family)
	if fam == nil {
		return
	}
	defer m.unlockFamily(fam)
	for _, s := range sites {
		if s == m.cfg.Site {
			continue
		}
		fam.remoteSites[s] = true
		if tx := fam.txns[t]; tx != nil {
			tx.sites[s] = true
		}
	}
}

// RestoreResolved repopulates the resolved-outcome memory from the
// recovery analysis.
func (m *Manager) RestoreResolved(committed, aborted []tid.FamilyID) {
	m.lockAttributed(m.resMu, lockClassResolved)
	defer m.resMu.Unlock()
	for _, f := range committed {
		m.resolved[f] = wire.OutcomeCommit
	}
	for _, f := range aborted {
		m.resolved[f] = wire.OutcomeAbort
	}
}

// SetResolvedBackstop installs a fallback consulted when a status
// inquiry names a family absent from both the family table and the
// resolved map — the case TruncateResolved creates. The site assembly
// points it at the checkpoint image's outcome lists. The backstop is
// called without any manager lock held and must be safe for
// concurrent use.
func (m *Manager) SetResolvedBackstop(fn func(tid.FamilyID) wire.Outcome) {
	m.lockAttributed(m.resMu, lockClassResolved)
	m.resolvedBackstop = fn
	m.resMu.Unlock()
}

// TruncateResolved drops the in-memory outcome of families wholly
// absorbed by a checkpoint image. Safe because the image (reachable
// through the resolved backstop) now answers for them; without this,
// resolved-outcome memory grows without bound on a long-lived site.
// Stats.ResolvedRetained observes the effect.
func (m *Manager) TruncateResolved(absorbed []tid.FamilyID) {
	m.lockAttributed(m.resMu, lockClassResolved)
	defer m.resMu.Unlock()
	for _, f := range absorbed {
		delete(m.resolved, f)
	}
}
