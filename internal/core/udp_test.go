package core_test

import (
	"sync/atomic"
	"testing"
	"time"

	"camelot/internal/core"
	"camelot/internal/params"
	"camelot/internal/rt"
	"camelot/internal/tid"
	"camelot/internal/transport"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

// atomicPart is a participant safe for the real runtime's true
// concurrency.
type atomicPart struct {
	name    string
	vote    wire.Vote
	commits atomic.Int32
	aborts  atomic.Int32
}

func (p *atomicPart) Name() string                { return p.name }
func (p *atomicPart) Vote(tid.FamilyID) wire.Vote { return p.vote }
func (p *atomicPart) CommitFamily(tid.FamilyID)   { p.commits.Add(1) }
func (p *atomicPart) AbortFamily(tid.FamilyID)    { p.aborts.Add(1) }
func (p *atomicPart) CommitChild(c, pa tid.TID)   {}
func (p *atomicPart) AbortChild(c tid.TID)        {}

// TestTwoPhaseCommitOverRealUDP runs the full presumed-abort protocol
// between two transaction managers on the real Go runtime, exchanging
// marshaled datagrams over loopback UDP — the same protocol code the
// simulation drives, on a real network.
func TestTwoPhaseCommitOverRealUDP(t *testing.T) {
	r := rt.Real()

	peer1, err := transport.NewUDPPeer(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer peer1.Close()
	peer2, err := transport.NewUDPPeer(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer peer2.Close()
	if err := peer1.AddPeer(2, peer2.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := peer2.AddPeer(1, peer1.Addr()); err != nil {
		t.Fatal(err)
	}

	mkSite := func(id tid.SiteID, peer *transport.UDPPeer) (*core.Manager, *atomicPart, *wal.Log) {
		log := wal.Open(r, wal.NewMemStore(), wal.Config{
			GroupCommit: true, FlushInterval: 5 * time.Millisecond,
		})
		m := core.New(r, core.Config{
			Site:             id,
			Threads:          4,
			Params:           params.Params{}, // no simulated charges on a real network
			RetryInterval:    50 * time.Millisecond,
			InquireInterval:  50 * time.Millisecond,
			PromotionTimeout: 100 * time.Millisecond,
			AckFlushInterval: 10 * time.Millisecond,
		}, log, peer)
		peer.SetHandler(func(d transport.Datagram) {
			if msg, ok := d.Payload.(*wire.Msg); ok {
				m.Deliver(msg)
			}
		})
		return m, &atomicPart{name: "part", vote: wire.VoteYes}, log
	}
	m1, p1, _ := mkSite(1, peer1)
	defer m1.Close()
	m2, p2, log2 := mkSite(2, peer2)
	defer m2.Close()

	// A committed distributed transaction.
	txn, err := m1.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := m1.Join(txn, tid.TID{}, p1); err != nil {
		t.Fatalf("join 1: %v", err)
	}
	if err := m2.Join(txn, tid.TID{}, p2); err != nil {
		t.Fatalf("join 2: %v", err)
	}
	m1.AddSites(txn, []tid.SiteID{2})

	out, err := m1.Commit(txn, core.Options{})
	if err != nil || out != wire.OutcomeCommit {
		t.Fatalf("Commit over UDP = %v, %v", out, err)
	}

	// The subordinate applies and its log fills in.
	deadline := time.Now().Add(5 * time.Second)
	for p2.commits.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if p2.commits.Load() != 1 {
		t.Fatalf("subordinate commits = %d, want 1", p2.commits.Load())
	}
	log2.ForceAll() //nolint:errcheck
	recs, _ := log2.Records()
	var prepares, commits int
	for _, rec := range recs {
		switch rec.Type {
		case wal.RecPrepare:
			prepares++
		case wal.RecCommit:
			commits++
		}
	}
	if prepares != 1 || commits != 1 {
		t.Fatalf("subordinate log: %d prepares, %d commits; want 1/1", prepares, commits)
	}

	// An aborted one: the remote participant votes No.
	p2.vote = wire.VoteNo
	txn2, _ := m1.Begin()
	m1.Join(txn2, tid.TID{}, p1) //nolint:errcheck
	m2.Join(txn2, tid.TID{}, p2) //nolint:errcheck
	m1.AddSites(txn2, []tid.SiteID{2})
	if _, err := m1.Commit(txn2, core.Options{}); err == nil {
		t.Fatal("commit succeeded despite a No vote over UDP")
	}
}

// TestNonBlockingCommitOverRealUDP drives the three-phase protocol
// over loopback UDP among three real-runtime managers.
func TestNonBlockingCommitOverRealUDP(t *testing.T) {
	r := rt.Real()
	peers := make(map[tid.SiteID]*transport.UDPPeer)
	for id := tid.SiteID(1); id <= 3; id++ {
		p, err := transport.NewUDPPeer(id, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		peers[id] = p
	}
	for a := tid.SiteID(1); a <= 3; a++ {
		for b := tid.SiteID(1); b <= 3; b++ {
			if a != b {
				if err := peers[a].AddPeer(b, peers[b].Addr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	mgrs := make(map[tid.SiteID]*core.Manager)
	parts := make(map[tid.SiteID]*atomicPart)
	for id := tid.SiteID(1); id <= 3; id++ {
		log := wal.Open(r, wal.NewMemStore(), wal.Config{GroupCommit: true, FlushInterval: 5 * time.Millisecond})
		m := core.New(r, core.Config{
			Site: id, Threads: 4,
			RetryInterval:    50 * time.Millisecond,
			InquireInterval:  50 * time.Millisecond,
			PromotionTimeout: 100 * time.Millisecond,
			AckFlushInterval: 10 * time.Millisecond,
		}, log, peers[id])
		peer := peers[id]
		peer.SetHandler(func(d transport.Datagram) {
			if msg, ok := d.Payload.(*wire.Msg); ok {
				m.Deliver(msg)
			}
		})
		defer m.Close()
		mgrs[id] = m
		parts[id] = &atomicPart{name: "part", vote: wire.VoteYes}
	}

	txn, err := mgrs[1].Begin()
	if err != nil {
		t.Fatal(err)
	}
	for id := tid.SiteID(1); id <= 3; id++ {
		if err := mgrs[id].Join(txn, tid.TID{}, parts[id]); err != nil {
			t.Fatalf("join %d: %v", id, err)
		}
	}
	mgrs[1].AddSites(txn, []tid.SiteID{2, 3})

	out, err := mgrs[1].Commit(txn, core.Options{NonBlocking: true})
	if err != nil || out != wire.OutcomeCommit {
		t.Fatalf("NB commit over UDP = %v, %v", out, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if parts[2].commits.Load() == 1 && parts[3].commits.Load() == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("subordinates never applied: %d, %d",
		parts[2].commits.Load(), parts[3].commits.Load())
}
