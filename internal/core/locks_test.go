package core

import (
	"testing"
	"time"

	"camelot/internal/cthreads"
	"camelot/internal/rt"
	"camelot/internal/tid"
	"camelot/internal/trace"
	"camelot/internal/transport"
	"camelot/internal/wal"
)

// newRealManager builds a manager on the ordinary Go runtime with a
// trace collector, for white-box locking tests. No site is registered
// on the network: these tests never run the distributed protocol.
func newRealManager(t *testing.T) (*Manager, *trace.Collector) {
	t.Helper()
	r := rt.Real()
	tr := trace.New(r)
	log := wal.Open(r, wal.NewMemStore(), wal.Config{FlushInterval: 5 * time.Millisecond})
	m := New(r, Config{
		Site:             1,
		Threads:          2,
		RetryInterval:    50 * time.Millisecond,
		InquireInterval:  50 * time.Millisecond,
		PromotionTimeout: 100 * time.Millisecond,
		AckFlushInterval: 10 * time.Millisecond,
		Trace:            tr,
	}, log, transport.NewNetwork(r, transport.Config{}))
	t.Cleanup(func() {
		m.Close()
		log.Close()
	})
	return m, tr
}

// TestFamilyLockContentionCounted pins the lock-wait instrumentation
// on the real runtime: a thread that finds a family lock busy counts
// one wait in the "family" class before blocking.
func TestFamilyLockContentionCounted(t *testing.T) {
	m, tr := newRealManager(t)
	top, err := m.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}

	if got := tr.LockWaitTotal(1); got != 0 {
		t.Fatalf("LockWaitTotal = %d before any contention", got)
	}

	// Hold the family's lock from the test, then make a second thread
	// collide on it.
	f := m.lockFamily(top.Family)
	if f == nil {
		t.Fatal("family descriptor missing")
	}
	done := make(chan struct{})
	go func() {
		g := m.lockFamily(top.Family)
		m.unlockFamily(g)
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for tr.LockWaitTotal(1) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	m.unlockFamily(f)
	<-done

	if got := tr.LockWaits(1)[lockClassFamily]; got == 0 {
		t.Fatalf("LockWaits[%q] = 0 after a forced collision; waits = %v",
			lockClassFamily, tr.LockWaits(1))
	}
}

// TestIndependentFamiliesDoNotContend checks the point of the §3.4
// refactor: holding one family's lock does not block work on another
// family, and no lock wait is counted.
func TestIndependentFamiliesDoNotContend(t *testing.T) {
	m, tr := newRealManager(t)
	a, err := m.Begin()
	if err != nil {
		t.Fatalf("Begin a: %v", err)
	}
	b, err := m.Begin()
	if err != nil {
		t.Fatalf("Begin b: %v", err)
	}
	if a.Family == b.Family {
		t.Fatal("distinct Begins shared a family")
	}

	fa := m.lockFamily(a.Family)
	done := make(chan struct{})
	go func() {
		fb := m.lockFamily(b.Family) // must not block on fa
		m.unlockFamily(fb)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("locking family b blocked while family a was held")
	}
	m.unlockFamily(fa)
	if got := tr.LockWaits(1)[lockClassFamily]; got != 0 {
		t.Fatalf("independent families counted %d family-lock waits", got)
	}
}

// TestLockOrderRegistersAsHierarchy keeps the documented lock order
// executable: the levels returned by LockOrder form a valid cthreads
// hierarchy, and taking them out of order panics.
func TestLockOrderRegistersAsHierarchy(t *testing.T) {
	r := rt.Real()
	order := LockOrder()
	if len(order) < 2 {
		t.Fatalf("LockOrder = %v; want at least two levels", order)
	}
	h := cthreads.NewHierarchy(r, order...)
	// Descending through the levels in order is legal.
	for _, name := range order {
		h.Acquire("walker", name)
	}
	for i := len(order) - 1; i >= 0; i-- {
		h.Release("walker", order[i])
	}
	// Acquiring a higher level while holding a lower one must panic.
	h.Acquire("violator", order[len(order)-1])
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order acquisition did not panic")
		}
	}()
	h.Acquire("violator", order[0])
}

// TestFamilyTableShardSpread guards the shard hash: consecutive
// family ids from one origin site must not all land in one shard, or
// the table degenerates back into a global lock.
func TestFamilyTableShardSpread(t *testing.T) {
	tbl := newFamilyTable(rt.Real())
	used := make(map[*familyShard]bool)
	for i := uint32(1); i <= 64; i++ {
		used[tbl.shard(tid.MakeFamily(1, i))] = true
	}
	if len(used) < familyShards/2 {
		t.Fatalf("64 consecutive families hit only %d/%d shards", len(used), familyShards)
	}
}
