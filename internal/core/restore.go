package core

import (
	"camelot/internal/server"
	"camelot/internal/tid"
	"camelot/internal/wire"
)

// Restore entry points used by the recovery process (internal/recman)
// to rebuild transaction-manager state from the log after a crash.

// RestorePreparedSub recreates a subordinate that crashed while
// prepared: it holds its (re-acquired) locks and immediately resumes
// the protocol that will resolve it — presumed-abort inquiry for
// two-phase commit, a promotion sweep for the non-blocking protocol.
func (m *Manager) RestorePreparedSub(t tid.TID, coordinator tid.SiteID, nb bool,
	sites []tid.SiteID, commitQuorum, abortQuorum int, replicated bool,
	votes []wire.SiteVote, parts []server.Participant) {

	m.queue.Put(func() {
		f, _ := m.lockOrCreateFamily(t.Family)
		defer m.unlockFamily(f)
		f.prepared = true
		f.opts.NonBlocking = nb
		for _, p := range parts {
			f.participants[p.Name()] = p
		}
		if nb {
			f.nbSites = sites
			f.commitQuorum = commitQuorum
			f.abortQuorum = abortQuorum
			f.nbVotes = votes
			if replicated {
				f.ph = phReplicated
				f.nbState = wire.NBReplicated
			} else {
				f.ph = phPrepared
				f.nbState = wire.NBPrepared
			}
			// Resume by promotion: the coordinator may be long gone.
			m.promote(f)
			return
		}
		f.ph = phPrepared
		// Two-phase commit blocks here until the coordinator answers:
		// ask immediately and keep asking.
		m.bumpStats(func(s *Stats) { s.Inquiries++ })
		m.send(coordinator, &wire.Msg{Kind: wire.KInquire, TID: tid.Top(f.id)})
		m.schedule(f, m.cfg.InquireInterval)
	})
}

// RestorePaxos recreates a Paxos Commit participant (and its
// co-hosted acceptor role, if any) that crashed without a durable
// outcome. Whether the site was the original coordinator does not
// matter — the commit point lives at the acceptors, so every restored
// site resumes as an ordinary participant: one that forced its own
// prepared record re-casts its vote and, failing progress, drives a
// takeover; one holding only acceptor state serves that role and
// inquires at the origin, where the resolved memory or presumed abort
// answers.
func (m *Manager) RestorePaxos(t tid.TID, coordinator tid.SiteID,
	sites, acceptors []tid.SiteID, promised uint64,
	accepted []wire.PaxosAccepted, accForced, prepared bool,
	parts []server.Participant) {

	m.queue.Put(func() {
		f, _ := m.lockOrCreateFamily(t.Family)
		defer m.unlockFamily(f)
		m.ensurePaxos(f)
		f.nbSites = sites
		f.paxAcceptors = acceptors
		f.paxPromised = promised
		f.paxAccForced = accForced
		for _, a := range accepted {
			f.paxAcc[a.Site] = a
		}
		for _, p := range parts {
			f.participants[p.Name()] = p
		}
		if prepared {
			f.prepared = true
			f.localVote = wire.VoteYes
			f.ph = phPrepared
		} else {
			// No vote of our own was ever durable: volatile RM state is
			// gone, so a late vote request must hear No (see
			// paxAcceptorOnly) while the acceptor role keeps answering.
			f.paxAcceptorOnly = true
			f.ph = phActive
		}
		m.schedule(f, m.cfg.InquireInterval)
	})
}

// RestoreCommittedCoordinator recreates a coordinator that crashed
// after its commit point but before every subordinate acknowledged:
// it must keep re-sending COMMIT until the remaining acks arrive,
// because "the coordinator must not forget about the transaction
// before the subordinate writes its own commit record."
func (m *Manager) RestoreCommittedCoordinator(t tid.TID, updateSubs []tid.SiteID, nb bool) {
	m.queue.Put(func() {
		f, _ := m.lockOrCreateFamily(t.Family)
		defer m.unlockFamily(f)
		f.coord = true
		f.ph = phCommitted
		f.opts.NonBlocking = nb
		if nb {
			f.nbSites = append([]tid.SiteID{m.cfg.Site}, updateSubs...)
		}
		for _, s := range updateSubs {
			f.acksPending[s] = true
			f.updateSubs[s] = true
		}
		if len(f.acksPending) == 0 {
			m.end(f)
			return
		}
		m.fanout(sortedSites(f.acksPending), m.outcomeMsg(f), false)
		m.schedule(f, m.cfg.RetryInterval)
	})
}

// RestoreNBCoordinator recreates a non-blocking coordinator that
// crashed mid-protocol (prepared or replicated, no outcome). Rather
// than guess where phase one stood, it resumes through the promotion
// path, which is safe from any state.
func (m *Manager) RestoreNBCoordinator(t tid.TID, sites []tid.SiteID,
	commitQuorum, abortQuorum int, replicated bool, votes []wire.SiteVote,
	parts []server.Participant) {

	m.queue.Put(func() {
		f, _ := m.lockOrCreateFamily(t.Family)
		defer m.unlockFamily(f)
		f.coord = true
		f.opts.NonBlocking = true
		f.nbSites = sites
		f.commitQuorum = commitQuorum
		f.abortQuorum = abortQuorum
		f.nbVotes = votes
		for _, p := range parts {
			f.participants[p.Name()] = p
		}
		if replicated {
			f.ph = phReplicated
			f.nbState = wire.NBReplicated
		} else {
			f.ph = phPrepared
			f.nbState = wire.NBPrepared
		}
		m.promote(f)
	})
}
