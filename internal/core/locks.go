package core

import (
	"camelot/internal/rt"
	"camelot/internal/server"
	"camelot/internal/tid"
	"camelot/internal/wire"
)

// This file implements the §3.4 two-level concurrency structure: "the
// principal data structure is a hash table of family descriptors,
// each with an attached hash table of transaction descriptors",
// locked so that families proceed concurrently. Level one is a
// sharded family table whose shard locks are held only for the
// pointer lookup or insert; level two is the per-family mutex that
// serializes all protocol work on one family. Manager-wide state
// (id counters, pending acks, resolved outcomes, stats, the closed
// flag) lives behind separate component locks at the bottom of the
// hierarchy.
//
// Lock ordering (see LockOrder and DESIGN.md §3.4):
//
//	table shard  →  family  →  component (acks, resolved, stats, ids, life)
//
// A shard lock is never held while acquiring a family lock — lookups
// fetch the descriptor pointer and release the shard before locking
// the family — so the shard level serializes only table membership.
// Component locks are leaves: no code acquires any other lock while
// holding one, and in particular acquiring a family lock under the
// ack or resolved lock is forbidden (enforced by the lockorder
// analyzer in internal/lint).
//
// Forgetting a family would invert the order if it deleted the table
// entry while holding the family lock; instead forget marks the
// descriptor gone under the family lock and unlockFamily removes the
// table entry after releasing it. Every reader re-checks gone after
// acquiring a family lock and retries the lookup, so a stale pointer
// is never acted on.

// Lock classes reported through trace.Collector.LockWait.
const (
	lockClassFamily   = "family"
	lockClassAcks     = "acks"
	lockClassResolved = "resolved"
	lockClassStats    = "stats"
	lockClassIDs      = "ids"
	lockClassLife     = "life"
)

// LockOrder returns the manager's lock hierarchy, outermost level
// first. Locks on the same level are never held simultaneously. The
// order is registered with cthreads.NewHierarchy in tests so the
// documented discipline stays executable.
func LockOrder() []string {
	return []string{"tranman.table-shard", "tranman.family", "tranman.component"}
}

// familyShards sizes the family table. A power of two so the shard
// index is a shift of the mixed key.
const familyShards = 16

// familyTable is the level-one hash table of family descriptors.
type familyTable struct {
	shards [familyShards]familyShard
}

type familyShard struct {
	mu       rt.Mutex
	families map[tid.FamilyID]*family
}

func newFamilyTable(r rt.Runtime) *familyTable {
	t := &familyTable{}
	for i := range t.shards {
		t.shards[i].mu = r.NewMutex()
		t.shards[i].families = make(map[tid.FamilyID]*family)
	}
	return t
}

// shard maps a family id to its shard. The multiplicative hash mixes
// the origin-site high bits and the counter low bits so families from
// one site still spread across shards.
func (t *familyTable) shard(id tid.FamilyID) *familyShard {
	return &t.shards[(uint64(id)*0x9E3779B97F4A7C15)>>(64-4)]
}

// get returns the descriptor mapped to id, or nil. The shard lock is
// released before returning; the caller must lock the family and
// re-check gone.
func (t *familyTable) get(id tid.FamilyID) *family {
	sh := t.shard(id)
	sh.mu.Lock()
	f := sh.families[id]
	sh.mu.Unlock()
	return f
}

// insert maps id to nf unless a descriptor is already present; it
// returns the winning descriptor and whether nf was installed.
func (t *familyTable) insert(id tid.FamilyID, nf *family) (*family, bool) {
	sh := t.shard(id)
	sh.mu.Lock()
	if f := sh.families[id]; f != nil {
		sh.mu.Unlock()
		return f, false
	}
	sh.families[id] = nf
	sh.mu.Unlock()
	return nf, true
}

// remove deletes id's entry if it still maps to f, so a forgotten
// descriptor never evicts a successor that reused the id.
func (t *familyTable) remove(id tid.FamilyID, f *family) {
	sh := t.shard(id)
	sh.mu.Lock()
	if sh.families[id] == f {
		delete(sh.families, id)
	}
	sh.mu.Unlock()
}

// snapshot copies the current membership of every shard.
func (t *familyTable) snapshot() map[tid.FamilyID]*family {
	out := make(map[tid.FamilyID]*family)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		//lint:ordered map copy; insertion order is unobservable
		for id, f := range sh.families {
			out[id] = f
		}
		sh.mu.Unlock()
	}
	return out
}

// lockAttributed acquires mu, counting the acquisition as a lock wait
// of the given class if it had to block. TryLock is free on the fast
// path; in simulation it always succeeds (the cooperative kernel
// never parks a lock holder), so the counters double as a runtime
// assertion of the determinism invariant.
func (m *Manager) lockAttributed(mu rt.Mutex, class string) {
	if mu.TryLock() {
		return
	}
	m.tr.LockWait(m.cfg.Site, class)
	mu.Lock()
}

// newFamily builds a level-two descriptor. It is not yet in the
// table; callers publish it through the familyTable.
func (m *Manager) newFamily(id tid.FamilyID) *family {
	fam := &family{
		id:           id,
		participants: make(map[string]server.Participant),
		txns:         make(map[tid.TID]*txn),
		remoteSites:  make(map[tid.SiteID]bool),
		votes:        make(map[tid.SiteID]wire.Vote),
		updateSubs:   make(map[tid.SiteID]bool),
		acksPending:  make(map[tid.SiteID]bool),
	}
	fam.mu = m.r.NewMutex()
	return fam
}

// lockFamily returns id's descriptor with its lock held, or nil if no
// live descriptor exists. A descriptor found gone is unlinked and the
// lookup retried, so callers never see a forgotten family.
func (m *Manager) lockFamily(id tid.FamilyID) *family {
	for {
		f := m.fams.get(id)
		if f == nil {
			return nil
		}
		m.lockAttributed(f.mu, lockClassFamily)
		if !f.gone {
			return f
		}
		f.mu.Unlock()
		m.fams.remove(id, f)
	}
}

// lockOrCreateFamily returns id's descriptor with its lock held,
// creating and publishing it if absent; created reports which.
func (m *Manager) lockOrCreateFamily(id tid.FamilyID) (f *family, created bool) {
	for {
		if f := m.fams.get(id); f != nil {
			m.lockAttributed(f.mu, lockClassFamily)
			if !f.gone {
				return f, false
			}
			f.mu.Unlock()
			m.fams.remove(id, f)
			continue
		}
		// Pre-lock before publishing so no other thread can observe
		// the descriptor half-initialized.
		nf := m.newFamily(id)
		nf.mu.Lock()
		if f, won := m.fams.insert(id, nf); !won {
			nf.mu.Unlock()
			m.lockAttributed(f.mu, lockClassFamily)
			if !f.gone {
				return f, false
			}
			f.mu.Unlock()
			m.fams.remove(id, f)
			continue
		}
		return nf, true
	}
}

// relockFamily re-acquires f's lock after a window in which it was
// released (a log force, a vote round). It returns false if the
// family was forgotten meanwhile — the old "m.families[f.id] != f"
// identity check. The lock is held on return either way, so callers
// release through unlockFamily on every path.
func (m *Manager) relockFamily(f *family) bool {
	m.lockAttributed(f.mu, lockClassFamily)
	return !f.gone
}

// unlockFamily releases f's lock and, if the family was forgotten
// while held, unlinks it from the table. The table removal happens
// after the unlock to preserve the table→family lock order.
func (m *Manager) unlockFamily(f *family) {
	gone := f.gone
	f.mu.Unlock()
	if gone {
		m.fams.remove(f.id, f)
	}
}

// forget marks the family descriptor dead — permitted only once every
// site has learned the outcome (§3.3 change 4 for non-blocking; after
// the last commit-ack for two-phase) — while retaining the final
// outcome in the resolved memory. The caller holds f's lock; the
// table entry disappears when that lock is released.
func (m *Manager) forget(f *family) {
	if f.timer != nil {
		f.timer.Stop()
	}
	switch f.ph {
	case phCommitted:
		m.setResolved(f.id, wire.OutcomeCommit)
	case phAborted:
		m.setResolved(f.id, wire.OutcomeAbort)
	}
	f.gone = true
}

// --- component-lock accessors ---

// isClosed reads the shutdown flag.
func (m *Manager) isClosed() bool {
	m.lockAttributed(m.lifeMu, lockClassLife)
	closed := m.closed
	m.lifeMu.Unlock()
	return closed
}

// bumpStats applies one mutation to the protocol counters.
func (m *Manager) bumpStats(fn func(*Stats)) {
	m.lockAttributed(m.stMu, lockClassStats)
	fn(&m.stats)
	m.stMu.Unlock()
}

// setResolved records a finished family's outcome.
func (m *Manager) setResolved(id tid.FamilyID, out wire.Outcome) {
	m.lockAttributed(m.resMu, lockClassResolved)
	m.resolved[id] = out
	m.resMu.Unlock()
}

// resolvedOutcome answers "what happened to this forgotten family?"
// from the in-memory resolved map, falling back to the checkpoint-
// image backstop for families truncated from it (see
// TruncateResolved). OutcomeUnknown means this site never resolved
// the family — under presumed abort the caller treats that as abort.
func (m *Manager) resolvedOutcome(id tid.FamilyID) wire.Outcome {
	m.lockAttributed(m.resMu, lockClassResolved)
	out, ok := m.resolved[id]
	backstop := m.resolvedBackstop
	m.resMu.Unlock()
	if ok {
		return out
	}
	if backstop != nil {
		return backstop(id)
	}
	return wire.OutcomeUnknown
}
