package core

import (
	"sort"

	"camelot/internal/tid"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

// This file implements the non-blocking commitment protocol of §3.3:
// three phases (prepare, replicate, notify), two log forces per site,
// five messages on the critical path of a one-subordinate update.
// The five changes to two-phase commit are marked where implemented.

// nbBeginCommitLocked starts non-blocking commitment at the
// coordinator. Change 5: the coordinator prepares — forces its own
// prepare record — before sending the prepare message.
func (m *Manager) nbBeginCommitLocked(f *family) {
	sites := append([]tid.SiteID{m.cfg.Site}, sortedSites(f.remoteSites)...)
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	f.nbSites = sites
	// Quorum sizes satisfy Skeen's condition Qc + Qa > N, weighted
	// toward abort availability: commit needs a majority of intent
	// records, while the complementary abort quorum lets the largest
	// surviving minority that excludes commit still finish. With two
	// sites this means Qc=2, Qa=1 — a lone prepared subordinate can
	// abort after its coordinator dies.
	f.commitQuorum = len(sites)/2 + 1
	f.abortQuorum = len(sites) - f.commitQuorum + 1
	f.votes[m.cfg.Site] = f.localVote
	f.replAcks = make(map[tid.SiteID]bool)
	f.replTargets = make(map[tid.SiteID]bool)

	if f.localVote == wire.VoteYes {
		rec := &wal.Record{
			Type:         wal.RecPrepare,
			TID:          tid.Top(f.id),
			Coordinator:  m.cfg.Site,
			Sites:        sites,
			CommitQuorum: uint16(f.commitQuorum),
			AbortQuorum:  uint16(f.abortQuorum),
		}
		m.mu.Unlock()
		lsn, err := m.log.Append(rec)
		if err == nil {
			err = m.log.Force(lsn) // coordinator force #1
			m.tr.LogForce(m.cfg.Site, rec.TID, rec.Type.String())
		}
		m.mu.Lock()
		if m.families[f.id] != f {
			return
		}
		if err != nil {
			m.abortFamilyLocked(f)
			return
		}
	}
	f.ph = phPreparing
	m.tr.PhaseBegin(m.cfg.Site, tid.Top(f.id), "prepare")
	// Change 1: the prepare message carries the site list and the
	// quorum sizes for the replication phase.
	m.fanoutLocked(sortedSites(f.remoteSites), m.prepareMsgLocked(f), f.opts.Multicast)
	m.scheduleLocked(f, m.cfg.RetryInterval)
}

// onNBVote collects phase-one votes at the coordinator.
func (m *Manager) onNBVote(msg *wire.Msg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.families[msg.TID.Family]
	if f == nil || !f.coord || f.ph != phPreparing || !f.opts.NonBlocking {
		return
	}
	f.votes[msg.From] = msg.Vote
	if msg.Vote == wire.VoteNo {
		m.nbDecideAbortLocked(f)
		return
	}
	//lint:ordered pure membership test; no effect depends on visit order
	for s := range f.remoteSites {
		if _, ok := f.votes[s]; !ok {
			return
		}
	}
	m.nbBeginReplicationLocked(f)
}

// nbBeginReplicationLocked runs the replication phase (change 3): the
// coordinator forces the collected decision information locally and
// replicates it at enough subordinates to form a commit quorum.
// Read-only sites "often need not participate": they are enlisted
// only if the update sites alone cannot reach the quorum.
func (m *Manager) nbBeginReplicationLocked(f *family) {
	m.tr.PhaseEnd(m.cfg.Site, tid.Top(f.id), "prepare")
	allReadOnly := f.localVote == wire.VoteReadOnly
	f.nbVotes = f.nbVotes[:0]
	for _, s := range f.nbSites {
		v := f.votes[s]
		f.nbVotes = append(f.nbVotes, wire.SiteVote{Site: s, Vote: v})
		if s != m.cfg.Site && v == wire.VoteYes {
			f.updateSubs[s] = true
			allReadOnly = false
		}
	}
	if allReadOnly && !f.opts.DisableReadOnlyOpt {
		// Completely read-only: same critical path as two-phase
		// commit — no replication or notify phase, no log writes.
		f.ph = phCommitted
		m.stats.Committed++
		f.result.Set(wire.OutcomeCommit)
		m.releaseLocalLocked(f, true)
		m.forgetLocked(f)
		return
	}

	// Pick replication targets: update subordinates first, read-only
	// subordinates only as quorum filler.
	//lint:ordered set copy; insertion order is unobservable
	for s := range f.updateSubs {
		f.replTargets[s] = true
	}
	for _, s := range f.nbSites {
		if len(f.replTargets)+1 >= f.commitQuorum { // +1: the coordinator's own record
			break
		}
		if s != m.cfg.Site && !f.replTargets[s] {
			f.replTargets[s] = true
		}
	}

	rec := &wal.Record{
		Type:         wal.RecNBReplicate,
		TID:          tid.Top(f.id),
		Coordinator:  m.cfg.Site,
		Sites:        f.nbSites,
		CommitQuorum: uint16(f.commitQuorum),
		AbortQuorum:  uint16(f.abortQuorum),
		Votes:        f.nbVotes,
	}
	m.mu.Unlock()
	lsn, err := m.log.Append(rec)
	if err == nil {
		err = m.log.Force(lsn) // coordinator force #2
		m.tr.LogForce(m.cfg.Site, rec.TID, rec.Type.String())
	}
	m.mu.Lock()
	if m.families[f.id] != f {
		return
	}
	if err != nil {
		m.nbDecideAbortLocked(f)
		return
	}
	f.nbState = wire.NBReplicated
	f.replAcks[m.cfg.Site] = true
	f.ph = phReplicating
	f.attempts = 0
	m.tr.PhaseBegin(m.cfg.Site, tid.Top(f.id), "replicate")
	m.fanoutLocked(sortedSites(f.replTargets), m.replicateMsgLocked(f), f.opts.Multicast)
	m.scheduleLocked(f, m.cfg.RetryInterval)
	m.nbCheckCommitQuorumLocked(f)
}

// onNBReplicateAck counts replication-phase acknowledgements.
func (m *Manager) onNBReplicateAck(msg *wire.Msg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.families[msg.TID.Family]
	if f == nil || f.ph != phReplicating {
		return
	}
	f.replAcks[msg.From] = true
	m.nbCheckCommitQuorumLocked(f)
}

// nbCheckCommitQuorumLocked commits once the replicated information
// excludes abort: "the atomic action that marks the commitment point
// of the protocol is the writing of a log record that forms a commit
// quorum."
func (m *Manager) nbCheckCommitQuorumLocked(f *family) {
	if f.ph != phReplicating || len(f.replAcks) < f.commitQuorum {
		return
	}
	f.ph = phCommitted
	m.stats.Committed++
	m.tr.PhaseEnd(m.cfg.Site, tid.Top(f.id), "replicate")
	// The outcome is now decided; the local commit record may be lazy
	// because any recovery can reconstruct the decision from the
	// replicated quorum.
	m.log.Append(&wal.Record{Type: wal.RecCommit, TID: tid.Top(f.id)}) //nolint:errcheck // lazy by design
	if f.result != nil {
		f.result.Set(wire.OutcomeCommit)
	}
	// Notify phase. Read-only sites that were not replication targets
	// have already released and forgotten.
	//lint:ordered set union; insertion order is unobservable
	for s := range f.updateSubs {
		f.acksPending[s] = true
	}
	//lint:ordered set union; insertion order is unobservable
	for s := range f.replTargets {
		f.acksPending[s] = true
	}
	if len(f.acksPending) > 0 {
		m.tr.PhaseBegin(m.cfg.Site, tid.Top(f.id), "notify")
	}
	m.fanoutLocked(sortedSites(f.acksPending), m.outcomeMsgLocked(f), f.opts.Multicast)
	m.releaseLocalLocked(f, true)
	if len(f.acksPending) == 0 {
		m.endLocked(f)
		return
	}
	m.scheduleLocked(f, m.cfg.RetryInterval)
}

// nbDecideAbortLocked aborts before any commit quorum can exist (a No
// vote or a failed force): no site can hold a replicated commit
// intent, so notifying abort is safe.
func (m *Manager) nbDecideAbortLocked(f *family) {
	f.ph = phAborted
	m.stats.Aborted++
	m.tr.PhaseEnd(m.cfg.Site, tid.Top(f.id), "prepare")
	m.tr.PhaseEnd(m.cfg.Site, tid.Top(f.id), "replicate")
	m.log.Append(&wal.Record{Type: wal.RecAbort, TID: tid.Top(f.id)}) //nolint:errcheck // lazy
	if f.result != nil {
		f.result.Set(wire.OutcomeAbort)
	}
	//lint:ordered set construction; insertion order is unobservable
	for s := range f.remoteSites {
		if v, ok := f.votes[s]; ok && (v == wire.VoteNo || v == wire.VoteReadOnly) {
			continue
		}
		f.acksPending[s] = true
	}
	m.fanoutLocked(sortedSites(f.acksPending), m.outcomeMsgLocked(f), f.opts.Multicast)
	m.releaseLocalLocked(f, false)
	// Change 4: even for abort, no transaction manager forgets until
	// every site has the outcome.
	if len(f.acksPending) == 0 {
		m.endLocked(f)
		return
	}
	m.scheduleLocked(f, m.cfg.RetryInterval)
}

// --- subordinate side ---

// onNBPrepare handles phase one at a non-blocking subordinate.
func (m *Manager) onNBPrepare(msg *wire.Msg) {
	m.mu.Lock()
	f := m.families[msg.TID.Family]
	if f == nil {
		m.sendLocked(msg.From, &wire.Msg{Kind: wire.KNBVote, TID: msg.TID, Vote: wire.VoteNo})
		m.mu.Unlock()
		return
	}
	if f.ph == phPrepared || f.ph == phReplicated {
		m.sendLocked(msg.From, &wire.Msg{Kind: wire.KNBVote, TID: msg.TID, Vote: wire.VoteYes})
		m.mu.Unlock()
		return
	}
	if f.ph != phActive {
		m.mu.Unlock()
		return
	}
	f.opts = optionsFromFlags(msg.Flags)
	f.opts.NonBlocking = true
	f.nbSites = msg.Sites
	f.commitQuorum = int(msg.CommitQuorum)
	f.abortQuorum = int(msg.AbortQuorum)
	parts := m.participantsLocked(f)
	m.mu.Unlock()

	vote := m.voteRound(parts, f.opts)
	switch vote {
	case wire.VoteNo:
		m.mu.Lock()
		m.sendLocked(msg.From, &wire.Msg{Kind: wire.KNBVote, TID: msg.TID, Vote: wire.VoteNo})
		m.localAbortLocked(f)
		m.mu.Unlock()
	case wire.VoteReadOnly:
		// "A read-only subordinate typically writes no log records
		// and exchanges only one round of messages."
		m.mu.Lock()
		m.sendLocked(msg.From, &wire.Msg{Kind: wire.KNBVote, TID: msg.TID, Vote: wire.VoteReadOnly})
		f.ph = phCommitted
		m.releaseLocalLocked(f, true)
		m.forgetLocked(f)
		m.mu.Unlock()
	default:
		rec := &wal.Record{
			Type:         wal.RecPrepare,
			TID:          msg.TID,
			Coordinator:  msg.From,
			Sites:        msg.Sites,
			CommitQuorum: msg.CommitQuorum,
			AbortQuorum:  msg.AbortQuorum,
		}
		lsn, err := m.log.Append(rec)
		if err == nil {
			err = m.log.Force(lsn) // subordinate force #1
			m.tr.LogForce(m.cfg.Site, rec.TID, rec.Type.String())
		}
		m.mu.Lock()
		if m.families[f.id] != f {
			m.mu.Unlock()
			return
		}
		if err != nil {
			m.sendLocked(msg.From, &wire.Msg{Kind: wire.KNBVote, TID: msg.TID, Vote: wire.VoteNo})
			m.localAbortLocked(f)
			m.mu.Unlock()
			return
		}
		f.ph = phPrepared
		f.prepared = true
		f.nbState = wire.NBPrepared
		m.tr.PhaseBegin(m.cfg.Site, msg.TID, "prepared")
		m.sendLocked(msg.From, &wire.Msg{Kind: wire.KNBVote, TID: msg.TID, Vote: wire.VoteYes})
		// Change 2: do not wait forever — time out and take over.
		m.scheduleLocked(f, m.cfg.PromotionTimeout)
		m.mu.Unlock()
	}
}

// onNBReplicate handles the replication phase at a subordinate: force
// the decision information, just as a prepare record is forced.
func (m *Manager) onNBReplicate(msg *wire.Msg) {
	m.mu.Lock()
	f := m.families[msg.TID.Family]
	if f == nil {
		// A read-only site enlisted as quorum filler (it voted
		// read-only and forgot, or never joined): record the intent
		// anyway — it holds no locks but its log strengthens the
		// quorum.
		f = m.newFamilyLocked(msg.TID.Family)
		f.opts.NonBlocking = true
	}
	if f.nbState == wire.NBAbortIntent {
		// Change 4: a site may not join both quorums.
		m.sendLocked(msg.From, &wire.Msg{Kind: wire.KNBStatusResp, TID: msg.TID, State: f.nbState})
		m.mu.Unlock()
		return
	}
	if f.nbState == wire.NBReplicated || f.ph == phReplicated {
		m.sendLocked(msg.From, &wire.Msg{Kind: wire.KNBReplicateAck, TID: msg.TID})
		m.mu.Unlock()
		return
	}
	f.nbSites = msg.Sites
	f.commitQuorum = int(msg.CommitQuorum)
	f.abortQuorum = int(msg.AbortQuorum)
	f.nbVotes = msg.Votes
	rec := &wal.Record{
		Type:         wal.RecNBReplicate,
		TID:          msg.TID,
		Coordinator:  msg.From,
		Sites:        msg.Sites,
		CommitQuorum: msg.CommitQuorum,
		AbortQuorum:  msg.AbortQuorum,
		Votes:        msg.Votes,
	}
	m.mu.Unlock()
	lsn, err := m.log.Append(rec)
	if err == nil {
		err = m.log.Force(lsn) // subordinate force #2
		m.tr.LogForce(m.cfg.Site, rec.TID, rec.Type.String())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.families[f.id] != f || err != nil {
		return
	}
	f.ph = phReplicated
	f.nbState = wire.NBReplicated
	m.sendLocked(msg.From, &wire.Msg{Kind: wire.KNBReplicateAck, TID: msg.TID})
	m.scheduleLocked(f, m.cfg.PromotionTimeout)
}

// onNBOutcome applies the notify-phase decision at a subordinate (or
// at a tardy original coordinator when a promoted subordinate decided
// first — "having several simultaneous coordinators is possible, but
// is not a problem").
func (m *Manager) onNBOutcome(msg *wire.Msg) {
	commit := msg.Outcome == wire.OutcomeCommit
	m.mu.Lock()
	f := m.families[msg.TID.Family]
	if f == nil {
		// Already resolved; re-acknowledge so the sender can forget.
		m.sendLocked(msg.From, &wire.Msg{Kind: wire.KNBOutcomeAck, TID: msg.TID})
		m.mu.Unlock()
		return
	}
	if f.ph == phCommitted || f.ph == phAborted {
		m.sendLocked(msg.From, &wire.Msg{Kind: wire.KNBOutcomeAck, TID: msg.TID})
		m.mu.Unlock()
		return
	}
	parts := m.participantsLocked(f)
	m.tr.PhaseEnd(m.cfg.Site, msg.TID, "prepared")
	if commit {
		f.ph = phCommitted
	} else {
		f.ph = phAborted
		m.stats.Aborted++
	}
	if f.result != nil {
		// We were a coordinator (original or promoted) with a waiting
		// client.
		if commit {
			f.result.Set(wire.OutcomeCommit)
		} else {
			f.result.Set(wire.OutcomeAbort)
		}
	}
	recType := wal.RecCommit
	if !commit {
		recType = wal.RecAbort
	}
	m.log.Append(&wal.Record{Type: recType, TID: msg.TID}) //nolint:errcheck // lazy
	m.sendLocked(msg.From, &wire.Msg{Kind: wire.KNBOutcomeAck, TID: msg.TID})
	m.forgetLocked(f)
	m.mu.Unlock()
	m.applyLocal(parts, msg.TID.Family, commit)
}

// onNBOutcomeAck drains the notify phase at whichever coordinator is
// driving it.
func (m *Manager) onNBOutcomeAck(msg *wire.Msg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.families[msg.TID.Family]
	if f == nil || (f.ph != phCommitted && f.ph != phAborted) {
		return
	}
	delete(f.acksPending, msg.From)
	if len(f.acksPending) == 0 {
		m.endLocked(f)
	}
}
