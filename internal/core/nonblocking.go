package core

import (
	"sort"

	"camelot/internal/tid"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

// This file implements the non-blocking commitment protocol of §3.3:
// three phases (prepare, replicate, notify), two log forces per site,
// five messages on the critical path of a one-subordinate update.
// The five changes to two-phase commit are marked where implemented.

// nbBeginCommit starts non-blocking commitment at the coordinator.
// Change 5: the coordinator prepares — forces its own prepare record
// — before sending the prepare message. Called and returns with f's
// lock held; the lock is released around the force.
func (m *Manager) nbBeginCommit(f *family) {
	sites := append([]tid.SiteID{m.cfg.Site}, sortedSites(f.remoteSites)...)
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	f.nbSites = sites
	// Quorum sizes satisfy Skeen's condition Qc + Qa > N, weighted
	// toward abort availability: commit needs a majority of intent
	// records, while the complementary abort quorum lets the largest
	// surviving minority that excludes commit still finish. With two
	// sites this means Qc=2, Qa=1 — a lone prepared subordinate can
	// abort after its coordinator dies.
	f.commitQuorum = len(sites)/2 + 1
	f.abortQuorum = len(sites) - f.commitQuorum + 1
	f.votes[m.cfg.Site] = f.localVote
	f.replAcks = make(map[tid.SiteID]bool)
	f.replTargets = make(map[tid.SiteID]bool)

	if f.localVote == wire.VoteYes {
		rec := &wal.Record{
			Type:         wal.RecPrepare,
			TID:          tid.Top(f.id),
			Coordinator:  m.cfg.Site,
			Sites:        sites,
			CommitQuorum: uint16(f.commitQuorum),
			AbortQuorum:  uint16(f.abortQuorum),
		}
		m.unlockFamily(f)
		lsn, err := m.log.Append(rec)
		if err == nil {
			err = m.log.Force(lsn) // coordinator force #1
			m.tr.LogForce(m.cfg.Site, rec.TID, rec.Type.String())
		}
		if !m.relockFamily(f) {
			return
		}
		if err != nil {
			// Fail-stopped log, site going down. If the prepare record
			// is durable, recovery resumes this coordinator and the
			// still-live subordinates may vote yes and commit — so the
			// outcome is undetermined, not abort. Leave the family
			// unresolved; Close reports it undetermined.
			return
		}
	}
	f.ph = phPreparing
	m.tr.PhaseBegin(m.cfg.Site, tid.Top(f.id), "prepare")
	// Change 1: the prepare message carries the site list and the
	// quorum sizes for the replication phase.
	m.fanout(sortedSites(f.remoteSites), m.prepareMsg(f), f.opts.Multicast)
	m.schedule(f, m.cfg.RetryInterval)
}

// onNBVote collects phase-one votes at the coordinator.
func (m *Manager) onNBVote(msg *wire.Msg) {
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		return
	}
	defer m.unlockFamily(f)
	if !f.coord || f.ph != phPreparing || !f.opts.NonBlocking {
		return
	}
	f.votes[msg.From] = msg.Vote
	if msg.Vote == wire.VoteNo {
		m.nbDecideAbort(f)
		return
	}
	//lint:ordered pure membership test; no effect depends on visit order
	for s := range f.remoteSites {
		if _, ok := f.votes[s]; !ok {
			return
		}
	}
	m.nbBeginReplication(f)
}

// nbBeginReplication runs the replication phase (change 3): the
// coordinator forces the collected decision information locally and
// replicates it at enough subordinates to form a commit quorum.
// Read-only sites "often need not participate": they are enlisted
// only if the update sites alone cannot reach the quorum. Called and
// returns with f's lock held.
func (m *Manager) nbBeginReplication(f *family) {
	m.tr.PhaseEnd(m.cfg.Site, tid.Top(f.id), "prepare")
	allReadOnly := f.localVote == wire.VoteReadOnly
	f.nbVotes = f.nbVotes[:0]
	for _, s := range f.nbSites {
		v := f.votes[s]
		f.nbVotes = append(f.nbVotes, wire.SiteVote{Site: s, Vote: v})
		if s != m.cfg.Site && v == wire.VoteYes {
			f.updateSubs[s] = true
			allReadOnly = false
		}
	}
	if allReadOnly && !f.opts.DisableReadOnlyOpt {
		// Completely read-only: same critical path as two-phase
		// commit — no replication or notify phase, no log writes.
		f.ph = phCommitted
		m.bumpStats(func(s *Stats) { s.Committed++ })
		f.result.Set(wire.OutcomeCommit)
		m.releaseLocal(f, true)
		m.forget(f)
		return
	}

	// Pick replication targets: update subordinates first, read-only
	// subordinates only as quorum filler.
	//lint:ordered set copy; insertion order is unobservable
	for s := range f.updateSubs {
		f.replTargets[s] = true
	}
	for _, s := range f.nbSites {
		if len(f.replTargets)+1 >= f.commitQuorum { // +1: the coordinator's own record
			break
		}
		if s != m.cfg.Site && !f.replTargets[s] {
			f.replTargets[s] = true
		}
	}

	rec := &wal.Record{
		Type:         wal.RecNBReplicate,
		TID:          tid.Top(f.id),
		Coordinator:  m.cfg.Site,
		Sites:        f.nbSites,
		CommitQuorum: uint16(f.commitQuorum),
		AbortQuorum:  uint16(f.abortQuorum),
		Votes:        f.nbVotes,
	}
	m.unlockFamily(f)
	lsn, err := m.log.Append(rec)
	if err == nil {
		err = m.log.Force(lsn) // coordinator force #2
		m.tr.LogForce(m.cfg.Site, rec.TID, rec.Type.String())
	}
	if !m.relockFamily(f) {
		return
	}
	if err != nil {
		// Fail-stopped log, site going down. A durable replication
		// record commits this transaction at recovery, so deciding
		// abort here would contradict it. Leave the family unresolved.
		return
	}
	f.nbState = wire.NBReplicated
	f.replAcks[m.cfg.Site] = true
	f.ph = phReplicating
	f.attempts, f.backoffN = 0, 0
	m.tr.PhaseBegin(m.cfg.Site, tid.Top(f.id), "replicate")
	m.fanout(sortedSites(f.replTargets), m.replicateMsg(f), f.opts.Multicast)
	m.schedule(f, m.cfg.RetryInterval)
	m.nbCheckCommitQuorum(f)
}

// onNBReplicateAck counts replication-phase acknowledgements.
func (m *Manager) onNBReplicateAck(msg *wire.Msg) {
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		return
	}
	defer m.unlockFamily(f)
	if f.ph != phReplicating {
		return
	}
	f.replAcks[msg.From] = true
	m.nbCheckCommitQuorum(f)
}

// nbCheckCommitQuorum commits once the replicated information
// excludes abort: "the atomic action that marks the commitment point
// of the protocol is the writing of a log record that forms a commit
// quorum." Called with f's lock held.
func (m *Manager) nbCheckCommitQuorum(f *family) {
	if f.ph != phReplicating || len(f.replAcks) < f.commitQuorum {
		return
	}
	f.ph = phCommitted
	m.bumpStats(func(s *Stats) { s.Committed++ })
	m.tr.PhaseEnd(m.cfg.Site, tid.Top(f.id), "replicate")
	// The outcome is now decided; the local commit record may be lazy
	// because any recovery can reconstruct the decision from the
	// replicated quorum.
	m.log.Append(&wal.Record{Type: wal.RecCommit, TID: tid.Top(f.id)}) //nolint:errcheck // lazy by design
	if f.result != nil {
		f.result.Set(wire.OutcomeCommit)
	}
	// Notify phase. Read-only sites that were not replication targets
	// have already released and forgotten.
	//lint:ordered set union; insertion order is unobservable
	for s := range f.updateSubs {
		f.acksPending[s] = true
	}
	//lint:ordered set union; insertion order is unobservable
	for s := range f.replTargets {
		f.acksPending[s] = true
	}
	if len(f.acksPending) > 0 {
		m.tr.PhaseBegin(m.cfg.Site, tid.Top(f.id), "notify")
	}
	m.fanout(sortedSites(f.acksPending), m.outcomeMsg(f), f.opts.Multicast)
	m.releaseLocal(f, true)
	if len(f.acksPending) == 0 {
		m.end(f)
		return
	}
	m.schedule(f, m.cfg.RetryInterval)
}

// nbDecideAbort aborts before any commit quorum can exist (a No vote
// or a failed force): no site can hold a replicated commit intent, so
// notifying abort is safe. Called with f's lock held.
func (m *Manager) nbDecideAbort(f *family) {
	f.ph = phAborted
	m.bumpStats(func(s *Stats) { s.Aborted++ })
	m.tr.PhaseEnd(m.cfg.Site, tid.Top(f.id), "prepare")
	m.tr.PhaseEnd(m.cfg.Site, tid.Top(f.id), "replicate")
	m.log.Append(&wal.Record{Type: wal.RecAbort, TID: tid.Top(f.id)}) //nolint:errcheck // lazy
	if f.result != nil {
		f.result.Set(wire.OutcomeAbort)
	}
	//lint:ordered set construction; insertion order is unobservable
	for s := range f.remoteSites {
		if v, ok := f.votes[s]; ok && (v == wire.VoteNo || v == wire.VoteReadOnly) {
			continue
		}
		f.acksPending[s] = true
	}
	m.fanout(sortedSites(f.acksPending), m.outcomeMsg(f), f.opts.Multicast)
	m.releaseLocal(f, false)
	// Change 4: even for abort, no transaction manager forgets until
	// every site has the outcome.
	if len(f.acksPending) == 0 {
		m.end(f)
		return
	}
	m.schedule(f, m.cfg.RetryInterval)
}

// --- subordinate side ---

// onNBPrepare handles phase one at a non-blocking subordinate.
func (m *Manager) onNBPrepare(msg *wire.Msg) {
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		m.send(msg.From, &wire.Msg{Kind: wire.KNBVote, TID: msg.TID, Vote: wire.VoteNo})
		return
	}
	if f.ph == phPrepared || f.ph == phReplicated {
		m.send(msg.From, &wire.Msg{Kind: wire.KNBVote, TID: msg.TID, Vote: wire.VoteYes})
		m.unlockFamily(f)
		return
	}
	if f.ph != phActive {
		m.unlockFamily(f)
		return
	}
	f.opts = optionsFromFlags(msg.Flags)
	f.opts.NonBlocking = true
	f.nbSites = msg.Sites
	f.commitQuorum = int(msg.CommitQuorum)
	f.abortQuorum = int(msg.AbortQuorum)
	parts := m.participants(f)
	m.unlockFamily(f)

	vote := m.voteRound(parts, f.opts)
	switch vote {
	case wire.VoteNo:
		m.relockFamily(f) // stale descriptors still answer (as before the refactor)
		m.send(msg.From, &wire.Msg{Kind: wire.KNBVote, TID: msg.TID, Vote: wire.VoteNo})
		m.localAbort(f)
		m.unlockFamily(f)
	case wire.VoteReadOnly:
		// "A read-only subordinate typically writes no log records
		// and exchanges only one round of messages."
		m.relockFamily(f)
		m.send(msg.From, &wire.Msg{Kind: wire.KNBVote, TID: msg.TID, Vote: wire.VoteReadOnly})
		f.ph = phCommitted
		m.releaseLocal(f, true)
		m.forget(f)
		m.unlockFamily(f)
	case wire.VoteYes:
		rec := &wal.Record{
			Type:         wal.RecPrepare,
			TID:          msg.TID,
			Coordinator:  msg.From,
			Sites:        msg.Sites,
			CommitQuorum: msg.CommitQuorum,
			AbortQuorum:  msg.AbortQuorum,
		}
		lsn, err := m.log.Append(rec)
		if err == nil {
			err = m.log.Force(lsn) // subordinate force #1
			m.tr.LogForce(m.cfg.Site, rec.TID, rec.Type.String())
		}
		if !m.relockFamily(f) {
			m.unlockFamily(f)
			return
		}
		if err != nil {
			m.send(msg.From, &wire.Msg{Kind: wire.KNBVote, TID: msg.TID, Vote: wire.VoteNo})
			m.localAbort(f)
			m.unlockFamily(f)
			return
		}
		f.ph = phPrepared
		f.prepared = true
		f.nbState = wire.NBPrepared
		m.tr.PhaseBegin(m.cfg.Site, msg.TID, "prepared")
		m.send(msg.From, &wire.Msg{Kind: wire.KNBVote, TID: msg.TID, Vote: wire.VoteYes})
		// Change 2: do not wait forever — time out and take over.
		m.schedule(f, m.cfg.PromotionTimeout)
		m.unlockFamily(f)
	}
}

// onNBReplicate handles the replication phase at a subordinate: force
// the decision information, just as a prepare record is forced.
func (m *Manager) onNBReplicate(msg *wire.Msg) {
	f, created := m.lockOrCreateFamily(msg.TID.Family)
	if created {
		// A read-only site enlisted as quorum filler (it voted
		// read-only and forgot, or never joined): record the intent
		// anyway — it holds no locks but its log strengthens the
		// quorum.
		f.opts.NonBlocking = true
	}
	if f.nbState == wire.NBAbortIntent {
		// Change 4: a site may not join both quorums.
		m.send(msg.From, &wire.Msg{Kind: wire.KNBStatusResp, TID: msg.TID, State: f.nbState})
		m.unlockFamily(f)
		return
	}
	if f.nbState == wire.NBReplicated || f.ph == phReplicated {
		m.send(msg.From, &wire.Msg{Kind: wire.KNBReplicateAck, TID: msg.TID})
		m.unlockFamily(f)
		return
	}
	f.nbSites = msg.Sites
	f.commitQuorum = int(msg.CommitQuorum)
	f.abortQuorum = int(msg.AbortQuorum)
	f.nbVotes = msg.Votes
	rec := &wal.Record{
		Type:         wal.RecNBReplicate,
		TID:          msg.TID,
		Coordinator:  msg.From,
		Sites:        msg.Sites,
		CommitQuorum: msg.CommitQuorum,
		AbortQuorum:  msg.AbortQuorum,
		Votes:        msg.Votes,
	}
	m.unlockFamily(f)
	lsn, err := m.log.Append(rec)
	if err == nil {
		err = m.log.Force(lsn) // subordinate force #2
		m.tr.LogForce(m.cfg.Site, rec.TID, rec.Type.String())
	}
	live := m.relockFamily(f)
	defer m.unlockFamily(f)
	if !live || err != nil {
		return
	}
	f.ph = phReplicated
	f.nbState = wire.NBReplicated
	m.send(msg.From, &wire.Msg{Kind: wire.KNBReplicateAck, TID: msg.TID})
	m.schedule(f, m.cfg.PromotionTimeout)
}

// onNBOutcome applies the notify-phase decision at a subordinate (or
// at a tardy original coordinator when a promoted subordinate decided
// first — "having several simultaneous coordinators is possible, but
// is not a problem").
func (m *Manager) onNBOutcome(msg *wire.Msg) {
	commit := msg.Outcome == wire.OutcomeCommit
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		// Already resolved; re-acknowledge so the sender can forget.
		m.send(msg.From, &wire.Msg{Kind: wire.KNBOutcomeAck, TID: msg.TID})
		return
	}
	if f.ph == phCommitted || f.ph == phAborted {
		m.send(msg.From, &wire.Msg{Kind: wire.KNBOutcomeAck, TID: msg.TID})
		m.unlockFamily(f)
		return
	}
	parts := m.participants(f)
	m.tr.PhaseEnd(m.cfg.Site, msg.TID, "prepared")
	if commit {
		f.ph = phCommitted
	} else {
		f.ph = phAborted
		m.bumpStats(func(s *Stats) { s.Aborted++ })
	}
	if f.result != nil {
		// We were a coordinator (original or promoted) with a waiting
		// client.
		if commit {
			f.result.Set(wire.OutcomeCommit)
		} else {
			f.result.Set(wire.OutcomeAbort)
		}
	}
	recType := wal.RecCommit
	if !commit {
		recType = wal.RecAbort
	}
	m.log.Append(&wal.Record{Type: recType, TID: msg.TID}) //nolint:errcheck // lazy
	m.send(msg.From, &wire.Msg{Kind: wire.KNBOutcomeAck, TID: msg.TID})
	m.forget(f)
	m.unlockFamily(f)
	m.applyLocal(parts, msg.TID.Family, commit)
}

// onNBOutcomeAck drains the notify phase at whichever coordinator is
// driving it.
func (m *Manager) onNBOutcomeAck(msg *wire.Msg) {
	f := m.lockFamily(msg.TID.Family)
	if f == nil {
		return
	}
	defer m.unlockFamily(f)
	if f.ph != phCommitted && f.ph != phAborted {
		return
	}
	delete(f.acksPending, msg.From)
	if len(f.acksPending) == 0 {
		m.end(f)
	}
}
