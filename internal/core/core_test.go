package core_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"camelot/internal/core"
	"camelot/internal/params"
	"camelot/internal/sim"
	"camelot/internal/tid"
	"camelot/internal/transport"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

// fakePart is a scriptable participant: it votes as told and counts
// callbacks, which isolates the transaction manager's protocol
// machinery from the data-server implementation.
type fakePart struct {
	name    string
	vote    wire.Vote
	commits int
	aborts  int
	childC  int
	childA  int
}

func (p *fakePart) Name() string                { return p.name }
func (p *fakePart) Vote(tid.FamilyID) wire.Vote { return p.vote }
func (p *fakePart) CommitFamily(tid.FamilyID)   { p.commits++ }
func (p *fakePart) AbortFamily(tid.FamilyID)    { p.aborts++ }
func (p *fakePart) CommitChild(c, pa tid.TID)   { p.childC++ }
func (p *fakePart) AbortChild(c tid.TID)        { p.childA++ }

// site bundles one manager with its log and a default participant.
type site struct {
	m    *core.Manager
	log  *wal.Log
	part *fakePart
}

// harness builds n sites on one simulated network.
type harness struct {
	k     *sim.Kernel
	net   *transport.Network
	sites map[tid.SiteID]*site
}

func newHarness(t *testing.T, n int) *harness {
	t.Helper()
	k := sim.New(1)
	h := &harness{
		k:     k,
		net:   transport.NewNetwork(k, transport.Config{Latency: time.Millisecond, SendCycle: 10 * time.Microsecond}),
		sites: make(map[tid.SiteID]*site),
	}
	for id := tid.SiteID(1); id <= tid.SiteID(n); id++ {
		h.addSite(id)
	}
	return h
}

func (h *harness) addSite(id tid.SiteID) *site {
	log := wal.Open(h.k, wal.NewMemStore(), wal.Config{
		GroupCommit: true, ForceLatency: time.Millisecond, FlushInterval: 10 * time.Millisecond,
	})
	m := core.New(h.k, core.Config{
		Site:             id,
		Threads:          4,
		Params:           params.Fast(),
		RetryInterval:    20 * time.Millisecond,
		InquireInterval:  30 * time.Millisecond,
		PromotionTimeout: 50 * time.Millisecond,
		AckFlushInterval: 10 * time.Millisecond,
	}, log, h.net)
	h.net.Register(id, func(d transport.Datagram) {
		if msg, ok := d.Payload.(*wire.Msg); ok {
			m.Deliver(msg)
		}
	})
	s := &site{m: m, log: log, part: &fakePart{name: fmt.Sprintf("part%d", id), vote: wire.VoteYes}}
	h.sites[id] = s
	return s
}

// run executes fn as the simulation body and fails on deadlock.
func (h *harness) run(t *testing.T, fn func()) {
	t.Helper()
	h.k.Go("test", func() {
		fn()
		h.k.Stop()
	})
	h.k.RunUntil(5 * time.Minute)
	if msg := h.k.Deadlocked(); msg != "" {
		t.Fatal(msg)
	}
}

// beginDistributed begins a transaction at site 1, joins the local
// participant, and registers remote joins at the given sites.
func (h *harness) beginDistributed(t *testing.T, subs ...tid.SiteID) tid.TID {
	t.Helper()
	s1 := h.sites[1]
	txn, err := s1.m.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := s1.m.Join(txn, tid.TID{}, s1.part); err != nil {
		t.Fatalf("local join: %v", err)
	}
	for _, sub := range subs {
		if err := h.sites[sub].m.Join(txn, tid.TID{}, h.sites[sub].part); err != nil {
			t.Fatalf("join at %v: %v", sub, err)
		}
	}
	s1.m.AddSites(txn, subs)
	return txn
}

func countRecords(t *testing.T, log *wal.Log, typ wal.RecType) int {
	t.Helper()
	log.ForceAll() //nolint:errcheck
	recs, err := log.Records()
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	n := 0
	for _, r := range recs {
		if r.Type == typ {
			n++
		}
	}
	return n
}

func TestBeginAssignsUniqueTIDs(t *testing.T) {
	h := newHarness(t, 1)
	h.run(t, func() {
		seen := make(map[tid.TID]bool)
		for i := 0; i < 50; i++ {
			txn, err := h.sites[1].m.Begin()
			if err != nil {
				t.Fatalf("Begin: %v", err)
			}
			if seen[txn] {
				t.Fatalf("duplicate TID %v", txn)
			}
			seen[txn] = true
			if txn.Family.Origin() != 1 {
				t.Fatalf("TID origin = %v, want site1", txn.Family.Origin())
			}
		}
	})
}

func TestLocalCommitForcesOneRecord(t *testing.T) {
	h := newHarness(t, 1)
	h.run(t, func() {
		s := h.sites[1]
		txn := h.beginDistributed(t)
		out, err := s.m.Commit(txn, core.Options{})
		if err != nil || out != wire.OutcomeCommit {
			t.Fatalf("Commit = %v, %v", out, err)
		}
		h.k.Sleep(50 * time.Millisecond)
		if s.part.commits != 1 {
			t.Errorf("participant commits = %d, want 1", s.part.commits)
		}
		if n := countRecords(t, s.log, wal.RecCommit); n != 1 {
			t.Errorf("commit records = %d, want 1", n)
		}
		if n := countRecords(t, s.log, wal.RecPrepare); n != 0 {
			t.Errorf("local transaction wrote %d prepare records", n)
		}
	})
}

func TestLocalReadOnlyCommitWritesNothing(t *testing.T) {
	h := newHarness(t, 1)
	h.run(t, func() {
		s := h.sites[1]
		s.part.vote = wire.VoteReadOnly
		txn := h.beginDistributed(t)
		if _, err := s.m.Commit(txn, core.Options{}); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if got := s.log.Appends(); got != 0 {
			t.Errorf("read-only commit appended %d records", got)
		}
	})
}

func TestLocalNoVoteAborts(t *testing.T) {
	h := newHarness(t, 1)
	h.run(t, func() {
		s := h.sites[1]
		s.part.vote = wire.VoteNo
		txn := h.beginDistributed(t)
		_, err := s.m.Commit(txn, core.Options{})
		if !errors.Is(err, core.ErrAborted) {
			t.Fatalf("Commit = %v, want ErrAborted", err)
		}
		h.k.Sleep(50 * time.Millisecond)
		if s.part.aborts != 1 {
			t.Errorf("participant aborts = %d, want 1", s.part.aborts)
		}
	})
}

func TestDistributedCommitNotifiesAllSites(t *testing.T) {
	h := newHarness(t, 3)
	h.run(t, func() {
		txn := h.beginDistributed(t, 2, 3)
		if _, err := h.sites[1].m.Commit(txn, core.Options{}); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		h.k.Sleep(200 * time.Millisecond)
		for id := tid.SiteID(1); id <= 3; id++ {
			if h.sites[id].part.commits != 1 {
				t.Errorf("site %d participant commits = %d, want 1", id, h.sites[id].part.commits)
			}
		}
		// Subordinates forced a prepare and lazily wrote a commit.
		for id := tid.SiteID(2); id <= 3; id++ {
			if n := countRecords(t, h.sites[id].log, wal.RecPrepare); n != 1 {
				t.Errorf("site %d prepare records = %d, want 1", id, n)
			}
			if n := countRecords(t, h.sites[id].log, wal.RecCommit); n != 1 {
				t.Errorf("site %d commit records = %d, want 1", id, n)
			}
		}
		// Coordinator forgot after the acks: an END record exists.
		if n := countRecords(t, h.sites[1].log, wal.RecEnd); n != 1 {
			t.Errorf("coordinator END records = %d, want 1", n)
		}
	})
}

func TestRemoteNoVoteAbortsEverywhere(t *testing.T) {
	h := newHarness(t, 3)
	h.run(t, func() {
		h.sites[3].part.vote = wire.VoteNo
		txn := h.beginDistributed(t, 2, 3)
		_, err := h.sites[1].m.Commit(txn, core.Options{})
		if !errors.Is(err, core.ErrAborted) {
			t.Fatalf("Commit = %v, want ErrAborted", err)
		}
		h.k.Sleep(200 * time.Millisecond)
		if h.sites[2].part.aborts != 1 {
			t.Errorf("yes-voting subordinate aborts = %d, want 1", h.sites[2].part.aborts)
		}
		if h.sites[1].part.aborts != 1 {
			t.Errorf("coordinator participant aborts = %d, want 1", h.sites[1].part.aborts)
		}
	})
}

func TestReadOnlySubordinateSkipsPhaseTwo(t *testing.T) {
	h := newHarness(t, 2)
	h.run(t, func() {
		h.sites[2].part.vote = wire.VoteReadOnly
		txn := h.beginDistributed(t, 2)
		if _, err := h.sites[1].m.Commit(txn, core.Options{}); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		h.k.Sleep(100 * time.Millisecond)
		if got := h.sites[2].log.Appends(); got != 0 {
			t.Errorf("read-only subordinate appended %d records", got)
		}
		if h.sites[2].part.commits != 1 {
			t.Errorf("read-only subordinate never released (commits=%d)", h.sites[2].part.commits)
		}
	})
}

func TestDisableReadOnlyOptForcesFullPath(t *testing.T) {
	h := newHarness(t, 2)
	h.run(t, func() {
		h.sites[1].part.vote = wire.VoteReadOnly
		h.sites[2].part.vote = wire.VoteReadOnly
		txn := h.beginDistributed(t, 2)
		if _, err := h.sites[1].m.Commit(txn, core.Options{DisableReadOnlyOpt: true}); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		h.k.Sleep(100 * time.Millisecond)
		// With the optimization disabled the subordinate prepares and
		// commits on disk despite being read-only.
		if n := countRecords(t, h.sites[2].log, wal.RecPrepare); n != 1 {
			t.Errorf("sub prepare records = %d, want 1", n)
		}
	})
}

func TestCommitCompletesUnderMessageLoss(t *testing.T) {
	h := newHarness(t, 2)
	// 30% loss: retries must finish the protocol.
	h.net.SetLossRate(0.3)
	h.run(t, func() {
		for i := 0; i < 5; i++ {
			txn := h.beginDistributed(t, 2)
			if _, err := h.sites[1].m.Commit(txn, core.Options{}); err != nil {
				t.Fatalf("Commit %d under loss: %v", i, err)
			}
		}
		h.k.Sleep(2 * time.Second)
		if h.sites[2].part.commits != 5 {
			t.Errorf("subordinate commits = %d, want 5", h.sites[2].part.commits)
		}
	})
}

func TestDuplicatePrepareAnsweredIdempotently(t *testing.T) {
	h := newHarness(t, 2)
	h.run(t, func() {
		txn := h.beginDistributed(t, 2)
		if _, err := h.sites[1].m.Commit(txn, core.Options{}); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		h.k.Sleep(100 * time.Millisecond)
		before := countRecords(t, h.sites[2].log, wal.RecPrepare)
		// Replay a stale PREPARE at the subordinate: it must not
		// prepare again (the family is resolved and forgotten, so the
		// safe answer is a No vote, which the coordinator will drop).
		h.sites[2].m.Deliver(&wire.Msg{Kind: wire.KPrepare, TID: txn, From: 1, To: 2})
		h.k.Sleep(100 * time.Millisecond)
		if after := countRecords(t, h.sites[2].log, wal.RecPrepare); after != before {
			t.Errorf("duplicate PREPARE wrote %d extra prepare records", after-before)
		}
	})
}

func TestCoordinatorAnswersInquiryAfterForgetting(t *testing.T) {
	h := newHarness(t, 2)
	h.run(t, func() {
		// An inquiry for a transaction the coordinator never heard of
		// must be answered ABORT — presumed abort.
		unknown := tid.Top(tid.MakeFamily(1, 999))
		got := make(chan wire.Kind, 1)
		h.net.Register(2, func(d transport.Datagram) {
			if msg, ok := d.Payload.(*wire.Msg); ok && msg.TID == unknown {
				select {
				case got <- msg.Kind:
				default:
				}
			}
		})
		h.sites[1].m.Deliver(&wire.Msg{Kind: wire.KInquire, TID: unknown, From: 2, To: 1})
		h.k.Sleep(100 * time.Millisecond)
		select {
		case kind := <-got:
			if kind != wire.KAbort {
				t.Errorf("inquiry answered %v, want ABORT (presumed abort)", kind)
			}
		default:
			t.Error("inquiry never answered")
		}
	})
}

func TestNonBlockingCommitRecordsAtEverySite(t *testing.T) {
	h := newHarness(t, 3)
	h.run(t, func() {
		txn := h.beginDistributed(t, 2, 3)
		if _, err := h.sites[1].m.Commit(txn, core.Options{NonBlocking: true}); err != nil {
			t.Fatalf("NB Commit: %v", err)
		}
		h.k.Sleep(300 * time.Millisecond)
		// Each site forced two records: prepare and replication
		// intent (§3.3: "requires each site to force two log
		// records").
		for id := tid.SiteID(1); id <= 3; id++ {
			p := countRecords(t, h.sites[id].log, wal.RecPrepare)
			r := countRecords(t, h.sites[id].log, wal.RecNBReplicate)
			if p != 1 || r != 1 {
				t.Errorf("site %d: prepare=%d replicate=%d, want 1/1", id, p, r)
			}
		}
	})
}

func TestNonBlockingAbortOnNoVote(t *testing.T) {
	h := newHarness(t, 3)
	h.run(t, func() {
		h.sites[2].part.vote = wire.VoteNo
		txn := h.beginDistributed(t, 2, 3)
		_, err := h.sites[1].m.Commit(txn, core.Options{NonBlocking: true})
		if !errors.Is(err, core.ErrAborted) {
			t.Fatalf("Commit = %v, want ErrAborted", err)
		}
		h.k.Sleep(300 * time.Millisecond)
		// No site may hold a replicated commit intent.
		for id := tid.SiteID(1); id <= 3; id++ {
			if n := countRecords(t, h.sites[id].log, wal.RecNBReplicate); n != 0 {
				t.Errorf("site %d holds %d replicate records after abort", id, n)
			}
		}
		if h.sites[3].part.aborts != 1 {
			t.Errorf("yes-voting sub aborts = %d, want 1", h.sites[3].part.aborts)
		}
	})
}

func TestCommitResolvesWhenSubordinateSilent(t *testing.T) {
	h := newHarness(t, 2)
	h.run(t, func() {
		txn := h.beginDistributed(t, 2)
		h.net.SetDown(2, true) // sub never votes
		_, err := h.sites[1].m.Commit(txn, core.Options{})
		if !errors.Is(err, core.ErrAborted) {
			t.Fatalf("Commit with silent sub = %v, want ErrAborted", err)
		}
	})
}

func TestStatsCounters(t *testing.T) {
	h := newHarness(t, 1)
	h.run(t, func() {
		s := h.sites[1]
		for i := 0; i < 3; i++ {
			txn := h.beginDistributed(t)
			s.m.Commit(txn, core.Options{}) //nolint:errcheck
		}
		txn := h.beginDistributed(t)
		s.m.Abort(txn) //nolint:errcheck
		st := s.m.Stats()
		if st.Begun != 4 {
			t.Errorf("Begun = %d, want 4", st.Begun)
		}
		if st.Committed != 3 {
			t.Errorf("Committed = %d, want 3", st.Committed)
		}
		if st.Aborted != 1 {
			t.Errorf("Aborted = %d, want 1", st.Aborted)
		}
	})
}

func TestJoinAfterCommitStartedFails(t *testing.T) {
	h := newHarness(t, 2)
	h.run(t, func() {
		txn := h.beginDistributed(t, 2)
		done := false
		h.k.Go("commit", func() {
			h.sites[1].m.Commit(txn, core.Options{}) //nolint:errcheck
			done = true
		})
		h.k.Sleep(time.Millisecond) // coordinator is mid-phase-one
		late := &fakePart{name: "late", vote: wire.VoteYes}
		err := h.sites[1].m.Join(txn, tid.TID{}, late)
		if err == nil {
			t.Error("Join at the coordinator after commitment began succeeded")
		}
		h.k.Sleep(time.Second)
		if !done {
			t.Error("commit never finished")
		}
	})
}

func TestAbortUnknownTransaction(t *testing.T) {
	h := newHarness(t, 1)
	h.run(t, func() {
		// Abort of an unknown transaction is a no-op success under
		// presumed abort.
		if err := h.sites[1].m.Abort(tid.Top(tid.MakeFamily(1, 12345))); err != nil {
			t.Errorf("Abort(unknown) = %v", err)
		}
	})
}

func TestBeginChildUnknownParentFails(t *testing.T) {
	h := newHarness(t, 1)
	h.run(t, func() {
		_, err := h.sites[1].m.BeginChild(tid.Top(tid.MakeFamily(1, 777)))
		if !errors.Is(err, core.ErrUnknownTransaction) {
			t.Errorf("BeginChild(unknown) = %v, want ErrUnknownTransaction", err)
		}
	})
}

func TestPiggybackedAcksLetCoordinatorForget(t *testing.T) {
	h := newHarness(t, 2)
	h.run(t, func() {
		txn := h.beginDistributed(t, 2)
		if _, err := h.sites[1].m.Commit(txn, core.Options{}); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		// The delayed ack travels on the ack flusher (nothing else to
		// piggyback on); the coordinator must eventually write END.
		h.k.Sleep(500 * time.Millisecond)
		if n := countRecords(t, h.sites[1].log, wal.RecEnd); n != 1 {
			t.Errorf("coordinator END records = %d, want 1 (ack never arrived)", n)
		}
		st := h.sites[2].m.Stats()
		if st.AcksPiggybacked+st.AcksStandalone == 0 {
			t.Error("no delayed ack was ever sent")
		}
	})
}
