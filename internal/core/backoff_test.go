package core

import (
	"math/rand"
	"testing"
	"time"
)

// Round 0 must wait exactly base: fault-free runs — and with them the
// simulation goldens — never observe backoff.
func TestBackoffRoundZeroIsBase(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, base := range []time.Duration{time.Millisecond, 50 * time.Millisecond, time.Second} {
		if got := backoff(base, 8*base, 0, rng); got != base {
			t.Fatalf("backoff(%v, n=0) = %v, want %v", base, got, base)
		}
	}
}

// Every round's delay stays within [base, cap], for every exponent —
// including ones large enough to overflow a naive base<<n.
func TestBackoffStaysWithinBaseAndCap(t *testing.T) {
	const base = 50 * time.Millisecond
	limit := 8 * base
	rng := rand.New(rand.NewSource(7))
	for n := 0; n < 100; n++ {
		for i := 0; i < 50; i++ {
			d := backoff(base, limit, n, rng)
			if d < base || d > limit {
				t.Fatalf("backoff round %d = %v, outside [%v, %v]", n, d, base, limit)
			}
		}
	}
}

// A cap at or below base disables growth entirely — the orphan check
// (base 4×InquireInterval, typically above the cap) keeps its fixed
// period.
func TestBackoffCapBelowBaseIsFixedInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := 4 * time.Second
	for n := 0; n < 10; n++ {
		if got := backoff(base, 400*time.Millisecond, n, rng); got != base {
			t.Fatalf("backoff round %d = %v, want fixed %v", n, got, base)
		}
	}
}

// The delay sequence is a pure function of the seed: two generators
// with the same seed produce identical schedules (replay determinism),
// different seeds diverge (sites de-synchronize).
func TestBackoffDeterministicPerSeed(t *testing.T) {
	const base = 50 * time.Millisecond
	limit := 8 * base
	seq := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		out := make([]time.Duration, 0, 20)
		for n := 0; n < 20; n++ {
			out = append(out, backoff(base, limit, n, rng))
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at round %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical schedules")
	}
}

// Growth actually happens: by a few rounds in, delays can exceed the
// base (the storm-damping the cap exists to bound).
func TestBackoffGrows(t *testing.T) {
	const base = 50 * time.Millisecond
	limit := 8 * base
	rng := rand.New(rand.NewSource(11))
	grew := false
	for n := 1; n < 10; n++ {
		if backoff(base, limit, n, rng) > base {
			grew = true
			break
		}
	}
	if !grew {
		t.Fatalf("backoff never exceeded base over 10 jittered rounds")
	}
}
