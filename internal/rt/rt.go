// Package rt defines the runtime abstraction that lets every Camelot
// component run unchanged on either the real Go runtime or the
// deterministic simulation kernel in internal/sim.
//
// The abstraction mirrors what the original Camelot transaction
// manager took from Mach and the C-Threads package: a clock, thread
// creation, mutexes, condition variables, and timers. Protocol code
// is written in ordinary blocking style against these interfaces; in
// simulation the "threads" are cooperatively scheduled goroutines on
// a virtual clock, which makes latency experiments deterministic and
// lets a three-hour wall-clock study run in milliseconds.
package rt

import (
	"math/rand"
	"time"
)

// Time is an instant measured as an offset from the runtime's epoch
// (process start for the real runtime, t=0 for simulation).
type Time = time.Duration

// Runtime is the set of primitives the transaction system needs from
// its host. Implementations: realRuntime (this package) and
// sim.Kernel.
type Runtime interface {
	// Now returns the current time relative to the runtime epoch.
	Now() Time
	// Sleep blocks the calling thread for d. Non-positive d yields
	// without advancing time.
	Sleep(d time.Duration)
	// Go starts fn on a new thread. The name is used in traces and
	// deadlock reports.
	Go(name string, fn func())
	// After schedules fn to run on its own thread after d. The
	// returned timer may be stopped; Stop reports whether it
	// prevented the call.
	After(d time.Duration, fn func()) Timer
	// NewMutex returns an unlocked mutex.
	NewMutex() Mutex
	// NewCond returns a condition variable bound to m.
	NewCond(m Mutex) Cond
	// Rand returns the runtime's random source. Simulation runtimes
	// return a seeded deterministic source.
	Rand() *rand.Rand
}

// Mutex is a purely exclusive lock, as in C-Threads. TryLock makes
// contention observable: callers that want to count lock waits try
// first and fall back to a blocking Lock. In simulation the kernel is
// cooperative and no mutex is ever held across a context switch, so
// TryLock always succeeds there — which doubles as a runtime check of
// the determinism invariant.
type Mutex interface {
	Lock()
	Unlock()
	// TryLock acquires the mutex if it is free and reports whether it
	// did. It never blocks.
	TryLock() bool
}

// Cond is a condition variable. Unlike sync.Cond, implementations
// must not produce spurious wakeups in simulation, but callers should
// still re-check their predicate in a loop.
type Cond interface {
	// Wait atomically releases the mutex and blocks until signaled,
	// then reacquires the mutex before returning.
	Wait()
	Signal()
	Broadcast()
}

// Timer is a cancellable pending call created by After.
type Timer interface {
	// Stop cancels the pending call and reports whether it fired
	// neither before nor during the cancellation.
	Stop() bool
}
