package rt

import "time"

// CPU models a serially shared processor: callers occupy it for a
// duration, one at a time. Camelot is "operating-system-intensive" —
// every IPC passes through the kernel, and on the paper's testbeds
// (a uniprocessor RT PC; a VAX multiprocessor whose Mach had a single
// run queue on one master processor) that kernel is a serial
// resource. Routing the simulated IPC costs through a CPU is what
// makes message-intensive workloads saturate the way Figures 4 and 5
// show, with throughput limited by the message system rather than by
// any Camelot component.
type CPU struct {
	r    Runtime
	mu   Mutex
	busy time.Duration
}

// NewCPU returns an idle serial processor.
func NewCPU(r Runtime) *CPU {
	return &CPU{r: r, mu: r.NewMutex()}
}

// Use occupies the processor for d. A nil CPU is never contended —
// callers fall back to plain sleeping.
func (c *CPU) Use(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.busy += d
	c.r.Sleep(d)
	c.mu.Unlock()
}

// Busy reports the total time the processor has been occupied.
func (c *CPU) Busy() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.busy
}

// Charge occupies cpu if non-nil, else sleeps on r: the helper every
// component uses so the kernel model stays optional.
func Charge(r Runtime, cpu *CPU, d time.Duration) {
	if d <= 0 {
		return
	}
	if cpu != nil {
		cpu.Use(d)
		return
	}
	r.Sleep(d)
}
