package rt

import "time"

// Queue is an unbounded FIFO mailbox built on a Runtime's mutex and
// condition variable. It is the message-delivery primitive shared by
// the transaction manager's thread pool, the logger, and the
// transports, in both real and simulated execution.
type Queue[T any] struct {
	r      Runtime
	mu     Mutex
	cond   Cond
	items  []T
	closed bool
}

// NewQueue returns an empty open queue.
func NewQueue[T any](r Runtime) *Queue[T] {
	q := &Queue[T]{r: r}
	q.mu = r.NewMutex()
	q.cond = r.NewCond(q.mu)
	return q
}

// Put appends v and wakes one waiter. Put on a closed queue is a
// no-op so racing producers need no shutdown coordination.
func (q *Queue[T]) Put(v T) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, v)
	q.cond.Signal()
}

// Get blocks until an item is available or the queue is closed. The
// second result is false once the queue is closed and drained.
func (q *Queue[T]) Get() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	return q.popLocked()
}

// GetTimeout is Get with a deadline. The third result distinguishes
// timeout (false) from closure or delivery (true).
func (q *Queue[T]) GetTimeout(d time.Duration) (v T, ok bool, delivered bool) {
	deadline := q.r.Now() + d
	timedOut := false
	timer := q.r.After(d, func() {
		q.mu.Lock()
		timedOut = true
		q.cond.Broadcast()
		q.mu.Unlock()
	})
	defer timer.Stop()

	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		if timedOut || q.r.Now() >= deadline {
			var zero T
			return zero, false, false
		}
		q.cond.Wait()
	}
	v, ok = q.popLocked()
	return v, ok, true
}

// TryGet returns immediately with the head item if one is present.
func (q *Queue[T]) TryGet() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v, _ := q.popLocked()
	return v, true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close wakes all waiters; subsequent Gets drain remaining items and
// then report !ok.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

func (q *Queue[T]) popLocked() (T, bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v := q.items[0]
	// Shift rather than re-slice so the backing array does not pin
	// delivered items.
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return v, true
}
