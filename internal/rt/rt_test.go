package rt

import (
	"sync/atomic"
	"testing"
	"time"
)

// The real runtime must satisfy the same contracts the simulation
// kernel is tested against in internal/sim; these tests keep the two
// implementations honest with each other.

func TestRealNowAdvances(t *testing.T) {
	r := Real()
	a := r.Now()
	time.Sleep(2 * time.Millisecond)
	if b := r.Now(); b <= a {
		t.Fatalf("Now did not advance: %v then %v", a, b)
	}
}

func TestRealSleepNonPositiveReturnsImmediately(t *testing.T) {
	r := Real()
	start := time.Now()
	r.Sleep(0)
	r.Sleep(-time.Hour)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("non-positive sleep blocked")
	}
}

func TestRealGoRuns(t *testing.T) {
	r := Real()
	done := make(chan struct{})
	r.Go("worker", func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Go never ran the function")
	}
}

func TestRealAfterFiresAndStops(t *testing.T) {
	r := Real()
	var fired atomic.Bool
	done := make(chan struct{})
	r.After(time.Millisecond, func() {
		fired.Store(true)
		close(done)
	})
	<-done
	if !fired.Load() {
		t.Fatal("timer did not fire")
	}
	var late atomic.Bool
	tm := r.After(time.Hour, func() { late.Store(true) })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if late.Load() {
		t.Fatal("stopped timer fired")
	}
}

func TestRealMutexAndCond(t *testing.T) {
	r := Real()
	mu := r.NewMutex()
	cond := r.NewCond(mu)
	ready := false
	done := make(chan struct{})
	go func() {
		mu.Lock()
		for !ready {
			cond.Wait()
		}
		mu.Unlock()
		close(done)
	}()
	time.Sleep(time.Millisecond)
	mu.Lock()
	ready = true
	cond.Broadcast()
	mu.Unlock()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cond waiter never woke")
	}
}

func TestRealRandConcurrentUse(t *testing.T) {
	r := Real()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			rng := r.Rand()
			for j := 0; j < 1000; j++ {
				rng.Int63()
				rng.Uint64()
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("concurrent Rand use hung")
		}
	}
}

func TestQueueOnRealRuntime(t *testing.T) {
	r := Real()
	q := NewQueue[int](r)
	go func() {
		for i := 0; i < 100; i++ {
			q.Put(i)
		}
		q.Close()
	}()
	got := 0
	for {
		v, ok := q.Get()
		if !ok {
			break
		}
		if v != got {
			t.Fatalf("out of order: got %d want %d", v, got)
		}
		got++
	}
	if got != 100 {
		t.Fatalf("consumed %d items, want 100", got)
	}
}

func TestQueueGetTimeoutOnRealRuntime(t *testing.T) {
	r := Real()
	q := NewQueue[int](r)
	start := time.Now()
	_, _, delivered := q.GetTimeout(10 * time.Millisecond)
	if delivered {
		t.Fatal("empty queue delivered")
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("timeout returned too early")
	}
	// A put after a timeout still works.
	q.Put(7)
	if v, ok := q.TryGet(); !ok || v != 7 {
		t.Fatalf("TryGet = %d, %v", v, ok)
	}
}

func TestFutureOnRealRuntime(t *testing.T) {
	r := Real()
	f := NewFuture[int](r)
	go func() {
		time.Sleep(time.Millisecond)
		f.Set(42)
		f.Set(99) // ignored
	}()
	if v, ok := f.WaitTimeout(5 * time.Second); !ok || v != 42 {
		t.Fatalf("WaitTimeout = %d, %v", v, ok)
	}
	if v := f.Wait(); v != 42 {
		t.Fatalf("Wait after set = %d", v)
	}
	if !f.Done() {
		t.Fatal("Done() = false after Set")
	}
}

func TestFutureWaitTimeoutExpires(t *testing.T) {
	r := Real()
	f := NewFuture[int](r)
	if _, ok := f.WaitTimeout(5 * time.Millisecond); ok {
		t.Fatal("WaitTimeout succeeded with no Set")
	}
}

func TestWaitGroupOnRealRuntime(t *testing.T) {
	r := Real()
	wg := NewWaitGroup(r)
	var n atomic.Int32
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			n.Add(1)
			wg.Done()
		}()
	}
	wg.Wait()
	if n.Load() != 10 {
		t.Fatalf("n = %d after Wait, want 10", n.Load())
	}
}

func TestCPUSerializesUse(t *testing.T) {
	r := Real()
	cpu := NewCPU(r)
	start := time.Now()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			cpu.Use(5 * time.Millisecond)
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("4×5ms serialized uses finished in %v", elapsed)
	}
	if cpu.Busy() != 20*time.Millisecond {
		t.Fatalf("Busy = %v, want 20ms", cpu.Busy())
	}
}

func TestChargeNilCPUSleeps(t *testing.T) {
	r := Real()
	start := time.Now()
	Charge(r, nil, 2*time.Millisecond)
	if time.Since(start) < time.Millisecond {
		t.Fatal("Charge(nil) did not sleep")
	}
	Charge(r, nil, 0) // must not panic or block
}
