package rt

import "time"

// Future is a write-once cell a thread can block on. The transaction
// manager uses futures to hand protocol outcomes back to the
// application thread that issued begin/commit/abort.
type Future[T any] struct {
	r    Runtime
	mu   Mutex
	cond Cond
	set  bool
	val  T
}

// NewFuture returns an unset future.
func NewFuture[T any](r Runtime) *Future[T] {
	f := &Future[T]{r: r}
	f.mu = r.NewMutex()
	f.cond = r.NewCond(f.mu)
	return f
}

// Set stores v and wakes all waiters. Only the first Set takes
// effect; later calls are ignored, which lets racing resolutions
// (e.g. duplicate outcome datagrams) stay idempotent.
func (f *Future[T]) Set(v T) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.set {
		return
	}
	f.set = true
	f.val = v
	f.cond.Broadcast()
}

// Wait blocks until the future is set and returns the value.
func (f *Future[T]) Wait() T {
	f.mu.Lock()
	defer f.mu.Unlock()
	for !f.set {
		f.cond.Wait()
	}
	return f.val
}

// WaitTimeout blocks up to d; ok reports whether the value arrived.
func (f *Future[T]) WaitTimeout(d time.Duration) (T, bool) {
	timedOut := false
	timer := f.r.After(d, func() {
		f.mu.Lock()
		timedOut = true
		f.cond.Broadcast()
		f.mu.Unlock()
	})
	defer timer.Stop()

	f.mu.Lock()
	defer f.mu.Unlock()
	for !f.set {
		if timedOut {
			var zero T
			return zero, false
		}
		f.cond.Wait()
	}
	return f.val, true
}

// Done reports whether the future has been set, without blocking.
func (f *Future[T]) Done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.set
}

// WaitGroup counts outstanding work, like sync.WaitGroup but usable
// under both runtimes.
type WaitGroup struct {
	mu   Mutex
	cond Cond
	n    int
}

// NewWaitGroup returns a WaitGroup with a zero count.
func NewWaitGroup(r Runtime) *WaitGroup {
	wg := &WaitGroup{}
	wg.mu = r.NewMutex()
	wg.cond = r.NewCond(wg.mu)
	return wg
}

// Add adjusts the count by delta; a count reaching zero releases all
// waiters. Add panics if the count goes negative.
func (wg *WaitGroup) Add(delta int) {
	wg.mu.Lock()
	defer wg.mu.Unlock()
	wg.n += delta
	if wg.n < 0 {
		panic("rt: negative WaitGroup counter")
	}
	if wg.n == 0 {
		wg.cond.Broadcast()
	}
}

// Done decrements the count by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks until the count reaches zero.
func (wg *WaitGroup) Wait() {
	wg.mu.Lock()
	defer wg.mu.Unlock()
	for wg.n != 0 {
		wg.cond.Wait()
	}
}
