package rt

import (
	"math/rand"
	"sync"
	"time"
)

// Real returns a Runtime backed by the ordinary Go runtime: wall
// clock, goroutines, sync.Mutex, sync.Cond. Its epoch is the moment
// Real is called.
func Real() Runtime {
	return &realRuntime{
		epoch: time.Now(),
		rng:   rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

type realRuntime struct {
	epoch time.Time
	mu    sync.Mutex // guards rng: rand.Rand is not concurrency-safe
	rng   *rand.Rand
}

func (r *realRuntime) Now() Time { return time.Since(r.epoch) }

func (r *realRuntime) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(d)
}

func (r *realRuntime) Go(name string, fn func()) { go fn() }

func (r *realRuntime) After(d time.Duration, fn func()) Timer {
	return realTimer{time.AfterFunc(d, fn)}
}

func (r *realRuntime) NewMutex() Mutex { return &sync.Mutex{} }

func (r *realRuntime) NewCond(m Mutex) Cond {
	return sync.NewCond(m.(sync.Locker))
}

// Rand returns a locked view of the runtime's random source.
func (r *realRuntime) Rand() *rand.Rand {
	// rand.New over a locked source keeps the shared generator safe
	// for concurrent use by many threads.
	return rand.New(&lockedSource{mu: &r.mu, src: r.rng})
}

type realTimer struct{ t *time.Timer }

func (t realTimer) Stop() bool { return t.t.Stop() }

// lockedSource adapts the shared *rand.Rand into a concurrency-safe
// rand.Source64.
type lockedSource struct {
	mu  *sync.Mutex
	src *rand.Rand
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Int63()
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Uint64()
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Seed(seed)
}
