package wal

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
)

// Store is stable storage: once Append returns, the block survives a
// site crash. Blocks returns every durable block in append order.
//
// MemStore survives *simulated* crashes (the site object is torn down
// and rebuilt around the same store); FileStore survives real ones.
type Store interface {
	Append(block []byte) error
	Blocks() ([][]byte, error)
	// Truncate drops the first n blocks — the prefix a checkpoint has
	// absorbed into the page image.
	Truncate(n int) error
	// DropTail discards the last n blocks — recovery's repair of a
	// torn tail, so that records appended after the repair never sit
	// behind a corrupt block.
	DropTail(n int) error
}

// MemStore is an in-memory Store used by simulations: durability is
// modeled, latency is charged by the Log, and the contents survive a
// simulated crash because the experiment keeps the store while
// discarding the site built around it.
type MemStore struct {
	mu     sync.Mutex
	blocks [][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Append copies block into the store.
func (s *MemStore) Append(block []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(block))
	copy(cp, block)
	s.blocks = append(s.blocks, cp)
	return nil
}

// Blocks returns copies of all durable blocks in append order.
func (s *MemStore) Blocks() ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]byte, len(s.blocks))
	for i, b := range s.blocks {
		out[i] = make([]byte, len(b))
		copy(out[i], b)
	}
	return out, nil
}

// Truncate drops the first n blocks.
func (s *MemStore) Truncate(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		return nil
	}
	if n > len(s.blocks) {
		n = len(s.blocks)
	}
	s.blocks = append([][]byte(nil), s.blocks[n:]...)
	return nil
}

// DropTail discards the last n blocks.
func (s *MemStore) DropTail(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		return nil
	}
	if n > len(s.blocks) {
		n = len(s.blocks)
	}
	s.blocks = s.blocks[:len(s.blocks)-n]
	return nil
}

// Len reports the number of durable blocks.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blocks)
}

// FileStore is a Store over a single append-only file with
// length-prefixed blocks, fsynced on every Append.
type FileStore struct {
	mu sync.Mutex
	f  *os.File
}

// OpenFileStore opens (creating if necessary) the log file at path.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open store: %w", err)
	}
	return &FileStore{f: f}, nil
}

// Append writes block with a length prefix and syncs.
func (s *FileStore) Append(block []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(block)))
	if _, err := s.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := s.f.Write(block); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Blocks re-reads the file from the start. A truncated final block
// (torn write) is dropped, matching recovery semantics.
func (s *FileStore) Blocks() ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	defer s.f.Seek(0, io.SeekEnd) //nolint:errcheck // best-effort reposition for appends
	var out [][]byte
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(s.f, hdr[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, nil // torn length prefix: stop at last good block
		}
		n := binary.BigEndian.Uint32(hdr[:])
		block := make([]byte, n)
		if _, err := io.ReadFull(s.f, block); err != nil {
			return out, nil // torn block: drop it
		}
		out = append(out, block)
	}
}

// Truncate drops the first n blocks by rewriting the file — the log
// is small after a checkpoint, which is the only caller.
func (s *FileStore) Truncate(n int) error {
	if n <= 0 {
		return nil
	}
	blocks, err := s.Blocks()
	if err != nil {
		return err
	}
	if n > len(blocks) {
		n = len(blocks)
	}
	return s.rewrite(blocks[n:])
}

// DropTail discards the last n blocks by rewriting the file — torn
// tails are a single block, so the rewrite is recovery-time only.
func (s *FileStore) DropTail(n int) error {
	if n <= 0 {
		return nil
	}
	blocks, err := s.Blocks()
	if err != nil {
		return err
	}
	if n > len(blocks) {
		n = len(blocks)
	}
	return s.rewrite(blocks[:len(blocks)-n])
}

// rewrite replaces the file's contents with the given blocks.
func (s *FileStore) rewrite(blocks [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: truncate seek: %w", err)
	}
	for _, b := range blocks {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
		if _, err := s.f.Write(hdr[:]); err != nil {
			return fmt.Errorf("wal: truncate rewrite: %w", err)
		}
		if _, err := s.f.Write(b); err != nil {
			return fmt.Errorf("wal: truncate rewrite: %w", err)
		}
	}
	return s.f.Sync()
}

// Close closes the underlying file.
func (s *FileStore) Close() error { return s.f.Close() }
