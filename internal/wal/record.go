// Package wal implements Camelot's common stable-storage log: the
// single per-site write-ahead log through which servers record
// old/new object values and the transaction manager records protocol
// state.
//
// The log is the performance fulcrum of the paper. A log force costs
// a full device write (15 ms in the paper's Table 2; ~30 writes/s on
// their disk), so the number of forces per transaction dominates
// commit latency, and log batching ("group commit") is what lets a
// multithreaded transaction manager raise throughput past the
// one-force-at-a-time ceiling (paper §3.5, Figures 4 and 5).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"camelot/internal/tid"
	"camelot/internal/wire"
)

// RecType discriminates log record types.
type RecType uint8

// Log record types. RecUpdate carries a server's old and new object
// values ("it reports both the old and new value of the object to the
// disk manager", Figure 1 step 5). The protocol records mirror the
// states of §3.2 and §3.3.
const (
	RecInvalid       RecType = iota
	RecUpdate                // old/new value pair for one object
	RecPrepare               // subordinate is prepared; lists coordinator
	RecCommit                // transaction committed (the commit point at the coordinator)
	RecAbort                 // transaction aborted
	RecNBReplicate           // non-blocking replication-phase commit intent
	RecNBAbortIntent         // non-blocking abort-quorum record
	RecEnd                   // coordinator may forget: all acks received
	// RecCheckpoint is the recovery starting point. The checkpoint
	// writer is still open ROADMAP work, so no production code emits
	// the record yet — only the recovery tests synthesize it.
	//lint:recsurface checkpoint writer not built yet; tests synthesize the record
	RecCheckpoint

	// Paxos Commit records. RecPaxosPrepare is an RM's prepared record
	// (its Yes vote, durable before the vote leaves the site);
	// RecPaxosAccept is an acceptor's accepted record, batching every
	// instance of the transaction into one force; RecPaxosPromise is an
	// acceptor's ballot promise, forced before answering a takeover
	// leader's phase 1a.
	RecPaxosPrepare
	RecPaxosAccept
	RecPaxosPromise
)

var recNames = map[RecType]string{
	RecUpdate: "UPDATE", RecPrepare: "PREPARE", RecCommit: "COMMIT",
	RecAbort: "ABORT", RecNBReplicate: "NB-REPLICATE",
	RecNBAbortIntent: "NB-ABORT-INTENT", RecEnd: "END", RecCheckpoint: "CHECKPOINT",
	RecPaxosPrepare: "PAXOS-PREPARE", RecPaxosAccept: "PAXOS-ACCEPT",
	RecPaxosPromise: "PAXOS-PROMISE",
}

// String returns the record type's name.
func (t RecType) String() string {
	if s, ok := recNames[t]; ok {
		return s
	}
	return "INVALID"
}

// Registered reports whether t has a row in the record registry
// (recNames). Like wire's kind registry, membership is the codec's
// single source of truth: unmarshal rejects an unregistered type as
// corrupt, so a record-type constant without a registry row can never
// flow into recovery.
func (t RecType) Registered() bool {
	_, ok := recNames[t]
	return ok
}

// Record is one log entry. LSN is assigned by Log.Append.
type Record struct {
	LSN  uint64
	Type RecType
	TID  tid.TID
	// Parent links a nested transaction to its parent; recovery uses
	// the resulting chains to decide whether an update record belongs
	// to an aborted subtree.
	Parent tid.TID

	// Update fields.
	Server string
	Key    string
	Old    []byte
	New    []byte

	// Prepare fields: who coordinates, and (non-blocking) the full
	// participant list and quorum sizes so a promoted coordinator can
	// reconstruct the protocol after a crash.
	Coordinator  tid.SiteID
	Sites        []tid.SiteID
	CommitQuorum uint16
	AbortQuorum  uint16

	// NB replication fields: the collected votes being replicated.
	Votes []wire.SiteVote

	// Paxos fields: the ballot an acceptor promised or accepted at, and
	// the transaction's acceptor set. Encoded only for the RecPaxos*
	// types (a type-gated tail), so every pre-Paxos record's encoding —
	// and therefore its traced marshal size — is unchanged.
	Ballot    uint64
	Acceptors []tid.SiteID
}

// isPaxos reports whether t carries the Paxos tail fields.
func (t RecType) isPaxos() bool {
	return t == RecPaxosPrepare || t == RecPaxosAccept || t == RecPaxosPromise
}

// Codec errors.
var (
	ErrCorrupt = errors.New("wal: corrupt record")
)

// marshal encodes r (LSN included) with a trailing CRC32 so torn or
// corrupted blocks are detected at recovery.
func marshal(r *Record) []byte {
	b := make([]byte, 0, 64)
	b = binary.BigEndian.AppendUint64(b, r.LSN)
	b = append(b, byte(r.Type))
	b = binary.BigEndian.AppendUint64(b, uint64(r.TID.Family))
	b = binary.BigEndian.AppendUint64(b, uint64(r.TID.Seq))
	b = binary.BigEndian.AppendUint64(b, uint64(r.Parent.Family))
	b = binary.BigEndian.AppendUint64(b, uint64(r.Parent.Seq))
	b = appendString(b, r.Server)
	b = appendString(b, r.Key)
	b = appendBytes(b, r.Old)
	b = appendBytes(b, r.New)
	b = binary.BigEndian.AppendUint32(b, uint32(r.Coordinator))
	b = binary.BigEndian.AppendUint16(b, uint16(len(r.Sites)))
	for _, s := range r.Sites {
		b = binary.BigEndian.AppendUint32(b, uint32(s))
	}
	b = binary.BigEndian.AppendUint16(b, r.CommitQuorum)
	b = binary.BigEndian.AppendUint16(b, r.AbortQuorum)
	b = binary.BigEndian.AppendUint16(b, uint16(len(r.Votes)))
	for _, v := range r.Votes {
		b = binary.BigEndian.AppendUint32(b, uint32(v.Site))
		b = append(b, byte(v.Vote))
	}
	if r.Type.isPaxos() {
		b = binary.BigEndian.AppendUint64(b, r.Ballot)
		b = binary.BigEndian.AppendUint16(b, uint16(len(r.Acceptors)))
		for _, s := range r.Acceptors {
			b = binary.BigEndian.AppendUint32(b, uint32(s))
		}
	}
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// unmarshal decodes one record block, verifying its CRC.
func unmarshal(b []byte) (*Record, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(b))
	}
	body, sum := b[:len(b)-4], binary.BigEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	d := recDecoder{buf: body}
	r := &Record{}
	r.LSN = d.u64()
	r.Type = RecType(d.u8())
	// Registry membership, not a range check: a range would admit any
	// byte below the newest constant whether or not the registry knows
	// it. Zero, gaps, and everything above the last type all fail the
	// same way.
	if !r.Type.Registered() {
		return nil, fmt.Errorf("%w: type %d", ErrCorrupt, r.Type)
	}
	r.TID.Family = tid.FamilyID(d.u64())
	r.TID.Seq = tid.Seq(d.u64())
	r.Parent.Family = tid.FamilyID(d.u64())
	r.Parent.Seq = tid.Seq(d.u64())
	r.Server = string(d.bytes())
	r.Key = string(d.bytes())
	r.Old = d.bytes()
	r.New = d.bytes()
	r.Coordinator = tid.SiteID(d.u32())
	for i, n := 0, int(d.u16()); i < n; i++ {
		r.Sites = append(r.Sites, tid.SiteID(d.u32()))
	}
	r.CommitQuorum = d.u16()
	r.AbortQuorum = d.u16()
	for i, n := 0, int(d.u16()); i < n; i++ {
		r.Votes = append(r.Votes, wire.SiteVote{
			Site: tid.SiteID(d.u32()), Vote: wire.Vote(d.u8()),
		})
	}
	if r.Type.isPaxos() {
		r.Ballot = d.u64()
		for i, n := 0, int(d.u16()); i < n; i++ {
			r.Acceptors = append(r.Acceptors, tid.SiteID(d.u32()))
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	return r, nil
}

// BlockType reports the record type encoded in a marshaled log block
// ("COMMIT", "UPDATE", ...), or "?" when the block does not decode.
// Fault-injection tooling uses it to label log-write injection points
// without re-implementing the codec.
func BlockType(b []byte) string {
	r, err := unmarshal(b)
	if err != nil {
		return "?"
	}
	return r.Type.String()
}

func appendString(b []byte, s string) []byte { return appendBytes(b, []byte(s)) }

func appendBytes(b, p []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

type recDecoder struct {
	buf []byte
	err error
}

func (d *recDecoder) take(n int) []byte {
	if d.err != nil || len(d.buf) < n {
		d.err = ErrCorrupt
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *recDecoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *recDecoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *recDecoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *recDecoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *recDecoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || n > len(d.buf) {
		d.err = ErrCorrupt
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.take(n))
	return out
}
