package wal

import (
	"errors"
	"fmt"
	"sync"
)

// ErrDiskFailed is the sticky error a FailStore returns once its
// programmed failure point is reached.
var ErrDiskFailed = errors.New("wal: stable store failed")

// FailStore wraps a Store with a programmed write failure: the
// FailAfter-th Append (counted from zero) and every mutating call
// after it return ErrDiskFailed — a disk dying mid-run. Reads keep
// working, matching a device whose written sectors survive, so
// recovery tooling can still inspect what made it to the platter. The
// Log reacts to a failed append by fail-stopping (closing), which is
// exactly the §4 model: a site whose stable storage is gone is a
// crashed site.
//
// The real fault driver installs it under camelot-node's
// -wal-fail-append flag; the simulation's analog is the chaos
// FaultStore.
type FailStore struct {
	inner Store

	mu       sync.Mutex
	appends  int
	failAt   int
	dead     bool
	deadline bool // failAt armed
}

// NewFailStore wraps inner so that the failAfter-th Append fails.
// Negative failAfter never fails (a transparent wrapper).
func NewFailStore(inner Store, failAfter int) *FailStore {
	return &FailStore{inner: inner, failAt: failAfter, deadline: failAfter >= 0}
}

// Append forwards to the inner store until the programmed failure
// point, then fails this and every later mutating call.
func (s *FailStore) Append(block []byte) error {
	s.mu.Lock()
	if s.dead || (s.deadline && s.appends >= s.failAt) {
		s.dead = true
		n := s.appends
		s.mu.Unlock()
		return fmt.Errorf("%w: append %d", ErrDiskFailed, n)
	}
	s.appends++
	s.mu.Unlock()
	return s.inner.Append(block)
}

// Blocks reads through: written sectors survive the device's death.
func (s *FailStore) Blocks() ([][]byte, error) { return s.inner.Blocks() }

// Truncate fails once the device is dead; otherwise forwards.
func (s *FailStore) Truncate(n int) error {
	if err := s.check("truncate"); err != nil {
		return err
	}
	return s.inner.Truncate(n)
}

// DropTail fails once the device is dead; otherwise forwards.
func (s *FailStore) DropTail(n int) error {
	if err := s.check("droptail"); err != nil {
		return err
	}
	return s.inner.DropTail(n)
}

func (s *FailStore) check(op string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return fmt.Errorf("%w: %s", ErrDiskFailed, op)
	}
	return nil
}

// Failed reports whether the programmed failure has fired.
func (s *FailStore) Failed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead
}

// FailStore must satisfy Store.
var _ Store = (*FailStore)(nil)
