package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"camelot/internal/sim"
	"camelot/internal/tid"
	"camelot/internal/wire"
)

func testTID(n uint32) tid.TID { return tid.Top(tid.MakeFamily(1, n)) }

func TestRecordRoundTrip(t *testing.T) {
	r := &Record{
		LSN: 42, Type: RecUpdate, TID: testTID(7),
		Server: "bank", Key: "acct/1", Old: []byte("100"), New: []byte("90"),
		Coordinator: 2, Sites: []tid.SiteID{1, 2, 3},
		CommitQuorum: 2, AbortQuorum: 2,
		Votes: []wire.SiteVote{{Site: 1, Vote: wire.VoteYes}},
	}
	got, err := unmarshal(marshal(r))
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", r, got)
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := &Record{
			LSN:  rng.Uint64(),
			Type: RecType(1 + rng.Intn(int(RecCheckpoint))),
			TID:  tid.TID{Family: tid.FamilyID(rng.Uint64()), Seq: tid.Seq(rng.Uint64())},
		}
		if rng.Intn(2) == 0 {
			r.Server = fmt.Sprintf("srv%d", rng.Intn(100))
			r.Key = fmt.Sprintf("key%d", rng.Intn(100))
			r.Old = make([]byte, rng.Intn(64))
			rng.Read(r.Old)
			r.New = make([]byte, rng.Intn(64))
			rng.Read(r.New)
			if len(r.Old) == 0 {
				r.Old = nil
			}
			if len(r.New) == 0 {
				r.New = nil
			}
		}
		got, err := unmarshal(marshal(r))
		return err == nil && reflect.DeepEqual(r, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordCorruptionDetected(t *testing.T) {
	b := marshal(&Record{LSN: 1, Type: RecCommit, TID: testTID(1)})
	for i := range b {
		bad := make([]byte, len(b))
		copy(bad, b)
		bad[i] ^= 0x40
		if _, err := unmarshal(bad); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
}

func TestAppendAssignsAscendingLSNs(t *testing.T) {
	k := sim.New(1)
	k.Go("main", func() {
		l := Open(k, NewMemStore(), Config{ForceLatency: time.Millisecond})
		defer l.Close()
		var prev uint64
		for i := 0; i < 10; i++ {
			lsn, err := l.Append(&Record{Type: RecCommit, TID: testTID(uint32(i))})
			if err != nil {
				t.Errorf("Append: %v", err)
			}
			if lsn <= prev {
				t.Errorf("LSN %d not ascending after %d", lsn, prev)
			}
			prev = lsn
		}
	})
	k.Run()
}

func TestForceMakesDurable(t *testing.T) {
	k := sim.New(1)
	store := NewMemStore()
	k.Go("main", func() {
		l := Open(k, store, Config{ForceLatency: 15 * time.Millisecond})
		defer l.Close()
		lsn, _ := l.Append(&Record{Type: RecCommit, TID: testTID(1)})
		if store.Len() != 0 {
			t.Error("record durable before force")
		}
		start := k.Now()
		if err := l.Force(lsn); err != nil {
			t.Errorf("Force: %v", err)
		}
		if got := k.Now() - start; got != 15*time.Millisecond {
			t.Errorf("force took %v, want 15ms", got)
		}
		if store.Len() != 1 {
			t.Errorf("store has %d blocks after force, want 1", store.Len())
		}
		recs, err := l.Records()
		if err != nil || len(recs) != 1 || recs[0].TID != testTID(1) {
			t.Errorf("Records() = %v, %v", recs, err)
		}
	})
	k.Run()
	if msg := k.Deadlocked(); msg != "" {
		t.Fatal(msg)
	}
}

func TestForceAlreadyDurableIsFree(t *testing.T) {
	k := sim.New(1)
	k.Go("main", func() {
		l := Open(k, NewMemStore(), Config{ForceLatency: 15 * time.Millisecond})
		defer l.Close()
		lsn, _ := l.Append(&Record{Type: RecCommit, TID: testTID(1)})
		l.Force(lsn)
		start := k.Now()
		l.Force(lsn)
		if got := k.Now() - start; got != 0 {
			t.Errorf("second force of same LSN took %v, want 0", got)
		}
		if l.DeviceWrites() != 1 {
			t.Errorf("DeviceWrites = %d, want 1", l.DeviceWrites())
		}
	})
	k.Run()
}

func TestGroupCommitBatchesConcurrentForces(t *testing.T) {
	// 10 committers force concurrently. With group commit the device
	// should see at most 2 writes (the first force plus one batch);
	// without, 10.
	run := func(gc bool) (writes int, elapsed time.Duration) {
		k := sim.New(1)
		var l *Log
		k.Go("main", func() {
			l = Open(k, NewMemStore(), Config{GroupCommit: gc, ForceLatency: 15 * time.Millisecond})
			for i := 0; i < 10; i++ {
				i := i
				k.Go(fmt.Sprintf("committer%d", i), func() {
					lsn, _ := l.Append(&Record{Type: RecCommit, TID: testTID(uint32(i))})
					l.Force(lsn)
				})
			}
		})
		elapsed = k.Run()
		writes = l.DeviceWrites()
		l.Close()
		return
	}
	gcWrites, gcTime := run(true)
	plainWrites, plainTime := run(false)
	if gcWrites > 2 {
		t.Errorf("group commit used %d device writes for 10 committers, want ≤2", gcWrites)
	}
	if plainWrites != 10 {
		t.Errorf("ungrouped log used %d device writes, want 10", plainWrites)
	}
	if gcTime >= plainTime {
		t.Errorf("group commit not faster: %v vs %v", gcTime, plainTime)
	}
}

func TestWaitDurableSatisfiedByOthersForce(t *testing.T) {
	k := sim.New(1)
	k.Go("main", func() {
		l := Open(k, NewMemStore(), Config{GroupCommit: true, ForceLatency: 15 * time.Millisecond})
		defer l.Close()
		lazy, _ := l.Append(&Record{Type: RecCommit, TID: testTID(1)})
		done := false
		k.Go("waiter", func() {
			if err := l.WaitDurable(lazy); err != nil {
				t.Errorf("WaitDurable: %v", err)
			}
			done = true
		})
		k.Sleep(time.Millisecond)
		forced, _ := l.Append(&Record{Type: RecCommit, TID: testTID(2)})
		l.Force(forced)
		k.Sleep(time.Millisecond)
		if !done {
			t.Error("WaitDurable not satisfied by a covering force")
		}
	})
	k.Run()
}

func TestFlusherMakesLazyRecordsDurable(t *testing.T) {
	k := sim.New(1)
	k.Go("main", func() {
		l := Open(k, NewMemStore(), Config{
			ForceLatency:  15 * time.Millisecond,
			FlushInterval: 50 * time.Millisecond,
		})
		defer l.Close()
		lsn, _ := l.Append(&Record{Type: RecCommit, TID: testTID(1)})
		start := k.Now()
		if err := l.WaitDurable(lsn); err != nil {
			t.Errorf("WaitDurable: %v", err)
		}
		// One flush interval plus the device write.
		if got := k.Now() - start; got != 65*time.Millisecond {
			t.Errorf("lazy durability took %v, want 65ms", got)
		}
	})
	k.Run()
}

func TestCloseLosesBufferedRecords(t *testing.T) {
	k := sim.New(1)
	store := NewMemStore()
	k.Go("main", func() {
		l := Open(k, store, Config{ForceLatency: time.Millisecond})
		forced, _ := l.Append(&Record{Type: RecPrepare, TID: testTID(1)})
		l.Force(forced)
		l.Append(&Record{Type: RecCommit, TID: testTID(1)}) // never forced
		l.Close()
		recs, err := l.Records()
		if err != nil {
			t.Errorf("Records: %v", err)
		}
		if len(recs) != 1 || recs[0].Type != RecPrepare {
			t.Errorf("after crash got %d records, want only the forced PREPARE", len(recs))
		}
	})
	k.Run()
}

func TestOperationsAfterCloseFail(t *testing.T) {
	k := sim.New(1)
	k.Go("main", func() {
		l := Open(k, NewMemStore(), Config{ForceLatency: time.Millisecond})
		lsn, _ := l.Append(&Record{Type: RecCommit, TID: testTID(1)})
		l.Close()
		if _, err := l.Append(&Record{Type: RecCommit, TID: testTID(2)}); err != ErrClosed {
			t.Errorf("Append after close: %v, want ErrClosed", err)
		}
		if err := l.Force(lsn); err != ErrClosed {
			t.Errorf("Force after close: %v, want ErrClosed", err)
		}
	})
	k.Run()
	if msg := k.Deadlocked(); msg != "" {
		t.Fatal(msg)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Append(marshal(&Record{LSN: uint64(i + 1), Type: RecCommit, TID: testTID(uint32(i))})); err != nil {
			t.Fatal(err)
		}
	}
	blocks, err := s.Blocks()
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 5 {
		t.Fatalf("got %d blocks, want 5", len(blocks))
	}
	s.Close()

	// Reopen: contents must survive.
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	blocks, err = s2.Blocks()
	if err != nil || len(blocks) != 5 {
		t.Fatalf("after reopen: %d blocks, err %v", len(blocks), err)
	}
	rec, err := unmarshal(blocks[4])
	if err != nil || rec.LSN != 5 {
		t.Fatalf("block 4 = %+v, %v", rec, err)
	}
	// Appends after reopen must continue the log.
	if err := s2.Append(marshal(&Record{LSN: 6, Type: RecAbort, TID: testTID(9)})); err != nil {
		t.Fatal(err)
	}
	blocks, _ = s2.Blocks()
	if len(blocks) != 6 {
		t.Fatalf("after reopen+append: %d blocks, want 6", len(blocks))
	}
}

// readRecords opens a log over store inside a kernel and calls
// Records once.
func readRecords(store Store) ([]*Record, error) {
	var recs []*Record
	var err error
	k := sim.New(1)
	k.Go("main", func() {
		l := Open(k, store, Config{})
		defer l.Close()
		recs, err = l.Records()
	})
	k.Run()
	return recs, err
}

func TestRecordsTruncatesTornTail(t *testing.T) {
	// A bad *final* block is a torn write: the record was never
	// acknowledged, so recovery truncates it — and repairs the store,
	// so later appends never sit behind the damage.
	store := NewMemStore()
	store.Append(marshal(&Record{LSN: 1, Type: RecCommit, TID: testTID(1)}))
	full := marshal(&Record{LSN: 2, Type: RecCommit, TID: testTID(2)})
	store.Append(full[:len(full)/2]) // torn tail
	recs, err := readRecords(store)
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	if len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("got %d records, want the 1 good one", len(recs))
	}
	if store.Len() != 1 {
		t.Errorf("store holds %d blocks after repair, want 1", store.Len())
	}
	// The repaired store accepts appends and reads back cleanly.
	store.Append(marshal(&Record{LSN: 2, Type: RecAbort, TID: testTID(3)}))
	recs, err = readRecords(store)
	if err != nil || len(recs) != 2 {
		t.Fatalf("after repair+append: %d records, err %v", len(recs), err)
	}
}

func TestRecordsBitFlippedTailTruncated(t *testing.T) {
	// A final block whose CRC fails (one flipped bit) is
	// indistinguishable from a torn write and gets the same repair.
	store := NewMemStore()
	store.Append(marshal(&Record{LSN: 1, Type: RecCommit, TID: testTID(1)}))
	bad := marshal(&Record{LSN: 2, Type: RecCommit, TID: testTID(2)})
	bad[len(bad)-1] ^= 0x01 // flip a bit inside the CRC itself
	store.Append(bad)
	recs, err := readRecords(store)
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if store.Len() != 1 {
		t.Errorf("store holds %d blocks after repair, want 1", store.Len())
	}
}

func TestRecordsFailsOnMidLogCorruption(t *testing.T) {
	// A corrupt block with good blocks after it cannot be a torn
	// write — it is silent corruption of acknowledged history, and
	// recovery must refuse rather than quietly drop durable records.
	store := NewMemStore()
	store.Append(marshal(&Record{LSN: 1, Type: RecCommit, TID: testTID(1)}))
	store.Append([]byte{1, 2, 3}) // damaged, but not the tail
	store.Append(marshal(&Record{LSN: 3, Type: RecCommit, TID: testTID(3)}))
	_, err := readRecords(store)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Records err = %v, want ErrCorrupt", err)
	}
	// The error names the last good LSN so an operator knows what
	// survives.
	if !strings.Contains(err.Error(), "last good LSN 1") {
		t.Errorf("error %q does not name the last good LSN", err)
	}
	if store.Len() != 3 {
		t.Errorf("store modified on refusal: %d blocks, want 3", store.Len())
	}
}

func TestRecordsFailsOnBitFlipMidLog(t *testing.T) {
	// Same refusal when the damage is a single flipped bit in an
	// interior block's CRC.
	store := NewMemStore()
	bad := marshal(&Record{LSN: 1, Type: RecCommit, TID: testTID(1)})
	bad[len(bad)-1] ^= 0x01
	store.Append(bad)
	store.Append(marshal(&Record{LSN: 2, Type: RecCommit, TID: testTID(2)}))
	_, err := readRecords(store)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Records err = %v, want ErrCorrupt", err)
	}
}
