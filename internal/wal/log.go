package wal

import (
	"errors"
	"fmt"
	"time"

	"camelot/internal/rt"
	"camelot/internal/tid"
	"camelot/internal/trace"
)

// ErrClosed is returned by log operations after Close or a simulated
// crash.
var ErrClosed = errors.New("wal: log closed")

// Config controls the logger's batching and timing.
type Config struct {
	// GroupCommit enables log batching: one device write satisfies
	// every force request pending when the write is issued, and also
	// carries any records appended since (§3.5). With it disabled,
	// each force request issues its own device write, modeling a
	// system that does one synchronous I/O per committing
	// transaction.
	GroupCommit bool
	// ForceLatency is the device-write time. The paper charges 15 ms
	// per log force (Table 2); a raw disk track write was 26.8 ms
	// (Table 1).
	ForceLatency time.Duration
	// FlushInterval, if positive, periodically forces the tail of the
	// log so lazily written records (e.g. a subordinate's non-forced
	// commit record under the delayed-commit optimization) become
	// durable without an explicit force.
	FlushInterval time.Duration
	// Site identifies this log's site in trace events.
	Site tid.SiteID
	// Trace, if non-nil, receives append/device-write/flush events.
	Trace *trace.Collector
}

// Log is one site's stable-storage log. Appends are buffered; Force
// makes everything up to an LSN durable; WaitDurable observes
// durability without demanding a device write. A single writer
// thread owns the device, which is where group commit happens.
type Log struct {
	r     rt.Runtime
	store Store
	cfg   Config

	mu   rt.Mutex
	cond rt.Cond

	buffered []*Record // appended, not yet durable, ascending LSN
	oldest   rt.Time   // append time of buffered[0]
	nextLSN  uint64    // next LSN to assign
	durable  uint64    // highest durable LSN
	reqs     []uint64  // pending force targets, FIFO
	closed   bool

	deviceWrites int // number of device writes issued (stats)
	appends      int
}

// Open starts a log over store. Call Close when done.
func Open(r rt.Runtime, store Store, cfg Config) *Log {
	l := &Log{r: r, store: store, cfg: cfg, nextLSN: 1}
	l.mu = r.NewMutex()
	l.cond = r.NewCond(l.mu)
	r.Go("wal-writer", l.writer)
	if cfg.FlushInterval > 0 {
		r.Go("wal-flusher", l.flusher)
	}
	return l
}

// Append buffers rec and assigns its LSN. The record is not durable
// until a force or flush covers it ("this record is logged as late as
// possible", Figure 1 step 5).
func (l *Log) Append(rec *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	rec.LSN = l.nextLSN
	l.nextLSN++
	l.appends++
	if len(l.buffered) == 0 {
		l.oldest = l.r.Now()
	}
	l.buffered = append(l.buffered, rec)
	if l.cfg.Trace != nil {
		l.cfg.Trace.LogAppend(l.cfg.Site, rec.TID, rec.Type.String(), len(marshal(rec)))
	}
	return rec.LSN, nil
}

// Force blocks until every record with LSN ≤ lsn is durable, issuing
// a device write if needed. This is the 15 ms primitive on the
// critical path of every update commit.
func (l *Log) Force(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn >= l.nextLSN {
		lsn = l.nextLSN - 1
	}
	if lsn <= l.durable {
		return nil
	}
	if l.closed {
		return ErrClosed
	}
	l.reqs = append(l.reqs, lsn)
	l.cond.Broadcast()
	for l.durable < lsn {
		if l.closed {
			return ErrClosed
		}
		l.cond.Wait()
	}
	return nil
}

// ForceAll forces everything appended so far.
func (l *Log) ForceAll() error {
	l.mu.Lock()
	lsn := l.nextLSN - 1
	l.mu.Unlock()
	return l.Force(lsn)
}

// WaitDurable blocks until every record with LSN ≤ lsn is durable but
// does not demand a device write: durability arrives via someone
// else's force or the background flusher. The optimized commit
// protocol uses this to delay the commit-ack until the subordinate's
// lazy commit record is stable (§3.2).
func (l *Log) WaitDurable(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn >= l.nextLSN {
		lsn = l.nextLSN - 1
	}
	for l.durable < lsn {
		if l.closed {
			return ErrClosed
		}
		l.cond.Wait()
	}
	return nil
}

// Durable returns the highest durable LSN.
func (l *Log) Durable() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// DeviceWrites reports how many device writes the log has issued —
// the denominator of every throughput analysis in the paper.
func (l *Log) DeviceWrites() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.deviceWrites
}

// Appends reports how many records have been appended.
func (l *Log) Appends() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends
}

// Records reads back every durable record, in LSN order. Buffered
// (never-forced) records are absent — exactly what a crash loses.
//
// A block that fails its CRC is classified by position. The *final*
// block is a torn tail: the write was in flight when the site died, so
// its record was never acknowledged and recovery may safely truncate
// it (the store is repaired in place, so later appends never sit
// behind the damage). A corrupt block with good blocks *after* it
// cannot be a torn write — an append-only log never writes behind its
// tail — so it is silent media corruption of acknowledged history, and
// recovery must fail loudly with ErrCorrupt rather than quietly
// dropping durable records.
func (l *Log) Records() ([]*Record, error) {
	blocks, err := l.store.Blocks()
	if err != nil {
		return nil, err
	}
	out := make([]*Record, 0, len(blocks))
	for i, b := range blocks {
		rec, recErr := unmarshal(b)
		if recErr != nil {
			if i == len(blocks)-1 {
				// Clean torn tail: truncate and recover.
				if err := l.store.DropTail(1); err != nil {
					return nil, fmt.Errorf("wal: dropping torn tail: %w", err)
				}
				return out, nil
			}
			lastGood := uint64(0)
			if len(out) > 0 {
				lastGood = out[len(out)-1].LSN
			}
			return nil, fmt.Errorf("%w: mid-log corruption in block %d (last good LSN %d): %v",
				ErrCorrupt, i, lastGood, recErr)
		}
		out = append(out, rec)
	}
	return out, nil
}

// Truncate drops the first n durable records; the disk manager calls
// it after a checkpoint has absorbed them into the page image.
func (l *Log) Truncate(n int) error {
	return l.store.Truncate(n)
}

// Close stops the writer and flusher threads and fails all pending
// and future operations. It does not force buffered records: closing
// is a crash as far as durability is concerned, which is what the
// failure experiments need.
func (l *Log) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	l.cond.Broadcast()
}

// writer is the single thread that owns the log device.
func (l *Log) writer() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		for len(l.reqs) == 0 && !l.closed {
			l.cond.Wait()
		}
		if l.closed {
			return
		}
		var target uint64
		if l.cfg.GroupCommit {
			// Group commit: one write covers every pending request
			// and everything appended so far.
			target = l.nextLSN - 1
			l.reqs = l.reqs[:0]
		} else {
			target = l.reqs[0]
			l.reqs = l.reqs[1:]
		}
		if target <= l.durable {
			continue // an earlier write already covered this request
		}
		// Collect the batch: buffered records with LSN ≤ target.
		n := 0
		for n < len(l.buffered) && l.buffered[n].LSN <= target {
			n++
		}
		batch := l.buffered[:n]

		// The device write happens outside the lock so appends and
		// new force requests can accumulate — that accumulation is
		// precisely what group commit harvests.
		l.mu.Unlock()
		if l.cfg.ForceLatency > 0 {
			l.r.Sleep(l.cfg.ForceLatency)
		}
		failed := false
		bytes := 0
		for _, rec := range batch {
			b := marshal(rec)
			bytes += len(b)
			if err := l.store.Append(b); err != nil {
				failed = true
				break
			}
		}
		l.cfg.Trace.DeviceWrite(l.cfg.Site, len(batch), bytes)
		l.mu.Lock()
		if failed {
			l.closed = true
			l.cond.Broadcast()
			return
		}
		l.buffered = l.buffered[n:]
		if target > l.durable {
			l.durable = target
		}
		l.deviceWrites++
		l.cond.Broadcast()
	}
}

// flusher periodically forces the log tail so lazy records become
// durable; this bounds how long a delayed commit-ack can wait. Only
// records that have aged a full interval are flushed, so the timer
// never races a transaction that is about to force its own tail —
// records on their way to an imminent force ride that force instead.
func (l *Log) flusher() {
	for {
		l.r.Sleep(l.cfg.FlushInterval)
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		if len(l.buffered) > 0 && l.r.Now()-l.oldest >= l.cfg.FlushInterval {
			l.cfg.Trace.LogFlush(l.cfg.Site)
			l.reqs = append(l.reqs, l.nextLSN-1)
			l.cond.Broadcast()
		}
		l.mu.Unlock()
	}
}
