package wal

import (
	"errors"
	"testing"
)

func TestFailStoreFailsAtProgrammedAppend(t *testing.T) {
	fs := NewFailStore(NewMemStore(), 2)
	if err := fs.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append([]byte("c")); !errors.Is(err, ErrDiskFailed) {
		t.Fatalf("append 2 = %v, want ErrDiskFailed", err)
	}
	if !fs.Failed() {
		t.Fatal("store not marked failed")
	}
	// Dead is sticky for mutations…
	if err := fs.Append([]byte("d")); !errors.Is(err, ErrDiskFailed) {
		t.Fatalf("append after death = %v", err)
	}
	if err := fs.Truncate(1); !errors.Is(err, ErrDiskFailed) {
		t.Fatalf("truncate after death = %v", err)
	}
	if err := fs.DropTail(1); !errors.Is(err, ErrDiskFailed) {
		t.Fatalf("droptail after death = %v", err)
	}
	// …but the written blocks still read back.
	blocks, err := fs.Blocks()
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 || string(blocks[0]) != "a" || string(blocks[1]) != "b" {
		t.Fatalf("blocks = %q", blocks)
	}
}

func TestFailStoreNegativeNeverFails(t *testing.T) {
	fs := NewFailStore(NewMemStore(), -1)
	for i := 0; i < 100; i++ {
		if err := fs.Append([]byte("x")); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := fs.Truncate(50); err != nil {
		t.Fatal(err)
	}
	if fs.Failed() {
		t.Fatal("transparent wrapper reported failure")
	}
}
