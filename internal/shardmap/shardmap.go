// Package shardmap partitions the keyspace of a Camelot deployment
// into shards and assigns each shard a home site. The map is the
// data tier's routing artifact: clients hash a key to its shard,
// route the operation to the shard's home site, and derive a
// transaction's commit participant set from the home sites of the
// shards it touched.
//
// Two properties are load-bearing and pinned by tests:
//
//   - Determinism. ShardOf is a pure function of the key bytes
//     (FNV-1a), and New builds the same placement from the same
//     inputs in every process, so ctl drivers, camelot-node daemons,
//     and camelot-cluster agree on where every key lives without
//     exchanging the map — and when they do exchange it (the control
//     plane's shardmap op), byte-identical serialization makes
//     agreement checkable with bytes.Equal.
//
//   - Reduction. The one-shard Default map places the whole keyspace
//     on a single site under the pre-sharding server name, so a
//     deployment that never asks for shards behaves exactly as the
//     unsharded code did — same WAL record server names, same
//     routing, same goldens.
//
// The map is versioned (Version plus the shardmap/v1 schema tag) so a
// follow-on can introduce online reconfiguration in the style of
// Bravo et al.'s "Reconfigurable Atomic Transaction Commit": a new
// placement is a new Version of the same artifact, not a new wire
// format.
package shardmap

import (
	"bytes"
	"encoding/json"
	"fmt"

	"camelot/internal/tid"
)

// Schema identifies the serialized form.
const Schema = "shardmap/v1"

// LegacyServer is the data-server name of the pre-sharding
// deployments; the one-shard map keeps it so ShardCount=1 reduces to
// the old behaviour byte-for-byte (WAL update records name their
// server).
const LegacyServer = "store"

// ShardID names one shard; shards are numbered 0..Shards-1.
type ShardID uint32

// Map is a versioned partitioning of the keyspace: key → shard by
// deterministic hash, shard → home site by the placement table.
type Map struct {
	// Version counts reconfigurations; a deployment's live map is the
	// highest version every member agrees on.
	Version uint32
	// Shards is the shard count (ShardCount); at least 1.
	Shards uint32
	// Placement maps each shard to its home site. Entry s is shard
	// s's home; site 0 marks an unplaced shard, whose keys no site
	// covers (operations on them are rejected loudly, never routed).
	Placement []tid.SiteID
}

// New builds version v of a map spreading shards round-robin over the
// given sites, in the order given. Every caller that passes the same
// arguments gets an identical map — the property that lets each
// camelot-node build its own copy from flags and still agree with the
// driver's.
func New(v uint32, shards int, sites []tid.SiteID) (*Map, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shardmap: shard count %d, want >= 1", shards)
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("shardmap: no sites to place %d shards on", shards)
	}
	for _, s := range sites {
		if s == 0 {
			return nil, fmt.Errorf("shardmap: site id 0 is reserved")
		}
	}
	m := &Map{Version: v, Shards: uint32(shards), Placement: make([]tid.SiteID, shards)}
	for i := 0; i < shards; i++ {
		m.Placement[i] = sites[i%len(sites)]
	}
	return m, nil
}

// Default returns the one-shard map that reproduces the pre-sharding
// data tier: every key homes at site, served by the legacy "store"
// server.
func Default(site tid.SiteID) *Map {
	return &Map{Version: 1, Shards: 1, Placement: []tid.SiteID{site}}
}

// FNV-1a 64-bit parameters (FNV is the standard choice for a
// deterministic, dependency-free string hash; the distribution tests
// pin that it spreads the workload's key shapes acceptably).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// ShardOf hashes key to its shard: FNV-1a over the key bytes, modulo
// the shard count. Pure function of (key, Shards) — identical in
// every process, every run.
func (m *Map) ShardOf(key string) ShardID {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return ShardID(h % uint64(m.Shards))
}

// Home returns shard s's home site, or 0 if s is unplaced or out of
// range.
func (m *Map) Home(s ShardID) tid.SiteID {
	if int(s) >= len(m.Placement) {
		return 0
	}
	return m.Placement[s]
}

// SiteOf returns the home site of key's shard; 0 means no site
// covers the key (an unplaced shard).
func (m *Map) SiteOf(key string) tid.SiteID {
	return m.Home(m.ShardOf(key))
}

// ServerOf names shard s's data server. A one-shard map keeps the
// legacy name so existing WALs, oracles, and goldens read unchanged;
// larger maps use shard-scoped names.
func (m *Map) ServerOf(s ShardID) string {
	if m.Shards == 1 {
		return LegacyServer
	}
	return fmt.Sprintf("shard%d", uint32(s))
}

// ServerFor names the data server for key's shard.
func (m *Map) ServerFor(key string) string {
	return m.ServerOf(m.ShardOf(key))
}

// ShardsAt lists the shards homed at site, in ascending shard order.
func (m *Map) ShardsAt(site tid.SiteID) []ShardID {
	var out []ShardID
	for i, home := range m.Placement {
		if home == site && site != 0 {
			out = append(out, ShardID(i))
		}
	}
	return out
}

// Sites lists the distinct placed home sites in ascending order.
func (m *Map) Sites() []tid.SiteID {
	var out []tid.SiteID
	for _, home := range m.Placement {
		if home == 0 {
			continue
		}
		dup := false
		for _, s := range out {
			dup = dup || s == home
		}
		if !dup {
			out = append(out, home)
		}
	}
	for i := 1; i < len(out); i++ { // insertion sort; site counts are small
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Route groups keys by home site: the participant sites in ascending
// order and, per site, its keys in input order. Keys on unplaced
// shards are returned separately so the caller can reject them before
// touching the cluster.
func (m *Map) Route(keys []string) (sites []tid.SiteID, bySite map[tid.SiteID][]string, uncovered []string) {
	bySite = make(map[tid.SiteID][]string)
	for _, k := range keys {
		home := m.SiteOf(k)
		if home == 0 {
			uncovered = append(uncovered, k)
			continue
		}
		if len(bySite[home]) == 0 {
			sites = append(sites, home)
		}
		bySite[home] = append(bySite[home], k)
	}
	for i := 1; i < len(sites); i++ {
		for j := i; j > 0 && sites[j-1] > sites[j]; j-- {
			sites[j-1], sites[j] = sites[j], sites[j-1]
		}
	}
	return sites, bySite, uncovered
}

// wireMap is the serialized form; field order fixes the byte layout.
type wireMap struct {
	Schema    string   `json:"schema"`
	Version   uint32   `json:"version"`
	Shards    uint32   `json:"shards"`
	Placement []uint32 `json:"placement"`
}

// Marshal serializes the map canonically: same map, same bytes, in
// every process. The form is one line of shardmap/v1 JSON with a
// trailing newline.
func (m *Map) Marshal() ([]byte, error) {
	if m.Shards < 1 || int(m.Shards) != len(m.Placement) {
		return nil, fmt.Errorf("shardmap: malformed map: %d shards, %d placement entries",
			m.Shards, len(m.Placement))
	}
	w := wireMap{Schema: Schema, Version: m.Version, Shards: m.Shards,
		Placement: make([]uint32, len(m.Placement))}
	for i, s := range m.Placement {
		w.Placement[i] = uint32(s)
	}
	b, err := json.Marshal(&w)
	if err != nil {
		return nil, fmt.Errorf("shardmap: marshal: %w", err)
	}
	return append(b, '\n'), nil
}

// Unmarshal parses a serialized map strictly: unknown fields and
// schema mismatches are errors, so disagreeing deployments fail
// loudly instead of silently routing to different homes.
func Unmarshal(b []byte) (*Map, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var w wireMap
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("shardmap: unmarshal: %w", err)
	}
	if w.Schema != Schema {
		return nil, fmt.Errorf("shardmap: schema %q, want %q", w.Schema, Schema)
	}
	if w.Shards < 1 || int(w.Shards) != len(w.Placement) {
		return nil, fmt.Errorf("shardmap: malformed map: %d shards, %d placement entries",
			w.Shards, len(w.Placement))
	}
	m := &Map{Version: w.Version, Shards: w.Shards, Placement: make([]tid.SiteID, len(w.Placement))}
	for i, s := range w.Placement {
		m.Placement[i] = tid.SiteID(s)
	}
	return m, nil
}

// Equal reports whether two maps route identically (same version,
// shard count, and placement).
func (m *Map) Equal(o *Map) bool {
	if o == nil || m.Version != o.Version || m.Shards != o.Shards ||
		len(m.Placement) != len(o.Placement) {
		return false
	}
	for i := range m.Placement {
		if m.Placement[i] != o.Placement[i] {
			return false
		}
	}
	return true
}
