package shardmap

import (
	"bytes"
	"fmt"
	"testing"

	"camelot/internal/tid"
)

func mustNew(t *testing.T, v uint32, shards int, sites []tid.SiteID) *Map {
	t.Helper()
	m, err := New(v, shards, sites)
	if err != nil {
		t.Fatalf("New(%d, %d, %v): %v", v, shards, sites, err)
	}
	return m
}

func TestNewRoundRobinPlacement(t *testing.T) {
	m := mustNew(t, 1, 4, []tid.SiteID{1, 2, 3})
	want := []tid.SiteID{1, 2, 3, 1}
	for i, site := range want {
		if got := m.Home(ShardID(i)); got != site {
			t.Errorf("Home(%d) = %v, want %v", i, got, site)
		}
	}
	if got := m.Sites(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Sites() = %v, want [1 2 3]", got)
	}
	if got := m.ShardsAt(1); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("ShardsAt(1) = %v, want [0 3]", got)
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	if _, err := New(1, 0, []tid.SiteID{1}); err == nil {
		t.Error("New with 0 shards: want error")
	}
	if _, err := New(1, 2, nil); err == nil {
		t.Error("New with no sites: want error")
	}
	if _, err := New(1, 2, []tid.SiteID{1, 0}); err == nil {
		t.Error("New with site 0: want error")
	}
}

// TestDefaultOneShardReducesToLegacyRouting pins the reduction the
// whole refactor leans on: the default one-shard map routes every key
// to the map's single site under the pre-sharding server name
// ("store"), exactly as the pre-refactor code — which had one data
// server named "store" per site and no routing at all — behaved.
func TestDefaultOneShardReducesToLegacyRouting(t *testing.T) {
	m := Default(7)
	if m.Shards != 1 || m.Version != 1 {
		t.Fatalf("Default = %+v, want 1 shard, version 1", m)
	}
	keys := []string{"", "a", "alice", "txn0000", "oracle-probe", "k1234", "hot0"}
	for i := 0; i < 100; i++ {
		keys = append(keys, fmt.Sprintf("t%04d.k%d", i, i%3))
	}
	for _, k := range keys {
		if got := m.SiteOf(k); got != 7 {
			t.Fatalf("SiteOf(%q) = %v, want 7", k, got)
		}
		if got := m.ServerFor(k); got != LegacyServer {
			t.Fatalf("ServerFor(%q) = %q, want %q", k, got, LegacyServer)
		}
		if got := m.ShardOf(k); got != 0 {
			t.Fatalf("ShardOf(%q) = %d, want 0", k, got)
		}
	}
}

// TestMarshalDeterministic pins byte-identical serialization: two
// independently built maps from the same inputs marshal to the same
// bytes (the property that lets every camelot-node build its own map
// from flags while the driver checks agreement with bytes.Equal), and
// the byte layout itself is pinned so a schema drift cannot sneak in.
func TestMarshalDeterministic(t *testing.T) {
	a := mustNew(t, 3, 4, []tid.SiteID{1, 2, 3})
	b := mustNew(t, 3, 4, []tid.SiteID{1, 2, 3})
	ab, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("same inputs, different bytes:\n%s\n%s", ab, bb)
	}
	const want = `{"schema":"shardmap/v1","version":3,"shards":4,"placement":[1,2,3,1]}` + "\n"
	if string(ab) != want {
		t.Fatalf("Marshal = %q, want pinned %q", ab, want)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	m := mustNew(t, 9, 16, []tid.SiteID{4, 2, 9})
	b, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("round trip: got %+v, want %+v", got, m)
	}
}

func TestUnmarshalStrict(t *testing.T) {
	cases := []string{
		`{"schema":"shardmap/v2","version":1,"shards":1,"placement":[1]}`,
		`{"schema":"shardmap/v1","version":1,"shards":2,"placement":[1]}`,
		`{"schema":"shardmap/v1","version":1,"shards":0,"placement":[]}`,
		`{"schema":"shardmap/v1","version":1,"shards":1,"placement":[1],"extra":true}`,
	}
	for _, c := range cases {
		if _, err := Unmarshal([]byte(c)); err == nil {
			t.Errorf("Unmarshal(%s): want error", c)
		}
	}
}

// TestShardOfStable pins concrete hash routings so the hash function
// can never change silently: a changed ShardOf would re-home existing
// deployments' keys.
func TestShardOfStable(t *testing.T) {
	m := mustNew(t, 1, 8, []tid.SiteID{1, 2, 3, 4})
	pinned := map[string]ShardID{
		"":      5,
		"alice": 7,
		"k0000": 2,
		"hot3":  5,
	}
	for k, want := range pinned {
		if got := m.ShardOf(k); got != want {
			t.Errorf("ShardOf(%q) = %d, want %d (hash function changed?)", k, got, want)
		}
	}
}

func TestShardOfSpreads(t *testing.T) {
	m := mustNew(t, 1, 4, []tid.SiteID{1, 2, 3})
	counts := make([]int, m.Shards)
	const n = 4000
	for i := 0; i < n; i++ {
		counts[m.ShardOf(fmt.Sprintf("t%04d.k%d", i/3, i%3))]++
	}
	for s, c := range counts {
		if c < n/int(m.Shards)/2 || c > n/int(m.Shards)*2 {
			t.Errorf("shard %d holds %d of %d keys; hash is badly skewed", s, c, n)
		}
	}
}

func TestRoute(t *testing.T) {
	m := &Map{Version: 1, Shards: 4, Placement: []tid.SiteID{3, 1, 0, 2}}
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	sites, bySite, uncovered := m.Route(keys)
	for i := 1; i < len(sites); i++ {
		if sites[i-1] >= sites[i] {
			t.Fatalf("Route sites not ascending: %v", sites)
		}
	}
	seen := 0
	for _, s := range sites {
		for _, k := range bySite[s] {
			if m.SiteOf(k) != s {
				t.Errorf("key %q grouped at site %v, homes at %v", k, s, m.SiteOf(k))
			}
			seen++
		}
	}
	for _, k := range uncovered {
		if m.SiteOf(k) != 0 {
			t.Errorf("key %q reported uncovered but homes at %v", k, m.SiteOf(k))
		}
		seen++
	}
	if seen != len(keys) {
		t.Errorf("Route accounted for %d of %d keys", seen, len(keys))
	}
}

func TestServerNaming(t *testing.T) {
	m := mustNew(t, 1, 4, []tid.SiteID{1, 2})
	if got := m.ServerOf(3); got != "shard3" {
		t.Errorf("ServerOf(3) = %q, want shard3", got)
	}
	one := Default(1)
	if got := one.ServerOf(0); got != LegacyServer {
		t.Errorf("one-shard ServerOf(0) = %q, want %q", got, LegacyServer)
	}
}

func TestEqual(t *testing.T) {
	a := mustNew(t, 1, 4, []tid.SiteID{1, 2, 3})
	b := mustNew(t, 1, 4, []tid.SiteID{1, 2, 3})
	if !a.Equal(b) {
		t.Error("identical maps not Equal")
	}
	c := mustNew(t, 2, 4, []tid.SiteID{1, 2, 3})
	if a.Equal(c) {
		t.Error("different versions Equal")
	}
	d := mustNew(t, 1, 4, []tid.SiteID{2, 1, 3})
	if a.Equal(d) {
		t.Error("different placements Equal")
	}
}
