package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned fixed-width text tables for the benchmark
// harness, matching the row/column layout of the paper's tables.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells; each argument is
// formatted with %v unless it is a float64, which gets %.1f.
func (t *Table) AddRowf(cells ...any) {
	strs := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			strs[i] = fmt.Sprintf("%.1f", v)
		default:
			strs[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(strs...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Title returns the table's title line.
func (t *Table) Title() string { return t.title }

// Header returns a copy of the column headers.
func (t *Table) Header() []string {
	return append([]string(nil), t.header...)
}

// Rows returns a copy of the table body.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}
