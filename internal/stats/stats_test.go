package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestMeanAndStdDev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample stddev with n-1 denominator: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := s.StdDev(); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
}

func TestEmptySampleIsSafe(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Error("empty sample returned nonzero statistics")
	}
}

func TestSingleValue(t *testing.T) {
	var s Sample
	s.Add(7)
	if s.Mean() != 7 || s.StdDev() != 0 || s.Min() != 7 || s.Max() != 7 {
		t.Errorf("single-value stats wrong: mean=%v sd=%v", s.Mean(), s.StdDev())
	}
}

func TestAddDurationConvertsToMilliseconds(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Microsecond)
	if got := s.Mean(); got != 1.5 {
		t.Errorf("AddDuration(1.5ms) → mean %v, want 1.5", got)
	}
}

func TestMinMaxPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("P100 = %v", got)
	}
	if got := s.Percentile(50); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("P50 = %v, want 50.5", got)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		for i := 0; i < 1+rng.Intn(50); i++ {
			s.Add(rng.NormFloat64() * 100)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return s.Percentile(0) == s.Min() && s.Percentile(100) == s.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStdDevNonNegativeProperty(t *testing.T) {
	prop := func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
		}
		return s.StdDev() >= 0 && s.Min() <= s.Max() || s.N() == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryFormat(t *testing.T) {
	var s Sample
	s.Add(10)
	s.Add(20)
	got := s.Summary()
	if !strings.Contains(got, "15.0 ms") || !strings.Contains(got, "n=2") {
		t.Errorf("Summary = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	out := tb.String()
	if !strings.Contains(out, "Title") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "alpha") || !strings.Contains(lines[4], "2.5") {
		t.Errorf("rows wrong:\n%s", out)
	}
	// Columns align: "name" and "alpha" start at the same offset.
	if strings.Index(lines[1], "value") != strings.Index(lines[3], "1") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x", "overflow")
	if strings.Contains(tb.String(), "overflow") {
		t.Error("cell beyond header width rendered")
	}
}
