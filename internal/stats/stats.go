// Package stats provides the small statistics and table-rendering
// toolkit used by the experiment harness: sample accumulation,
// mean/standard deviation (the paper reports both for every latency
// figure), and percentiles.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample accumulates observations of a scalar quantity.
type Sample struct {
	values []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddDuration records a duration observation in milliseconds, the
// unit the paper uses throughout.
func (s *Sample) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// Clone returns an independent copy of the sample, so an accumulator
// can hand out snapshots while it keeps observing.
func (s *Sample) Clone() *Sample {
	out := &Sample{values: make([]float64, len(s.values)), sorted: s.sorted}
	copy(out.values, s.values)
	return out
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the sample standard deviation (n-1 denominator), or
// 0 for fewer than two observations.
func (s *Sample) StdDev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	min := s.values[0]
	for _, v := range s.values[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	max := s.values[0]
	for _, v := range s.values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank interpolation, or 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[len(s.values)-1]
	}
	rank := p / 100 * float64(len(s.values)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Summary renders "mean ± stddev (n)" in the paper's style.
func (s *Sample) Summary() string {
	return fmt.Sprintf("%.1f ms ± %.1f (n=%d)", s.Mean(), s.StdDev(), s.N())
}
