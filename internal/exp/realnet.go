package exp

import (
	"fmt"
	"sync/atomic"
	"time"

	"camelot/internal/core"
	"camelot/internal/rt"
	"camelot/internal/server"
	"camelot/internal/stats"
	"camelot/internal/tid"
	"camelot/internal/transport"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

// Like the R1 scaling sweep, this experiment measures the
// reproduction rather than the paper: the same commitment protocols
// the simulator charges with modeled datagram latencies here run over
// real loopback UDP sockets on the ordinary Go runtime — real
// marshaling, real kernel round trips, real loss semantics (none of
// it guaranteed). The simulated tables answer "what did the paper's
// testbed see"; these answer "what does this implementation actually
// cost on a wire".

// realNetSite is one in-process site wired over UDP: manager, data
// server, and a memory-backed group-commit log (memory so the tables
// isolate the network path; the disk is camelot-node's business).
type realNetSite struct {
	id   tid.SiteID
	peer *transport.UDPPeer
	tm   *core.Manager
	srv  *server.Server
	log  *wal.Log
}

// startRealNet boots n sites on loopback and fully meshes their
// address maps.
func startRealNet(r rt.Runtime, n int) ([]*realNetSite, error) {
	sites := make([]*realNetSite, 0, n)
	for i := 1; i <= n; i++ {
		peer, err := transport.NewUDPPeer(tid.SiteID(i), "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		log := wal.Open(r, wal.NewMemStore(), wal.Config{
			GroupCommit: true, FlushInterval: 2 * time.Millisecond,
		})
		tm := core.New(r, core.Config{
			Site:             tid.SiteID(i),
			Threads:          8,
			RetryInterval:    50 * time.Millisecond,
			InquireInterval:  50 * time.Millisecond,
			PromotionTimeout: 200 * time.Millisecond,
			AckFlushInterval: 10 * time.Millisecond,
		}, log, peer)
		srv := server.New(r, "store", tm, log, server.Config{LockTimeout: 2 * time.Second})
		s := &realNetSite{id: tid.SiteID(i), peer: peer, tm: tm, srv: srv, log: log}
		peer.SetHandler(func(d transport.Datagram) {
			if msg, ok := d.Payload.(*wire.Msg); ok {
				s.tm.Deliver(msg)
			}
		})
		sites = append(sites, s)
	}
	for _, a := range sites {
		for _, b := range sites {
			if a == b {
				continue
			}
			if err := a.peer.AddPeer(b.id, b.peer.Addr()); err != nil {
				return nil, err
			}
		}
	}
	return sites, nil
}

func stopRealNet(sites []*realNetSite) {
	for _, s := range sites {
		s.tm.Close()
		s.log.Close()
		s.peer.Close() //nolint:errcheck // benchmark teardown
	}
}

// realNetTxn runs one distributed update through the mesh: write key
// at the coordinator and every remote site, then commit under opts.
func realNetTxn(sites []*realNetSite, key string, opts core.Options) error {
	coord := sites[0]
	t, err := coord.tm.Begin()
	if err != nil {
		return err
	}
	var remote []tid.SiteID
	for _, s := range sites {
		if err := s.srv.Write(t, tid.TID{}, key, []byte("v")); err != nil {
			coord.tm.Abort(t)
			return err
		}
		if s != coord {
			remote = append(remote, s.id)
		}
	}
	coord.tm.AddSites(t, remote)
	_, err = coord.tm.Commit(t, opts)
	return err
}

// RealNetLatency measures commit latency for txns distributed updates
// across nSites in-process sites over loopback UDP, one table row per
// protocol variant. Wall-clock numbers: they describe this host.
func RealNetLatency(nSites, txns int) (*stats.Table, error) {
	r := rt.Real()
	t := stats.NewTable(
		fmt.Sprintf("R2: Real-Network Commit Latency (%d sites, loopback UDP, n=%d)", nSites, txns),
		"protocol", "median ms", "p95 ms", "max ms")

	variants := []struct {
		name string
		opts core.Options
	}{
		{"2PC", core.Options{}},
		{"2PC forced-sub", core.Options{ForceSubCommit: true}},
		{"non-blocking", core.Options{NonBlocking: true}},
	}
	for _, v := range variants {
		sites, err := startRealNet(r, nSites)
		if err != nil {
			stopRealNet(sites)
			return nil, err
		}
		sample := &stats.Sample{}
		for i := 0; i < txns; i++ {
			key := fmt.Sprintf("%s-%d", v.name, i)
			begin := r.Now()
			if err := realNetTxn(sites, key, v.opts); err != nil {
				stopRealNet(sites)
				return nil, fmt.Errorf("%s txn %d: %w", v.name, i, err)
			}
			sample.AddDuration(r.Now() - begin)
		}
		stopRealNet(sites)
		t.AddRow(v.name,
			fmt.Sprintf("%.3f", sample.Percentile(50)),
			fmt.Sprintf("%.3f", sample.Percentile(95)),
			fmt.Sprintf("%.3f", sample.Max()))
	}
	return t, nil
}

// RealNetThroughput measures closed-loop distributed commit
// throughput over loopback UDP: workers concurrent client loops, each
// driving distributed 2PC updates through the same nSites mesh, for
// one measurement window per row.
func RealNetThroughput(nSites int, workers []int, window time.Duration) (*stats.Table, error) {
	r := rt.Real()
	t := stats.NewTable(
		fmt.Sprintf("R3: Real-Network Commit Throughput (%d sites, loopback UDP, %s window)", nSites, window),
		"clients", "committed/s")

	for _, w := range workers {
		sites, err := startRealNet(r, nSites)
		if err != nil {
			stopRealNet(sites)
			return nil, err
		}
		var stop atomic.Bool
		var committed atomic.Int64
		wg := rt.NewWaitGroup(r)
		wg.Add(w)
		for c := 0; c < w; c++ {
			c := c
			r.Go(fmt.Sprintf("realnet-client%d", c), func() {
				defer wg.Done()
				for i := 0; !stop.Load(); i++ {
					key := fmt.Sprintf("c%d-k%d", c, i)
					if err := realNetTxn(sites, key, core.Options{}); err == nil {
						committed.Add(1)
					}
				}
			})
		}
		r.Sleep(window / 4) // settle before counting
		committed.Store(0)
		r.Sleep(window)
		total := committed.Load()
		stop.Store(true)
		wg.Wait()
		stopRealNet(sites)
		t.AddRow(fmt.Sprintf("%d", w), fmt.Sprintf("%.0f", float64(total)/window.Seconds()))
	}
	return t, nil
}
