package exp

import (
	"camelot/internal/params"
	"camelot/internal/stats"
)

// BenchSchema identifies the machine-readable report layout. Bump the
// version suffix on any incompatible change so perf-trajectory tooling
// comparing BENCH_*.json files across commits can refuse mismatches.
const BenchSchema = "camelot-bench/v1"

// BenchTable is one experiment's table in machine-readable form.
type BenchTable struct {
	Name   string     `json:"name"`   // stable experiment key (the -only name)
	Title  string     `json:"title"`  // human title, as printed by the text mode
	Header []string   `json:"header"` // column names
	Rows   [][]string `json:"rows"`   // body cells, formatted as in text mode
}

// BenchReport is the root object camelot-bench -json emits.
type BenchReport struct {
	Schema string       `json:"schema"`
	Quick  bool         `json:"quick"`
	Tables []BenchTable `json:"tables"`
}

// TableJSON converts one stats.Table under a stable experiment name.
func TableJSON(name string, t *stats.Table) BenchTable {
	return BenchTable{Name: name, Title: t.Title(), Header: t.Header(), Rows: t.Rows()}
}

// RunAllJSON runs every table-shaped experiment in the index (the
// same set RunAll prints, minus the prose-only Figure 1 walkthrough
// and the static-analysis formulas) and returns the report.
func RunAllJSON(quick bool) *BenchReport {
	trials := 25
	if quick {
		trials = 8
	}
	paper := params.Paper()
	vax := params.VAX()

	rep := &BenchReport{Schema: BenchSchema, Quick: quick}
	add := func(name string, t *stats.Table) {
		rep.Tables = append(rep.Tables, TableJSON(name, t))
	}
	add("table1", Table1())
	add("table2", Table2(paper))
	_, t3 := Table3(paper, trials)
	add("table3", t3)
	add("figure2", Figure2(paper, trials))
	add("figure3", Figure3(paper, trials))
	add("three-way", ThreeWayCommit(paper, trials))
	add("figure4", Figure4(vax))
	add("figure5", Figure5(vax))
	add("rpc", RPCBreakdown(paper, 10*trials))
	add("multicast", MulticastVariance(paper, 4*trials))
	add("contention", LockContention(paper, trials))
	add("ablation-group-commit", AblationGroupCommit(vax))
	add("ablation-read-only", AblationReadOnly(paper, trials))
	add("ablation-commit-variants", AblationCommitVariants(paper, trials))
	return rep
}
