package exp

import (
	"strings"
	"testing"
	"time"

	"camelot/camelot"
	"camelot/internal/params"
)

// These are shape tests: each experiment must reproduce the paper's
// qualitative findings (who wins, roughly by how much, where the
// knees are), which is the reproduction contract of EXPERIMENTS.md.

func TestLatencyLocalUpdateNearPaper(t *testing.T) {
	res := MeasureLatency(LatencySpec{Subs: 0, Trials: 10, Params: params.Paper()})
	if m := res.Total.Mean(); m < 25 || m > 38 {
		t.Errorf("local update latency = %.1f ms, want ≈31 (paper)", m)
	}
}

func TestLatencyOneSubOptimizedNearPaper(t *testing.T) {
	res := MeasureLatency(LatencySpec{Subs: 1, Trials: 10, Params: params.Paper()})
	if m := res.Total.Mean(); m < 95 || m > 125 {
		t.Errorf("1-sub optimized update = %.1f ms, want ≈110 (paper)", m)
	}
}

func TestLatencyReadBelowUpdate(t *testing.T) {
	read := MeasureLatency(LatencySpec{Subs: 1, ReadOnly: true, Trials: 10, Params: params.Paper()})
	update := MeasureLatency(LatencySpec{Subs: 1, Trials: 10, Params: params.Paper()})
	if read.Total.Mean() >= update.Total.Mean() {
		t.Errorf("read (%.1f) not below update (%.1f)", read.Total.Mean(), update.Total.Mean())
	}
}

func TestNonBlockingSlowerButLessThanTwice(t *testing.T) {
	p := params.Paper()
	tp := MeasureLatency(LatencySpec{Subs: 1, Trials: 10, Params: p})
	nb := MeasureLatency(LatencySpec{Subs: 1, Opts: camelot.Options{NonBlocking: true},
		Trials: 10, Params: p})
	// "The cost of non-blocking commitment relative to two-phase
	// commitment seems somewhat less than twice as high."
	ratio := nb.Total.Mean() / tp.Total.Mean()
	if ratio <= 1.0 || ratio >= 2.0 {
		t.Errorf("NB/2PC ratio = %.2f, want within (1, 2)", ratio)
	}
}

func TestPaxosF0LatencyMatchesTwoPhase(t *testing.T) {
	// With F=0 the single acceptor is co-located with the coordinator,
	// so the fault-free path degenerates to two-phase commit's message
	// and force pattern; the latencies must agree to within noise.
	p := params.Paper()
	tp := MeasureLatency(LatencySpec{Subs: 1, Trials: 10, Params: p})
	px := MeasureLatency(LatencySpec{Subs: 1, Opts: camelot.Options{Paxos: true},
		Trials: 10, Params: p})
	diff := px.Total.Mean() - tp.Total.Mean()
	if diff < -5 || diff > 5 {
		t.Errorf("paxos F=0 differs from 2PC by %.1f ms; F=0 must degenerate to two-phase", diff)
	}
}

func TestPaxosF1BetweenTwoPhaseAndTwice(t *testing.T) {
	// At F=1 the acceptor round (batched forced accept + 2b) sits on
	// the critical path, so Paxos Commit costs more than two-phase —
	// but, like the non-blocking protocol it replaces, less than twice.
	p := params.Paper()
	tp := MeasureLatency(LatencySpec{Subs: 1, Trials: 10, Params: p})
	px := MeasureLatency(LatencySpec{Subs: 1, Opts: camelot.Options{Paxos: true, PaxosF: 1},
		Trials: 10, Params: p})
	ratio := px.Total.Mean() / tp.Total.Mean()
	if ratio <= 1.0 || ratio >= 2.0 {
		t.Errorf("paxos F=1 / 2PC ratio = %.2f, want within (1, 2)", ratio)
	}
}

func TestThreeWayTableHasAllVariants(t *testing.T) {
	s := ThreeWayCommit(params.Paper(), 4).String()
	for _, v := range []string{"two-phase", "paxos F=0", "paxos F=1", "non-blocking"} {
		if !strings.Contains(s, v) {
			t.Errorf("three-way table missing %q:\n%s", v, s)
		}
	}
}

func TestNonBlockingReadMatchesTwoPhaseRead(t *testing.T) {
	p := params.Paper()
	tp := MeasureLatency(LatencySpec{Subs: 1, ReadOnly: true, Trials: 10, Params: p})
	nb := MeasureLatency(LatencySpec{Subs: 1, ReadOnly: true,
		Opts: camelot.Options{NonBlocking: true}, Trials: 10, Params: p})
	diff := nb.Total.Mean() - tp.Total.Mean()
	if diff < -3 || diff > 3 {
		t.Errorf("NB read differs from 2PC read by %.1f ms; the read-only path must be shared", diff)
	}
}

func TestThroughputSingleThreadSaturatesEarly(t *testing.T) {
	p := params.VAX()
	one := MeasureThroughput(ThroughputSpec{Pairs: 4, Threads: 1, GroupCommit: false,
		ReadOnly: true, Params: p, Window: 10 * time.Second})
	five := MeasureThroughput(ThroughputSpec{Pairs: 4, Threads: 5, GroupCommit: false,
		ReadOnly: true, Params: p, Window: 10 * time.Second})
	if five.TPS <= one.TPS {
		t.Errorf("5 threads (%.1f TPS) not above 1 thread (%.1f TPS) at 4 pairs", five.TPS, one.TPS)
	}
}

func TestThroughputTwentyThreadsLikeFive(t *testing.T) {
	// "The numbers for the 20-thread tests are roughly the same as
	// those for the 5-thread tests."
	p := params.VAX()
	five := MeasureThroughput(ThroughputSpec{Pairs: 4, Threads: 5, GroupCommit: false,
		ReadOnly: true, Params: p, Window: 10 * time.Second})
	twenty := MeasureThroughput(ThroughputSpec{Pairs: 4, Threads: 20, GroupCommit: false,
		ReadOnly: true, Params: p, Window: 10 * time.Second})
	ratio := twenty.TPS / five.TPS
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("20-thread/5-thread ratio = %.2f, want ≈1", ratio)
	}
}

func TestGroupCommitRaisesUpdateThroughput(t *testing.T) {
	p := params.VAX()
	off := MeasureThroughput(ThroughputSpec{Pairs: 4, Threads: 20, GroupCommit: false,
		Params: p, Window: 10 * time.Second})
	on := MeasureThroughput(ThroughputSpec{Pairs: 4, Threads: 20, GroupCommit: true,
		Params: p, Window: 10 * time.Second})
	if on.TPS <= off.TPS {
		t.Errorf("group commit (%.1f TPS) not above plain logging (%.1f TPS)", on.TPS, off.TPS)
	}
}

func TestReadsFasterThanUpdates(t *testing.T) {
	p := params.VAX()
	upd := MeasureThroughput(ThroughputSpec{Pairs: 4, Threads: 20, GroupCommit: true,
		Params: p, Window: 10 * time.Second})
	read := MeasureThroughput(ThroughputSpec{Pairs: 4, Threads: 20, GroupCommit: true,
		ReadOnly: true, Params: p, Window: 10 * time.Second})
	if read.TPS <= upd.TPS {
		t.Errorf("reads (%.1f TPS) not above updates (%.1f TPS)", read.TPS, upd.TPS)
	}
}

func TestMulticastVarianceTable(t *testing.T) {
	tbl := MulticastVariance(params.Paper(), 30).String()
	if !strings.Contains(tbl, "multicast") || !strings.Contains(tbl, "serial unicast") {
		t.Fatalf("table missing rows:\n%s", tbl)
	}
}

func TestRPCBreakdownMeasuredNearModel(t *testing.T) {
	tbl := RPCBreakdown(params.Paper(), 50)
	s := tbl.String()
	if !strings.Contains(s, "28.5") {
		t.Errorf("breakdown does not show the 28.5 ms total:\n%s", s)
	}
}

func TestFigure1MentionsAllElevenSteps(t *testing.T) {
	out := Figure1(params.Paper())
	for i := 1; i <= 11; i++ {
		if !strings.Contains(out, itoa(i)+". ") && !strings.Contains(out, " "+itoa(i)+".") {
			t.Errorf("step %d missing from Figure 1 narration", i)
		}
	}
	if !strings.Contains(out, "measured end-to-end") {
		t.Error("live measurement missing from Figure 1")
	}
}

func TestTable2MeasuredMatchesConfigured(t *testing.T) {
	s := Table2(params.Paper()).String()
	// The force row must show 15.0 in both columns.
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "log force") && strings.Count(line, "15.0") != 2 {
			t.Errorf("log force row mismatch: %q", line)
		}
	}
}

func TestTable1Runs(t *testing.T) {
	s := Table1().String()
	if !strings.Contains(s, "procedure call") || !strings.Contains(s, "getpid") {
		t.Errorf("Table 1 incomplete:\n%s", s)
	}
}

func TestLockContentionUnoptimizedWaits(t *testing.T) {
	s := LockContention(params.Paper(), 8)
	str := s.String()
	if !strings.Contains(str, "unoptimized, back-to-back") {
		t.Fatalf("table missing rows:\n%s", str)
	}
}
