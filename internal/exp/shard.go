package exp

import (
	"fmt"
	"time"

	"camelot/internal/core"
	"camelot/internal/rt"
	"camelot/internal/server"
	"camelot/internal/shardmap"
	"camelot/internal/stats"
	"camelot/internal/tid"
	"camelot/internal/transport"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

// R4 measures what the sharded data tier costs on a wire: the same
// loopback-UDP mesh as R2, but each site hosts shard-scoped servers
// under a round-robin shard map, and the table splits commit latency
// by how many distinct sites a transaction's write set straddles. The
// single-shard row is the baseline — one participant, no distributed
// commitment at all — and each added site buys the cross-shard rows a
// full prepare round trip.

// realShardSite is one in-process sharded site wired over UDP: the
// manager, the site's shard-server set, and a memory-backed log.
type realShardSite struct {
	id   tid.SiteID
	peer *transport.UDPPeer
	tm   *core.Manager
	set  *server.Set
	log  *wal.Log
}

// startRealShardNet boots n sharded sites on loopback under m and
// fully meshes their address maps.
func startRealShardNet(r rt.Runtime, n int, m *shardmap.Map) ([]*realShardSite, error) {
	sites := make([]*realShardSite, 0, n)
	for i := 1; i <= n; i++ {
		peer, err := transport.NewUDPPeer(tid.SiteID(i), "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		log := wal.Open(r, wal.NewMemStore(), wal.Config{
			GroupCommit: true, FlushInterval: 2 * time.Millisecond,
		})
		tm := core.New(r, core.Config{
			Site:             tid.SiteID(i),
			Threads:          8,
			RetryInterval:    50 * time.Millisecond,
			InquireInterval:  50 * time.Millisecond,
			PromotionTimeout: 200 * time.Millisecond,
			AckFlushInterval: 10 * time.Millisecond,
		}, log, peer)
		set := server.NewSet(r, tid.SiteID(i), m, tm, log, server.Config{LockTimeout: 2 * time.Second})
		s := &realShardSite{id: tid.SiteID(i), peer: peer, tm: tm, set: set, log: log}
		peer.SetHandler(func(d transport.Datagram) {
			if msg, ok := d.Payload.(*wire.Msg); ok {
				s.tm.Deliver(msg)
			}
		})
		sites = append(sites, s)
	}
	for _, a := range sites {
		for _, b := range sites {
			if a == b {
				continue
			}
			if err := a.peer.AddPeer(b.id, b.peer.Addr()); err != nil {
				return nil, err
			}
		}
	}
	return sites, nil
}

func stopRealShardNet(sites []*realShardSite) {
	for _, s := range sites {
		s.tm.Close()
		s.log.Close()
		s.peer.Close() //nolint:errcheck // benchmark teardown
	}
}

// shardKeyHomedAt finds a key under prefix homed at site, by the same
// deterministic candidate search every sharded driver in this repo
// uses.
func shardKeyHomedAt(m *shardmap.Map, prefix string, site tid.SiteID) (string, error) {
	for c := 0; c < 4096; c++ {
		k := fmt.Sprintf("%s.%d", prefix, c)
		if m.SiteOf(k) == site {
			return k, nil
		}
	}
	return "", fmt.Errorf("no key under %q homes at site %d", prefix, site)
}

// realShardTxn runs one keyspace transaction through the mesh: one
// key homed at each of the first span sites, each write routed to its
// home site's shard set, committed from the first site under opts.
func realShardTxn(sites []*realShardSite, m *shardmap.Map, prefix string, span int, opts core.Options) error {
	coord := sites[0]
	t, err := coord.tm.Begin()
	if err != nil {
		return err
	}
	var remote []tid.SiteID
	for j := 0; j < span; j++ {
		s := sites[j]
		key, err := shardKeyHomedAt(m, fmt.Sprintf("%s.x%d", prefix, j), s.id)
		if err != nil {
			coord.tm.Abort(t)
			return err
		}
		if err := s.set.Write(t, tid.TID{}, key, []byte("v")); err != nil {
			coord.tm.Abort(t)
			return err
		}
		if s != coord {
			remote = append(remote, s.id)
		}
	}
	coord.tm.AddSites(t, remote)
	_, err = coord.tm.Commit(t, opts)
	return err
}

// RealNetSharded measures 2PC commit latency over loopback UDP for
// the sharded data tier, one row per write-set span: a single-shard
// transaction (one participant, its home site), then cross-shard
// transactions straddling 2..nSites sites. Wall-clock numbers: they
// describe this host.
func RealNetSharded(nSites, shards, txns int) (*stats.Table, error) {
	r := rt.Real()
	ids := make([]tid.SiteID, 0, nSites)
	for i := 1; i <= nSites; i++ {
		ids = append(ids, tid.SiteID(i))
	}
	m, err := shardmap.New(1, shards, ids)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("R4: Sharded Commit Latency (%d shards on %d sites, loopback UDP, n=%d)", shards, nSites, txns),
		"write set", "median ms", "p95 ms", "max ms")

	for span := 1; span <= nSites; span++ {
		sites, err := startRealShardNet(r, nSites, m)
		if err != nil {
			stopRealShardNet(sites)
			return nil, err
		}
		label := "single-shard (1 site)"
		if span > 1 {
			label = fmt.Sprintf("cross-shard (%d sites)", span)
		}
		sample := &stats.Sample{}
		for i := 0; i < txns; i++ {
			begin := r.Now()
			if err := realShardTxn(sites, m, fmt.Sprintf("s%d-t%d", span, i), span, core.Options{}); err != nil {
				stopRealShardNet(sites)
				return nil, fmt.Errorf("span %d txn %d: %w", span, i, err)
			}
			sample.AddDuration(r.Now() - begin)
		}
		stopRealShardNet(sites)
		t.AddRow(label,
			fmt.Sprintf("%.3f", sample.Percentile(50)),
			fmt.Sprintf("%.3f", sample.Percentile(95)),
			fmt.Sprintf("%.3f", sample.Max()))
	}
	return t, nil
}
