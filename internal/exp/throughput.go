package exp

import (
	"fmt"
	"time"

	"camelot/camelot"
	"camelot/internal/params"
	"camelot/internal/sim"
	"camelot/internal/stats"
)

// ThroughputSpec describes one §4.4 throughput configuration:
// application/server pairs executing minimal transactions against a
// single site, with a fixed transaction-manager thread count.
// "Separate pairs of applications and servers were used to ensure
// that operation processing was not a bottleneck."
type ThroughputSpec struct {
	Pairs       int
	Threads     int
	GroupCommit bool
	ReadOnly    bool
	Params      params.Params
	Warmup      time.Duration
	Window      time.Duration
	Seed        int64
}

// ThroughputResult is one measured point.
type ThroughputResult struct {
	Spec         ThroughputSpec
	TPS          float64
	Committed    int
	DeviceWrites int // log device writes during the whole run
}

// MeasureThroughput runs one throughput configuration to saturation
// behavior: each pair is a closed loop, so offered load rises with
// the pair count.
func MeasureThroughput(spec ThroughputSpec) *ThroughputResult {
	if spec.Warmup <= 0 {
		spec.Warmup = 5 * time.Second
	}
	if spec.Window <= 0 {
		spec.Window = 30 * time.Second
	}
	res := &ThroughputResult{Spec: spec}
	k := sim.New(spec.Seed + 7)
	cfg := camelot.DefaultConfig()
	cfg.Params = spec.Params
	cfg.Threads = spec.Threads
	cfg.GroupCommit = spec.GroupCommit
	c := camelot.NewCluster(k, cfg)
	n := c.AddNode(1)
	for pair := 0; pair < spec.Pairs; pair++ {
		n.AddServer(fmt.Sprintf("pair%d", pair))
	}

	counted := 0
	k.Go("load", func() {
		// Seed read data.
		if spec.ReadOnly {
			for pair := 0; pair < spec.Pairs; pair++ {
				tx, err := n.Begin()
				if err != nil {
					return
				}
				tx.Write(fmt.Sprintf("pair%d", pair), "k", []byte("seed")) //nolint:errcheck
				tx.Commit()                                                //nolint:errcheck
			}
		}
		for pair := 0; pair < spec.Pairs; pair++ {
			srv := fmt.Sprintf("pair%d", pair)
			k.Go(srv+"-app", func() {
				for i := 0; ; i++ {
					tx, err := n.Begin()
					if err != nil {
						return
					}
					if spec.ReadOnly {
						_, err = tx.Read(srv, "k")
					} else {
						err = tx.Write(srv, "k", []byte{byte(i)})
					}
					if err != nil {
						tx.Abort() //nolint:errcheck
						continue
					}
					if err := tx.Commit(); err != nil {
						continue
					}
					now := time.Duration(k.Now())
					if now > spec.Warmup && now <= spec.Warmup+spec.Window {
						counted++
					}
				}
			})
		}
		k.Sleep(spec.Warmup + spec.Window)
		k.Stop()
	})
	k.RunUntil(spec.Warmup + spec.Window + time.Minute)
	res.Committed = counted
	res.TPS = float64(counted) / spec.Window.Seconds()
	res.DeviceWrites = n.Log().DeviceWrites()
	return res
}

// Figure4 reproduces "Update Transaction Throughput": pairs 1–4 with
// 1, 5, and 20 transaction-manager threads (log batching off), plus
// the group-commit curve.
func Figure4(p params.Params) *stats.Table {
	t := stats.NewTable("Figure 4: Update Transaction Throughput (TPS)",
		"configuration", "1 pair", "2 pairs", "3 pairs", "4 pairs")
	configs := []struct {
		name    string
		threads int
		gc      bool
	}{
		{"group commit (20 threads)", 20, true},
		{"20 threads", 20, false},
		{"5 threads", 5, false},
		{"1 thread", 1, false},
	}
	for _, cfg := range configs {
		row := []any{cfg.name}
		for pairs := 1; pairs <= 4; pairs++ {
			r := MeasureThroughput(ThroughputSpec{
				Pairs: pairs, Threads: cfg.threads, GroupCommit: cfg.gc,
				Params: p, Seed: int64(pairs),
			})
			row = append(row, r.TPS)
		}
		t.AddRowf(row...)
	}
	return t
}

// Figure5 reproduces "Read Transaction Throughput": pairs 1–4 with 1,
// 5, and 20 threads. Read transactions never force the log, so group
// commit is irrelevant.
func Figure5(p params.Params) *stats.Table {
	t := stats.NewTable("Figure 5: Read Transaction Throughput (TPS)",
		"configuration", "1 pair", "2 pairs", "3 pairs", "4 pairs")
	for _, threads := range []int{20, 5, 1} {
		row := []any{fmt.Sprintf("%d thread(s)", threads)}
		for pairs := 1; pairs <= 4; pairs++ {
			r := MeasureThroughput(ThroughputSpec{
				Pairs: pairs, Threads: threads, ReadOnly: true, GroupCommit: true,
				Params: p, Seed: int64(pairs),
			})
			row = append(row, r.TPS)
		}
		t.AddRowf(row...)
	}
	return t
}

// AblationGroupCommit restates Figure 4 as the group-commit speedup
// at each offered load, plus the device-write counts that explain it.
func AblationGroupCommit(p params.Params) *stats.Table {
	t := stats.NewTable("Ablation: group commit on/off (update transactions, 20 threads)",
		"pairs", "TPS off", "TPS on", "speedup", "txns/write off", "txns/write on")
	for pairs := 1; pairs <= 4; pairs++ {
		off := MeasureThroughput(ThroughputSpec{
			Pairs: pairs, Threads: 20, GroupCommit: false, Params: p, Seed: int64(pairs),
		})
		on := MeasureThroughput(ThroughputSpec{
			Pairs: pairs, Threads: 20, GroupCommit: true, Params: p, Seed: int64(pairs),
		})
		speedup := 0.0
		if off.TPS > 0 {
			speedup = on.TPS / off.TPS
		}
		perWrite := func(r *ThroughputResult) float64 {
			if r.DeviceWrites == 0 {
				return 0
			}
			// The device is saturated in both modes; batching shows up
			// as more committed transactions per device write.
			return float64(r.Committed) / float64(r.DeviceWrites)
		}
		t.AddRowf(pairs, off.TPS, on.TPS, speedup, perWrite(off), perWrite(on))
	}
	return t
}
