package exp

import (
	"time"

	"camelot/camelot"
	"camelot/internal/params"
	"camelot/internal/stats"
)

// ThreeWayVariants are the protocol configurations of the three-way
// commit comparison: the paper's two protocols plus Paxos Commit at
// F=0 (degenerate, one co-located acceptor) and F=1 (three acceptors,
// tolerating one crash).
var ThreeWayVariants = []struct {
	Name string
	Opts camelot.Options
}{
	{"two-phase", camelot.Options{}},
	{"paxos F=0", camelot.Options{Paxos: true}},
	{"paxos F=1", camelot.Options{Paxos: true, PaxosF: 1}},
	{"non-blocking", camelot.Options{NonBlocking: true}},
}

// ThreeWayCommit extends the Figure 2/3 latency experiment to the
// third protocol: update-transaction latency at 1–3 subordinates for
// two-phase commit, Paxos Commit (F=0 and F=1), and non-blocking
// commit, same minimal workload and jitter model as the paper's
// figures. The expected ordering is pinned by tests: F=0 matches
// two-phase (its fault-free path is the same message and force
// pattern), while F=1 pays the acceptor round and lands between
// two-phase and roughly the non-blocking protocol's cost.
func ThreeWayCommit(p params.Params, trials int) *stats.Table {
	p.Jitter = 5 * time.Millisecond
	t := stats.NewTable("Three-way commit latency: 2PC vs Paxos Commit vs non-blocking (ms)",
		"variant", "subs", "mean", "stddev", "tm-only")
	for _, v := range ThreeWayVariants {
		for subs := 1; subs <= 3; subs++ {
			res := MeasureLatency(LatencySpec{
				Subs: subs, Opts: v.Opts,
				Trials: trials, Params: p, Seed: int64(40 + subs),
			})
			t.AddRowf(v.Name, subs, res.Total.Mean(), res.Total.StdDev(),
				res.TM.Mean())
		}
	}
	return t
}
