// Package exp is the experiment harness: one driver per table and
// figure of the paper's evaluation (§4), each rebuilding the
// workload, sweeping the parameters, and printing the same rows or
// series the paper reports. cmd/camelot-bench and the repository's
// benchmarks both call into this package.
package exp

import (
	"fmt"
	"time"

	"camelot/camelot"
	"camelot/internal/analysis"
	"camelot/internal/params"
	"camelot/internal/sim"
	"camelot/internal/stats"
)

// LatencySpec describes one latency measurement configuration: the
// "basic experiment" of §4.2/§4.3 — a minimal transaction performing
// one small operation at a single server at each site.
type LatencySpec struct {
	Subs     int
	Opts     camelot.Options
	ReadOnly bool
	Trials   int
	Params   params.Params
	Seed     int64
	// Gap, if positive, idles between trials; zero reproduces the
	// paper's back-to-back runs on the same data element.
	Gap time.Duration
}

// LatencyResult is one measured point.
type LatencyResult struct {
	Spec  LatencySpec
	Total stats.Sample // full transaction latency
	TM    stats.Sample // minus operation calls: "transaction management alone"
}

// MeasureLatency runs the minimal-transaction latency experiment in a
// fresh deterministic simulation.
func MeasureLatency(spec LatencySpec) *LatencyResult {
	if spec.Trials <= 0 {
		spec.Trials = 25
	}
	res := &LatencyResult{Spec: spec}
	k := sim.New(spec.Seed + 1)
	cfg := camelot.DefaultConfig()
	cfg.Params = spec.Params
	c := camelot.NewCluster(k, cfg)
	for id := camelot.SiteID(1); id <= camelot.SiteID(spec.Subs+1); id++ {
		c.AddNode(id).AddServer(serverName(id))
	}
	opCost := analysis.OpCost(spec.Params, spec.Subs)

	k.Go("experiment", func() {
		// Seed data so read transactions have something to read.
		if spec.ReadOnly {
			for id := camelot.SiteID(1); id <= camelot.SiteID(spec.Subs+1); id++ {
				tx, err := c.Node(id).Begin()
				if err != nil {
					return
				}
				tx.Write(serverName(id), "k", []byte("seed")) //nolint:errcheck
				tx.Commit()                                   //nolint:errcheck
			}
			k.Sleep(time.Second)
		}
		for trial := 0; trial < spec.Trials; trial++ {
			start := k.Now()
			tx, err := c.Node(1).Begin()
			if err != nil {
				break
			}
			ok := true
			for id := camelot.SiteID(1); id <= camelot.SiteID(spec.Subs+1); id++ {
				if spec.ReadOnly {
					_, err = tx.Read(serverName(id), "k")
				} else {
					err = tx.Write(serverName(id), "k", []byte{byte(trial)})
				}
				if err != nil {
					ok = false
					break
				}
			}
			if !ok {
				tx.Abort() //nolint:errcheck
				continue
			}
			if err := tx.CommitWith(spec.Opts); err != nil {
				continue
			}
			elapsed := time.Duration(k.Now() - start)
			res.Total.AddDuration(elapsed)
			res.TM.AddDuration(elapsed - opCost)
			// Trials run back-to-back, exactly as in the paper: "the
			// application used in the experiment locked and updated
			// the same data element during every transaction", so a
			// variant that retains locks longer (forced subordinate
			// commit record) delays the next trial's operation — the
			// §4.2 contention effect.
			if spec.Gap > 0 {
				k.Sleep(spec.Gap)
			}
		}
		k.Stop()
	})
	k.RunUntil(time.Duration(spec.Trials+20) * 10 * time.Second)
	return res
}

func serverName(id camelot.SiteID) string {
	return fmt.Sprintf("srv%d", id)
}

// Figure2Variants are the four §4.2 protocol variations, in the
// paper's order.
var Figure2Variants = []struct {
	Name     string
	Opts     camelot.Options
	ReadOnly bool
}{
	{"optimized write", camelot.Options{}, false},
	{"semi-optimized write", camelot.Options{ForceSubCommit: true}, false},
	{"unoptimized write", camelot.Options{ForceSubCommit: true, ImmediateAck: true}, false},
	{"read", camelot.Options{}, true},
}

// Figure2 reproduces "Latency of Transactions, Two-phase Commit":
// subordinates 0–3 for each protocol variant, with the derived
// transaction-management-only series.
func Figure2(p params.Params, trials int) *stats.Table {
	// The testbed's natural variance came from OS scheduling around
	// the coordinator's sends (§4.2); model it with per-send jitter.
	p.Jitter = 5 * time.Millisecond
	t := stats.NewTable("Figure 2: Latency of Transactions, Two-phase Commit (ms)",
		"variant", "subs", "mean", "stddev", "tm-only", "static-completion")
	for _, v := range Figure2Variants {
		for subs := 0; subs <= 3; subs++ {
			res := MeasureLatency(LatencySpec{
				Subs: subs, Opts: v.Opts, ReadOnly: v.ReadOnly,
				Trials: trials, Params: p, Seed: int64(subs),
			})
			var static analysis.Breakdown
			switch {
			case v.ReadOnly:
				static = analysis.TwoPhaseReadCompletion(p, subs)
			case subs == 0:
				static = analysis.LocalUpdateCompletion(p)
			default:
				static = analysis.TwoPhaseUpdateCompletion(p, subs)
			}
			t.AddRowf(v.Name, subs, res.Total.Mean(), res.Total.StdDev(),
				res.TM.Mean(), static.TotalMs())
		}
	}
	return t
}

// Figure3 reproduces "Latency of Transactions, Non-blocking Commit":
// subordinates 1–3, write and read.
func Figure3(p params.Params, trials int) *stats.Table {
	p.Jitter = 5 * time.Millisecond
	t := stats.NewTable("Figure 3: Latency of Transactions, Non-blocking Commit (ms)",
		"variant", "subs", "mean", "stddev", "tm-only", "static-completion")
	for _, ro := range []bool{false, true} {
		name := "write"
		if ro {
			name = "read"
		}
		for subs := 1; subs <= 3; subs++ {
			res := MeasureLatency(LatencySpec{
				Subs: subs, Opts: camelot.Options{NonBlocking: true}, ReadOnly: ro,
				Trials: trials, Params: p, Seed: int64(10 + subs),
			})
			var static analysis.Breakdown
			if ro {
				static = analysis.NonBlockingReadCompletion(p, subs)
			} else {
				static = analysis.NonBlockingUpdateCompletion(p, subs)
			}
			t.AddRowf(name, subs, res.Total.Mean(), res.Total.StdDev(),
				res.TM.Mean(), static.TotalMs())
		}
	}
	return t
}

// Table3 reproduces the static-versus-empirical latency comparison
// for the three configurations the paper reports: local update,
// one-subordinate update, and local read.
func Table3(p params.Params, trials int) (string, *stats.Table) {
	breakdowns := analysis.LocalUpdateCompletion(p).String() +
		"\n" + analysis.TwoPhaseUpdateCompletion(p, 1).String() +
		"\n" + analysis.LocalReadCompletion(p).String()

	t := stats.NewTable("Table 3: static analysis vs. empirical measurement (ms)",
		"configuration", "static", "measured", "paper-static", "paper-measured")
	type row struct {
		name         string
		spec         LatencySpec
		static       analysis.Breakdown
		pStat, pMeas float64
	}
	rows := []row{
		{"local update", LatencySpec{Subs: 0, Trials: trials, Params: p},
			analysis.LocalUpdateCompletion(p), 24.5, 31},
		{"1-subordinate update", LatencySpec{Subs: 1, Trials: trials, Params: p},
			analysis.TwoPhaseUpdateCompletion(p, 1), 99.5, 110},
		{"local read", LatencySpec{Subs: 0, ReadOnly: true, Trials: trials, Params: p},
			analysis.LocalReadCompletion(p), 9.5, 13},
	}
	for _, r := range rows {
		res := MeasureLatency(r.spec)
		t.AddRowf(r.name, r.static.TotalMs(), res.Total.Mean(), r.pStat, r.pMeas)
	}
	return breakdowns, t
}
