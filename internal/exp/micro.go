package exp

import (
	"os"
	"time"

	"camelot/internal/params"
	"camelot/internal/rt"
	"camelot/internal/sim"
	"camelot/internal/stats"
	"camelot/internal/tid"
	"camelot/internal/transport"
	"camelot/internal/wal"
)

// Table1 reproduces the spirit of "Benchmarks of PC-RT and Mach":
// microbenchmarks of the host's primitives next to the paper's
// measured values. The analogues are: Go function call ≈ procedure
// call; copy() ≈ bcopy; os.Getpid ≈ getpid; channel send ≈ local
// IPC; goroutine handoff ≈ context switch; file write+sync ≈ raw
// disk write. The point of the table — then and now — is that
// transaction overhead is built from exactly these primitives.
func Table1() *stats.Table {
	t := stats.NewTable("Table 1: primitive benchmarks, this host vs. PC-RT/Mach",
		"benchmark", "this host", "paper (RT/Mach)")
	t.AddRow("procedure call, 32-byte arg", fmtDur(measure(100000, func() {
		sink = procCall(arg32)
	})), "12 µs")
	buf := make([]byte, 1024)
	dst := make([]byte, 1024)
	t.AddRow("data copy, 1 KB", fmtDur(measure(100000, func() {
		copy(dst, buf)
	})), "~188 µs/KB")
	t.AddRow("kernel call, getpid", fmtDur(measure(100000, func() {
		sinkInt = os.Getpid()
	})), "149 µs")
	ch := make(chan int, 1)
	t.AddRow("local message, buffered chan send/recv", fmtDur(measure(100000, func() {
		ch <- 1
		<-ch
	})), "1.5 ms (local IPC)")
	hand := make(chan int)
	done := make(chan struct{})
	//lint:rawgo host microbenchmark measures a real goroutine handoff
	go func() {
		for range hand {
			hand2 <- 1
		}
		close(done)
	}()
	t.AddRow("context switch, goroutine handoff", fmtDur(measure(20000, func() {
		hand <- 1
		<-hand2
	})), "137 µs (swtch)")
	close(hand)
	<-done
	if f, err := os.CreateTemp("", "camelot-bench"); err == nil {
		defer os.Remove(f.Name())
		block := make([]byte, 4096)
		t.AddRow("synchronous file write, 4 KB", fmtDur(measure(50, func() {
			f.WriteAt(block, 0) //nolint:errcheck
			f.Sync()            //nolint:errcheck
		})), "26.8 ms (raw disk track)")
		f.Close()
	}
	return t
}

var (
	sink    int
	sinkInt int
	arg32   [32]byte
	hand2   = make(chan int, 1)
)

//go:noinline
func procCall(a [32]byte) int { return int(a[0]) + int(a[31]) }

// measure times fn over n iterations and returns the per-iteration
// cost.
func measure(n int, fn func()) time.Duration {
	start := time.Now() //lint:walltime host microbenchmark deliberately measures real elapsed time
	for i := 0; i < n; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(n) //lint:walltime host microbenchmark deliberately measures real elapsed time
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return d.Round(time.Nanosecond).String()
	case d < time.Millisecond:
		return d.Round(10 * time.Nanosecond).String()
	default:
		return d.Round(10 * time.Microsecond).String()
	}
}

// Table2 validates that the simulated substrate charges exactly the
// primitive costs of the paper's Table 2: each primitive is exercised
// in a fresh simulation and its measured virtual-time cost printed
// beside the configured value.
func Table2(p params.Params) *stats.Table {
	t := stats.NewTable("Table 2: latency of Camelot primitives (simulated, ms)",
		"primitive", "configured", "measured")

	row := func(name string, want time.Duration, got time.Duration) {
		t.AddRowf(name, ms(want), ms(got))
	}

	// Datagram: send-to-delivery time minus the send cycle.
	{
		k := sim.New(1)
		net := transport.NewNetwork(k, transport.Config{Latency: p.Datagram, SendCycle: p.SendCycle})
		var at rt.Time
		net.Register(2, func(transport.Datagram) { at = k.Now() })
		k.Go("m", func() { net.Send(1, 2, "x") })
		k.Run()
		row("datagram (one-way)", p.Datagram, time.Duration(at)-p.SendCycle)
		row("datagram send cycle", p.SendCycle, p.SendCycle)
	}
	// Log force.
	{
		k := sim.New(1)
		var got time.Duration
		k.Go("m", func() {
			l := wal.Open(k, wal.NewMemStore(), wal.Config{ForceLatency: p.LogForce})
			defer l.Close()
			lsn, _ := l.Append(&wal.Record{Type: wal.RecCommit, TID: tid.Top(tid.MakeFamily(1, 1))})
			start := k.Now()
			l.Force(lsn) //nolint:errcheck
			got = time.Duration(k.Now() - start)
		})
		k.Run()
		row("log force", p.LogForce, got)
	}
	// The IPC and lock primitives are direct charges.
	row("local in-line IPC", p.LocalIPC, p.LocalIPC)
	row("local in-line IPC to server", p.LocalIPCServer, p.LocalIPCServer)
	row("local out-of-line IPC", p.OutOfLineIPC, p.OutOfLineIPC)
	row("local one-way in-line message", p.LocalOneWay, p.LocalOneWay)
	row("remote RPC", p.RemoteRPC, p.RemoteRPC)
	row("get lock", p.GetLock, p.GetLock)
	row("drop lock", p.DropLock, p.DropLock)
	return t
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
