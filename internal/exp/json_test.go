package exp

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateBenchSchema = flag.Bool("update-bench-schema", false,
	"rewrite testdata/bench_schema.golden from the current report shape")

// TestBenchReportSchemaGolden pins the camelot-bench/v1 report shape:
// the schema string, the experiment names and titles, the column
// headers, and the row count of every table. Cell values are host- or
// trial-dependent and deliberately not pinned. A failure here means
// the machine-readable output changed shape — either fix the change
// or bump BenchSchema and regenerate with -update-bench-schema.
func TestBenchReportSchemaGolden(t *testing.T) {
	rep := RunAllJSON(true)

	if rep.Schema != BenchSchema {
		t.Fatalf("Schema = %q, want %q", rep.Schema, BenchSchema)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !strings.Contains(string(raw), `"schema":"camelot-bench/v1"`) {
		t.Fatalf("serialized report lacks the schema tag: %.120s", raw)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "schema %s\n", rep.Schema)
	for _, tb := range rep.Tables {
		fmt.Fprintf(&b, "table %s | %s | %s | rows=%d\n",
			tb.Name, tb.Title, strings.Join(tb.Header, ", "), len(tb.Rows))
	}
	got := b.String()

	golden := filepath.Join("testdata", "bench_schema.golden")
	if *updateBenchSchema {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-bench-schema): %v", err)
	}
	if got != string(want) {
		t.Errorf("bench schema drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}
