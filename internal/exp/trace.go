package exp

import (
	"fmt"
	"strings"
	"time"

	"camelot/camelot"
	"camelot/internal/analysis"
	"camelot/internal/params"
	"camelot/internal/sim"
)

// Figure1 regenerates the paper's Figure 1 — "Execution of a
// Transaction" — as an annotated, timestamped narration of the
// minimal one-subordinate update transaction, followed by the
// measured end-to-end time from a live simulation of the same
// transaction. The eleven steps are the paper's own captions.
func Figure1(p params.Params) string {
	var sb strings.Builder
	sb.WriteString("Figure 1: Execution of a Transaction (one update at one subordinate)\n\n")

	steps := []struct {
		text string
		cost time.Duration
	}{
		{"Application uses the CommMan as a name server, getting a port to the data server", 0},
		{"Application begins a transaction by getting a TID from TranMan", p.LocalIPC},
		{"Application sends a message requesting service (remote operation)", p.RemoteRPC},
		{"Server notifies TranMan that it is taking part in the transaction (join)", 0},
		{"Server sets the lock(s), does the update, reports old/new values to the disk manager (logged as late as possible)", 0},
		{"Server completes the operation and replies to the Application", 0},
		{"Application tells the transaction manager to try to commit", p.LocalIPC},
		{"TranMan asks the Server whether it is willing to commit; the Server says it is", p.LocalIPCServer},
		{"TranMan writes a commit record into the log (the only forced write of a local transaction)", p.LogForce},
		{"TranMan responds to the Application: committed", 0},
		{"TranMan tells the Server to drop the locks held by the transaction", p.LocalOneWay + p.DropLock},
	}
	var at time.Duration
	for i, s := range steps {
		at += s.cost
		fmt.Fprintf(&sb, "  %2d. [t=%6.1f ms] %s\n", i+1, ms(at), s.text)
	}

	// Live run of the same minimal transaction.
	k := sim.New(5)
	cfg := camelot.DefaultConfig()
	cfg.Params = p
	c := camelot.NewCluster(k, cfg)
	c.AddNode(1).AddServer("srv1")
	c.AddNode(2).AddServer("srv2")
	var elapsed time.Duration
	k.Go("txn", func() {
		start := k.Now()
		tx, err := c.Node(1).Begin()
		if err != nil {
			return
		}
		tx.Write("srv1", "a", []byte("1")) //nolint:errcheck
		tx.Write("srv2", "b", []byte("2")) //nolint:errcheck
		tx.Commit()                        //nolint:errcheck
		elapsed = time.Duration(k.Now() - start)
		k.Stop()
	})
	k.RunUntil(time.Minute)

	static := analysis.TwoPhaseUpdateCompletion(p, 1)
	fmt.Fprintf(&sb, "\n  measured end-to-end (simulated): %.1f ms", ms(elapsed))
	fmt.Fprintf(&sb, "\n  static completion path:          %.1f ms (underestimate, as in the paper)\n",
		static.TotalMs())
	return sb.String()
}
