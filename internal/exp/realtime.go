package exp

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"camelot/camelot"
	"camelot/internal/params"
	"camelot/internal/rt"
	"camelot/internal/stats"
)

// This experiment has no analogue in the paper's tables: it measures
// this reproduction itself. The §3.4 two-level locking refactor
// claims that independent transaction families no longer serialize on
// one manager-wide mutex; the only honest way to check that is to run
// many families on the real Go runtime and watch throughput rise with
// the number of OS-level processors. Everything else in this package
// runs on the simulation kernel, where concurrency is cooperative and
// scaling cannot be observed.

// RealtimeScalingResult is one measured point of the scaling sweep.
type RealtimeScalingResult struct {
	Procs     int           // GOMAXPROCS during the run
	Workers   int           // concurrent application loops (≈ families in flight)
	Committed int           // transactions committed inside the window
	Window    time.Duration // measurement window (wall clock)
	TPS       float64
}

// scalingWork burns a calibrated slice of CPU, standing in for the
// application and server processing that accompanies each transaction
// (the paper's application/server "pairs" did real work too). It is
// pure compute so the speedup ceiling is set by GOMAXPROCS, not I/O.
func scalingWork(seed uint64) []byte {
	h := seed*0x9E3779B97F4A7C15 + 1
	for i := 0; i < 50_000; i++ {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
	}
	var out [8]byte
	for i := range out {
		out[i] = byte(h >> (8 * i))
	}
	return out[:]
}

// MeasureRealtimeScaling runs a closed-loop update workload — workers
// independent application loops, each with its own data server and
// one family in flight at a time — on the ordinary Go runtime with
// GOMAXPROCS fixed at procs, and reports committed throughput.
func MeasureRealtimeScaling(procs, workers int, window time.Duration) RealtimeScalingResult {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	r := rt.Real()
	c := camelot.NewCluster(r, camelot.Config{
		Params:           params.Params{}, // measure the host, not the simulated testbed
		Threads:          workers + 2,
		LogFlushInterval: time.Millisecond,
		LockTimeout:      time.Second,
		RetryInterval:    100 * time.Millisecond,
		InquireInterval:  200 * time.Millisecond,
		PromotionTimeout: 200 * time.Millisecond,
		AckFlushInterval: 50 * time.Millisecond,
		RPCTimeout:       time.Second,
	})
	n := c.AddNode(1)
	for w := 0; w < workers; w++ {
		n.AddServer(fmt.Sprintf("pair%d", w))
	}

	var stop atomic.Bool
	var committed atomic.Int64
	wg := rt.NewWaitGroup(r)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		r.Go(fmt.Sprintf("scaling-worker%d", w), func() {
			defer wg.Done()
			srv := fmt.Sprintf("pair%d", w)
			for i := 0; !stop.Load(); i++ {
				tx, err := n.Begin()
				if err != nil {
					return
				}
				key := fmt.Sprintf("k%d", i%64)
				if err := tx.Write(srv, key, scalingWork(uint64(w)<<32|uint64(i))); err != nil {
					tx.Abort() //nolint:errcheck
					continue
				}
				if err := tx.Commit(); err == nil {
					committed.Add(1)
				}
			}
		})
	}

	r.Sleep(window / 4) // warm up: steady state before counting
	committed.Store(0)
	r.Sleep(window)
	total := committed.Load()
	stop.Store(true)
	wg.Wait()
	n.Crash() // stops the manager threads and the log flusher

	return RealtimeScalingResult{
		Procs:     procs,
		Workers:   workers,
		Committed: int(total),
		Window:    window,
		TPS:       float64(total) / window.Seconds(),
	}
}

// RealtimeScaling sweeps GOMAXPROCS over procs (entries above
// runtime.NumCPU() are skipped) and tabulates throughput and the
// speedup relative to the first measured point.
func RealtimeScaling(procs []int, workers int, window time.Duration) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("R1: Real-Runtime Family Scaling (%d workers, %s window)", workers, window),
		"GOMAXPROCS", "TPS", "speedup")
	base := 0.0
	for _, p := range procs {
		if p > runtime.NumCPU() {
			continue
		}
		res := MeasureRealtimeScaling(p, workers, window)
		if base == 0 {
			base = res.TPS
		}
		speedup := "1.00x"
		if base > 0 {
			speedup = fmt.Sprintf("%.2fx", res.TPS/base)
		}
		t.AddRowf(fmt.Sprintf("%d", p), res.TPS, speedup)
	}
	return t
}
