package exp

import (
	"fmt"
	"io"

	"camelot/internal/analysis"
	"camelot/internal/params"
)

// RunAll executes every experiment in the repository's index
// (DESIGN.md §4) and writes paper-style output to w. quick trims the
// trial counts so the whole suite finishes in seconds.
func RunAll(w io.Writer, quick bool) {
	trials := 25
	if quick {
		trials = 8
	}
	paper := params.Paper()
	vax := params.VAX()

	section := func(s string) { fmt.Fprintf(w, "\n%s\n\n", s) }

	section("== T1: host primitive benchmarks (paper Table 1) ==")
	fmt.Fprintln(w, Table1())

	section("== T2: simulated Camelot primitives (paper Table 2) ==")
	fmt.Fprintln(w, Table2(paper))

	section("== F1: execution of a transaction (paper Figure 1) ==")
	fmt.Fprintln(w, Figure1(paper))

	section("== T3: static vs empirical latency (paper Table 3) ==")
	breakdowns, t3 := Table3(paper, trials)
	fmt.Fprintln(w, breakdowns)
	fmt.Fprintln(w, t3)

	section("== F2: two-phase commit latency (paper Figure 2) ==")
	fmt.Fprintln(w, Figure2(paper, trials))

	section("== F3: non-blocking commit latency (paper Figure 3) ==")
	fmt.Fprintln(w, Figure3(paper, trials))

	section("== F6: three-way commit latency (2PC vs Paxos Commit vs NB) ==")
	fmt.Fprintln(w, ThreeWayCommit(paper, trials))

	section("== F4: update transaction throughput (paper Figure 4) ==")
	fmt.Fprintln(w, Figure4(vax))

	section("== F5: read transaction throughput (paper Figure 5) ==")
	fmt.Fprintln(w, Figure5(vax))

	section("== E1: RPC latency breakdown (paper §4.1) ==")
	fmt.Fprintln(w, RPCBreakdown(paper, 10*trials))

	section("== E2: multicast variance (paper §4.2) ==")
	fmt.Fprintln(w, MulticastVariance(paper, 4*trials))

	section("== E3: lock contention, back-to-back transactions (paper §4.2) ==")
	fmt.Fprintln(w, LockContention(paper, trials))

	section("== A1: ablation — group commit ==")
	fmt.Fprintln(w, AblationGroupCommit(vax))

	section("== A2: ablation — read-only optimization ==")
	fmt.Fprintln(w, AblationReadOnly(paper, trials))

	section("== A3: ablation — commit variants ==")
	fmt.Fprintln(w, AblationCommitVariants(paper, trials))

	section("== static analysis: full path formulas ==")
	for _, b := range []analysis.Breakdown{
		analysis.LocalUpdateCompletion(paper),
		analysis.LocalReadCompletion(paper),
		analysis.TwoPhaseUpdateCompletion(paper, 1),
		analysis.TwoPhaseUpdateCritical(paper, 1),
		analysis.TwoPhaseReadCompletion(paper, 1),
		analysis.NonBlockingUpdateCompletion(paper, 1),
		analysis.NonBlockingUpdateCritical(paper, 1),
		analysis.NonBlockingReadCompletion(paper, 1),
	} {
		fmt.Fprintln(w, b)
	}
}
