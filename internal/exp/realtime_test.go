package exp

import (
	"runtime"
	"testing"
	"time"
)

// TestRealtimeScalingSpeedup is the acceptance check for the §3.4
// per-family locking refactor: with the global manager mutex gone,
// independent families run in parallel, so adding OS threads must add
// throughput. Under the old single-mutex design this ratio sat near
// 1.0 regardless of GOMAXPROCS.
func TestRealtimeScalingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time measurement")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need ≥4 CPUs to measure 1→4 scaling, have %d", runtime.NumCPU())
	}
	const (
		workers = 8
		window  = 300 * time.Millisecond
		target  = 1.5
	)
	// One retry absorbs a noisy neighbor on shared CI hardware.
	var ratio float64
	for attempt := 0; attempt < 2; attempt++ {
		r1 := MeasureRealtimeScaling(1, workers, window)
		r4 := MeasureRealtimeScaling(4, workers, window)
		if r1.Committed == 0 {
			t.Fatalf("no transactions committed at GOMAXPROCS=1")
		}
		ratio = r4.TPS / r1.TPS
		t.Logf("attempt %d: GOMAXPROCS 1 → %.0f TPS, 4 → %.0f TPS (%.2fx)",
			attempt, r1.TPS, r4.TPS, ratio)
		if ratio > target {
			return
		}
	}
	t.Errorf("1→4 OS-thread speedup = %.2fx, want > %.1fx", ratio, target)
}
