package exp

import (
	"time"

	"camelot/camelot"
	"camelot/internal/params"
	"camelot/internal/sim"
	"camelot/internal/stats"
)

// RPCBreakdown reproduces §4.1: measure the latency of remote
// operation calls through the communication-manager path and compare
// with the sum of its components (19.1 + 3 + 3.2 + 3.2 = 28.5 ms on
// the paper's hardware).
func RPCBreakdown(p params.Params, calls int) *stats.Table {
	if calls <= 0 {
		calls = 100
	}
	k := sim.New(3)
	cfg := camelot.DefaultConfig()
	cfg.Params = p
	c := camelot.NewCluster(k, cfg)
	n1 := c.AddNode(1)
	n1.AddServer("srv1")
	c.AddNode(2).AddServer("srv2")

	var sample stats.Sample
	k.Go("rpc", func() {
		seedTx, err := c.Node(2).Begin()
		if err != nil {
			return
		}
		seedTx.Write("srv2", "k", []byte("seed")) //nolint:errcheck
		seedTx.Commit()                           //nolint:errcheck
		k.Sleep(time.Second)
		tx, err := n1.Begin()
		if err != nil {
			return
		}
		for i := 0; i < calls; i++ {
			start := k.Now()
			if _, err := tx.Read("srv2", "k"); err != nil {
				break
			}
			sample.AddDuration(time.Duration(k.Now() - start))
		}
		tx.Abort() //nolint:errcheck
		k.Stop()
	})
	k.RunUntil(10 * time.Minute)

	t := stats.NewTable("RPC latency breakdown (§4.1, ms)", "component", "model", "paper")
	total := 0.0
	for _, comp := range n1.Comm().Breakdown() {
		ms := float64(comp.Cost) / float64(time.Millisecond)
		total += ms
		t.AddRowf(comp.Name, ms, ms)
	}
	t.AddRowf("SUM of components", total, 28.5)
	t.AddRowf("measured per call (mean of "+itoa(sample.N())+")", sample.Mean(), 28.5)
	return t
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// MulticastVariance reproduces the §4.2 observation that multicasting
// coordinator fan-outs does not reduce mean commit latency but
// substantially reduces its variance, because the serial send loop's
// per-send scheduling jitter accumulates.
func MulticastVariance(p params.Params, trials int) *stats.Table {
	p.Jitter = 6 * time.Millisecond
	t := stats.NewTable("Multicast vs serial unicast, 3-subordinate update commit (ms)",
		"fan-out", "mean", "stddev")
	for _, mc := range []bool{false, true} {
		name := "serial unicast"
		if mc {
			name = "multicast"
		}
		res := MeasureLatency(LatencySpec{
			Subs: 3, Opts: camelot.Options{Multicast: mc},
			Trials: trials, Params: p, Seed: 99,
			// Isolated trials: the variance under study is per-commit
			// send jitter, not inter-transaction coupling.
			Gap: 2 * time.Second,
		})
		t.AddRowf(name, res.Total.Mean(), res.Total.StdDev())
	}
	return t
}

// LockContention reproduces the §4.2 back-to-back analysis: under
// the *unoptimized* protocol every transaction locks and updates the
// same data element, and the second transaction's remote operation
// arrives before the first has dropped its remote locks (which wait
// for the subordinate's forced commit record) — about 5 ms of waiting
// by the paper's accounting. The optimized protocol drops locks
// before the force, eliminating the wait; both rows are shown.
func LockContention(p params.Params, trials int) *stats.Table {
	run := func(opts camelot.Options) (contended, uncontended stats.Sample) {
		k := sim.New(11)
		cfg := camelot.DefaultConfig()
		cfg.Params = p
		c := camelot.NewCluster(k, cfg)
		n1 := c.AddNode(1)
		n1.AddServer("srv1")
		c.AddNode(2).AddServer("srv2")
		k.Go("load", func() {
			measureOp := func(s *stats.Sample) bool {
				tx, err := n1.Begin()
				if err != nil {
					return false
				}
				start := k.Now()
				if err := tx.Write("srv2", "e", []byte("v")); err != nil {
					tx.Abort() //nolint:errcheck
					return false
				}
				s.AddDuration(time.Duration(k.Now() - start))
				return tx.CommitWith(opts) == nil
			}
			for i := 0; i < trials; i++ {
				// Uncontended: long idle before the operation.
				k.Sleep(2 * time.Second)
				if !measureOp(&uncontended) {
					break
				}
				// Contended: issue the next transaction's operation
				// the instant the previous commit returns.
				if !measureOp(&contended) {
					break
				}
			}
			k.Stop()
		})
		k.RunUntil(time.Duration(trials+10) * 10 * time.Second)
		return
	}

	t := stats.NewTable("Lock contention on back-to-back transactions (remote operation, ms)",
		"protocol / case", "mean op latency", "derived wait")
	unoptC, unoptU := run(camelot.Options{ForceSubCommit: true, ImmediateAck: true})
	t.AddRowf("unoptimized, idle element", unoptU.Mean(), 0.0)
	t.AddRowf("unoptimized, back-to-back", unoptC.Mean(), unoptC.Mean()-unoptU.Mean())
	optC, optU := run(camelot.Options{})
	t.AddRowf("optimized, idle element", optU.Mean(), 0.0)
	t.AddRowf("optimized, back-to-back", optC.Mean(), optC.Mean()-optU.Mean())
	t.AddRowf("paper's static estimate (unoptimized)", 0.0, 5.0)
	return t
}

// AblationReadOnly measures what the read-only optimization is worth:
// a distributed transaction that updates the coordinator and only
// reads at the subordinate, committed with the optimization on and
// off.
func AblationReadOnly(p params.Params, trials int) *stats.Table {
	t := stats.NewTable("Ablation: read-only optimization (1 update + 1 read-only sub, ms)",
		"configuration", "mean", "stddev", "sub log records")
	for _, disable := range []bool{false, true} {
		k := sim.New(21)
		cfg := camelot.DefaultConfig()
		cfg.Params = p
		c := camelot.NewCluster(k, cfg)
		c.AddNode(1).AddServer("srv1")
		n2 := c.AddNode(2)
		n2.AddServer("srv2")
		var sample stats.Sample
		k.Go("load", func() {
			seed, err := n2.Begin()
			if err != nil {
				return
			}
			seed.Write("srv2", "k", []byte("seed")) //nolint:errcheck
			seed.Commit()                           //nolint:errcheck
			k.Sleep(time.Second)
			for i := 0; i < trials; i++ {
				start := k.Now()
				tx, err := c.Node(1).Begin()
				if err != nil {
					return
				}
				tx.Write("srv1", "x", []byte{byte(i)}) //nolint:errcheck
				tx.Read("srv2", "k")                   //nolint:errcheck
				if err := tx.CommitWith(camelot.Options{DisableReadOnlyOpt: disable}); err != nil {
					continue
				}
				sample.AddDuration(time.Duration(k.Now() - start))
				k.Sleep(2 * time.Second)
			}
			k.Stop()
		})
		k.RunUntil(time.Duration(trials+10) * 10 * time.Second)
		name := "read-only optimization ON"
		if disable {
			name = "read-only optimization OFF"
		}
		t.AddRowf(name, sample.Mean(), sample.StdDev(), n2.Log().Appends())
	}
	return t
}

// AblationCommitVariants dissects the delayed-commit optimization the
// way §4.2's four-variant experiment does, at one subordinate.
func AblationCommitVariants(p params.Params, trials int) *stats.Table {
	t := stats.NewTable("Ablation: commit variants, 1 subordinate (ms)",
		"variant", "mean", "stddev", "tm-only", "sub forces/txn")
	for _, v := range []struct {
		name string
		opts camelot.Options
	}{
		{"optimized (lazy commit rec, piggyback ack)", camelot.Options{}},
		{"semi-optimized (forced commit rec, delayed ack)", camelot.Options{ForceSubCommit: true}},
		{"unoptimized (forced commit rec, immediate ack)", camelot.Options{ForceSubCommit: true, ImmediateAck: true}},
	} {
		res := MeasureLatency(LatencySpec{
			Subs: 1, Opts: v.opts, Trials: trials, Params: p, Seed: 31,
		})
		// Subordinate forces per transaction: prepare always, commit
		// record only when forced.
		forces := 1.0
		if v.opts.ForceSubCommit {
			forces = 2.0
		}
		t.AddRowf(v.name, res.Total.Mean(), res.Total.StdDev(), res.TM.Mean(), forces)
	}
	return t
}
