package det

import (
	"reflect"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[uint32]string{3: "c", 1: "a", 2: "b"}
	for i := 0; i < 50; i++ { // map order is randomized; 50 draws would expose instability
		got := SortedKeys(m)
		if want := []uint32{1, 2, 3}; !reflect.DeepEqual(got, want) {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
	if got := SortedKeys(map[string]int(nil)); len(got) != 0 {
		t.Fatalf("SortedKeys(nil) = %v, want empty", got)
	}
}

func TestSortedKeysFunc(t *testing.T) {
	type key struct{ a, b uint32 }
	m := map[key]bool{{2, 1}: true, {1, 2}: true, {1, 1}: true}
	less := func(x, y key) bool {
		if x.a != y.a {
			return x.a < y.a
		}
		return x.b < y.b
	}
	for i := 0; i < 50; i++ {
		got := SortedKeysFunc(m, less)
		want := []key{{1, 1}, {1, 2}, {2, 1}}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("SortedKeysFunc = %v, want %v", got, want)
		}
	}
}
