// Package det holds the canonical sorted-iteration helpers for the
// deterministic packages (internal/core, internal/sim, internal/wal,
// internal/transport, internal/trace, camelot).
//
// Go's map iteration order is deliberately randomized, so a `for
// range` over a map whose visit order reaches anything observable — a
// datagram send, a lock wake-up, a trace event — breaks byte-identical
// simulation replay. That is exactly the bug class the deterministic-
// replay test caught in core/messaging.go's retry fan-out. The
// camelot-lint maprange analyzer flags every map range in the
// deterministic packages; the approved fixes are to route the keys
// through this package or to justify the site with a
// `//lint:ordered <why>` comment when the loop is provably
// order-insensitive.
//
// This package itself is the one place allowed to range over maps
// without annotation: every helper here sorts before anything escapes.
package det

import (
	"cmp"
	"sort"
)

// SortedKeys returns m's keys in ascending order. It is the canonical
// way for a deterministic package to iterate a map with an ordered
// key type:
//
//	for _, s := range det.SortedKeys(f.remoteSites) { ... }
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// SortedKeysFunc returns m's keys ordered by less, for key types that
// are comparable but not ordered (structs such as tid.TID).
func SortedKeysFunc[M ~map[K]V, K comparable, V any](m M, less func(a, b K) bool) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	return keys
}
