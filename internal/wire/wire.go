// Package wire defines the datagram messages exchanged between
// transaction managers and their binary encoding.
//
// Camelot transaction managers do not use the communication manager
// for their own traffic: "transaction managers on different sites
// communicate using datagrams" and implement timeout/retry and
// duplicate detection themselves (paper §4.2, footnote 1). This
// package is that datagram vocabulary: the two-phase commit messages
// (with the presumed-abort and delayed-commit optimizations), the
// non-blocking protocol's replication-phase messages, the abort
// protocol, and the status/recovery messages.
package wire

import (
	"sort"
	"sync"

	"camelot/internal/tid"
)

// Kind discriminates datagram types.
type Kind uint8

// Datagram kinds. The 2PC group implements presumed-abort two-phase
// commit; the NB group implements the non-blocking three-phase
// protocol of paper §3.3.
const (
	KInvalid Kind = iota

	// Two-phase commit.
	KPrepare   // coordinator → subordinate: phase one
	KVote      // subordinate → coordinator: yes / no / read-only
	KCommit    // coordinator → subordinate: outcome commit
	KAbort     // coordinator → subordinate: outcome abort (also abort protocol)
	KCommitAck // subordinate → coordinator: commit record stable (may be piggybacked)

	// Non-blocking commit.
	KNBPrepare      // carries full site list and quorum sizes (change 1)
	KNBVote         // subordinate vote
	KNBReplicate    // replication phase: commit-intent to force (change 3)
	KNBReplicateAck // intent forced
	KNBOutcome      // notify phase: final outcome
	KNBOutcomeAck   // outcome recorded (lets the coordinator forget, change 4)
	KNBStatusReq    // promoted coordinator asking where everyone stands (change 2)
	KNBStatusResp   // site's protocol state
	KNBAbortIntent  // promoted coordinator soliciting an abort-quorum record
	KNBAbortIntentAck

	// Presumed-abort inquiry: a prepared subordinate asking the
	// coordinator for a forgotten transaction's outcome.
	KInquire

	// Nested-transaction resolution, fire-and-forget: a committed
	// child's locks and updates merge into its parent at every site
	// the child touched; an aborted child's are undone (Duchamp's
	// abort protocol for nested distributed transactions).
	KChildCommit
	KChildAbort

	// Paxos Commit (Gray & Lamport). One Paxos instance per
	// participant's vote; the acceptor set is shared across all
	// instances of a transaction, so phase 2a/2b datagrams batch every
	// instance a sender speaks for. Ballot 0 is reserved for the
	// participant itself (the ballot-0 optimization: the fault-free
	// path is one 2a round from each RM to the acceptors); takeover
	// ballots carry the promoting site's id.
	KPaxosPrepare // leader → RM: vote request; carries Sites + Acceptors
	KPaxosVote    // RM → leader directly: a No vote (abort short-circuit)
	KPaxos2a      // proposer → acceptor: ballot-0 RM vote, or takeover values
	KPaxos2b      // acceptor → leader: accepted; batches all instances
	KPaxos1a      // takeover leader → acceptor: prepare ballot b
	KPaxos1b      // acceptor → takeover leader: promise + accepted state
)

var kindNames = map[Kind]string{
	KPrepare: "PREPARE", KVote: "VOTE", KCommit: "COMMIT", KAbort: "ABORT",
	KCommitAck: "COMMIT-ACK", KNBPrepare: "NB-PREPARE", KNBVote: "NB-VOTE",
	KNBReplicate: "NB-REPLICATE", KNBReplicateAck: "NB-REPLICATE-ACK",
	KNBOutcome: "NB-OUTCOME", KNBOutcomeAck: "NB-OUTCOME-ACK",
	KNBStatusReq: "NB-STATUS-REQ", KNBStatusResp: "NB-STATUS-RESP",
	KNBAbortIntent: "NB-ABORT-INTENT", KNBAbortIntentAck: "NB-ABORT-INTENT-ACK",
	KInquire: "INQUIRE", KChildCommit: "CHILD-COMMIT", KChildAbort: "CHILD-ABORT",
	KPaxosPrepare: "PAXOS-PREPARE", KPaxosVote: "PAXOS-VOTE",
	KPaxos2a: "PAXOS-2A", KPaxos2b: "PAXOS-2B",
	KPaxos1a: "PAXOS-1A", KPaxos1b: "PAXOS-1B",
}

// String returns the protocol name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "INVALID"
}

// Registered reports whether k is a kind the protocol defines: a row
// in the kind registry (kindNames). The codec consults this in both
// directions, so registry membership — not a numeric range compare —
// is what makes a kind decodable on the wire.
func (k Kind) Registered() bool {
	_, ok := kindNames[k]
	return ok
}

// Kinds enumerates every registered kind in ascending order. Tests
// and coverage tables iterate this instead of hand-writing the first
// and last member, so a new kind is swept in automatically.
func Kinds() []Kind {
	ks := make([]Kind, 0, len(kindNames))
	for k := range kindNames {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Vote is a subordinate's phase-one answer.
type Vote uint8

// Phase-one votes. VoteReadOnly triggers the read-only optimization:
// the site writes no log records and is excluded from later phases.
const (
	VoteInvalid Vote = iota
	VoteYes
	VoteNo
	VoteReadOnly
)

// String returns the vote name.
func (v Vote) String() string {
	switch v {
	case VoteYes:
		return "YES"
	case VoteNo:
		return "NO"
	case VoteReadOnly:
		return "READ-ONLY"
	}
	return "INVALID"
}

// Outcome is a transaction's final fate.
type Outcome uint8

// Outcomes. OutcomeUnknown appears only in status responses from
// sites that have not yet learned the decision.
const (
	OutcomeUnknown Outcome = iota
	OutcomeCommit
	OutcomeAbort
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case OutcomeCommit:
		return "COMMIT"
	case OutcomeAbort:
		return "ABORT"
	}
	return "UNKNOWN"
}

// NBState is a site's position in the non-blocking protocol, reported
// in KNBStatusResp during coordinator promotion.
type NBState uint8

// Non-blocking protocol states, ordered by progress. A site holding
// NBReplicated has forced a commit-intent record and therefore may
// never join an abort quorum (change 4).
const (
	NBUnknown NBState = iota
	NBPrepared
	NBReplicated
	NBAbortIntent
	NBCommitted
	NBAborted
)

// String returns the state name.
func (s NBState) String() string {
	switch s {
	case NBPrepared:
		return "PREPARED"
	case NBReplicated:
		return "REPLICATED"
	case NBAbortIntent:
		return "ABORT-INTENT"
	case NBCommitted:
		return "COMMITTED"
	case NBAborted:
		return "ABORTED"
	}
	return "UNKNOWN"
}

// Msg is a transaction-manager datagram. A single struct with
// optional fields keeps the codec simple and mirrors a fixed wire
// header plus kind-specific body.
type Msg struct {
	Kind Kind
	TID  tid.TID
	// Parent is the parent transaction for nested-resolution
	// messages (KChildCommit).
	Parent tid.TID
	From   tid.SiteID
	To     tid.SiteID
	// Seq is a per-sender sequence number used for duplicate
	// detection and retry matching.
	Seq uint64
	// Flags carries the commit-variant options a subordinate must
	// honor (see the Flag constants).
	Flags uint8

	// Sites is the participant list (KPrepare under non-blocking,
	// KNBPrepare, KNBReplicate, KNBStatusReq).
	Sites []tid.SiteID
	// CommitQuorum and AbortQuorum are the replication-phase quorum
	// sizes (change 1 of §3.3).
	CommitQuorum uint16
	AbortQuorum  uint16

	Vote    Vote
	Outcome Outcome
	State   NBState

	// Votes carries the coordinator's collected phase-one information
	// in KNBReplicate — "the information that it will use to make the
	// commit/abort decision" — so any promoted coordinator can finish.
	Votes []SiteVote

	// AckTIDs carries piggybacked commit-acks for other transactions
	// (the delayed-commit optimization batches acks onto later
	// traffic).
	AckTIDs []tid.TID

	// Ballot is the Paxos ballot number (KPaxos1a/1b/2a/2b). Ballot 0
	// belongs to the instance's own RM; takeover ballots encode the
	// promoting site so concurrent promoters never collide.
	Ballot uint64
	// Acceptors is the transaction's shared acceptor set
	// (KPaxosPrepare), fixed by the original leader for the family's
	// lifetime.
	Acceptors []tid.SiteID
	// Accepted reports an acceptor's per-instance accepted state in
	// KPaxos1b: for each instance (keyed by the RM's site), the
	// highest ballot at which it accepted a value and that value.
	Accepted []PaxosAccepted
}

// Reset clears m for reuse, truncating (not freeing) its slices so
// the backing arrays are reused by the next UnmarshalInto. It is the
// counterpart of PutMsg's recycling: scalars zero, slice capacity
// survives.
func (m *Msg) Reset() {
	sites, votes, acks := m.Sites[:0], m.Votes[:0], m.AckTIDs[:0]
	acceptors, accepted := m.Acceptors[:0], m.Accepted[:0]
	*m = Msg{Sites: sites, Votes: votes, AckTIDs: acks,
		Acceptors: acceptors, Accepted: accepted}
}

var msgPool = sync.Pool{New: func() any { return &Msg{} }}

// GetMsg returns a cleared Msg from the package pool. Callers that
// own the full lifecycle of a decoded message — the load generator's
// reply path, codec benchmarks — pair it with PutMsg to keep decode
// allocation-free. A Msg handed to an asynchronous consumer (e.g.
// core.Manager.Deliver, which parks the pointer on a work queue) must
// NOT be returned to the pool by the producer: the consumer still
// holds it.
func GetMsg() *Msg { return msgPool.Get().(*Msg) }

// PutMsg recycles m. The caller must not touch m afterwards.
func PutMsg(m *Msg) {
	m.Reset()
	msgPool.Put(m)
}

// TraceKind names the message for trace timelines (trace.Payload).
func (m *Msg) TraceKind() string { return m.Kind.String() }

// TraceTID attributes the datagram to a transaction for trace
// counters (trace.TxPayload). A pure ack batch carries no header TID;
// it is attributed to its first piggybacked ack so single-transaction
// budget tests see it.
func (m *Msg) TraceTID() tid.TID {
	if m.TID.IsZero() && len(m.AckTIDs) > 0 {
		return m.AckTIDs[0]
	}
	return m.TID
}

// SiteVote pairs a participant with its phase-one vote.
type SiteVote struct {
	Site tid.SiteID
	Vote Vote
}

// PaxosAccepted is one instance's accepted state at an acceptor,
// reported in KPaxos1b: the RM whose vote the instance decides, the
// ballot at which the acceptor last accepted, and the accepted value.
type PaxosAccepted struct {
	Site   tid.SiteID
	Ballot uint64
	Vote   Vote
}

// Msg.Flags bits: the experiment knobs of §4.2 that change
// subordinate behavior.
const (
	// FlagForceSubCommit: the subordinate must force its commit
	// record before acknowledging (the unoptimized protocol).
	FlagForceSubCommit uint8 = 1 << iota
	// FlagImmediateAck: send the commit-ack as its own datagram
	// rather than delaying it for piggybacking.
	FlagImmediateAck
	// FlagNoReadOnlyOpt: read-only sites must run the full update
	// path (ablation).
	FlagNoReadOnlyOpt
)
