package wire

import (
	"testing"

	"camelot/internal/tid"
)

// bigMsg builds a message with every variable-length section populated
// at ack-flush scale, so the allocation pins below exercise the worst
// case the hot path sees, not a toy header.
func bigMsg() *Msg {
	m := &Msg{
		Kind:         KPaxos1b,
		TID:          tid.TID{Family: 7, Seq: 9},
		Parent:       tid.TID{Family: 7, Seq: 3},
		From:         2,
		To:           5,
		Seq:          991,
		Flags:        FlagImmediateAck,
		CommitQuorum: 2,
		AbortQuorum:  2,
		Vote:         VoteYes,
		Outcome:      OutcomeCommit,
		State:        NBReplicated,
		Ballot:       4,
	}
	for i := 0; i < 16; i++ {
		m.Sites = append(m.Sites, tid.SiteID(i))
		m.Acceptors = append(m.Acceptors, tid.SiteID(i))
		m.Votes = append(m.Votes, SiteVote{Site: tid.SiteID(i), Vote: VoteYes})
		m.Accepted = append(m.Accepted, PaxosAccepted{Site: tid.SiteID(i), Ballot: uint64(i), Vote: VoteYes})
	}
	for i := 0; i < 64; i++ {
		m.AckTIDs = append(m.AckTIDs, tid.TID{Family: tid.FamilyID(i), Seq: tid.Seq(i)})
	}
	return m
}

// TestMarshalOneAlloc pins Marshal at exactly one allocation — the
// exact-size buffer — for a large ack-flush message. The old fixed
// 64-byte initial capacity regrew the buffer five times on this
// message.
func TestMarshalOneAlloc(t *testing.T) {
	m := bigMsg()
	allocs := testing.AllocsPerRun(200, func() {
		_ = Marshal(m)
	})
	if allocs != 1 {
		t.Fatalf("Marshal of large msg: %v allocs/op, want exactly 1", allocs)
	}
}

// TestRoundTripZeroAlloc pins the datagram hot path —
// AppendMarshal into a reused buffer, UnmarshalInto into reused Msg
// scratch — at zero allocations per round trip once the buffers have
// reached working size.
func TestRoundTripZeroAlloc(t *testing.T) {
	m := bigMsg()
	buf := make([]byte, 0, EncodedSize(m))
	var scratch Msg
	// Warm the scratch slices to working size.
	buf = AppendMarshal(buf[:0], m)
	if err := UnmarshalInto(&scratch, buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendMarshal(buf[:0], m)
		if err := UnmarshalInto(&scratch, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("marshal+unmarshal round trip: %v allocs/op, want 0", allocs)
	}
}

// TestEncodedSizeExact pins EncodedSize against the bytes Marshal
// actually produces, for the empty message, the big message, and each
// section populated alone.
func TestEncodedSizeExact(t *testing.T) {
	msgs := []*Msg{
		{Kind: KPrepare},
		bigMsg(),
		{Kind: KVote, Sites: []tid.SiteID{1, 2, 3}},
		{Kind: KCommitAck, AckTIDs: []tid.TID{{Family: 1, Seq: 1}}},
		{Kind: KPaxos1b, Accepted: []PaxosAccepted{{Site: 1, Ballot: 2, Vote: VoteYes}}},
	}
	for _, m := range msgs {
		if got, want := len(Marshal(m)), EncodedSize(m); got != want {
			t.Errorf("%s: Marshal produced %d bytes, EncodedSize says %d", m.Kind, got, want)
		}
	}
}

// TestUnmarshalIntoReuse checks that a recycled Msg decodes to the
// same value a fresh Unmarshal produces, even when the previous
// occupant had longer slices.
func TestUnmarshalIntoReuse(t *testing.T) {
	big := Marshal(bigMsg())
	small := Marshal(&Msg{Kind: KVote, TID: tid.TID{Family: 1, Seq: 2}, Vote: VoteNo})

	var scratch Msg
	if err := UnmarshalInto(&scratch, big); err != nil {
		t.Fatal(err)
	}
	if err := UnmarshalInto(&scratch, small); err != nil {
		t.Fatal(err)
	}
	if scratch.Kind != KVote || scratch.Vote != VoteNo || len(scratch.AckTIDs) != 0 ||
		len(scratch.Sites) != 0 || len(scratch.Accepted) != 0 {
		t.Fatalf("stale fields survived reuse: %+v", scratch)
	}
}

// TestMsgPool checks GetMsg returns cleared messages even after a
// populated one is recycled.
func TestMsgPool(t *testing.T) {
	m := GetMsg()
	if err := UnmarshalInto(m, Marshal(bigMsg())); err != nil {
		t.Fatal(err)
	}
	PutMsg(m)
	m2 := GetMsg()
	defer PutMsg(m2)
	if m2.Kind != KInvalid || len(m2.AckTIDs) != 0 || m2.Ballot != 0 {
		t.Fatalf("pooled msg not cleared: %+v", m2)
	}
}

// BenchmarkAppendMarshal pins the send-side hot path. Expect 0 B/op,
// 0 allocs/op.
func BenchmarkAppendMarshal(b *testing.B) {
	m := bigMsg()
	buf := make([]byte, 0, EncodedSize(m))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendMarshal(buf[:0], m)
	}
	_ = buf
}

// BenchmarkUnmarshalInto pins the receive-side hot path with pooled
// Msg scratch. Expect 0 B/op, 0 allocs/op.
func BenchmarkUnmarshalInto(b *testing.B) {
	data := Marshal(bigMsg())
	scratch := GetMsg()
	defer PutMsg(scratch)
	if err := UnmarshalInto(scratch, data); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := UnmarshalInto(scratch, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshal measures the one-allocation whole-message encode
// (the non-pooled path the portable transport uses).
func BenchmarkMarshal(b *testing.B) {
	m := bigMsg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Marshal(m)
	}
}
