package wire

import (
	"reflect"
	"testing"

	"camelot/internal/tid"
)

// FuzzUnmarshal checks the decoder never panics and that anything it
// accepts re-encodes to an equivalent message (decode∘encode∘decode
// is the identity on the decoded value).
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add(Marshal(&Msg{Kind: KPrepare, TID: tid.Top(tid.MakeFamily(1, 1)), From: 1, To: 2}))
	f.Add(Marshal(&Msg{
		Kind: KNBReplicate, TID: tid.Top(tid.MakeFamily(3, 9)),
		Sites: []tid.SiteID{1, 2, 3}, CommitQuorum: 2, AbortQuorum: 2,
		Votes: []SiteVote{{Site: 1, Vote: VoteYes}},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		again, err := Unmarshal(Marshal(m))
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("round trip changed the message:\n in: %+v\nout: %+v", m, again)
		}
	})
}
