package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"camelot/internal/tid"
)

func sampleMsg() *Msg {
	return &Msg{
		Kind:         KNBReplicate,
		TID:          tid.Top(tid.MakeFamily(3, 77)),
		From:         3,
		To:           5,
		Seq:          991,
		Sites:        []tid.SiteID{1, 2, 3},
		CommitQuorum: 2,
		AbortQuorum:  2,
		Vote:         VoteYes,
		Outcome:      OutcomeCommit,
		State:        NBReplicated,
		Votes:        []SiteVote{{Site: 1, Vote: VoteYes}, {Site: 2, Vote: VoteReadOnly}},
		AckTIDs:      []tid.TID{tid.Top(tid.MakeFamily(1, 4))},
	}
}

func TestRoundTripFull(t *testing.T) {
	m := sampleMsg()
	got, err := Unmarshal(Marshal(m))
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", m, got)
	}
}

func TestRoundTripMinimal(t *testing.T) {
	m := &Msg{Kind: KCommit, TID: tid.Top(tid.MakeFamily(1, 1)), From: 1, To: 2}
	got, err := Unmarshal(Marshal(m))
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", m, got)
	}
}

func TestRoundTripEveryKind(t *testing.T) {
	for _, k := range Kinds() {
		m := &Msg{Kind: k, TID: tid.Top(tid.MakeFamily(1, uint32(k)))}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			t.Fatalf("kind %v: %v", k, err)
		}
		if got.Kind != k {
			t.Fatalf("kind %v decoded as %v", k, got.Kind)
		}
	}
}

// TestRoundTripProperty drives random well-formed messages through
// the codec with testing/quick.
func TestRoundTripProperty(t *testing.T) {
	gen := func(r *rand.Rand) *Msg {
		m := &Msg{
			Kind:         Kind(1 + r.Intn(int(KChildAbort))),
			TID:          tid.TID{Family: tid.FamilyID(r.Uint64()), Seq: tid.Seq(r.Uint64())},
			From:         tid.SiteID(r.Uint32()),
			To:           tid.SiteID(r.Uint32()),
			Seq:          r.Uint64(),
			CommitQuorum: uint16(r.Uint32()),
			AbortQuorum:  uint16(r.Uint32()),
			Vote:         Vote(r.Intn(4)),
			Outcome:      Outcome(r.Intn(3)),
			State:        NBState(r.Intn(6)),
		}
		for i := r.Intn(5); i > 0; i-- {
			m.Sites = append(m.Sites, tid.SiteID(r.Uint32()))
		}
		for i := r.Intn(5); i > 0; i-- {
			m.Votes = append(m.Votes, SiteVote{Site: tid.SiteID(r.Uint32()), Vote: Vote(r.Intn(4))})
		}
		for i := r.Intn(5); i > 0; i-- {
			m.AckTIDs = append(m.AckTIDs, tid.TID{Family: tid.FamilyID(r.Uint64()), Seq: tid.Seq(r.Uint64())})
		}
		return m
	}
	prop := func(seed int64) bool {
		m := gen(rand.New(rand.NewSource(seed)))
		got, err := Unmarshal(Marshal(m))
		return err == nil && reflect.DeepEqual(m, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	full := Marshal(sampleMsg())
	for n := 0; n < len(full); n++ {
		if _, err := Unmarshal(full[:n]); err == nil {
			t.Fatalf("Unmarshal accepted %d-byte prefix of %d-byte message", n, len(full))
		}
	}
}

func TestUnmarshalTrailingGarbage(t *testing.T) {
	b := append(Marshal(sampleMsg()), 0xFF)
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("Unmarshal accepted trailing garbage")
	}
}

// TestUnmarshalEveryKindByte drives all 256 possible kind bytes
// through Unmarshal: registered kinds decode, every unregistered byte
// — zero, gaps in the numbering, everything above the last kind —
// fails uniformly with ErrBadKind. This is the table the old range
// check (`> KPaxos1b`) could not honestly pass: a kind constant added
// without a kindNames row would decode fine and stringify as INVALID.
func TestUnmarshalEveryKindByte(t *testing.T) {
	b := Marshal(sampleMsg())
	for v := 0; v <= 255; v++ {
		b[0] = byte(v)
		m, err := Unmarshal(b)
		if Kind(v).Registered() {
			if err != nil {
				t.Errorf("kind byte %d (%s): Unmarshal = %v, want ok", v, Kind(v), err)
			} else if m.Kind != Kind(v) {
				t.Errorf("kind byte %d decoded as %v", v, m.Kind)
			}
			continue
		}
		if !errors.Is(err, ErrBadKind) {
			t.Errorf("kind byte %d: Unmarshal err = %v, want ErrBadKind", v, err)
		}
	}
}

// TestMarshalDatagramRejectsUnregisteredKind pins the send side of
// the same contract: an unregistered kind must be refused at the
// sender, where the error can still name the message, instead of
// being bounced by every receiver as manufactured silent loss.
func TestMarshalDatagramRejectsUnregisteredKind(t *testing.T) {
	for _, k := range []Kind{KInvalid, Kind(200), Kind(255)} {
		m := sampleMsg()
		m.Kind = k
		if _, err := MarshalDatagram(m); !errors.Is(err, ErrBadKind) {
			t.Errorf("kind %d: MarshalDatagram err = %v, want ErrBadKind", k, err)
		}
	}
}

// TestUnmarshalFuzzDoesNotPanic feeds random bytes to the decoder;
// any outcome except a panic or huge allocation is acceptable.
func TestUnmarshalFuzzDoesNotPanic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		b := make([]byte, r.Intn(120))
		r.Read(b)
		_, _ = Unmarshal(b)
	}
}

func TestKindStrings(t *testing.T) {
	if KPrepare.String() != "PREPARE" {
		t.Errorf("KPrepare.String() = %q", KPrepare.String())
	}
	if Kind(250).String() != "INVALID" {
		t.Errorf("unknown kind String() = %q", Kind(250).String())
	}
	if VoteReadOnly.String() != "READ-ONLY" {
		t.Errorf("VoteReadOnly.String() = %q", VoteReadOnly.String())
	}
	if OutcomeCommit.String() != "COMMIT" {
		t.Errorf("OutcomeCommit.String() = %q", OutcomeCommit.String())
	}
	if NBReplicated.String() != "REPLICATED" {
		t.Errorf("NBReplicated.String() = %q", NBReplicated.String())
	}
}
