package wire

import (
	"errors"
	"reflect"
	"testing"

	"camelot/internal/tid"
)

// maxLegalMsg builds a message whose encoding is exactly MaxDatagram
// bytes: the fixed header padded out with piggybacked acks (16 bytes
// each) and participant sites (4 bytes each).
func maxLegalMsg(t *testing.T) *Msg {
	t.Helper()
	m := &Msg{Kind: KCommitAck, TID: tid.Top(tid.MakeFamily(1, 1)), From: 1, To: 2}
	base := len(Marshal(m))
	pad := MaxDatagram - base
	for i := 0; i < pad/16; i++ {
		m.AckTIDs = append(m.AckTIDs, tid.Top(tid.MakeFamily(2, uint32(i+1))))
	}
	for i := 0; i < (pad%16)/4; i++ {
		m.Sites = append(m.Sites, tid.SiteID(i+1))
	}
	if got := len(Marshal(m)); got != MaxDatagram {
		t.Fatalf("constructed message is %d bytes, want exactly %d", got, MaxDatagram)
	}
	return m
}

// TestMarshalDatagramPinsLargestLegalMessage pins the size limit: a
// message encoding to exactly MaxDatagram marshals and round-trips,
// and one slice element more is refused with ErrOversize rather than
// sent to be truncated in flight.
func TestMarshalDatagramPinsLargestLegalMessage(t *testing.T) {
	m := maxLegalMsg(t)
	buf, err := MarshalDatagram(m)
	if err != nil {
		t.Fatalf("MarshalDatagram at limit: %v", err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal at limit: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatal("largest legal message did not round-trip")
	}

	m.Sites = append(m.Sites, 99) // 4 bytes over
	if _, err := MarshalDatagram(m); !errors.Is(err, ErrOversize) {
		t.Fatalf("MarshalDatagram over limit = %v, want ErrOversize", err)
	}
}

// TestPatchToMatchesMarshal proves the fan-out path's re-addressing
// shortcut: patching To in a marshaled buffer yields byte-identical
// output to marshaling with that To in the first place.
func TestPatchToMatchesMarshal(t *testing.T) {
	m := sampleMsg()
	for _, to := range []tid.SiteID{0, 1, 7, 1 << 20} {
		patched := Marshal(m)
		PatchTo(patched, to)

		direct := *m
		direct.To = to
		if want := Marshal(&direct); !reflect.DeepEqual(patched, want) {
			t.Fatalf("PatchTo(%v) diverges from direct marshal", to)
		}
		got, err := Unmarshal(patched)
		if err != nil {
			t.Fatalf("Unmarshal patched: %v", err)
		}
		if got.To != to {
			t.Fatalf("patched To = %v, want %v", got.To, to)
		}
	}
}
