package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"camelot/internal/tid"
)

// Codec errors.
var (
	ErrShort   = errors.New("wire: truncated message")
	ErrBadKind = errors.New("wire: invalid message kind")
	// ErrOversize reports a message whose encoding exceeds MaxDatagram
	// and therefore cannot be carried in one UDP datagram. The sender
	// must surface it loudly: an oversize message silently truncated in
	// flight arrives as a corrupt datagram and "vanishes" as ordinary
	// loss, which retry can never mask.
	ErrOversize = errors.New("wire: message exceeds MaxDatagram")
)

// MaxDatagram is the largest legal encoded message: the maximum UDP
// payload over IPv4 (65535 - 20 IP - 8 UDP). Anything larger cannot
// leave the sending socket in one piece, so the limit is enforced at
// marshal/send time where the error can still name the message,
// rather than discovered as silent truncation at the receiver.
const MaxDatagram = 65507

// maxSlice bounds decoded slice lengths so a corrupt length prefix
// cannot force a huge allocation.
const maxSlice = 1 << 16

// headerSize is the encoded size of every fixed field laid down by
// AppendMarshal: Kind (1) + TID (16) + Parent (16) + From/To (8) +
// Seq (8) + Flags (1) + four slice-length prefixes (8) + quorums (4)
// + Vote/Outcome/State (3) + Ballot (8) + Accepted length prefix (2).
const headerSize = 1 + 16 + 16 + 8 + 8 + 1 + 2 + 4 + 3 + 2 + 2 + 8 + 2 + 2

// EncodedSize returns the exact number of bytes Marshal will produce
// for m. Marshal sizes its buffer with it — one allocation, no
// regrowth, even for the large AckTIDs/Votes/Acceptors messages the
// ack-flush path batches — and callers that reuse buffers can
// pre-grow with it.
func EncodedSize(m *Msg) int {
	return headerSize +
		4*len(m.Sites) +
		5*len(m.Votes) +
		16*len(m.AckTIDs) +
		4*len(m.Acceptors) +
		13*len(m.Accepted)
}

// Marshal encodes m into a self-describing byte string. The buffer is
// sized exactly (EncodedSize), so the encoding costs one allocation.
func Marshal(m *Msg) []byte {
	return AppendMarshal(make([]byte, 0, EncodedSize(m)), m)
}

// AppendMarshal appends m's encoding to dst and returns the extended
// slice, exactly as append does. This is the zero-allocation form of
// Marshal: a sender that reuses its buffer across sends (the
// transport's pooled datagram buffers, a benchmark's scratch) pays no
// allocation at all once the buffer has grown to its working size.
// The bytes produced are identical to Marshal's.
func AppendMarshal(dst []byte, m *Msg) []byte {
	b := dst
	b = append(b, byte(m.Kind))
	b = be64(b, uint64(m.TID.Family))
	b = be64(b, uint64(m.TID.Seq))
	b = be64(b, uint64(m.Parent.Family))
	b = be64(b, uint64(m.Parent.Seq))
	b = be32(b, uint32(m.From))
	b = be32(b, uint32(m.To))
	b = be64(b, m.Seq)
	b = append(b, m.Flags)
	b = be16(b, uint16(len(m.Sites)))
	for _, s := range m.Sites {
		b = be32(b, uint32(s))
	}
	b = be16(b, m.CommitQuorum)
	b = be16(b, m.AbortQuorum)
	b = append(b, byte(m.Vote), byte(m.Outcome), byte(m.State))
	b = be16(b, uint16(len(m.Votes)))
	for _, v := range m.Votes {
		b = be32(b, uint32(v.Site))
		b = append(b, byte(v.Vote))
	}
	b = be16(b, uint16(len(m.AckTIDs)))
	for _, t := range m.AckTIDs {
		b = be64(b, uint64(t.Family))
		b = be64(b, uint64(t.Seq))
	}
	b = be64(b, m.Ballot)
	b = be16(b, uint16(len(m.Acceptors)))
	for _, s := range m.Acceptors {
		b = be32(b, uint32(s))
	}
	b = be16(b, uint16(len(m.Accepted)))
	for _, a := range m.Accepted {
		b = be32(b, uint32(a.Site))
		b = be64(b, a.Ballot)
		b = append(b, byte(a.Vote))
	}
	return b
}

// MarshalDatagram encodes m and enforces the send-side invariants:
// the kind must be registered (an unregistered kind would be bounced
// as ErrBadKind by every receiver, i.e. manufactured silent loss) and
// the encoding must fit one UDP datagram, otherwise ErrOversize with
// the offending size. Real-network senders must use this instead of
// Marshal.
func MarshalDatagram(m *Msg) ([]byte, error) {
	return AppendDatagram(make([]byte, 0, EncodedSize(m)), m)
}

// AppendDatagram appends m's encoding to dst under the same send-side
// invariants as MarshalDatagram. On error dst is returned unextended,
// so a pooled buffer stays clean for its next use.
func AppendDatagram(dst []byte, m *Msg) ([]byte, error) {
	if !m.Kind.Registered() {
		return dst, fmt.Errorf("%w: %d", ErrBadKind, m.Kind)
	}
	b := AppendMarshal(dst, m)
	if len(b)-len(dst) > MaxDatagram {
		return dst, fmt.Errorf("%w: %s is %d bytes (limit %d)", ErrOversize, m.Kind, len(b)-len(dst), MaxDatagram)
	}
	return b, nil
}

// toOffset is the byte offset of the To field in the fixed header laid
// down by Marshal: Kind (1) + TID (16) + Parent (16) + From (4).
const toOffset = 1 + 16 + 16 + 4

// PatchTo rewrites the To field of an already marshaled message in
// place. A fan-out sender marshals once and re-addresses the buffer
// per destination instead of re-encoding the identical payload — the
// coordinator's prepare/replicate/outcome sends are its hottest path
// (§4.2).
func PatchTo(buf []byte, to tid.SiteID) {
	binary.BigEndian.PutUint32(buf[toOffset:], uint32(to))
}

// Unmarshal decodes a message produced by Marshal.
func Unmarshal(data []byte) (*Msg, error) {
	m := &Msg{}
	if err := UnmarshalInto(m, data); err != nil {
		return nil, err
	}
	return m, nil
}

// UnmarshalInto decodes data into m, reusing m's slice capacity
// instead of allocating fresh backing arrays. It is the
// zero-allocation form of Unmarshal for callers that own the message
// lifecycle and recycle Msg scratch (GetMsg/PutMsg, benchmarks): once
// the slices have grown to the traffic's working size, decoding
// allocates nothing. m is fully overwritten; on error its contents
// are unspecified. Note the lifecycle caveat: a Msg handed to an
// asynchronous consumer (core.Manager.Deliver parks it on the thread
// pool's queue) must NOT be recycled by the receiver loop.
func UnmarshalInto(m *Msg, data []byte) error {
	d := decoder{buf: data}
	m.Reset()
	m.Kind = Kind(d.u8())
	// Membership in the kind registry, not a range check: a range
	// admits any byte below the newest constant whether or not the
	// registry knows it, and the old `> KPaxos1b` guard meant a kind
	// constant added without a registry row decoded fine and then
	// stringified as INVALID. Every unregistered byte — zero, gaps,
	// and everything above the last kind — must fail the same way.
	if !m.Kind.Registered() {
		return fmt.Errorf("%w: %d", ErrBadKind, m.Kind)
	}
	m.TID.Family = tid.FamilyID(d.u64())
	m.TID.Seq = tid.Seq(d.u64())
	m.Parent.Family = tid.FamilyID(d.u64())
	m.Parent.Seq = tid.Seq(d.u64())
	m.From = tid.SiteID(d.u32())
	m.To = tid.SiteID(d.u32())
	m.Seq = d.u64()
	m.Flags = d.u8()
	nSites := int(d.u16())
	if nSites > maxSlice {
		return ErrShort
	}
	for i := 0; i < nSites; i++ {
		m.Sites = append(m.Sites, tid.SiteID(d.u32()))
	}
	m.CommitQuorum = d.u16()
	m.AbortQuorum = d.u16()
	m.Vote = Vote(d.u8())
	m.Outcome = Outcome(d.u8())
	m.State = NBState(d.u8())
	nVotes := int(d.u16())
	if nVotes > maxSlice {
		return ErrShort
	}
	for i := 0; i < nVotes; i++ {
		sv := SiteVote{Site: tid.SiteID(d.u32()), Vote: Vote(d.u8())}
		m.Votes = append(m.Votes, sv)
	}
	nAcks := int(d.u16())
	if nAcks > maxSlice {
		return ErrShort
	}
	for i := 0; i < nAcks; i++ {
		t := tid.TID{Family: tid.FamilyID(d.u64()), Seq: tid.Seq(d.u64())}
		m.AckTIDs = append(m.AckTIDs, t)
	}
	m.Ballot = d.u64()
	nAcceptors := int(d.u16())
	if nAcceptors > maxSlice {
		return ErrShort
	}
	for i := 0; i < nAcceptors; i++ {
		m.Acceptors = append(m.Acceptors, tid.SiteID(d.u32()))
	}
	nAccepted := int(d.u16())
	if nAccepted > maxSlice {
		return ErrShort
	}
	for i := 0; i < nAccepted; i++ {
		a := PaxosAccepted{Site: tid.SiteID(d.u32()), Ballot: d.u64(), Vote: Vote(d.u8())}
		m.Accepted = append(m.Accepted, a)
	}
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(d.buf))
	}
	return nil
}

func be16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func be32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func be64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil || len(d.buf) < n {
		d.err = ErrShort
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}
