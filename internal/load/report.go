package load

import (
	"encoding/json"
	"fmt"
	"time"

	"camelot/internal/rt"
	"camelot/internal/stats"
)

// Schema identifies the report format. Consumers (CI artifacts,
// EXPERIMENTS.md tables, cross-PR deltas) dispatch on it; the golden
// test pins it.
const Schema = "camelot-load/v1"

// Report is one loadgen invocation's full result: the workload's
// identity plus one row per (protocol, target rate) cell.
type Report struct {
	Schema     string  `json:"schema"`
	Sites      int     `json:"sites"`
	Shards     int     `json:"shards"`
	Sessions   int     `json:"sessions"`
	Dist       string  `json:"dist"`
	Seed       int64   `json:"seed"`
	DurationMS float64 `json:"duration_ms"`
	Rows       []Row   `json:"rows"`
}

// Row is one measured cell. Latencies are microseconds, measured
// from each operation's intended arrival time (open loop).
type Row struct {
	Protocol   string  `json:"protocol"`
	TargetRate float64 `json:"target_rate"`
	Offered    float64 `json:"offered"`
	Goodput    float64 `json:"goodput"`
	Ops        int     `json:"ops"`
	Errs       int     `json:"errs"`
	P50us      float64 `json:"p50_us"`
	P95us      float64 `json:"p95_us"`
	P99us      float64 `json:"p99_us"`
	P999us     float64 `json:"p999_us"`
	MaxUs      float64 `json:"max_us"`
	// WAL and transport deltas for this cell, cluster-wide.
	WALAppends      int `json:"wal_appends"`
	WALDeviceWrites int `json:"wal_device_writes"`
	Sent            int `json:"sent"`
	Recv            int `json:"recv"`
	Dropped         int `json:"dropped"`
	// Dials is the connection-pool dial count: a healthy run dials
	// about its concurrency, not once per operation.
	Dials int `json:"dials"`
}

// JSON renders the canonical indented encoding.
func (rep *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

// Table renders the report as an aligned text table for terminals.
func (rep *Report) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Open-loop load (%d sites, %d shards, %d sessions, %s arrivals, %.0fms/cell)",
			rep.Sites, rep.Shards, rep.Sessions, rep.Dist, rep.DurationMS),
		"protocol", "target/s", "offered/s", "goodput/s", "p50 ms", "p95 ms", "p99 ms", "p999 ms", "max ms", "errs", "dev writes")
	for _, r := range rep.Rows {
		t.AddRow(r.Protocol,
			fmt.Sprintf("%.0f", r.TargetRate),
			fmt.Sprintf("%.0f", r.Offered),
			fmt.Sprintf("%.0f", r.Goodput),
			fmt.Sprintf("%.3f", r.P50us/1000),
			fmt.Sprintf("%.3f", r.P95us/1000),
			fmt.Sprintf("%.3f", r.P99us/1000),
			fmt.Sprintf("%.3f", r.P999us/1000),
			fmt.Sprintf("%.3f", r.MaxUs/1000),
			fmt.Sprintf("%d", r.Errs),
			fmt.Sprintf("%d", r.WALDeviceWrites))
	}
	return t
}

// BenchConfig parameterizes a full loadgen sweep: every protocol at
// every target rate, each cell against a freshly booted cluster so no
// cell inherits another's queues, WAL tail, or retry backlog.
type BenchConfig struct {
	Protocols []string
	Rates     []float64
	Duration  time.Duration
	Sites     int
	Shards    int
	Sessions  int
	Dist      string
	Seed      int64
	// Dir hosts the clusters' WALs (one subdirectory per cell).
	Dir string
	// Logf, if non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// RunBench executes the sweep and assembles the report.
func RunBench(cfg BenchConfig) (*Report, error) {
	r := rt.Real()
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	if cfg.Dist == "" {
		cfg.Dist = DistPoisson
	}
	rep := &Report{
		Schema:     Schema,
		Sites:      cfg.Sites,
		Shards:     cfg.Shards,
		Sessions:   cfg.Sessions,
		Dist:       cfg.Dist,
		Seed:       cfg.Seed,
		DurationMS: float64(cfg.Duration) / float64(time.Millisecond),
	}
	for _, proto := range cfg.Protocols {
		for _, rate := range cfg.Rates {
			if cfg.Logf != nil {
				cfg.Logf("loadgen: %s @ %.0f/s ...", proto, rate)
			}
			row, err := runCell(r, cfg, proto, rate)
			if err != nil {
				return nil, fmt.Errorf("load: %s @ %.0f/s: %w", proto, rate, err)
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

func runCell(r rt.Runtime, cfg BenchConfig, proto string, rate float64) (Row, error) {
	c, err := StartCluster(ClusterConfig{
		Sites:    cfg.Sites,
		Shards:   cfg.Shards,
		Dir:      fmt.Sprintf("%s/%s-%.0f", cfg.Dir, proto, rate),
		Sessions: cfg.Sessions,
	})
	if err != nil {
		return Row{}, err
	}
	defer c.Close()

	lcfg := Config{
		Rate:     rate,
		Duration: cfg.Duration,
		Sessions: cfg.Sessions,
		Dist:     cfg.Dist,
		Seed:     cfg.Seed,
	}
	res, err := Run(r, lcfg, func(i int) error {
		return c.Txn(i%cfg.Sessions, i, proto)
	})
	if err != nil {
		return Row{}, err
	}
	wa, ww, sent, recv, dropped := c.Counters()
	return Row{
		Protocol:        proto,
		TargetRate:      rate,
		Offered:         res.Offered(lcfg),
		Goodput:         res.Goodput(),
		Ops:             res.Done,
		Errs:            res.Errs,
		P50us:           us(res.Hist.Percentile(50)),
		P95us:           us(res.Hist.Percentile(95)),
		P99us:           us(res.Hist.Percentile(99)),
		P999us:          us(res.Hist.Percentile(99.9)),
		MaxUs:           us(res.Hist.Max()),
		WALAppends:      wa,
		WALDeviceWrites: ww,
		Sent:            sent,
		Recv:            recv,
		Dropped:         dropped,
		Dials:           c.Dials(),
	}, nil
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
