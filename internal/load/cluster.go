package load

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"camelot/camelot"
	"camelot/internal/ctl"
	"camelot/internal/shardmap"
)

// ClusterConfig describes the real cluster the generator drives.
type ClusterConfig struct {
	// Sites is the number of in-process RealNodes (real UDP sockets,
	// real ctl TCP servers, real on-disk WALs under Dir).
	Sites int
	// Shards, when positive, runs the sharded data tier: a shard map
	// of that many shards over the sites, keyspace-routed writes.
	// Zero runs the single unsharded "store" server per site.
	Shards int
	// Dir is where each site's WAL file lives (one subpath per site).
	Dir string
	// CallTimeout bounds each ctl exchange; expired calls poison
	// their connection and count as errors. Zero means 5s.
	CallTimeout time.Duration
	// Sessions sizes the per-site connection pools' idle bound so a
	// steady-state run never churns dials.
	Sessions int
}

// Cluster is an N-site in-process deployment with its control plane,
// plus the client machinery the generator needs: one connection pool
// per site and a unique-key source honoring the shard map.
type Cluster struct {
	cfg    ClusterConfig
	nodes  []*camelot.RealNode
	ctls   []*ctl.Server
	pools  []*ctl.Pool
	smap   *shardmap.Map
	keyCtr atomic.Int64

	// startStats snapshots per-site counters at StartCluster so a
	// report can charge only this run's work.
	walAppends0, walWrites0 int
	sent0, recv0, dropped0  int
}

// StartCluster boots the deployment: every site recovered, fully
// meshed over UDP, ctl servers listening, pools dialed lazily.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Sites <= 0 {
		return nil, fmt.Errorf("load: cluster needs at least one site")
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 5 * time.Second
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("load: cluster dir: %w", err)
	}
	c := &Cluster{cfg: cfg}
	var sites []camelot.SiteID
	for i := 1; i <= cfg.Sites; i++ {
		sites = append(sites, camelot.SiteID(i))
	}
	if cfg.Shards > 0 {
		m, err := shardmap.New(1, cfg.Shards, sites)
		if err != nil {
			return nil, err
		}
		c.smap = m
	}
	for _, id := range sites {
		ncfg := camelot.DefaultRealConfig(id)
		ncfg.WALPath = filepath.Join(cfg.Dir, fmt.Sprintf("site%d.wal", id))
		ncfg.ShardMap = c.smap
		n, err := camelot.StartRealNode(ncfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, n)
		if err := n.Recover(); err != nil {
			c.Close()
			return nil, err
		}
	}
	for _, a := range c.nodes {
		for _, b := range c.nodes {
			if a == b {
				continue
			}
			if err := a.AddPeer(b.ID(), b.Addr()); err != nil {
				c.Close()
				return nil, err
			}
		}
	}
	for _, n := range c.nodes {
		s, err := ctl.Serve(n, "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		c.ctls = append(c.ctls, s)
		c.pools = append(c.pools, ctl.NewPool(s.Addr(), cfg.CallTimeout, cfg.Sessions))
	}
	c.snapshot()
	return c, nil
}

// snapshot records the WAL and transport baselines.
func (c *Cluster) snapshot() {
	c.walAppends0, c.walWrites0 = 0, 0
	c.sent0, c.recv0, c.dropped0 = 0, 0, 0
	for _, n := range c.nodes {
		a, w := n.LogStats()
		c.walAppends0 += a
		c.walWrites0 += w
		s, r, d := n.Peer().Stats()
		c.sent0 += s
		c.recv0 += r
		c.dropped0 += d
	}
}

// Counters returns the cluster-wide WAL and transport deltas since
// StartCluster (or the last snapshot): log records appended, device
// writes actually issued (group commit batches many appends into
// one), datagrams sent/received/dropped.
func (c *Cluster) Counters() (walAppends, walDeviceWrites, sent, recv, dropped int) {
	for _, n := range c.nodes {
		a, w := n.LogStats()
		walAppends += a
		walDeviceWrites += w
		s, r, d := n.Peer().Stats()
		sent += s
		recv += r
		dropped += d
	}
	return walAppends - c.walAppends0, walDeviceWrites - c.walWrites0,
		sent - c.sent0, recv - c.recv0, dropped - c.dropped0
}

// Dials sums the pools' dial counts — the generator's check that
// connection pooling is actually working.
func (c *Cluster) Dials() int {
	total := 0
	for _, p := range c.pools {
		total += p.Dials()
	}
	return total
}

// Close tears the deployment down: pools, ctl servers, nodes.
func (c *Cluster) Close() {
	for _, p := range c.pools {
		p.Close() //nolint:errcheck // teardown
	}
	for _, s := range c.ctls {
		s.Close() //nolint:errcheck // teardown
	}
	for _, n := range c.nodes {
		n.Close() //nolint:errcheck // teardown
	}
}

// keyFor mints a fresh key homed at site (any key when unsharded).
// Keys are unique across the run so the workload measures the commit
// path, not lock contention; under a shard map the counter walks
// until the hash lands on the requested site.
func (c *Cluster) keyFor(site camelot.SiteID) string {
	for {
		k := "k" + itoa(int(c.keyCtr.Add(1)))
		if c.smap == nil || c.smap.SiteOf(k) == site {
			return k
		}
	}
}

// Txn drives one distributed update through the cluster over ctl:
// the session's round-robin coordinator plus one remote participant,
// one write each, committed under the named protocol ("2pc", "nb",
// "paxos"). A clean abort counts as a completed operation — the
// protocol answered — so only infrastructure failures (unavailable
// node, timeout, routing error) surface as errors.
func (c *Cluster) Txn(session, seq int, protocol string) error {
	n := len(c.nodes)
	coordIdx := session % n
	remoteIdx := (coordIdx + 1) % n

	coord, err := c.pools[coordIdx].Get()
	if err != nil {
		return err
	}
	defer c.pools[coordIdx].Put(coord)

	t, err := coord.Begin()
	if err != nil {
		return err
	}
	if err := c.write(coord, coordIdx, t); err != nil {
		coord.Abort(t) //nolint:errcheck // already failing
		return err
	}
	if remoteIdx != coordIdx {
		remote, err := c.pools[remoteIdx].Get()
		if err != nil {
			coord.Abort(t) //nolint:errcheck // already failing
			return err
		}
		werr := c.write(remote, remoteIdx, t)
		c.pools[remoteIdx].Put(remote)
		if werr != nil {
			coord.Abort(t) //nolint:errcheck // already failing
			return werr
		}
		if err := coord.AddSites(t, []camelot.SiteID{c.nodes[remoteIdx].ID()}); err != nil {
			coord.Abort(t) //nolint:errcheck // already failing
			return err
		}
	}
	if _, err := coord.CommitWith(t, protocol); err != nil && !errors.Is(err, ctl.ErrAborted) {
		return err
	}
	return nil
}

// write performs one update at the node behind cl, routed through the
// shard map when one is installed.
func (c *Cluster) write(cl *ctl.Client, nodeIdx int, t camelot.TID) error {
	site := c.nodes[nodeIdx].ID()
	key := c.keyFor(site)
	if c.smap != nil {
		return cl.WriteKey(t, key, []byte("v"))
	}
	return cl.Write("store", t, key, []byte("v"))
}
