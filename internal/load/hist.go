package load

import (
	"time"
)

// Histogram geometry: fixed buckets with geometrically growing
// bounds, 1µs base and 7% growth. Fixed buckets make recording O(1)
// with no allocation on the measurement path (an open-loop generator
// recording under overload must never let measurement cost feed back
// into the system being measured), and geometric growth holds the
// relative quantile error to the growth factor across the whole
// span — histBuckets buckets reach past 10⁴ seconds, far beyond any
// latency a bounded-deadline client can observe.
const (
	histBase    = time.Microsecond
	histGrowth  = 1.07
	histBuckets = 340
)

// histBounds[i] is the inclusive upper bound of bucket i, precomputed
// once at package init.
var histBounds = func() [histBuckets]time.Duration {
	var b [histBuckets]time.Duration
	f := float64(histBase)
	for i := range b {
		b[i] = time.Duration(f)
		f *= histGrowth
	}
	return b
}()

// Hist is a fixed-bucket latency histogram. Each load session records
// into its own (no locking on the hot path); Merge folds them for
// reporting. The zero value is ready to use.
type Hist struct {
	counts [histBuckets]int64
	total  int64
	sum    time.Duration
	max    time.Duration
}

// bucketOf locates d's bucket by binary search over the precomputed
// bounds (≤9 probes; branch-predictable, allocation-free).
func bucketOf(d time.Duration) int {
	if d <= histBase {
		return 0
	}
	lo, hi := 0, histBuckets-1
	for lo < hi {
		mid := (lo + hi) / 2
		if histBounds[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Add records one latency observation.
func (h *Hist) Add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	h.total++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Merge folds o's observations into h.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() int64 { return h.total }

// Max returns the largest recorded observation exactly (not bucket-
// quantized: the tail's far end is the one point a histogram should
// not blur).
func (h *Hist) Max() time.Duration { return h.max }

// Mean returns the arithmetic mean of the observations.
func (h *Hist) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Percentile returns the p-th percentile (0 < p ≤ 100) as the upper
// bound of the bucket holding that rank — an overestimate by at most
// the 7% bucket width. Zero observations yield zero.
func (h *Hist) Percentile(p float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	rank := int64(p / 100 * float64(h.total))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if i == histBuckets-1 {
				return h.max
			}
			return histBounds[i]
		}
	}
	return h.max
}
