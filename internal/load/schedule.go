package load

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Arrival distributions.
const (
	// DistPoisson draws exponential inter-arrival times: the
	// memoryless open-loop workload, bursty the way independent
	// clients are.
	DistPoisson = "poisson"
	// DistUniform spaces arrivals exactly 1/rate apart: a metronome,
	// useful for isolating queueing effects from arrival burstiness.
	DistUniform = "uniform"
)

// Arrivals returns the intended arrival offsets of an open-loop
// schedule: every instant, relative to the run's start, at which the
// generator must launch one operation to offer `rate` operations per
// second for `duration`. The schedule is drawn entirely up front from
// the seed, so a (dist, seed, rate, duration) tuple names one exact
// workload — reproducible across runs, machines, and protocols under
// comparison.
func Arrivals(dist string, seed int64, rate float64, duration time.Duration) ([]time.Duration, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("load: rate %v must be positive", rate)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("load: duration %v must be positive", duration)
	}
	interval := float64(time.Second) / rate
	var out []time.Duration
	switch dist {
	case DistUniform:
		for t := 0.0; time.Duration(t) < duration; t += interval {
			out = append(out, time.Duration(t))
		}
	case DistPoisson:
		rng := rand.New(rand.NewSource(seed))
		t := 0.0
		for {
			// Exponential inter-arrival: -ln(U)/rate. Float64 is in
			// [0,1); guard the log's zero.
			u := rng.Float64()
			for u == 0 {
				u = rng.Float64()
			}
			t += -math.Log(u) * interval
			if time.Duration(t) >= duration {
				return out, nil
			}
			out = append(out, time.Duration(t))
		}
	default:
		return nil, fmt.Errorf("load: unknown arrival distribution %q", dist)
	}
	return out, nil
}
