// Package load is the open-loop load generator: it drives a target
// operation rate against a cluster regardless of how fast the cluster
// answers, and reports latency from each operation's *intended*
// arrival time.
//
// Open-loop versus closed-loop is the difference between measuring a
// system and measuring a conversation with it. A closed-loop driver
// (N workers, each issuing its next request when the previous one
// returns) lets the system set the pace: when the system slows down,
// the offered load politely drops, and the latency numbers describe
// only the requests the system deigned to accept — the classic
// coordinated-omission blind spot. An open-loop driver fixes the
// arrival schedule up front (seeded Poisson or uniform) and charges
// every queueing delay to the operation that suffered it: if an
// arrival was due at t but the session got to it at t+40ms, those
// 40ms are part of its latency. Under overload the percentiles grow
// without bound, which is exactly the honest signal (paper §4.4
// measures throughput at saturation; our tail tables show the
// approach to it).
package load

import (
	"sync/atomic"
	"time"

	"camelot/internal/rt"
)

// Config parameterizes one open-loop run.
type Config struct {
	// Rate is the target offered rate, operations/second.
	Rate float64
	// Duration is how long arrivals are scheduled for (the run itself
	// lasts until the last scheduled operation completes).
	Duration time.Duration
	// Sessions is the number of concurrent client sessions the
	// schedule is striped over: session k executes arrivals k, k+S,
	// 2S+k… in order. Sessions bounds concurrency — if every session
	// is busy when an arrival comes due, the delay is charged to the
	// operation's latency, never silently dropped.
	Sessions int
	// Dist is the arrival distribution: DistPoisson (default) or
	// DistUniform.
	Dist string
	// Seed fixes the arrival schedule (and nothing else).
	Seed int64
}

// Result is what one run measured.
type Result struct {
	// Intended is the number of scheduled arrivals (offered work).
	Intended int
	// Done counts operations that completed, successfully or not.
	Done int
	// Errs counts operations whose op function returned an error.
	Errs int
	// Elapsed is start to last-completion.
	Elapsed time.Duration
	// Hist holds per-op latency measured from intended arrival.
	Hist *Hist
}

// Offered is the rate the generator actually asked for, ops/second
// over the configured duration.
func (res *Result) Offered(cfg Config) float64 {
	if cfg.Duration <= 0 {
		return 0
	}
	return float64(res.Intended) / cfg.Duration.Seconds()
}

// Goodput is successful completions per second of elapsed run time.
func (res *Result) Goodput() float64 {
	if res.Elapsed <= 0 {
		return 0
	}
	return float64(res.Done-res.Errs) / res.Elapsed.Seconds()
}

// Run executes one open-loop run on r: it draws the arrival schedule,
// stripes it over cfg.Sessions concurrent sessions, and calls
// op(index) once per arrival, where index is the arrival's position
// in the schedule. op's error is counted, not interpreted. Run works
// identically on the real runtime and the simulation kernel — the
// deterministic tests pin its pacing and coordinated-omission
// accounting on sim virtual time.
func Run(r rt.Runtime, cfg Config, op func(index int) error) (*Result, error) {
	if cfg.Dist == "" {
		cfg.Dist = DistPoisson
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	arrivals, err := Arrivals(cfg.Dist, cfg.Seed, cfg.Rate, cfg.Duration)
	if err != nil {
		return nil, err
	}

	var errs atomic.Int64
	hists := make([]*Hist, cfg.Sessions)
	start := r.Now()
	wg := rt.NewWaitGroup(r)
	wg.Add(cfg.Sessions)
	for s := 0; s < cfg.Sessions; s++ {
		s := s
		h := &Hist{}
		hists[s] = h
		r.Go(nameSession(s), func() {
			defer wg.Done()
			for idx := s; idx < len(arrivals); idx += cfg.Sessions {
				due := start + arrivals[idx]
				if wait := due - r.Now(); wait > 0 {
					r.Sleep(wait)
				}
				// If we are late, run immediately: the schedule is
				// the contract, and the lateness lands in the
				// latency below (coordinated omission, avoided).
				if err := op(idx); err != nil {
					errs.Add(1)
				}
				h.Add(r.Now() - due)
			}
		})
	}
	wg.Wait()

	total := &Hist{}
	for _, h := range hists {
		total.Merge(h)
	}
	return &Result{
		Intended: len(arrivals),
		Done:     int(total.Count()),
		Errs:     int(errs.Load()),
		Elapsed:  r.Now() - start,
		Hist:     total,
	}, nil
}

// nameSession labels a session thread for traces and deadlock
// reports without fmt on the spawn path.
func nameSession(s int) string {
	return "load-session-" + itoa(s)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
