package load

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"camelot/internal/sim"
)

// TestArrivalsReproducible: the schedule is a pure function of
// (dist, seed, rate, duration) — same tuple, byte-identical schedule;
// different seed, different schedule.
func TestArrivalsReproducible(t *testing.T) {
	a1, err := Arrivals(DistPoisson, 42, 1000, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Arrivals(DistPoisson, 42, 1000, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != len(a2) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed diverges at %d: %v vs %v", i, a1[i], a2[i])
		}
	}
	a3, err := Arrivals(DistPoisson, 43, 1000, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a1) == len(a3)
	for i := 0; same && i < len(a1); i++ {
		same = a1[i] == a3[i]
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestArrivalsShape: schedules are sorted, in-range, and offer
// approximately the target rate (exactly for uniform; within a few
// percent for Poisson at this sample size).
func TestArrivalsShape(t *testing.T) {
	for _, dist := range []string{DistPoisson, DistUniform} {
		a, err := Arrivals(dist, 7, 2000, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i] < a[j] }) {
			t.Fatalf("%s: schedule not sorted", dist)
		}
		for _, d := range a {
			if d < 0 || d >= 2*time.Second {
				t.Fatalf("%s: arrival %v outside [0, duration)", dist, d)
			}
		}
		want := 4000.0
		got := float64(len(a))
		if got < want*0.9 || got > want*1.1 {
			t.Fatalf("%s: %v arrivals for target %v", dist, got, want)
		}
		if dist == DistUniform && len(a) != 4000 {
			t.Fatalf("uniform: %d arrivals, want exactly 4000", len(a))
		}
	}
}

// TestArrivalsRejectsBadInput.
func TestArrivalsRejectsBadInput(t *testing.T) {
	if _, err := Arrivals("zipf", 1, 100, time.Second); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	if _, err := Arrivals(DistPoisson, 1, 0, time.Second); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Arrivals(DistPoisson, 1, 100, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
}

// TestHistPercentilesAgainstBruteForce pins the histogram's quantile
// math against a brute-force sort of the same observations: the
// histogram reports the upper bound of the rank's bucket, so it may
// overestimate by at most one bucket width (7%) and must never
// underestimate below the exact value's bucket lower bound.
func TestHistPercentilesAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := &Hist{}
	var exact []time.Duration
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~1µs..1s, the histogram's working span.
		d := time.Duration(float64(time.Microsecond) * math.Pow(10, rng.Float64()*6))
		h.Add(d)
		exact = append(exact, d)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, p := range []float64{50, 90, 95, 99, 99.9} {
		rank := int(p / 100 * float64(len(exact)))
		if rank < 1 {
			rank = 1
		}
		want := exact[rank-1]
		got := h.Percentile(p)
		// Upper bound of want's bucket is the histogram's answer;
		// allow exactly one growth factor of slack either side.
		if float64(got) < float64(want)/histGrowth || float64(got) > float64(want)*histGrowth {
			t.Fatalf("p%v = %v, exact %v (outside one bucket width)", p, got, want)
		}
	}
	if h.Count() != 20000 {
		t.Fatalf("Count() = %d, want 20000", h.Count())
	}
	if h.Max() != exact[len(exact)-1] {
		t.Fatalf("Max() = %v, want exact max %v", h.Max(), exact[len(exact)-1])
	}
}

// TestHistMerge: merging per-session histograms equals recording into
// one.
func TestHistMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	whole, part1, part2 := &Hist{}, &Hist{}, &Hist{}
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Intn(1_000_000)) * time.Microsecond
		whole.Add(d)
		if i%2 == 0 {
			part1.Add(d)
		} else {
			part2.Add(d)
		}
	}
	merged := &Hist{}
	merged.Merge(part1)
	merged.Merge(part2)
	if merged.Count() != whole.Count() || merged.Max() != whole.Max() {
		t.Fatalf("merge mismatch: count %d/%d max %v/%v",
			merged.Count(), whole.Count(), merged.Max(), whole.Max())
	}
	for _, p := range []float64{50, 95, 99.9} {
		if merged.Percentile(p) != whole.Percentile(p) {
			t.Fatalf("p%v: merged %v, whole %v", p, merged.Percentile(p), whole.Percentile(p))
		}
	}
}

// TestRunPacingOnSimClock pins the generator's open-loop pacing and
// coordinated-omission accounting on the simulation kernel's virtual
// clock, where every latency is exact. One session, a metronome
// schedule at 100/s (10ms apart), and an op that takes 25ms: the
// session falls further behind every arrival, so op j starts
// 15·j ms late and measures 25 + 15·j ms — the queueing delay charged
// to the op that suffered it, which is the whole point of open loop.
func TestRunPacingOnSimClock(t *testing.T) {
	k := sim.New(1)
	var res *Result
	var runErr error
	var started []time.Duration
	k.Go("driver", func() {
		res, runErr = Run(k, Config{
			Rate:     100,
			Duration: 100 * time.Millisecond, // arrivals at 0,10,...,90ms
			Sessions: 1,
			Dist:     DistUniform,
		}, func(i int) error {
			started = append(started, k.Now())
			k.Sleep(25 * time.Millisecond)
			return nil
		})
	})
	k.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if res.Intended != 10 || res.Done != 10 || res.Errs != 0 {
		t.Fatalf("intended/done/errs = %d/%d/%d, want 10/10/0", res.Intended, res.Done, res.Errs)
	}
	// Op j is due at 10j ms but starts when the previous finishes:
	// start_j = 25j ms for j ≥ 1 (start_0 = 0), so latency_j = 25 + 15j ms.
	for j, got := range started {
		want := time.Duration(25*j) * time.Millisecond
		if j == 0 {
			want = 0
		}
		if got != want {
			t.Fatalf("op %d started at %v, want %v", j, got, want)
		}
	}
	wantMax := 25*time.Millisecond + 15*9*time.Millisecond
	if res.Hist.Max() != wantMax {
		t.Fatalf("max latency %v, want %v (coordinated omission must charge queueing delay)", res.Hist.Max(), wantMax)
	}
	if res.Elapsed != 90*time.Millisecond+wantMax {
		t.Fatalf("elapsed %v, want %v", res.Elapsed, 90*time.Millisecond+wantMax)
	}
}

// TestRunStripesSessions: with as many sessions as arrivals, nothing
// queues — every op measures exactly its own service time.
func TestRunStripesSessions(t *testing.T) {
	k := sim.New(1)
	var res *Result
	var runErr error
	k.Go("driver", func() {
		res, runErr = Run(k, Config{
			Rate:     100,
			Duration: 100 * time.Millisecond,
			Sessions: 10,
			Dist:     DistUniform,
		}, func(i int) error {
			k.Sleep(25 * time.Millisecond)
			return nil
		})
	})
	k.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if res.Done != 10 {
		t.Fatalf("done = %d, want 10", res.Done)
	}
	if got := res.Hist.Max(); got != 25*time.Millisecond {
		t.Fatalf("max latency %v, want exactly the 25ms service time", got)
	}
	if got := res.Hist.Percentile(50); got > time.Duration(float64(25*time.Millisecond)*histGrowth) {
		t.Fatalf("p50 %v, want ~25ms", got)
	}
}

// TestRunCountsErrors: op failures are counted and excluded from
// goodput but still paced and recorded.
func TestRunCountsErrors(t *testing.T) {
	k := sim.New(1)
	var res *Result
	var runErr error
	fail := errors.New("boom")
	k.Go("driver", func() {
		res, runErr = Run(k, Config{
			Rate:     1000,
			Duration: 10 * time.Millisecond,
			Sessions: 2,
			Dist:     DistUniform,
		}, func(i int) error {
			if i%2 == 1 {
				return fail
			}
			return nil
		})
	})
	k.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if res.Intended != 10 || res.Errs != 5 {
		t.Fatalf("intended/errs = %d/%d, want 10/5", res.Intended, res.Errs)
	}
	if res.Hist.Count() != 10 {
		t.Fatalf("hist holds %d ops, want all 10 (errors are paced and measured too)", res.Hist.Count())
	}
}
