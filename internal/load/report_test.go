package load

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func fixedReport() *Report {
	return &Report{
		Schema:     Schema,
		Sites:      3,
		Shards:     6,
		Sessions:   8,
		Dist:       DistPoisson,
		Seed:       1,
		DurationMS: 2000,
		Rows: []Row{
			{
				Protocol: "2pc", TargetRate: 200, Offered: 199.5, Goodput: 198.2,
				Ops: 399, Errs: 0,
				P50us: 1250.5, P95us: 2210.9, P99us: 3400.1, P999us: 5100.7, MaxUs: 6200.0,
				WALAppends: 2400, WALDeviceWrites: 310,
				Sent: 4800, Recv: 4790, Dropped: 0, Dials: 16,
			},
			{
				Protocol: "nb", TargetRate: 200, Offered: 199.5, Goodput: 197.0,
				Ops: 399, Errs: 1,
				P50us: 1100.2, P95us: 2000.4, P99us: 3100.8, P999us: 4900.3, MaxUs: 5800.0,
				WALAppends: 2600, WALDeviceWrites: 290,
				Sent: 5200, Recv: 5180, Dropped: 2, Dials: 16,
			},
		},
	}
}

// TestReportGolden pins the camelot-load/v1 wire format byte for byte.
// Field renames, reordering, or tag changes fail here on purpose: the
// JSON is a CI artifact other tooling parses. Run with -update to
// regenerate after a deliberate schema bump (which must also bump the
// Schema version string).
func TestReportGolden(t *testing.T) {
	got, err := fixedReport().JSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "report_v1.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("camelot-load/v1 encoding drifted from golden (run with -update if deliberate)\n got: %s\nwant: %s", got, want)
	}
}

// TestReportSchemaFields: the schema tag itself and round-trip
// fidelity through generic JSON.
func TestReportSchemaFields(t *testing.T) {
	b, err := fixedReport().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]any
	if err := json.Unmarshal(b, &generic); err != nil {
		t.Fatal(err)
	}
	if generic["schema"] != "camelot-load/v1" {
		t.Fatalf("schema = %v", generic["schema"])
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Rows[1].Errs != 1 || back.Rows[0].Dials != 16 {
		t.Fatal("round trip lost fields")
	}
}

// TestReportTable: the terminal rendering mentions every protocol and
// the workload identity line.
func TestReportTable(t *testing.T) {
	out := fixedReport().Table().String()
	for _, want := range []string{"2pc", "nb", "p99", "3 sites"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}
