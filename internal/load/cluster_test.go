package load

import (
	"testing"
	"time"

	"camelot/internal/rt"
)

// TestClusterLoadgenSmoke drives a low-rate open-loop run against a
// real 3-site loopback cluster (real UDP, real ctl TCP, on-disk WALs)
// end to end: every scheduled arrival completes, no infrastructure
// errors, the WAL and transport actually moved, and the connection
// pools dialed roughly the concurrency — not once per operation.
func TestClusterLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a real cluster")
	}
	const sessions = 4
	c, err := StartCluster(ClusterConfig{
		Sites:    3,
		Shards:   6,
		Dir:      t.TempDir(),
		Sessions: sessions,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cfg := Config{
		Rate:     50,
		Duration: 500 * time.Millisecond,
		Sessions: sessions,
		Dist:     DistUniform,
		Seed:     1,
	}
	res, err := Run(rt.Real(), cfg, func(i int) error {
		return c.Txn(i%sessions, i, "2pc")
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != res.Intended {
		t.Fatalf("done %d != intended %d", res.Done, res.Intended)
	}
	if res.Errs != 0 {
		t.Fatalf("%d/%d ops errored", res.Errs, res.Done)
	}
	if res.Hist.Count() == 0 || res.Hist.Percentile(50) <= 0 {
		t.Fatal("no latencies recorded")
	}
	appends, writes, sent, recv, _ := c.Counters()
	if appends == 0 || writes == 0 {
		t.Fatalf("WAL counters did not move: appends=%d deviceWrites=%d", appends, writes)
	}
	if sent == 0 || recv == 0 {
		t.Fatalf("transport counters did not move: sent=%d recv=%d", sent, recv)
	}
	// Pooling: 2 pools touched per txn, so the dial count must be near
	// the session count, far below one dial per operation.
	if d := c.Dials(); d > 4*sessions {
		t.Fatalf("pools dialed %d times for %d ops — pooling is not recycling", d, res.Done)
	}
}

// TestClusterTxnAllProtocols commits one transaction under each
// protocol to pin the ctl plumbing per protocol name.
func TestClusterTxnAllProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a real cluster")
	}
	c, err := StartCluster(ClusterConfig{Sites: 3, Dir: t.TempDir(), Sessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, proto := range []string{"2pc", "nb", "paxos"} {
		if err := c.Txn(0, 0, proto); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
	}
}
