// Package sim provides a deterministic cooperative simulation kernel
// implementing rt.Runtime on a virtual clock.
//
// Threads are ordinary goroutines, but exactly one runs at a time and
// control passes between them and the kernel loop by channel handoff,
// so execution is single-threaded, race-free, and — given a fixed
// seed — bit-for-bit reproducible. Virtual time advances only when
// every thread is blocked, jumping straight to the next timer or
// message-delivery event. This is how the repository reproduces the
// paper's millisecond-scale latency studies in microseconds of wall
// time: each Camelot primitive (IPC, datagram, log force) is charged
// as a virtual-time sleep with the cost from the paper's Table 2.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"camelot/internal/rt"
)

// Kernel is a deterministic virtual-time implementation of
// rt.Runtime. Create one with New, start the initial thread with Go,
// then call Run from the host goroutine.
type Kernel struct {
	now      time.Duration
	seq      uint64
	events   eventHeap
	runq     []*proc
	running  *proc
	yielded  chan struct{}
	rng      *rand.Rand
	stopped  bool
	inRun    bool
	blocked  map[*proc]string // parked procs and why, for deadlock reports
	parked   map[*proc]bool   // procs waiting on their resume channel
	deadlock string           // report captured before shutdown cleanup
	hooks    Hooks
}

// Hooks are optional observation points for tracing the kernel's
// scheduling decisions. They must not call kernel primitives; the
// trace collector only records. Nil hooks cost one pointer check.
type Hooks struct {
	// ThreadSwitch fires when a thread is resumed, with its name and
	// the virtual time.
	ThreadSwitch func(name string, at time.Duration)
	// TimerFire fires when a timer event spawns its callback thread.
	TimerFire func(name string, at time.Duration)
}

// SetHooks installs scheduling observation hooks. Call it before Run.
func (k *Kernel) SetHooks(h Hooks) { k.hooks = h }

// New returns a kernel whose clock reads zero and whose random source
// is seeded with seed.
func New(seed int64) *Kernel {
	return &Kernel{
		yielded: make(chan struct{}),
		rng:     rand.New(rand.NewSource(seed)),
		blocked: make(map[*proc]string),
		parked:  make(map[*proc]bool),
	}
}

type proc struct {
	name   string
	resume chan resumeMode
	dying  bool // set while the kill panic unwinds this thread's stack
}

type resumeMode int

const (
	resumeRun resumeMode = iota
	resumeKill
)

// killed is the panic value used to unwind threads when the kernel
// shuts down with work still parked.
type killed struct{}

type event struct {
	at     time.Duration
	seq    uint64
	wake   *proc  // non-nil: move this proc to the run queue
	spawn  func() // non-nil: run in a fresh proc
	name   string
	cancel bool
	done   bool
}

// --- rt.Runtime implementation ---

// Now returns the current virtual time.
func (k *Kernel) Now() rt.Time { return k.now }

// Sleep parks the calling thread until virtual time advances by d.
func (k *Kernel) Sleep(d time.Duration) {
	p := k.mustRunning("Sleep")
	if p == nil {
		panic("sim: Sleep called from outside a simulated thread")
	}
	if p.dying {
		return
	}
	if d < 0 {
		d = 0
	}
	k.schedule(k.now+d, &event{wake: p, name: "sleep:" + p.name})
	k.park(p, fmt.Sprintf("sleep %v", d))
}

// Go spawns fn as a new simulated thread. It may be called from
// inside a thread or, before Run, from the host goroutine.
func (k *Kernel) Go(name string, fn func()) {
	if k.running != nil && k.running.dying {
		return
	}
	p := &proc{name: name, resume: make(chan resumeMode, 1)}
	go func() {
		if m := <-p.resume; m == resumeKill {
			k.yielded <- struct{}{}
			return
		}
		// The yield-back to the kernel runs in a defer so it happens
		// on every exit path: normal return, the kill panic, and
		// runtime.Goexit (e.g. t.Fatal inside a simulated thread).
		defer func() {
			r := recover()
			if r != nil {
				if _, ok := r.(killed); !ok {
					panic(r) // real panic: crash the test binary
				}
			}
			k.running = nil
			k.yielded <- struct{}{}
		}()
		fn()
	}()
	k.runq = append(k.runq, p)
}

// After schedules fn on a fresh thread once virtual time advances by d.
func (k *Kernel) After(d time.Duration, fn func()) rt.Timer {
	if k.running != nil && k.running.dying {
		return simTimer{ev: &event{done: true}}
	}
	if d < 0 {
		d = 0
	}
	ev := &event{spawn: fn, name: "timer"}
	k.schedule(k.now+d, ev)
	return simTimer{ev: ev}
}

// NewMutex returns a purely exclusive virtual-time lock.
func (k *Kernel) NewMutex() rt.Mutex { return &simMutex{k: k} }

// NewCond returns a condition variable bound to m, which must have
// been created by this kernel.
func (k *Kernel) NewCond(m rt.Mutex) rt.Cond {
	return &simCond{k: k, m: m.(*simMutex)}
}

// Rand returns the kernel's seeded deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// --- kernel loop ---

// Run drives the simulation until no thread is runnable and no event
// is pending, or Stop is called. It returns the virtual time at which
// execution quiesced. If threads remain parked with no event that
// could wake them, Run returns anyway; Deadlocked reports the stuck
// threads.
func (k *Kernel) Run() time.Duration { return k.RunUntil(-1) }

// RunUntil is Run with a virtual-time horizon: events scheduled after
// limit are not dispatched (limit < 0 means no horizon). Threads
// still parked at shutdown are unwound so their goroutines exit.
func (k *Kernel) RunUntil(limit time.Duration) time.Duration {
	k.inRun = true
	defer func() { k.inRun = false }()
	quiesced := false
	for !k.stopped {
		if len(k.runq) > 0 {
			p := k.runq[0]
			copy(k.runq, k.runq[1:])
			k.runq = k.runq[:len(k.runq)-1]
			k.running = p
			delete(k.blocked, p)
			delete(k.parked, p)
			if k.hooks.ThreadSwitch != nil {
				k.hooks.ThreadSwitch(p.name, k.now)
			}
			p.resume <- resumeRun
			<-k.yielded
			continue
		}
		ev, ok := k.nextEvent()
		if !ok {
			quiesced = true // nothing runnable and no event can ever wake anyone
			break
		}
		if limit >= 0 && ev.at > limit {
			k.now = limit
			break
		}
		k.now = ev.at
		k.dispatch(ev)
	}
	if quiesced && !k.stopped && len(k.blocked) > 0 {
		k.deadlock = k.describeBlocked()
	}
	k.killParked()
	return k.now
}

// Stop requests that the kernel loop exit after the current thread
// yields. It may only be called from inside a simulated thread.
func (k *Kernel) Stop() { k.stopped = true }

// Deadlocked returns a description of threads that were parked with
// nothing to wake them when Run returned, or "" if execution quiesced
// cleanly. Valid after Run.
func (k *Kernel) Deadlocked() string { return k.deadlock }

func (k *Kernel) describeBlocked() string {
	var lines []string
	//lint:ordered collect-then-sort; the sort below fixes the order
	for p, why := range k.blocked {
		lines = append(lines, fmt.Sprintf("  %s: %s", p.name, why))
	}
	sort.Strings(lines)
	return fmt.Sprintf("sim: %d thread(s) deadlocked at t=%v:\n%s",
		len(k.blocked), k.now, strings.Join(lines, "\n"))
}

func (k *Kernel) nextEvent() (*event, bool) {
	for k.events.Len() > 0 {
		ev := heap.Pop(&k.events).(*event)
		if ev.cancel {
			continue
		}
		return ev, true
	}
	return nil, false
}

func (k *Kernel) dispatch(ev *event) {
	ev.done = true
	switch {
	case ev.wake != nil:
		k.makeRunnable(ev.wake)
	case ev.spawn != nil:
		if k.hooks.TimerFire != nil {
			k.hooks.TimerFire(ev.name, k.now)
		}
		k.Go(ev.name, ev.spawn)
	}
}

// killParked unwinds every parked or runnable thread so its goroutine
// exits; called once the loop is over so repeated simulations in one
// test binary do not leak goroutines.
func (k *Kernel) killParked() {
	for _, p := range k.runq {
		delete(k.parked, p)
		delete(k.blocked, p)
		k.kill(p)
	}
	k.runq = nil
	//lint:ordered teardown after the loop ends; nothing simulated observes it
	for p := range k.parked {
		delete(k.parked, p)
		delete(k.blocked, p)
		k.kill(p)
	}
}

func (k *Kernel) kill(p *proc) {
	p.resume <- resumeKill
	<-k.yielded
}

func (k *Kernel) schedule(at time.Duration, ev *event) {
	ev.at = at
	ev.seq = k.seq
	k.seq++
	heap.Push(&k.events, ev)
}

func (k *Kernel) makeRunnable(p *proc) {
	delete(k.blocked, p)
	k.runq = append(k.runq, p)
}

// park blocks the calling thread until something makes it runnable.
// The caller must already have arranged its wakeup (timer event,
// mutex waiter list, cond waiter list). If the kernel is shutting
// down, park unwinds the thread's stack; primitives invoked by
// deferred functions during the unwind become no-ops.
func (k *Kernel) park(p *proc, why string) {
	k.blocked[p] = why
	k.parked[p] = true
	k.running = nil
	k.yielded <- struct{}{}
	if m := <-p.resume; m == resumeKill {
		k.running = p
		p.dying = true
		panic(killed{})
	}
	k.running = p
}

// mustRunning returns the running thread. Outside Run (setup before
// the simulation, inspection after it) there is no concurrency, so
// primitives are permitted from the host goroutine and mustRunning
// returns nil; operations that would block must then panic.
func (k *Kernel) mustRunning(op string) *proc {
	if k.running == nil && k.inRun {
		panic("sim: " + op + " called from outside a simulated thread")
	}
	return k.running
}

// --- primitives ---

type simTimer struct{ ev *event }

// Stop cancels the pending call; it reports false if the timer
// already fired or was already stopped.
func (t simTimer) Stop() bool {
	if t.ev.done || t.ev.cancel {
		return false
	}
	t.ev.cancel = true
	return true
}

type simMutex struct {
	k       *Kernel
	locked  bool
	waiters []*proc
}

func (m *simMutex) Lock() {
	p := m.k.mustRunning("Mutex.Lock")
	if p != nil && p.dying {
		return
	}
	if !m.locked {
		m.locked = true
		return
	}
	if p == nil {
		panic("sim: Mutex.Lock would block outside a simulated thread")
	}
	m.waiters = append(m.waiters, p)
	m.k.park(p, "mutex")
}

// TryLock acquires the mutex if it is free. In the cooperative kernel
// every mutex is released before its holder parks, so a mutex can
// only be observed locked by the thread that holds it; for any other
// thread TryLock always succeeds. It emits no kernel events and never
// changes the schedule.
func (m *simMutex) TryLock() bool {
	p := m.k.mustRunning("Mutex.TryLock")
	if p != nil && p.dying {
		return true
	}
	if m.locked {
		return false
	}
	m.locked = true
	return true
}

func (m *simMutex) Unlock() {
	p := m.k.mustRunning("Mutex.Unlock")
	if p != nil && p.dying {
		return
	}
	if !m.locked {
		panic("sim: unlock of unlocked mutex")
	}
	if len(m.waiters) > 0 {
		// Direct handoff: the mutex stays locked and ownership moves
		// to the longest waiter, which keeps scheduling fair and
		// deterministic.
		next := m.waiters[0]
		copy(m.waiters, m.waiters[1:])
		m.waiters = m.waiters[:len(m.waiters)-1]
		m.k.makeRunnable(next)
		return
	}
	m.locked = false
}

type simCond struct {
	k       *Kernel
	m       *simMutex
	waiters []*proc
}

func (c *simCond) Wait() {
	p := c.k.mustRunning("Cond.Wait")
	if p == nil {
		panic("sim: Cond.Wait called from outside a simulated thread")
	}
	if p.dying {
		return
	}
	c.waiters = append(c.waiters, p)
	c.m.Unlock()
	c.k.park(p, "cond")
	c.m.Lock()
}

func (c *simCond) Signal() {
	p := c.k.mustRunning("Cond.Signal")
	if (p != nil && p.dying) || len(c.waiters) == 0 {
		return
	}
	next := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	c.k.makeRunnable(next)
}

func (c *simCond) Broadcast() {
	p := c.k.mustRunning("Cond.Broadcast")
	if p != nil && p.dying {
		return
	}
	for _, w := range c.waiters {
		c.k.makeRunnable(w)
	}
	c.waiters = nil
}

// --- event heap ---

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
