package sim

import (
	"fmt"
	"testing"
	"time"

	"camelot/internal/rt"
)

func TestClockStartsAtZero(t *testing.T) {
	k := New(1)
	var got rt.Time = -1
	k.Go("main", func() { got = k.Now() })
	k.Run()
	if got != 0 {
		t.Fatalf("Now() at start = %v, want 0", got)
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := New(1)
	var got rt.Time
	k.Go("main", func() {
		k.Sleep(15 * time.Millisecond)
		got = k.Now()
	})
	wall := time.Now()
	end := k.Run()
	if got != 15*time.Millisecond {
		t.Errorf("after Sleep(15ms) Now() = %v, want 15ms", got)
	}
	if end != 15*time.Millisecond {
		t.Errorf("Run() = %v, want 15ms", end)
	}
	if elapsed := time.Since(wall); elapsed > time.Second {
		t.Errorf("virtual sleep took %v of wall time", elapsed)
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	k := New(1)
	done := 0
	k.Go("main", func() {
		k.Sleep(0)
		k.Sleep(-time.Second)
		done++
	})
	if end := k.Run(); end != 0 {
		t.Errorf("Run() = %v, want 0", end)
	}
	if done != 1 {
		t.Error("thread did not complete")
	}
}

func TestParallelSleepsOverlap(t *testing.T) {
	// Ten threads each sleeping 10ms concurrently must finish at
	// t=10ms, not t=100ms.
	k := New(1)
	for i := 0; i < 10; i++ {
		k.Go(fmt.Sprintf("t%d", i), func() { k.Sleep(10 * time.Millisecond) })
	}
	if end := k.Run(); end != 10*time.Millisecond {
		t.Fatalf("Run() = %v, want 10ms", end)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() string {
		k := New(42)
		var order string
		mu := k.NewMutex()
		for i := 0; i < 5; i++ {
			i := i
			k.Go(fmt.Sprintf("t%d", i), func() {
				k.Sleep(time.Duration(k.Rand().Intn(10)) * time.Millisecond)
				mu.Lock()
				order += fmt.Sprintf("%d", i)
				mu.Unlock()
			})
		}
		k.Run()
		return order
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identically seeded runs diverged: %q vs %q", a, b)
	}
	if len(a) != 5 {
		t.Fatalf("order %q does not contain all threads", a)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	k := New(1)
	mu := k.NewMutex()
	inside, max := 0, 0
	for i := 0; i < 8; i++ {
		k.Go(fmt.Sprintf("t%d", i), func() {
			mu.Lock()
			inside++
			if inside > max {
				max = inside
			}
			k.Sleep(time.Millisecond) // hold across a yield
			inside--
			mu.Unlock()
		})
	}
	k.Run()
	if max != 1 {
		t.Fatalf("max threads inside critical section = %d, want 1", max)
	}
}

func TestCondSignalWakesOneWaiter(t *testing.T) {
	k := New(1)
	mu := k.NewMutex()
	cond := k.NewCond(mu)
	ready := false
	woken := 0
	for i := 0; i < 3; i++ {
		k.Go(fmt.Sprintf("w%d", i), func() {
			mu.Lock()
			for !ready {
				cond.Wait()
			}
			woken++
			ready = false
			mu.Unlock()
		})
	}
	k.Go("signaler", func() {
		for i := 0; i < 3; i++ {
			k.Sleep(time.Millisecond)
			mu.Lock()
			ready = true
			cond.Signal()
			mu.Unlock()
		}
	})
	k.Run()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
	if msg := k.Deadlocked(); msg != "" {
		t.Fatalf("unexpected deadlock: %s", msg)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	k := New(1)
	mu := k.NewMutex()
	cond := k.NewCond(mu)
	go110 := false
	woken := 0
	for i := 0; i < 5; i++ {
		k.Go(fmt.Sprintf("w%d", i), func() {
			mu.Lock()
			for !go110 {
				cond.Wait()
			}
			woken++
			mu.Unlock()
		})
	}
	k.Go("b", func() {
		k.Sleep(time.Millisecond)
		mu.Lock()
		go110 = true
		cond.Broadcast()
		mu.Unlock()
	})
	k.Run()
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestAfterFiresAtScheduledTime(t *testing.T) {
	k := New(1)
	var at rt.Time = -1
	k.Go("main", func() {
		k.After(25*time.Millisecond, func() { at = k.Now() })
		k.Sleep(50 * time.Millisecond)
	})
	k.Run()
	if at != 25*time.Millisecond {
		t.Fatalf("timer fired at %v, want 25ms", at)
	}
}

func TestTimerStopPreventsFiring(t *testing.T) {
	k := New(1)
	fired := false
	k.Go("main", func() {
		tm := k.After(10*time.Millisecond, func() { fired = true })
		if !tm.Stop() {
			t.Error("Stop() = false on pending timer")
		}
		if tm.Stop() {
			t.Error("second Stop() = true")
		}
		k.Sleep(20 * time.Millisecond)
	})
	k.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFiring(t *testing.T) {
	k := New(1)
	k.Go("main", func() {
		tm := k.After(time.Millisecond, func() {})
		k.Sleep(5 * time.Millisecond)
		if tm.Stop() {
			t.Error("Stop() = true after timer fired")
		}
	})
	k.Run()
}

func TestDeadlockDetection(t *testing.T) {
	k := New(1)
	mu := k.NewMutex()
	cond := k.NewCond(mu)
	k.Go("stuck", func() {
		mu.Lock()
		cond.Wait() // nobody will ever signal
		mu.Unlock()
	})
	k.Run()
	if msg := k.Deadlocked(); msg == "" {
		t.Fatal("Deadlocked() = \"\", want a report naming the stuck thread")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	k := New(1)
	ticks := 0
	k.Go("ticker", func() {
		for {
			k.Sleep(10 * time.Millisecond)
			ticks++
		}
	})
	end := k.RunUntil(95 * time.Millisecond)
	if ticks != 9 {
		t.Errorf("ticks = %d, want 9", ticks)
	}
	if end != 95*time.Millisecond {
		t.Errorf("RunUntil returned %v, want 95ms", end)
	}
}

func TestStopEndsRun(t *testing.T) {
	k := New(1)
	k.Go("stopper", func() {
		k.Sleep(5 * time.Millisecond)
		k.Stop()
	})
	k.Go("forever", func() {
		for {
			k.Sleep(time.Millisecond)
		}
	})
	end := k.Run()
	if end != 5*time.Millisecond {
		t.Fatalf("Run() = %v, want 5ms", end)
	}
	if msg := k.Deadlocked(); msg != "" {
		t.Fatalf("Stop must not report deadlock, got: %s", msg)
	}
}

func TestKillUnwindRunsDeferredFunctions(t *testing.T) {
	k := New(1)
	cleaned := false
	mu := k.NewMutex()
	k.Go("victim", func() {
		mu.Lock()
		defer mu.Unlock()
		defer func() { cleaned = true }()
		k.Sleep(time.Hour) // still parked when the horizon hits
	})
	k.RunUntil(time.Millisecond)
	if !cleaned {
		t.Fatal("deferred function did not run during kill unwind")
	}
}

func TestSpawnFromThread(t *testing.T) {
	k := New(1)
	var childTime rt.Time = -1
	k.Go("parent", func() {
		k.Sleep(time.Millisecond)
		k.Go("child", func() { childTime = k.Now() })
	})
	k.Run()
	if childTime != time.Millisecond {
		t.Fatalf("child observed t=%v, want 1ms", childTime)
	}
}

func TestQueueOnSimKernel(t *testing.T) {
	k := New(1)
	q := rt.NewQueue[int](k)
	var got []int
	k.Go("consumer", func() {
		for {
			v, ok := q.Get()
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	k.Go("producer", func() {
		for i := 0; i < 5; i++ {
			k.Sleep(time.Millisecond)
			q.Put(i)
		}
		q.Close()
	})
	k.Run()
	if len(got) != 5 {
		t.Fatalf("consumed %v, want 5 items", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

func TestQueueGetTimeout(t *testing.T) {
	k := New(1)
	q := rt.NewQueue[int](k)
	var timedOutAt rt.Time
	var delivered bool
	k.Go("consumer", func() {
		_, _, delivered = q.GetTimeout(10 * time.Millisecond)
		timedOutAt = k.Now()
	})
	k.Run()
	if delivered {
		t.Fatal("GetTimeout reported delivery on an empty queue")
	}
	if timedOutAt != 10*time.Millisecond {
		t.Fatalf("timed out at %v, want 10ms", timedOutAt)
	}
}

func TestFutureOnSimKernel(t *testing.T) {
	k := New(1)
	f := rt.NewFuture[string](k)
	var got string
	var when rt.Time
	k.Go("waiter", func() {
		got = f.Wait()
		when = k.Now()
	})
	k.Go("setter", func() {
		k.Sleep(7 * time.Millisecond)
		f.Set("done")
		f.Set("ignored") // second set must not win
	})
	k.Run()
	if got != "done" {
		t.Fatalf("Wait() = %q, want \"done\"", got)
	}
	if when != 7*time.Millisecond {
		t.Fatalf("future resolved at %v, want 7ms", when)
	}
}

func TestFutureWaitTimeout(t *testing.T) {
	k := New(1)
	f := rt.NewFuture[int](k)
	var ok bool
	k.Go("waiter", func() {
		_, ok = f.WaitTimeout(5 * time.Millisecond)
	})
	k.Run()
	if ok {
		t.Fatal("WaitTimeout reported success with no Set")
	}
}

func TestWaitGroupOnSimKernel(t *testing.T) {
	k := New(1)
	wg := rt.NewWaitGroup(k)
	n := 0
	var doneAt rt.Time
	k.Go("main", func() {
		for i := 1; i <= 3; i++ {
			i := i
			wg.Add(1)
			k.Go(fmt.Sprintf("w%d", i), func() {
				k.Sleep(time.Duration(i) * time.Millisecond)
				n++
				wg.Done()
			})
		}
		wg.Wait()
		doneAt = k.Now()
	})
	k.Run()
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	if doneAt != 3*time.Millisecond {
		t.Fatalf("WaitGroup released at %v, want 3ms", doneAt)
	}
}

func TestManyKernelsDoNotLeakDeadlockState(t *testing.T) {
	// Regression guard: killParked must fully unwind parked threads
	// so thousands of simulations can run in one process.
	for i := 0; i < 200; i++ {
		k := New(int64(i))
		mu := k.NewMutex()
		cond := k.NewCond(mu)
		k.Go("stuck", func() {
			mu.Lock()
			cond.Wait()
			mu.Unlock()
		})
		k.Go("sleeper", func() { k.Sleep(time.Hour) })
		k.RunUntil(time.Second)
	}
}
