// Package commman implements the communication manager: the process
// that forwards inter-site operation calls from applications to data
// servers, acts as a name service, and — its transaction-specific
// duty — spies on response messages to learn which sites a
// transaction has spread to (§3.1). That site list is merged into the
// coordinator's transaction manager, which is how the commit
// protocols know their subordinates.
//
// The RPC path reproduces the cost structure of §4.1:
//
//	client — CommMan — NetMsgServer — network — NetMsgServer — CommMan — server
//
// totaling 28.5 ms per call on the paper's hardware: 19.1 ms of
// NetMsgServer RPC, 2×1.5 ms of CommMan↔NetMsgServer IPC, and 3.2 ms
// of CommMan CPU at each site. Breakdown reports those components.
package commman

import (
	"errors"
	"fmt"
	"time"

	"camelot/internal/params"
	"camelot/internal/rt"
	"camelot/internal/server"
	"camelot/internal/tid"
	"camelot/internal/transport"
)

// RPC errors.
var (
	// ErrTimeout reports an operation call that got no response; the
	// caller "should eventually initiate the abort protocol".
	ErrTimeout = errors.New("commman: remote operation timed out")
	// ErrNoSuchServer reports a name-service miss.
	ErrNoSuchServer = errors.New("commman: no such server")
)

// Op selects the remote operation.
type Op uint8

// Remote operations.
const (
	OpRead Op = iota + 1
	OpWrite
)

// Request is a forwarded operation call.
type Request struct {
	Call   uint64
	Origin tid.SiteID
	TID    tid.TID
	Parent tid.TID
	Server string
	Op     Op
	Key    string
	Value  []byte
}

// TraceKind names the forwarded call for trace timelines. Requests
// deliberately do not implement trace.TxPayload: per-family message
// counters measure the commit protocol's datagram budget, and
// operation RPCs are not part of it.
func (r *Request) TraceKind() string {
	if r.Op == OpWrite {
		return "RPC-WRITE"
	}
	return "RPC-READ"
}

// Response answers a Request. Sites is the spied-on list of sites
// used to produce the response, which the client-side communication
// manager merges into its transaction manager's knowledge.
type Response struct {
	Call  uint64
	Value []byte
	Err   string
	Sites []tid.SiteID
}

// TraceKind names the reply for trace timelines.
func (r *Response) TraceKind() string { return "RPC-REPLY" }

// Names is the cluster-wide name service (the NetMsgServer role): a
// client presents a string naming the desired service and learns
// where it runs.
type Names struct {
	mu      rt.Mutex
	entries map[string]tid.SiteID
}

// NewNames returns an empty name service.
func NewNames(r rt.Runtime) *Names {
	return &Names{mu: r.NewMutex(), entries: make(map[string]tid.SiteID)}
}

// Register advertises server name at site.
func (n *Names) Register(name string, site tid.SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.entries[name] = site
}

// Lookup resolves a server name to its site.
func (n *Names) Lookup(name string) (tid.SiteID, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.entries[name]
	return s, ok
}

// SiteTracker is the communication manager's hook into its local
// transaction manager: merging spied-on site lists.
type SiteTracker interface {
	AddSites(t tid.TID, sites []tid.SiteID)
}

// Manager is one site's communication manager.
type Manager struct {
	r     rt.Runtime
	site  tid.SiteID
	net   *transport.Network
	names *Names
	p     params.Params
	tm    SiteTracker

	kernel   *rt.CPU
	mu       rt.Mutex
	inflight map[uint64]*rt.Future[*Response]
	nextCall uint64
	servers  map[string]*server.Server
	calls    int
	timeout  time.Duration
}

// New creates a communication manager. timeout bounds each remote
// call; zero means 10× the round-trip estimate.
func New(r rt.Runtime, site tid.SiteID, net *transport.Network, names *Names,
	tm SiteTracker, p params.Params, kernel *rt.CPU, timeout time.Duration) *Manager {
	if timeout <= 0 {
		timeout = 10 * p.RemoteRPC
		if timeout <= 0 {
			timeout = time.Second
		}
	}
	return &Manager{
		r: r, site: site, net: net, names: names, p: p, tm: tm, kernel: kernel,
		mu:       r.NewMutex(),
		inflight: make(map[uint64]*rt.Future[*Response]),
		servers:  make(map[string]*server.Server),
		timeout:  timeout,
	}
}

// RegisterServer makes a local data server reachable by name from any
// site.
func (m *Manager) RegisterServer(s *server.Server) {
	m.mu.Lock()
	m.servers[s.Name()] = s
	m.mu.Unlock()
	m.names.Register(s.Name(), m.site)
}

// LocalServer returns the named local server, if any.
func (m *Manager) LocalServer(name string) (*server.Server, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.servers[name]
	return s, ok
}

// Calls reports how many remote operations this manager forwarded.
func (m *Manager) Calls() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calls
}

// Call forwards one operation to the named server at dest and blocks
// for the response. On success it merges the response's site list
// into the local transaction manager — the spying of §3.1.
func (m *Manager) Call(dest tid.SiteID, req *Request) ([]byte, error) {
	fut := rt.NewFuture[*Response](m.r)
	m.mu.Lock()
	m.nextCall++
	req.Call = m.nextCall
	req.Origin = m.site
	m.inflight[req.Call] = fut
	m.calls++
	m.mu.Unlock()

	// Client-side costs: application→CommMan IPC and CommMan CPU.
	m.charge(m.p.CommManIPC + m.p.CommManCPU)
	m.net.SendReliable(m.site, dest, req, m.p.NetMsgRPC/2)

	resp, ok := fut.WaitTimeout(m.timeout)
	m.mu.Lock()
	delete(m.inflight, req.Call)
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s at %s", ErrTimeout, req.Server, dest)
	}
	if m.tm != nil && len(resp.Sites) > 0 {
		m.tm.AddSites(req.TID, resp.Sites)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.Value, nil
}

// HandleRequest serves a forwarded operation at the destination site.
// It runs on the delivery thread.
func (m *Manager) HandleRequest(req *Request) {
	m.mu.Lock()
	srv := m.servers[req.Server]
	m.mu.Unlock()

	resp := &Response{Call: req.Call, Sites: []tid.SiteID{m.site}}
	if srv == nil {
		resp.Err = fmt.Sprintf("%v: %q at %s", ErrNoSuchServer, req.Server, m.site)
	} else {
		switch req.Op {
		case OpRead:
			v, err := srv.Read(req.TID, req.Parent, req.Key)
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Value = v
			}
		case OpWrite:
			if err := srv.Write(req.TID, req.Parent, req.Key, req.Value); err != nil {
				resp.Err = err.Error()
			}
		default:
			resp.Err = "commman: bad op"
		}
	}
	// Server-side costs: CommMan CPU and CommMan↔NetMsgServer IPC.
	m.charge(m.p.CommManCPU + m.p.CommManIPC)
	m.net.SendReliable(m.site, req.Origin, resp, m.p.NetMsgRPC/2)
}

// HandleResponse resolves the waiting caller.
func (m *Manager) HandleResponse(resp *Response) {
	m.mu.Lock()
	fut := m.inflight[resp.Call]
	m.mu.Unlock()
	if fut != nil {
		fut.Set(resp)
	}
}

// Breakdown returns the §4.1 latency decomposition of one remote
// call under the current cost model, in the order the paper lists it.
func (m *Manager) Breakdown() []Component {
	return []Component{
		{"NetMsgServer-to-NetMsgServer RPC", m.p.NetMsgRPC},
		{"CommMan-NetMsgServer IPC (2 sites)", 2 * m.p.CommManIPC},
		{"CommMan CPU, client site", m.p.CommManCPU},
		{"CommMan CPU, server site", m.p.CommManCPU},
	}
}

// Component is one row of the RPC latency breakdown.
type Component struct {
	Name string
	Cost time.Duration
}

func (m *Manager) charge(d time.Duration) {
	if d > 0 {
		rt.Charge(m.r, m.kernel, d+m.p.KernelCPU)
	}
}
