package commman

import (
	"errors"
	"testing"
	"time"

	"camelot/internal/params"
	"camelot/internal/rt"
	"camelot/internal/sim"
	"camelot/internal/tid"
	"camelot/internal/transport"
	"camelot/internal/wal"

	srv "camelot/internal/server"
)

// recordingTracker captures AddSites calls.
type recordingTracker struct {
	added map[tid.TID][]tid.SiteID
}

func (r *recordingTracker) AddSites(t tid.TID, sites []tid.SiteID) {
	if r.added == nil {
		r.added = make(map[tid.TID][]tid.SiteID)
	}
	r.added[t] = append(r.added[t], sites...)
}

type acceptAll struct{}

func (acceptAll) Join(t, parent tid.TID, p srv.Participant) error { return nil }

type rig struct {
	k       *sim.Kernel
	net     *transport.Network
	names   *Names
	client  *Manager
	server  *Manager
	tracker *recordingTracker
	remote  *srv.Server
}

func newRig(p params.Params) *rig {
	k := sim.New(1)
	r := &rig{
		k:       k,
		net:     transport.NewNetwork(k, transport.Config{}),
		tracker: &recordingTracker{},
	}
	r.names = NewNames(k)
	r.client = New(k, 1, r.net, r.names, r.tracker, p, nil, 100*time.Millisecond)
	r.server = New(k, 2, r.net, r.names, nil, p, nil, 100*time.Millisecond)
	log := wal.Open(k, wal.NewMemStore(), wal.Config{})
	r.remote = srv.New(k, "store", acceptAll{}, log, srv.Config{LockTimeout: 50 * time.Millisecond, Params: p})
	r.server.RegisterServer(r.remote)
	register := func(m *Manager, id tid.SiteID) {
		r.net.Register(id, func(d transport.Datagram) {
			switch pl := d.Payload.(type) {
			case *Request:
				m.HandleRequest(pl)
			case *Response:
				m.HandleResponse(pl)
			}
		})
	}
	register(r.client, 1)
	register(r.server, 2)
	return r
}

func (r *rig) run(t *testing.T, fn func()) {
	t.Helper()
	r.k.Go("test", func() {
		fn()
		r.k.Stop()
	})
	r.k.RunUntil(time.Minute)
	if msg := r.k.Deadlocked(); msg != "" {
		t.Fatal(msg)
	}
}

func txn(n uint32) tid.TID { return tid.Top(tid.MakeFamily(1, n)) }

func TestNameService(t *testing.T) {
	r := newRig(params.Fast())
	if site, ok := r.names.Lookup("store"); !ok || site != 2 {
		t.Fatalf("Lookup(store) = %v, %v; want site2", site, ok)
	}
	if _, ok := r.names.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) succeeded")
	}
}

func TestRemoteWriteAndRead(t *testing.T) {
	r := newRig(params.Fast())
	r.run(t, func() {
		if _, err := r.client.Call(2, &Request{
			TID: txn(1), Server: "store", Op: OpWrite, Key: "k", Value: []byte("v"),
		}); err != nil {
			t.Fatalf("write call: %v", err)
		}
		got, err := r.client.Call(2, &Request{
			TID: txn(1), Server: "store", Op: OpRead, Key: "k",
		})
		if err != nil || string(got) != "v" {
			t.Fatalf("read call = %q, %v", got, err)
		}
	})
}

func TestResponseCarriesSiteListToTracker(t *testing.T) {
	r := newRig(params.Fast())
	r.run(t, func() {
		r.client.Call(2, &Request{TID: txn(1), Server: "store", Op: OpWrite, Key: "k", Value: []byte("v")}) //nolint:errcheck
		sites := r.tracker.added[txn(1)]
		if len(sites) != 1 || sites[0] != 2 {
			t.Fatalf("tracker saw %v, want [site2] — the CommMan spying is broken", sites)
		}
	})
}

func TestUnknownServerReturnsError(t *testing.T) {
	r := newRig(params.Fast())
	r.run(t, func() {
		_, err := r.client.Call(2, &Request{TID: txn(1), Server: "nope", Op: OpRead, Key: "k"})
		if err == nil {
			t.Fatal("call to unknown server succeeded")
		}
	})
}

func TestServerErrorPropagates(t *testing.T) {
	r := newRig(params.Fast())
	r.run(t, func() {
		_, err := r.client.Call(2, &Request{TID: txn(1), Server: "store", Op: OpRead, Key: "absent"})
		if err == nil {
			t.Fatal("read of absent key succeeded remotely")
		}
	})
}

func TestCallTimesOutWhenSiteDown(t *testing.T) {
	r := newRig(params.Fast())
	r.run(t, func() {
		r.net.SetDown(2, true)
		start := r.k.Now()
		_, err := r.client.Call(2, &Request{TID: txn(1), Server: "store", Op: OpRead, Key: "k"})
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("call to dead site = %v, want ErrTimeout", err)
		}
		if waited := r.k.Now() - start; waited != 100*time.Millisecond {
			t.Fatalf("timed out after %v, want the 100ms budget", waited)
		}
	})
}

func TestRPCChargesPaperCosts(t *testing.T) {
	p := params.Paper()
	r := newRig(p)
	r.run(t, func() {
		// Seed a value (cost not measured).
		r.client.Call(2, &Request{TID: txn(1), Server: "store", Op: OpWrite, Key: "k", Value: []byte("v")}) //nolint:errcheck
		start := r.k.Now()
		if _, err := r.client.Call(2, &Request{TID: txn(1), Server: "store", Op: OpRead, Key: "k"}); err != nil {
			t.Fatalf("call: %v", err)
		}
		elapsed := time.Duration(r.k.Now() - start)
		// 2×(CommManIPC + CommManCPU) + NetMsgRPC + server-side costs
		// (lock + CPU) ≈ 28.5 ms + data access.
		want := 2*(p.CommManIPC+p.CommManCPU) + p.NetMsgRPC + p.GetLock + p.ServerCPU
		if elapsed != want {
			t.Fatalf("remote call took %v, want %v", elapsed, want)
		}
	})
}

func TestBreakdownSumsToPaperTotal(t *testing.T) {
	r := newRig(params.Paper())
	var total time.Duration
	for _, c := range r.client.Breakdown() {
		total += c.Cost
	}
	if total != 28500*time.Microsecond {
		t.Fatalf("breakdown total = %v, want 28.5ms", total)
	}
}

func TestCallsCounter(t *testing.T) {
	r := newRig(params.Fast())
	r.run(t, func() {
		for i := 0; i < 3; i++ {
			r.client.Call(2, &Request{TID: txn(1), Server: "store", Op: OpWrite, Key: "k", Value: []byte("v")}) //nolint:errcheck
		}
		if got := r.client.Calls(); got != 3 {
			t.Fatalf("Calls() = %d, want 3", got)
		}
	})
}

func TestLocalServerLookup(t *testing.T) {
	r := newRig(params.Fast())
	if _, ok := r.server.LocalServer("store"); !ok {
		t.Fatal("LocalServer(store) not found at its own site")
	}
	if _, ok := r.client.LocalServer("store"); ok {
		t.Fatal("LocalServer(store) found at the wrong site")
	}
}

// Compile-time check that the tracker interface matches core's usage.
var _ SiteTracker = (*recordingTracker)(nil)
var _ rt.Runtime = (*sim.Kernel)(nil)
