// Package cthreads reproduces the runtime library the paper's §3.4
// describes: the C-Threads package (threads, purely exclusive locks,
// condition variables) and the "rw-lock" package built on top of it,
// which provides shared/exclusive locks that wait on condition
// variables instead of spinning — "resulting in considerable CPU
// savings if a thread must wait for a lock for an extended period."
//
// Two faithful quirks are preserved:
//
//   - a Lock is not reentrant: "a thread can deadlock with itself by
//     requesting a lock which it already holds" (the simulation
//     kernel's deadlock detector reports exactly this);
//   - deadlock avoidance between locks is by a defined hierarchy:
//     "when a thread is to hold several locks simultaneously it must
//     obtain the locks in the defined order" — Hierarchy enforces
//     that order and panics on violations, turning latent deadlocks
//     into immediate failures.
package cthreads

import (
	"fmt"
	"sort"

	"camelot/internal/rt"
)

// Lock is the C-Threads purely exclusive lock. The method for
// indicating whether it is held is deliberately unsophisticated: a
// flag that is either set or not, with no owner tracking — hence the
// self-deadlock property.
type Lock struct {
	mu   rt.Mutex
	cond rt.Cond
	held bool
}

// NewLock returns an unheld lock.
func NewLock(r rt.Runtime) *Lock {
	l := &Lock{}
	l.mu = r.NewMutex()
	l.cond = r.NewCond(l.mu)
	return l
}

// Acquire blocks until the lock is free, then takes it. A thread that
// already holds the lock blocks forever.
func (l *Lock) Acquire() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.held {
		l.cond.Wait()
	}
	l.held = true
}

// TryAcquire takes the lock if free and reports whether it did.
func (l *Lock) TryAcquire() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.held {
		return false
	}
	l.held = true
	return true
}

// Release frees the lock; releasing an unheld lock panics, the moral
// equivalent of the original's undefined behavior.
func (l *Lock) Release() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.held {
		panic("cthreads: release of unheld lock")
	}
	l.held = false
	l.cond.Signal()
}

// Held reports whether the lock is currently held (by anyone).
func (l *Lock) Held() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.held
}

// RWLock is the rw-lock package: shared/exclusive locking with
// condition-variable waiting. Writers are preferred once waiting, so
// a stream of readers cannot starve them.
type RWLock struct {
	mu             rt.Mutex
	cond           rt.Cond
	readers        int
	writer         bool
	waitingWriters int
}

// NewRWLock returns an open read/write lock.
func NewRWLock(r rt.Runtime) *RWLock {
	l := &RWLock{}
	l.mu = r.NewMutex()
	l.cond = r.NewCond(l.mu)
	return l
}

// RLock acquires the lock shared.
func (l *RWLock) RLock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.writer || l.waitingWriters > 0 {
		l.cond.Wait()
	}
	l.readers++
}

// RUnlock releases a shared hold.
func (l *RWLock) RUnlock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.readers <= 0 {
		panic("cthreads: RUnlock without RLock")
	}
	l.readers--
	if l.readers == 0 {
		l.cond.Broadcast()
	}
}

// WLock acquires the lock exclusive.
func (l *RWLock) WLock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.waitingWriters++
	for l.writer || l.readers > 0 {
		l.cond.Wait()
	}
	l.waitingWriters--
	l.writer = true
}

// WUnlock releases the exclusive hold.
func (l *RWLock) WUnlock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.writer {
		panic("cthreads: WUnlock without WLock")
	}
	l.writer = false
	l.cond.Broadcast()
}

// Hierarchy enforces the classic ordered-acquisition discipline for a
// set of named locks: each lock has a level, and a thread may only
// acquire locks in strictly increasing level order. Violations panic
// immediately instead of deadlocking eventually.
type Hierarchy struct {
	r      rt.Runtime
	mu     rt.Mutex
	levels map[string]int
	locks  map[string]*Lock
	// held tracks each thread's current maximum level by a
	// caller-provided thread name; the original used per-thread
	// state, which Go's runtime does not expose.
	held map[string][]string
}

// NewHierarchy defines locks with the given names; level is the
// position in the list.
func NewHierarchy(r rt.Runtime, names ...string) *Hierarchy {
	h := &Hierarchy{
		r:      r,
		levels: make(map[string]int, len(names)),
		locks:  make(map[string]*Lock, len(names)),
		held:   make(map[string][]string),
	}
	h.mu = r.NewMutex()
	for i, n := range names {
		h.levels[n] = i
		h.locks[n] = NewLock(r)
	}
	return h
}

// Acquire takes the named lock for the named thread, enforcing the
// hierarchy: every lock already held by the thread must have a lower
// level.
func (h *Hierarchy) Acquire(thread, name string) {
	h.mu.Lock()
	lock := h.locks[name]
	if lock == nil {
		h.mu.Unlock()
		panic(fmt.Sprintf("cthreads: unknown lock %q", name))
	}
	level := h.levels[name]
	for _, heldName := range h.held[thread] {
		if h.levels[heldName] >= level {
			h.mu.Unlock()
			panic(fmt.Sprintf(
				"cthreads: hierarchy violation: %s requests %q (level %d) while holding %q (level %d)",
				thread, name, level, heldName, h.levels[heldName]))
		}
	}
	h.mu.Unlock()
	lock.Acquire()
	h.mu.Lock()
	h.held[thread] = append(h.held[thread], name)
	h.mu.Unlock()
}

// Release frees the named lock for the thread.
func (h *Hierarchy) Release(thread, name string) {
	h.mu.Lock()
	lock := h.locks[name]
	list := h.held[thread]
	for i, n := range list {
		if n == name {
			h.held[thread] = append(list[:i], list[i+1:]...)
			break
		}
	}
	h.mu.Unlock()
	lock.Release()
}

// Holding returns the locks the thread currently holds, sorted by
// level.
func (h *Hierarchy) Holding(thread string) []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := append([]string(nil), h.held[thread]...)
	sort.Slice(out, func(i, j int) bool { return h.levels[out[i]] < h.levels[out[j]] })
	return out
}
