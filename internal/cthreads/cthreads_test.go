package cthreads

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"camelot/internal/sim"
)

func runSim(t *testing.T, fn func(k *sim.Kernel)) string {
	t.Helper()
	k := sim.New(1)
	k.Go("main", func() { fn(k) })
	k.RunUntil(time.Minute)
	return k.Deadlocked()
}

func TestLockMutualExclusion(t *testing.T) {
	dead := runSim(t, func(k *sim.Kernel) {
		l := NewLock(k)
		inside, max := 0, 0
		for i := 0; i < 5; i++ {
			k.Go(fmt.Sprintf("t%d", i), func() {
				l.Acquire()
				inside++
				if inside > max {
					max = inside
				}
				k.Sleep(time.Millisecond)
				inside--
				l.Release()
			})
		}
		k.Sleep(100 * time.Millisecond)
		if max != 1 {
			t.Errorf("max inside = %d, want 1", max)
		}
	})
	if dead != "" {
		t.Fatal(dead)
	}
}

func TestLockSelfDeadlock(t *testing.T) {
	// "A thread can deadlock with itself by requesting a lock which
	// it already holds." The simulation's deadlock detector must name
	// the stuck thread.
	dead := runSim(t, func(k *sim.Kernel) {
		l := NewLock(k)
		l.Acquire()
		l.Acquire() // deadlocks this thread forever
	})
	if dead == "" {
		t.Fatal("self-deadlock not detected")
	}
	if !strings.Contains(dead, "main") {
		t.Fatalf("deadlock report does not name the thread: %s", dead)
	}
}

func TestTryAcquire(t *testing.T) {
	runSim(t, func(k *sim.Kernel) {
		l := NewLock(k)
		if !l.TryAcquire() {
			t.Error("TryAcquire on free lock failed")
		}
		if l.TryAcquire() {
			t.Error("TryAcquire on held lock succeeded")
		}
		l.Release()
		if !l.TryAcquire() {
			t.Error("TryAcquire after release failed")
		}
	})
}

func TestReleaseUnheldPanics(t *testing.T) {
	k := sim.New(1)
	l := NewLock(k)
	panicked := false
	k.Go("main", func() {
		defer func() { panicked = recover() != nil }()
		l.Release()
	})
	k.Run()
	if !panicked {
		t.Fatal("Release of unheld lock did not panic")
	}
}

func TestRWLockReadersShare(t *testing.T) {
	dead := runSim(t, func(k *sim.Kernel) {
		l := NewRWLock(k)
		concurrent, max := 0, 0
		for i := 0; i < 4; i++ {
			k.Go(fmt.Sprintf("r%d", i), func() {
				l.RLock()
				concurrent++
				if concurrent > max {
					max = concurrent
				}
				k.Sleep(10 * time.Millisecond)
				concurrent--
				l.RUnlock()
			})
		}
		k.Sleep(time.Second)
		if max != 4 {
			t.Errorf("max concurrent readers = %d, want 4", max)
		}
	})
	if dead != "" {
		t.Fatal(dead)
	}
}

func TestRWLockWriterExcludesAll(t *testing.T) {
	dead := runSim(t, func(k *sim.Kernel) {
		l := NewRWLock(k)
		var trace []string
		l.WLock()
		k.Go("reader", func() {
			l.RLock()
			trace = append(trace, "read")
			l.RUnlock()
		})
		k.Go("writer2", func() {
			l.WLock()
			trace = append(trace, "write2")
			l.WUnlock()
		})
		k.Sleep(10 * time.Millisecond)
		if len(trace) != 0 {
			t.Errorf("lock holders got in during exclusive hold: %v", trace)
		}
		l.WUnlock()
		k.Sleep(10 * time.Millisecond)
		if len(trace) != 2 {
			t.Errorf("waiters never ran: %v", trace)
		}
	})
	if dead != "" {
		t.Fatal(dead)
	}
}

func TestRWLockWriterNotStarvedByReaders(t *testing.T) {
	dead := runSim(t, func(k *sim.Kernel) {
		l := NewRWLock(k)
		l.RLock()
		writerDone := false
		k.Go("writer", func() {
			l.WLock()
			writerDone = true
			l.WUnlock()
		})
		k.Sleep(time.Millisecond)
		// New readers arriving while a writer waits must queue behind
		// it.
		lateRead := false
		k.Go("late-reader", func() {
			l.RLock()
			lateRead = true
			l.RUnlock()
		})
		k.Sleep(10 * time.Millisecond)
		if lateRead {
			t.Error("late reader overtook waiting writer")
		}
		l.RUnlock()
		k.Sleep(10 * time.Millisecond)
		if !writerDone || !lateRead {
			t.Errorf("writerDone=%v lateRead=%v after release", writerDone, lateRead)
		}
	})
	if dead != "" {
		t.Fatal(dead)
	}
}

func TestHierarchyOrderedAcquisition(t *testing.T) {
	runSim(t, func(k *sim.Kernel) {
		h := NewHierarchy(k, "family", "txn", "log")
		h.Acquire("t1", "family")
		h.Acquire("t1", "txn")
		h.Acquire("t1", "log")
		got := h.Holding("t1")
		if len(got) != 3 || got[0] != "family" || got[2] != "log" {
			t.Errorf("Holding = %v", got)
		}
		h.Release("t1", "log")
		h.Release("t1", "txn")
		h.Release("t1", "family")
		if len(h.Holding("t1")) != 0 {
			t.Error("locks leak after release")
		}
	})
}

func TestHierarchyViolationPanics(t *testing.T) {
	k := sim.New(1)
	h := NewHierarchy(k, "low", "high")
	panicked := false
	k.Go("main", func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
				if !strings.Contains(fmt.Sprint(r), "hierarchy violation") {
					t.Errorf("panic = %v", r)
				}
			}
		}()
		h.Acquire("t1", "high")
		h.Acquire("t1", "low") // wrong order
	})
	k.Run()
	if !panicked {
		t.Fatal("out-of-order acquisition did not panic")
	}
}

func TestHierarchyUnknownLockPanics(t *testing.T) {
	k := sim.New(1)
	h := NewHierarchy(k, "a")
	panicked := false
	k.Go("main", func() {
		defer func() { panicked = recover() != nil }()
		h.Acquire("t1", "nope")
	})
	k.Run()
	if !panicked {
		t.Fatal("unknown lock did not panic")
	}
}

func TestHierarchyIndependentThreads(t *testing.T) {
	dead := runSim(t, func(k *sim.Kernel) {
		h := NewHierarchy(k, "a", "b")
		order := ""
		k.Go("t1", func() {
			h.Acquire("t1", "a")
			h.Acquire("t1", "b")
			order += "1"
			h.Release("t1", "b")
			h.Release("t1", "a")
		})
		k.Go("t2", func() {
			h.Acquire("t2", "a")
			h.Acquire("t2", "b")
			order += "2"
			h.Release("t2", "b")
			h.Release("t2", "a")
		})
		k.Sleep(100 * time.Millisecond)
		if len(order) != 2 {
			t.Errorf("both threads did not finish: %q", order)
		}
	})
	// Ordered acquisition means no deadlock even with two lock-hungry
	// threads.
	if dead != "" {
		t.Fatal(dead)
	}
}
