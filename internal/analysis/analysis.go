// Package analysis implements the paper's "static" (non-empirical)
// analysis of commitment protocols (§4.2): the completion path (what
// must happen before the commit-transaction call returns) and the
// critical path (before all locks are dropped as well) expressed as
// sums of primitive latencies. Identical parallel operations are
// assumed to proceed perfectly in parallel, so a fan-out of datagrams
// or forces counts once.
//
// Because the formulas are built from the same params.Params the
// simulator charges, they predict simulated latency the way the
// paper's formulas predicted measured latency — as an underestimate,
// since CPU time inside processes is deliberately ignored.
package analysis

import (
	"fmt"
	"strings"
	"time"

	"camelot/internal/params"
)

// Item is one step on a path.
type Item struct {
	Label string
	Cost  time.Duration
}

// Breakdown is a named path: an ordered list of primitive costs.
type Breakdown struct {
	Name  string
	Items []Item
}

// Total sums the path.
func (b Breakdown) Total() time.Duration {
	var t time.Duration
	for _, it := range b.Items {
		t += it.Cost
	}
	return t
}

// TotalMs returns the path length in milliseconds.
func (b Breakdown) TotalMs() float64 {
	return float64(b.Total()) / float64(time.Millisecond)
}

// String renders the breakdown as a Table-3-style listing.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", b.Name)
	for _, it := range b.Items {
		fmt.Fprintf(&sb, "  %-42s %6.1f ms\n", it.Label,
			float64(it.Cost)/float64(time.Millisecond))
	}
	fmt.Fprintf(&sb, "  %-42s %6.1f ms\n", "TOTAL (static)", b.TotalMs())
	return sb.String()
}

// datagram is one inter-TranMan message: a send cycle plus the wire
// time.
func datagram(p params.Params, label string) Item {
	return Item{label, p.SendCycle + p.Datagram}
}

// opItems is the operation-processing prefix common to every minimal
// transaction: begin, one local operation (with its join), and N
// serial remote operations. Everything here is *subtracted* when the
// paper derives "transaction management alone".
func opItems(p params.Params, subs int) []Item {
	items := []Item{
		{"begin-transaction IPC", p.LocalIPC},
		{"local operation IPC", p.LocalIPCServer},
		{"join-transaction IPC", p.LocalIPC},
		{"get lock", p.GetLock},
	}
	for i := 0; i < subs; i++ {
		items = append(items, Item{fmt.Sprintf("remote operation %d (RPC)", i+1), p.RemoteRPC})
	}
	return items
}

// commitEntry is the commit-transaction call and the local vote round.
func commitEntry(p params.Params) []Item {
	return []Item{
		{"commit-transaction IPC", p.LocalIPC},
		{"local server vote IPC", p.LocalIPCServer},
	}
}

// OpCost returns the operation cost the paper subtracts to derive
// transaction-management-only latency: 3.5 ms for the local operation
// plus 29 ms per remote operation.
func OpCost(p params.Params, subs int) time.Duration {
	local := p.LocalIPCServer + p.GetLock
	return local + time.Duration(subs)*p.RemoteRPC
}

// LocalUpdateCompletion is the completion path of a local update
// transaction: one forced commit record (Figure 1's "only one log
// write").
func LocalUpdateCompletion(p params.Params) Breakdown {
	b := Breakdown{Name: "local update, completion path"}
	b.Items = append(b.Items, opItems(p, 0)...)
	b.Items = append(b.Items, commitEntry(p)...)
	b.Items = append(b.Items, Item{"commit record log force", p.LogForce})
	return b
}

// LocalReadCompletion is the completion path of a local read
// transaction: no log writes at all.
func LocalReadCompletion(p params.Params) Breakdown {
	b := Breakdown{Name: "local read, completion path"}
	b.Items = append(b.Items, opItems(p, 0)...)
	b.Items = append(b.Items, commitEntry(p)...)
	return b
}

// TwoPhaseUpdateCompletion is the completion path of the optimized
// two-phase commit with subs update subordinates: two forces (the
// subordinate's prepare and the coordinator's commit) and two
// datagrams.
func TwoPhaseUpdateCompletion(p params.Params, subs int) Breakdown {
	b := Breakdown{Name: fmt.Sprintf("2PC update, %d subordinate(s), completion path", subs)}
	b.Items = append(b.Items, opItems(p, subs)...)
	b.Items = append(b.Items, commitEntry(p)...)
	b.Items = append(b.Items,
		datagram(p, "PREPARE datagram"),
		Item{"subordinate vote IPC", p.LocalIPCServer},
		Item{"subordinate prepare log force", p.LogForce},
		datagram(p, "VOTE datagram"),
		Item{"coordinator commit log force", p.LogForce},
	)
	return b
}

// TwoPhaseUpdateCritical extends the completion path to the moment
// all locks are dropped: the COMMIT datagram and the subordinate's
// lock release.
func TwoPhaseUpdateCritical(p params.Params, subs int) Breakdown {
	b := TwoPhaseUpdateCompletion(p, subs)
	b.Name = fmt.Sprintf("2PC update, %d subordinate(s), critical path", subs)
	b.Items = append(b.Items,
		datagram(p, "COMMIT datagram"),
		Item{"drop-locks one-way IPC", p.LocalOneWay},
		Item{"drop lock", p.DropLock},
	)
	return b
}

// TwoPhaseReadCompletion is the completion path of a completely
// read-only distributed transaction: one round of messages, no log
// writes.
func TwoPhaseReadCompletion(p params.Params, subs int) Breakdown {
	b := Breakdown{Name: fmt.Sprintf("2PC read, %d subordinate(s), completion path", subs)}
	b.Items = append(b.Items, opItems(p, subs)...)
	b.Items = append(b.Items, commitEntry(p)...)
	if subs > 0 {
		b.Items = append(b.Items,
			datagram(p, "PREPARE datagram"),
			Item{"subordinate vote IPC", p.LocalIPCServer},
			datagram(p, "READ-ONLY VOTE datagram"),
		)
	}
	return b
}

// NonBlockingUpdateCompletion is the completion path of the
// non-blocking protocol: "4 log forces, 4 datagrams, 1 remote
// operation, and local transaction management messages" for one
// subordinate (§4.3).
func NonBlockingUpdateCompletion(p params.Params, subs int) Breakdown {
	b := Breakdown{Name: fmt.Sprintf("non-blocking update, %d subordinate(s), completion path", subs)}
	b.Items = append(b.Items, opItems(p, subs)...)
	b.Items = append(b.Items, commitEntry(p)...)
	b.Items = append(b.Items,
		Item{"coordinator prepare log force", p.LogForce},
		datagram(p, "NB-PREPARE datagram"),
		Item{"subordinate vote IPC", p.LocalIPCServer},
		Item{"subordinate prepare log force", p.LogForce},
		datagram(p, "NB-VOTE datagram"),
		Item{"coordinator replication log force", p.LogForce},
		datagram(p, "NB-REPLICATE datagram"),
		Item{"subordinate replication log force", p.LogForce},
		datagram(p, "NB-REPLICATE-ACK datagram"),
	)
	return b
}

// NonBlockingUpdateCritical adds the notify phase: five messages on
// the critical path.
func NonBlockingUpdateCritical(p params.Params, subs int) Breakdown {
	b := NonBlockingUpdateCompletion(p, subs)
	b.Name = fmt.Sprintf("non-blocking update, %d subordinate(s), critical path", subs)
	b.Items = append(b.Items,
		datagram(p, "NB-OUTCOME datagram"),
		Item{"drop-locks one-way IPC", p.LocalOneWay},
		Item{"drop lock", p.DropLock},
	)
	return b
}

// NonBlockingReadCompletion: a completely read-only transaction has
// the same critical path as under two-phase commitment.
func NonBlockingReadCompletion(p params.Params, subs int) Breakdown {
	b := TwoPhaseReadCompletion(p, subs)
	b.Name = fmt.Sprintf("non-blocking read, %d subordinate(s), completion path", subs)
	return b
}
