package analysis

import (
	"strings"
	"testing"
	"time"

	"camelot/internal/params"
)

// The paper's own accounting is the reference: an optimized
// two-phase update needs 2 forces and 2 datagrams beyond local work;
// the non-blocking protocol needs 4 forces and 5 messages on its
// critical path (one fewer datagram on the completion path).

func count(b Breakdown, substr string) int {
	n := 0
	for _, it := range b.Items {
		if strings.Contains(strings.ToLower(it.Label), substr) {
			n++
		}
	}
	return n
}

func TestTwoPhaseUpdateForceAndMessageCounts(t *testing.T) {
	p := params.Paper()
	comp := TwoPhaseUpdateCompletion(p, 1)
	if got := count(comp, "force"); got != 2 {
		t.Errorf("completion path forces = %d, want 2", got)
	}
	if got := count(comp, "datagram"); got != 2 {
		t.Errorf("completion path datagrams = %d, want 2", got)
	}
	crit := TwoPhaseUpdateCritical(p, 1)
	if got := count(crit, "datagram"); got != 3 {
		t.Errorf("critical path datagrams = %d, want 3", got)
	}
	if crit.Total() <= comp.Total() {
		t.Error("critical path not longer than completion path")
	}
}

func TestNonBlockingForceAndMessageCounts(t *testing.T) {
	p := params.Paper()
	comp := NonBlockingUpdateCompletion(p, 1)
	if got := count(comp, "force"); got != 4 {
		t.Errorf("NB completion forces = %d, want 4", got)
	}
	if got := count(comp, "datagram"); got != 4 {
		t.Errorf("NB completion datagrams = %d, want 4", got)
	}
	crit := NonBlockingUpdateCritical(p, 1)
	if got := count(crit, "datagram"); got != 5 {
		t.Errorf("NB critical datagrams = %d, want 5 messages", got)
	}
}

func TestNonBlockingRoughlyTwiceTwoPhase(t *testing.T) {
	// "The ratios of the dominant primitives are 4/2 and 5/3, which
	// implies that the critical path of the non-blocking protocol is
	// about twice the length of that of two-phase commit" — minus the
	// shared operation costs.
	p := params.Paper()
	op := float64(OpCost(p, 1)+p.LocalIPC) / float64(time.Millisecond)
	tp := TwoPhaseUpdateCritical(p, 1).TotalMs() - op
	nb := NonBlockingUpdateCritical(p, 1).TotalMs() - op
	ratio := nb / tp
	if ratio < 1.2 || ratio > 2.0 {
		t.Errorf("NB/2PC critical ratio = %.2f, want between 1.2 and 2.0 (\"somewhat less than twice\")", ratio)
	}
}

func TestReadPathsHaveNoForces(t *testing.T) {
	p := params.Paper()
	for _, b := range []Breakdown{
		LocalReadCompletion(p),
		TwoPhaseReadCompletion(p, 1),
		NonBlockingReadCompletion(p, 2),
	} {
		if got := count(b, "force"); got != 0 {
			t.Errorf("%s has %d forces, want 0", b.Name, got)
		}
	}
}

func TestNonBlockingReadEqualsTwoPhaseRead(t *testing.T) {
	// "A transaction that is completely read-only has the same
	// critical path performance as in two-phase commitment."
	p := params.Paper()
	if NonBlockingReadCompletion(p, 2).Total() != TwoPhaseReadCompletion(p, 2).Total() {
		t.Error("NB read path differs from 2PC read path")
	}
}

func TestLocalPathsMatchPaperBallpark(t *testing.T) {
	p := params.Paper()
	// Paper: 24.5 ms static for the local update, 9.5 for the local
	// read. Our accounting differs slightly (it includes the join
	// IPC); it must land within a couple of milliseconds.
	if ms := LocalUpdateCompletion(p).TotalMs(); ms < 22 || ms > 28 {
		t.Errorf("local update static = %.1f ms, want ≈24.5", ms)
	}
	if ms := LocalReadCompletion(p).TotalMs(); ms < 8 || ms > 14 {
		t.Errorf("local read static = %.1f ms, want ≈9.5", ms)
	}
	if ms := TwoPhaseUpdateCompletion(p, 1).TotalMs(); ms < 90 || ms > 105 {
		t.Errorf("1-sub update static = %.1f ms, want ≈99.5", ms)
	}
	if ms := NonBlockingUpdateCompletion(p, 1).TotalMs(); ms < 140 || ms > 160 {
		t.Errorf("NB 1-sub update static = %.1f ms, want ≈150", ms)
	}
}

func TestRemoteOperationsScaleLinearly(t *testing.T) {
	p := params.Paper()
	d1 := TwoPhaseUpdateCompletion(p, 2).Total() - TwoPhaseUpdateCompletion(p, 1).Total()
	d2 := TwoPhaseUpdateCompletion(p, 3).Total() - TwoPhaseUpdateCompletion(p, 2).Total()
	if d1 != d2 || d1 != p.RemoteRPC {
		t.Errorf("per-subordinate increments %v, %v; want both %v (one remote op)", d1, d2, p.RemoteRPC)
	}
}

func TestOpCost(t *testing.T) {
	p := params.Paper()
	// The paper subtracts 3.5 + 29N ms.
	if got := OpCost(p, 0); got != 3500*time.Microsecond {
		t.Errorf("OpCost(0) = %v, want 3.5ms", got)
	}
	if got := OpCost(p, 2); got != 3500*time.Microsecond+2*p.RemoteRPC {
		t.Errorf("OpCost(2) = %v", got)
	}
}

func TestBreakdownString(t *testing.T) {
	b := LocalUpdateCompletion(params.Paper())
	s := b.String()
	if !strings.Contains(s, "TOTAL") || !strings.Contains(s, "log force") {
		t.Errorf("breakdown rendering missing parts:\n%s", s)
	}
}

func TestTotalsAreItemSums(t *testing.T) {
	p := params.Paper()
	for _, b := range []Breakdown{
		LocalUpdateCompletion(p),
		TwoPhaseUpdateCritical(p, 3),
		NonBlockingUpdateCompletion(p, 2),
	} {
		var sum time.Duration
		for _, it := range b.Items {
			sum += it.Cost
		}
		if sum != b.Total() {
			t.Errorf("%s: Total %v != item sum %v", b.Name, b.Total(), sum)
		}
	}
}
