package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// This file is the protocol-surface model shared by the surface
// analyzers (enumswitch, kindsurface, recsurface, tracebudget). Each
// commit protocol added to the repository (2PC → non-blocking →
// Paxos Commit) grows a set of parallel registries that must stay in
// lockstep by hand: wire kinds need codec registry entries, name
// table rows, dispatch handlers, and chaos injection coverage; WAL
// record types need recovery classifier branches. The model gives
// analyzers three primitives:
//
//   - the *enum registry*: which typed constant sets are protocol
//     surfaces, and how to enumerate their members;
//   - *surface discovery*: the switch statements and map literals
//     that consume an enum, with the member set each one covers;
//   - a *file-scope call graph*: one level of helper indirection, so
//     a default branch that panics inside a local helper, or a send
//     wrapped in a stamping helper, is still recognized.

// protocolEnums registers the typed constant sets that form the
// protocol surface, keyed by the defining package's path tail (so the
// real camelot/internal/wire and a testdata stand-in named wire both
// match). Adding a protocol enum here puts every switch and map
// literal over it under exhaustiveness analysis.
var protocolEnums = map[string][]string{
	"wire": {"Kind", "Vote", "Outcome", "NBState"},
	"wal":  {"RecType"},
}

// pathTail reports whether an import path is, or ends in, the tail —
// the package-path analogue of pkgTail.
func pathTail(path, tail string) bool {
	return path == tail || strings.HasSuffix(path, "/"+tail)
}

// protocolEnumOf resolves t to a registered protocol enum type, or
// nil. Aliases are looked through by go/types before we ever see the
// type; pointers and other composites are not enums.
func protocolEnumOf(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	for tail, typeNames := range protocolEnums {
		if !pathTail(obj.Pkg().Path(), tail) {
			continue
		}
		for _, name := range typeNames {
			if obj.Name() == name {
				return named
			}
		}
	}
	return nil
}

// enumMember is one constant of a protocol enum.
type enumMember struct {
	obj *types.Const
	val int64
}

func (m enumMember) name() string { return m.obj.Name() }

// enumMembers enumerates the enum's package-level constants in value
// order, excluding the zero sentinel (KInvalid, VoteInvalid,
// RecInvalid, ...): the zero value is the codec's reject marker and
// the uninitialized-memory guard, never a live protocol member that
// surfaces must handle.
func enumMembers(enum *types.Named) []enumMember {
	scope := enum.Obj().Pkg().Scope()
	var out []enumMember
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), enum) {
			continue
		}
		val, exact := constant.Int64Val(c.Val())
		if !exact || val == 0 {
			continue
		}
		out = append(out, enumMember{obj: c, val: val})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].val != out[j].val {
			return out[i].val < out[j].val
		}
		return out[i].name() < out[j].name()
	})
	return out
}

// enumName renders the enum as pkgtail.Type for diagnostics.
func enumName(enum *types.Named) string {
	path := enum.Obj().Pkg().Path()
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return path + "." + enum.Obj().Name()
}

// switchSurface is one switch statement whose tag is a protocol enum
// value.
type switchSurface struct {
	stmt    *ast.SwitchStmt
	enum    *types.Named
	covered map[int64]bool
	def     *ast.CaseClause // nil when the switch has no default
}

// enumSwitches finds every switch over a protocol enum in the
// package, with the set of member values its cases name.
func enumSwitches(pass *Pass) []switchSurface {
	var out []switchSurface
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			enum := protocolEnumOf(pass.Info.Types[sw.Tag].Type)
			if enum == nil {
				return true
			}
			s := switchSurface{stmt: sw, enum: enum, covered: make(map[int64]bool)}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					s.def = cc
					continue
				}
				for _, e := range cc.List {
					if v := pass.Info.Types[e].Value; v != nil {
						if val, exact := constant.Int64Val(v); exact {
							s.covered[val] = true
						}
					}
				}
			}
			out = append(out, s)
			return true
		})
	}
	return out
}

// mapSurface is one composite map literal keyed by a protocol enum.
type mapSurface struct {
	lit     *ast.CompositeLit
	enum    *types.Named
	covered map[int64]bool
}

// enumMapLiterals finds every map literal keyed by a protocol enum,
// with the member values its keys name. Nested literals inside a
// matched one are not reported separately.
func enumMapLiterals(pass *Pass) []mapSurface {
	var out []mapSurface
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			mt, ok := pass.Info.Types[lit].Type.Underlying().(*types.Map)
			if !ok {
				return true
			}
			enum := protocolEnumOf(mt.Key())
			if enum == nil {
				return true
			}
			s := mapSurface{lit: lit, enum: enum, covered: make(map[int64]bool)}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if v := pass.Info.Types[kv.Key].Value; v != nil {
					if val, exact := constant.Int64Val(v); exact {
						s.covered[val] = true
					}
				}
			}
			out = append(out, s)
			return false
		})
	}
	return out
}

// missingMembers lists the names of members absent from the covered
// set, in declaration-value order.
func missingMembers(enum *types.Named, covered map[int64]bool) []string {
	var out []string
	for _, m := range enumMembers(enum) {
		if !covered[m.val] {
			out = append(out, m.name())
		}
	}
	return out
}

// callGraph is the file-scope call graph: each function or method
// declared in the package, mapped to the objects it calls directly.
// It gives surface rules exactly one level of helper indirection —
// enough to see a loud default that panics inside a local helper, or
// a send routed through a stamping helper, without whole-program
// analysis.
type callGraph struct {
	decls   map[types.Object]*ast.FuncDecl
	callees map[types.Object][]types.Object
}

// buildCallGraph indexes the package's function declarations and
// their direct callees.
func buildCallGraph(pass *Pass) *callGraph {
	g := &callGraph{
		decls:   make(map[types.Object]*ast.FuncDecl),
		callees: make(map[types.Object][]types.Object),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			g.decls[obj] = fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeObject(pass, call); callee != nil {
					g.callees[obj] = append(g.callees[obj], callee)
				}
				return true
			})
		}
	}
	return g
}

// calleeObject resolves a call to the object it invokes: a function,
// a method, or nil for builtins and dynamic calls.
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		if s := pass.Info.Selections[fun]; s != nil {
			return s.Obj()
		}
		return pass.Info.Uses[fun.Sel]
	}
	return nil
}

// body returns the body of a function declared in this package, or
// nil for imported or interface callees.
func (g *callGraph) body(obj types.Object) *ast.FuncDecl {
	return g.decls[obj]
}

// failsLoudly reports whether the statement list unconditionally
// surfaces an unexpected value instead of absorbing it: it panics,
// exits, or returns an error — directly, or (for panics and exits)
// inside one locally declared helper call.
func (p *Pass) failsLoudly(stmts []ast.Stmt, g *callGraph) bool {
	loud := false
	for _, stmt := range stmts {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if callIsLoud(p, n) {
					loud = true
					return false
				}
				if callee := calleeObject(p, n); callee != nil {
					if fd := g.body(callee); fd != nil && funcPanics(p, fd) {
						loud = true
						return false
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if returnsError(p, res) {
						loud = true
						return false
					}
				}
			}
			return true
		})
		if loud {
			return true
		}
	}
	return false
}

// callIsLoud recognizes the directly loud calls: panic, os.Exit, and
// the log.Fatal family.
func callIsLoud(p *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			if _, isBuiltin := p.Info.Uses[fun].(*types.Builtin); isBuiltin || p.Info.Uses[fun] == nil {
				return true
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			switch p.pkgNameOf(id) {
			case "os":
				return fun.Sel.Name == "Exit"
			case "log":
				return strings.HasPrefix(fun.Sel.Name, "Fatal") || strings.HasPrefix(fun.Sel.Name, "Panic")
			}
		}
	}
	return false
}

// funcPanics reports whether the function body contains a direct
// loud call — the one level of indirection failsLoudly follows.
func funcPanics(p *Pass, fd *ast.FuncDecl) bool {
	panics := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && callIsLoud(p, call) {
			panics = true
			return false
		}
		return true
	})
	return panics
}

// returnsError reports whether the returned expression is a non-nil
// error value.
func returnsError(p *Pass, e ast.Expr) bool {
	if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	t := p.Info.Types[e].Type
	if t == nil {
		return false
	}
	return types.Implements(t, errorInterface) ||
		types.Implements(types.NewPointer(t), errorInterface)
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
