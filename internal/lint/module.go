package lint

// ModuleAnalyzer is a cross-package check. Where an Analyzer sees one
// package at a time, a ModuleAnalyzer sees every loaded package of
// the module at once, so it can pin a registry declared in one
// package (wire's kind table) to the surfaces that must stay in
// lockstep with it in others (core's dispatch switch, chaos's
// injection coverage). Module analyzers run only on whole-module
// invocations: over a hand-picked package subset their absence
// checks would report false gaps.
type ModuleAnalyzer struct {
	// Name is the analyzer's identifier and its //lint: directive
	// keyword.
	Name string
	// Doc is a one-line description for the driver's usage text.
	Doc string
	// Run performs the analysis over the module view.
	Run func(*ModulePass) error
}

// ModulePass carries one module analyzer's view of the loaded
// package set. Per-package concerns — directive suppression,
// positioned reporting — go through Pass values vended by Pass(),
// which share the module pass's diagnostic sink.
type ModulePass struct {
	name   string
	Pkgs   []*Package
	diags  *[]Diagnostic
	passes map[*Package]*Pass
}

// Package returns the loaded package whose import path is, or ends
// in, the tail ("wire" matches both camelot/internal/wire and a
// testdata stand-in named wire), or nil when the module view has no
// such package — fixtures and partial modules simply skip the
// surfaces they do not model.
func (mp *ModulePass) Package(tail string) *Package {
	for _, pkg := range mp.Pkgs {
		if pathTail(pkg.Path, tail) {
			return pkg
		}
	}
	return nil
}

// Pass returns the per-package pass for pkg, creating it on first
// use. All passes append to the same diagnostic slice under the
// module analyzer's name.
func (mp *ModulePass) Pass(pkg *Package) *Pass {
	if p := mp.passes[pkg]; p != nil {
		return p
	}
	p := &Pass{
		Analyzer: &Analyzer{Name: mp.name},
		Path:     pkg.Path,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Pkg,
		Info:     pkg.Info,
		diags:    mp.diags,
	}
	mp.passes[pkg] = p
	return p
}

// AnalyzeModule runs one module analyzer over the loaded package
// set, appending findings to diags.
func AnalyzeModule(a *ModuleAnalyzer, pkgs []*Package, diags *[]Diagnostic) error {
	mp := &ModulePass{
		name:   a.Name,
		Pkgs:   pkgs,
		diags:  diags,
		passes: make(map[*Package]*Pass),
	}
	return a.Run(mp)
}
