// Package wal is a stand-in for camelot/internal/wal: the RecType
// constants and recNames registry the recsurface analyzer pins to
// the recman classifier and to producers elsewhere in the module.
// Each member below is missing from exactly one surface.
package wal

// RecType discriminates log record types.
type RecType uint8

const (
	RecInvalid RecType = iota
	// RecUpdate is registered, classified, and produced: clean.
	RecUpdate
	RecCommit // want "missing from wal's record registry"
	RecAbort  // want "missing from the recman classifier switch"
	RecEnd    // want "missing from any producer outside wal and recman"
	// RecJustified is missing from every surface, with a justified
	// directive: clean.
	//lint:recsurface placeholder for the next protocol's record
	RecJustified
	/* want "needs a justification" */ //lint:recsurface
	RecBare
)

var recNames = map[RecType]string{
	RecUpdate: "UPDATE",
	RecAbort:  "ABORT",
	RecEnd:    "END",
}

// String keeps recNames referenced.
func (t RecType) String() string {
	if s, ok := recNames[t]; ok {
		return s
	}
	return "INVALID"
}
