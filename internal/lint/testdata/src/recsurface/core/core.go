// Package core is a stand-in producer: the protocol code that writes
// records. RecEnd is deliberately never referenced here (or anywhere
// outside wal and recman), so the recsurface analyzer reports it as
// producer-less.
package core

import "recsurface/wal"

// Append-shaped producers for the record types the fixture treats as
// live.
func WriteUpdate() wal.RecType { return wal.RecUpdate }
func WriteCommit() wal.RecType { return wal.RecCommit }
func WriteAbort() wal.RecType  { return wal.RecAbort }
