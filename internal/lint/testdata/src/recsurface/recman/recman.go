// Package recman is a stand-in for camelot/internal/recman: the
// recovery classifier switch. RecAbort deliberately has no branch;
// the recsurface analyzer reports that at the constant, in the wal
// stand-in.
package recman

import "recsurface/wal"

// Classify routes one replayed record.
func Classify(t wal.RecType) string {
	switch t {
	case wal.RecUpdate:
		return "update"
	case wal.RecCommit:
		return "commit"
	case wal.RecEnd:
		return "end"
	}
	return ""
}
