// Package tracepair exercises the tracepair analyzer: a wal force in
// a function that never emits trace.LogForce is flagged, and
// PhaseBegin/PhaseEnd string literals must pair up package-wide.
package tracepair

import (
	"trace"
	"wal"
)

type mgr struct {
	log *wal.Log
	tr  *trace.Collector
}

func (m *mgr) forceCounted(lsn uint64) {
	_ = m.log.Force(lsn) // counted below: not a finding
	m.tr.LogForce()
}

func (m *mgr) forceUncounted(lsn uint64) {
	_ = m.log.Force(lsn) // want "never emits trace.LogForce"
}

func (m *mgr) forceAllUncounted() {
	_ = m.log.ForceAll() // want "never emits trace.LogForce"
}

func (m *mgr) forceJustified(lsn uint64) {
	//lint:tracepair idle-flush force; the caller emits the event
	_ = m.log.Force(lsn)
}

func (m *mgr) forceBare(lsn uint64) {
	_ = m.log.Force(lsn) /* want "needs a justification" */ //lint:tracepair
}

func (m *mgr) phases() {
	m.tr.PhaseBegin("paired")
	m.tr.PhaseEnd("paired")
	m.tr.PhaseBegin("leaky") // want "begun but never ended"
	m.tr.PhaseEnd("dead")    // want "ended but never begun"
}

func (m *mgr) dynamic(name string) {
	m.tr.PhaseBegin(name) // dynamic phase names are out of reach
	m.tr.PhaseEnd(name)
}

func (m *mgr) phaseJustified() {
	//lint:tracepair the end is emitted by the recovery path
	m.tr.PhaseBegin("cross-package")
}
