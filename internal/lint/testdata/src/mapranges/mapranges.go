// Package mapranges exercises the maprange analyzer: unordered map
// iteration is flagged, slice iteration is not, and justified
// //lint:ordered (or //lint:maprange) sites are exempt.
package mapranges

import "sort"

func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want "nondeterministic iteration order"
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sendAll(m map[string]int, send func(string)) {
	for _, k := range keys(m) { // slice range: not a finding
		send(k)
	}
}

func sum(m map[string]int) int {
	total := 0
	//lint:ordered commutative sum; visit order cannot be observed
	for _, v := range m {
		total += v
	}
	return total
}

func sumSameLine(m map[string]int) int {
	total := 0
	for _, v := range m { //lint:maprange commutative sum, alias keyword
		total += v
	}
	return total
}

type set map[uint64]struct{}

func union(dst, src set) {
	//lint:ordered set union; insertion order is unobservable
	for k := range src {
		dst[k] = struct{}{}
	}
}

func bare(m map[string]int) {
	for k := range m { /* want "needs a justification" */ //lint:ordered
		_ = k
	}
}

func wrongKeyword(m map[string]int) {
	//lint:walltime a directive for a different analyzer does not suppress
	for k := range m { // want "nondeterministic iteration order"
		_ = k
	}
}
