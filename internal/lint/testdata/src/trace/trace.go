// Package trace is a stand-in for camelot/internal/trace with the
// method set the tracepair analyzer matches on.
package trace

type Collector struct{}

func (*Collector) LogForce() {}

func (*Collector) PhaseBegin(phase string) {}

func (*Collector) PhaseEnd(phase string) {}
