// Package walltime exercises the walltime analyzer: wall-clock reads
// and the process-global math/rand generator are flagged; seeded
// sources, type references, and pure time constructors are not.
package walltime

import (
	"math/rand"
	"time"
)

func bad() {
	_ = time.Now()                     // want "reads the wall clock"
	time.Sleep(time.Millisecond)       // want "use rt.Runtime.Sleep"
	_ = time.Since(time.Time{})        // want "subtract rt.Runtime.Now values"
	_ = time.After(0)                  // want "use rt.Runtime.After"
	_ = rand.Intn(10)                  // want "process-global random source"
	rand.Shuffle(0, func(i, j int) {}) // want "process-global random source"
}

func good() *rand.Rand {
	r := rand.New(rand.NewSource(1)) // seeded source: not a finding
	_ = time.Duration(5)             // pure constructor: not a finding
	_ = time.Unix(0, 0)
	_ = r.Intn(10) // method on a seeded *rand.Rand: not a finding
	return r
}

type stamped struct {
	at time.Time // type reference: not a finding
}

func annotated() time.Time {
	//lint:walltime host-side benchmark deliberately measures real elapsed time
	return time.Now()
}

func annotatedSameLine() {
	time.Sleep(time.Millisecond) //lint:walltime pacing a host-side tool
}

func bare() {
	_ = time.Now() /* want "needs a justification" */ //lint:walltime
}
