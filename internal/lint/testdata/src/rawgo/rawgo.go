// Package rawgo exercises the rawgo analyzer: raw go statements are
// flagged unless carried by a justified //lint:rawgo directive.
package rawgo

func spawn(fn func()) {
	go fn() // want "escapes the cooperative scheduler"
}

func nested(fn func()) {
	wrap := func() {
		go fn() // want "escapes the cooperative scheduler"
	}
	wrap()
}

func hostSide(fn func()) {
	//lint:rawgo host-side read loop runs outside the simulation
	go fn()
}

func hostSideSameLine(fn func()) {
	go fn() //lint:rawgo host-side read loop runs outside the simulation
}

func bare(fn func()) {
	go fn() /* want "needs a justification" */ //lint:rawgo
}
