// Package enumswitch exercises the enumswitch analyzer: switches and
// map literals over protocol enums must name every non-zero member or
// fail loudly in their default.
package enumswitch

import (
	"errors"
	"fmt"

	"enumswitch/wire"
)

func exhaustive(k wire.Kind) string {
	switch k {
	case wire.KPrepare:
		return "prepare"
	case wire.KVote:
		return "vote"
	case wire.KCommit:
		return "commit"
	}
	return ""
}

func zeroSentinelExempt(v wire.Vote) bool {
	// VoteInvalid is the zero sentinel: omitting it is not a finding.
	switch v {
	case wire.VoteYes:
		return true
	case wire.VoteNo:
		return false
	}
	return false
}

func missingNoDefault(k wire.Kind) string { //nolint (analyzer target)
	switch k { // want "switch over wire.Kind omits KCommit and has no default"
	case wire.KPrepare:
		return "prepare"
	case wire.KVote:
		return "vote"
	}
	return ""
}

func missingQuietDefault(k wire.Kind) string {
	switch k { // want "omits KVote, KCommit and its default absorbs them silently"
	case wire.KPrepare:
		return "prepare"
	default:
		return "other"
	}
}

func missingLoudDefault(k wire.Kind) string {
	switch k {
	case wire.KPrepare:
		return "prepare"
	default:
		panic(fmt.Sprintf("unhandled kind %d", k))
	}
}

func missingErrorDefault(k wire.Kind) (string, error) {
	switch k {
	case wire.KPrepare:
		return "prepare", nil
	default:
		return "", errors.New("unhandled kind")
	}
}

// rejectKind is the local helper missingHelperDefault's default
// reaches — one level of indirection the analyzer follows.
func rejectKind(k wire.Kind) {
	panic(k)
}

func missingHelperDefault(k wire.Kind) string {
	switch k {
	case wire.KPrepare:
		return "prepare"
	default:
		rejectKind(k)
		return ""
	}
}

var completeNames = map[wire.Kind]string{
	wire.KPrepare: "PREPARE",
	wire.KVote:    "VOTE",
	wire.KCommit:  "COMMIT",
}

var missingNames = map[wire.Kind]string{ // want "map literal keyed by wire.Kind omits KCommit"
	wire.KPrepare: "PREPARE",
	wire.KVote:    "VOTE",
}

func justifiedPartial(k wire.Kind) string {
	//lint:enumswitch only phase-one kinds reach this formatter
	switch k {
	case wire.KPrepare:
		return "prepare"
	default:
		return "other"
	}
}

func barePartial(k wire.Kind) string {
	/* want "needs a justification" */ //lint:enumswitch
	switch k {
	case wire.KPrepare:
		return "prepare"
	default:
		return "other"
	}
}
