// Package wire is a stand-in for camelot/internal/wire: the protocol
// enums whose switch and map surfaces the enumswitch analyzer guards.
package wire

// Kind discriminates datagram types.
type Kind uint8

// Datagram kinds. KInvalid is the zero sentinel and exempt from
// exhaustiveness.
const (
	KInvalid Kind = iota
	KPrepare
	KVote
	KCommit
)

// Vote is a phase-one answer; VoteInvalid is the zero sentinel.
type Vote uint8

const (
	VoteInvalid Vote = iota
	VoteYes
	VoteNo
)
