// Package lockorder exercises the lockorder analyzer: acquiring a
// family lock while the ack or resolved component lock is held
// inverts the §3.4 table-shard → family → component hierarchy and is
// flagged.
package lockorder

type mutex struct{}

func (*mutex) Lock()   {}
func (*mutex) Unlock() {}

const (
	lockClassFamily   = "tranman.family"
	lockClassAcks     = "tranman.component/acks"
	lockClassResolved = "tranman.component/resolved"
)

type family struct{ mu *mutex }

type mgr struct {
	ackMu *mutex
	resMu *mutex
}

func (m *mgr) lockAttributed(mu *mutex, class string) { mu.Lock(); _ = class }

func (m *mgr) lockFamily(id int) *family                 { _ = id; return nil }
func (m *mgr) lockOrCreateFamily(id int) (*family, bool) { _ = id; return nil, false }
func (m *mgr) relockFamily(f *family) bool               { _ = f; return true }

func (m *mgr) releasedFirst(id int) {
	m.lockAttributed(m.ackMu, lockClassAcks)
	m.ackMu.Unlock()
	m.lockFamily(id) // released above: not a finding
}

func (m *mgr) ackThenFamily(id int) {
	m.lockAttributed(m.ackMu, lockClassAcks)
	m.lockFamily(id) // want "while holding the ack lock"
	m.ackMu.Unlock()
}

func (m *mgr) directLockThenCreate(id int) {
	m.resMu.Lock()
	m.lockOrCreateFamily(id) // want "while holding the resolved lock"
	m.resMu.Unlock()
}

func (m *mgr) deferredUnlockStillHeld(f *family) {
	m.lockAttributed(m.resMu, lockClassResolved)
	defer m.resMu.Unlock()
	m.relockFamily(f) // want "while holding the resolved lock"
}

func (m *mgr) bothHeld(f *family) {
	m.lockAttributed(m.ackMu, lockClassAcks)
	m.resMu.Lock()
	m.lockAttributed(f.mu, lockClassFamily) // want "while holding the ack and resolved lock"
	m.resMu.Unlock()
	m.ackMu.Unlock()
}

func (m *mgr) closureIsItsOwnScope(id int) {
	m.lockAttributed(m.ackMu, lockClassAcks)
	fn := func() { m.lockFamily(id) } // runs later: not a finding
	m.ackMu.Unlock()
	fn()
}

func (m *mgr) justified(id int) {
	m.lockAttributed(m.resMu, lockClassResolved)
	//lint:lockorder recovery path; single-threaded before the node opens
	m.lockFamily(id)
	m.resMu.Unlock()
}

func (m *mgr) bare(id int) {
	m.lockAttributed(m.resMu, lockClassResolved)
	m.lockFamily(id) /* want "needs a justification" */ //lint:lockorder
	m.resMu.Unlock()
}
