// Package core is a stand-in for camelot/internal/core: the dispatch
// switch that gives a wire.Kind its handler.
package core

import "kindsurface/wire"

// Handle dispatches one datagram. KCommit deliberately has no case:
// the kindsurface analyzer reports that at the constant, in the wire
// stand-in.
func Handle(k wire.Kind) string {
	switch k {
	case wire.KPrepare:
		return "prepare"
	case wire.KVote:
		return "vote"
	case wire.KAbort:
		return "abort"
	}
	return ""
}
