// Package wire is a stand-in for camelot/internal/wire: the Kind
// constants and the kindNames registry the kindsurface analyzer pins
// to the consuming surfaces in the core and chaos stand-ins. Each
// member below is missing from exactly one surface, so every finding
// form appears once.
package wire

// Kind discriminates datagram types.
type Kind uint8

const (
	KInvalid Kind = iota
	// KPrepare is registered, handled, and covered: clean.
	KPrepare
	KVote   // want "missing from wire's kind registry"
	KCommit // want "missing from any wire.Kind switch in internal/core"
	KAbort  // want "missing from the chaos injection-coverage table"
	// KJustified is missing from every surface, with a justified
	// directive: clean.
	//lint:kindsurface reserved for the next protocol; no surface consumes it yet
	KJustified
	/* want "needs a justification" */ //lint:kindsurface
	KBare
)

var kindNames = map[Kind]string{
	KPrepare: "PREPARE",
	KCommit:  "COMMIT",
	KAbort:   "ABORT",
}

// String keeps kindNames referenced.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "INVALID"
}
