// Package chaos is a stand-in for camelot/internal/chaos: the
// injection-coverage table keyed by wire.Kind. KAbort deliberately
// has no row; the kindsurface analyzer reports that at the constant.
package chaos

import "kindsurface/wire"

type coverage struct {
	pilots    []string
	faultOnly string
}

var kindCoverage = map[wire.Kind]coverage{
	wire.KPrepare: {pilots: []string{"2pc"}},
	wire.KVote:    {pilots: []string{"2pc"}},
	wire.KCommit:  {faultOnly: "outcome traffic"},
}

// Covered keeps the table referenced.
func Covered(k wire.Kind) bool {
	_, ok := kindCoverage[k]
	return ok
}
