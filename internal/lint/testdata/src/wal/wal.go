// Package wal is a stand-in for camelot/internal/wal with the method
// set the tracepair analyzer matches on.
package wal

type Log struct{}

func (*Log) Force(lsn uint64) error { return nil }

func (*Log) ForceAll() error { return nil }
