// Package wire is a stand-in for camelot/internal/wire with the Msg
// shape the tracebudget analyzer matches on.
package wire

type Kind uint8

type TID uint64

// Msg mirrors the fields tracebudget cares about: TID and AckTIDs
// are the family-attribution carriers, Seq is the stamped sequence
// number.
type Msg struct {
	Kind    Kind
	TID     TID
	Seq     uint64
	AckTIDs []TID
}
