// Package tracebudget exercises the tracebudget analyzer: wire.Msg
// literals must carry TID or AckTIDs so the transport's central
// datagram counters can charge them to a family, and transport sends
// must come from functions that stamp the sequence counter.
package tracebudget

import (
	"tracebudget/transport"
	"tracebudget/wire"
)

type mgr struct {
	net *transport.Net
	seq uint64
}

// send stamps and transmits: the sanctioned path, not a finding.
func (m *mgr) send(to uint32, msg *wire.Msg) {
	m.seq++
	msg.Seq = m.seq
	m.net.Send(1, to, msg)
}

// stamp is the helper indirection sendVia relies on.
func (m *mgr) stamp(msg *wire.Msg) {
	m.seq++
	msg.Seq = m.seq
}

func (m *mgr) sendVia(to uint32, msg *wire.Msg) {
	m.stamp(msg)
	m.net.Send(1, to, msg)
}

func (m *mgr) rawSend(to uint32, msg *wire.Msg) {
	m.net.Send(1, to, msg) // want "rawSend calls the transport's Send directly but never stamps"
}

func (m *mgr) rawFanout(tos []uint32, msg *wire.Msg) {
	m.net.SendAll(1, tos, msg)   // want "rawFanout calls the transport's SendAll directly"
	m.net.Multicast(1, tos, msg) // want "rawFanout calls the transport's Multicast directly"
}

func (m *mgr) rawJustified(to uint32, msg *wire.Msg) {
	//lint:tracebudget handshake probe; never counted against a family budget
	m.net.Send(1, to, msg)
}

func (m *mgr) rawBare(to uint32, msg *wire.Msg) {
	m.net.Send(1, to, msg) /* want "needs a justification" */ //lint:tracebudget
}

func buildAttributed() *wire.Msg {
	return &wire.Msg{Kind: 1, TID: 7}
}

func buildAckBatch() *wire.Msg {
	return &wire.Msg{Kind: 1, AckTIDs: []wire.TID{7}}
}

func buildOrphan() *wire.Msg {
	return &wire.Msg{Kind: 1} // want "sets neither TID nor AckTIDs"
}

func buildJustified() *wire.Msg {
	//lint:tracebudget site-level ping; deliberately family-less
	return &wire.Msg{Kind: 1}
}
