// Package transport is a stand-in for camelot/internal/transport
// with the sender method set the tracebudget analyzer matches on.
package transport

import "tracebudget/wire"

type Net struct{}

func (*Net) Send(from, to uint32, m *wire.Msg) {}

func (*Net) SendAll(from uint32, tos []uint32, m *wire.Msg) {}

func (*Net) Multicast(from uint32, tos []uint32, m *wire.Msg) {}
