package lint_test

import (
	"path/filepath"
	"testing"

	"camelot/internal/lint"
)

// TestSuiteCleanOverRepo runs the scoped suite over the real module
// and demands zero findings: every violation is either fixed or
// carries a justified //lint: directive. This is the same entry point
// cmd/camelot-lint uses, so `go test` and `make lint` cannot
// disagree.
func TestSuiteCleanOverRepo(t *testing.T) {
	modRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunModule(modRoot, "camelot")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestScope pins the determinism policy: which analyzer watches which
// package.
func TestScope(t *testing.T) {
	cases := []struct {
		analyzer *lint.Analyzer
		pkg      string
		want     bool
	}{
		{lint.MapRange, "camelot/internal/core", true},
		{lint.MapRange, "camelot/internal/sim", true},
		{lint.MapRange, "camelot/internal/det", false}, // the sanctioned range site
		{lint.MapRange, "camelot/internal/exp", false},
		{lint.WallTime, "camelot/internal/core", true},
		{lint.WallTime, "camelot/internal/exp", true},
		{lint.WallTime, "camelot/internal/rt", false}, // the real-runtime adapter
		{lint.WallTime, "camelot/cmd/camelot-trace", false},
		{lint.RawGo, "camelot/internal/transport", true},
		{lint.RawGo, "camelot/internal/sim", false}, // the scheduler itself
		{lint.RawGo, "camelot/internal/cthreads", false},
		{lint.RawGo, "camelot/examples/demo", false},
		{lint.TracePair, "camelot/internal/core", true},
		{lint.TracePair, "camelot/internal/wal", false},
	}
	for _, c := range cases {
		if got := lint.InScope(c.analyzer, c.pkg); got != c.want {
			t.Errorf("InScope(%s, %s) = %v, want %v", c.analyzer.Name, c.pkg, got, c.want)
		}
	}
}
