package lint_test

import (
	"path/filepath"
	"testing"

	"camelot/internal/lint"
)

// TestSuiteCleanOverRepo runs the scoped suite over the real module
// and demands zero findings: every violation is either fixed or
// carries a justified //lint: directive. This is the same entry point
// cmd/camelot-lint uses, so `go test` and `make lint` cannot
// disagree.
func TestSuiteCleanOverRepo(t *testing.T) {
	modRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunModule(modRoot, "camelot")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestScope pins the determinism policy: which analyzer watches which
// package.
func TestScope(t *testing.T) {
	cases := []struct {
		analyzer *lint.Analyzer
		pkg      string
		want     bool
	}{
		{lint.MapRange, "camelot/internal/core", true},
		{lint.MapRange, "camelot/internal/sim", true},
		{lint.MapRange, "camelot/internal/det", false}, // the sanctioned range site
		{lint.MapRange, "camelot/internal/exp", false},
		{lint.WallTime, "camelot/internal/core", true},
		{lint.WallTime, "camelot/internal/exp", true},
		{lint.WallTime, "camelot/internal/rt", false}, // the real-runtime adapter
		{lint.WallTime, "camelot/cmd/camelot-trace", false},
		{lint.RawGo, "camelot/internal/transport", true},
		{lint.RawGo, "camelot/internal/sim", false}, // the scheduler itself
		{lint.RawGo, "camelot/internal/cthreads", false},
		{lint.RawGo, "camelot/examples/demo", false},
		{lint.TracePair, "camelot/internal/core", true},
		{lint.TracePair, "camelot/internal/wal", false},
		{lint.EnumSwitch, "camelot/internal/core", true},
		{lint.EnumSwitch, "camelot/internal/oracle", true},
		{lint.EnumSwitch, "camelot/internal/lint", true},
		{lint.EnumSwitch, "camelot/cmd/camelot-trace", false},
		{lint.TraceBudget, "camelot/internal/core", true},
		{lint.TraceBudget, "camelot/internal/transport", false}, // transport IS the counter
		{lint.TraceBudget, "camelot/internal/chaos", false},
	}
	for _, c := range cases {
		if got := lint.InScope(c.analyzer, c.pkg); got != c.want {
			t.Errorf("InScope(%s, %s) = %v, want %v", c.analyzer.Name, c.pkg, got, c.want)
		}
	}
}

// TestModuleAnalyzers pins the cross-package half of the suite: the
// surface analyzers run once per module view, not per package, and
// removing one from the registry should be a deliberate act.
func TestModuleAnalyzers(t *testing.T) {
	want := []string{"kindsurface", "recsurface"}
	if len(lint.ModuleAnalyzers) != len(want) {
		t.Fatalf("ModuleAnalyzers has %d entries, want %d", len(lint.ModuleAnalyzers), len(want))
	}
	for i, ma := range lint.ModuleAnalyzers {
		if ma.Name != want[i] {
			t.Errorf("ModuleAnalyzers[%d] = %s, want %s", i, ma.Name, want[i])
		}
	}
}
