package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Root maps an import-path prefix onto a directory. The main driver
// uses {Prefix: "camelot", Dir: <module root>}; linttest uses
// {Prefix: "", Dir: testdata/src} so testdata packages can import each
// other GOPATH-style, exactly as analysistest arranges it.
type Root struct {
	Prefix string
	Dir    string
}

// Loader parses and type-checks packages without the go/packages
// machinery: module-local import paths resolve through Roots, and
// everything else (the standard library) goes through the compiler's
// source importer. All loads share one FileSet and one memo, so a
// package type-checked as a dependency is reused when analyzed
// directly.
type Loader struct {
	Fset  *token.FileSet
	roots []Root
	std   types.Importer
	memo  map[string]*Package
	depth []string // import stack for cycle reporting
}

// NewLoader returns a loader resolving module paths through roots.
func NewLoader(roots ...Root) *Loader {
	// Standard-library dependencies are type-checked from source, and
	// the source importer consults build.Default; force the pure-Go
	// build so cgo-optional packages (net) never require a C
	// toolchain.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:  fset,
		roots: roots,
		std:   importer.ForCompiler(fset, "source", nil),
		memo:  make(map[string]*Package),
	}
}

// dirFor resolves an import path to a directory via the roots, or "".
func (l *Loader) dirFor(path string) string {
	for _, r := range l.roots {
		var rel string
		switch {
		case r.Prefix == "":
			rel = path
		case path == r.Prefix:
			rel = "."
		case strings.HasPrefix(path, r.Prefix+"/"):
			rel = strings.TrimPrefix(path, r.Prefix+"/")
		default:
			continue
		}
		dir := filepath.Join(r.Dir, filepath.FromSlash(rel))
		if hasGoFiles(dir) {
			return dir
		}
	}
	return ""
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if isPackageFile(dir, e.Name()) && !e.IsDir() {
			return true
		}
	}
	return false
}

// isPackageFile selects the non-test Go sources of a directory that
// build on the host platform — the same set the compiler would use.
// Build constraints matter: internal/transport carries a
// linux-only sendmmsg/recvmmsg fast path beside its portable stub,
// and parsing both into one package is a redeclaration error.
func isPackageFile(dir, name string) bool {
	if !strings.HasSuffix(name, ".go") ||
		strings.HasSuffix(name, "_test.go") ||
		strings.HasPrefix(name, ".") ||
		strings.HasPrefix(name, "_") {
		return false
	}
	// MatchFile applies //go:build lines and _GOOS/_GOARCH filename
	// suffixes for the default (host) context.
	ok, err := build.Default.MatchFile(dir, name)
	return err == nil && ok
}

// Import implements types.Importer so a Loader can resolve its own
// packages' dependencies.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir := l.dirFor(path); dir != "" {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package at the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.memo[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle: %s", strings.Join(append(l.depth, path), " -> "))
		}
		return pkg, nil
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("lint: no Go package for import path %q", path)
	}
	l.memo[path] = nil // cycle marker
	l.depth = append(l.depth, path)
	defer func() { l.depth = l.depth[:len(l.depth)-1] }()

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && isPackageFile(dir, e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Fset: l.Fset, Files: files, Pkg: tpkg, Info: info}
	l.memo[path] = pkg
	return pkg, nil
}

// Analyze runs one analyzer over one loaded package, appending
// findings to diags.
func Analyze(a *Analyzer, pkg *Package, diags *[]Diagnostic) error {
	pass := &Pass{
		Analyzer: a,
		Path:     pkg.Path,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Pkg,
		Info:     pkg.Info,
		diags:    diags,
	}
	return a.Run(pass)
}

// ModulePackages enumerates every package directory under the module
// root as an import path, skipping testdata, hidden directories, and
// the lint testdata trees. modPath is the module's declared path.
func ModulePackages(modRoot, modPath string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(modRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != modRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(p) {
			return nil
		}
		rel, err := filepath.Rel(modRoot, p)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, modPath)
			return nil
		}
		out = append(out, modPath+"/"+filepath.ToSlash(rel))
		return nil
	})
	sort.Strings(out)
	return out, err
}
