package lint

import (
	"go/ast"
	"go/types"
)

// WallTime flags wall-clock and ambient-randomness primitives in
// simulated packages. Protocol and substrate code must read time from
// its rt.Runtime (virtual clock under sim.Kernel) and randomness from
// Runtime.Rand or an explicitly seeded source — a single time.Now or
// global rand.Intn makes a simulation's timeline depend on the host,
// destroying byte-identical replay. Constructing seeded sources
// (rand.New, rand.NewSource) stays legal; only the clock reads,
// sleeps, timers, and the process-global generator are banned.
//
// Escape hatch: `//lint:walltime <why>`, for code that deliberately
// measures the host (the exp microbenchmarks).
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock time and global math/rand in simulated packages",
	Run:  runWallTime,
}

// bannedTime are the time package's clock/scheduling entry points.
// Pure constructors and conversions (time.Duration, time.Unix,
// time.Date) stay legal.
var bannedTime = map[string]string{
	"Now":       "read the virtual clock via rt.Runtime.Now",
	"Since":     "subtract rt.Runtime.Now values",
	"Until":     "subtract rt.Runtime.Now values",
	"Sleep":     "use rt.Runtime.Sleep",
	"After":     "use rt.Runtime.After",
	"AfterFunc": "use rt.Runtime.After",
	"Tick":      "use rt.Runtime.After",
	"NewTimer":  "use rt.Runtime.After",
	"NewTicker": "use rt.Runtime.After",
}

// allowedRand are the constructors for explicitly seeded sources;
// every other math/rand selector reaches the process-global generator
// (or is the deprecated global Seed) and is banned.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2 source constructors
}

func runWallTime(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch pass.pkgNameOf(id) {
			case "time":
				hint, banned := bannedTime[sel.Sel.Name]
				if !banned || pass.allowed(sel.Pos(), "walltime") {
					return true
				}
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock and breaks deterministic replay; %s (or justify with //lint:walltime)",
					sel.Sel.Name, hint)
			case "math/rand", "math/rand/v2":
				// Types (rand.Rand, rand.Source) and seeded-source
				// constructors are fine; anything else is the global
				// generator.
				if allowedRand[sel.Sel.Name] || !isFuncUse(pass, sel.Sel) {
					return true
				}
				if pass.allowed(sel.Pos(), "walltime") {
					return true
				}
				pass.Reportf(sel.Pos(),
					"rand.%s uses the process-global random source; use rt.Runtime.Rand or a seeded rand.New (or justify with //lint:walltime)",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

// isFuncUse reports whether id resolves to a function or variable (as
// opposed to a type or constant), so `rand.Rand` in a declaration is
// not flagged.
func isFuncUse(pass *Pass, id *ast.Ident) bool {
	switch pass.Info.Uses[id].(type) {
	case *types.Func, *types.Var:
		return true
	}
	return false
}
