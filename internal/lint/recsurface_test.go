package lint_test

import (
	"testing"

	"camelot/internal/lint"
	"camelot/internal/lint/linttest"
)

func TestRecSurface(t *testing.T) {
	linttest.RunModule(t, linttest.Dir(), lint.RecSurface,
		"recsurface/wal", "recsurface/recman", "recsurface/core")
}
