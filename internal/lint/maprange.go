package lint

import (
	"go/ast"
	"go/types"
)

// MapRange flags `for range` statements over maps. Go randomizes map
// iteration order per run, so in the deterministic packages any loop
// whose visit order can reach an observable effect — a datagram send,
// a future wake-up, a trace event — breaks byte-identical replay.
// This is the bug class the deterministic-replay test caught in
// core/messaging.go's retry fan-out.
//
// Two escapes exist: route the keys through the canonical helper
// package internal/det (whose own loops are the single allowed range
// site), or justify the loop with `//lint:ordered <why>` when it is
// provably order-insensitive (set union, commutative sum, collect-
// then-sort).
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "flag nondeterministic map iteration in deterministic packages",
	Run:  runMapRange,
}

func runMapRange(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.allowed(rs.Pos(), "ordered", "maprange") {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s has nondeterministic iteration order; sort the keys via det.SortedKeys (or justify with //lint:ordered)",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
			return true
		})
	}
	return nil
}
