package lint

import (
	"sort"
	"strings"
)

// Analyzers is the per-package camelot-lint suite, in the order the
// driver runs them.
var Analyzers = []*Analyzer{MapRange, WallTime, RawGo, TracePair, LockOrder, EnumSwitch, TraceBudget}

// ModuleAnalyzers are the cross-package protocol-surface checks. They
// see the whole loaded module at once and run only on whole-module
// invocations — over a hand-picked package subset their absence
// checks would report false gaps (a handler that lives in a package
// the subset happens to exclude).
var ModuleAnalyzers = []*ModuleAnalyzer{KindSurface, RecSurface}

// deterministicPkgs are the packages whose execution must replay
// byte-identically under the simulation kernel: the protocol core,
// the kernel itself, the log, the simulated network, the trace layer,
// and the public assembly that wires them together. internal/det is
// deliberately absent — it is the one sanctioned home for raw map
// ranges.
var deterministicPkgs = map[string]bool{
	"camelot/camelot":            true,
	"camelot/internal/core":      true,
	"camelot/internal/sim":       true,
	"camelot/internal/wal":       true,
	"camelot/internal/transport": true,
	"camelot/internal/trace":     true,
	"camelot/internal/chaos":     true,
	"camelot/internal/oracle":    true,
	"camelot/internal/shardmap":  true,
	"camelot/internal/load":      true,
}

// InScope reports whether the analyzer applies to the package. The
// scope rules are the repository's determinism policy:
//
//   - maprange guards the deterministic packages listed above;
//   - walltime covers every library package — only internal/rt (the
//     real-runtime adapter) and the host-side binaries under cmd/ and
//     examples/ may touch the wall clock;
//   - rawgo covers the same universe minus the scheduler
//     implementations (internal/sim, internal/rt, internal/cthreads);
//   - tracepair covers the protocol code in internal/core;
//   - lockorder covers internal/core, where the §3.4 two-level lock
//     hierarchy (table-shard → family → component) lives;
//   - enumswitch covers every library package — a switch or map over
//     a protocol enum is a protocol surface wherever it lives;
//   - tracebudget covers internal/core, the only package that builds
//     and sends protocol datagrams.
func InScope(a *Analyzer, pkgPath string) bool {
	switch a {
	case MapRange:
		return deterministicPkgs[pkgPath]
	case WallTime:
		return inLibrary(pkgPath) && pkgPath != "camelot/internal/rt"
	case RawGo:
		return inLibrary(pkgPath) &&
			pkgPath != "camelot/internal/rt" &&
			pkgPath != "camelot/internal/sim" &&
			pkgPath != "camelot/internal/cthreads"
	case TracePair, LockOrder, TraceBudget:
		return pkgPath == "camelot/internal/core"
	case EnumSwitch:
		return inLibrary(pkgPath)
	}
	return false
}

// Module is the whole-module view: every library package parsed and
// type-checked exactly once through one shared loader, ready for both
// the scoped per-package suite and the cross-package module
// analyzers. Loading and analysis are split so the driver can time
// them separately (-time).
type Module struct {
	Path string
	Pkgs []*Package
}

// LoadModule parses and type-checks every library package of the
// module rooted at modRoot, sharing one loader (one FileSet, one
// memo) across the whole set: a package type-checked as somebody's
// dependency is never type-checked again as an analysis target.
func LoadModule(modRoot, modPath string) (*Module, error) {
	pkgPaths, err := ModulePackages(modRoot, modPath)
	if err != nil {
		return nil, err
	}
	loader := NewLoader(Root{Prefix: modPath, Dir: modRoot})
	mod := &Module{Path: modPath}
	for _, path := range pkgPaths {
		if !inLibrary(path) {
			continue // host-side binaries: no analyzer or surface lives there
		}
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		mod.Pkgs = append(mod.Pkgs, pkg)
	}
	return mod, nil
}

// Run runs the scoped per-package suite and every module analyzer
// over the loaded view, returning findings sorted by position.
func (m *Module) Run() ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range m.Pkgs {
		for _, a := range Analyzers {
			if !InScope(a, pkg.Path) {
				continue
			}
			if err := Analyze(a, pkg, &diags); err != nil {
				return nil, err
			}
		}
	}
	for _, ma := range ModuleAnalyzers {
		if err := AnalyzeModule(ma, m.Pkgs, &diags); err != nil {
			return nil, err
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunModule loads the module and runs the full suite — per-package
// and module analyzers. This is the whole of the driver's work; the
// suite-cleanliness test calls it too, so `go test` and `make lint`
// can never disagree about the tree.
func RunModule(modRoot, modPath string) ([]Diagnostic, error) {
	mod, err := LoadModule(modRoot, modPath)
	if err != nil {
		return nil, err
	}
	return mod.Run()
}

// RunPackages runs the scoped per-package suite over the named
// packages of the module rooted at modRoot. Module analyzers are
// deliberately skipped: their absence checks are only meaningful over
// the whole module.
func RunPackages(modRoot, modPath string, pkgPaths []string) ([]Diagnostic, error) {
	loader := NewLoader(Root{Prefix: modPath, Dir: modRoot})
	var diags []Diagnostic
	for _, path := range pkgPaths {
		var wanted []*Analyzer
		for _, a := range Analyzers {
			if InScope(a, path) {
				wanted = append(wanted, a)
			}
		}
		if len(wanted) == 0 {
			continue
		}
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		for _, a := range wanted {
			if err := Analyze(a, pkg, &diags); err != nil {
				return nil, err
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// inLibrary reports whether the package is part of the library proper
// rather than a host-side binary (cmd/) or runnable doc (examples/).
func inLibrary(pkgPath string) bool {
	if pkgPath != "camelot" && !strings.HasPrefix(pkgPath, "camelot/") {
		return false
	}
	return !strings.HasPrefix(pkgPath, "camelot/cmd/") &&
		!strings.HasPrefix(pkgPath, "camelot/examples/")
}
