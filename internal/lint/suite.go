package lint

import (
	"sort"
	"strings"
)

// Analyzers is the camelot-lint suite, in the order the driver runs
// them.
var Analyzers = []*Analyzer{MapRange, WallTime, RawGo, TracePair, LockOrder}

// deterministicPkgs are the packages whose execution must replay
// byte-identically under the simulation kernel: the protocol core,
// the kernel itself, the log, the simulated network, the trace layer,
// and the public assembly that wires them together. internal/det is
// deliberately absent — it is the one sanctioned home for raw map
// ranges.
var deterministicPkgs = map[string]bool{
	"camelot/camelot":            true,
	"camelot/internal/core":      true,
	"camelot/internal/sim":       true,
	"camelot/internal/wal":       true,
	"camelot/internal/transport": true,
	"camelot/internal/trace":     true,
	"camelot/internal/chaos":     true,
	"camelot/internal/oracle":    true,
}

// InScope reports whether the analyzer applies to the package. The
// scope rules are the repository's determinism policy:
//
//   - maprange guards the deterministic packages listed above;
//   - walltime covers every library package — only internal/rt (the
//     real-runtime adapter) and the host-side binaries under cmd/ and
//     examples/ may touch the wall clock;
//   - rawgo covers the same universe minus the scheduler
//     implementations (internal/sim, internal/rt, internal/cthreads);
//   - tracepair covers the protocol code in internal/core;
//   - lockorder covers internal/core, where the §3.4 two-level lock
//     hierarchy (table-shard → family → component) lives.
func InScope(a *Analyzer, pkgPath string) bool {
	switch a {
	case MapRange:
		return deterministicPkgs[pkgPath]
	case WallTime:
		return inLibrary(pkgPath) && pkgPath != "camelot/internal/rt"
	case RawGo:
		return inLibrary(pkgPath) &&
			pkgPath != "camelot/internal/rt" &&
			pkgPath != "camelot/internal/sim" &&
			pkgPath != "camelot/internal/cthreads"
	case TracePair, LockOrder:
		return pkgPath == "camelot/internal/core"
	}
	return false
}

// RunModule enumerates every package in the module and runs each
// analyzer over the packages in its scope, returning findings sorted
// by position. This is the whole of the driver's work; the
// suite-cleanliness test calls it too, so `go test` and
// `make lint` can never disagree about the tree.
func RunModule(modRoot, modPath string) ([]Diagnostic, error) {
	pkgPaths, err := ModulePackages(modRoot, modPath)
	if err != nil {
		return nil, err
	}
	return RunPackages(modRoot, modPath, pkgPaths)
}

// RunPackages runs the scoped suite over the named packages of the
// module rooted at modRoot.
func RunPackages(modRoot, modPath string, pkgPaths []string) ([]Diagnostic, error) {
	loader := NewLoader(Root{Prefix: modPath, Dir: modRoot})
	var diags []Diagnostic
	for _, path := range pkgPaths {
		var wanted []*Analyzer
		for _, a := range Analyzers {
			if InScope(a, path) {
				wanted = append(wanted, a)
			}
		}
		if len(wanted) == 0 {
			continue
		}
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		for _, a := range wanted {
			if err := Analyze(a, pkg, &diags); err != nil {
				return nil, err
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// inLibrary reports whether the package is part of the library proper
// rather than a host-side binary (cmd/) or runnable doc (examples/).
func inLibrary(pkgPath string) bool {
	if pkgPath != "camelot" && !strings.HasPrefix(pkgPath, "camelot/") {
		return false
	}
	return !strings.HasPrefix(pkgPath, "camelot/cmd/") &&
		!strings.HasPrefix(pkgPath, "camelot/examples/")
}
