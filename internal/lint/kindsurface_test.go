package lint_test

import (
	"strings"
	"testing"

	"camelot/internal/lint"
	"camelot/internal/lint/linttest"
)

func TestKindSurface(t *testing.T) {
	linttest.RunModule(t, linttest.Dir(), lint.KindSurface,
		"kindsurface/wire", "kindsurface/core", "kindsurface/chaos")
}

// TestKindSurfacePartialModule pins the module-view philosophy: with
// no core or chaos package loaded, those surfaces are simply not
// checked — the analyzer must not report false gaps against packages
// the view does not contain. Only registry gaps inside wire itself
// remain reportable.
func TestKindSurfacePartialModule(t *testing.T) {
	loader := lint.NewLoader(lint.Root{Prefix: "", Dir: linttest.Dir("src")})
	pkg, err := loader.Load("kindsurface/wire")
	if err != nil {
		t.Fatal(err)
	}
	var diags []lint.Diagnostic
	if err := lint.AnalyzeModule(lint.KindSurface, []*lint.Package{pkg}, &diags); err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "internal/core") || strings.Contains(d.Message, "chaos") {
			t.Errorf("absence check ran against an unloaded surface: %s", d)
		}
	}
}
