package lint

import "strings"

// EnumSwitch enforces exhaustiveness over the protocol enums
// (wire.Kind, wire.Vote, wire.Outcome, wire.NBState, wal.RecType).
// Every protocol added to the repository extends these constant
// sets, and PR 4–6 each found a real bug in a surface that silently
// failed to keep up (handler-less datagrams dropped invisibly, the
// presumed-abort decision-force bug, the Paxos undo-leak). The rule:
//
//   - a switch over a protocol enum must either name every non-zero
//     member in its cases or carry a default that fails loudly
//     (panic / os.Exit / returned error, directly or via one local
//     helper) — a quiet default absorbs the member a future protocol
//     adds;
//   - a map literal keyed by a protocol enum must name every
//     non-zero member — a map has no default, so a missing row is
//     zero-value silence at the lookup site.
//
// The zero sentinel (KInvalid, VoteInvalid, ...) is exempt: it is
// the codec's reject marker, not a live member. Deliberately partial
// surfaces carry `//lint:enumswitch <why>` on or above the switch or
// literal.
var EnumSwitch = &Analyzer{
	Name: "enumswitch",
	Doc:  "switches and map literals over protocol enums must be exhaustive or fail loudly",
	Run:  runEnumSwitch,
}

func runEnumSwitch(pass *Pass) error {
	g := buildCallGraph(pass)
	for _, sw := range enumSwitches(pass) {
		missing := missingMembers(sw.enum, sw.covered)
		if len(missing) == 0 {
			continue
		}
		if sw.def != nil && pass.failsLoudly(sw.def.Body, g) {
			continue
		}
		if pass.allowed(sw.stmt.Pos(), "enumswitch") {
			continue
		}
		what := "has no default"
		if sw.def != nil {
			what = "its default absorbs them silently"
		}
		pass.Reportf(sw.stmt.Pos(),
			"switch over %s omits %s and %s; name every member, fail loudly in default, or justify with //lint:enumswitch",
			enumName(sw.enum), strings.Join(missing, ", "), what)
	}
	for _, ml := range enumMapLiterals(pass) {
		missing := missingMembers(ml.enum, ml.covered)
		if len(missing) == 0 {
			continue
		}
		if pass.allowed(ml.lit.Pos(), "enumswitch") {
			continue
		}
		pass.Reportf(ml.lit.Pos(),
			"map literal keyed by %s omits %s; lookups of the missing members read zero values silently (or justify with //lint:enumswitch)",
			enumName(ml.enum), strings.Join(missing, ", "))
	}
	return nil
}
