package lint

import (
	"go/ast"
)

// RawGo flags raw `go` statements. Simulated code must spawn threads
// through rt.Runtime.Go so the cooperative kernel schedules them on
// the virtual clock; a raw goroutine escapes the scheduler, runs on
// host time, and races the single-threaded simulation — the kernel
// cannot even see it to include it in deadlock reports.
//
// The sim/rt/cthreads kernel packages, which implement the scheduler
// itself, are out of scope. A genuinely host-side goroutine elsewhere
// (the UDP adapter's read loop) carries `//lint:rawgo <why>`.
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc:  "forbid raw go statements outside the cthreads/sim kernel",
	Run:  runRawGo,
}

func runRawGo(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if pass.allowed(g.Pos(), "rawgo") {
				return true
			}
			pass.Reportf(g.Pos(),
				"raw go statement escapes the cooperative scheduler; spawn via rt.Runtime.Go (or justify with //lint:rawgo)")
			return true
		})
	}
	return nil
}
