package lint

import "go/types"

// KindSurface pins every wire.Kind member to the parallel surfaces
// that must grow with it. PR 5's silent-loss bug was exactly a
// surface gap — datagrams of a kind with no registered handler were
// dropped invisibly — and each new commit protocol re-opens every
// seam. For each non-zero Kind constant the analyzer demands:
//
//   - a row in wire's kind registry (the kindNames map literal):
//     both codec directions consult it — Unmarshal returns ErrBadKind
//     and MarshalDatagram refuses to encode a kind that is not
//     registered — so a missing row makes the kind unencodable and
//     undecodable;
//   - at least one handler: a case naming the kind in some switch
//     over wire.Kind in internal/core (the datagram dispatch);
//   - a row in the chaos injection-coverage table (the map literal
//     keyed by wire.Kind in internal/chaos), which declares how the
//     systematic fault sweep reaches the kind — via a fault-free
//     pilot or only under injected faults — and which the dynamic
//     coverage test checks against real pilot runs.
//
// A kind exempt from a surface carries `//lint:kindsurface <why>` on
// its constant declaration. Findings are reported at the constant,
// so the justification and the member live on the same line.
var KindSurface = &ModuleAnalyzer{
	Name: "kindsurface",
	Doc:  "every wire.Kind needs a codec registry row, a core handler, and chaos injection coverage",
	Run:  runKindSurface,
}

func runKindSurface(mp *ModulePass) error {
	wirePkg := mp.Package("wire")
	if wirePkg == nil {
		return nil
	}
	enum := lookupEnum(wirePkg, "Kind")
	if enum == nil {
		return nil
	}
	wirePass := mp.Pass(wirePkg)

	registry := mapKeyUnion(wirePass, enum)
	var handlers, coverage map[int64]bool
	if corePkg := mp.Package("core"); corePkg != nil {
		handlers = switchCaseUnion(mp.Pass(corePkg), enum)
	}
	if chaosPkg := mp.Package("chaos"); chaosPkg != nil {
		coverage = mapKeyUnion(mp.Pass(chaosPkg), enum)
	}

	for _, m := range enumMembers(enum) {
		type gap struct{ missing, why string }
		var gaps []gap
		if !registry[m.val] {
			gaps = append(gaps, gap{"wire's kind registry (kindNames)",
				"the codec rejects it in both directions"})
		}
		if handlers != nil && !handlers[m.val] {
			gaps = append(gaps, gap{"any wire.Kind switch in internal/core",
				"inbound datagrams of this kind are dropped silently"})
		}
		if coverage != nil && !coverage[m.val] {
			gaps = append(gaps, gap{"the chaos injection-coverage table",
				"the systematic fault sweep does not know how to reach it"})
		}
		for _, gp := range gaps {
			if wirePass.allowed(m.obj.Pos(), "kindsurface") {
				break
			}
			wirePass.Reportf(m.obj.Pos(),
				"wire.Kind %s is missing from %s: %s (or justify with //lint:kindsurface)",
				m.name(), gp.missing, gp.why)
		}
	}
	return nil
}

// lookupEnum finds the named protocol enum type in the package, or
// nil.
func lookupEnum(pkg *Package, typeName string) *types.Named {
	obj := pkg.Pkg.Scope().Lookup(typeName)
	if obj == nil {
		return nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil
	}
	return named
}

// mapKeyUnion unions the member values keyed by any map literal over
// the enum in the package.
func mapKeyUnion(pass *Pass, enum *types.Named) map[int64]bool {
	out := make(map[int64]bool)
	for _, ml := range enumMapLiterals(pass) {
		if ml.enum.Obj() != enum.Obj() {
			continue
		}
		for v := range ml.covered {
			out[v] = true
		}
	}
	return out
}

// switchCaseUnion unions the member values named as case labels by
// any switch over the enum in the package.
func switchCaseUnion(pass *Pass, enum *types.Named) map[int64]bool {
	out := make(map[int64]bool)
	for _, sw := range enumSwitches(pass) {
		if sw.enum.Obj() != enum.Obj() {
			continue
		}
		for v := range sw.covered {
			out[v] = true
		}
	}
	return out
}
