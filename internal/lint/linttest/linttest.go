// Package linttest runs a camelot-lint analyzer over a testdata
// package and checks its findings against `// want "regexp"`
// expectation comments, in the manner of
// golang.org/x/tools/go/analysis/analysistest.
//
// Testdata layout is GOPATH-style: <testdata>/src/<pkg>/*.go, and
// testdata packages may import each other by their src-relative paths
// (the tracepair fixtures import stand-in "wal" and "trace"
// packages).
package linttest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"camelot/internal/lint"
)

// wantRE matches one expectation comment; several quoted regexps may
// follow a single `// want`. The block form `/* want "..." */` exists
// so an expectation can share a line with a `//lint:` directive, which
// consumes the rest of its line.
var wantRE = regexp.MustCompile(`(?://|/\*)\s*want\s+(.*)$`)

// quotedRE pulls the individual quoted patterns out of a want clause.
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads each named package from dir/src, applies the analyzer,
// and reports every mismatch between findings and `// want` comments
// as a test error.
func Run(t *testing.T, dir string, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	loader := lint.NewLoader(lint.Root{Prefix: "", Dir: filepath.Join(dir, "src")})
	for _, pkgPath := range pkgs {
		pkg, err := loader.Load(pkgPath)
		if err != nil {
			t.Fatalf("loading %s: %v", pkgPath, err)
		}
		var diags []lint.Diagnostic
		if err := lint.Analyze(a, pkg, &diags); err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
		}
		checkExpectations(t, pkg.Fset, []*lint.Package{pkg}, diags)
	}
}

// RunModule loads all named packages from dir/src through one loader,
// applies the module analyzer to them as one module view, and checks
// findings against the `// want` comments of every loaded package —
// a module analyzer's finding may land in any of them.
func RunModule(t *testing.T, dir string, a *lint.ModuleAnalyzer, pkgs ...string) {
	t.Helper()
	loader := lint.NewLoader(lint.Root{Prefix: "", Dir: filepath.Join(dir, "src")})
	var loaded []*lint.Package
	for _, pkgPath := range pkgs {
		pkg, err := loader.Load(pkgPath)
		if err != nil {
			t.Fatalf("loading %s: %v", pkgPath, err)
		}
		loaded = append(loaded, pkg)
	}
	var diags []lint.Diagnostic
	if err := lint.AnalyzeModule(a, loaded, &diags); err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkExpectations(t, loader.Fset, loaded, diags)
}

// checkExpectations pairs findings with the want comments of the
// loaded packages, line by line.
func checkExpectations(t *testing.T, fset *token.FileSet, pkgs []*lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					qs := quotedRE.FindAllStringSubmatch(m[1], -1)
					if len(qs) == 0 {
						t.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
						continue
					}
					for _, q := range qs {
						re, err := regexp.Compile(q[1])
						if err != nil {
							t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, q[1], err)
							continue
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}

	unmatched := make([]lint.Diagnostic, 0, len(diags))
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			unmatched = append(unmatched, d)
		}
	}
	sort.Slice(unmatched, func(i, j int) bool { return posLess(unmatched[i], unmatched[j]) })
	for _, d := range unmatched {
		t.Errorf("unexpected finding: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func posLess(a, b lint.Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	return a.Pos.Column < b.Pos.Column
}

// Dir returns the testdata directory next to the calling test,
// mirroring analysistest.TestData.
func Dir(elem ...string) string {
	return filepath.Join(append([]string{"testdata"}, elem...)...)
}

// Describe renders findings for debugging helper failures.
func Describe(diags []lint.Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&sb, "  %s\n", d)
	}
	return sb.String()
}
