// Package lint is camelot-lint: a suite of static analyzers that
// machine-check the determinism and protocol-invariant rules the
// simulation kernel's byte-identical replay depends on. The rules
// used to live only in reviewers' heads; the deterministic-replay
// test caught one violation dynamically (unordered map iteration in
// core/messaging.go's retry fan-out) and these analyzers make that
// whole bug class impossible to merge.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Report) but is built on the standard library only
// — go/parser plus go/types with a source importer — because this
// repository carries no third-party dependencies.
//
// Analyzers:
//
//   - maprange:  no `for range` over maps in deterministic packages
//     unless the keys go through internal/det or the site carries a
//     `//lint:ordered <why>` justification;
//   - walltime:  no wall-clock reads or global math/rand in simulated
//     packages — virtual clock (rt.Runtime) and seeded sources only;
//   - rawgo:     no raw `go` statements outside the cthreads/sim
//     kernel, where a goroutine would escape the cooperative
//     scheduler;
//   - tracepair: every wal force in protocol code emits its matching
//     trace.LogForce, and PhaseBegin/PhaseEnd literals pair up, so
//     the paper's budget counters cannot silently drift from the
//     code;
//   - lockorder: no family-lock acquisition in internal/core while
//     the ack or resolved component lock is held — the §3.4 lock
//     hierarchy runs table-shard → family → component, and an
//     inversion deadlocks the real runtime;
//   - enumswitch: every switch or map literal over a protocol enum
//     (wire.Kind, wire.Vote, wire.Outcome, wire.NBState, wal.RecType)
//     names all members, or its default fails loudly;
//   - tracebudget: wire.Msg literals carry TID or AckTIDs so the
//     transport can charge each datagram to a family budget, and
//     transport sends come from functions that stamp the sequence
//     counter.
//
// Two further analyzers are cross-package (ModuleAnalyzer): they see
// the whole library at once and run only on whole-module invocations,
// because an absence check over a partial view would lie:
//
//   - kindsurface: every wire.Kind is in the codec registry
//     (kindNames), handled by some internal/core switch, and present
//     in the chaos injection-coverage table;
//   - recsurface:  every wal.RecType is in the record registry
//     (recNames), classified by recman's recovery switch, and
//     produced by some package outside wal/recman.
//
// Each analyzer honors a site-level escape hatch: a `//lint:<name>
// <justification>` comment (alias `//lint:ordered` for maprange) on
// the offending line or the line above suppresses the report. A bare
// directive with no justification text is itself a violation — the
// escape hatch exists to record *why* a site is exempt.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer is one static check. Run inspects a single type-checked
// package through its Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	// Name is the analyzer's identifier; it doubles as the directive
	// keyword that suppresses its reports.
	Name string
	// Doc is a one-line description, shown by the driver's usage text.
	Doc string
	// Run performs the analysis. It returns an error only for
	// analyzer-internal failures, never for findings.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path (testdata packages use their
	// directory-relative path).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags      *[]Diagnostic
	directives map[string]map[int][]directive // filename → line → directives
}

type directive struct {
	keyword       string
	justification string
	pos           token.Pos
}

// directiveRE matches the camelot-lint escape hatch. The justification
// is everything after the keyword.
var directiveRE = regexp.MustCompile(`^//lint:([a-z]+)(?:\s+(.*\S))?\s*$`)

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// buildDirectives scans every comment in the package once.
func (p *Pass) buildDirectives() {
	if p.directives != nil {
		return
	}
	p.directives = make(map[string]map[int][]directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				byLine := p.directives[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]directive)
					p.directives[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line],
					directive{keyword: m[1], justification: m[2], pos: c.Pos()})
			}
		}
	}
}

// allowed reports whether a finding at pos is suppressed by a
// justified //lint:<keyword> directive on the same line or the line
// immediately above. A directive matching the keyword but lacking a
// justification does not suppress; instead it is reported once, so an
// empty escape hatch cannot silently accumulate.
func (p *Pass) allowed(pos token.Pos, keywords ...string) bool {
	p.buildDirectives()
	where := p.Fset.Position(pos)
	byLine := p.directives[where.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{where.Line, where.Line - 1} {
		for _, d := range byLine[line] {
			for _, kw := range keywords {
				if d.keyword != kw {
					continue
				}
				if d.justification == "" {
					p.Reportf(d.pos, "//lint:%s directive needs a justification (say why this site is exempt)", kw)
					return true // suppress the underlying report; the bare directive is the finding
				}
				return true
			}
		}
	}
	return false
}

// pkgNameOf resolves an identifier to the import path of the package
// it names, or "" if the identifier is not a package name.
func (p *Pass) pkgNameOf(id *ast.Ident) string {
	if obj, ok := p.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
	}
	return ""
}

// calleeMethod resolves a call of the form recv.Method(...) to the
// method's *types.Func, or nil.
func (p *Pass) calleeMethod(call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s := p.Info.Selections[sel]; s != nil {
		if fn, ok := s.Obj().(*types.Func); ok {
			return fn
		}
		return nil
	}
	// Not a selection: either a package-qualified function or an
	// unresolved identifier.
	if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok {
		return fn
	}
	return nil
}

// pkgTail reports whether the object's defining package path is p or
// ends in "/p" — used so the analyzers recognize both the real
// camelot/internal/wal and a testdata stand-in named wal.
func pkgTail(obj types.Object, tail string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == tail || strings.HasSuffix(path, "/"+tail)
}
