package lint

import "go/types"

// RecSurface pins every wal.RecType member to the recovery surfaces
// that must grow with it. A WAL record type that the recovery
// manager's classifier does not name is replayed as dead weight: the
// site reboots, the log scan skips the record, and whatever state it
// encoded is silently gone — the shape of the presumed-abort
// decision-force bug PR 4 fixed. For each non-zero RecType constant
// the analyzer demands:
//
//   - a row in wal's record registry (the recNames map literal):
//     the codec consults it, so an unregistered type is rejected as
//     corrupt at unmarshal instead of flowing into recovery;
//   - a classifier branch: a case naming the type in some switch
//     over wal.RecType in internal/recman — that switch is the
//     single place recovery decides what a record means;
//   - a producer: a reference to the constant in at least one
//     package other than wal and recman, i.e. somebody actually
//     writes the record. A type nobody produces is either dead or —
//     like a checkpoint writer that is still future work — an
//     explicitly justified placeholder.
//
// A type exempt from a surface carries `//lint:recsurface <why>` on
// its constant declaration. Findings are reported at the constant.
var RecSurface = &ModuleAnalyzer{
	Name: "recsurface",
	Doc:  "every wal.RecType needs a registry row, a recman classifier branch, and a producer",
	Run:  runRecSurface,
}

func runRecSurface(mp *ModulePass) error {
	walPkg := mp.Package("wal")
	if walPkg == nil {
		return nil
	}
	enum := lookupEnum(walPkg, "RecType")
	if enum == nil {
		return nil
	}
	walPass := mp.Pass(walPkg)

	registry := mapKeyUnion(walPass, enum)
	var classified map[int64]bool
	if recmanPkg := mp.Package("recman"); recmanPkg != nil {
		classified = switchCaseUnion(mp.Pass(recmanPkg), enum)
	}
	produced := producedConstants(mp, enum, walPkg)

	for _, m := range enumMembers(enum) {
		type gap struct{ missing, why string }
		var gaps []gap
		if !registry[m.val] {
			gaps = append(gaps, gap{"wal's record registry (recNames)",
				"the codec rejects it as corrupt"})
		}
		if classified != nil && !classified[m.val] {
			gaps = append(gaps, gap{"the recman classifier switch",
				"recovery replays it as dead weight"})
		}
		if !produced[m.val] {
			gaps = append(gaps, gap{"any producer outside wal and recman",
				"nobody writes this record"})
		}
		for _, gp := range gaps {
			if walPass.allowed(m.obj.Pos(), "recsurface") {
				break
			}
			walPass.Reportf(m.obj.Pos(),
				"wal.RecType %s is missing from %s: %s (or justify with //lint:recsurface)",
				m.name(), gp.missing, gp.why)
		}
	}
	return nil
}

// producedConstants collects the enum member values referenced in any
// module package other than the enum's own (wal) and the classifier
// (recman) — the record types somebody actually produces.
func producedConstants(mp *ModulePass, enum *types.Named, walPkg *Package) map[int64]bool {
	out := make(map[int64]bool)
	for _, pkg := range mp.Pkgs {
		if pkg == walPkg || pathTail(pkg.Path, "recman") {
			continue
		}
		for _, obj := range pkg.Info.Uses {
			c, ok := obj.(*types.Const)
			if !ok || !types.Identical(c.Type(), enum) {
				continue
			}
			for _, m := range enumMembers(enum) {
				if m.obj == c {
					out[m.val] = true
				}
			}
		}
	}
	return out
}
