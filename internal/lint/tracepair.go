package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
)

// TracePair pins the trace layer to the protocol code it observes.
// The conformance tests assert the paper's budgets (log forces and
// datagrams per commit) against trace counters, so the counters must
// not be able to drift from the code:
//
//  1. every function that issues a wal force (Log.Force/ForceAll)
//     must also emit its trace.Collector.LogForce event — otherwise
//     the budget undercounts and the conformance tests pin a lie;
//  2. every protocol phase literal passed to PhaseBegin must appear
//     in some PhaseEnd in the same package, and vice versa — an
//     unpaired begin leaks an open phase (no latency sample), an
//     unpaired end is dead instrumentation.
//
// Escape hatch: `//lint:tracepair <why>` on the force or phase call.
var TracePair = &Analyzer{
	Name: "tracepair",
	Doc:  "wal forces must emit trace.LogForce; PhaseBegin/PhaseEnd literals must pair",
	Run:  runTracePair,
}

func runTracePair(pass *Pass) error {
	type phaseUse struct {
		pos   token.Pos
		count int
	}
	begins := make(map[string]*phaseUse)
	ends := make(map[string]*phaseUse)

	record := func(m map[string]*phaseUse, name string, pos token.Pos) {
		if u := m[name]; u != nil {
			u.count++
		} else {
			m[name] = &phaseUse{pos: pos, count: 1}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var forces []*ast.CallExpr
			emitsLogForce := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := pass.calleeMethod(call)
				if fn == nil {
					return true
				}
				switch {
				case pkgTail(fn, "wal") && (fn.Name() == "Force" || fn.Name() == "ForceAll"):
					forces = append(forces, call)
				case pkgTail(fn, "trace") && fn.Name() == "LogForce":
					emitsLogForce = true
				case pkgTail(fn, "trace") && (fn.Name() == "PhaseBegin" || fn.Name() == "PhaseEnd"):
					name, ok := phaseLiteral(call)
					if !ok || pass.allowed(call.Pos(), "tracepair") {
						return true
					}
					if fn.Name() == "PhaseBegin" {
						record(begins, name, call.Pos())
					} else {
						record(ends, name, call.Pos())
					}
				}
				return true
			})
			if emitsLogForce {
				continue
			}
			for _, call := range forces {
				if pass.allowed(call.Pos(), "tracepair") {
					continue
				}
				pass.Reportf(call.Pos(),
					"%s issues a wal force but never emits trace.LogForce, so the force-budget counters drift from the code (or justify with //lint:tracepair)",
					fd.Name.Name)
			}
		}
	}

	for _, name := range sortedPhaseNames(begins) {
		if ends[name] == nil {
			pass.Reportf(begins[name].pos,
				"protocol phase %q is begun but never ended in this package; the phase latency sample leaks open", name)
		}
	}
	for _, name := range sortedPhaseNames(ends) {
		if begins[name] == nil {
			pass.Reportf(ends[name].pos,
				"protocol phase %q is ended but never begun in this package; the PhaseEnd is dead instrumentation", name)
		}
	}
	return nil
}

// phaseLiteral extracts the string literal naming the phase (the last
// argument of PhaseBegin/PhaseEnd). Dynamic phase names are outside
// the analyzer's reach and are skipped.
func phaseLiteral(call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	lit, ok := call.Args[len(call.Args)-1].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

func sortedPhaseNames[V any](m map[string]*V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
