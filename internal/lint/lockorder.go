package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockOrder enforces the §3.4 two-level lock hierarchy inside the
// transaction manager: table-shard → family → component. The component
// locks are leaves — in particular the delayed-ack lock (ackMu) and
// the resolved-outcome lock (resMu) are taken from inside family
// critical sections, so acquiring a family lock while either is held
// is a lock-order inversion that can deadlock the real runtime (and,
// in simulation, silently serialize where the paper's design does
// not).
//
// The analyzer tracks, in source order within each function body,
// whether ackMu or resMu is held (via lockAttributed with the
// lockClassAcks/lockClassResolved class, or a direct .Lock() on the
// field) and flags any family-lock acquisition — lockFamily,
// lockOrCreateFamily, relockFamily, or lockAttributed with
// lockClassFamily — inside that window. A deferred Unlock does not
// close the window: the lock stays held to the end of the scope.
// Function literals are separate scopes; the analyzer does not reason
// about when a closure runs.
//
// Escape hatch: `//lint:lockorder <why>` on the acquisition site.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "no family-lock acquisition while holding the ack or resolved component lock",
	Run:  runLockOrder,
}

// componentMutexFields maps the Manager fields the analyzer watches to
// the display name used in reports.
var componentMutexFields = map[string]string{
	"ackMu": "ack",
	"resMu": "resolved",
}

// lockClassComponents maps lockAttributed class constants to the same
// display names.
var lockClassComponents = map[string]string{
	"lockClassAcks":     "ack",
	"lockClassResolved": "resolved",
}

func runLockOrder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lockOrderScope(pass, fd.Name.Name, fd.Body)
		}
	}
	return nil
}

// lockOrderScope walks one function body in source order, tracking
// which watched component locks are held.
func lockOrderScope(pass *Pass, fname string, body *ast.BlockStmt) {
	held := make(map[string]token.Pos)

	report := func(pos token.Pos, what string) {
		if len(held) == 0 || pass.allowed(pos, "lockorder") {
			return
		}
		names := make([]string, 0, len(held))
		for name := range held {
			names = append(names, name)
		}
		sort.Strings(names)
		pass.Reportf(pos,
			"%s acquires a family lock (%s) while holding the %s lock; the §3.4 order is table-shard → family → component (or justify with //lint:lockorder)",
			fname, what, strings.Join(names, " and "))
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure is its own scope: it runs at some later
			// time, not at its definition site.
			lockOrderScope(pass, fname, n.Body)
			return false
		case *ast.DeferStmt:
			// A deferred Unlock fires at scope exit, so the lock
			// stays held for the rest of the walk; skip the call so
			// it is not mistaken for an immediate release.
			if componentMutexReceiver(n.Call) != "" && calleeNamed(pass, n.Call, "Unlock") {
				return false
			}
			return true
		case *ast.CallExpr:
			fn := pass.calleeMethod(n)
			if fn == nil {
				return true
			}
			switch fn.Name() {
			case "lockAttributed":
				if len(n.Args) != 2 {
					return true
				}
				class, ok := n.Args[1].(*ast.Ident)
				if !ok {
					return true
				}
				if name := lockClassComponents[class.Name]; name != "" {
					held[name] = n.Pos()
				} else if class.Name == "lockClassFamily" {
					report(n.Pos(), "lockAttributed with lockClassFamily")
				}
			case "Lock":
				if name := componentMutexReceiver(n); name != "" {
					held[name] = n.Pos()
				}
			case "Unlock":
				if name := componentMutexReceiver(n); name != "" {
					delete(held, name)
				}
			case "lockFamily", "lockOrCreateFamily", "relockFamily":
				report(n.Pos(), fn.Name())
			}
		}
		return true
	})
}

// componentMutexReceiver reports which watched component mutex a
// method call like m.ackMu.Lock() targets, or "" if the receiver is
// not one of the watched fields.
func componentMutexReceiver(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	recv, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return componentMutexFields[recv.Sel.Name]
}

// calleeNamed reports whether the call resolves to a method with the
// given name.
func calleeNamed(pass *Pass, call *ast.CallExpr, name string) bool {
	fn := pass.calleeMethod(call)
	return fn != nil && fn.Name() == name
}
