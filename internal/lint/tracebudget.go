package lint

import (
	"go/ast"
	"go/types"
)

// TraceBudget extends tracepair from forces to sends. The
// conformance tables pin the paper's per-commit datagram budgets
// against trace counters, and the transport counts every datagram
// centrally — but central counting only attributes a send to a
// transaction family when the message carries a TID (or piggybacked
// AckTIDs), and only sees sends that actually reach it through the
// stamped core send path. Two ways a protocol send can silently
// escape the budget:
//
//  1. a wire.Msg composite literal that sets neither TID nor
//     AckTIDs — the transport counts the datagram but cannot charge
//     it to any family, so the per-family budget under-counts;
//  2. a direct call to the transport (Send/SendAll/Multicast on the
//     transport package's interfaces) from a function that never
//     stamps the sequence counter — a send path that bypasses
//     core's send/fanout helpers skips sequence stamping and ack
//     piggybacking, the bookkeeping the budget columns assume.
//
// Stamping may live one local helper away (the call graph's single
// level of indirection). Escape hatch: `//lint:tracebudget <why>` on
// the literal or call.
var TraceBudget = &Analyzer{
	Name: "tracebudget",
	Doc:  "protocol sends must be family-attributable and sequence-stamped for the budget counters",
	Run:  runTraceBudget,
}

func runTraceBudget(pass *Pass) error {
	g := buildCallGraph(pass)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			stamps := stampsSeq(pass, g, fd, true)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					named := namedTypeOf(pass, n)
					if named == nil || named.Obj().Name() != "Msg" ||
						named.Obj().Pkg() == nil || !pathTail(named.Obj().Pkg().Path(), "wire") {
						return true
					}
					if literalHasKey(n, "TID") || literalHasKey(n, "AckTIDs") {
						return true
					}
					if pass.allowed(n.Pos(), "tracebudget") {
						return true
					}
					pass.Reportf(n.Pos(),
						"wire.Msg literal sets neither TID nor AckTIDs, so the transport cannot charge the datagram to a family and the budget counters under-count (or justify with //lint:tracebudget)")
				case *ast.CallExpr:
					fn := pass.calleeMethod(n)
					if fn == nil || !pkgTail(fn, "transport") {
						return true
					}
					switch fn.Name() {
					case "Send", "SendAll", "Multicast":
					default:
						return true
					}
					if stamps || pass.allowed(n.Pos(), "tracebudget") {
						return true
					}
					pass.Reportf(n.Pos(),
						"%s calls the transport's %s directly but never stamps the sequence counter; route the send through the stamped send/fanout path so the budget bookkeeping sees it (or justify with //lint:tracebudget)",
						fd.Name.Name, fn.Name())
				}
				return true
			})
		}
	}
	return nil
}

// stampsSeq reports whether the function increments a field named seq
// — directly, or (when follow is set) inside one locally declared
// helper it calls.
func stampsSeq(pass *Pass, g *callGraph, fd *ast.FuncDecl, follow bool) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.IncDecStmt:
			if sel, ok := n.X.(*ast.SelectorExpr); ok && sel.Sel.Name == "seq" {
				found = true
				return false
			}
		case *ast.CallExpr:
			if !follow {
				return true
			}
			if callee := calleeObject(pass, n); callee != nil {
				if body := g.body(callee); body != nil && stampsSeq(pass, g, body, false) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// namedTypeOf resolves a composite literal (or &literal) to its named
// type, or nil.
func namedTypeOf(pass *Pass, lit *ast.CompositeLit) *types.Named {
	t := pass.Info.Types[lit].Type
	if t == nil {
		return nil
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named
}

// literalHasKey reports whether a keyed composite literal sets the
// field.
func literalHasKey(lit *ast.CompositeLit, key string) bool {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == key {
			return true
		}
	}
	return false
}
