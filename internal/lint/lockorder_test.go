package lint_test

import (
	"testing"

	"camelot/internal/lint"
	"camelot/internal/lint/linttest"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, linttest.Dir(), lint.LockOrder, "lockorder")
}
