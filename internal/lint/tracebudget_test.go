package lint_test

import (
	"testing"

	"camelot/internal/lint"
	"camelot/internal/lint/linttest"
)

func TestTraceBudget(t *testing.T) {
	linttest.Run(t, linttest.Dir(), lint.TraceBudget, "tracebudget")
}
