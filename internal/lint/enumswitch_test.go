package lint_test

import (
	"testing"

	"camelot/internal/lint"
	"camelot/internal/lint/linttest"
)

func TestEnumSwitch(t *testing.T) {
	linttest.Run(t, linttest.Dir(), lint.EnumSwitch, "enumswitch")
}
