package ctl

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"camelot/camelot"
	"camelot/internal/tid"
	"camelot/internal/wire"
)

// ErrAborted mirrors camelot.ErrAborted across the control plane: a
// Commit that ended in a clean abort reports it as this error, so
// drivers classify outcomes the same way an in-process client would.
var ErrAborted = camelot.ErrAborted

// ErrUnavailable reports that the node did not answer within the
// call's deadline (or the connection died). It is the typed,
// bounded-time verdict a driver gets from a frozen or dead node —
// instead of hanging on a stream that will never produce bytes.
// errors.Is(err, ErrUnavailable) classifies it; Reconnect recovers
// the client once the node is back.
var ErrUnavailable = errors.New("ctl: node unavailable")

// Typed keyspace-routing errors, mirrored across the control plane
// from the data tier (Response.Code carries the class; the client
// rehydrates it so errors.Is works driver-side exactly as it does
// in-process).
var (
	// ErrNoShard reports a key no shard map entry covers.
	ErrNoShard = camelot.ErrNoShard
	// ErrWrongSite reports a key whose home shard is hosted at a
	// different site than the one addressed.
	ErrWrongSite = camelot.ErrWrongSite
	// ErrUnsharded reports a keyspace op against a node running
	// without a shard map.
	ErrUnsharded = errors.New("ctl: node runs without a shard map")
)

// codeError rehydrates a Response's typed error class.
func codeError(resp Response) error {
	switch resp.Code {
	case CodeNoShard:
		return fmt.Errorf("%w: %s", ErrNoShard, resp.Err)
	case CodeWrongSite:
		return fmt.Errorf("%w: %s", ErrWrongSite, resp.Err)
	case CodeUnsharded:
		return fmt.Errorf("%w: %s", ErrUnsharded, resp.Err)
	}
	return nil
}

// Client is one driver-side control connection to a camelot-node.
// Requests on one Client are serialized; use one Client per
// concurrent stream of work.
//
// A Client may carry a default per-call deadline (SetTimeout, or
// DialTimeout); individual calls override it with DoTimeout. When a
// call times out the connection is poisoned — a late response would
// desynchronize the request/response framing — so every subsequent
// call fails fast with ErrUnavailable until Reconnect succeeds.
type Client struct {
	addr string

	mu      sync.Mutex
	conn    net.Conn
	br      *bufio.Reader
	timeout time.Duration
	broken  error // sticky transport failure; cleared by Reconnect
}

// Dial connects to a node's control address with no default deadline:
// calls block until the node answers or the connection dies.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 0)
}

// DialTimeout connects with a default per-call deadline (0 keeps
// calls unbounded). The deadline also bounds the dial itself.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("ctl: dial %s: %w: %v", addr, ErrUnavailable, err)
	}
	return &Client{
		addr:    addr,
		conn:    conn,
		br:      bufio.NewReaderSize(conn, maxLine),
		timeout: timeout,
	}, nil
}

// SetTimeout installs the default per-call deadline applied to every
// exchange that does not override it; 0 removes it.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// Reconnect redials the node and replaces a poisoned connection,
// keeping the configured default deadline. The driver calls it after
// an ErrUnavailable once it believes the node is back (restarted, or
// SIGCONTed).
func (c *Client) Reconnect() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return fmt.Errorf("ctl: reconnect %s: %w: %v", c.addr, ErrUnavailable, err)
	}
	if c.conn != nil {
		c.conn.Close() //nolint:errcheck // already poisoned
	}
	c.conn = conn
	c.br = bufio.NewReaderSize(conn, maxLine)
	c.broken = nil
	return nil
}

// Broken reports whether the connection is poisoned — a prior call
// timed out or the stream died — and needs Reconnect before it can
// carry requests again.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken != nil
}

// Close closes the connection and marks the client broken: any later
// Do fails typed (ErrUnavailable) instead of writing to a closed
// conn. It holds c.mu the whole way — Reconnect swaps c.conn under
// the same lock, and the old unlocked read raced it. Nil-safe and
// idempotent; Reconnect may still revive the client afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	conn := c.conn
	c.conn = nil
	c.br = nil
	c.broken = fmt.Errorf("%w: client closed", ErrUnavailable)
	if conn == nil {
		return nil
	}
	return conn.Close()
}

// Do performs one request/response exchange under the client's
// default deadline (if any). A transport failure or timeout (node
// killed or frozen mid-call, say) is returned as an error wrapping
// ErrUnavailable; a protocol-level failure arrives in Response.Err.
func (c *Client) Do(req Request) (Response, error) {
	return c.DoTimeout(req, 0)
}

// DoTimeout performs one exchange with a per-call deadline override;
// 0 falls back to the client default, and negative disables the
// deadline for this call even if a default is set.
func (c *Client) DoTimeout(req Request, timeout time.Duration) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return Response{}, fmt.Errorf("ctl: %s after earlier failure: %w", req.Op, c.broken)
	}
	if timeout == 0 {
		timeout = c.timeout
	}
	b, err := json.Marshal(&req)
	if err != nil {
		return Response{}, err
	}
	if timeout > 0 {
		deadline := time.Now().Add(timeout) //lint:walltime host-side control-connection deadline; the control plane never runs under the simulation kernel
		if err := c.conn.SetDeadline(deadline); err != nil {
			return Response{}, c.poison(req.Op, err)
		}
		defer c.conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset on a live conn
	}
	if _, err := c.conn.Write(append(b, '\n')); err != nil {
		return Response{}, c.poison(req.Op, err)
	}
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		// ErrBufferFull means the node wrote a line longer than the
		// protocol bound (maxLine, the reader's buffer size). The
		// remainder of the line is still in the stream, so every
		// later exchange would read from mid-line: the connection is
		// desynchronized and must be poisoned, exactly like a
		// timeout, until Reconnect replaces it. (The old unbounded
		// ReadBytes never hit this — it grew without limit instead.)
		if errors.Is(err, bufio.ErrBufferFull) {
			err = fmt.Errorf("response line exceeds %d bytes: %v", maxLine, err)
		}
		return Response{}, c.poison(req.Op, err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return Response{}, fmt.Errorf("ctl: decode %s: %w", req.Op, err)
	}
	return resp, nil
}

// poison records a transport failure and wraps it as ErrUnavailable.
// Called with c.mu held.
func (c *Client) poison(op string, err error) error {
	c.broken = fmt.Errorf("%w: %v", ErrUnavailable, err)
	return fmt.Errorf("ctl: %s: %w", op, c.broken)
}

// do performs an exchange and folds Response.Err into the error,
// rehydrating typed routing errors from Response.Code.
func (c *Client) do(req Request) (Response, error) {
	resp, err := c.Do(req)
	if err != nil {
		return resp, err
	}
	if resp.Err != "" {
		if terr := codeError(resp); terr != nil {
			return resp, terr
		}
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

// Ping checks liveness and returns the node's site id.
func (c *Client) Ping() (camelot.SiteID, error) {
	resp, err := c.do(Request{Op: OpPing})
	return camelot.SiteID(resp.Site), err
}

// SetPeers installs the deployment's site-id -> UDP-address map.
func (c *Client) SetPeers(peers map[camelot.SiteID]string) error {
	m := make(map[string]string, len(peers))
	for id, addr := range peers {
		m[strconv.FormatUint(uint64(id), 10)] = addr
	}
	_, err := c.do(Request{Op: OpPeers, Peers: m})
	return err
}

// Begin starts a transaction coordinated by the node.
func (c *Client) Begin() (camelot.TID, error) {
	resp, err := c.do(Request{Op: OpBegin})
	return tid.TID{Family: tid.FamilyID(resp.Family), Seq: tid.Seq(resp.Seq)}, err
}

// Write writes key=val at the node's named server under t.
func (c *Client) Write(server string, t camelot.TID, key string, val []byte) error {
	_, err := c.do(Request{Op: OpWrite, Server: server,
		Family: uint64(t.Family), Seq: uint64(t.Seq), Key: key, Val: val})
	return err
}

// Read reads key at the node's named server under t.
func (c *Client) Read(server string, t camelot.TID, key string) ([]byte, error) {
	resp, err := c.do(Request{Op: OpRead, Server: server,
		Family: uint64(t.Family), Seq: uint64(t.Seq), Key: key})
	return resp.Val, err
}

// AddSites declares remote participant sites at the coordinator.
func (c *Client) AddSites(t camelot.TID, sites []camelot.SiteID) error {
	ids := make([]uint32, 0, len(sites))
	for _, s := range sites {
		ids = append(ids, uint32(s))
	}
	_, err := c.do(Request{Op: OpAddSites,
		Family: uint64(t.Family), Seq: uint64(t.Seq), Sites: ids})
	return err
}

// Commit runs the commitment protocol for t at the coordinator. A
// clean abort returns ErrAborted (wrapped); other errors mean the
// outcome is unknown to the client.
func (c *Client) Commit(t camelot.TID, nonBlocking bool) (wire.Outcome, error) {
	return c.commit(Request{Op: OpCommit,
		Family: uint64(t.Family), Seq: uint64(t.Seq), NonBlocking: nonBlocking})
}

// CommitWith runs the commitment protocol under an explicitly named
// protocol ("2pc", "nb", "paxos"; empty defers to the node's default).
func (c *Client) CommitWith(t camelot.TID, protocol string) (wire.Outcome, error) {
	return c.commit(Request{Op: OpCommit,
		Family: uint64(t.Family), Seq: uint64(t.Seq), Protocol: protocol})
}

func (c *Client) commit(req Request) (wire.Outcome, error) {
	resp, err := c.Do(req)
	if err != nil {
		return wire.OutcomeUnknown, err
	}
	if resp.Err != "" {
		if resp.Aborted {
			return OutcomeFromString(resp.Outcome), fmt.Errorf("%w: %s", ErrAborted, resp.Err)
		}
		return OutcomeFromString(resp.Outcome), errors.New(resp.Err)
	}
	return OutcomeFromString(resp.Outcome), nil
}

// Abort aborts t.
func (c *Client) Abort(t camelot.TID) error {
	_, err := c.do(Request{Op: OpAbort, Family: uint64(t.Family), Seq: uint64(t.Seq)})
	return err
}

// Peek returns the committed value of key at the node's named server.
func (c *Client) Peek(server, key string) ([]byte, bool, error) {
	resp, err := c.do(Request{Op: OpPeek, Server: server, Key: key})
	return resp.Val, resp.Present, err
}

// WriteKey writes key=val under t, routed by the node's shard map. A
// key the node cannot serve fails with ErrNoShard or ErrWrongSite.
func (c *Client) WriteKey(t camelot.TID, key string, val []byte) error {
	_, err := c.do(Request{Op: OpWriteKey,
		Family: uint64(t.Family), Seq: uint64(t.Seq), Key: key, Val: val})
	return err
}

// ReadKey reads key under t, routed by the node's shard map.
func (c *Client) ReadKey(t camelot.TID, key string) ([]byte, error) {
	resp, err := c.do(Request{Op: OpReadKey,
		Family: uint64(t.Family), Seq: uint64(t.Seq), Key: key})
	return resp.Val, err
}

// PeekKey returns the committed value of key, routed by the node's
// shard map, without a transaction.
func (c *Client) PeekKey(key string) ([]byte, bool, error) {
	resp, err := c.do(Request{Op: OpPeekKey, Key: key})
	return resp.Val, resp.Present, err
}

// ShardMap fetches the node's canonical serialized shard map; drivers
// check deployment agreement with bytes.Equal across nodes.
func (c *Client) ShardMap() ([]byte, error) {
	resp, err := c.do(Request{Op: OpShardMap})
	return resp.ShardMap, err
}

// Outcome returns the node's resolved outcome for a family.
func (c *Client) Outcome(f tid.FamilyID) (wire.Outcome, error) {
	resp, err := c.do(Request{Op: OpOutcome, Family: uint64(f)})
	return OutcomeFromString(resp.Outcome), err
}

// Probe runs the oracle's liveness probe at the node.
func (c *Client) Probe(server string) error {
	_, err := c.do(Request{Op: OpProbe, Server: server})
	return err
}

// TransportStats returns the node's transport counters.
func (c *Client) TransportStats() (Stats, error) {
	resp, err := c.do(Request{Op: OpStats})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, errors.New("ctl: stats missing in response")
	}
	return *resp.Stats, nil
}
