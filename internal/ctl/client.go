package ctl

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"

	"camelot/camelot"
	"camelot/internal/tid"
	"camelot/internal/wire"
)

// ErrAborted mirrors camelot.ErrAborted across the control plane: a
// Commit that ended in a clean abort reports it as this error, so
// drivers classify outcomes the same way an in-process client would.
var ErrAborted = camelot.ErrAborted

// Typed keyspace-routing errors, mirrored across the control plane
// from the data tier (Response.Code carries the class; the client
// rehydrates it so errors.Is works driver-side exactly as it does
// in-process).
var (
	// ErrNoShard reports a key no shard map entry covers.
	ErrNoShard = camelot.ErrNoShard
	// ErrWrongSite reports a key whose home shard is hosted at a
	// different site than the one addressed.
	ErrWrongSite = camelot.ErrWrongSite
	// ErrUnsharded reports a keyspace op against a node running
	// without a shard map.
	ErrUnsharded = errors.New("ctl: node runs without a shard map")
)

// codeError rehydrates a Response's typed error class.
func codeError(resp Response) error {
	switch resp.Code {
	case CodeNoShard:
		return fmt.Errorf("%w: %s", ErrNoShard, resp.Err)
	case CodeWrongSite:
		return fmt.Errorf("%w: %s", ErrWrongSite, resp.Err)
	case CodeUnsharded:
		return fmt.Errorf("%w: %s", ErrUnsharded, resp.Err)
	}
	return nil
}

// Client is one driver-side control connection to a camelot-node.
// Requests on one Client are serialized; use one Client per
// concurrent stream of work.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
}

// Dial connects to a node's control address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctl: dial %q: %w", addr, err)
	}
	return &Client{conn: conn, br: bufio.NewReaderSize(conn, maxLine)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do performs one request/response exchange. A transport failure
// (node killed mid-call, say) is returned as an error; a protocol
// level failure arrives in Response.Err.
func (c *Client) Do(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, err := json.Marshal(&req)
	if err != nil {
		return Response{}, err
	}
	if _, err := c.conn.Write(append(b, '\n')); err != nil {
		return Response{}, fmt.Errorf("ctl: send %s: %w", req.Op, err)
	}
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		return Response{}, fmt.Errorf("ctl: recv %s: %w", req.Op, err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return Response{}, fmt.Errorf("ctl: decode %s: %w", req.Op, err)
	}
	return resp, nil
}

// do performs an exchange and folds Response.Err into the error,
// rehydrating typed routing errors from Response.Code.
func (c *Client) do(req Request) (Response, error) {
	resp, err := c.Do(req)
	if err != nil {
		return resp, err
	}
	if resp.Err != "" {
		if terr := codeError(resp); terr != nil {
			return resp, terr
		}
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

// Ping checks liveness and returns the node's site id.
func (c *Client) Ping() (camelot.SiteID, error) {
	resp, err := c.do(Request{Op: OpPing})
	return camelot.SiteID(resp.Site), err
}

// SetPeers installs the deployment's site-id -> UDP-address map.
func (c *Client) SetPeers(peers map[camelot.SiteID]string) error {
	m := make(map[string]string, len(peers))
	for id, addr := range peers {
		m[strconv.FormatUint(uint64(id), 10)] = addr
	}
	_, err := c.do(Request{Op: OpPeers, Peers: m})
	return err
}

// Begin starts a transaction coordinated by the node.
func (c *Client) Begin() (camelot.TID, error) {
	resp, err := c.do(Request{Op: OpBegin})
	return tid.TID{Family: tid.FamilyID(resp.Family), Seq: tid.Seq(resp.Seq)}, err
}

// Write writes key=val at the node's named server under t.
func (c *Client) Write(server string, t camelot.TID, key string, val []byte) error {
	_, err := c.do(Request{Op: OpWrite, Server: server,
		Family: uint64(t.Family), Seq: uint64(t.Seq), Key: key, Val: val})
	return err
}

// Read reads key at the node's named server under t.
func (c *Client) Read(server string, t camelot.TID, key string) ([]byte, error) {
	resp, err := c.do(Request{Op: OpRead, Server: server,
		Family: uint64(t.Family), Seq: uint64(t.Seq), Key: key})
	return resp.Val, err
}

// AddSites declares remote participant sites at the coordinator.
func (c *Client) AddSites(t camelot.TID, sites []camelot.SiteID) error {
	ids := make([]uint32, 0, len(sites))
	for _, s := range sites {
		ids = append(ids, uint32(s))
	}
	_, err := c.do(Request{Op: OpAddSites,
		Family: uint64(t.Family), Seq: uint64(t.Seq), Sites: ids})
	return err
}

// Commit runs the commitment protocol for t at the coordinator. A
// clean abort returns ErrAborted (wrapped); other errors mean the
// outcome is unknown to the client.
func (c *Client) Commit(t camelot.TID, nonBlocking bool) (wire.Outcome, error) {
	return c.commit(Request{Op: OpCommit,
		Family: uint64(t.Family), Seq: uint64(t.Seq), NonBlocking: nonBlocking})
}

// CommitWith runs the commitment protocol under an explicitly named
// protocol ("2pc", "nb", "paxos"; empty defers to the node's default).
func (c *Client) CommitWith(t camelot.TID, protocol string) (wire.Outcome, error) {
	return c.commit(Request{Op: OpCommit,
		Family: uint64(t.Family), Seq: uint64(t.Seq), Protocol: protocol})
}

func (c *Client) commit(req Request) (wire.Outcome, error) {
	resp, err := c.Do(req)
	if err != nil {
		return wire.OutcomeUnknown, err
	}
	if resp.Err != "" {
		if resp.Aborted {
			return OutcomeFromString(resp.Outcome), fmt.Errorf("%w: %s", ErrAborted, resp.Err)
		}
		return OutcomeFromString(resp.Outcome), errors.New(resp.Err)
	}
	return OutcomeFromString(resp.Outcome), nil
}

// Abort aborts t.
func (c *Client) Abort(t camelot.TID) error {
	_, err := c.do(Request{Op: OpAbort, Family: uint64(t.Family), Seq: uint64(t.Seq)})
	return err
}

// Peek returns the committed value of key at the node's named server.
func (c *Client) Peek(server, key string) ([]byte, bool, error) {
	resp, err := c.do(Request{Op: OpPeek, Server: server, Key: key})
	return resp.Val, resp.Present, err
}

// WriteKey writes key=val under t, routed by the node's shard map. A
// key the node cannot serve fails with ErrNoShard or ErrWrongSite.
func (c *Client) WriteKey(t camelot.TID, key string, val []byte) error {
	_, err := c.do(Request{Op: OpWriteKey,
		Family: uint64(t.Family), Seq: uint64(t.Seq), Key: key, Val: val})
	return err
}

// ReadKey reads key under t, routed by the node's shard map.
func (c *Client) ReadKey(t camelot.TID, key string) ([]byte, error) {
	resp, err := c.do(Request{Op: OpReadKey,
		Family: uint64(t.Family), Seq: uint64(t.Seq), Key: key})
	return resp.Val, err
}

// PeekKey returns the committed value of key, routed by the node's
// shard map, without a transaction.
func (c *Client) PeekKey(key string) ([]byte, bool, error) {
	resp, err := c.do(Request{Op: OpPeekKey, Key: key})
	return resp.Val, resp.Present, err
}

// ShardMap fetches the node's canonical serialized shard map; drivers
// check deployment agreement with bytes.Equal across nodes.
func (c *Client) ShardMap() ([]byte, error) {
	resp, err := c.do(Request{Op: OpShardMap})
	return resp.ShardMap, err
}

// Outcome returns the node's resolved outcome for a family.
func (c *Client) Outcome(f tid.FamilyID) (wire.Outcome, error) {
	resp, err := c.do(Request{Op: OpOutcome, Family: uint64(f)})
	return OutcomeFromString(resp.Outcome), err
}

// Probe runs the oracle's liveness probe at the node.
func (c *Client) Probe(server string) error {
	_, err := c.do(Request{Op: OpProbe, Server: server})
	return err
}

// TransportStats returns the node's transport counters.
func (c *Client) TransportStats() (Stats, error) {
	resp, err := c.do(Request{Op: OpStats})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, errors.New("ctl: stats missing in response")
	}
	return *resp.Stats, nil
}
