package ctl

import (
	"bufio"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"camelot/camelot"
	"camelot/internal/shardmap"
)

// TestClientCloseReconnectDoRace is the regression test for the
// unsynchronized Close: it read c.conn without c.mu while Reconnect
// swapped the field under lock, a data race visible to `go test
// -race` and, in the field, a write to a stale conn. Close, Reconnect,
// and Do now all serialize on c.mu; hammering them concurrently must
// produce no race reports and nothing but typed errors.
func TestClientCloseReconnectDoRace(t *testing.T) {
	m, err := shardmap.New(1, 4, []camelot.SiteID{1})
	if err != nil {
		t.Fatal(err)
	}
	_, c := startShardedNode(t, 1, m)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 50; j++ {
				if _, err := c.Ping(); err != nil && !errors.Is(err, ErrUnavailable) {
					t.Errorf("Ping: non-typed error %v", err)
					return
				}
			}
		}()
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		<-start
		for j := 0; j < 25; j++ {
			c.Close() //nolint:errcheck // racing on purpose
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		for j := 0; j < 25; j++ {
			c.Reconnect() //nolint:errcheck // racing on purpose
		}
	}()
	close(start)
	wg.Wait()

	// Whatever interleaving happened, the client must be revivable.
	if err := c.Reconnect(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseIsNilSafeAndTyped: Close on an already-closed client is a
// no-op, and Do after Close fails fast with ErrUnavailable instead of
// writing to a dead conn.
func TestCloseIsNilSafeAndTyped(t *testing.T) {
	m, err := shardmap.New(1, 4, []camelot.SiteID{1})
	if err != nil {
		t.Fatal(err)
	}
	_, c := startShardedNode(t, 1, m)

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v, want nil", err)
	}
	if !c.Broken() {
		t.Fatal("client not marked broken after Close")
	}
	if _, err := c.Ping(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Ping after Close: %v, want ErrUnavailable", err)
	}
	if err := c.Reconnect(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ping(); err != nil {
		t.Fatalf("Ping after Reconnect: %v", err)
	}
}

// oversizeServer speaks just enough of the ctl JSON-line protocol to
// reproduce a node writing a response line longer than maxLine: the
// first exchange on each of the first `bad` connections gets a giant
// line, everything after answers `{}`.
func oversizeServer(t *testing.T, bad int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() }) //nolint:errcheck // test teardown
	huge := "{\"err\":\"" + strings.Repeat("x", maxLine+16) + "\"}\n"
	conns := 0
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conns++
			first := conns <= bad
			go func(conn net.Conn, poisonFirst bool) {
				defer conn.Close() //nolint:errcheck // test server
				br := bufio.NewReader(conn)
				for i := 0; ; i++ {
					if _, err := br.ReadBytes('\n'); err != nil {
						return
					}
					resp := "{}\n"
					if poisonFirst && i == 0 {
						resp = huge
					}
					if _, err := conn.Write([]byte(resp)); err != nil {
						return
					}
				}
			}(conn, first)
		}
	}()
	return ln.Addr().String()
}

// TestOversizedResponsePoisonsConnection is the regression test for
// the bufio.ErrBufferFull desync: a response line longer than maxLine
// used to leave the remainder of the line in the stream, so the next
// exchange decoded from mid-line garbage. The client must now treat
// the oversized line as a transport failure: the call fails with
// ErrUnavailable, the connection is sticky-broken until Reconnect,
// and after Reconnect the stream is clean.
func TestOversizedResponsePoisonsConnection(t *testing.T) {
	addr := oversizeServer(t, 1)
	c, err := DialTimeout(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck // test teardown

	if _, err := c.Do(Request{Op: OpPing}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("oversized response: %v, want ErrUnavailable", err)
	}
	if !c.Broken() {
		t.Fatal("client not poisoned by oversized response")
	}
	// Sticky: the next call must fail fast, not read desynced bytes.
	if _, err := c.Do(Request{Op: OpPing}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("call after poisoning: %v, want ErrUnavailable", err)
	}
	if err := c.Reconnect(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(Request{Op: OpPing}); err != nil {
		t.Fatalf("exchange after Reconnect: %v", err)
	}
}

// TestPoolRecyclesConnections: a Get/Put cycle reuses the same
// connection instead of redialing; broken clients are dropped; a
// closed pool fails Gets typed.
func TestPoolRecyclesConnections(t *testing.T) {
	m, err := shardmap.New(1, 4, []camelot.SiteID{1})
	if err != nil {
		t.Fatal(err)
	}
	_, c0 := startShardedNode(t, 1, m)
	// Find the server address from the dialed test client.
	addr := c0.addr

	p := NewPool(addr, 2*time.Second, 8)
	defer p.Close() //nolint:errcheck // test teardown

	c, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	p.Put(c)
	c2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c {
		t.Fatal("pool did not recycle the idle client")
	}
	if got := p.Dials(); got != 1 {
		t.Fatalf("Dials() = %d, want 1", got)
	}

	// A broken client must not be recycled.
	c2.Close() //nolint:errcheck // poisoning on purpose
	p.Put(c2)
	if got := p.Idle(); got != 0 {
		t.Fatalf("Idle() = %d after putting a broken client, want 0", got)
	}

	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Get on closed pool: %v, want ErrPoolClosed", err)
	}
}
