package ctl

import (
	"bufio"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// silentThenServing listens on loopback; its first connection reads
// requests and never answers (a frozen node), while every later
// connection answers pings — the shape of a SIGSTOPped process that
// was since SIGCONTed or restarted.
func silentThenServing(t *testing.T) (addr string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() }) //nolint:errcheck // test teardown
	var conns atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			frozen := conns.Add(1) == 1
			go func() {
				defer conn.Close() //nolint:errcheck // test server
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					if frozen {
						continue // swallow the request; never answer
					}
					if _, err := conn.Write([]byte(`{"ok":true,"site":7}` + "\n")); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestDeadlineBoundsFrozenNode is the regression test for the
// control plane's worst gray failure: a node that accepts the
// connection and then never produces a byte (SIGSTOP, wedged event
// loop). The client must return a typed ErrUnavailable within the
// deadline — not hang — and subsequent calls must fail fast without
// waiting out another timeout.
func TestDeadlineBoundsFrozenNode(t *testing.T) {
	addr := silentThenServing(t)
	c, err := DialTimeout(addr, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck // test teardown

	start := time.Now()
	_, err = c.Ping()
	elapsed := time.Since(start)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Ping against frozen node = %v, want ErrUnavailable", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, want bounded by the 150ms deadline", elapsed)
	}

	// The connection is poisoned: the next call fails immediately,
	// without burning another deadline.
	start = time.Now()
	if _, err := c.Ping(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Ping after poison = %v, want ErrUnavailable", err)
	}
	if fast := time.Since(start); fast > 50*time.Millisecond {
		t.Fatalf("poisoned call took %v, want immediate", fast)
	}

	// Once the node is back, Reconnect recovers the client.
	if err := c.Reconnect(); err != nil {
		t.Fatalf("Reconnect: %v", err)
	}
	site, err := c.Ping()
	if err != nil {
		t.Fatalf("Ping after Reconnect: %v", err)
	}
	if site != 7 {
		t.Fatalf("site = %d, want 7", site)
	}
}

// TestDoTimeoutOverridesDefault pins the per-call override: a client
// with no default deadline still gets a bounded verdict when the call
// itself carries one.
func TestDoTimeoutOverridesDefault(t *testing.T) {
	addr := silentThenServing(t)
	c, err := Dial(addr) // no default deadline
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck // test teardown

	start := time.Now()
	_, err = c.DoTimeout(Request{Op: OpPing}, 100*time.Millisecond)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("DoTimeout = %v, want ErrUnavailable", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("override deadline took %v", elapsed)
	}
}
