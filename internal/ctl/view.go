package ctl

import (
	"camelot/internal/tid"
	"camelot/internal/wire"
)

// View adapts a control connection to the oracle's SiteView: the
// recovery invariants are checked against real node processes with
// exactly the same code that checks the simulated cluster.
type View struct {
	// C is the control connection to the node.
	C *Client
	// Server is the node's data-server name. Empty means the node is
	// sharded: presence queries route by key through the shard map
	// (the caller must ask the key's home site), and the probe runs
	// against whichever shard server the site hosts.
	Server string
}

// HasKey implements oracle.SiteView.
func (v *View) HasKey(key string) (bool, error) {
	if v.Server == "" {
		_, ok, err := v.C.PeekKey(key)
		return ok, err
	}
	_, ok, err := v.C.Peek(v.Server, key)
	return ok, err
}

// OutcomeOf implements oracle.SiteView.
func (v *View) OutcomeOf(f tid.FamilyID) (wire.Outcome, error) {
	return v.C.Outcome(f)
}

// Probe implements oracle.SiteView.
func (v *View) Probe() error {
	return v.C.Probe(v.Server)
}
