package ctl

import (
	"errors"
	"sync"
	"time"
)

// ErrPoolClosed reports Get on a closed Pool.
var ErrPoolClosed = errors.New("ctl: pool closed")

// DefaultMaxIdle bounds a Pool's idle list when NewPool is given 0:
// enough to keep a bursty driver off the dialer without hoarding file
// descriptors across thousands of pools.
const DefaultMaxIdle = 64

// Pool recycles control connections to one node. An open-loop load
// generator runs thousands of concurrent sessions against a handful
// of sites; dialing per session would serialize on TCP handshakes and
// exhaust ephemeral ports, and one shared Client would serialize every
// session on its request/response lock. Get returns an idle healthy
// client or dials a fresh one; Put recycles it. Clients that come
// back broken (poisoned by a timeout, a desynchronized stream, or
// Close) are discarded, never recycled — a poisoned connection stays
// poisoned.
type Pool struct {
	addr    string
	timeout time.Duration
	maxIdle int

	mu     sync.Mutex
	idle   []*Client
	dials  int
	closed bool
}

// NewPool returns a pool dialing addr with the given per-call default
// deadline (0 = unbounded calls). maxIdle bounds how many idle
// clients are retained; 0 means DefaultMaxIdle.
func NewPool(addr string, timeout time.Duration, maxIdle int) *Pool {
	if maxIdle <= 0 {
		maxIdle = DefaultMaxIdle
	}
	return &Pool{addr: addr, timeout: timeout, maxIdle: maxIdle}
}

// Addr returns the node address the pool dials.
func (p *Pool) Addr() string { return p.addr }

// Get returns a healthy client, reusing an idle one when available
// and dialing otherwise.
func (p *Pool) Get() (*Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.dials++
	p.mu.Unlock()
	return DialTimeout(p.addr, p.timeout)
}

// Put returns a client to the pool. Broken clients and overflow
// beyond the idle bound are closed and dropped.
func (p *Pool) Put(c *Client) {
	if c == nil {
		return
	}
	if c.Broken() {
		c.Close() //nolint:errcheck // already poisoned
		return
	}
	p.mu.Lock()
	if p.closed || len(p.idle) >= p.maxIdle {
		p.mu.Unlock()
		c.Close() //nolint:errcheck // surplus connection
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// Dials reports how many fresh connections the pool has dialed — the
// generator's measure of how well recycling is working (a healthy run
// dials about its peak concurrency, not once per operation).
func (p *Pool) Dials() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dials
}

// Idle reports the current idle-list size.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// Close closes every idle client and fails all future Gets. Clients
// checked out at the time of Close are unaffected; Put closes them
// when they come back.
func (p *Pool) Close() error {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	var first error
	for _, c := range idle {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
