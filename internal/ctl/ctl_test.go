package ctl

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"camelot/camelot"
	"camelot/internal/shardmap"
	"camelot/internal/tid"
)

// startShardedNode brings up one in-process RealNode under the given
// shard map with a ctl server, and returns a dialed client.
func startShardedNode(t *testing.T, site camelot.SiteID, m *shardmap.Map) (*camelot.RealNode, *Client) {
	t.Helper()
	cfg := camelot.DefaultRealConfig(site)
	cfg.WALPath = filepath.Join(t.TempDir(), "wal")
	cfg.ShardMap = m
	n, err := camelot.StartRealNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() }) //nolint:errcheck // test teardown
	if err := n.Recover(); err != nil {
		t.Fatal(err)
	}
	s, err := Serve(n, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() }) //nolint:errcheck // test teardown
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() }) //nolint:errcheck // test teardown
	return n, c
}

// findKey returns a key under prefix whose home site is want (0 for a
// key on an unplaced shard).
func findKey(t *testing.T, m *shardmap.Map, prefix string, want camelot.SiteID) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		k := prefix + "." + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if m.SiteOf(k) == want {
			return k
		}
	}
	t.Fatalf("no key under %q homed at site %d", prefix, want)
	return ""
}

// TestCtlRejectsUncoveredKeyLoudly is the regression test for the
// control plane's handling of keys no shard covers: the request must
// fail immediately with the typed no-shard error — never hang until
// some timeout, never a generic string-only failure.
func TestCtlRejectsUncoveredKeyLoudly(t *testing.T) {
	// Shards 1 and 3 are unplaced; their keys are covered by no site.
	m := &shardmap.Map{Version: 1, Shards: 4, Placement: []camelot.SiteID{1, 0, 1, 0}}
	_, c := startShardedNode(t, 1, m)

	bt, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	uncovered := findKey(t, m, "hole", 0)

	start := time.Now()
	err = c.WriteKey(bt, uncovered, []byte("v"))
	elapsed := time.Since(start)
	if !errors.Is(err, ErrNoShard) {
		t.Fatalf("WriteKey(uncovered) = %v, want ErrNoShard", err)
	}
	if _, err := c.ReadKey(bt, uncovered); !errors.Is(err, ErrNoShard) {
		t.Fatalf("ReadKey(uncovered) = %v, want ErrNoShard", err)
	}
	if _, _, err := c.PeekKey(uncovered); !errors.Is(err, ErrNoShard) {
		t.Fatalf("PeekKey(uncovered) = %v, want ErrNoShard", err)
	}
	// "Loudly" means synchronously: the rejection is a routing verdict,
	// not a lock or RPC timeout (those run 2s+ under the default
	// config).
	if elapsed > time.Second {
		t.Fatalf("uncovered-key rejection took %v; must not ride a timeout", elapsed)
	}
	if err := c.Abort(bt); err != nil {
		t.Fatal(err)
	}
}

func TestCtlRejectsForeignKeyWithWrongSite(t *testing.T) {
	m, err := shardmap.New(1, 4, []camelot.SiteID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	_, c := startShardedNode(t, 1, m)
	bt, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	foreign := findKey(t, m, "far", 2)
	if err := c.WriteKey(bt, foreign, []byte("v")); !errors.Is(err, ErrWrongSite) {
		t.Fatalf("WriteKey(foreign) = %v, want ErrWrongSite", err)
	}
	if err := c.Abort(bt); err != nil {
		t.Fatal(err)
	}
}

func TestCtlKeyspaceOpsOnUnshardedNode(t *testing.T) {
	cfg := camelot.DefaultRealConfig(1)
	cfg.WALPath = filepath.Join(t.TempDir(), "wal")
	n, err := camelot.StartRealNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() }) //nolint:errcheck // test teardown
	if err := n.Recover(); err != nil {
		t.Fatal(err)
	}
	s, err := Serve(n, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() }) //nolint:errcheck // test teardown
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() }) //nolint:errcheck // test teardown

	bt, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteKey(bt, "k", []byte("v")); !errors.Is(err, ErrUnsharded) {
		t.Fatalf("WriteKey on unsharded node = %v, want ErrUnsharded", err)
	}
	if _, err := c.ShardMap(); !errors.Is(err, ErrUnsharded) {
		t.Fatalf("ShardMap on unsharded node = %v, want ErrUnsharded", err)
	}
	if err := c.Abort(bt); err != nil {
		t.Fatal(err)
	}
}

// TestCtlShardedRoundTrip drives the happy path over the control
// plane: shard map agreement, a routed write, commit, and the routed
// presence check the oracle uses.
func TestCtlShardedRoundTrip(t *testing.T) {
	m, err := shardmap.New(2, 4, []camelot.SiteID{1})
	if err != nil {
		t.Fatal(err)
	}
	_, c := startShardedNode(t, 1, m)

	got, err := c.ShardMap()
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ShardMap over ctl = %q, want %q", got, want)
	}

	bt, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	key := findKey(t, m, "rt", 1)
	if err := c.WriteKey(bt, key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if out, err := c.CommitWith(bt, "2pc"); err != nil {
		t.Fatalf("Commit: %v (outcome %v)", err, out)
	}
	val, ok, err := c.PeekKey(key)
	if err != nil || !ok || !bytes.Equal(val, []byte("v")) {
		t.Fatalf("PeekKey(%q) = %q, %v, %v", key, val, ok, err)
	}
	// The sharded oracle view answers through the same path.
	v := &View{C: c}
	if has, err := v.HasKey(key); err != nil || !has {
		t.Fatalf("View.HasKey(%q) = %v, %v", key, has, err)
	}
	if err := v.Probe(); err != nil {
		t.Fatalf("View.Probe (empty server): %v", err)
	}
	// ensure tid referenced (TID halves travel through the client).
	_ = tid.TID{}
}
